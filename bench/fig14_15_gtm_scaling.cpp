// Figures 14 & 15: GTM Interpolation parallel efficiency and per-core
// per-file time across frameworks, sweeping the PubChem subset size (§6.2).
//
// Deployments (~64 busy cores each): EC2 Large / HCXL / HM4XL fleets, 64
// Azure Small instances, Hadoop on 48 GB nodes (8 cores used), DryadLINQ on
// 16-core HPCS nodes.
//
// Paper shape: efficiencies lower than Cap3/BLAST (memory-bandwidth bound);
// Azure Small best overall; EC2 Large best among EC2; 16-core Dryad nodes
// worst.
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  std::puts("== Figures 14 & 15: GTM Interpolation scalability across frameworks ==\n");
  std::vector<ppc::core::ScalingPoint> points;
  for (const auto backend : ppc::bench::backends_from_args(argc, argv)) {
    const auto backend_points = ppc::core::run_gtm_scaling_study(42, {88, 176, 264}, backend);
    points.insert(points.end(), backend_points.begin(), backend_points.end());
  }
  ppc::bench::print_scaling_points(
      "GTM parallel efficiency (Fig 14) / per-core file time (Fig 15)", points);
  std::puts("\nExpected shape: Azure Small leads, DryadLINQ's 16-core nodes trail,");
  std::puts("EC2 Large is the best EC2 choice; overall efficiencies below Cap3's.");
  return 0;
}
