// Microbenchmarks of the substrate services (google-benchmark): message
// queue operations, blob store transfers, discrete-event throughput, and
// scheduler decisions. These establish that the in-process services are
// cheap enough that framework comparisons measure *policy*, not substrate
// overhead.
#include <benchmark/benchmark.h>

#include <memory>

#include "blobstore/blob_store.h"
#include "cloudq/message_queue.h"
#include "common/clock.h"
#include "mapreduce/scheduler.h"
#include "minihdfs/mini_hdfs.h"
#include "sim/simulator.h"

using namespace ppc;

namespace {

void BM_QueueSendReceiveDelete(benchmark::State& state) {
  auto clock = std::make_shared<ManualClock>();
  cloudq::MessageQueue queue("q", clock);
  for (auto _ : state) {
    queue.send("task=1;in=input/f;out=output/f");
    const auto msg = queue.receive(30.0);
    benchmark::DoNotOptimize(msg);
    queue.delete_message(msg->receipt_handle);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueueSendReceiveDelete);

void BM_QueueReceiveFromBacklog(benchmark::State& state) {
  auto clock = std::make_shared<ManualClock>();
  cloudq::MessageQueue queue("q", clock);
  for (int i = 0; i < state.range(0); ++i) queue.send("m");
  for (auto _ : state) {
    const auto msg = queue.receive(1e9);
    benchmark::DoNotOptimize(msg);
    if (!msg) {
      state.SkipWithError("queue drained; raise the backlog");
      break;
    }
    queue.delete_message(msg->receipt_handle);
    queue.send("m");  // keep the backlog level
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueueReceiveFromBacklog)->Arg(100)->Arg(1000)->Arg(10000);

void BM_BlobPutGet(benchmark::State& state) {
  auto clock = std::make_shared<ManualClock>();
  blobstore::BlobStore store(clock);
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
  int i = 0;
  for (auto _ : state) {
    const std::string key = "k" + std::to_string(i++ % 64);
    store.put("b", key, payload);
    benchmark::DoNotOptimize(store.get("b", key));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_BlobPutGet)->Arg(1024)->Arg(64 * 1024)->Arg(1024 * 1024);

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int fired = 0;
    std::function<void()> tick = [&] {
      if (++fired < 10000) sim.after(1.0, tick);
    };
    sim.after(0.0, tick);
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulatorEventThroughput);

void BM_SchedulerNextTask(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<mapreduce::TaskInfo> tasks;
    tasks.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      mapreduce::TaskInfo t;
      t.task_id = i;
      t.path = "/in/t" + std::to_string(i);
      t.preferred = {i % 8, (i + 1) % 8, (i + 2) % 8};
      tasks.push_back(std::move(t));
    }
    mapreduce::TaskScheduler sched(std::move(tasks), {});
    state.ResumeTiming();
    for (int i = 0; i < n; ++i) {
      const auto a = sched.next_task(i % 8, 0.0);
      benchmark::DoNotOptimize(a);
      sched.report_completed(*a, 1.0);
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SchedulerNextTask)->Arg(128)->Arg(1024);

void BM_HdfsWriteRead(benchmark::State& state) {
  minihdfs::MiniHdfs hdfs(8);
  const std::string payload(256 * 1024, 'g');
  int i = 0;
  for (auto _ : state) {
    const std::string path = "/f" + std::to_string(i++ % 64);
    hdfs.write(path, payload);
    benchmark::DoNotOptimize(hdfs.read_from(path, i % 8));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HdfsWriteRead);

}  // namespace

BENCHMARK_MAIN();
