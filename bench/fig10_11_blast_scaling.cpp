// Figures 10 & 11: BLAST parallel efficiency and average time per query
// file, scaling the inhomogeneous 128-file base set by 1-6x (§5.2).
//
// Deployments: EC2 = 16 HCXL, Azure = 16 Large, Hadoop on iDataplex 8-core
// nodes, DryadLINQ on 16-core HPCS nodes.
//
// Paper shape: near-linear scalability, all within ~20%; Windows
// environments lead; EC2 HCXL trails (less than 1 GB of memory per core
// shared across 8 workers).
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  std::puts("== Figures 10 & 11: BLAST scalability across frameworks ==\n");
  std::vector<ppc::core::ScalingPoint> points;
  for (const auto backend : ppc::bench::backends_from_args(argc, argv)) {
    const auto backend_points =
        ppc::core::run_blast_scaling_study(42, {1, 2, 3, 4, 5, 6}, backend);
    points.insert(points.end(), backend_points.begin(), backend_points.end());
  }
  ppc::bench::print_scaling_points(
      "BLAST parallel efficiency (Fig 10) / per-core query-file time (Fig 11)", points);
  std::puts("\nExpected shape: rising, near-linear efficiency; Azure leads, EC2 trails.");
  return 0;
}
