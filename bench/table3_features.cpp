// Table 3: the qualitative framework comparison, printed from the same
// structured data the behavioural tests check against the engines.
#include "core/feature_matrix.h"

int main() {
  ppc::core::feature_matrix_table().print();
  return 0;
}
