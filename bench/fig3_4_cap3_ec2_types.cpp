// Figures 3 & 4: Cap3 cost and compute time across EC2 instance types.
// Workload: 200 FASTA files x 200 reads on 16 cores (§4.1).
//
// Paper shape: HM4XL fastest (3.25 GHz); HCXL most cost-effective; L and XL
// tie (same clock); memory is not a Cap3 bottleneck.
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  std::puts("== Figures 3 & 4: Cap3 on EC2 instance types ==");
  std::puts("Workload: 200 files x 200 reads, 16 cores, Classic Cloud (simulated)\n");
  std::vector<ppc::core::InstanceTypeRow> rows;
  for (const auto backend : ppc::bench::backends_from_args(argc, argv)) {
    const auto backend_rows = ppc::core::run_cap3_ec2_instance_study(42, backend);
    rows.insert(rows.end(), backend_rows.begin(), backend_rows.end());
  }
  ppc::bench::print_instance_type_rows("Cap3 compute time (Fig 4) and cost (Fig 3)", rows);
  std::puts("\nExpected shape: HM4XL fastest; HCXL cheapest; L ≈ XL (memory no bottleneck).");
  return 0;
}
