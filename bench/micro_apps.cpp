// Microbenchmarks of the three application kernels (google-benchmark): the
// actual compute the real-thread frameworks execute per task.
#include <benchmark/benchmark.h>

#include <memory>

#include "apps/blast/aligner.h"
#include "apps/cap3/assembler.h"
#include "apps/cap3/read_simulator.h"
#include "apps/gtm/data_gen.h"
#include "apps/gtm/gtm.h"
#include "common/rng.h"

using namespace ppc;

namespace {

void BM_Cap3Assemble(benchmark::State& state) {
  Rng rng(1);
  const std::string input =
      apps::cap3::make_cap3_input(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(apps::cap3::assemble_fasta_file(input));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Cap3Assemble)->Arg(50)->Arg(100)->Arg(200)->Unit(benchmark::kMillisecond);

void BM_BlastIndexBuild(benchmark::State& state) {
  Rng rng(2);
  apps::blast::DbGenConfig config;
  config.num_sequences = static_cast<std::size_t>(state.range(0));
  const auto db = apps::blast::SequenceDb::generate(config, rng);
  for (auto _ : state) {
    apps::blast::BlastIndex index(db);
    benchmark::DoNotOptimize(index.indexed_kmers());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BlastIndexBuild)->Arg(100)->Arg(500)->Unit(benchmark::kMillisecond);

void BM_BlastSearchQueryFile(benchmark::State& state) {
  Rng rng(3);
  apps::blast::DbGenConfig config;
  config.num_sequences = 300;
  const auto db = apps::blast::SequenceDb::generate(config, rng);
  const apps::blast::BlastIndex index(db);
  const std::string queries =
      apps::blast::make_query_file(db, static_cast<std::size_t>(state.range(0)), 0.5, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.search_file(queries));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BlastSearchQueryFile)->Arg(10)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_GtmTrain(benchmark::State& state) {
  Rng rng(4);
  apps::gtm::ClusterDataConfig data;
  data.num_points = static_cast<std::size_t>(state.range(0));
  data.dims = 32;
  const auto samples = apps::gtm::generate_clustered(data, rng);
  apps::gtm::GtmConfig config;
  config.em_iterations = 10;
  for (auto _ : state) {
    Rng train_rng(5);
    benchmark::DoNotOptimize(apps::gtm::GtmModel::train(samples, config, train_rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GtmTrain)->Arg(200)->Arg(500)->Unit(benchmark::kMillisecond);

void BM_GtmInterpolate(benchmark::State& state) {
  Rng rng(6);
  apps::gtm::ClusterDataConfig data;
  data.num_points = 300;
  data.dims = 32;
  const auto samples = apps::gtm::generate_clustered(data, rng);
  apps::gtm::GtmConfig config;
  config.em_iterations = 8;
  const auto model = apps::gtm::GtmModel::train(samples, config, rng);
  data.num_points = static_cast<std::size_t>(state.range(0));
  const auto points = apps::gtm::generate_clustered(data, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.interpolate(points));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GtmInterpolate)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_MatrixMultiply(benchmark::State& state) {
  Rng rng(7);
  const auto n = static_cast<std::size_t>(state.range(0));
  apps::gtm::Matrix a(n, n), b(n, n);
  for (auto& v : a.data()) v = rng.uniform(-1, 1);
  for (auto& v : b.data()) v = rng.uniform(-1, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.multiply(b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatrixMultiply)->Arg(64)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
