// Machine-readable performance baseline: times each optimized kernel
// against a naive reference compiled into this binary (the seed's
// algorithms), plus each substrate end to end on a fixed micro workload,
// and emits BENCH_micro.json. CI runs `bench_json --check bench/baseline.json`
// and fails when any kernel regresses more than 2x against the checked-in
// baseline.
//
// Timing discipline: every kernel sample is the MINIMUM of several runs —
// on a shared core the minimum estimates the uncontended cost, where mean
// and median absorb scheduler noise.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "apps/blast/aligner.h"
#include "cloud/instance_types.h"
#include "core/drivers.h"
#include "core/exec_model.h"
#include "core/workload.h"
#include "apps/blast/db.h"
#include "apps/blast/protein.h"
#include "apps/gtm/matrix.h"
#include "blobstore/blob_store.h"
#include "classiccloud/job_client.h"
#include "cloudq/queue_service.h"
#include "azuremr/runtime.h"
#include "common/clock.h"
#include "common/rng.h"
#include "mapreduce/shuffle.h"
#include "mapreduce/shuffle_job.h"
#include "minihdfs/mini_hdfs.h"
#include "runtime/metrics.h"
#include "runtime/monitor.h"
#include "runtime/tracer.h"
#include "storage/block_cache.h"
#include "storage/fs_backends.h"

namespace {

using namespace ppc;
using apps::gtm::Matrix;

// --------------------------------------------------------------------------
// Timing
// --------------------------------------------------------------------------

template <typename Fn>
double min_seconds(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

struct KernelResult {
  std::string name;
  double ns_per_op = 0.0;        // optimized kernel
  double naive_ns_per_op = 0.0;  // reference compiled into this binary
  double speedup = 0.0;
};

struct SubstrateResult {
  std::string name;
  int tasks = 0;
  double seconds = 0.0;
  double tasks_per_second = 0.0;
};

// --------------------------------------------------------------------------
// Naive kernel references (the seed's algorithms)
// --------------------------------------------------------------------------

/// The seed's multiply: i-k-j loop order streaming B row-wise.
Matrix naive_multiply(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      const double* b_row = &b.data()[k * b.cols()];
      double* c_row = &c.data()[i * b.cols()];
      for (std::size_t j = 0; j < b.cols(); ++j) c_row[j] += aik * b_row[j];
    }
  }
  return c;
}

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (auto& v : m.data()) v = rng.uniform(-1.0, 1.0);
  return m;
}

/// The seed's string-keyed BLAST index: one substring allocation and one
/// string hash per database position, rebuilt here as the build+search
/// reference.
class NaiveBlastIndex {
 public:
  NaiveBlastIndex(const apps::blast::SequenceDb& db, apps::blast::AlignerConfig config)
      : db_(db), config_(config) {
    for (std::size_t s = 0; s < db_.size(); ++s) {
      const std::string& seq = db_.record(s).seq;
      if (seq.size() < config_.k) continue;
      for (std::size_t p = 0; p + config_.k <= seq.size(); ++p) {
        bool standard = true;
        for (std::size_t i = 0; i < config_.k; ++i) {
          standard = standard && apps::blast::amino_index(seq[p + i]) >= 0;
        }
        if (standard) index_[seq.substr(p, config_.k)].push_back({s, p});
      }
    }
  }

  int search(const apps::blast::FastaRecord& query) const {
    const std::string& q = query.seq;
    if (q.size() < config_.k) return 0;
    std::map<std::size_t, int> best_per_subject;
    for (std::size_t qp = 0; qp + config_.k <= q.size(); ++qp) {
      int seed_score = 0;
      bool standard = true;
      for (std::size_t i = 0; i < config_.k; ++i) {
        standard = standard && apps::blast::amino_index(q[qp + i]) >= 0;
        seed_score += apps::blast::blosum62(q[qp + i], q[qp + i]);
      }
      if (!standard || seed_score < config_.seed_threshold) continue;
      const auto it = index_.find(q.substr(qp, config_.k));
      if (it == index_.end()) continue;
      for (const auto& [sidx, sp] : it->second) {
        const std::string& s = db_.record(sidx).seq;
        int best_score = seed_score;
        std::size_t best_right = config_.k;
        int run = seed_score;
        for (std::size_t i = config_.k; qp + i < q.size() && sp + i < s.size();) {
          run += apps::blast::blosum62(q[qp + i], s[sp + i]);
          ++i;
          if (run > best_score) {
            best_score = run;
            best_right = i;
          } else if (run < best_score - config_.x_drop) {
            break;
          }
        }
        int local_best = best_score;
        run = best_score;
        for (std::size_t i = 0; qp > i && sp > i;) {
          ++i;
          run += apps::blast::blosum62(q[qp - i], s[sp - i]);
          if (run > local_best) {
            local_best = run;
          } else if (run < local_best - config_.x_drop) {
            break;
          }
        }
        (void)best_right;
        if (local_best < config_.score_cutoff) continue;
        int& cur = best_per_subject[sidx];
        cur = std::max(cur, local_best);
      }
    }
    int total = 0;
    for (const auto& [_, score] : best_per_subject) total += score;
    return total;
  }

 private:
  apps::blast::SequenceDb db_;
  apps::blast::AlignerConfig config_;
  std::map<std::string, std::vector<std::pair<std::size_t, std::size_t>>> index_;
};

// --------------------------------------------------------------------------
// Kernel benchmarks
// --------------------------------------------------------------------------

KernelResult bench_matrix_multiply() {
  Rng rng(1);
  const std::size_t n = 512;
  const Matrix a = random_matrix(n, n, rng);
  const Matrix b = random_matrix(n, n, rng);
  volatile double sink = 0.0;

  const double fast = min_seconds(7, [&] { sink = a.multiply(b)(0, 0); });
  const double naive = min_seconds(5, [&] { sink = naive_multiply(a, b)(0, 0); });
  (void)sink;
  return {"matrix_multiply_512", fast * 1e9, naive * 1e9, naive / fast};
}

KernelResult bench_cholesky() {
  Rng rng(2);
  const std::size_t n = 160, cols = 32;
  const Matrix b0 = random_matrix(n, n, rng);
  Matrix a = b0.multiply(b0.transpose());
  a.add_diagonal(static_cast<double>(n));
  const Matrix rhs = random_matrix(n, cols, rng);
  volatile double sink = 0.0;

  const double fast =
      min_seconds(9, [&] { sink = apps::gtm::cholesky_solve_matrix(a, rhs)(0, 0); });
  // The seed's behavior: one full factorization per right-hand-side column.
  const double naive = min_seconds(5, [&] {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols; ++c) {
      std::vector<double> col(n);
      for (std::size_t r = 0; r < n; ++r) col[r] = rhs(r, c);
      acc += apps::gtm::cholesky_solve(a, col)[0];
    }
    sink = acc;
  });
  (void)sink;
  return {"cholesky_solve_matrix_160x32", fast * 1e9, naive * 1e9, naive / fast};
}

KernelResult bench_blast() {
  Rng rng(3);
  apps::blast::DbGenConfig db_config;
  db_config.num_sequences = 60;
  const auto db = apps::blast::SequenceDb::generate(db_config, rng);
  std::vector<apps::blast::FastaRecord> queries;
  for (int i = 0; i < 20; ++i) {
    queries.push_back({"q" + std::to_string(i),
                       apps::blast::plant_query(db, static_cast<std::size_t>(i % 60), 120,
                                                i % 3 == 0 ? 0.0 : 0.1, rng)});
  }
  volatile int sink = 0;

  const double fast = min_seconds(7, [&] {
    apps::blast::BlastIndex index(db);
    int acc = 0;
    for (const auto& q : queries) acc += static_cast<int>(index.search(q).size());
    sink = acc;
  });
  const double naive = min_seconds(5, [&] {
    NaiveBlastIndex index(db, apps::blast::AlignerConfig{});
    int acc = 0;
    for (const auto& q : queries) acc += index.search(q);
    sink = acc;
  });
  (void)sink;
  return {"blast_build_search_60x20", fast * 1e9, naive * 1e9, naive / fast};
}

// --------------------------------------------------------------------------
// Substrate end-to-end micro workload
// --------------------------------------------------------------------------

// Substrate workload shape: big enough that throughput measures the control
// plane (queue sharding, batched receive/delete), not thread start-up; the
// shape constants are stamped into BENCH_micro.json's meta block.
constexpr int kClassicTasks = 4096;
constexpr int kClassicWorkers = 2;
constexpr int kAzureMaps = 64;
constexpr int kAzureReduces = 8;
constexpr int kAzureWorkers = 8;
constexpr int kReceiveBatch = 10;
constexpr int kDeleteBatch = 10;
constexpr int kQueueShards = 8;

SubstrateResult bench_classiccloud() {
  auto run_once = [&] {
    auto clock = std::make_shared<SystemClock>();
    blobstore::BlobStore store(clock);
    cloudq::QueueConfig qc;
    qc.shards = kQueueShards;
    cloudq::QueueService queues(clock, qc);
    classiccloud::JobClient client(store, queues, "bench-job");
    std::vector<std::pair<std::string, std::string>> files;
    for (int i = 0; i < kClassicTasks; ++i) {
      files.emplace_back("f" + std::to_string(i), std::string(256, 'x'));
    }
    client.submit(files);
    classiccloud::TaskExecutor executor =
        [](const classiccloud::TaskSpec&, const std::string& input) { return input; };
    classiccloud::WorkerConfig config;
    config.poll_interval = 0.0005;
    config.receive_batch = kReceiveBatch;
    config.delete_batch = kDeleteBatch;
    classiccloud::WorkerPool pool(store, client.task_queue(), client.monitor_queue(), executor,
                                  config, kClassicWorkers);
    pool.start_all();
    const bool done = client.wait_for_completion(60.0, 0.0005);
    pool.stop_all();
    pool.join_all();
    if (!done) std::fprintf(stderr, "classiccloud micro workload timed out\n");
  };
  run_once();  // warm allocators / page in the task path before timing
  const double secs = min_seconds(3, run_once);
  return {"classiccloud", kClassicTasks, secs, kClassicTasks / secs};
}

SubstrateResult bench_azuremr() {
  auto run_once = [&] {
    auto clock = std::make_shared<SystemClock>();
    blobstore::BlobStore store(clock);
    cloudq::QueueConfig qc;
    qc.shards = kQueueShards;
    cloudq::QueueService queues(clock, qc);
    azuremr::MrWorkerConfig config;
    config.receive_batch = kReceiveBatch;
    config.delete_batch = kDeleteBatch;
    azuremr::AzureMapReduce mr(store, queues, kAzureWorkers, config);
    azuremr::JobSpec spec;
    spec.job_id = "bench-mr";
    for (int i = 0; i < kAzureMaps; ++i) {
      spec.inputs.emplace_back("in" + std::to_string(i), std::string(256, 'y'));
    }
    spec.num_reduce_tasks = kAzureReduces;
    spec.map = [](const std::string& name, const std::string& data, const std::string&) {
      return std::vector<azuremr::KeyValue>{{name, std::to_string(data.size())}};
    };
    spec.reduce = [](const std::string&, const std::vector<std::string>& values) {
      return values.front();
    };
    const auto result = mr.run(spec);
    if (!result.succeeded) std::fprintf(stderr, "azuremr micro workload failed\n");
  };
  run_once();  // warm
  const double secs = min_seconds(3, run_once);
  const int tasks = kAzureMaps + kAzureReduces;
  return {"azuremr", tasks, secs, tasks / secs};
}

/// Raw data-plane round trip: 1 MB blob put+get plus a queue
/// send/receive/delete per task — the per-task substrate overhead every
/// framework pays. `tracer` (nullable) is installed on both services, which
/// is how the tracing-off overhead is measured.
double data_plane_seconds(int ops, ppc::TraceHook* tracer) {
  auto clock = std::make_shared<ManualClock>();
  blobstore::BlobStore store(clock);
  cloudq::MessageQueue queue("q", clock);
  store.set_tracer(tracer);
  queue.set_tracer(tracer);
  const std::string payload(1024 * 1024, 'z');
  return min_seconds(5, [&] {
    for (int i = 0; i < ops; ++i) {
      const std::string key = "k" + std::to_string(i % 16);
      store.put("b", key, payload);
      auto blob = store.get("b", key);
      queue.send("task=" + key);
      const auto msg = queue.receive(30.0);
      queue.delete_message(msg->receipt_handle);
      if (!blob || blob->size() != payload.size()) {
        std::fprintf(stderr, "data plane round trip corrupted\n");
      }
    }
  });
}

SubstrateResult bench_data_plane() {
  const int kOps = 200;
  const double secs = data_plane_seconds(kOps, nullptr);
  return {"data_plane_1mb_roundtrip", kOps, secs, kOps / secs};
}

/// Real wall-clock 1 MB put+get through the polymorphic StorageBackend
/// interface. The three backends share the in-memory object map, so this
/// measures the implementation overhead each data plane adds (contention
/// bookkeeping, hook sites), not the simulated network — that lives in
/// sample_get_time and is benched by the DES studies.
double storage_backend_seconds(storage::StorageKind kind, int ops) {
  auto clock = std::make_shared<ManualClock>();
  const auto store = storage::make_backend(kind, clock, Rng(7));
  const std::string payload(1024 * 1024, 's');
  return min_seconds(5, [&] {
    for (int i = 0; i < ops; ++i) {
      const std::string key = "k" + std::to_string(i % 16);
      store->put("b", key, payload);
      const auto blob = store->get("b", key);
      if (!blob || blob->size() != payload.size()) {
        std::fprintf(stderr, "storage backend round trip corrupted\n");
      }
    }
  });
}

SubstrateResult bench_storage_backend(storage::StorageKind kind) {
  const int kOps = 200;
  const double secs = storage_backend_seconds(kind, kOps);
  return {"storage_" + std::string(storage::to_string(kind)) + "_1mb_putget", kOps, secs,
          kOps / secs};
}

/// Block-cache hot path (every fetch hits) vs cold path (every fetch is
/// evicted first, so it pays HEAD + GET + etag validation + insert).
SubstrateResult bench_block_cache(bool hot) {
  const int kOps = 200;
  auto clock = std::make_shared<ManualClock>();
  blobstore::BlobStore store(clock);
  const std::string payload(1024 * 1024, 'c');
  store.put("b", "shared", payload);

  storage::BlockCacheConfig config;
  config.name = "bench.blockcache";
  storage::BlockCache cache(config);
  (void)cache.fetch(store, "b", "shared");  // warm
  const double secs = min_seconds(5, [&] {
    for (int i = 0; i < kOps; ++i) {
      if (!hot) cache.clear();
      const auto r = cache.fetch(store, "b", "shared");
      if (!r.data || r.data->size() != payload.size()) {
        std::fprintf(stderr, "block cache round trip corrupted\n");
      }
    }
  });
  return {hot ? "block_cache_hit_1mb" : "block_cache_miss_1mb", kOps, secs, kOps / secs};
}

struct TracingOverhead {
  double plain_seconds = 0.0;
  double traced_off_seconds = 0.0;  // disabled Tracer installed
  double ratio = 0.0;
};

/// Registry scrape throughput: one single-lock scrape() pass over a
/// registry shaped like a real run's (per-worker counters + busy gauges +
/// queue gauges), reusing one ScrapeBuffer — the Monitor's per-tick read.
SubstrateResult bench_metrics_scrape() {
  const int kOps = 20000;
  runtime::MetricsRegistry registry;
  for (int w = 0; w < 16; ++w) {
    const std::string id = "w" + std::to_string(w);
    registry.counter(id + ".messages_received").inc(w);
    registry.counter(id + ".tasks_completed").inc(w);
    registry.counter(id + ".redeliveries");
    registry.set_gauge(id + ".busy", w % 2);
  }
  registry.set_gauge("cloudq.tasks.dlq_depth", 0.0);
  runtime::MetricsRegistry::ScrapeBuffer buffer;
  volatile double sink = 0.0;
  const double secs = min_seconds(5, [&] {
    double acc = 0.0;
    for (int i = 0; i < kOps; ++i) {
      registry.scrape(buffer);
      acc += buffer.counters.empty() ? 0.0 : buffer.counters[0].second;
    }
    sink = acc;
  });
  (void)sink;
  return {"metrics_scrape_48c17g", kOps, secs, kOps / secs};
}

struct MonitorOverhead {
  double plain_seconds = 0.0;      // no monitor attached
  double monitored_seconds = 0.0;  // sampler thread scraping at 100 ms
  double ratio = 0.0;
};

/// The 1 MB data-plane loop with the instrumentation writes every worker
/// makes (counter incs + busy gauge flips), run with and without a Monitor
/// sampler thread scraping the registry at 100 ms. `monitored` adds the
/// real contention a live monitor causes: its scrape lock vs the hot-path
/// counter increments.
double monitored_data_plane_seconds(int ops, bool monitored) {
  auto clock = std::make_shared<ManualClock>();
  blobstore::BlobStore store(clock);
  cloudq::MessageQueue queue("q", clock);
  runtime::MetricsRegistry registry;
  for (int w = 0; w < 8; ++w) {
    registry.counter("w" + std::to_string(w) + ".tasks_completed");
    registry.set_gauge("w" + std::to_string(w) + ".busy", 0.0);
  }
  std::unique_ptr<runtime::Monitor> monitor;
  if (monitored) {
    runtime::MonitorConfig config;
    config.period = 0.1;
    monitor = std::make_unique<runtime::Monitor>(registry, config);
    monitor->start();
  }
  const std::string payload(1024 * 1024, 'm');
  const double secs = min_seconds(5, [&] {
    for (int i = 0; i < ops; ++i) {
      const std::string key = "k" + std::to_string(i % 16);
      registry.set_gauge("w0.busy", 1.0);
      store.put("b", key, payload);
      auto blob = store.get("b", key);
      queue.send("task=" + key);
      const auto msg = queue.receive(30.0);
      queue.delete_message(msg->receipt_handle);
      registry.counter("w0.tasks_completed").inc();
      registry.set_gauge("w0.busy", 0.0);
      if (!blob || blob->size() != payload.size()) {
        std::fprintf(stderr, "monitored data plane round trip corrupted\n");
      }
    }
  });
  if (monitor) monitor->stop();
  return secs;
}

/// The monitoring plane's overhead contract: a Monitor scraping the
/// registry at 100 ms must cost the 1 MB data-plane loop < 3% over the same
/// loop with no monitor (checked in --check mode). Interleaved paired
/// samples so CPU-frequency drift hits both arms.
MonitorOverhead bench_monitor_overhead() {
  const int kOps = 200;
  MonitorOverhead result;
  result.plain_seconds = 1e300;
  result.monitored_seconds = 1e300;
  for (int round = 0; round < 3; ++round) {
    result.plain_seconds =
        std::min(result.plain_seconds, monitored_data_plane_seconds(kOps, false));
    result.monitored_seconds =
        std::min(result.monitored_seconds, monitored_data_plane_seconds(kOps, true));
  }
  result.ratio = result.monitored_seconds / result.plain_seconds;
  return result;
}

struct StorageOverhead {
  double direct_seconds = 0.0;   // concrete BlobStore calls (the seed's path)
  double backend_seconds = 0.0;  // same loop through StorageBackend, no cache
  double ratio = 0.0;
};

/// The storage refactor's overhead contract: with the cache disabled, going
/// through the StorageBackend interface must cost the data plane < 3%
/// (checked in --check mode) over direct BlobStore calls. Interleaved
/// paired samples, same discipline as bench_tracing_overhead.
StorageOverhead bench_storage_overhead() {
  const int kOps = 200;
  const std::string payload(1024 * 1024, 'o');
  auto direct_loop = [&] {
    auto clock = std::make_shared<ManualClock>();
    blobstore::BlobStore store(clock);
    return min_seconds(5, [&] {
      for (int i = 0; i < kOps; ++i) {
        const std::string key = "k" + std::to_string(i % 16);
        store.put("b", key, payload);
        const auto blob = store.get("b", key);
        if (!blob || blob->size() != payload.size()) {
          std::fprintf(stderr, "direct storage round trip corrupted\n");
        }
      }
    });
  };
  StorageOverhead result;
  result.direct_seconds = 1e300;
  result.backend_seconds = 1e300;
  for (int round = 0; round < 3; ++round) {
    result.direct_seconds = std::min(result.direct_seconds, direct_loop());
    result.backend_seconds =
        std::min(result.backend_seconds,
                 storage_backend_seconds(storage::StorageKind::kObject, kOps));
  }
  result.ratio = result.backend_seconds / result.direct_seconds;
  return result;
}

/// The tentpole's overhead contract: with a Tracer attached but DISABLED,
/// the data plane must not regress measurably (< 3%, checked in --check
/// mode). Interleaved paired samples so CPU-frequency drift hits both arms.
TracingOverhead bench_tracing_overhead() {
  const int kOps = 200;
  runtime::Tracer tracer;  // never enabled
  TracingOverhead result;
  result.plain_seconds = 1e300;
  result.traced_off_seconds = 1e300;
  for (int round = 0; round < 3; ++round) {
    result.plain_seconds = std::min(result.plain_seconds, data_plane_seconds(kOps, nullptr));
    result.traced_off_seconds =
        std::min(result.traced_off_seconds, data_plane_seconds(kOps, &tracer));
  }
  result.ratio = result.traced_off_seconds / result.plain_seconds;
  return result;
}

// --------------------------------------------------------------------------
// Shuffle rows
// --------------------------------------------------------------------------

/// External-sort throughput in records/s under a budget that forces a
/// multi-run k-way merge — the reduce side's hot loop.
SubstrateResult bench_external_sort() {
  const int kRecords = 50000;
  std::vector<mapreduce::ShuffleRecord> records;
  records.reserve(kRecords);
  Rng rng(0x50B7);
  for (std::uint32_t i = 0; i < kRecords; ++i) {
    mapreduce::ShuffleRecord r;
    r.key = "key-" + std::to_string(rng.uniform_int(0, 999));
    r.value = "v" + std::to_string(i);
    r.map_id = static_cast<std::uint32_t>(i % 8);
    r.seq = i;
    records.push_back(std::move(r));
  }
  const double secs = min_seconds(3, [&records] {
    blobstore::BlobStore store(std::make_shared<SystemClock>());
    // ~1/8 of the input per run: an 8-way merge plus the final buffer.
    mapreduce::ExternalSorter sorter(store, "shuffle", "bench/r0",
                                     /*budget=*/220.0 * 1024, {});
    for (const auto& r : records) sorter.add(r);
    std::size_t groups = 0;
    sorter.for_each_group(
        [&groups](const std::string&, const std::vector<std::string>&) { ++groups; });
    if (groups == 0) std::abort();  // keep the work observable
  });
  return {"shuffle_external_sort_50k", kRecords, secs, kRecords / secs};
}

struct ShuffleBench {
  SubstrateResult pipeline;            // records/s through map+shuffle+reduce
  double shuffle_bytes_per_second = 0.0;
  double spill_amplification = 0.0;    // shuffle-store bytes written / map output bytes
  bool completed = false;
};

/// Full-pipeline shuffle throughput: a synthetic keyed workload through the
/// real-thread ShuffleJobRunner with budgets tight enough that both sides
/// spill. Spill amplification = (map spills + sort runs) / map output — 1.0
/// means the external sort never touched storage.
ShuffleBench bench_shuffle_pipeline() {
  const int kFiles = 8;
  const int kRecordsPerFile = 2000;
  minihdfs::MiniHdfs hdfs(4);
  std::vector<std::string> paths;
  Rng rng(0x5AFE);
  for (int f = 0; f < kFiles; ++f) {
    std::ostringstream text;
    for (int i = 0; i < kRecordsPerFile; ++i) {
      text << "key-" << rng.uniform_int(0, 499) << " ";
    }
    const std::string path = "/bench/in-" + std::to_string(f) + ".txt";
    hdfs.write(path, text.str());
    paths.push_back(path);
  }
  const auto map_fn = [](const mapreduce::FileRecord&, const std::string& contents,
                         const mapreduce::EmitFn& emit) {
    std::istringstream in(contents);
    std::string word;
    std::uint32_t seq = 0;
    while (in >> word) emit(word, "p" + std::to_string(seq++));
  };
  const auto reduce_fn = [](const std::string&, const std::vector<std::string>& values) {
    return std::to_string(values.size());
  };

  ShuffleBench bench;
  const int kTotal = kFiles * kRecordsPerFile;
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    mapreduce::ShuffleJobConfig config;
    config.num_nodes = 4;
    config.slots_per_node = 2;
    config.num_reducers = 4;
    config.job_name = "bench-" + std::to_string(rep);
    config.output_dir = "/bench/out-" + std::to_string(rep);
    config.map_spill_budget = 64.0 * 1024;
    config.sort_memory_budget = 96.0 * 1024;
    mapreduce::ShuffleJobRunner runner(hdfs);
    const auto t0 = std::chrono::steady_clock::now();
    const auto result = runner.run(paths, map_fn, reduce_fn, config);
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    if (!result.succeeded) return bench;  // completed stays false -> gate fails
    if (secs < best) {
      best = secs;
      bench.shuffle_bytes_per_second = result.shuffle.fetched_bytes / secs;
      bench.spill_amplification =
          result.shuffle.map_output_bytes > 0.0
              ? (result.shuffle.map_spill_bytes + result.shuffle.sort_run_bytes) /
                    result.shuffle.map_output_bytes
              : 0.0;
    }
  }
  bench.completed = true;
  bench.pipeline = {"shuffle_pipeline_8x2000", kTotal, best, kTotal / best};
  return bench;
}

struct ElasticComparison {
  int tasks = 0;
  int completed = 0;
  std::uint64_t undeleted = 0;
  std::int64_t revocations = 0;
  double static_makespan = 0.0;   // sim-seconds
  double elastic_makespan = 0.0;  // sim-seconds
  double static_cost = 0.0;       // hour units, all on-demand
  double elastic_cost = 0.0;      // hour units, half-spot
};

/// The elastic-fleet contract, bench-sized: the same Cap3 job through the
/// static Classic Cloud DES driver and the autoscaled half-spot driver
/// under one seeded revocation storm. DES time, so the row is exact and
/// repeatable; --check gates semantics (all tasks complete, queue drained,
/// autoscaled bill <= static bill), not wall time.
ElasticComparison bench_elastic_fleet() {
  using namespace ppc::core;
  const int kInstances = 8, kWorkers = 8;
  const Workload workload = make_cap3_workload(3000, 458);
  const ExecutionModel model(AppKind::kCap3);
  const Deployment deployment =
      make_deployment(cloud::ec2_hcxl(), kInstances, kWorkers);

  ElasticComparison result;
  result.tasks = static_cast<int>(workload.size());

  SimRunParams params;
  params.seed = 42;
  params.receive_batch = 10;
  const RunResult stat = run_classic_cloud_sim(workload, deployment, model, params);
  result.static_makespan = stat.makespan;
  result.static_cost = stat.compute_cost_hour_units;

  ElasticSimParams elastic;
  elastic.autoscaler.min_instances = 2;
  elastic.autoscaler.max_instances = kInstances;
  elastic.autoscaler.step_out = 2;
  elastic.storm_times = {0.4 * stat.makespan};
  elastic.revocation_rate = 0.5;  // small spot pool; keep the storm visible
  params.visibility_timeout = 1800.0;
  ElasticRunStats stats;
  const RunResult el =
      run_elastic_classic_sim(workload, deployment, model, params, elastic, &stats);
  result.completed = el.completed;
  result.undeleted = el.queue_undeleted_end;
  result.revocations = stats.revocations;
  result.elastic_makespan = el.makespan;
  result.elastic_cost = el.compute_cost_hour_units;
  return result;
}

// --------------------------------------------------------------------------
// JSON emit / baseline check
// --------------------------------------------------------------------------

/// `git rev-parse --short HEAD` of the enclosing checkout, "unknown"
/// elsewhere — stamped into the meta block so a BENCH_micro.json can be
/// traced back to the commit that produced it.
std::string git_sha() {
  std::FILE* pipe = ::popen("git rev-parse --short HEAD 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  char buf[64] = {0};
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, pipe);
  const int status = ::pclose(pipe);
  std::string sha(buf, n);
  while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) sha.pop_back();
  if (status != 0 || sha.empty()) return "unknown";
  return sha;
}

std::string to_json(const std::vector<KernelResult>& kernels,
                    const std::vector<SubstrateResult>& substrates,
                    const TracingOverhead& tracing, const StorageOverhead& storage_overhead,
                    const MonitorOverhead& monitor_overhead, const ShuffleBench& shuffle,
                    const ElasticComparison& elastic) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(1);
  // The meta block deliberately has no "name" keys: parse_baseline_entries
  // keys entries on "name", so metadata must stay invisible to it.
  os << "{\n  \"meta\": {\"git_sha\": \"" << git_sha()
     << "\", \"classiccloud_tasks\": " << kClassicTasks
     << ", \"classiccloud_workers\": " << kClassicWorkers
     << ", \"azuremr_maps\": " << kAzureMaps << ", \"azuremr_reduces\": " << kAzureReduces
     << ", \"azuremr_workers\": " << kAzureWorkers
     << ", \"receive_batch\": " << kReceiveBatch << ", \"delete_batch\": " << kDeleteBatch
     << ", \"queue_shards\": " << kQueueShards << "},\n  \"kernels\": [\n";
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    const auto& k = kernels[i];
    os << "    {\"name\": \"" << k.name << "\", \"ns_per_op\": " << k.ns_per_op
       << ", \"naive_ns_per_op\": " << k.naive_ns_per_op << ", \"speedup\": ";
    os.precision(2);
    os << k.speedup;
    os.precision(1);
    os << "}" << (i + 1 < kernels.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"substrates\": [\n";
  for (std::size_t i = 0; i < substrates.size(); ++i) {
    const auto& s = substrates[i];
    os << "    {\"name\": \"" << s.name << "\", \"tasks\": " << s.tasks
       << ", \"seconds\": ";
    os.precision(6);
    os << s.seconds;
    os.precision(1);
    os << ", \"tasks_per_second\": " << s.tasks_per_second << "}"
       << (i + 1 < substrates.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"tracing_overhead\": {";
  os.precision(4);
  os << "\"plain_seconds\": " << tracing.plain_seconds
     << ", \"traced_off_seconds\": " << tracing.traced_off_seconds << ", \"ratio\": ";
  os.precision(3);
  os << tracing.ratio;
  os << "},\n  \"storage_overhead\": {";
  os.precision(4);
  os << "\"direct_seconds\": " << storage_overhead.direct_seconds
     << ", \"backend_seconds\": " << storage_overhead.backend_seconds << ", \"ratio\": ";
  os.precision(3);
  os << storage_overhead.ratio;
  os << "},\n  \"monitor_overhead\": {";
  os.precision(4);
  os << "\"plain_seconds\": " << monitor_overhead.plain_seconds
     << ", \"monitored_seconds\": " << monitor_overhead.monitored_seconds << ", \"ratio\": ";
  os.precision(3);
  os << monitor_overhead.ratio;
  os << "},\n  \"shuffle\": {";
  os.precision(0);
  os << "\"bytes_per_second\": " << shuffle.shuffle_bytes_per_second;
  os.precision(3);
  os << ", \"spill_amplification\": " << shuffle.spill_amplification
     << ", \"completed\": " << (shuffle.completed ? "true" : "false");
  os << "},\n  \"elastic_fleet\": {";
  os << "\"tasks\": " << elastic.tasks << ", \"completed\": " << elastic.completed
     << ", \"undeleted\": " << elastic.undeleted
     << ", \"revocations\": " << elastic.revocations;
  os.precision(0);
  os << ", \"static_makespan_sim_s\": " << elastic.static_makespan
     << ", \"elastic_makespan_sim_s\": " << elastic.elastic_makespan;
  os.precision(2);
  os << ", \"static_cost\": " << elastic.static_cost
     << ", \"elastic_cost\": " << elastic.elastic_cost;
  os.precision(1);
  os << "}\n}\n";
  return os.str();
}

/// Pulls {"name", <value_key>} pairs out of a baseline file written by this
/// binary. Not a general JSON parser; it understands exactly our format.
/// Entries whose object has no <value_key> before the next "name" are
/// skipped (that is how kernel vs substrate entries are told apart).
std::map<std::string, double> parse_baseline_entries(const std::string& text,
                                                     const char* value_key) {
  std::map<std::string, double> out;
  const std::string key = std::string("\"") + value_key + "\": ";
  std::size_t pos = 0;
  while ((pos = text.find("\"name\": \"", pos)) != std::string::npos) {
    pos += std::strlen("\"name\": \"");
    const std::size_t name_end = text.find('"', pos);
    if (name_end == std::string::npos) break;
    const std::string name = text.substr(pos, name_end - pos);
    const std::size_t next_name = text.find("\"name\": \"", name_end);
    const std::size_t value_pos = text.find(key, name_end);
    pos = name_end;
    if (value_pos == std::string::npos) continue;
    if (next_name != std::string::npos && value_pos > next_name) continue;
    out[name] = std::strtod(text.c_str() + value_pos + key.size(), nullptr);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string output_path = "BENCH_micro.json";
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      output_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--out FILE] [--check BASELINE.json]\n", argv[0]);
      return 2;
    }
  }

  std::vector<KernelResult> kernels;
  kernels.push_back(bench_matrix_multiply());
  std::fprintf(stderr, "%-30s %12.0f ns/op  (naive %12.0f, %.2fx)\n", kernels.back().name.c_str(),
               kernels.back().ns_per_op, kernels.back().naive_ns_per_op, kernels.back().speedup);
  kernels.push_back(bench_cholesky());
  std::fprintf(stderr, "%-30s %12.0f ns/op  (naive %12.0f, %.2fx)\n", kernels.back().name.c_str(),
               kernels.back().ns_per_op, kernels.back().naive_ns_per_op, kernels.back().speedup);
  kernels.push_back(bench_blast());
  std::fprintf(stderr, "%-30s %12.0f ns/op  (naive %12.0f, %.2fx)\n", kernels.back().name.c_str(),
               kernels.back().ns_per_op, kernels.back().naive_ns_per_op, kernels.back().speedup);

  std::vector<SubstrateResult> substrates;
  substrates.push_back(bench_classiccloud());
  substrates.push_back(bench_azuremr());
  substrates.push_back(bench_data_plane());
  for (const auto kind : storage::kAllStorageKinds) {
    substrates.push_back(bench_storage_backend(kind));
  }
  substrates.push_back(bench_block_cache(/*hot=*/true));
  substrates.push_back(bench_block_cache(/*hot=*/false));
  substrates.push_back(bench_metrics_scrape());
  substrates.push_back(bench_external_sort());
  const ShuffleBench shuffle = bench_shuffle_pipeline();
  substrates.push_back(shuffle.pipeline);
  for (const auto& s : substrates) {
    std::fprintf(stderr, "%-30s %8.1f tasks/s (%d tasks in %.4fs)\n", s.name.c_str(),
                 s.tasks_per_second, s.tasks, s.seconds);
  }
  std::fprintf(stderr, "%-30s %8.0f bytes/s, %.3fx spill amplification\n", "shuffle_data_plane",
               shuffle.shuffle_bytes_per_second, shuffle.spill_amplification);

  const TracingOverhead tracing = bench_tracing_overhead();
  std::fprintf(stderr, "%-30s %8.3fx (plain %.4fs, traced-off %.4fs)\n", "tracing_off_overhead",
               tracing.ratio, tracing.plain_seconds, tracing.traced_off_seconds);
  const StorageOverhead storage_overhead = bench_storage_overhead();
  std::fprintf(stderr, "%-30s %8.3fx (direct %.4fs, via-backend %.4fs)\n",
               "storage_backend_overhead", storage_overhead.ratio,
               storage_overhead.direct_seconds, storage_overhead.backend_seconds);
  const MonitorOverhead monitor_overhead = bench_monitor_overhead();
  std::fprintf(stderr, "%-30s %8.3fx (plain %.4fs, monitored %.4fs)\n", "monitor_overhead",
               monitor_overhead.ratio, monitor_overhead.plain_seconds,
               monitor_overhead.monitored_seconds);

  const ElasticComparison elastic = bench_elastic_fleet();
  std::fprintf(stderr,
               "%-30s static $%.2f/%.0fs vs elastic $%.2f/%.0fs (%d/%d tasks, "
               "%lld revocations)\n",
               "elastic_fleet", elastic.static_cost, elastic.static_makespan,
               elastic.elastic_cost, elastic.elastic_makespan, elastic.completed,
               elastic.tasks, static_cast<long long>(elastic.revocations));

  const std::string json = to_json(kernels, substrates, tracing, storage_overhead,
                                   monitor_overhead, shuffle, elastic);
  std::ofstream out(output_path);
  out << json;
  out.close();
  std::fprintf(stderr, "wrote %s\n", output_path.c_str());

  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "cannot read baseline %s\n", baseline_path.c_str());
      return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const auto baseline = parse_baseline_entries(buf.str(), "ns_per_op");
    bool ok = true;
    for (const auto& k : kernels) {
      const auto it = baseline.find(k.name);
      if (it == baseline.end()) {
        std::fprintf(stderr, "NOTE: %s has no baseline entry (new kernel?)\n", k.name.c_str());
        continue;
      }
      const double ratio = k.ns_per_op / it->second;
      if (ratio > 2.0) {
        std::fprintf(stderr, "FAIL: %s is %.2fx slower than baseline (%.0f vs %.0f ns/op)\n",
                     k.name.c_str(), ratio, k.ns_per_op, it->second);
        ok = false;
      } else {
        std::fprintf(stderr, "OK:   %s at %.2fx of baseline\n", k.name.c_str(), ratio);
      }
    }
    // Storage data-plane rows are gated like kernels: the object-store path
    // and the cache paths may not regress more than 2x against the tracked
    // baseline. The pre-refactor rows (classiccloud/azuremr/data_plane) stay
    // informational — they were recorded before any gate existed and on
    // different hardware, so holding new runs to them would be meaningless.
    const auto baseline_secs = parse_baseline_entries(buf.str(), "seconds");
    for (const auto& s : substrates) {
      if (s.name.rfind("storage_", 0) != 0 && s.name.rfind("block_cache_", 0) != 0 &&
          s.name.rfind("shuffle_", 0) != 0) {
        continue;
      }
      const auto it = baseline_secs.find(s.name);
      if (it == baseline_secs.end()) {
        std::fprintf(stderr, "NOTE: %s has no baseline entry (new data-plane row?)\n",
                     s.name.c_str());
        continue;
      }
      if (it->second < 1e-9) {
        std::fprintf(stderr, "NOTE: %s baseline is ~0s; skipping ratio gate\n", s.name.c_str());
        continue;
      }
      const double ratio = s.seconds / it->second;
      if (ratio > 2.0) {
        std::fprintf(stderr, "FAIL: %s is %.2fx slower than baseline (%.4fs vs %.4fs)\n",
                     s.name.c_str(), ratio, s.seconds, it->second);
        ok = false;
      } else {
        std::fprintf(stderr, "OK:   %s at %.2fx of baseline\n", s.name.c_str(), ratio);
      }
    }
    if (storage_overhead.ratio > 1.03) {
      std::fprintf(stderr,
                   "FAIL: cache-disabled StorageBackend path costs %.1f%% on the data plane "
                   "(budget 3%%)\n",
                   (storage_overhead.ratio - 1.0) * 100.0);
      ok = false;
    } else {
      std::fprintf(stderr, "OK:   cache-disabled storage path at %.3fx of direct BlobStore\n",
                   storage_overhead.ratio);
    }
    if (tracing.ratio > 1.03) {
      std::fprintf(stderr,
                   "FAIL: disabled tracing costs %.1f%% on the data plane (budget 3%%)\n",
                   (tracing.ratio - 1.0) * 100.0);
      ok = false;
    } else {
      std::fprintf(stderr, "OK:   disabled tracing at %.3fx of plain data plane\n",
                   tracing.ratio);
    }
    if (monitor_overhead.ratio > 1.03) {
      std::fprintf(stderr,
                   "FAIL: 100ms monitor scraping costs %.1f%% on the data plane (budget 3%%)\n",
                   (monitor_overhead.ratio - 1.0) * 100.0);
      ok = false;
    } else {
      std::fprintf(stderr, "OK:   100ms monitor scraping at %.3fx of unmonitored data plane\n",
                   monitor_overhead.ratio);
    }
    // The shuffle pipeline is gated on semantics: the job must complete and
    // spill amplification must be a sane ratio (>= 1: map output is written
    // at least once; the configured tight budgets force sort runs, but the
    // gate only rejects nonsense, not hardware-dependent magnitudes).
    if (!shuffle.completed) {
      std::fprintf(stderr, "FAIL: shuffle pipeline bench did not complete\n");
      ok = false;
    } else if (shuffle.spill_amplification < 1.0 - 1e-9) {
      std::fprintf(stderr, "FAIL: shuffle spill amplification %.3f < 1.0 (accounting bug?)\n",
                   shuffle.spill_amplification);
      ok = false;
    } else {
      std::fprintf(stderr, "OK:   shuffle pipeline %.0f bytes/s, %.3fx spill amplification\n",
                   shuffle.shuffle_bytes_per_second, shuffle.spill_amplification);
    }
    // The elastic row is gated on semantics, not a baseline: DES makes it
    // exact, so any violation is a real regression in the elastic drivers.
    if (elastic.completed != elastic.tasks || elastic.undeleted != 0) {
      std::fprintf(stderr, "FAIL: elastic fleet lost work (%d/%d tasks, %llu undeleted)\n",
                   elastic.completed, elastic.tasks,
                   static_cast<unsigned long long>(elastic.undeleted));
      ok = false;
    } else if (elastic.elastic_cost > elastic.static_cost) {
      std::fprintf(stderr, "FAIL: autoscaled run billed $%.2f, static fleet $%.2f\n",
                   elastic.elastic_cost, elastic.static_cost);
      ok = false;
    } else {
      std::fprintf(stderr, "OK:   autoscaled run bills $%.2f vs static $%.2f, no lost work\n",
                   elastic.elastic_cost, elastic.static_cost);
    }
    if (!ok) return 1;
  }
  return 0;
}
