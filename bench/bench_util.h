// Shared table-printing helpers for the figure-reproduction benches.
//
// Set PPC_CSV_DIR=<dir> to additionally dump every printed series as a CSV
// file named after its title — handy for regenerating the figures with an
// external plotting tool.
#pragma once

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "common/table.h"
#include "core/experiments.h"
#include "storage/storage_backend.h"

namespace ppc::bench {

/// Storage backends a figure bench should emit rows for. No argument keeps
/// the checked-in object-store baseline; `<bench> sharedfs` (or parallelfs)
/// selects one alternative data plane; `<bench> all` emits per-backend rows
/// so the three data planes can be compared side by side.
inline std::vector<storage::StorageKind> backends_from_args(int argc, char** argv) {
  if (argc < 2) return {storage::StorageKind::kObject};
  const std::string arg = argv[1];
  if (arg == "all") {
    return {std::begin(storage::kAllStorageKinds), std::end(storage::kAllStorageKinds)};
  }
  return {storage::parse_storage_kind(arg)};
}

/// "Cap3 compute time (Fig 4)" -> "cap3_compute_time_fig_4".
inline std::string csv_slug(const std::string& title) {
  std::string slug;
  for (char c : title) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      slug += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!slug.empty() && slug.back() != '_') {
      slug += '_';
    }
  }
  while (!slug.empty() && slug.back() == '_') slug.pop_back();
  return slug;
}

/// Writes header + rows to $PPC_CSV_DIR/<slug>.csv when the env var is set.
inline void maybe_write_csv(const std::string& title, const std::string& header,
                            const std::vector<std::string>& rows) {
  const char* dir = std::getenv("PPC_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return;
  const std::string path = std::string(dir) + "/" + csv_slug(title) + ".csv";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  out << header << '\n';
  for (const auto& row : rows) out << row << '\n';
  std::printf("(csv written to %s)\n", path.c_str());
}

inline void print_instance_type_rows(const std::string& title,
                                     const std::vector<core::InstanceTypeRow>& rows) {
  Table table(title);
  table.set_header({"Deployment", "Storage", "Compute time", "Cost (hour units) $",
                    "Amortized cost $", "FS servers $"});
  std::vector<std::string> csv_rows;
  for (const auto& r : rows) {
    table.add_row({r.label, r.storage, format_duration(r.compute_time),
                   Table::num(r.cost_hour_units, 2), Table::num(r.cost_amortized, 2),
                   r.storage_service_cost > 0 ? Table::num(r.storage_service_cost, 2) : "-"});
    csv_rows.push_back(r.label + "," + r.storage + "," + Table::num(r.compute_time, 1) + "," +
                       Table::num(r.cost_hour_units, 4) + "," + Table::num(r.cost_amortized, 4) +
                       "," + Table::num(r.storage_service_cost, 4));
  }
  table.print();
  maybe_write_csv(title,
                  "deployment,storage,compute_time_s,cost_hour_units,cost_amortized,"
                  "fs_server_cost",
                  csv_rows);
}

inline void print_scaling_points(const std::string& title,
                                 const std::vector<core::ScalingPoint>& points) {
  Table table(title);
  table.set_header({"Framework", "Deployment", "Storage", "Files", "Parallel efficiency (Eq 1)",
                    "Per-core time per file s (Eq 2)", "Makespan"});
  std::vector<std::string> csv_rows;
  for (const auto& p : points) {
    table.add_row({p.framework, p.deployment, p.storage, std::to_string(p.files),
                   Table::num(p.efficiency, 3), Table::num(p.per_core_task_seconds, 1),
                   format_duration(p.makespan)});
    csv_rows.push_back(p.framework + "," + p.deployment + "," + p.storage + "," +
                       std::to_string(p.files) + "," + Table::num(p.efficiency, 4) + "," +
                       Table::num(p.per_core_task_seconds, 2) + "," +
                       Table::num(p.makespan, 1));
  }
  table.print();
  maybe_write_csv(title,
                  "framework,deployment,storage,files,efficiency,per_core_task_s,makespan_s",
                  csv_rows);
}

}  // namespace ppc::bench
