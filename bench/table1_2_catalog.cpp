// Tables 1 & 2: the EC2 and Azure instance-type catalogs as configured in
// this reproduction, plus the derived quantities the models consume.
#include <cstdio>

#include "cloud/instance_types.h"
#include "common/table.h"

using namespace ppc;

namespace {
void print_catalog(const std::string& title, const std::vector<cloud::InstanceType>& types) {
  Table table(title);
  table.set_header({"Instance Type", "Memory GB", "ECU", "CPU cores", "Clock GHz", "Cost/hour $",
                    "Mem/core GB", "Mem BW GB/s"});
  for (const auto& t : types) {
    table.add_row({t.name, Table::num(t.memory_gb, 1),
                   t.ec2_compute_units > 0 ? std::to_string(t.ec2_compute_units) : "-",
                   std::to_string(t.cpu_cores), Table::num(t.clock_ghz, 2),
                   Table::num(t.cost_per_hour, 2), Table::num(t.memory_per_core_gb(), 2),
                   Table::num(t.memory_bandwidth_gbps, 1)});
  }
  table.print();
}
}  // namespace

int main() {
  std::puts("== Reproduction of Table 1 (selected EC2 instance types) and");
  std::puts("== Table 2 (Azure instance types), plus model-derived columns\n");
  print_catalog("Table 1: Amazon EC2", cloud::ec2_catalog());
  print_catalog("Table 2: Windows Azure", cloud::azure_catalog());
  print_catalog("Bare-metal baseline nodes (scalability sections)",
                {cloud::bare_metal_cap3_node(), cloud::bare_metal_idataplex_node(),
                 cloud::bare_metal_hpcs_node(), cloud::bare_metal_gtm_hadoop_node(),
                 cloud::bare_metal_cost_cluster_node()});
  return 0;
}
