// Queue saturation sweep as a tracked benchmark: real threads drain a
// sharded cloudq::MessageQueue through the batch APIs across a
// (workers x shards) grid, emitting BENCH_saturation.json (the tasks/s-vs-
// shards curve CI archives). `--check bench/saturation_baseline.json` gates
// the sweep: peak throughput may not fall below half the checked-in
// baseline's peak, and the batched rows must actually batch (occupancy
// close to the request ceiling) — loose enough for shared-runner noise,
// tight enough to catch a convoying lock or a de-batched hot path.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/saturation.h"

namespace {

std::string git_sha() {
  std::FILE* pipe = ::popen("git rev-parse --short HEAD 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  char buf[64] = {0};
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, pipe);
  const int status = ::pclose(pipe);
  std::string sha(buf, n);
  while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) sha.pop_back();
  if (status != 0 || sha.empty()) return "unknown";
  return sha;
}

/// Reads the scalar after `"<key>": ` in a file this bench wrote earlier.
double read_json_number(const std::string& text, const char* key, double fallback) {
  const std::string needle = std::string("\"") + key + "\": ";
  const std::size_t pos = text.find(needle);
  if (pos == std::string::npos) return fallback;
  return std::strtod(text.c_str() + pos + needle.size(), nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  std::string output_path = "BENCH_saturation.json";
  std::string baseline_path;
  ppc::sim::SaturationConfig config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      output_path = argv[++i];
    } else if (std::strcmp(argv[i], "--tasks") == 0 && i + 1 < argc) {
      config.tasks = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [--out FILE] [--check BASELINE.json] [--tasks N]\n",
                   argv[0]);
      return 2;
    }
  }

  const ppc::sim::SaturationReport report = ppc::sim::run_saturation_sweep(config);
  std::fputs(report.to_text().c_str(), stderr);

  std::ofstream out(output_path);
  out << report.to_json(git_sha(), config);
  out.close();
  std::fprintf(stderr, "wrote %s\n", output_path.c_str());

  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "cannot read baseline %s\n", baseline_path.c_str());
      return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const double baseline_peak =
        read_json_number(buf.str(), "peak_tasks_per_second", 0.0);
    bool ok = true;
    if (baseline_peak <= 0.0) {
      std::fprintf(stderr, "NOTE: baseline has no peak_tasks_per_second; skipping peak gate\n");
    } else if (report.peak_tasks_per_second < 0.5 * baseline_peak) {
      std::fprintf(stderr, "FAIL: peak %.0f tasks/s is below half the baseline peak %.0f\n",
                   report.peak_tasks_per_second, baseline_peak);
      ok = false;
    } else {
      std::fprintf(stderr, "OK:   peak %.0f tasks/s vs baseline %.0f (gate: >= 0.5x)\n",
                   report.peak_tasks_per_second, baseline_peak);
    }
    // Batched rows must move close to `batch` messages per request; a drop
    // toward 1.0 means the batch path silently degraded to singles.
    for (const auto& cell : report.cells) {
      if (cell.batch <= 1) continue;
      if (cell.batch_occupancy < 0.5 * cell.batch) {
        std::fprintf(stderr, "FAIL: %s occupancy %.2f < half of batch %d\n",
                     cell.name().c_str(), cell.batch_occupancy, cell.batch);
        ok = false;
      }
    }
    if (ok) std::fprintf(stderr, "OK:   batched rows hold >= 0.5x batch occupancy\n");
    if (!ok) return 1;
  }
  return 0;
}
