// Figures 5 & 6: Cap3 parallel efficiency (Eq 1) and per-core per-file time
// (Eq 2) for all four frameworks over a replicated set of 458-read files.
//
// Deployments per §4.2: EC2 = 16 HCXL instances (128 workers), Azure = 128
// Small instances, Hadoop and DryadLINQ on the 32-node x 8-core 2.5 GHz
// bare-metal cluster (DryadLINQ under Windows, hence the ~12.5% faster Cap3
// binary).
//
// Paper shape: all four within ~20% parallel efficiency, high (>0.7).
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  std::puts("== Figures 5 & 6: Cap3 scalability across frameworks ==\n");
  std::vector<ppc::core::ScalingPoint> points;
  for (const auto backend : ppc::bench::backends_from_args(argc, argv)) {
    const auto backend_points = ppc::core::run_cap3_scaling_study(
        42, {512, 1024, 2048, 3072, 4096}, backend);
    points.insert(points.end(), backend_points.begin(), backend_points.end());
  }
  ppc::bench::print_scaling_points("Cap3 parallel efficiency (Fig 5) / per-core file time (Fig 6)",
                                   points);
  std::puts("\nExpected shape: comparable efficiency (within ~20%) for all four frameworks;");
  std::puts("Windows environments (DryadLINQ, Azure) see the faster Cap3 binary in Fig 6.");
  return 0;
}
