// Ablation: dynamic global-queue scheduling vs static partitioning on
// inhomogeneous data — the mechanism behind §4.2's observation ("better
// natural load balancing in Hadoop than in DryadLINQ due to Hadoop's
// dynamic global level scheduling as opposed to DryadLINQ's static task
// partitioning"), plus the effect of speculative execution on stragglers
// and of the static partitioning policy (round-robin vs size-balanced LPT).
#include <cstdio>

#include "common/string_util.h"
#include "common/table.h"
#include "core/drivers.h"

using namespace ppc;
using namespace ppc::core;

int main() {
  std::puts("== Ablation: dynamic vs static scheduling on inhomogeneous BLAST data ==");
  std::puts("Workload: 192 query files (inhomogeneous base x1.5) on 8 nodes x 8 cores;");
  std::puts("3% of executions become 8x stragglers (tail-dominated regime)\n");

  const Workload workload = make_blast_workload(192, 100, 11);
  const Deployment d = make_deployment(cloud::bare_metal_idataplex_node(), 8, 8);
  const ExecutionModel model(AppKind::kBlast);

  auto base_params = [] {
    SimRunParams p;
    p.seed = 3;
    p.provider_variability = false;
    p.straggler_prob = 0.03;
    p.straggler_factor = 8.0;
    return p;
  };

  Table table("Scheduling policy comparison");
  table.set_header({"Scheduler", "Makespan", "Efficiency (Eq 1)", "Duplicates/wasted"});

  {
    SimRunParams params = base_params();
    const RunResult r = run_mapreduce_sim(workload, d, model, params);
    table.add_row({"Dynamic global queue + speculation (Hadoop)", format_duration(r.makespan),
                   Table::num(r.parallel_efficiency, 3),
                   std::to_string(r.scheduler_stats.wasted_attempts)});
  }
  {
    SimRunParams params = base_params();
    params.scheduler.speculative_execution = false;
    const RunResult r = run_mapreduce_sim(workload, d, model, params);
    table.add_row({"Dynamic global queue, no speculation", format_duration(r.makespan),
                   Table::num(r.parallel_efficiency, 3), "0"});
  }
  {
    SimRunParams params = base_params();
    const RunResult r = run_dryad_sim(workload, d, model, params);
    table.add_row({"Static round-robin partitions (DryadLINQ)", format_duration(r.makespan),
                   Table::num(r.parallel_efficiency, 3), "0"});
  }
  {
    SimRunParams params = base_params();
    params.dryad_partition_by_size = true;
    const RunResult r = run_dryad_sim(workload, d, model, params);
    table.add_row({"Static size-balanced (LPT) partitions", format_duration(r.makespan),
                   Table::num(r.parallel_efficiency, 3), "0"});
  }
  table.print();

  std::puts("\n== Task granularity sweep (§6.2: GTM tasks are finer-grained) ==");
  std::puts("Same total GTM work (26.4M points) split into varying file counts, 8 x HCXL\n");
  Table gran("Task granularity vs overhead and balance");
  gran.set_header({"Files", "Points/file", "Makespan", "Efficiency (Eq 1)"});
  const ExecutionModel gtm_model(AppKind::kGtm);
  const Deployment gtm_d = make_deployment(cloud::ec2_hcxl(), 8, 8);
  for (int files : {66, 132, 264, 528, 1056, 2112, 4224, 8448}) {
    const double points = 26.4e6 / files;
    const Workload w = make_gtm_workload(files, points);
    SimRunParams params;
    params.seed = 5;
    params.provider_variability = false;
    const RunResult r = run_classic_cloud_sim(w, gtm_d, gtm_model, params);
    gran.add_row({std::to_string(files), Table::num(points, 0), format_duration(r.makespan),
                  Table::num(r.parallel_efficiency, 3)});
  }
  gran.print();
  std::puts("\nExpected: coarse tasks leave cores idle at the tail; very fine tasks pay");
  std::puts("per-task transfer/queue overhead — \"sufficiently coarser grain task");
  std::puts("decompositions\" (§8) sit in the middle.");
  return 0;
}
