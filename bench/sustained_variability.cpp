// §3 / [12]: sustained performance variability of the cloud platforms.
// The paper reports std-devs of 1.56% (AWS) and 2.25% (Azure) over a week
// of repeated runs with no day-of-week or time-of-day correlation.
#include <cstdio>

#include "common/table.h"
#include "core/experiments.h"

using namespace ppc;

int main() {
  std::puts("== §3: sustained performance variability (repeated Cap3 runs) ==\n");
  const auto report = core::run_sustained_variability_study(42, /*samples=*/28);
  Table table("Coefficient of variation of repeated run times");
  table.set_header({"Provider", "Measured CV %", "Paper std-dev %"});
  table.add_row({"Amazon EC2 (HCXL)", Table::num(report.ec2_cv * 100, 2), "1.56"});
  table.add_row({"Windows Azure (Small)", Table::num(report.azure_cv * 100, 2), "2.25"});
  table.print();
  std::printf("  (%d samples per provider, seed-varied 'times of day')\n",
              report.samples_per_provider);
  return 0;
}
