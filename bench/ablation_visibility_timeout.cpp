// Ablation: the visibility timeout (§2.1.3).
//
// The paper's fault tolerance hinges on "the configurable visibility
// timeout feature": too short and healthy tasks get double-processed
// (wasted compute, extra cost); long enough and only genuine failures
// re-run. This sweep quantifies that trade-off on the Cap3 workload, where
// a task takes ~105 s.
#include <cstdio>

#include "common/string_util.h"
#include "common/table.h"
#include "core/drivers.h"
#include "runtime/metrics.h"

using namespace ppc;
using namespace ppc::core;

int main() {
  std::puts("== Ablation: SQS/Azure Queue visibility timeout vs duplicate work ==");
  std::puts("Workload: 256 Cap3 files x 458 reads on 2 x HCXL (16 workers), task ~105 s\n");

  const Workload workload = make_cap3_workload(256, 458);
  const Deployment d = make_deployment(cloud::ec2_hcxl(), 2, 8);
  const ExecutionModel model(AppKind::kCap3);

  Table table("Visibility timeout sweep");
  table.set_header({"Visibility timeout s", "Makespan", "Duplicate executions",
                    "Parallel efficiency (Eq 1)", "Amortized compute $"});
  for (double timeout : {30.0, 60.0, 90.0, 120.0, 240.0, 600.0, 3600.0}) {
    SimRunParams params;
    params.seed = 42;
    params.provider_variability = false;
    params.visibility_timeout = timeout;
    // Efficiency and duplicate work are read back from the run's
    // MetricsRegistry — the same counters/gauges every substrate publishes.
    ppc::runtime::MetricsRegistry metrics;
    params.metrics = &metrics;
    const RunResult r = run_classic_cloud_sim(workload, d, model, params);
    const std::string prefix = r.framework + ".";
    table.add_row({Table::num(timeout, 0), format_duration(r.makespan),
                   std::to_string(metrics.counter_value(prefix + "duplicate_executions")),
                   Table::num(metrics.gauge(prefix + "parallel_efficiency"), 3),
                   Table::num(r.compute_cost_amortized, 2)});
  }
  table.print();
  std::puts("\nExpected: timeouts below the ~105 s task time trigger redeliveries and");
  std::puts("duplicate executions; generous timeouts eliminate them at no cost. All runs");
  std::puts("complete every task — at-least-once delivery never loses work.");
  return 0;
}
