// Ablation: effect of data inhomogeneity on the frameworks — the study the
// paper leans on in §4.2 ("We performed a detailed study of the performance
// of Hadoop and DryadLINQ in the face of inhomogeneous data in one of our
// previous studies [13]. In this study, we noticed better natural load
// balancing in Hadoop than in DryadLINQ due to Hadoop's dynamic global
// level scheduling as opposed to DryadLINQ's static task partitioning.")
//
// We sweep the coefficient of variation of per-file BLAST work and measure
// the makespan of the dynamic-queue (Hadoop / Classic Cloud) and static
// (Dryad) schedulers on the same node layout. The paper also "assume[s]
// that cloud frameworks will be able [to] perform better load balancing
// similar to Hadoop because they share the same dynamic scheduling global
// queue-based architecture" — the Classic Cloud column tests that
// assumption directly.
#include <cstdio>

#include "common/string_util.h"
#include "common/table.h"
#include "core/drivers.h"

using namespace ppc;
using namespace ppc::core;

int main() {
  std::puts("== Ablation: data inhomogeneity vs scheduling policy (§4.2 / [13]) ==");
  std::puts("Workload: 256 BLAST query files on 8 nodes x 8 cores; per-file work CV swept\n");

  const Deployment bare = make_deployment(cloud::bare_metal_idataplex_node(), 8, 8);
  const Deployment cloud_d = make_deployment(cloud::ec2_hcxl(), 8, 8);
  const ExecutionModel model(AppKind::kBlast);

  Table table("Makespan (and efficiency) vs inhomogeneity");
  table.set_header({"Work CV", "Hadoop (dynamic)", "Dryad (static RR)", "Dryad (static LPT)",
                    "ClassicCloud-EC2 (dynamic)"});
  for (double cv : {0.0, 0.15, 0.3, 0.45, 0.6}) {
    const Workload w = make_blast_workload(256, 100, /*seed=*/17, 128, cv);
    SimRunParams params;
    params.seed = 9;
    params.provider_variability = false;

    const RunResult hadoop = run_mapreduce_sim(w, bare, model, params);
    const RunResult dryad_rr = run_dryad_sim(w, bare, model, params);
    SimRunParams lpt = params;
    lpt.dryad_partition_by_size = true;
    const RunResult dryad_lpt = run_dryad_sim(w, bare, model, lpt);
    const RunResult classic = run_classic_cloud_sim(w, cloud_d, model, params);

    auto cell = [](const RunResult& r) {
      return format_duration(r.makespan) + " (" + Table::num(r.parallel_efficiency, 2) + ")";
    };
    table.add_row({Table::num(cv, 2), cell(hadoop), cell(dryad_rr), cell(dryad_lpt),
                   cell(classic)});
  }
  table.print();
  std::puts("\nExpected: at CV=0 all schedulers tie; as inhomogeneity grows, the static");
  std::puts("partitions fall behind the dynamic global queues, and the Classic Cloud");
  std::puts("framework tracks Hadoop (same dynamic-queue architecture, §4.2).");
  return 0;
}
