// Table 4: cost to assemble 4096 FASTA files (458 reads each).
//
// Paper values: EC2 total $11.13 (compute $10.88), Azure total $15.77
// (compute $15.36); owned 32-node/24-core cluster $8.25 / $9.43 / $11.01 at
// 80 / 70 / 60% utilization.
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/experiments.h"

using namespace ppc;

int main(int argc, char** argv) {
  std::puts("== Table 4: cost comparison, assembling 4096 Cap3 files ==\n");
  for (const auto backend : bench::backends_from_args(argc, argv)) {
    const auto report = core::run_table4_cost_comparison(42, backend);
    std::printf("-- storage backend: %s --\n", report.storage_backend.c_str());

    report.ec2.to_table().print();
    std::printf("  (EC2 makespan: %s on 16 x HCXL)\n", format_duration(report.ec2_makespan).c_str());
    const auto& eb = report.ec2_queue_batching;
    std::printf("  (queue batching: %llu requests vs %llu unbatched — $%.4f vs $%.4f, "
                "%.1fx fewer requests)\n\n",
                static_cast<unsigned long long>(eb.requests),
                static_cast<unsigned long long>(eb.unbatched_requests), eb.cost,
                eb.unbatched_cost, eb.request_reduction());
    report.azure.to_table().print();
    std::printf("  (Azure makespan: %s on 128 x Small)\n",
                format_duration(report.azure_makespan).c_str());
    const auto& ab = report.azure_queue_batching;
    std::printf("  (queue batching: %llu requests vs %llu unbatched — $%.4f vs $%.4f, "
                "%.1fx fewer requests)\n\n",
                static_cast<unsigned long long>(ab.requests),
                static_cast<unsigned long long>(ab.unbatched_requests), ab.cost,
                ab.unbatched_cost, ab.request_reduction());

    Table cluster("Owned cluster (32 node x 24 core, $500k/3y + $150k/y)");
    cluster.set_header({"Utilization", "Job cost $"});
    for (const auto& [util, cost] : report.cluster_costs) {
      cluster.add_row({Table::num(util * 100, 0) + "%", Table::num(cost, 2)});
    }
    cluster.print();
    std::printf("  (Hadoop job consumed %.1f core-hours on the cluster)\n",
                report.cluster_core_hours);
  }
  std::puts("\nPaper: EC2 $11.13, Azure $15.77, cluster $8.25/$9.43/$11.01 at 80/70/60%.");
  return 0;
}
