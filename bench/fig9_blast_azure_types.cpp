// Figure 9: BLAST on Azure instance types — 8 query files over 8 cores
// total, sweeping the (workers per instance) x (threads per worker) grid of
// each instance type (§5.1).
//
// Paper shape: Large/XL best (the 8.7 GB database fits in memory); Small
// worst; pure threads slightly slower than multiple worker processes.
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table.h"
#include "core/experiments.h"

using namespace ppc;

int main(int argc, char** argv) {
  std::puts("== Figure 9: BLAST on Azure instance types (workers x threads grid) ==");
  std::puts("Workload: 8 query files x 100 queries; 8 cores total per configuration\n");
  Table table("BLAST time to process 8 query files");
  table.set_header({"Configuration (type - instances x workers [x threads])", "Storage",
                    "Compute time", "Amortized cost $"});
  for (const auto backend : bench::backends_from_args(argc, argv)) {
    for (const auto& r : core::run_blast_azure_instance_study(42, backend)) {
      table.add_row({r.label, storage::to_string(backend), format_duration(r.compute_time),
                     Table::num(r.cost_amortized, 3)});
    }
  }
  table.print();
  std::puts("\nExpected shape: Small slowest -> XL fastest (memory ladder); within a type,");
  std::puts("all-threads configurations trail all-process configurations slightly.");
  return 0;
}
