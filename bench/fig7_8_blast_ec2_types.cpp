// Figures 7 & 8: BLAST cost and time across EC2 instance types.
// Workload: 64 query files x 100 sequences, 16 cores (§5.1).
//
// Paper shape: XL ≈ HCXL despite the clock gap (memory compensates); HM4XL
// fastest but expensive; HCXL most cost-effective.
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  std::puts("== Figures 7 & 8: BLAST on EC2 instance types ==");
  std::puts("Workload: 64 query files x 100 queries, 16 cores, NR-like 8.7 GB database\n");
  std::vector<ppc::core::InstanceTypeRow> rows;
  for (const auto backend : ppc::bench::backends_from_args(argc, argv)) {
    const auto backend_rows = ppc::core::run_blast_ec2_instance_study(42, backend);
    rows.insert(rows.end(), backend_rows.begin(), backend_rows.end());
  }
  ppc::bench::print_instance_type_rows("BLAST compute time (Fig 8) and cost (Fig 7)", rows);
  std::puts("\nExpected shape: XL ≈ HCXL; HM4XL fastest (clock + full DB residency);");
  std::puts("HCXL again the most cost-effective choice.");
  return 0;
}
