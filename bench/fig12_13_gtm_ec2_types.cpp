// Figures 12 & 13: GTM Interpolation cost and time across EC2 instance
// types. Workload: 264 files x 100k PubChem-like points on 16 cores (§6.1).
//
// Paper shape: memory (size and bandwidth) is the bottleneck; HM4XL best
// performance; HCXL still the most economical.
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  std::puts("== Figures 12 & 13: GTM Interpolation on EC2 instance types ==");
  std::puts("Workload: 264 files x 100k points (26.4M points, 166-d), 16 cores\n");
  std::vector<ppc::core::InstanceTypeRow> rows;
  for (const auto backend : ppc::bench::backends_from_args(argc, argv)) {
    const auto backend_rows = ppc::core::run_gtm_ec2_instance_study(42, backend);
    rows.insert(rows.end(), backend_rows.begin(), backend_rows.end());
  }
  ppc::bench::print_instance_type_rows("GTM compute time (Fig 13) and cost (Fig 12)", rows);
  std::puts("\nExpected shape: HM4XL fastest; Large beats HCXL/XL (fewer cores per memory");
  std::puts("bus); HCXL remains the economical choice.");
  return 0;
}
