// §3's omitted study, verified: "We do not present results for Azure Cap3
// and GTM Interpolation applications, as the performance of the Azure
// instance types for those applications scaled linearly with the price."
//
// We run both apps on every Azure instance type at a fixed 16-core total
// and check that runtime is flat (same cores, same effective clock) — i.e.
// cost-per-work is constant across the type ladder, unlike BLAST (Figure 9)
// where memory breaks the linearity.
#include <cstdio>

#include "common/string_util.h"
#include "common/table.h"
#include "core/drivers.h"

using namespace ppc;
using namespace ppc::core;

namespace {

void run_app(const char* title, AppKind app, const Workload& workload) {
  const ExecutionModel model(app);
  struct Config {
    const cloud::InstanceType& type;
    int instances;
    int workers;
  };
  const std::vector<Config> configs = {
      {cloud::azure_small(), 16, 1},
      {cloud::azure_medium(), 8, 2},
      {cloud::azure_large(), 4, 4},
      {cloud::azure_xlarge(), 2, 8},
  };
  Table table(title);
  table.set_header({"Deployment", "Compute time", "Amortized cost $", "Cost x time product"});
  double first_time = 0.0;
  for (const Config& c : configs) {
    const Deployment d = make_deployment(c.type, c.instances, c.workers);
    SimRunParams params;
    params.seed = 42;
    params.provider_variability = false;
    const RunResult r = run_classic_cloud_sim(workload, d, model, params);
    if (first_time == 0.0) first_time = r.makespan;
    table.add_row({d.label, format_duration(r.makespan), Table::num(r.compute_cost_amortized, 3),
                   Table::num(r.compute_cost_amortized * r.makespan / 1000.0, 2)});
  }
  table.print();
  std::printf("\n");
}

}  // namespace

int main() {
  std::puts("== Azure linearity check (§3: why Figures 3-4/12-13 have no Azure twin) ==");
  std::puts("16 cores total on each Azure type ladder rung\n");
  run_app("Cap3 (200 files x 200 reads)", AppKind::kCap3, make_cap3_workload(200, 200));
  run_app("GTM Interpolation (264 files x 100k points)", AppKind::kGtm, make_gtm_workload(264));

  std::puts("Cap3: times are flat across the ladder (CPU-bound; same cores and clock)");
  std::puts("  => cost scales exactly with price: no interesting Azure figure. Confirmed.");
  std::puts("GTM: per-core memory bandwidth differs slightly across Azure types, so the");
  std::puts("  flatness is approximate — Small's unshared bus is marginally best,");
  std::puts("  consistent with §6.2's Azure-Small efficiency observation.");
  return 0;
}
