#include "azuremr/runtime.h"

#include <chrono>
#include <set>
#include <thread>

#include "common/clock.h"
#include "common/error.h"
#include "common/string_util.h"

namespace ppc::azuremr {

AzureMapReduce::AzureMapReduce(blobstore::BlobStore& store, cloudq::QueueService& queues,
                               int num_workers, MrWorkerConfig worker_config)
    : store_(store), queues_(queues), num_workers_(num_workers), worker_config_(worker_config) {
  PPC_REQUIRE(num_workers >= 1, "need at least one worker");
  // One registry for every worker role this runtime provisions; callers may
  // pre-seed worker_config.metrics to share it even wider.
  if (!worker_config_.metrics) worker_config_.metrics = std::make_shared<runtime::MetricsRegistry>();
  metrics_ = worker_config_.metrics;
}

AzureMapReduce::~AzureMapReduce() = default;

namespace {

/// Drains the monitor queue into `done` until the expected task ids are all
/// present or the timeout lapses. Duplicate completions collapse.
bool wait_for_tasks(cloudq::MessageQueue& monitor, const std::set<std::string>& expected,
                    std::set<std::string>& done, Seconds timeout) {
  ppc::SystemClock clock;
  while (clock.now() < timeout) {
    while (auto message = monitor.receive(5.0)) {
      const auto record = ppc::decode_kv(message->body());
      if (record.contains("task")) done.insert(record.at("task"));
      monitor.delete_message(message->receipt_handle);
    }
    bool all = true;
    for (const auto& id : expected) {
      if (!done.contains(id)) {
        all = false;
        break;
      }
    }
    if (all) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return false;
}

}  // namespace

JobResult AzureMapReduce::run(const JobSpec& spec) {
  PPC_REQUIRE(!spec.inputs.empty(), "job has no inputs");
  PPC_REQUIRE(spec.map != nullptr && spec.reduce != nullptr, "job needs map and reduce");
  PPC_REQUIRE(spec.num_reduce_tasks >= 1, "need at least one reduce task");
  PPC_REQUIRE(spec.max_iterations >= 1, "need at least one iteration");
  const bool iterative = spec.merge != nullptr;
  for (const auto& [name, _] : spec.inputs) {
    PPC_REQUIRE(!name.empty() && name.find('/') == std::string::npos &&
                    name.find('=') == std::string::npos && name.find(';') == std::string::npos,
                "input names must be flat identifiers: " + name);
  }

  const std::string bucket = spec.job_id;
  store_.create_bucket(bucket);
  auto task_queue = queues_.create_queue(spec.job_id + "-mr-tasks");
  auto monitor_queue = queues_.create_queue(spec.job_id + "-mr-monitor");

  // Provision the worker pool (the Azure role instances).
  std::vector<std::unique_ptr<MrWorker>> workers;
  workers.reserve(static_cast<std::size_t>(num_workers_));
  for (int i = 0; i < num_workers_; ++i) {
    workers.push_back(std::make_unique<MrWorker>(
        spec.job_id + "-w" + std::to_string(i), store_, task_queue, monitor_queue, spec.map,
        spec.reduce, spec.combine, spec.num_reduce_tasks, bucket, worker_config_));
    workers.back()->start();
  }

  // Upload the static inputs once; workers cache them across iterations.
  for (const auto& [name, data] : spec.inputs) {
    store_.put(bucket, "input/" + name, data);
  }

  JobResult result;
  std::string broadcast = spec.initial_broadcast;
  ppc::SystemClock clock;

  for (int iter = 0; iter < spec.max_iterations; ++iter) {
    const Seconds iter_start = clock.now();
    const std::string iter_str = std::to_string(iter);
    store_.put(bucket, "broadcast/" + iter_str, broadcast);

    // Map stage.
    std::set<std::string> expected, done;
    for (const auto& [name, _] : spec.inputs) {
      task_queue->send(ppc::encode_kv({{"op", "map"}, {"iter", iter_str}, {"input", name}}));
      expected.insert("map-" + iter_str + "-" + name);
    }
    if (!wait_for_tasks(*monitor_queue, expected, done, spec.stage_timeout)) {
      result.succeeded = false;
      for (auto& w : workers) w->request_stop();
      for (auto& w : workers) w->join();
      return result;
    }

    // Reduce stage.
    expected.clear();
    for (int r = 0; r < spec.num_reduce_tasks; ++r) {
      task_queue->send(ppc::encode_kv({{"op", "reduce"},
                                       {"iter", iter_str},
                                       {"part", std::to_string(r)},
                                       {"maps", std::to_string(spec.inputs.size())}}));
      expected.insert("reduce-" + iter_str + "-" + std::to_string(r));
    }
    if (!wait_for_tasks(*monitor_queue, expected, done, spec.stage_timeout)) {
      result.succeeded = false;
      for (auto& w : workers) w->request_stop();
      for (auto& w : workers) w->join();
      return result;
    }

    // Collect reduce outputs, riding out read-after-write visibility lag.
    result.outputs.clear();
    for (int r = 0; r < spec.num_reduce_tasks; ++r) {
      const std::string key = "rout/" + iter_str + "/" + std::to_string(r);
      std::shared_ptr<const std::string> blob;
      for (int attempt = 0; attempt < 2000 && !blob; ++attempt) {
        blob = store_.get(bucket, key);
        if (!blob) std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      PPC_CHECK(blob != nullptr, "reduce output never became visible: " + key);
      for (const KeyValue& kv : decode_records(*blob)) {
        result.outputs[kv.key] = kv.value;
      }
    }

    IterationStats stats;
    stats.iteration = iter;
    stats.map_tasks = static_cast<int>(spec.inputs.size());
    stats.reduce_tasks = spec.num_reduce_tasks;
    stats.elapsed = clock.now() - iter_start;
    result.per_iteration.push_back(stats);
    result.iterations_run = iter + 1;

    if (!iterative) break;
    const std::string next = spec.merge(result.outputs, broadcast);
    if (spec.converged && spec.converged(broadcast, next, iter)) {
      result.converged = true;
      broadcast = next;
      break;
    }
    broadcast = next;
  }

  result.final_broadcast = broadcast;
  result.succeeded = true;

  for (auto& w : workers) w->request_stop();
  MrWorkerStats total;
  for (auto& w : workers) {
    w->join();
    const auto s = w->stats();
    total.map_tasks += s.map_tasks;
    total.reduce_tasks += s.reduce_tasks;
    total.cache_hits += s.cache_hits;
    total.cache_misses += s.cache_misses;
    total.crashed = total.crashed || s.crashed;
  }
  last_stats_ = total;
  return result;
}

}  // namespace ppc::azuremr
