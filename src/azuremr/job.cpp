#include "azuremr/runtime.h"

#include <chrono>
#include <set>
#include <string_view>
#include <thread>

#include "common/clock.h"
#include "common/error.h"
#include "common/string_util.h"

namespace ppc::azuremr {

AzureMapReduce::AzureMapReduce(storage::StorageBackend& store, cloudq::QueueService& queues,
                               int num_workers, MrWorkerConfig worker_config)
    : store_(store), queues_(queues), num_workers_(num_workers), worker_config_(worker_config) {
  PPC_REQUIRE(num_workers >= 1, "need at least one worker");
  // One registry for every worker role this runtime provisions; callers may
  // pre-seed worker_config.metrics to share it even wider.
  if (!worker_config_.metrics) worker_config_.metrics = std::make_shared<runtime::MetricsRegistry>();
  metrics_ = worker_config_.metrics;
}

AzureMapReduce::~AzureMapReduce() = default;

namespace {

/// Sum of registry counters named "<some worker id>.<suffix>" for worker ids
/// starting with `prefix` — aggregates a run's workers across every
/// incarnation the supervisor provisioned ("job-w0", "job-w0#1", ...).
std::int64_t sum_worker_counters(const runtime::MetricsRegistry& metrics,
                                 const std::string& prefix, std::string_view suffix) {
  std::int64_t total = 0;
  for (const auto& [name, value] : metrics.counters()) {
    const std::string_view sv(name);
    if (sv.starts_with(prefix) && sv.ends_with(suffix)) total += value;
  }
  return total;
}

/// Drains the monitor queue into `done` until the expected task ids are all
/// present or the timeout lapses. Duplicate completions collapse.
bool wait_for_tasks(cloudq::MessageQueue& monitor, const std::set<std::string>& expected,
                    std::set<std::string>& done, Seconds timeout) {
  ppc::SystemClock clock;
  std::vector<cloudq::Message> records;
  std::vector<std::string> receipts;
  while (clock.now() < timeout) {
    // Batched drain: 10 records per receive and 10 acks per delete request.
    records.clear();
    while (monitor.receive_batch(cloudq::MessageQueue::kBatchLimit, 5.0, records) > 0) {
      receipts.clear();
      for (const cloudq::Message& message : records) {
        const auto record = ppc::decode_kv(message.body());
        if (record.contains("task")) done.insert(record.at("task"));
        receipts.push_back(message.receipt_handle);
      }
      monitor.delete_batch(receipts);
      records.clear();
    }
    bool all = true;
    for (const auto& id : expected) {
      if (!done.contains(id)) {
        all = false;
        break;
      }
    }
    if (all) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return false;
}

}  // namespace

JobResult AzureMapReduce::run(const JobSpec& spec) {
  PPC_REQUIRE(!spec.inputs.empty(), "job has no inputs");
  PPC_REQUIRE(spec.map != nullptr && spec.reduce != nullptr, "job needs map and reduce");
  PPC_REQUIRE(spec.num_reduce_tasks >= 1, "need at least one reduce task");
  PPC_REQUIRE(spec.max_iterations >= 1, "need at least one iteration");
  const bool iterative = spec.merge != nullptr;
  for (const auto& [name, _] : spec.inputs) {
    PPC_REQUIRE(!name.empty() && name.find('/') == std::string::npos &&
                    name.find('=') == std::string::npos && name.find(';') == std::string::npos,
                "input names must be flat identifiers: " + name);
  }

  const std::string bucket = spec.job_id;
  store_.create_bucket(bucket);
  auto task_queue =
      worker_config_.task_max_receive_count > 0
          ? queues_.create_queue_with_dlq(spec.job_id + "-mr-tasks",
                                          worker_config_.task_max_receive_count)
          : queues_.create_queue(spec.job_id + "-mr-tasks");
  auto monitor_queue = queues_.create_queue(spec.job_id + "-mr-monitor");

  // Per-run stats are registry deltas (workers of every incarnation write to
  // the shared registry; the supervisor may add incarnations mid-run).
  const std::string worker_prefix = spec.job_id + "-w";
  const std::int64_t base_maps = sum_worker_counters(*metrics_, worker_prefix, ".map_tasks");
  const std::int64_t base_reduces =
      sum_worker_counters(*metrics_, worker_prefix, ".reduce_tasks");
  const std::int64_t base_hits = sum_worker_counters(*metrics_, worker_prefix, ".cache_hits");
  const std::int64_t base_misses =
      sum_worker_counters(*metrics_, worker_prefix, ".cache_misses");
  const std::int64_t base_crashes = sum_worker_counters(*metrics_, worker_prefix, ".crashed");
  const std::int64_t base_restarts = metrics_->counter_value("supervisor.restarts");

  // Provision the worker pool (the Azure role instances) under a supervisor:
  // a worker that dies mid-run is detected and replaced with a fresh
  // incarnation, the way the Azure fabric controller re-provisions a dead
  // role instance.
  runtime::SupervisorConfig sup_config = supervisor_config;
  sup_config.num_workers = num_workers_;
  sup_config.id_prefix = worker_prefix;
  sup_config.metrics = metrics_;
  runtime::WorkerSupervisor supervisor(
      [&](const std::string& worker_id, int /*incarnation*/) {
        auto worker = std::make_shared<MrWorker>(worker_id, store_, task_queue, monitor_queue,
                                                 spec.map, spec.reduce, spec.combine,
                                                 spec.num_reduce_tasks, bucket, worker_config_);
        worker->start();
        return runtime::SupervisedWorker{worker, &worker->lifecycle()};
      },
      sup_config);
  supervisor.start();

  // Upload the static inputs once; workers cache them across iterations.
  for (const auto& [name, data] : spec.inputs) {
    store_.put(bucket, "input/" + name, data);
  }

  JobResult result;
  std::string broadcast = spec.initial_broadcast;
  ppc::SystemClock clock;

  for (int iter = 0; iter < spec.max_iterations; ++iter) {
    const Seconds iter_start = clock.now();
    const std::string iter_str = std::to_string(iter);
    store_.put(bucket, "broadcast/" + iter_str, broadcast);

    // Map stage.
    std::set<std::string> expected, done;
    for (const auto& [name, _] : spec.inputs) {
      task_queue->send(ppc::encode_kv({{"op", "map"}, {"iter", iter_str}, {"input", name}}));
      expected.insert("map-" + iter_str + "-" + name);
    }
    if (!wait_for_tasks(*monitor_queue, expected, done, spec.stage_timeout)) {
      result.succeeded = false;
      supervisor.stop();
      return result;
    }

    // Reduce stage.
    expected.clear();
    for (int r = 0; r < spec.num_reduce_tasks; ++r) {
      task_queue->send(ppc::encode_kv({{"op", "reduce"},
                                       {"iter", iter_str},
                                       {"part", std::to_string(r)},
                                       {"maps", std::to_string(spec.inputs.size())}}));
      expected.insert("reduce-" + iter_str + "-" + std::to_string(r));
    }
    if (!wait_for_tasks(*monitor_queue, expected, done, spec.stage_timeout)) {
      result.succeeded = false;
      supervisor.stop();
      return result;
    }

    // Collect reduce outputs, riding out read-after-write visibility lag.
    result.outputs.clear();
    for (int r = 0; r < spec.num_reduce_tasks; ++r) {
      const std::string key = "rout/" + iter_str + "/" + std::to_string(r);
      std::shared_ptr<const std::string> blob;
      for (int attempt = 0; attempt < 2000 && !blob; ++attempt) {
        blob = store_.get(bucket, key);
        if (!blob) std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      PPC_CHECK(blob != nullptr, "reduce output never became visible: " + key);
      for (const KeyValue& kv : decode_records(*blob)) {
        result.outputs[kv.key] = kv.value;
      }
    }

    IterationStats stats;
    stats.iteration = iter;
    stats.map_tasks = static_cast<int>(spec.inputs.size());
    stats.reduce_tasks = spec.num_reduce_tasks;
    stats.elapsed = clock.now() - iter_start;
    result.per_iteration.push_back(stats);
    result.iterations_run = iter + 1;

    if (!iterative) break;
    const std::string next = spec.merge(result.outputs, broadcast);
    if (spec.converged && spec.converged(broadcast, next, iter)) {
      result.converged = true;
      broadcast = next;
      break;
    }
    broadcast = next;
  }

  result.final_broadcast = broadcast;
  result.succeeded = true;

  supervisor.stop();
  MrWorkerStats total;
  total.map_tasks = static_cast<int>(
      sum_worker_counters(*metrics_, worker_prefix, ".map_tasks") - base_maps);
  total.reduce_tasks = static_cast<int>(
      sum_worker_counters(*metrics_, worker_prefix, ".reduce_tasks") - base_reduces);
  total.cache_hits = static_cast<int>(
      sum_worker_counters(*metrics_, worker_prefix, ".cache_hits") - base_hits);
  total.cache_misses = static_cast<int>(
      sum_worker_counters(*metrics_, worker_prefix, ".cache_misses") - base_misses);
  total.crashed =
      sum_worker_counters(*metrics_, worker_prefix, ".crashed") - base_crashes > 0;
  last_stats_ = total;
  last_restarts_ = metrics_->counter_value("supervisor.restarts") - base_restarts;
  return result;
}

}  // namespace ppc::azuremr
