// TwisterAzure-style MapReduce job description and client-side driver —
// the reproduction of the paper's §8 future work ("MapReduce in the Clouds
// for Science" [12]): a full map+reduce framework with *iterative* support,
// built purely from cloud infrastructure services (the task queue and the
// blob store), no master node.
//
// Iterative structure (the Twister model):
//   loop:
//     broadcast      — loop variable (e.g. K-means centroids) in a blob;
//     map            — per cached input chunk, with the broadcast in hand;
//     shuffle        — map outputs partitioned by key hash into blobs;
//     reduce         — per partition;
//     merge          — client combines reduce outputs into the next
//                      broadcast and tests convergence.
//
// Static input data is uploaded once and cached by workers across
// iterations — the feature that makes iterative MapReduce viable on
// high-latency cloud storage.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "azuremr/key_value.h"
#include "common/units.h"

namespace ppc::azuremr {

/// Map: one cached input chunk + the iteration's broadcast -> records.
using MapFn = std::function<std::vector<KeyValue>(
    const std::string& input_name, const std::string& input_data, const std::string& broadcast)>;

/// Reduce: one key and all its values (this iteration) -> output value.
using ReduceFn =
    std::function<std::string(const std::string& key, const std::vector<std::string>& values)>;

/// Optional combiner, applied to each map task's output per key *before*
/// the shuffle — the classic MapReduce optimization that shrinks the data
/// crossing the (high-latency, billed-by-the-byte) blob store. Must be
/// associative/commutative with the reduce. Same signature as ReduceFn.
using CombineFn = ReduceFn;

/// Merge: all reduce outputs + previous broadcast -> next broadcast.
using MergeFn = std::function<std::string(const std::map<std::string, std::string>& reduced,
                                          const std::string& previous_broadcast)>;

/// Convergence test; returning true ends the iteration loop.
using ConvergedFn = std::function<bool(const std::string& previous_broadcast,
                                       const std::string& next_broadcast, int iteration)>;

struct JobSpec {
  std::string job_id = "mrjob";
  /// (name, data) input chunks; uploaded once, cached by workers.
  std::vector<std::pair<std::string, std::string>> inputs;
  int num_reduce_tasks = 1;
  MapFn map;
  ReduceFn reduce;
  /// Optional; null disables combining.
  CombineFn combine;

  // -- iterative extension (leave merge null for a single-pass job) --
  std::string initial_broadcast;
  MergeFn merge;
  ConvergedFn converged;
  int max_iterations = 1;

  /// Client-side wait budget per stage (real seconds).
  Seconds stage_timeout = 60.0;
};

struct IterationStats {
  int iteration = 0;
  int map_tasks = 0;
  int reduce_tasks = 0;
  Seconds elapsed = 0.0;
};

struct JobResult {
  bool succeeded = false;
  int iterations_run = 0;
  bool converged = false;
  /// Final iteration's reduce outputs, key -> reduced value.
  std::map<std::string, std::string> outputs;
  std::string final_broadcast;
  std::vector<IterationStats> per_iteration;
};

}  // namespace ppc::azuremr
