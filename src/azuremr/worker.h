// The azuremr worker role: an Azure worker-role instance that polls the
// shared task queue and executes map or reduce tasks. The poll loop
// (receive → handle → delete-after-completion) is runtime::TaskLifecycle;
// this adapter supplies the map/reduce handler. Inputs are cached across
// iterations; everything else flows through blob storage. Fault tolerance
// is inherited from the substrate: tasks are deleted only after completion,
// so crashes redeliver; map/reduce functions must be deterministic so
// re-execution overwrites blobs idempotently.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "azuremr/job.h"
#include "storage/storage_backend.h"
#include "cloudq/message_queue.h"
#include "runtime/task_lifecycle.h"

namespace ppc::azuremr {

/// Fault-injection sites fired right after a task's work is done — blobs
/// written, monitor record sent — but before the task message is deleted.
/// The task resurfaces via the visibility timeout. Keys: the map input name
/// / the reduce partition.
namespace sites {
inline const std::string kAfterMap = "azuremr.after_map";
inline const std::string kAfterReduce = "azuremr.after_reduce";
}  // namespace sites

struct MrWorkerConfig {
  Seconds poll_interval = 0.002;
  /// Idle backoff cap; < 0 derives 8x poll_interval. See LifecycleConfig.
  Seconds poll_interval_max = -1.0;
  /// Messages fetched per receive request (1..10); the batch is worked
  /// through sequentially, so visibility_timeout must cover the whole batch.
  int receive_batch = 1;
  /// Completed-task acks buffered into one DeleteMessageBatch request; 1
  /// acks each task immediately. See LifecycleConfig::delete_batch.
  int delete_batch = 1;
  Seconds visibility_timeout = 30.0;
  /// Backoff schedule for eventually-consistent blob reads and shuffle
  /// listings.
  runtime::RetryPolicy download_retry =
      runtime::RetryPolicy::exponential(40, 0.0005, 2.0, 0.05);
  /// Visibility applied to deliveries this worker failed (prompt retry);
  /// < 0 leaves the original visibility window. See LifecycleConfig.
  Seconds abandon_visibility = -1.0;
  /// > 0 makes AzureMapReduce attach a dead-letter queue to the job task
  /// queue with this redrive threshold (poison-message handling).
  int task_max_receive_count = 0;
  /// Fault injection (borrowed, not owned). Null = never.
  runtime::FaultInjector* faults = nullptr;
  /// Metrics registry shared across the pool; null = private registry.
  std::shared_ptr<runtime::MetricsRegistry> metrics;
  /// Tracer (borrowed, not owned). Null = no tracing. Adds fetch.input /
  /// compute / upload.output child spans (kind=map|reduce) to the task
  /// envelope.
  runtime::Tracer* tracer = nullptr;
};

/// Snapshot view over the worker's counters in the MetricsRegistry.
struct MrWorkerStats {
  int map_tasks = 0;
  int reduce_tasks = 0;
  int cache_hits = 0;    // input served from the worker's cache
  int cache_misses = 0;  // input downloaded from blob storage
  bool crashed = false;  // fault injection killed this worker
};

class MrWorker {
 public:
  MrWorker(std::string id, storage::StorageBackend& store,
           std::shared_ptr<cloudq::MessageQueue> task_queue,
           std::shared_ptr<cloudq::MessageQueue> monitor_queue, MapFn map, ReduceFn reduce,
           CombineFn combine, int num_reduce_tasks, std::string bucket,
           MrWorkerConfig config = {});

  MrWorker(const MrWorker&) = delete;
  MrWorker& operator=(const MrWorker&) = delete;

  void start();
  void request_stop();
  void join();

  MrWorkerStats stats() const;
  const std::string& id() const { return lifecycle_->id(); }
  bool running() const { return lifecycle_->running(); }
  bool crashed() const { return lifecycle_->crashed(); }
  runtime::MetricsRegistry& metrics() const { return lifecycle_->metrics(); }

  /// The underlying poll loop — what a runtime::WorkerSupervisor watches.
  runtime::TaskLifecycle& lifecycle() { return *lifecycle_; }

 private:
  runtime::TaskOutcome process(runtime::TaskContext& ctx);
  void run_map(runtime::TaskContext& ctx, const std::map<std::string, std::string>& task);
  void run_reduce(runtime::TaskContext& ctx, const std::map<std::string, std::string>& task);
  /// Blocking blob download with the retry policy (eventual consistency).
  /// The payload aliases the stored blob (zero-copy).
  std::shared_ptr<const std::string> must_download(runtime::TaskContext& ctx,
                                                   const std::string& key);
  /// Input chunks are static across iterations: download once, cache. The
  /// cache holds aliases of the stored blobs, so hits copy a pointer.
  std::shared_ptr<const std::string> cached_input(runtime::TaskContext& ctx,
                                                  const std::string& name);

  storage::StorageBackend& store_;
  std::shared_ptr<cloudq::MessageQueue> monitor_queue_;
  MapFn map_;
  ReduceFn reduce_;
  CombineFn combine_;  // may be null
  int num_reduce_tasks_;
  const std::string bucket_;

  std::mutex cache_mu_;
  std::map<std::string, std::shared_ptr<const std::string>> input_cache_;
  std::unique_ptr<runtime::TaskLifecycle> lifecycle_;
};

}  // namespace ppc::azuremr
