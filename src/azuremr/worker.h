// The azuremr worker role: a thread that polls the shared task queue and
// executes map or reduce tasks, exactly as an Azure worker role instance
// would. Inputs are cached across iterations; everything else flows through
// blob storage. Fault tolerance is inherited from the substrate: tasks are
// deleted only after completion, so crashes redeliver; map/reduce functions
// must be deterministic so re-execution overwrites blobs idempotently.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "azuremr/job.h"
#include "blobstore/blob_store.h"
#include "cloudq/message_queue.h"

namespace ppc::azuremr {

struct MrWorkerConfig {
  Seconds poll_interval = 0.002;
  Seconds visibility_timeout = 30.0;
  int download_retries = 200;
  Seconds download_retry_interval = 0.001;
  /// Fault injection: return true to kill the worker right after it
  /// finishes computing (before the task message is deleted). The task
  /// resurfaces via the visibility timeout. Null = never.
  std::function<bool(const std::string& op, const std::string& task_key)> crash_at;
};

struct MrWorkerStats {
  int map_tasks = 0;
  int reduce_tasks = 0;
  int cache_hits = 0;    // input served from the worker's cache
  int cache_misses = 0;  // input downloaded from blob storage
  bool crashed = false;  // fault injection killed this worker
};

class MrWorker {
 public:
  MrWorker(std::string id, blobstore::BlobStore& store,
           std::shared_ptr<cloudq::MessageQueue> task_queue,
           std::shared_ptr<cloudq::MessageQueue> monitor_queue, MapFn map, ReduceFn reduce,
           CombineFn combine, int num_reduce_tasks, std::string bucket,
           MrWorkerConfig config = {});

  ~MrWorker();

  MrWorker(const MrWorker&) = delete;
  MrWorker& operator=(const MrWorker&) = delete;

  void start();
  void request_stop();
  void join();

  MrWorkerStats stats() const;
  const std::string& id() const { return id_; }

 private:
  void poll_loop();
  void run_map(const std::map<std::string, std::string>& task);
  void run_reduce(const std::map<std::string, std::string>& task);
  /// Blocking blob download with retries (eventual consistency).
  std::string must_download(const std::string& key);
  /// Input chunks are static across iterations: download once, cache.
  std::string cached_input(const std::string& name);

  const std::string id_;
  blobstore::BlobStore& store_;
  std::shared_ptr<cloudq::MessageQueue> task_queue_;
  std::shared_ptr<cloudq::MessageQueue> monitor_queue_;
  MapFn map_;
  ReduceFn reduce_;
  CombineFn combine_;  // may be null
  int num_reduce_tasks_;
  const std::string bucket_;
  MrWorkerConfig config_;

  std::thread thread_;
  std::atomic<bool> stop_requested_{false};
  mutable std::mutex mu_;
  std::map<std::string, std::string> input_cache_;
  MrWorkerStats stats_;
};

}  // namespace ppc::azuremr
