// Client-side driver of the azuremr framework: owns the worker pool,
// uploads inputs, runs the iteration loop (broadcast -> map -> shuffle ->
// reduce -> merge -> converge?), and collects results. Decentralized like
// the original: there is no master — the "driver" is just another client of
// the queue and blob services.
#pragma once

#include <memory>
#include <vector>

#include "azuremr/job.h"
#include "azuremr/worker.h"
#include "cloudq/queue_service.h"
#include "runtime/worker_supervisor.h"

namespace ppc::azuremr {

class AzureMapReduce {
 public:
  /// Creates the runtime with `num_workers` worker roles (started lazily on
  /// the first run() call and reused across jobs with the same functions).
  AzureMapReduce(storage::StorageBackend& store, cloudq::QueueService& queues, int num_workers,
                 MrWorkerConfig worker_config = {});

  /// Tuning for the per-run worker-pool supervisor (restart budget, backoff,
  /// stall detection). num_workers / id_prefix / metrics are overwritten on
  /// every run; adjust the rest before calling run().
  runtime::SupervisorConfig supervisor_config;

  ~AzureMapReduce();

  AzureMapReduce(const AzureMapReduce&) = delete;
  AzureMapReduce& operator=(const AzureMapReduce&) = delete;

  /// Runs the job to completion (all iterations). Each call provisions a
  /// fresh worker pool bound to the job's map/reduce functions — the
  /// deployment-package upload of a real Azure role.
  JobResult run(const JobSpec& spec);

  /// Aggregate statistics of the last run's workers (every incarnation the
  /// supervisor provisioned, computed as registry deltas over the run).
  MrWorkerStats last_run_worker_stats() const { return last_stats_; }

  /// Workers the supervisor replaced during the last run.
  std::int64_t last_run_restarts() const { return last_restarts_; }

  /// The registry every worker role publishes to (worker-scoped counters).
  runtime::MetricsRegistry& metrics() const { return *metrics_; }

 private:
  storage::StorageBackend& store_;
  cloudq::QueueService& queues_;
  int num_workers_;
  MrWorkerConfig worker_config_;
  MrWorkerStats last_stats_;
  std::int64_t last_restarts_ = 0;
  std::shared_ptr<runtime::MetricsRegistry> metrics_;
};

}  // namespace ppc::azuremr
