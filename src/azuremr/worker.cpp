#include "azuremr/worker.h"

#include <chrono>

#include "common/error.h"
#include "common/log.h"
#include "common/string_util.h"

namespace ppc::azuremr {

namespace {
void sleep_seconds(Seconds s) {
  if (s > 0.0) std::this_thread::sleep_for(std::chrono::duration<double>(s));
}
}  // namespace

MrWorker::MrWorker(std::string id, blobstore::BlobStore& store,
                   std::shared_ptr<cloudq::MessageQueue> task_queue,
                   std::shared_ptr<cloudq::MessageQueue> monitor_queue, MapFn map,
                   ReduceFn reduce, CombineFn combine, int num_reduce_tasks, std::string bucket,
                   MrWorkerConfig config)
    : id_(std::move(id)),
      store_(store),
      task_queue_(std::move(task_queue)),
      monitor_queue_(std::move(monitor_queue)),
      map_(std::move(map)),
      reduce_(std::move(reduce)),
      combine_(std::move(combine)),
      num_reduce_tasks_(num_reduce_tasks),
      bucket_(std::move(bucket)),
      config_(config) {
  PPC_REQUIRE(task_queue_ != nullptr && monitor_queue_ != nullptr, "worker needs both queues");
  PPC_REQUIRE(map_ != nullptr && reduce_ != nullptr, "worker needs map and reduce functions");
  PPC_REQUIRE(num_reduce_tasks_ >= 1, "need at least one reduce task");
}

MrWorker::~MrWorker() {
  request_stop();
  if (thread_.joinable()) thread_.join();
}

void MrWorker::start() {
  PPC_REQUIRE(!thread_.joinable(), "worker already started");
  thread_ = std::thread([this] { poll_loop(); });
}

void MrWorker::request_stop() { stop_requested_.store(true); }

void MrWorker::join() {
  if (thread_.joinable()) thread_.join();
}

MrWorkerStats MrWorker::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

void MrWorker::poll_loop() {
  while (!stop_requested_.load()) {
    auto message = task_queue_->receive(config_.visibility_timeout);
    if (!message) {
      sleep_seconds(config_.poll_interval);
      continue;
    }
    const auto task = decode_kv(message->body);
    try {
      const std::string& op = task.at("op");
      std::string task_key;
      if (op == "map") {
        run_map(task);
        task_key = task.at("input");
      } else if (op == "reduce") {
        run_reduce(task);
        task_key = task.at("part");
      } else {
        throw ppc::InvalidArgument("unknown op: " + op);
      }
      if (config_.crash_at && config_.crash_at(op, task_key)) {
        // The instance dies before deleting the message: it will resurface
        // after its visibility timeout and another worker redoes the task
        // (idempotently — the blobs it wrote get overwritten identically).
        std::lock_guard lock(mu_);
        stats_.crashed = true;
        return;
      }
      task_queue_->delete_message(message->receipt_handle);
    } catch (const std::exception& e) {
      // Leave the message; it reappears after the visibility timeout.
      PPC_WARN << "azuremr worker " << id_ << " task failed: " << e.what();
    }
  }
}

std::string MrWorker::must_download(const std::string& key) {
  for (int attempt = 0; attempt <= config_.download_retries; ++attempt) {
    auto data = store_.get(bucket_, key);
    if (data) return std::move(*data);
    sleep_seconds(config_.download_retry_interval);
  }
  throw ppc::InternalError("blob never became visible: " + key);
}

std::string MrWorker::cached_input(const std::string& name) {
  {
    std::lock_guard lock(mu_);
    auto it = input_cache_.find(name);
    if (it != input_cache_.end()) {
      ++stats_.cache_hits;
      return it->second;
    }
  }
  std::string data = must_download("input/" + name);
  std::lock_guard lock(mu_);
  ++stats_.cache_misses;
  return input_cache_.emplace(name, std::move(data)).first->second;
}

void MrWorker::run_map(const std::map<std::string, std::string>& task) {
  const std::string& iter = task.at("iter");
  const std::string& input = task.at("input");
  const std::string data = cached_input(input);
  const std::string broadcast = must_download("broadcast/" + iter);

  std::vector<KeyValue> records = map_(input, data, broadcast);

  // Combiner: fold this map task's records per key before they cross the
  // network, exactly like Hadoop's combiner.
  if (combine_ != nullptr) {
    std::vector<KeyValue> combined;
    for (const auto& [key, values] : group_by_key(records)) {
      combined.push_back({key, values.size() == 1 ? values.front() : combine_(key, values)});
    }
    records = std::move(combined);
  }

  // Shuffle: hash-partition the records into one blob per reducer.
  std::vector<std::vector<KeyValue>> partitions(static_cast<std::size_t>(num_reduce_tasks_));
  for (const KeyValue& kv : records) {
    partitions[partition_of(kv.key, partitions.size())].push_back(kv);
  }
  for (std::size_t r = 0; r < partitions.size(); ++r) {
    store_.put(bucket_, "mout/" + iter + "/" + input + "/" + std::to_string(r),
               encode_records(partitions[r]));
  }

  monitor_queue_->send(encode_kv(
      {{"task", "map-" + iter + "-" + input}, {"status", "done"}, {"worker", id_}}));
  std::lock_guard lock(mu_);
  ++stats_.map_tasks;
}

void MrWorker::run_reduce(const std::map<std::string, std::string>& task) {
  const std::string& iter = task.at("iter");
  const std::string& part = task.at("part");
  const int expected_maps = std::stoi(task.at("maps"));

  // Collect every map task's partition blob for this reducer. The listing
  // may lag under eventual consistency, so insist on the full set.
  const std::string suffix = "/" + part;
  std::vector<std::string> keys;
  for (int attempt = 0; attempt <= config_.download_retries; ++attempt) {
    keys.clear();
    for (const std::string& key : store_.list(bucket_, "mout/" + iter + "/")) {
      if (key.size() >= suffix.size() &&
          key.compare(key.size() - suffix.size(), suffix.size(), suffix) == 0) {
        keys.push_back(key);
      }
    }
    if (static_cast<int>(keys.size()) >= expected_maps) break;
    sleep_seconds(config_.download_retry_interval);
  }
  PPC_CHECK(static_cast<int>(keys.size()) >= expected_maps,
            "reduce input blobs missing for partition " + part);

  std::vector<KeyValue> all;
  for (const std::string& key : keys) {
    const auto records = decode_records(must_download(key));
    all.insert(all.end(), records.begin(), records.end());
  }

  std::vector<KeyValue> outputs;
  for (const auto& [key, values] : group_by_key(all)) {
    outputs.push_back({key, reduce_(key, values)});
  }
  store_.put(bucket_, "rout/" + iter + "/" + part, encode_records(outputs));

  monitor_queue_->send(encode_kv(
      {{"task", "reduce-" + iter + "-" + part}, {"status", "done"}, {"worker", id_}}));
  std::lock_guard lock(mu_);
  ++stats_.reduce_tasks;
}

}  // namespace ppc::azuremr
