#include "azuremr/worker.h"

#include <utility>

#include "common/error.h"
#include "common/string_util.h"

namespace ppc::azuremr {

namespace {
runtime::LifecycleConfig lifecycle_config(const MrWorkerConfig& config) {
  runtime::LifecycleConfig lc;
  lc.poll_interval = config.poll_interval;
  lc.poll_interval_max = config.poll_interval_max;
  lc.receive_batch = config.receive_batch;
  lc.delete_batch = config.delete_batch;
  lc.visibility_timeout = config.visibility_timeout;
  lc.fetch_retry = config.download_retry;
  lc.abandon_visibility = config.abandon_visibility;
  lc.tracer = config.tracer;
  return lc;
}
}  // namespace

MrWorker::MrWorker(std::string id, storage::StorageBackend& store,
                   std::shared_ptr<cloudq::MessageQueue> task_queue,
                   std::shared_ptr<cloudq::MessageQueue> monitor_queue, MapFn map,
                   ReduceFn reduce, CombineFn combine, int num_reduce_tasks, std::string bucket,
                   MrWorkerConfig config)
    : store_(store),
      monitor_queue_(std::move(monitor_queue)),
      map_(std::move(map)),
      reduce_(std::move(reduce)),
      combine_(std::move(combine)),
      num_reduce_tasks_(num_reduce_tasks),
      bucket_(std::move(bucket)) {
  PPC_REQUIRE(monitor_queue_ != nullptr, "worker needs both queues");
  PPC_REQUIRE(map_ != nullptr && reduce_ != nullptr, "worker needs map and reduce functions");
  PPC_REQUIRE(num_reduce_tasks_ >= 1, "need at least one reduce task");
  lifecycle_ = std::make_unique<runtime::TaskLifecycle>(
      std::move(id), std::move(task_queue),
      [this](runtime::TaskContext& ctx) { return process(ctx); }, lifecycle_config(config),
      config.metrics, config.faults);
}

void MrWorker::start() { lifecycle_->start(); }

void MrWorker::request_stop() { lifecycle_->request_stop(); }

void MrWorker::join() { lifecycle_->join(); }

MrWorkerStats MrWorker::stats() const {
  MrWorkerStats s;
  s.map_tasks = static_cast<int>(lifecycle_->counter("map_tasks"));
  s.reduce_tasks = static_cast<int>(lifecycle_->counter("reduce_tasks"));
  s.cache_hits = static_cast<int>(lifecycle_->counter("cache_hits"));
  s.cache_misses = static_cast<int>(lifecycle_->counter("cache_misses"));
  s.crashed = lifecycle_->crashed();
  return s;
}

runtime::TaskOutcome MrWorker::process(runtime::TaskContext& ctx) {
  using runtime::TaskOutcome;
  const auto task = ppc::decode_kv(ctx.message().body());
  const std::string& op = task.at("op");
  if (op == "map") {
    run_map(ctx, task);
    if (ctx.crash_site(sites::kAfterMap, task.at("input"))) return TaskOutcome::kCrashed;
  } else if (op == "reduce") {
    run_reduce(ctx, task);
    if (ctx.crash_site(sites::kAfterReduce, task.at("part"))) return TaskOutcome::kCrashed;
  } else {
    throw ppc::InvalidArgument("unknown op: " + op);
  }
  return TaskOutcome::kCompleted;
}

std::shared_ptr<const std::string> MrWorker::must_download(runtime::TaskContext& ctx,
                                                           const std::string& key) {
  auto data = ctx.fetch(store_, bucket_, key);
  if (!data) throw ppc::InternalError("blob never became visible: " + key);
  return data;
}

std::shared_ptr<const std::string> MrWorker::cached_input(runtime::TaskContext& ctx,
                                                          const std::string& name) {
  {
    std::lock_guard lock(cache_mu_);
    auto it = input_cache_.find(name);
    if (it != input_cache_.end()) {
      ctx.count("cache_hits");
      return it->second;
    }
  }
  auto data = must_download(ctx, "input/" + name);
  std::lock_guard lock(cache_mu_);
  ctx.count("cache_misses");
  return input_cache_.emplace(name, std::move(data)).first->second;
}

void MrWorker::run_map(runtime::TaskContext& ctx,
                       const std::map<std::string, std::string>& task) {
  const std::string& iter = task.at("iter");
  const std::string& input = task.at("input");
  runtime::Span fetch_span = ctx.span("fetch.input");
  const auto data = cached_input(ctx, input);
  const auto broadcast = must_download(ctx, "broadcast/" + iter);
  fetch_span.close();

  runtime::Span compute_span = ctx.span("compute");
  compute_span.arg("kind", "map");
  compute_span.arg("input", input);
  std::vector<KeyValue> records = map_(input, *data, *broadcast);

  // Combiner: fold this map task's records per key before they cross the
  // network, exactly like Hadoop's combiner.
  if (combine_ != nullptr) {
    std::vector<KeyValue> combined;
    for (const auto& [key, values] : group_by_key(records)) {
      combined.push_back({key, values.size() == 1 ? values.front() : combine_(key, values)});
    }
    records = std::move(combined);
  }
  compute_span.close();

  // Shuffle: hash-partition the records into one blob per reducer.
  runtime::Span upload_span = ctx.span("upload.output");
  std::vector<std::vector<KeyValue>> partitions(static_cast<std::size_t>(num_reduce_tasks_));
  for (const KeyValue& kv : records) {
    partitions[partition_of(kv.key, partitions.size())].push_back(kv);
  }
  for (std::size_t r = 0; r < partitions.size(); ++r) {
    store_.put(bucket_, "mout/" + iter + "/" + input + "/" + std::to_string(r),
               encode_records(partitions[r]));
  }
  upload_span.close();

  runtime::Span report_span = ctx.span("monitor.report");
  monitor_queue_->send(ppc::encode_kv(
      {{"task", "map-" + iter + "-" + input}, {"status", "done"}, {"worker", id()}}));
  report_span.close();
  ctx.count("map_tasks");
}

void MrWorker::run_reduce(runtime::TaskContext& ctx,
                          const std::map<std::string, std::string>& task) {
  const std::string& iter = task.at("iter");
  const std::string& part = task.at("part");
  const int expected_maps = std::stoi(task.at("maps"));

  // Collect every map task's partition blob for this reducer. The listing
  // may lag under eventual consistency, so insist on the full set.
  const std::string suffix = "/" + part;
  auto list_partitions = [&]() -> std::optional<std::vector<std::string>> {
    std::vector<std::string> found;
    for (const std::string& key : store_.list(bucket_, "mout/" + iter + "/")) {
      if (key.size() >= suffix.size() &&
          key.compare(key.size() - suffix.size(), suffix.size(), suffix) == 0) {
        found.push_back(key);
      }
    }
    if (static_cast<int>(found.size()) < expected_maps) return std::nullopt;
    return found;
  };
  runtime::Span fetch_span = ctx.span("fetch.input");
  auto keys = ctx.retry(list_partitions);
  PPC_CHECK(keys.has_value(), "reduce input blobs missing for partition " + part);

  std::vector<KeyValue> all;
  for (const std::string& key : *keys) {
    const auto records = decode_records(*must_download(ctx, key));
    all.insert(all.end(), records.begin(), records.end());
  }
  fetch_span.close();

  runtime::Span compute_span = ctx.span("compute");
  compute_span.arg("kind", "reduce");
  compute_span.arg("part", part);
  std::vector<KeyValue> outputs;
  for (const auto& [key, values] : group_by_key(all)) {
    outputs.push_back({key, reduce_(key, values)});
  }
  compute_span.close();

  runtime::Span upload_span = ctx.span("upload.output");
  store_.put(bucket_, "rout/" + iter + "/" + part, encode_records(outputs));
  upload_span.close();

  runtime::Span report_span = ctx.span("monitor.report");
  monitor_queue_->send(ppc::encode_kv(
      {{"task", "reduce-" + iter + "-" + part}, {"status", "done"}, {"worker", id()}}));
  report_span.close();
  ctx.count("reduce_tasks");
}

}  // namespace ppc::azuremr
