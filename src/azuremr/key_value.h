// Key-value records and their wire format for the TwisterAzure-style
// MapReduce framework (src/azuremr) — the paper's §8 future work:
//
//   "we are working on developing a fully-fledged MapReduce framework with
//    iterative-MapReduce support for the Windows Azure Cloud infrastructure
//    using Azure infrastructure services as building blocks"
//
// Map outputs travel through blob storage between the map and reduce
// stages, serialized with a length-prefixed record format that tolerates
// arbitrary bytes in keys and values (unlike the ';'-delimited task codec).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace ppc::azuremr {

struct KeyValue {
  std::string key;
  std::string value;

  bool operator==(const KeyValue&) const = default;
};

/// Serializes records as "<klen> <vlen>\n<key><value>" frames.
std::string encode_records(const std::vector<KeyValue>& records);

/// Inverse of encode_records. Throws ppc::InvalidArgument on corruption.
std::vector<KeyValue> decode_records(const std::string& data);

/// Deterministic partition assignment for a key (shuffle hash).
std::size_t partition_of(const std::string& key, std::size_t num_partitions);

/// Groups records by key, preserving per-key value arrival order.
std::map<std::string, std::vector<std::string>> group_by_key(
    const std::vector<KeyValue>& records);

}  // namespace ppc::azuremr
