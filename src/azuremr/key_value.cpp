#include "azuremr/key_value.h"

#include <charconv>

#include "common/error.h"

namespace ppc::azuremr {

std::string encode_records(const std::vector<KeyValue>& records) {
  std::string out;
  for (const KeyValue& kv : records) {
    out += std::to_string(kv.key.size());
    out += ' ';
    out += std::to_string(kv.value.size());
    out += '\n';
    out += kv.key;
    out += kv.value;
  }
  return out;
}

std::vector<KeyValue> decode_records(const std::string& data) {
  std::vector<KeyValue> records;
  std::size_t pos = 0;
  while (pos < data.size()) {
    const std::size_t space = data.find(' ', pos);
    PPC_REQUIRE(space != std::string::npos, "corrupt record header (no space)");
    const std::size_t newline = data.find('\n', space);
    PPC_REQUIRE(newline != std::string::npos, "corrupt record header (no newline)");
    std::size_t klen = 0, vlen = 0;
    auto r1 = std::from_chars(data.data() + pos, data.data() + space, klen);
    auto r2 = std::from_chars(data.data() + space + 1, data.data() + newline, vlen);
    PPC_REQUIRE(r1.ec == std::errc() && r2.ec == std::errc(), "corrupt record lengths");
    const std::size_t body = newline + 1;
    PPC_REQUIRE(body + klen + vlen <= data.size(), "truncated record body");
    KeyValue kv;
    kv.key = data.substr(body, klen);
    kv.value = data.substr(body + klen, vlen);
    records.push_back(std::move(kv));
    pos = body + klen + vlen;
  }
  return records;
}

std::size_t partition_of(const std::string& key, std::size_t num_partitions) {
  PPC_REQUIRE(num_partitions >= 1, "need at least one partition");
  // FNV-1a; stable across platforms so shuffle placement is deterministic.
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return static_cast<std::size_t>(h % num_partitions);
}

std::map<std::string, std::vector<std::string>> group_by_key(
    const std::vector<KeyValue>& records) {
  std::map<std::string, std::vector<std::string>> grouped;
  for (const KeyValue& kv : records) grouped[kv.key].push_back(kv.value);
  return grouped;
}

}  // namespace ppc::azuremr
