#include "cloudq/queue_service.h"

#include "common/error.h"

namespace ppc::cloudq {

QueueService::QueueService(std::shared_ptr<const ppc::Clock> clock, QueueConfig config,
                           ppc::Rng rng)
    : clock_(std::move(clock)), config_(config), rng_(rng) {
  PPC_REQUIRE(clock_ != nullptr, "QueueService requires a clock");
}

std::shared_ptr<MessageQueue> QueueService::create_queue(const std::string& name) {
  PPC_REQUIRE(!name.empty(), "queue name must be non-empty");
  std::lock_guard lock(mu_);
  auto it = queues_.find(name);
  if (it != queues_.end()) return it->second;
  auto q = std::make_shared<MessageQueue>(name, clock_, config_, rng_.split());
  queues_.emplace(name, q);
  return q;
}

std::shared_ptr<MessageQueue> QueueService::get_queue(const std::string& name) const {
  std::lock_guard lock(mu_);
  auto it = queues_.find(name);
  return it == queues_.end() ? nullptr : it->second;
}

bool QueueService::delete_queue(const std::string& name) {
  std::lock_guard lock(mu_);
  return queues_.erase(name) > 0;
}

std::vector<std::string> QueueService::list_queues() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> names;
  names.reserve(queues_.size());
  for (const auto& [name, _] : queues_) names.push_back(name);
  return names;
}

Dollars QueueService::total_request_cost() const {
  std::lock_guard lock(mu_);
  Dollars total = 0.0;
  for (const auto& [_, q] : queues_) total += q->request_cost();
  return total;
}

}  // namespace ppc::cloudq
