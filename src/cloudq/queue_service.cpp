#include "cloudq/queue_service.h"

#include "common/error.h"

namespace ppc::cloudq {

QueueService::QueueService(std::shared_ptr<const ppc::Clock> clock, QueueConfig config,
                           ppc::Rng rng)
    : clock_(std::move(clock)), config_(config), rng_(rng) {
  PPC_REQUIRE(clock_ != nullptr, "QueueService requires a clock");
}

std::shared_ptr<MessageQueue> QueueService::create_queue(const std::string& name) {
  PPC_REQUIRE(!name.empty(), "queue name must be non-empty");
  std::lock_guard lock(mu_);
  auto it = queues_.find(name);
  if (it != queues_.end()) return it->second;
  auto q = std::make_shared<MessageQueue>(name, clock_, config_, rng_.split());
  q->set_fault_hook(hook_);
  q->set_tracer(tracer_);
  queues_.emplace(name, q);
  return q;
}

std::shared_ptr<MessageQueue> QueueService::create_queue_with_dlq(const std::string& name,
                                                                  int max_receive_count) {
  auto main = create_queue(name);
  auto dlq = create_queue(name + "-dlq");
  main->enable_dead_letter(dlq, max_receive_count);
  return main;
}

void QueueService::set_fault_hook(ppc::FaultHook* hook) {
  std::lock_guard lock(mu_);
  hook_ = hook;
  for (const auto& [_, q] : queues_) q->set_fault_hook(hook);
}

void QueueService::set_tracer(ppc::TraceHook* tracer) {
  std::lock_guard lock(mu_);
  tracer_ = tracer;
  for (const auto& [_, q] : queues_) q->set_tracer(tracer);
}

std::shared_ptr<MessageQueue> QueueService::get_queue(const std::string& name) const {
  std::lock_guard lock(mu_);
  auto it = queues_.find(name);
  return it == queues_.end() ? nullptr : it->second;
}

bool QueueService::delete_queue(const std::string& name) {
  std::lock_guard lock(mu_);
  return queues_.erase(name) > 0;
}

std::vector<std::string> QueueService::list_queues() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> names;
  names.reserve(queues_.size());
  for (const auto& [name, _] : queues_) names.push_back(name);
  return names;
}

Dollars QueueService::total_request_cost() const {
  std::lock_guard lock(mu_);
  Dollars total = 0.0;
  for (const auto& [_, q] : queues_) total += q->request_cost();
  return total;
}

RequestMeter QueueService::total_meter() const {
  std::lock_guard lock(mu_);
  RequestMeter total;
  for (const auto& [_, q] : queues_) {
    const RequestMeter m = q->meter();
    total.sends += m.sends;
    total.receives += m.receives;
    total.deletes += m.deletes;
    total.visibility_changes += m.visibility_changes;
    total.stale_deletes += m.stale_deletes;
    total.dlq_moves += m.dlq_moves;
    total.messages_sent += m.messages_sent;
    total.messages_received += m.messages_received;
    total.messages_deleted += m.messages_deleted;
  }
  return total;
}

}  // namespace ppc::cloudq
