// Account-level queue management, mirroring the SQS / Azure Queue service
// surface: create/look up/delete named queues. The Classic Cloud framework
// uses two queues per computation — one for task scheduling and one for
// monitoring (§2.1.3).
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cloudq/message_queue.h"

namespace ppc::cloudq {

class QueueService {
 public:
  /// All queues created by this service share `clock` and default `config`;
  /// per-queue RNG streams are split from `rng` deterministically.
  QueueService(std::shared_ptr<const ppc::Clock> clock, QueueConfig config = {},
               ppc::Rng rng = ppc::Rng(0x5E5D));

  /// Creates (or returns the existing) queue with this name.
  std::shared_ptr<MessageQueue> create_queue(const std::string& name);

  /// Creates queue `name` (if needed) plus a companion "<name>-dlq" queue
  /// and wires the redrive policy between them. Returns the main queue.
  std::shared_ptr<MessageQueue> create_queue_with_dlq(const std::string& name,
                                                      int max_receive_count);

  /// Installs `hook` on every existing queue and every queue created later
  /// (account-wide chaos instrumentation). Non-owning; nullptr clears.
  void set_fault_hook(ppc::FaultHook* hook);

  /// Installs `tracer` on every existing queue and every queue created later
  /// (account-wide tracing). Non-owning; nullptr clears.
  void set_tracer(ppc::TraceHook* tracer);

  /// Returns the queue or nullptr when it does not exist.
  std::shared_ptr<MessageQueue> get_queue(const std::string& name) const;

  /// Removes the queue; outstanding shared_ptrs keep it alive but it is no
  /// longer discoverable. Returns false when absent.
  bool delete_queue(const std::string& name);

  std::vector<std::string> list_queues() const;

  /// Sum of request costs across live queues (feeds the billing report).
  Dollars total_request_cost() const;

  /// Account-wide request/message accounting, summed across live queues —
  /// what billing uses to price the batched-vs-unbatched request delta.
  RequestMeter total_meter() const;

 private:
  std::shared_ptr<const ppc::Clock> clock_;
  QueueConfig config_;
  mutable std::mutex mu_;
  ppc::Rng rng_;
  ppc::FaultHook* hook_ = nullptr;     // applied to new queues; guarded by mu_
  ppc::TraceHook* tracer_ = nullptr;   // applied to new queues; guarded by mu_
  std::map<std::string, std::shared_ptr<MessageQueue>> queues_;
};

}  // namespace ppc::cloudq
