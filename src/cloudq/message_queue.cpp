#include "cloudq/message_queue.h"

#include <charconv>

#include "common/error.h"
#include "common/string_util.h"

namespace ppc::cloudq {

namespace {

std::string format_message_id(std::uint64_t id_num) {
  char buf[24];
  buf[0] = 'm';
  buf[1] = '-';
  auto [end, ec] = std::to_chars(buf + 2, buf + sizeof(buf), id_num);
  (void)ec;
  return std::string(buf, end);
}

}  // namespace

MessageQueue::MessageQueue(std::string name, std::shared_ptr<const ppc::Clock> clock,
                           QueueConfig config, ppc::Rng rng)
    : name_(std::move(name)), clock_(std::move(clock)), config_(config) {
  PPC_REQUIRE(clock_ != nullptr, "MessageQueue requires a clock");
  PPC_REQUIRE(config_.default_visibility_timeout > 0.0,
              "default visibility timeout must be positive");
  PPC_REQUIRE(config_.visibility_lag_mean >= 0.0, "visibility lag must be >= 0");
  PPC_REQUIRE(config_.duplicate_delivery_prob >= 0.0 && config_.duplicate_delivery_prob <= 1.0,
              "duplicate probability must be in [0,1]");
  PPC_REQUIRE(config_.receive_miss_prob >= 0.0 && config_.receive_miss_prob < 1.0,
              "receive miss probability must be in [0,1)");
  PPC_REQUIRE(config_.shards >= 1 && config_.shards <= 1024,
              "queue shards must be in [1, 1024]");
  shards_.reserve(static_cast<std::size_t>(config_.shards));
  for (int i = 0; i < config_.shards; ++i) shards_.push_back(std::make_unique<Shard>());
  // Shard 0 inherits the constructor stream untouched so shards=1 reproduces
  // the single-lock service draw for draw; extra shards get split() children.
  for (int i = 1; i < config_.shards; ++i) shards_[static_cast<std::size_t>(i)]->rng = rng.split();
  shards_[0]->rng = rng;
}

std::string MessageQueue::send(std::string body) {
  ppc::TraceHook* tracer = tracer_.load(std::memory_order_relaxed);
  std::uint64_t span = 0;
  if (tracer != nullptr && tracer->tracing()) {
    span = tracer->op_begin("cloudq." + name_ + ".send", "");
  }
  if (ppc::FaultHook* hook = hook_.load()) {
    ppc::PayloadRef in_flight(&body);
    const ppc::FaultDecision d = hook->on_operation("cloudq." + name_ + ".send", "", &in_flight);
    if (d.fail) {
      if (span != 0) tracer->op_end(span, /*failed=*/true);
      throw ppc::Error("injected send failure on queue " + name_);
    }
    // Send-side corruption is *stored*: the service received flipped bytes
    // and checksummed what it got, so every delivery of this message is
    // garbage that passes intact() — a poison message.
    if (d.corrupted) body = in_flight.take();
  }
  meter_.sends.fetch_add(1, std::memory_order_relaxed);
  meter_.messages_sent.fetch_add(1, std::memory_order_relaxed);
  Shard& s = *shards_[shards_.size() == 1
                          ? 0
                          : next_send_shard_.fetch_add(1, std::memory_order_relaxed) %
                                shards_.size()];
  std::string id;
  {
    std::lock_guard lock(s.mu);
    id = enqueue_locked(s, std::move(body));
  }
  if (span != 0) tracer->op_end(span, /*failed=*/false);
  return id;
}

std::vector<std::string> MessageQueue::send_batch(const std::vector<std::string>& bodies) {
  PPC_REQUIRE(!bodies.empty(), "empty batch");
  // One API request per kBatchLimit messages.
  meter_.sends.fetch_add((bodies.size() + kBatchLimit - 1) / kBatchLimit,
                         std::memory_order_relaxed);
  meter_.messages_sent.fetch_add(bodies.size(), std::memory_order_relaxed);
  std::vector<std::string> ids;
  ids.reserve(bodies.size());
  if (shards_.size() == 1) {
    Shard& s = *shards_[0];
    std::lock_guard lock(s.mu);
    for (const std::string& body : bodies) ids.push_back(enqueue_locked(s, body));
  } else {
    for (const std::string& body : bodies) {
      Shard& s = *shards_[next_send_shard_.fetch_add(1, std::memory_order_relaxed) %
                          shards_.size()];
      std::lock_guard lock(s.mu);
      ids.push_back(enqueue_locked(s, body));
    }
  }
  return ids;
}

std::string MessageQueue::enqueue_locked(Shard& s, std::string body) {
  std::uint32_t slot;
  if (!s.free_slots.empty()) {
    slot = s.free_slots.back();
    s.free_slots.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(s.entries.size());
    s.entries.emplace_back();
  }
  Entry& e = s.entries[slot];
  e.id_num = next_msg_.fetch_add(1, std::memory_order_relaxed);
  e.body_hash = ppc::fnv1a64(body);
  e.body = std::make_shared<const std::string>(std::move(body));
  e.current_receipt_serial = 0;
  e.receive_count = 0;
  e.deleted = false;
  ++s.undeleted;
  const Seconds lag =
      config_.visibility_lag_mean > 0.0 ? s.rng.exponential(config_.visibility_lag_mean) : 0.0;
  const Seconds now = clock_->now();
  e.visible_at = now + lag;
  if (lag > 0.0) {
    ++e.hidden_stamp;
    s.hidden.push(HiddenRec{e.visible_at, slot, e.hidden_stamp});
  } else {
    make_visible_locked(s, slot, e);
  }
  return format_message_id(e.id_num);
}

void MessageQueue::enable_dead_letter(std::shared_ptr<MessageQueue> dlq, int max_receive_count) {
  PPC_REQUIRE(dlq != nullptr, "enable_dead_letter needs a queue");
  PPC_REQUIRE(dlq.get() != this, "a queue cannot be its own dead-letter queue");
  PPC_REQUIRE(max_receive_count >= 1, "max_receive_count must be >= 1");
  {
    std::lock_guard lock(meta_mu_);
    dlq_ = std::move(dlq);
  }
  max_receive_count_.store(max_receive_count, std::memory_order_relaxed);
  // Messages that already burned through their receive budget before the
  // redrive policy was attached move to the exhausted list so the next
  // receive sweep finds them (same timing as the old full-scan sweep).
  for (auto& sp : shards_) {
    Shard& s = *sp;
    std::lock_guard lock(s.mu);
    for (std::size_t i = 0; i < s.ready.size();) {
      Entry& e = s.entries[s.ready[i]];
      if (e.receive_count >= max_receive_count) {
        const std::uint32_t slot = s.ready[i];
        list_remove_locked(s, e);
        e.ready_pos = static_cast<std::int32_t>(s.exhausted_ready.size());
        e.in_exhausted = true;
        s.exhausted_ready.push_back(slot);
        // list_remove swapped the tail into position i; re-examine it.
      } else {
        ++i;
      }
    }
  }
}

bool MessageQueue::has_dead_letter_queue() const {
  std::lock_guard lock(meta_mu_);
  return dlq_ != nullptr;
}

int MessageQueue::max_receive_count() const {
  return max_receive_count_.load(std::memory_order_relaxed);
}

std::shared_ptr<MessageQueue> MessageQueue::dead_letter_queue() const {
  std::lock_guard lock(meta_mu_);
  return dlq_;
}

std::size_t MessageQueue::dlq_depth() const {
  std::shared_ptr<MessageQueue> dlq = dead_letter_queue();
  return dlq == nullptr ? 0 : dlq->undeleted();
}

bool MessageQueue::move_to_dlq(const std::string& receipt_handle) {
  std::shared_ptr<MessageQueue> dlq = dead_letter_queue();
  if (dlq == nullptr) return false;
  const auto parsed = parse_receipt(receipt_handle);
  if (!parsed || parsed->shard >= shards_.size()) return false;
  std::shared_ptr<const std::string> body;
  {
    Shard& s = *shards_[parsed->shard];
    std::lock_guard lock(s.mu);
    if (parsed->slot >= s.entries.size()) return false;
    Entry& e = s.entries[parsed->slot];
    if (e.deleted || e.current_receipt_serial != parsed->serial) return false;
    body = std::move(e.body);
    free_entry_locked(s, parsed->slot, e);
    meter_.dlq_moves.fetch_add(1, std::memory_order_relaxed);
  }
  dlq->send(std::string(*body));
  return true;
}

void MessageQueue::expire_locked(Shard& s, Seconds now) const {
  while (!s.hidden.empty() && s.hidden.top().at <= now) {
    const HiddenRec rec = s.hidden.top();
    s.hidden.pop();
    Entry& e = s.entries[rec.slot];
    if (e.deleted || e.hidden_stamp != rec.stamp) continue;  // superseded record
    ++e.hidden_stamp;  // consume: the entry leaves the heap's custody
    make_visible_locked(s, rec.slot, e);
  }
}

void MessageQueue::make_visible_locked(Shard& s, std::uint32_t slot, Entry& e) const {
  // A message that came back (visible again) after max_receive_count
  // deliveries is poison: park it for the redrive sweep instead of making
  // it deliverable again.
  if (max_receive_count_.load(std::memory_order_relaxed) > 0 &&
      e.receive_count >= max_receive_count_.load(std::memory_order_relaxed)) {
    e.ready_pos = static_cast<std::int32_t>(s.exhausted_ready.size());
    e.in_exhausted = true;
    s.exhausted_ready.push_back(slot);
  } else {
    e.ready_pos = static_cast<std::int32_t>(s.ready.size());
    e.in_exhausted = false;
    s.ready.push_back(slot);
  }
}

void MessageQueue::list_remove_locked(Shard& s, Entry& e) const {
  auto& list = e.in_exhausted ? s.exhausted_ready : s.ready;
  const auto pos = static_cast<std::size_t>(e.ready_pos);
  list[pos] = list.back();
  s.entries[list[pos]].ready_pos = static_cast<std::int32_t>(pos);
  list.pop_back();
  e.ready_pos = -1;
  e.in_exhausted = false;
}

void MessageQueue::hide_locked(Shard& s, std::uint32_t slot, Entry& e, Seconds until) const {
  if (e.ready_pos >= 0) list_remove_locked(s, e);
  e.visible_at = until;
  ++e.hidden_stamp;
  s.hidden.push(HiddenRec{until, slot, e.hidden_stamp});
}

void MessageQueue::free_entry_locked(Shard& s, std::uint32_t slot, Entry& e) const {
  if (e.ready_pos >= 0) list_remove_locked(s, e);
  ++e.hidden_stamp;  // orphan any outstanding heap record
  e.deleted = true;
  e.body.reset();
  --s.undeleted;
  s.free_slots.push_back(slot);
}

void MessageQueue::drain_exhausted_locked(
    Shard& s, std::vector<std::shared_ptr<const std::string>>& redriven) {
  while (!s.exhausted_ready.empty()) {
    const std::uint32_t slot = s.exhausted_ready.back();
    Entry& e = s.entries[slot];
    redriven.push_back(std::move(e.body));
    free_entry_locked(s, slot, e);
    meter_.dlq_moves.fetch_add(1, std::memory_order_relaxed);
  }
}

std::optional<Message> MessageQueue::receive(Seconds visibility_timeout) {
  Message out;
  if (receive_core(1, visibility_timeout, &out) == 0) return std::nullopt;
  return out;
}

std::size_t MessageQueue::receive_batch(std::size_t max_messages, Seconds visibility_timeout,
                                        std::vector<Message>& out) {
  PPC_REQUIRE(max_messages >= 1 && max_messages <= kBatchLimit,
              "receive batch size must be in [1, kBatchLimit]");
  Message scratch[kBatchLimit];
  const std::size_t n = receive_core(max_messages, visibility_timeout, scratch);
  for (std::size_t i = 0; i < n; ++i) out.push_back(std::move(scratch[i]));
  return n;
}

std::size_t MessageQueue::receive_core(std::size_t max, Seconds visibility_timeout,
                                       Message* out) {
  const Seconds timeout =
      visibility_timeout < 0.0 ? config_.default_visibility_timeout : visibility_timeout;
  PPC_REQUIRE(timeout > 0.0, "visibility timeout must be positive");

  ppc::TraceHook* tracer = tracer_.load(std::memory_order_relaxed);
  std::uint64_t span = 0;
  if (tracer != nullptr && tracer->tracing()) {
    span = tracer->op_begin("cloudq." + name_ + ".receive", "");
  }

  meter_.receives.fetch_add(1, std::memory_order_relaxed);
  const int max_rc = max_receive_count_.load(std::memory_order_relaxed);
  std::vector<std::shared_ptr<const std::string>> redriven;
  std::size_t attempted = 0;

  const std::size_t nshards = shards_.size();
  const std::size_t start =
      nshards == 1 ? 0 : next_sweep_shard_.fetch_add(1, std::memory_order_relaxed) % nshards;
  bool missed = false;
  for (std::size_t k = 0; k < nshards; ++k) {
    const std::size_t shard_idx = (start + k) % nshards;
    Shard& s = *shards_[shard_idx];
    std::lock_guard lock(s.mu);
    const Seconds now = clock_->now();
    if (k == 0 && config_.receive_miss_prob > 0.0) {
      missed = s.rng.bernoulli(config_.receive_miss_prob);
    }
    // The redrive sweep runs even on an eventually-consistent miss: it is
    // the service noticing exhausted messages, not the caller.
    expire_locked(s, now);
    drain_exhausted_locked(s, redriven);
    if (missed) break;

    while (attempted < max && !s.ready.empty()) {
      const std::uint32_t slot = s.ready[s.rng.index(s.ready.size())];
      Entry& e = s.entries[slot];
      ++e.receive_count;
      e.current_receipt_serial = next_receipt_serial_.fetch_add(1, std::memory_order_relaxed);
      if (!(config_.duplicate_delivery_prob > 0.0 &&
            s.rng.bernoulli(config_.duplicate_delivery_prob))) {
        hide_locked(s, slot, e, now + timeout);  // normal path: hide until timeout
      } else if (max_rc > 0 && e.receive_count >= max_rc && !e.in_exhausted) {
        // Duplicate-delivery path: the message stays visible, so a second
        // reader can receive it immediately; the second delivery will
        // supersede this receipt, making the first delete fail —
        // at-least-once in action. If this delivery burned the receive
        // budget, re-park it as poison for the redrive sweep.
        list_remove_locked(s, e);
        e.ready_pos = static_cast<std::int32_t>(s.exhausted_ready.size());
        e.in_exhausted = true;
        s.exhausted_ready.push_back(slot);
      }

      Message& m = out[attempted++];
      m.id = format_message_id(e.id_num);
      m.payload = e.body;  // aliases the stored body: delivery copies a pointer
      m.receipt_handle =
          make_receipt(static_cast<std::uint32_t>(shard_idx), slot, e.current_receipt_serial);
      m.receive_count = e.receive_count;
      m.body_hash = e.body_hash;
    }
    if (attempted >= max) break;
  }

  if (!redriven.empty()) {
    std::shared_ptr<MessageQueue> dlq = dead_letter_queue();
    for (const auto& body : redriven) dlq->send(std::string(*body));
  }

  std::size_t delivered = attempted;
  if (ppc::FaultHook* hook = hook_.load(); hook != nullptr && attempted > 0) {
    delivered = 0;
    for (std::size_t i = 0; i < attempted; ++i) {
      Message& m = out[i];
      ppc::PayloadRef in_flight(m.payload.get());
      const ppc::FaultDecision d =
          hook->on_operation("cloudq." + name_ + ".receive", m.id, &in_flight);
      if (d.fail) {
        // The response was lost after the service hid the message. Making the
        // caller wait out the full visibility timeout for a message nobody
        // holds would just stall the run, so the entry becomes immediately
        // redeliverable; its receive_count bump stands (the service *did*
        // deliver).
        const auto parsed = parse_receipt(m.receipt_handle);
        Shard& s = *shards_[parsed->shard];
        std::lock_guard lock(s.mu);
        Entry& e = s.entries[parsed->slot];
        if (!e.deleted && e.current_receipt_serial == parsed->serial) {
          e.visible_at = clock_->now();
          if (e.ready_pos < 0) {
            ++e.hidden_stamp;  // orphan the heap record; it is visible now
            make_visible_locked(s, parsed->slot, e);
          }
        }
        continue;
      }
      if (d.corrupted) {
        // Only this delivery is tainted; body_hash still describes the stored
        // bytes, so Message::intact() flags the mismatch.
        m.payload = std::make_shared<const std::string>(in_flight.take());
      }
      if (delivered != i) out[delivered] = std::move(m);
      ++delivered;
    }
  }
  meter_.messages_received.fetch_add(delivered, std::memory_order_relaxed);

  if (span != 0) {
    if (attempted == 0) {
      // Empty poll: not worth a span (workers poll at high rate while idle).
      tracer->op_cancel(span);
    } else {
      tracer->op_end(span, /*failed=*/delivered == 0);
    }
  }
  return delivered;
}

bool MessageQueue::delete_message(const std::string& receipt_handle) {
  ppc::TraceHook* tracer = tracer_.load(std::memory_order_relaxed);
  std::uint64_t span = 0;
  if (tracer != nullptr && tracer->tracing()) {
    span = tracer->op_begin("cloudq." + name_ + ".delete", receipt_handle);
  }
  const bool deleted = delete_message_impl(receipt_handle);
  if (span != 0) tracer->op_end(span, /*failed=*/!deleted);
  return deleted;
}

bool MessageQueue::delete_message_impl(const std::string& receipt_handle) {
  if (ppc::FaultHook* hook = hook_.load()) {
    const ppc::FaultDecision d =
        hook->on_operation("cloudq." + name_ + ".delete", receipt_handle, nullptr);
    if (d.fail) {
      // Request lost in flight: still billed, nothing deleted. The message
      // will time out and be redelivered; idempotency absorbs it.
      meter_.deletes.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
  meter_.deletes.fetch_add(1, std::memory_order_relaxed);
  return delete_entry(receipt_handle);
}

std::size_t MessageQueue::delete_batch(const std::vector<std::string>& receipt_handles) {
  PPC_REQUIRE(!receipt_handles.empty(), "empty batch");
  ppc::TraceHook* tracer = tracer_.load(std::memory_order_relaxed);
  std::uint64_t span = 0;
  if (tracer != nullptr && tracer->tracing()) {
    span = tracer->op_begin("cloudq." + name_ + ".delete", receipt_handles.front());
  }
  // One API request per kBatchLimit receipts.
  meter_.deletes.fetch_add((receipt_handles.size() + kBatchLimit - 1) / kBatchLimit,
                           std::memory_order_relaxed);
  ppc::FaultHook* hook = hook_.load();
  std::size_t ok = 0;
  for (const std::string& receipt : receipt_handles) {
    if (hook != nullptr) {
      const ppc::FaultDecision d =
          hook->on_operation("cloudq." + name_ + ".delete", receipt, nullptr);
      if (d.fail) continue;  // this entry's delete lost; billed with the batch
    }
    if (delete_entry(receipt)) ++ok;
  }
  if (span != 0) tracer->op_end(span, /*failed=*/ok < receipt_handles.size());
  return ok;
}

bool MessageQueue::delete_entry(const std::string& receipt_handle) {
  const auto parsed = parse_receipt(receipt_handle);
  if (!parsed || parsed->shard >= shards_.size()) return false;
  Shard& s = *shards_[parsed->shard];
  std::lock_guard lock(s.mu);
  if (parsed->slot >= s.entries.size()) return false;
  Entry& e = s.entries[parsed->slot];
  // Stale when the message was deleted, was never delivered with this serial,
  // or a newer delivery superseded this receipt. (A recycled slot holds a
  // fresh serial, so receipts to the previous occupant fail here too.)
  if (e.deleted || e.current_receipt_serial != parsed->serial) return false;
  if (e.visible_at <= clock_->now()) {
    // The receipt's visibility timeout lapsed: the message is back in the
    // queue and may be redelivered at any moment, so honoring the delete
    // would race that redelivery. Detected no-op — SQS honors deletes with
    // the *current* receipt only while the message is still hidden.
    meter_.stale_deletes.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  free_entry_locked(s, parsed->slot, e);
  meter_.messages_deleted.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool MessageQueue::change_visibility(const std::string& receipt_handle, Seconds timeout) {
  PPC_REQUIRE(timeout >= 0.0, "visibility timeout must be >= 0");
  meter_.visibility_changes.fetch_add(1, std::memory_order_relaxed);
  const auto parsed = parse_receipt(receipt_handle);
  if (!parsed || parsed->shard >= shards_.size()) return false;
  Shard& s = *shards_[parsed->shard];
  std::lock_guard lock(s.mu);
  if (parsed->slot >= s.entries.size()) return false;
  Entry& e = s.entries[parsed->slot];
  if (e.deleted || e.current_receipt_serial != parsed->serial) return false;
  const Seconds now = clock_->now();
  const Seconds target = now + timeout;
  if (target <= now) {
    // Shrunk to zero: deliverable immediately.
    e.visible_at = target;
    if (e.ready_pos < 0) {
      ++e.hidden_stamp;  // orphan the heap record
      make_visible_locked(s, parsed->slot, e);
    }
  } else {
    hide_locked(s, parsed->slot, e, target);
  }
  return true;
}

std::size_t MessageQueue::approximate_visible() const {
  std::size_t n = 0;
  for (const auto& sp : shards_) {
    Shard& s = *sp;
    std::lock_guard lock(s.mu);
    expire_locked(s, clock_->now());
    n += s.ready.size() + s.exhausted_ready.size();
  }
  return n;
}

std::size_t MessageQueue::in_flight() const {
  std::size_t n = 0;
  for (const auto& sp : shards_) {
    Shard& s = *sp;
    std::lock_guard lock(s.mu);
    expire_locked(s, clock_->now());
    n += s.undeleted - (s.ready.size() + s.exhausted_ready.size());
  }
  return n;
}

std::size_t MessageQueue::undeleted() const {
  std::size_t n = 0;
  for (const auto& sp : shards_) {
    Shard& s = *sp;
    std::lock_guard lock(s.mu);
    n += s.undeleted;
  }
  return n;
}

RequestMeter MessageQueue::meter() const {
  RequestMeter m;
  m.sends = meter_.sends.load(std::memory_order_relaxed);
  m.receives = meter_.receives.load(std::memory_order_relaxed);
  m.deletes = meter_.deletes.load(std::memory_order_relaxed);
  m.visibility_changes = meter_.visibility_changes.load(std::memory_order_relaxed);
  m.stale_deletes = meter_.stale_deletes.load(std::memory_order_relaxed);
  m.dlq_moves = meter_.dlq_moves.load(std::memory_order_relaxed);
  m.messages_sent = meter_.messages_sent.load(std::memory_order_relaxed);
  m.messages_received = meter_.messages_received.load(std::memory_order_relaxed);
  m.messages_deleted = meter_.messages_deleted.load(std::memory_order_relaxed);
  return m;
}

Dollars MessageQueue::request_cost() const {
  return static_cast<double>(meter().total()) / 10000.0 * config_.cost_per_10k_requests;
}

std::string MessageQueue::make_receipt(std::uint32_t shard, std::uint32_t slot,
                                       std::uint64_t serial) {
  // Worst case: "r-" + 10 + 10 + 20 digits + 2 dashes = 44 chars; capping
  // to_chars at buf+48 leaves provable room for the separator writes.
  char buf[64];
  std::size_t len = 0;
  buf[len++] = 'r';
  buf[len++] = '-';
  len = static_cast<std::size_t>(std::to_chars(buf + len, buf + 48, shard).ptr - buf);
  buf[len++] = '-';
  len = static_cast<std::size_t>(std::to_chars(buf + len, buf + 48, slot).ptr - buf);
  buf[len++] = '-';
  len = static_cast<std::size_t>(std::to_chars(buf + len, buf + 48, serial).ptr - buf);
  return std::string(buf, len);
}

std::optional<MessageQueue::Receipt> MessageQueue::parse_receipt(const std::string& receipt) {
  if (receipt.size() < 2 || receipt[0] != 'r' || receipt[1] != '-') return std::nullopt;
  const char* p = receipt.data() + 2;
  const char* end = receipt.data() + receipt.size();
  Receipt out;
  const auto take = [&](auto& value) -> bool {
    auto [next, ec] = std::from_chars(p, end, value);
    if (ec != std::errc() || next == p) return false;
    p = next;
    return true;
  };
  if (!take(out.shard)) return std::nullopt;
  if (p == end || *p != '-') return std::nullopt;
  ++p;
  if (!take(out.slot)) return std::nullopt;
  if (p == end || *p != '-') return std::nullopt;
  ++p;
  if (!take(out.serial) || p != end) return std::nullopt;
  return out;
}

}  // namespace ppc::cloudq
