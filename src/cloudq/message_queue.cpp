#include "cloudq/message_queue.h"

#include <charconv>

#include "common/error.h"
#include "common/string_util.h"

namespace ppc::cloudq {

MessageQueue::MessageQueue(std::string name, std::shared_ptr<const ppc::Clock> clock,
                           QueueConfig config, ppc::Rng rng)
    : name_(std::move(name)), clock_(std::move(clock)), config_(config), rng_(rng) {
  PPC_REQUIRE(clock_ != nullptr, "MessageQueue requires a clock");
  PPC_REQUIRE(config_.default_visibility_timeout > 0.0,
              "default visibility timeout must be positive");
  PPC_REQUIRE(config_.visibility_lag_mean >= 0.0, "visibility lag must be >= 0");
  PPC_REQUIRE(config_.duplicate_delivery_prob >= 0.0 && config_.duplicate_delivery_prob <= 1.0,
              "duplicate probability must be in [0,1]");
  PPC_REQUIRE(config_.receive_miss_prob >= 0.0 && config_.receive_miss_prob < 1.0,
              "receive miss probability must be in [0,1)");
}

std::string MessageQueue::send(std::string body) {
  ppc::TraceHook* tracer = tracer_.load(std::memory_order_relaxed);
  std::uint64_t span = 0;
  if (tracer != nullptr && tracer->tracing()) {
    span = tracer->op_begin("cloudq." + name_ + ".send", "");
  }
  if (ppc::FaultHook* hook = hook_.load()) {
    ppc::PayloadRef in_flight(&body);
    const ppc::FaultDecision d = hook->on_operation("cloudq." + name_ + ".send", "", &in_flight);
    if (d.fail) {
      if (span != 0) tracer->op_end(span, /*failed=*/true);
      throw ppc::Error("injected send failure on queue " + name_);
    }
    // Send-side corruption is *stored*: the service received flipped bytes
    // and checksummed what it got, so every delivery of this message is
    // garbage that passes intact() — a poison message.
    if (d.corrupted) body = in_flight.take();
  }
  std::string id;
  {
    std::lock_guard lock(mu_);
    ++meter_.sends;
    id = enqueue_locked(std::move(body));
  }
  if (span != 0) tracer->op_end(span, /*failed=*/false);
  return id;
}

std::vector<std::string> MessageQueue::send_batch(const std::vector<std::string>& bodies) {
  PPC_REQUIRE(!bodies.empty(), "empty batch");
  std::lock_guard lock(mu_);
  // One API request per kBatchLimit messages.
  meter_.sends += (bodies.size() + kBatchLimit - 1) / kBatchLimit;
  std::vector<std::string> ids;
  ids.reserve(bodies.size());
  for (const std::string& body : bodies) ids.push_back(enqueue_locked(body));
  return ids;
}

std::string MessageQueue::enqueue_locked(std::string body) {
  Entry e;
  e.id = "m-" + std::to_string(next_msg_++);
  e.body_hash = ppc::fnv1a64(body);
  e.body = std::make_shared<const std::string>(std::move(body));
  const Seconds lag =
      config_.visibility_lag_mean > 0.0 ? rng_.exponential(config_.visibility_lag_mean) : 0.0;
  e.visible_at = clock_->now() + lag;
  entries_.push_back(std::move(e));
  return entries_.back().id;
}

void MessageQueue::enable_dead_letter(std::shared_ptr<MessageQueue> dlq, int max_receive_count) {
  PPC_REQUIRE(dlq != nullptr, "enable_dead_letter needs a queue");
  PPC_REQUIRE(dlq.get() != this, "a queue cannot be its own dead-letter queue");
  PPC_REQUIRE(max_receive_count >= 1, "max_receive_count must be >= 1");
  std::lock_guard lock(mu_);
  dlq_ = std::move(dlq);
  max_receive_count_ = max_receive_count;
}

bool MessageQueue::has_dead_letter_queue() const {
  std::lock_guard lock(mu_);
  return dlq_ != nullptr;
}

int MessageQueue::max_receive_count() const {
  std::lock_guard lock(mu_);
  return max_receive_count_;
}

std::shared_ptr<MessageQueue> MessageQueue::dead_letter_queue() const {
  std::lock_guard lock(mu_);
  return dlq_;
}

std::size_t MessageQueue::dlq_depth() const {
  std::shared_ptr<MessageQueue> dlq;
  {
    std::lock_guard lock(mu_);
    dlq = dlq_;
  }
  return dlq == nullptr ? 0 : dlq->undeleted();
}

bool MessageQueue::move_to_dlq(const std::string& receipt_handle) {
  std::shared_ptr<MessageQueue> dlq;
  std::shared_ptr<const std::string> body;
  {
    std::lock_guard lock(mu_);
    if (dlq_ == nullptr) return false;
    Entry* e = lookup_locked(receipt_handle);
    if (e == nullptr) return false;
    e->deleted = true;
    body = e->body;
    dlq = dlq_;
    ++meter_.dlq_moves;
  }
  dlq->send(std::string(*body));
  return true;
}

std::vector<std::shared_ptr<const std::string>> MessageQueue::sweep_exhausted_locked(
    Seconds now) {
  std::vector<std::shared_ptr<const std::string>> moved;
  if (dlq_ == nullptr || max_receive_count_ <= 0) return moved;
  for (Entry& e : entries_) {
    // A message that came back (visible again) after max_receive_count
    // deliveries is poison: redrive it instead of delivering again.
    if (!e.deleted && e.visible_at <= now && e.receive_count >= max_receive_count_) {
      e.deleted = true;
      moved.push_back(e.body);
      ++meter_.dlq_moves;
    }
  }
  return moved;
}

std::optional<Message> MessageQueue::receive(Seconds visibility_timeout) {
  const Seconds timeout =
      visibility_timeout < 0.0 ? config_.default_visibility_timeout : visibility_timeout;
  PPC_REQUIRE(timeout > 0.0, "visibility timeout must be positive");

  ppc::TraceHook* tracer = tracer_.load(std::memory_order_relaxed);
  std::uint64_t span = 0;
  if (tracer != nullptr && tracer->tracing()) {
    span = tracer->op_begin("cloudq." + name_ + ".receive", "");
  }

  std::shared_ptr<MessageQueue> dlq;
  std::vector<std::shared_ptr<const std::string>> exhausted;
  std::optional<Message> delivered;
  std::size_t delivered_idx = 0;
  std::uint64_t delivered_serial = 0;
  {
    std::lock_guard lock(mu_);
    ++meter_.receives;
    const Seconds now = clock_->now();
    const bool missed =
        config_.receive_miss_prob > 0.0 && rng_.bernoulli(config_.receive_miss_prob);

    // The redrive sweep runs even on an eventually-consistent miss: it is
    // the service noticing exhausted messages, not the caller.
    exhausted = sweep_exhausted_locked(now);
    dlq = dlq_;

    if (!missed) {
      std::vector<std::size_t> visible;
      visible.reserve(entries_.size());
      for (std::size_t i = 0; i < entries_.size(); ++i) {
        const Entry& e = entries_[i];
        if (!e.deleted && e.visible_at <= now) visible.push_back(i);
      }
      if (!visible.empty()) {
        const std::size_t idx = visible[rng_.index(visible.size())];
        Entry& e = entries_[idx];
        ++e.receive_count;
        e.current_receipt_serial = next_receipt_serial_++;
        if (!(config_.duplicate_delivery_prob > 0.0 &&
              rng_.bernoulli(config_.duplicate_delivery_prob))) {
          e.visible_at = now + timeout;  // normal path: hide until timeout
        }
        // Duplicate-delivery path: the message stays visible, so a second
        // reader can receive it immediately; the second delivery will
        // supersede this receipt, making the first delete fail —
        // at-least-once in action.

        Message m;
        m.id = e.id;
        m.payload = e.body;  // aliases the stored body: delivery copies a pointer
        m.receipt_handle = make_receipt(idx, e.current_receipt_serial);
        m.receive_count = e.receive_count;
        m.body_hash = e.body_hash;
        delivered = std::move(m);
        delivered_idx = idx;
        delivered_serial = e.current_receipt_serial;
      }
    }
  }
  for (const auto& body : exhausted) dlq->send(std::string(*body));
  if (!delivered) {
    // Empty poll: not worth a span (workers poll at high rate while idle).
    if (span != 0) tracer->op_cancel(span);
    return std::nullopt;
  }

  if (ppc::FaultHook* hook = hook_.load()) {
    ppc::PayloadRef in_flight(delivered->payload.get());
    const ppc::FaultDecision d =
        hook->on_operation("cloudq." + name_ + ".receive", delivered->id, &in_flight);
    if (d.fail) {
      // The response was lost after the service hid the message. Making the
      // caller wait out the full visibility timeout for a message nobody
      // holds would just stall the run, so the entry becomes immediately
      // redeliverable; its receive_count bump stands (the service *did*
      // deliver).
      std::lock_guard lock(mu_);
      Entry& e = entries_[delivered_idx];
      if (!e.deleted && e.current_receipt_serial == delivered_serial) {
        e.visible_at = clock_->now();
      }
      if (span != 0) tracer->op_end(span, /*failed=*/true);
      return std::nullopt;
    }
    if (d.corrupted) {
      // Only this delivery is tainted; body_hash still describes the stored
      // bytes, so Message::intact() flags the mismatch.
      delivered->payload = std::make_shared<const std::string>(in_flight.take());
    }
  }
  if (span != 0) tracer->op_end(span, /*failed=*/false);
  return delivered;
}

bool MessageQueue::delete_message(const std::string& receipt_handle) {
  ppc::TraceHook* tracer = tracer_.load(std::memory_order_relaxed);
  std::uint64_t span = 0;
  if (tracer != nullptr && tracer->tracing()) {
    span = tracer->op_begin("cloudq." + name_ + ".delete", receipt_handle);
  }
  const bool deleted = delete_message_impl(receipt_handle);
  if (span != 0) tracer->op_end(span, /*failed=*/!deleted);
  return deleted;
}

bool MessageQueue::delete_message_impl(const std::string& receipt_handle) {
  if (ppc::FaultHook* hook = hook_.load()) {
    const ppc::FaultDecision d =
        hook->on_operation("cloudq." + name_ + ".delete", receipt_handle, nullptr);
    if (d.fail) {
      // Request lost in flight: still billed, nothing deleted. The message
      // will time out and be redelivered; idempotency absorbs it.
      std::lock_guard lock(mu_);
      ++meter_.deletes;
      return false;
    }
  }
  std::lock_guard lock(mu_);
  ++meter_.deletes;
  Entry* e = lookup_locked(receipt_handle);
  if (e == nullptr) return false;
  if (e->visible_at <= clock_->now()) {
    // The receipt's visibility timeout lapsed: the message is back in the
    // queue and may be redelivered at any moment, so honoring the delete
    // would race that redelivery. Detected no-op (satellite bugfix) —
    // previously this succeeded whenever the serial still matched.
    ++meter_.stale_deletes;
    return false;
  }
  e->deleted = true;
  return true;
}

bool MessageQueue::change_visibility(const std::string& receipt_handle, Seconds timeout) {
  PPC_REQUIRE(timeout >= 0.0, "visibility timeout must be >= 0");
  std::lock_guard lock(mu_);
  ++meter_.visibility_changes;
  Entry* e = lookup_locked(receipt_handle);
  if (e == nullptr) return false;
  e->visible_at = clock_->now() + timeout;
  return true;
}

std::size_t MessageQueue::approximate_visible() const {
  std::lock_guard lock(mu_);
  const Seconds now = clock_->now();
  std::size_t n = 0;
  for (const Entry& e : entries_) {
    if (!e.deleted && e.visible_at <= now) ++n;
  }
  return n;
}

std::size_t MessageQueue::in_flight() const {
  std::lock_guard lock(mu_);
  const Seconds now = clock_->now();
  std::size_t n = 0;
  for (const Entry& e : entries_) {
    if (!e.deleted && e.visible_at > now) ++n;
  }
  return n;
}

std::size_t MessageQueue::undeleted() const {
  std::lock_guard lock(mu_);
  std::size_t n = 0;
  for (const Entry& e : entries_) {
    if (!e.deleted) ++n;
  }
  return n;
}

RequestMeter MessageQueue::meter() const {
  std::lock_guard lock(mu_);
  return meter_;
}

Dollars MessageQueue::request_cost() const {
  std::lock_guard lock(mu_);
  return static_cast<double>(meter_.total()) / 10000.0 * config_.cost_per_10k_requests;
}

std::string MessageQueue::make_receipt(std::size_t entry_index, std::uint64_t serial) const {
  return "r-" + std::to_string(entry_index) + "-" + std::to_string(serial);
}

std::optional<std::pair<std::size_t, std::uint64_t>> MessageQueue::parse_receipt(
    const std::string& receipt) {
  if (!ppc::starts_with(receipt, "r-")) return std::nullopt;
  const auto parts = ppc::split(receipt, '-');
  if (parts.size() != 3) return std::nullopt;
  std::size_t index = 0;
  std::uint64_t serial = 0;
  auto [p1, ec1] = std::from_chars(parts[1].data(), parts[1].data() + parts[1].size(), index);
  auto [p2, ec2] = std::from_chars(parts[2].data(), parts[2].data() + parts[2].size(), serial);
  if (ec1 != std::errc() || ec2 != std::errc()) return std::nullopt;
  return std::make_pair(index, serial);
}

MessageQueue::Entry* MessageQueue::lookup_locked(const std::string& receipt_handle) {
  const auto parsed = parse_receipt(receipt_handle);
  if (!parsed) return nullptr;
  const auto [index, serial] = *parsed;
  if (index >= entries_.size()) return nullptr;
  Entry& e = entries_[index];
  // Stale when the message was deleted, was never delivered with this serial,
  // or a newer delivery superseded this receipt.
  if (e.deleted || e.current_receipt_serial != serial) return nullptr;
  // SQS honors deletes with the *current* receipt even after the visibility
  // timeout has lapsed, as long as no other reader picked the message up
  // (which would have bumped the serial). Same here: serial match is enough.
  return &e;
}

}  // namespace ppc::cloudq
