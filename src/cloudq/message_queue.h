// In-process reproduction of the queue service the paper's Classic Cloud
// framework schedules through (Amazon SQS / Azure Queue, §2.1.1, §2.1.3).
//
// Semantics reproduced:
//  * at-least-once delivery — a received message is hidden, not removed; it
//    reappears when its visibility timeout lapses without a delete;
//  * unordered delivery — receive() samples a random visible message;
//  * eventual consistency — a freshly sent message may take a moment to
//    become visible, and a receive may miss visible messages entirely
//    ("SQS does not guarantee ... the availability of all the messages for a
//    request, though it does guarantee eventual availability over multiple
//    requests");
//  * occasional duplicate delivery — with small probability a delivered
//    message is left visible so another reader can obtain it concurrently;
//  * stale receipts — deleting with a receipt that has been superseded by a
//    redelivery, or whose visibility timeout has already lapsed (the message
//    is back in the queue and may be redelivered at any moment), fails; this
//    is exactly what makes idempotent tasks a requirement in the paper's
//    fault-tolerance story;
//  * dead-letter queues — with enable_dead_letter(), a message delivered
//    max_receive_count times without a delete is moved to a companion queue
//    on the next receive sweep (the SQS redrive policy), which is how poison
//    tasks stop livelocking a worker pool;
//  * body checksums — deliveries carry the fnv1a64 of the stored body (our
//    MD5OfBody), so receivers can detect payloads corrupted in flight;
//  * batch APIs — send_batch / receive_batch / delete_batch move up to
//    kBatchLimit messages per API request (SQS SendMessageBatch /
//    ReceiveMessage MaxNumberOfMessages / DeleteMessageBatch), which is what
//    keeps a million-task campaign at ~100k queue requests instead of 3M;
//  * request metering — SQS bills per API request; the meter counts both
//    requests and messages moved, so billing can price the batching win
//    (Table 4's "Queue messages (~10,000) : $0.01" line).
//
// Storage layout: the queue is sharded (QueueConfig::shards) into
// independently locked stripes. Each shard owns a slab of message slots with
// a striped free-list (deleted slots are recycled — the envelope pool), a
// ready list of visible slots for O(1) uniform sampling, and a min-heap of
// hidden slots keyed by visible-at time so expiry is O(log n) per message
// instead of an O(n) scan per receive. Producers round-robin across shards;
// receive sweeps shards starting from a rotating cursor (work stealing), so
// concurrent pollers fan out instead of convoying on one lock. shards=1
// reproduces the single-lock service exactly (same RNG stream, same billing).
//
// Thread-safe. Time comes from an injected ppc::Clock so the very same class
// backs both the real-thread workers (tests/examples) and the discrete-event
// simulation (figure benches).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/fault_hook.h"
#include "common/rng.h"
#include "common/trace_hook.h"
#include "common/string_util.h"
#include "common/units.h"

namespace ppc::cloudq {

struct QueueConfig {
  /// Hidden period applied by receive() when the caller does not override it.
  Seconds default_visibility_timeout = 30.0;

  /// Mean delay (exponential) before a sent message becomes visible.
  /// 0 disables the lag (strong consistency).
  Seconds visibility_lag_mean = 0.0;

  /// Probability that a delivered message is *also* left visible, modeling
  /// SQS's rare duplicate delivery. The duplicate copy carries its own
  /// receipt; whichever delete arrives first wins.
  double duplicate_delivery_prob = 0.0;

  /// Probability that a receive() returns empty even though visible messages
  /// exist (a single request does not see the whole distributed queue).
  double receive_miss_prob = 0.0;

  /// 2010-era SQS pricing: $0.01 per 10,000 API requests.
  Dollars cost_per_10k_requests = 0.01;

  /// Independently locked stripes. 1 (the default) is the single-lock
  /// service with today's exact RNG stream; >1 trades per-request global
  /// ordering (the redrive sweep and miss model act per visited shard) for
  /// MPMC scalability. Sharding never weakens the delivery guarantees:
  /// at-least-once, visibility timeouts, stale receipts, and DLQ redrive
  /// hold per message regardless of stripe count.
  int shards = 1;
};

/// A delivered message. `receipt_handle` must be presented to delete_message.
struct Message {
  std::string id;
  /// Shared immutable body: aliases the queue's stored payload, so a receive
  /// (and every redelivery) is zero-copy. A delivery corrupted by a fault
  /// hook carries a private flipped copy instead — intact() exposes it.
  std::shared_ptr<const std::string> payload;
  std::string receipt_handle;
  int receive_count = 0;  // how many times this message has been delivered
  /// fnv1a64 of the *stored* body, stamped at send time (our MD5OfBody).
  /// 0 = unknown (hand-built messages in tests), treated as intact.
  std::uint64_t body_hash = 0;

  const std::string& body() const { return *payload; }

  /// True when the delivered bytes match the send-time checksum. A false
  /// return means this delivery was corrupted in flight; the stored message
  /// is intact and a redelivery will carry clean bytes.
  bool intact() const { return body_hash == 0 || ppc::fnv1a64(*payload) == body_hash; }
};

/// Per-queue API request accounting. Requests are what SQS bills; the
/// messages_* fields count payloads moved, so messages / requests is the
/// batch occupancy (1.0 = unbatched chatter, 10.0 = perfect batching).
struct RequestMeter {
  std::uint64_t sends = 0;     // send requests (a batch of 10 bills 1)
  std::uint64_t receives = 0;  // receive requests, including empty receives
  std::uint64_t deletes = 0;   // delete requests (a batch of 10 bills 1)
  std::uint64_t visibility_changes = 0;
  /// Deletes presented with the current receipt *after* its visibility
  /// timeout lapsed — detected no-ops (the message is deliverable again, so
  /// honoring the delete would race a concurrent redelivery).
  std::uint64_t stale_deletes = 0;
  /// Messages moved to the dead-letter queue (sweeps + explicit moves).
  std::uint64_t dlq_moves = 0;

  std::uint64_t messages_sent = 0;      // bodies enqueued
  std::uint64_t messages_received = 0;  // deliveries handed to callers
  std::uint64_t messages_deleted = 0;   // successful deletes

  std::uint64_t total() const { return sends + receives + deletes + visibility_changes; }

  /// Requests the same traffic would have cost with one message per request
  /// — the denominator of the batching win billing reports.
  std::uint64_t unbatched_total() const {
    return messages_sent + messages_received + messages_deleted + visibility_changes;
  }

  /// Messages moved per send/receive/delete request; 0 when idle.
  double batch_occupancy() const {
    const std::uint64_t requests = sends + receives + deletes;
    if (requests == 0) return 0.0;
    return static_cast<double>(messages_sent + messages_received + messages_deleted) /
           static_cast<double>(requests);
  }
};

class MessageQueue {
 public:
  MessageQueue(std::string name, std::shared_ptr<const ppc::Clock> clock,
               QueueConfig config = {}, ppc::Rng rng = ppc::Rng(0xC10CDA7A));

  const std::string& name() const { return name_; }
  const QueueConfig& config() const { return config_; }

  /// Installs a fault hook fired on every send/receive/delete (sites
  /// "cloudq.<name>.send" / ".receive" / ".delete"). A failing send throws,
  /// a failing receive loses the response (the selected message becomes
  /// immediately redeliverable — its receive_count increment stands, exactly
  /// like a reply lost after the service acted), a failing delete is dropped,
  /// and a corrupted send/receive flips payload bits (send-side corruption is
  /// *stored* — the poison-message generator; receive-side corruption taints
  /// one delivery only, detectable via Message::intact()). Batch receives and
  /// deletes fire the hook once per message at the same sites, so a fault
  /// plan sees identical traffic whether or not the caller batches.
  /// Non-owning; pass nullptr to clear. The hook must outlive its use.
  void set_fault_hook(ppc::FaultHook* hook) { hook_.store(hook); }

  /// Installs a trace hook (runtime::Tracer) that gets a span per
  /// send/receive/delete API request (sites "cloudq.<name>.send" /
  /// ".receive" / ".delete"); empty receives are cancelled, not recorded.
  /// Non-owning; nullptr clears. Costs one relaxed atomic load per call when
  /// unset.
  void set_tracer(ppc::TraceHook* tracer) { tracer_.store(tracer); }

  /// Attaches a dead-letter queue (the SQS redrive policy): once a message
  /// has been delivered `max_receive_count` times without being deleted, the
  /// next receive sweep moves it to `dlq` instead of redelivering it.
  /// `dlq` must be a different queue and DLQ chains must be acyclic.
  void enable_dead_letter(std::shared_ptr<MessageQueue> dlq, int max_receive_count);

  bool has_dead_letter_queue() const;

  /// The redrive threshold, or 0 when no DLQ is attached.
  int max_receive_count() const;

  std::shared_ptr<MessageQueue> dead_letter_queue() const;

  /// Undeleted messages sitting in the attached DLQ (0 without one).
  std::size_t dlq_depth() const;

  /// Explicitly moves an in-flight message to the dead-letter queue — the
  /// receiver recognized a poison payload and refuses to process it again.
  /// Returns false on a stale receipt or when no DLQ is attached.
  bool move_to_dlq(const std::string& receipt_handle);

  /// Enqueues a message body; returns the service-assigned message id.
  std::string send(std::string body);

  /// Enqueues up to kBatchLimit messages per API request (SQS
  /// SendMessageBatch): the whole batch is billed as single requests per
  /// 10 messages, which is how the paper's 4096-task job stays at ~$0.01 of
  /// queue cost. Returns the message ids in order.
  std::vector<std::string> send_batch(const std::vector<std::string>& bodies);

  /// Messages accepted per batch request (the SQS limit).
  static constexpr std::size_t kBatchLimit = 10;

  /// Attempts to deliver one message. `visibility_timeout` < 0 uses the
  /// queue default. Returns nullopt when nothing is deliverable (or the
  /// request "missed" under eventual consistency).
  std::optional<Message> receive(Seconds visibility_timeout = -1.0);

  /// One receive request (billed once) that delivers up to `max_messages`
  /// (<= kBatchLimit) messages, appended to `out` — SQS ReceiveMessage with
  /// MaxNumberOfMessages. `out` is appended to, not cleared, so callers can
  /// reuse its capacity across polls (the envelope pool). Returns the number
  /// of messages appended; 0 on an empty queue or a consistency miss.
  std::size_t receive_batch(std::size_t max_messages, Seconds visibility_timeout,
                            std::vector<Message>& out);

  /// Deletes the message identified by `receipt_handle`. Returns false when
  /// the receipt is stale (the message timed out — even if not yet
  /// redelivered — was redelivered, or was already deleted) — the caller's
  /// work, if completed, stands thanks to task idempotency. Lapsed-receipt
  /// no-ops are counted in RequestMeter::stale_deletes.
  bool delete_message(const std::string& receipt_handle);

  /// Deletes a batch of receipts, billed one request per kBatchLimit
  /// receipts (SQS DeleteMessageBatch). Returns how many deletes succeeded;
  /// per-receipt failures are the same stale-receipt no-ops as
  /// delete_message.
  std::size_t delete_batch(const std::vector<std::string>& receipt_handles);

  /// Extends/shrinks the hidden period of an in-flight message. Returns
  /// false on a stale receipt.
  bool change_visibility(const std::string& receipt_handle, Seconds timeout);

  /// Approximate number of visible messages right now (like SQS's
  /// ApproximateNumberOfMessages). Not metered (monitoring convenience).
  std::size_t approximate_visible() const;

  /// Messages delivered but neither deleted nor yet timed out.
  std::size_t in_flight() const;

  /// Messages that have never been deleted (visible + in flight).
  std::size_t undeleted() const;

  RequestMeter meter() const;

  /// Accumulated request cost at the configured per-10k rate.
  Dollars request_cost() const;

 private:
  struct Entry {
    std::uint64_t id_num = 0;  // delivered as "m-<id_num>"
    std::shared_ptr<const std::string> body;  // immutable, shared with deliveries
    std::uint64_t body_hash = 0;              // fnv1a64 of *body at send time
    Seconds visible_at = 0.0;  // message is deliverable when now >= visible_at
    std::uint64_t current_receipt_serial = 0;  // 0 = never delivered
    int receive_count = 0;
    /// Position in the shard's ready/exhausted list, -1 while hidden/free.
    std::int32_t ready_pos = -1;
    /// Matches the live heap record, if any; bumped on every scheduling
    /// change so superseded heap records are recognized and skipped.
    std::uint32_t hidden_stamp = 0;
    bool deleted = true;       // free slots park as deleted
    bool in_exhausted = false; // ready_pos indexes exhausted_ready, not ready
  };

  struct HiddenRec {
    Seconds at;
    std::uint32_t slot;
    std::uint32_t stamp;
    bool operator>(const HiddenRec& o) const { return at > o.at; }
  };

  /// One lock stripe: a slab of recycled message slots plus the scheduling
  /// structures that make receive O(1) and expiry O(log n).
  struct alignas(64) Shard {
    mutable std::mutex mu;
    ppc::Rng rng{0};
    std::vector<Entry> entries;
    std::vector<std::uint32_t> free_slots;       // striped free-list (slot pool)
    std::vector<std::uint32_t> ready;            // visible, deliverable slots
    std::vector<std::uint32_t> exhausted_ready;  // visible poison slots awaiting redrive
    std::priority_queue<HiddenRec, std::vector<HiddenRec>, std::greater<HiddenRec>> hidden;
    std::size_t undeleted = 0;
  };

  struct Receipt {
    std::uint32_t shard = 0;
    std::uint32_t slot = 0;
    std::uint64_t serial = 0;
  };

  /// Internal request-level counters; snapshotted into RequestMeter.
  struct AtomicMeter {
    std::atomic<std::uint64_t> sends{0}, receives{0}, deletes{0}, visibility_changes{0},
        stale_deletes{0}, dlq_moves{0}, messages_sent{0}, messages_received{0},
        messages_deleted{0};
  };

  /// Appends/recycles a message slot in `s`; caller holds s.mu. Returns the
  /// message id.
  std::string enqueue_locked(Shard& s, std::string body);

  /// Moves due hidden slots into the ready (or exhausted) list. Caller
  /// holds s.mu.
  void expire_locked(Shard& s, Seconds now) const;

  /// Parks a slot in the appropriate visible list. Caller holds s.mu.
  void make_visible_locked(Shard& s, std::uint32_t slot, Entry& e) const;

  /// Removes a slot from whichever visible list holds it. Caller holds s.mu.
  void list_remove_locked(Shard& s, Entry& e) const;

  /// Hides a slot until `until` (heap record + stamp bump). Caller holds s.mu.
  void hide_locked(Shard& s, std::uint32_t slot, Entry& e, Seconds until) const;

  /// Marks a slot deleted and recycles it into the free-list. Caller holds
  /// s.mu.
  void free_entry_locked(Shard& s, std::uint32_t slot, Entry& e) const;

  /// Redrives every visible exhausted slot: frees them and appends their
  /// bodies to `redriven` for the caller to send to the DLQ *after*
  /// unlocking (the DLQ has its own mutex; sending under ours would make
  /// chained queues a lock-order hazard). Caller holds s.mu.
  void drain_exhausted_locked(Shard& s,
                              std::vector<std::shared_ptr<const std::string>>& redriven);

  /// Shared core of receive/receive_batch: one billed request delivering up
  /// to `max` messages into `out` (caller-provided array of >= max).
  std::size_t receive_core(std::size_t max, Seconds visibility_timeout, Message* out);

  /// Lookup + stale checks + free, minus request billing / hook / span —
  /// shared by single and batch deletes.
  bool delete_entry(const std::string& receipt_handle);

  /// delete_message minus the tracing bracket.
  bool delete_message_impl(const std::string& receipt_handle);

  static std::string make_receipt(std::uint32_t shard, std::uint32_t slot,
                                  std::uint64_t serial);
  static std::optional<Receipt> parse_receipt(const std::string& receipt);

  const std::string name_;
  std::shared_ptr<const ppc::Clock> clock_;
  QueueConfig config_;
  std::atomic<ppc::FaultHook*> hook_{nullptr};
  std::atomic<ppc::TraceHook*> tracer_{nullptr};

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> next_msg_{1};
  std::atomic<std::uint64_t> next_receipt_serial_{1};
  std::atomic<std::uint64_t> next_send_shard_{0};
  std::atomic<std::uint64_t> next_sweep_shard_{0};
  mutable AtomicMeter meter_;

  mutable std::mutex meta_mu_;         // guards dlq_; set once
  std::shared_ptr<MessageQueue> dlq_;
  std::atomic<int> max_receive_count_{0};  // 0 = no redrive
};

}  // namespace ppc::cloudq
