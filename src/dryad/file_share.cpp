#include "dryad/file_share.h"

#include "common/error.h"

namespace ppc::dryad {

FileShare::FileShare(int num_nodes, FileShareConfig config)
    : num_nodes_(num_nodes), config_(config), shares_(static_cast<std::size_t>(num_nodes)) {
  PPC_REQUIRE(num_nodes >= 1, "FileShare needs at least one node");
}

void FileShare::check_node(NodeId node) const {
  PPC_REQUIRE(node >= 0 && node < num_nodes_, "node id out of range");
}

void FileShare::write(NodeId owner, const std::string& name, std::string data) {
  check_node(owner);
  PPC_REQUIRE(!name.empty(), "file name must be non-empty");
  std::lock_guard lock(mu_);
  ++stats_.writes;
  shares_[static_cast<std::size_t>(owner)][name] = std::move(data);
}

std::optional<std::string> FileShare::read(NodeId owner, const std::string& name, NodeId reader) {
  check_node(owner);
  check_node(reader);
  std::lock_guard lock(mu_);
  const auto& share = shares_[static_cast<std::size_t>(owner)];
  const auto it = share.find(name);
  if (it == share.end()) return std::nullopt;
  if (owner == reader) {
    ++stats_.local_reads;
  } else {
    ++stats_.remote_reads;
  }
  return it->second;
}

bool FileShare::exists(NodeId owner, const std::string& name) const {
  check_node(owner);
  std::lock_guard lock(mu_);
  return shares_[static_cast<std::size_t>(owner)].contains(name);
}

std::vector<std::string> FileShare::list(NodeId owner) const {
  check_node(owner);
  std::lock_guard lock(mu_);
  std::vector<std::string> names;
  for (const auto& [name, _] : shares_[static_cast<std::size_t>(owner)]) names.push_back(name);
  return names;
}

std::optional<Bytes> FileShare::file_size(NodeId owner, const std::string& name) const {
  check_node(owner);
  std::lock_guard lock(mu_);
  const auto& share = shares_[static_cast<std::size_t>(owner)];
  const auto it = share.find(name);
  if (it == share.end()) return std::nullopt;
  return static_cast<Bytes>(it->second.size());
}

FileShareStats FileShare::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

Seconds FileShare::sample_read_time(Bytes size, bool local, ppc::Rng& rng) const {
  PPC_REQUIRE(size >= 0.0, "size must be >= 0");
  if (local) {
    return rng.jittered(config_.local_read_latency, 0.2) +
           size / config_.local_read_bandwidth_per_s;
  }
  return rng.jittered(config_.remote_read_latency, 0.2) +
         size / config_.remote_read_bandwidth_per_s;
}

}  // namespace ppc::dryad
