#include "dryad/runtime.h"

#include <condition_variable>
#include <deque>
#include <future>
#include <mutex>

#include "common/clock.h"
#include "common/error.h"
#include "common/thread_pool.h"

namespace ppc::dryad {

DryadRuntime::DryadRuntime(RuntimeConfig config) : config_(std::move(config)) {
  PPC_REQUIRE(config_.num_nodes >= 1, "need at least one node");
  PPC_REQUIRE(config_.slots_per_node >= 1, "need at least one slot per node");
  PPC_REQUIRE(config_.max_attempts >= 1, "max_attempts must be >= 1");
}

RunReport DryadRuntime::run(const Dag& dag) {
  // Validates acyclicity up front (throws on a cycle).
  (void)dag.topological_order();

  const std::size_t n = dag.vertex_count();
  RunReport report;
  if (n == 0) {
    report.succeeded = true;
    return report;
  }

  std::mutex mu;
  std::condition_variable cv;
  std::vector<int> indegree(n, 0);
  std::vector<int> attempts_used(n, 0);
  std::vector<std::deque<int>> ready(static_cast<std::size_t>(config_.num_nodes));
  std::size_t finished = 0;
  bool job_failed = false;

  for (std::size_t v = 0; v < n; ++v) {
    const auto& info = dag.vertex(static_cast<int>(v));
    PPC_REQUIRE(info.node < config_.num_nodes, "vertex pinned outside the cluster");
    indegree[v] = static_cast<int>(dag.predecessors(static_cast<int>(v)).size());
    if (indegree[v] == 0) ready[static_cast<std::size_t>(info.node)].push_back(static_cast<int>(v));
  }

  ppc::SystemClock clock;
  const Seconds t0 = clock.now();

  runtime::Tracer* tracer = config_.tracer;
  auto slot_loop = [&](NodeId node, int slot) {
    const std::string track =
        "dryad.n" + std::to_string(node) + ".s" + std::to_string(slot);
    if (tracer != nullptr) runtime::Tracer::bind_thread(track);
    Seconds idle_since = -1.0;  // tracer-clock time this slot went idle
    std::unique_lock lock(mu);
    while (true) {
      auto& queue = ready[static_cast<std::size_t>(node)];
      if (queue.empty()) {
        if (finished == n || job_failed) break;
        if (tracer != nullptr && tracer->enabled() && idle_since < 0.0) {
          idle_since = tracer->now();
        }
        cv.wait(lock, [&] { return !queue.empty() || finished == n || job_failed; });
        continue;
      }
      const int v = queue.front();
      queue.pop_front();
      const int attempt = attempts_used[static_cast<std::size_t>(v)]++;

      VertexAttempt record;
      record.vertex_id = v;
      record.attempt = attempt;
      record.node = node;

      lock.unlock();
      const bool tracing = tracer != nullptr && tracer->enabled();
      const std::string& vertex_name = dag.vertex(v).name;
      runtime::Span task_span;
      if (tracing) {
        if (idle_since >= 0.0) {
          tracer->span_from(idle_since, "queue.wait", "dryad", track).close();
          idle_since = -1.0;
        }
        runtime::Tracer::bind_thread_task(vertex_name);
        task_span = tracer->span("task", "dryad", track, vertex_name);
        task_span.arg("attempt", std::to_string(attempt));
        task_span.arg("node", std::to_string(node));
      }
      try {
        if (config_.faults != nullptr &&
            config_.faults->fire(sites::kVertexAttempt,
                                 std::to_string(v) + ":" + std::to_string(attempt))) {
          throw runtime::InjectedFault("injected crash at " + sites::kVertexAttempt);
        }
        dag.vertex(v).fn();
        record.succeeded = true;
      } catch (const std::exception& e) {
        record.error = e.what();
      }
      if (tracing) {
        task_span.arg("outcome", record.succeeded ? "completed" : "failed");
        task_span.close();
        runtime::Tracer::bind_thread_task({});
      }
      lock.lock();

      report.attempts.push_back(record);
      if (record.succeeded) {
        ++finished;
        for (int s : dag.successors(v)) {
          if (--indegree[static_cast<std::size_t>(s)] == 0) {
            ready[static_cast<std::size_t>(dag.vertex(s).node)].push_back(s);
          }
        }
      } else if (attempts_used[static_cast<std::size_t>(v)] < config_.max_attempts) {
        queue.push_back(v);  // re-execution of the failed vertex, same node
      } else {
        job_failed = true;  // dependents can never run
      }
      cv.notify_all();
      if (finished == n || job_failed) {
        // Let siblings drain their queues; we are done.
        if (job_failed) break;
      }
    }
    if (tracer != nullptr) runtime::Tracer::clear_thread();
  };

  {
    // Vertex slots run on the shared pool; try_submit degrades gracefully
    // if a slot races pool shutdown (it simply contributes no slot).
    ppc::ThreadPool pool(static_cast<std::size_t>(config_.num_nodes * config_.slots_per_node));
    std::vector<std::future<void>> slots;
    slots.reserve(pool.size());
    for (int node = 0; node < config_.num_nodes; ++node) {
      for (int s = 0; s < config_.slots_per_node; ++s) {
        if (auto slot = pool.try_submit([&slot_loop, node, s] { slot_loop(node, s); })) {
          slots.push_back(std::move(*slot));
        }
      }
    }
    for (auto& slot : slots) slot.get();
  }

  report.elapsed = clock.now() - t0;
  report.succeeded = (finished == n);
  if (config_.metrics) {
    std::int64_t failed = 0;
    for (const VertexAttempt& a : report.attempts) {
      if (!a.succeeded) ++failed;
    }
    config_.metrics->counter("dryad.vertex_attempts").inc(
        static_cast<std::int64_t>(report.attempts.size()));
    config_.metrics->counter("dryad.failed_attempts").inc(failed);
    config_.metrics->counter("dryad.vertices_completed").inc(static_cast<std::int64_t>(finished));
    config_.metrics->set_gauge("dryad.elapsed_seconds", report.elapsed);
  }
  return report;
}

SelectResult dryad_select(
    DryadRuntime& runtime, FileShare& share, const PartitionedTable& table,
    const std::function<std::string(const std::string&, const std::string&)>& fn) {
  PPC_REQUIRE(fn != nullptr, "select needs a function");
  SelectResult result;
  std::mutex outputs_mu;

  Dag dag;
  runtime::Tracer* tracer = runtime.config().tracer;
  for (const Partition& p : table.partitions()) {
    dag.add_vertex("select-part-" + std::to_string(p.index), p.node, [&, part = p] {
      // span_here: the executor slot bound its track + the vertex name as
      // thread context before invoking us.
      const bool tracing = tracer != nullptr && tracer->enabled();
      for (const std::string& file : part.files) {
        // Vertex runs on the partition's node, so this read is local —
        // exactly why Dryad pre-distributes the data.
        runtime::Span fetch_span =
            tracing ? tracer->span_here("fetch.input", "task") : runtime::Span{};
        const auto contents = share.read(part.node, file, part.node);
        fetch_span.close();
        PPC_CHECK(contents.has_value(), "partition file missing from share: " + file);
        runtime::Span compute_span =
            tracing ? tracer->span_here("compute", "task") : runtime::Span{};
        compute_span.arg("file", file);
        std::string out = fn(file, *contents);
        compute_span.close();
        runtime::Span upload_span =
            tracing ? tracer->span_here("upload.output", "task") : runtime::Span{};
        share.write(part.node, file + ".out", out);
        upload_span.close();
        std::lock_guard lock(outputs_mu);
        result.outputs[file] = std::move(out);
      }
    });
  }
  result.report = runtime.run(dag);
  return result;
}

}  // namespace ppc::dryad
