// Per-node shared directories — the DryadLINQ data substrate.
//
// §2.3: "data for the computations need to be partitioned manually and
// stored beforehand in the local disks of the computational nodes via
// Windows shared directories". FileShare models exactly that: every node
// owns a directory of named files; any node may read any directory (that is
// what a Windows share is), and reads are classified local/remote for the
// timing model and the locality tests.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace ppc::dryad {

using NodeId = int;

struct FileShareConfig {
  Seconds local_read_latency = 0.002;
  Bytes local_read_bandwidth_per_s = 80.0 * 1024 * 1024;
  Seconds remote_read_latency = 0.012;  // SMB round trips are chattier
  Bytes remote_read_bandwidth_per_s = 25.0 * 1024 * 1024;
};

struct FileShareStats {
  std::uint64_t local_reads = 0;
  std::uint64_t remote_reads = 0;
  std::uint64_t writes = 0;
};

class FileShare {
 public:
  explicit FileShare(int num_nodes, FileShareConfig config = {});

  int num_nodes() const { return num_nodes_; }

  /// Writes `name` into node `owner`'s share.
  void write(NodeId owner, const std::string& name, std::string data);

  /// Reads `name` from node `owner`'s share as node `reader`; counts a
  /// local read when reader == owner, remote otherwise.
  std::optional<std::string> read(NodeId owner, const std::string& name, NodeId reader);

  bool exists(NodeId owner, const std::string& name) const;
  std::vector<std::string> list(NodeId owner) const;
  std::optional<Bytes> file_size(NodeId owner, const std::string& name) const;

  FileShareStats stats() const;

  /// Timing model for the simulation drivers.
  Seconds sample_read_time(Bytes size, bool local, ppc::Rng& rng) const;

 private:
  void check_node(NodeId node) const;

  int num_nodes_;
  FileShareConfig config_;
  mutable std::mutex mu_;
  std::vector<std::map<std::string, std::string>> shares_;
  mutable FileShareStats stats_;
};

}  // namespace ppc::dryad
