#include "dryad/partitioned_table.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "common/error.h"
#include "common/string_util.h"

namespace ppc::dryad {

PartitionedTable::PartitionedTable(int num_nodes, std::vector<Partition> partitions)
    : num_nodes_(num_nodes), partitions_(std::move(partitions)) {}

PartitionedTable PartitionedTable::round_robin(const std::vector<std::string>& files,
                                               int num_nodes) {
  PPC_REQUIRE(num_nodes >= 1, "need at least one node");
  PPC_REQUIRE(!files.empty(), "need at least one file");
  std::vector<Partition> parts(static_cast<std::size_t>(num_nodes));
  for (int n = 0; n < num_nodes; ++n) {
    parts[static_cast<std::size_t>(n)].index = n;
    parts[static_cast<std::size_t>(n)].node = n;
  }
  for (std::size_t i = 0; i < files.size(); ++i) {
    parts[i % static_cast<std::size_t>(num_nodes)].files.push_back(files[i]);
  }
  return PartitionedTable(num_nodes, std::move(parts));
}

PartitionedTable PartitionedTable::by_size(const std::vector<std::string>& files,
                                           const std::vector<Bytes>& sizes, int num_nodes) {
  PPC_REQUIRE(num_nodes >= 1, "need at least one node");
  PPC_REQUIRE(!files.empty(), "need at least one file");
  PPC_REQUIRE(files.size() == sizes.size(), "files/sizes length mismatch");

  std::vector<Partition> parts(static_cast<std::size_t>(num_nodes));
  std::vector<Bytes> load(static_cast<std::size_t>(num_nodes), 0.0);
  for (int n = 0; n < num_nodes; ++n) {
    parts[static_cast<std::size_t>(n)].index = n;
    parts[static_cast<std::size_t>(n)].node = n;
  }

  // LPT: biggest file first onto the least-loaded node.
  std::vector<std::size_t> order(files.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&sizes](std::size_t a, std::size_t b) { return sizes[a] > sizes[b]; });
  for (std::size_t i : order) {
    const auto target = static_cast<std::size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    parts[target].files.push_back(files[i]);
    load[target] += sizes[i];
  }
  return PartitionedTable(num_nodes, std::move(parts));
}

std::string PartitionedTable::metadata() const {
  // Format mirrors Dryad's partition files: a header line with the count,
  // then "index:node:file,file,...".
  std::ostringstream os;
  os << "partitions " << partitions_.size() << " nodes " << num_nodes_ << "\n";
  for (const Partition& p : partitions_) {
    os << p.index << ':' << p.node << ':';
    for (std::size_t i = 0; i < p.files.size(); ++i) {
      if (i > 0) os << ',';
      os << p.files[i];
    }
    os << '\n';
  }
  return os.str();
}

PartitionedTable PartitionedTable::from_metadata(const std::string& text) {
  const auto lines = ppc::split(text, '\n');
  PPC_REQUIRE(!lines.empty(), "empty metadata");
  int count = 0, num_nodes = 0;
  {
    std::istringstream header(lines[0]);
    std::string word;
    header >> word >> count >> word >> num_nodes;
    PPC_REQUIRE(count > 0 && num_nodes > 0, "malformed metadata header");
  }
  std::vector<Partition> parts;
  for (std::size_t li = 1; li < lines.size() && parts.size() < static_cast<std::size_t>(count);
       ++li) {
    if (ppc::trim(lines[li]).empty()) continue;
    const auto fields = ppc::split(lines[li], ':');
    PPC_REQUIRE(fields.size() == 3, "malformed metadata line: " + lines[li]);
    Partition p;
    p.index = std::stoi(fields[0]);
    p.node = std::stoi(fields[1]);
    if (!fields[2].empty()) {
      for (auto& f : ppc::split(fields[2], ',')) p.files.push_back(std::move(f));
    }
    parts.push_back(std::move(p));
  }
  PPC_REQUIRE(parts.size() == static_cast<std::size_t>(count), "metadata truncated");
  return PartitionedTable(num_nodes, std::move(parts));
}

std::size_t PartitionedTable::total_files() const {
  std::size_t n = 0;
  for (const Partition& p : partitions_) n += p.files.size();
  return n;
}

void PartitionedTable::distribute(
    FileShare& share, const std::function<std::string(const std::string&)>& file_data) const {
  PPC_REQUIRE(file_data != nullptr, "file_data source required");
  PPC_REQUIRE(share.num_nodes() >= num_nodes_, "share smaller than the partition layout");
  for (const Partition& p : partitions_) {
    for (const std::string& f : p.files) {
      share.write(p.node, f, file_data(f));
    }
  }
}

}  // namespace ppc::dryad
