// DryadLINQ-analog execution engine and the Select operator.
//
// The runtime executes a Dag with real threads: each cluster node
// contributes `slots_per_node` executor threads that only run vertices
// pinned to their node (static placement, §2.3). Failed vertices are re-run
// up to a retry budget ("re-execution of failed and slow tasks" — slow-task
// duplication is modeled in the simulation driver, where time is explicit).
//
// dryad_select() is the paper's usage: "The DryadLINQ implementation of the
// framework uses the DryadLINQ 'select' operator on the data partitions to
// perform the distributed computations" — one vertex per partition, each
// applying a side-effect-free function to every file in its partition and
// writing results back to the node's shared directory.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dryad/dag.h"
#include "dryad/file_share.h"
#include "dryad/partitioned_table.h"
#include "runtime/fault_injector.h"
#include "runtime/metrics.h"
#include "runtime/tracer.h"

namespace ppc::dryad {

/// Fault-injection site fired before each vertex attempt, keyed
/// "<vertex_id>:<attempt>". Arm error_times()/crash_* to fail attempts
/// (re-executed up to the retry budget, §2.3).
namespace sites {
inline const std::string kVertexAttempt = "dryad.vertex_attempt";
}  // namespace sites

struct RuntimeConfig {
  int num_nodes = 4;
  int slots_per_node = 1;
  int max_attempts = 4;
  /// Fault injection (borrowed, not owned). Null = never.
  runtime::FaultInjector* faults = nullptr;
  /// Engine counters land here ("dryad.*"); null = private registry.
  std::shared_ptr<runtime::MetricsRegistry> metrics;
  /// Tracer (borrowed, not owned). Null = no tracing. Each executor slot is
  /// a track "dryad.n<node>.s<slot>"; every vertex attempt gets a task
  /// envelope span (trace id = vertex name) and dryad_select adds
  /// fetch.input / compute / upload.output children per file. queue.wait
  /// spans expose the static-placement idle tails of Figs 14-15.
  runtime::Tracer* tracer = nullptr;
};

struct VertexAttempt {
  int vertex_id = 0;
  int attempt = 0;
  NodeId node = 0;
  bool succeeded = false;
  std::string error;
};

struct RunReport {
  bool succeeded = false;
  std::vector<VertexAttempt> attempts;
  Seconds elapsed = 0.0;
};

class DryadRuntime {
 public:
  explicit DryadRuntime(RuntimeConfig config);

  const RuntimeConfig& config() const { return config_; }

  /// Executes the DAG; returns when every vertex succeeded or some vertex
  /// exhausted its retries (dependents of a failed vertex never run).
  RunReport run(const Dag& dag);

 private:
  RuntimeConfig config_;
};

/// The map-style select: applies `fn(file_name, contents) -> output bytes`
/// to every file of every partition. Outputs are written to the executing
/// node's share as "<file>.out" and also returned keyed by file name.
struct SelectResult {
  RunReport report;
  std::map<std::string, std::string> outputs;
};

SelectResult dryad_select(
    DryadRuntime& runtime, FileShare& share, const PartitionedTable& table,
    const std::function<std::string(const std::string& name, const std::string& contents)>& fn);

}  // namespace ppc::dryad
