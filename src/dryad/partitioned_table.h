// Static data partitioning — the piece the paper had to build by hand.
//
// §2.3/§2.4: "significant effort had to be spent on implementing the data
// partition and the distribution programs to support DryadLINQ"; partitions
// are produced *before* the job runs, each pinned to a node, and a metadata
// file describes the layout. §4.2 attributes DryadLINQ's weaker load
// balancing on inhomogeneous data to exactly this static node-level
// partitioning, so both the even (round-robin) and size-balanced (LPT)
// policies are provided — the ablation bench compares them against Hadoop's
// dynamic global queue.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/units.h"
#include "dryad/file_share.h"

namespace ppc::dryad {

struct Partition {
  int index = 0;
  NodeId node = 0;
  std::vector<std::string> files;
};

class PartitionedTable {
 public:
  /// Round-robin by file order — the default "count-balanced" layout.
  static PartitionedTable round_robin(const std::vector<std::string>& files, int num_nodes);

  /// Longest-processing-time greedy by file size: balances bytes, the best
  /// a static partitioner can do without knowing task runtimes.
  static PartitionedTable by_size(const std::vector<std::string>& files,
                                  const std::vector<Bytes>& sizes, int num_nodes);

  /// Serializes the layout as the Dryad-style partition metadata file.
  std::string metadata() const;

  /// Parses a metadata file produced by metadata().
  static PartitionedTable from_metadata(const std::string& text);

  const std::vector<Partition>& partitions() const { return partitions_; }
  int num_nodes() const { return num_nodes_; }
  std::size_t total_files() const;

  /// Copies each partition's files from a source map into its node's share —
  /// the "distribution program" the paper wrote. `file_data(name)` supplies
  /// the bytes for each file name.
  void distribute(FileShare& share,
                  const std::function<std::string(const std::string&)>& file_data) const;

 private:
  PartitionedTable(int num_nodes, std::vector<Partition> partitions);

  int num_nodes_ = 0;
  std::vector<Partition> partitions_;
};

}  // namespace ppc::dryad
