#include "dryad/dag.h"

#include <deque>

#include "common/error.h"

namespace ppc::dryad {

int Dag::add_vertex(std::string name, NodeId node, VertexFn fn) {
  PPC_REQUIRE(fn != nullptr, "vertex function must be callable");
  PPC_REQUIRE(node >= 0, "vertex node must be >= 0");
  const int id = static_cast<int>(vertices_.size());
  vertices_.push_back({id, std::move(name), node, std::move(fn)});
  succ_.emplace_back();
  pred_.emplace_back();
  return id;
}

void Dag::check_id(int id) const {
  PPC_REQUIRE(id >= 0 && id < static_cast<int>(vertices_.size()), "vertex id out of range");
}

void Dag::add_edge(int from, int to) {
  check_id(from);
  check_id(to);
  PPC_REQUIRE(from != to, "self edge");
  succ_[static_cast<std::size_t>(from)].push_back(to);
  pred_[static_cast<std::size_t>(to)].push_back(from);
}

const VertexInfo& Dag::vertex(int id) const {
  check_id(id);
  return vertices_[static_cast<std::size_t>(id)];
}

const std::vector<int>& Dag::successors(int id) const {
  check_id(id);
  return succ_[static_cast<std::size_t>(id)];
}

const std::vector<int>& Dag::predecessors(int id) const {
  check_id(id);
  return pred_[static_cast<std::size_t>(id)];
}

std::vector<int> Dag::topological_order() const {
  std::vector<int> indegree(vertices_.size(), 0);
  for (std::size_t v = 0; v < vertices_.size(); ++v) {
    indegree[v] = static_cast<int>(pred_[v].size());
  }
  std::deque<int> ready;
  for (std::size_t v = 0; v < vertices_.size(); ++v) {
    if (indegree[v] == 0) ready.push_back(static_cast<int>(v));
  }
  std::vector<int> order;
  order.reserve(vertices_.size());
  while (!ready.empty()) {
    const int v = ready.front();
    ready.pop_front();
    order.push_back(v);
    for (int s : succ_[static_cast<std::size_t>(v)]) {
      if (--indegree[static_cast<std::size_t>(s)] == 0) ready.push_back(s);
    }
  }
  PPC_REQUIRE(order.size() == vertices_.size(), "graph contains a cycle");
  return order;
}

}  // namespace ppc::dryad
