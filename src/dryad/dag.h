// Directed-acyclic-graph job description — the Dryad programming model.
//
// §2.3: "Dryad applications are expressed as directed acyclic data-flow
// graphs (DAG), where vertices represent computations and edges represent
// communication channels". Vertices are pinned to nodes (static placement;
// the scheduler is "network topology aware" but partitions are fixed at the
// node level).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "dryad/file_share.h"

namespace ppc::dryad {

/// A vertex computation. Runs on an executor thread of its pinned node;
/// throwing fails the attempt (re-run up to the runtime's retry budget).
using VertexFn = std::function<void()>;

struct VertexInfo {
  int id = 0;
  std::string name;
  NodeId node = 0;
  VertexFn fn;
};

class Dag {
 public:
  /// Adds a vertex pinned to `node`; returns its id.
  int add_vertex(std::string name, NodeId node, VertexFn fn);

  /// Adds a dependency edge: `to` runs only after `from` succeeds.
  void add_edge(int from, int to);

  std::size_t vertex_count() const { return vertices_.size(); }
  const VertexInfo& vertex(int id) const;
  const std::vector<int>& successors(int id) const;
  const std::vector<int>& predecessors(int id) const;

  /// Topological order; throws ppc::InvalidArgument when the graph has a
  /// cycle (it would not be a DAG).
  std::vector<int> topological_order() const;

 private:
  void check_id(int id) const;

  std::vector<VertexInfo> vertices_;
  std::vector<std::vector<int>> succ_;
  std::vector<std::vector<int>> pred_;
};

}  // namespace ppc::dryad
