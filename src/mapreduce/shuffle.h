// Shuffle primitives for the full MapReduce pipeline — the YTsaurus-style
// partition → spill → fetch → external-sort chain between map and reduce.
//
// The design follows the classic Hadoop/YTsaurus data path:
//  * mappers hash-partition keyed output (`partition_of`) and buffer it per
//    reducer; when the buffer exceeds a memory budget, each partition's
//    chunk is sorted and flushed as an immutable *spill object* through the
//    storage::StorageBackend interface (so spills are metered, cacheable,
//    and fault-injectable like every other byte the system moves);
//  * a completed map attempt's spill set is published in the in-memory
//    PartitionMapRegistry — registration IS the commit point, so a mapper
//    that crashed after spilling but before registering simply never
//    existed as far as reducers are concerned (its orphan spills are
//    garbage-collected);
//  * reducers fetch their partition from every registered map output
//    (`fetch_partition`), verifying each spill against its recorded FNV-1a
//    checksum — a corrupted or lost fetch is retried and, when the retry
//    budget is exhausted, surfaces as MapOutputLost so the engine can
//    redrive the map task instead of hanging;
//  * the ExternalSorter merges everything under a memory budget: in-memory
//    sort when the partition fits, sorted-run spill + k-way merge when it
//    does not.
//
// Determinism contract: every record carries (map_id, seq) — the producing
// map task and its emission index — and the total order is
// (key, map_id, seq). Map functions are deterministic, so re-executed
// attempts emit identical sequences, which makes the merged stream (and
// therefore reduce output) byte-identical regardless of worker count, spill
// schedule, speculative twins, or mid-shuffle crash/redrive.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/units.h"
#include "runtime/fault_injector.h"
#include "runtime/metrics.h"
#include "runtime/tracer.h"
#include "storage/storage_backend.h"

namespace ppc::mapreduce {

/// One shuffled record. (map_id, seq) identifies the emission: map task
/// `map_id` produced it as its `seq`-th key/value pair. The pair breaks
/// ties between equal keys so the merged order is schedule-independent.
struct ShuffleRecord {
  std::string key;
  std::string value;
  std::uint32_t map_id = 0;
  std::uint32_t seq = 0;

  friend bool operator<(const ShuffleRecord& a, const ShuffleRecord& b) {
    if (a.key != b.key) return a.key < b.key;
    if (a.map_id != b.map_id) return a.map_id < b.map_id;
    return a.seq < b.seq;
  }
  friend bool operator==(const ShuffleRecord& a, const ShuffleRecord& b) {
    return a.key == b.key && a.map_id == b.map_id && a.seq == b.seq && a.value == b.value;
  }
};

/// Reducer → partition assignment: FNV-1a of the key modulo the reducer
/// count, the same stable hash every other keyed surface in the repo uses.
int partition_of(const std::string& key, int num_partitions);

/// Wire format for spill objects: length-prefixed frames
/// "<klen> <vlen> <map_id> <seq>\n<key><value>", concatenated. Text
/// prefixes keep spill payloads debuggable in tests and trace dumps while
/// still carrying arbitrary binary key/value bytes.
std::string encode_records(const std::vector<ShuffleRecord>& records);
std::vector<ShuffleRecord> decode_records(const std::string& data);

/// Wire format for reduce outputs (and any plain key→value payload):
/// "<klen> <vlen>\n<key><value>" frames. Decode throws ppc::Error on a
/// malformed payload (a corruption that slipped past the checksum).
std::string encode_pairs(const std::vector<std::pair<std::string, std::string>>& pairs);
std::vector<std::pair<std::string, std::string>> decode_pairs(const std::string& data);

/// Approximate in-memory footprint of one buffered record, used against the
/// spill budget. Matches the reference model in the property tests.
inline Bytes record_footprint(const ShuffleRecord& r) {
  return static_cast<Bytes>(r.key.size() + r.value.size() + 16);
}

/// Descriptor of one spill object, as published in the partition map.
struct SpillInfo {
  std::string store_key;       // object key inside the shuffle bucket
  Bytes bytes = 0.0;           // encoded payload size
  std::uint64_t checksum = 0;  // fnv1a64 of the encoded payload
  std::uint32_t records = 0;
};

/// A committed map attempt's output: per-partition spill lists, in spill
/// order. partitions.size() == num_reducers.
struct MapOutput {
  int attempt_id = 0;
  std::vector<std::vector<SpillInfo>> partitions;
};

/// Thrown by the fetch path when a map output cannot be served — missing
/// registration (mapper crashed before commit) or a spill that stays
/// corrupt/lost past the retry budget. The engine responds by redriving the
/// map task, never by hanging.
class MapOutputLost : public ppc::Error {
 public:
  explicit MapOutputLost(int map_id, const std::string& why)
      : ppc::Error("map output lost for m" + std::to_string(map_id) + ": " + why),
        map_id_(map_id) {}
  int map_id() const { return map_id_; }

 private:
  int map_id_;
};

/// The shuffle's commit ledger: map_id → committed MapOutput. In-memory and
/// engine-owned — the real Hadoop analog is the JobTracker's map-output
/// locations table. Thread-safe.
class PartitionMapRegistry {
 public:
  /// Publishes (or replaces, on redrive) a map task's output. This is the
  /// commit point for the map side of the shuffle.
  void register_output(int map_id, MapOutput output);

  /// Drops a registration (map-output loss injection / redrive prelude).
  void drop(int map_id);

  std::optional<MapOutput> lookup(int map_id) const;
  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<int, MapOutput> outputs_;
};

/// Shared observability/fault plumbing threaded through the shuffle
/// primitives. All pointers borrowed; null members disable that layer.
struct ShuffleHooks {
  runtime::FaultInjector* faults = nullptr;
  runtime::MetricsRegistry* metrics = nullptr;
  runtime::Tracer* tracer = nullptr;
  std::string track;  // tracer track of the executing slot
};

/// Fault-injection sites owned by the shuffle pipeline. Spill/fetch fire
/// per storage operation (crash kills the attempt, error fails it, delay
/// stalls it); corrupt faults are armed on the storage layer's own
/// "blobstore.shuffle.get" site instead, exercising checksum detection.
namespace sites {
/// Fired before each spill-object put, keyed "m<map_id>:s<spill>".
inline const std::string kSpill = "mapreduce.spill";
/// Fired before each spill-object get on the reduce side, keyed
/// "m<map_id>:r<partition>".
inline const std::string kFetch = "mapreduce.fetch";
/// Fired between "spills durable" and "partition map registered", keyed
/// "<task>:<attempt>" — the crash window satellite 4 is about.
inline const std::string kMapRegister = "mapreduce.map_register";
/// Fired on the executor thread before each reduce attempt, keyed
/// "<partition>:<attempt>".
inline const std::string kReduceAttempt = "mapreduce.reduce_attempt";
}  // namespace sites

/// Map-side shuffle writer: buffers emitted (key, value) pairs per
/// partition, assigns (map_id, seq), and spills sorted runs through the
/// storage backend when the buffered footprint exceeds `spill_budget`
/// (0 = never spill early; everything flushes in finish()).
///
/// Spill objects are keyed "<key_prefix>/p<partition>/s<spill_index>" so an
/// attempt's whole output can be listed (and orphan-collected) by prefix.
/// Each spill is internally sorted by the total record order — the invariant
/// the reduce-side merge relies on.
class MapOutputWriter {
 public:
  MapOutputWriter(storage::StorageBackend& store, std::string bucket, std::string key_prefix,
                  int map_id, int attempt_id, int num_partitions, Bytes spill_budget,
                  const ShuffleHooks& hooks);

  /// Buffers one map-emitted pair; may trigger a spill of all partitions.
  void emit(const std::string& key, std::string value);

  /// Flushes remaining buffers and returns the attempt's MapOutput
  /// (ready for PartitionMapRegistry::register_output).
  MapOutput finish();

  int spills() const { return spill_count_; }
  Bytes spilled_bytes() const { return spilled_bytes_; }
  std::uint32_t records() const { return seq_; }

  /// Deletes every spill object under `key_prefix` — orphan collection for
  /// superseded speculative twins and crashed attempts.
  static void discard(storage::StorageBackend& store, const std::string& bucket,
                      const std::string& key_prefix);

 private:
  void spill_buffers();

  storage::StorageBackend& store_;
  std::string bucket_;
  std::string key_prefix_;
  int map_id_;
  int attempt_id_;
  Bytes spill_budget_;
  ShuffleHooks hooks_;

  std::vector<std::vector<ShuffleRecord>> buffers_;   // per partition
  std::vector<std::vector<SpillInfo>> spill_lists_;   // per partition
  std::vector<int> partition_spills_;                 // spill index per partition
  Bytes buffered_bytes_ = 0.0;
  Bytes spilled_bytes_ = 0.0;
  int spill_count_ = 0;
  std::uint32_t seq_ = 0;
};

struct FetchOptions {
  /// get() attempts per spill before the fetch declares the output lost.
  int max_attempts = 5;
};

/// Reduce-side fetch of partition `partition` from one committed map
/// output. Verifies every spill payload against its recorded checksum;
/// retries corrupt or missing reads (read-after-write lag, injected
/// corruption) up to `opts.max_attempts` before throwing MapOutputLost.
/// Returns the spills' records concatenated in spill order (each spill
/// internally sorted).
std::vector<ShuffleRecord> fetch_partition(storage::StorageBackend& store,
                                           const std::string& bucket, const MapOutput& output,
                                           int map_id, int partition, const ShuffleHooks& hooks,
                                           const FetchOptions& opts = {});

/// External sorter for one reducer's partition. add() buffers records;
/// when the buffered footprint exceeds `memory_budget` (> 0), the buffer is
/// sorted and spilled as a run object "<key_prefix>/run<i>" through the
/// storage backend. finish() merges buffer + runs into one stream in total
/// record order and hands consecutive equal-key groups to the callback.
class ExternalSorter {
 public:
  using GroupFn =
      std::function<void(const std::string& key, const std::vector<std::string>& values)>;

  ExternalSorter(storage::StorageBackend& store, std::string bucket, std::string key_prefix,
                 Bytes memory_budget, const ShuffleHooks& hooks);

  void add(ShuffleRecord record);

  /// Merges and groups; calls `fn` once per distinct key, values in
  /// (map_id, seq) order. May be called once.
  void for_each_group(const GroupFn& fn);

  /// Removes this sorter's run objects from the store (call after
  /// for_each_group, including for superseded speculative attempts).
  void cleanup();

  int runs_spilled() const { return runs_spilled_; }
  Bytes spilled_bytes() const { return spilled_bytes_; }
  std::uint64_t records() const { return records_; }

 private:
  void spill_run();

  storage::StorageBackend& store_;
  std::string bucket_;
  std::string key_prefix_;
  Bytes memory_budget_;
  ShuffleHooks hooks_;

  std::vector<ShuffleRecord> buffer_;
  std::vector<std::string> run_keys_;
  Bytes buffered_bytes_ = 0.0;
  Bytes spilled_bytes_ = 0.0;
  int runs_spilled_ = 0;
  std::uint64_t records_ = 0;
  bool finished_ = false;
};

}  // namespace ppc::mapreduce
