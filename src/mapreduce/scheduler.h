// The Hadoop-analog task scheduler, as a pure state machine.
//
// Reproduces the scheduling behaviour §2.2 credits for Hadoop's load
// balancing and fault tolerance:
//  * one global task queue, pulled dynamically by idle slots ("a global
//    queue for the task scheduling, achieving natural load balancing");
//  * data-locality preference — an idle node takes a task whose replicas it
//    holds before stealing a remote one;
//  * speculative execution — when no pending work remains, a slot may run a
//    duplicate attempt of the slowest in-flight task ("duplicate execution
//    of slower executing tasks");
//  * failure handling — failed attempts re-queue the task up to a retry
//    budget ("handles task failures by rerunning of the failed tasks").
//
// Being a plain state machine keeps it shared between the real-thread
// engine (mapreduce::LocalJobRunner) and the discrete-event simulation
// driver (core::SimMapReduceDriver), so tests of this class cover both.
// All methods are thread-safe.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/units.h"
#include "minihdfs/mini_hdfs.h"

namespace ppc::mapreduce {

struct SchedulerConfig {
  bool speculative_execution = true;
  /// An attempt is a straggler candidate when its elapsed time exceeds
  /// `speculative_slowdown` x (median completed-attempt duration).
  double speculative_slowdown = 1.5;
  /// Speculation waits for this many completions to estimate the median.
  std::size_t min_completions_for_speculation = 5;
  /// Attempts per task before the task (and job) is declared failed.
  int max_attempts = 4;
};

struct TaskInfo {
  int task_id = 0;
  std::string path;                           // HDFS path (the map value)
  std::string name;                           // file name (the map key)
  Bytes size = 0.0;
  std::vector<minihdfs::NodeId> preferred;    // data-local nodes
};

struct Assignment {
  int task_id = 0;
  int attempt_id = 0;  // unique per task
  minihdfs::NodeId node = 0;
  bool data_local = false;
  bool speculative = false;
};

class TaskScheduler {
 public:
  struct Stats {
    int local_assignments = 0;
    int remote_assignments = 0;
    int speculative_assignments = 0;
    int failed_attempts = 0;
    /// Speculative attempts whose twin won the race.
    int wasted_attempts = 0;
    int completed_tasks = 0;
  };

  TaskScheduler(std::vector<TaskInfo> tasks, SchedulerConfig config = {});

  /// An idle slot on `node` asks for work at time `now`. Returns an
  /// assignment (fresh task, preferably data-local, else a speculative
  /// duplicate) or nullopt when nothing is runnable right now.
  std::optional<Assignment> next_task(minihdfs::NodeId node, Seconds now);

  /// Reports a finished attempt. Returns true when this attempt is the
  /// task's *first* completion (its output is the one that counts); false
  /// for late duplicates, which the engine should discard.
  bool report_completed(const Assignment& a, Seconds now);

  /// Reports a failed attempt; the task re-queues unless its retry budget
  /// is exhausted (which fails the job).
  void report_failed(const Assignment& a, Seconds now);

  /// True when a completed/failed verdict exists for every task.
  bool job_done() const;

  /// True when every task completed successfully.
  bool job_succeeded() const;

  bool task_completed(int task_id) const;

  /// True while the attempt's result would still be accepted (its task has
  /// not completed through another attempt). Engines may use this to kill
  /// obsolete speculative twins early.
  bool attempt_useful(const Assignment& a) const;

  std::size_t total_tasks() const { return tasks_.size(); }
  Stats stats() const;

 private:
  enum class TaskState { kPending, kRunning, kCompleted, kFailed };

  struct RunningAttempt {
    int attempt_id = 0;
    minihdfs::NodeId node = 0;
    Seconds start = 0.0;
    bool speculative = false;
  };

  struct TaskRuntime {
    TaskState state = TaskState::kPending;
    int attempts_started = 0;
    std::vector<RunningAttempt> live;
  };

  std::optional<std::size_t> pick_pending_locked(minihdfs::NodeId node, bool* local) const;
  std::optional<std::size_t> pick_straggler_locked(minihdfs::NodeId node, Seconds now) const;

  std::vector<TaskInfo> tasks_;
  SchedulerConfig config_;

  mutable std::mutex mu_;
  std::vector<TaskRuntime> runtime_;
  std::vector<Seconds> completed_durations_;
  Stats stats_;
};

}  // namespace ppc::mapreduce
