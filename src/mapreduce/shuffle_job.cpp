#include "mapreduce/shuffle_job.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "blobstore/blob_store.h"
#include "common/clock.h"
#include "common/error.h"
#include "common/log.h"
#include "common/thread_pool.h"

namespace ppc::mapreduce {

namespace {

std::string part_name(int partition) {
  std::string digits = std::to_string(partition);
  while (digits.size() < 5) digits.insert(digits.begin(), '0');
  return "part-" + digits;
}

}  // namespace

void ShuffleJobControl::lose_map_output(int map_id) {
  const auto out = registry_.lookup(map_id);
  registry_.drop(map_id);
  if (out) {
    for (const auto& partition : out->partitions) {
      for (const auto& spill : partition) store_.remove(bucket_, spill.store_key);
    }
  }
}

ShuffleJobRunner::ShuffleJobRunner(minihdfs::MiniHdfs& hdfs) : hdfs_(hdfs) {}

ShuffleJobResult ShuffleJobRunner::run(const std::vector<std::string>& input_paths,
                                       const MapKvFn& map_fn, const ReduceFn& reduce_fn,
                                       const ShuffleJobConfig& config) {
  PPC_REQUIRE(!input_paths.empty(), "job has no input files");
  PPC_REQUIRE(map_fn != nullptr, "job has no map function");
  PPC_REQUIRE(reduce_fn != nullptr, "job has no reduce function");
  PPC_REQUIRE(config.num_nodes >= 1 && config.num_nodes <= hdfs_.num_nodes(),
              "num_nodes must be within the HDFS cluster size");
  PPC_REQUIRE(config.slots_per_node >= 1, "slots_per_node must be >= 1");
  PPC_REQUIRE(config.num_reducers >= 1, "num_reducers must be >= 1");

  // Shuffle store: borrowed when the caller supplies one (its hooks are the
  // caller's business), otherwise a private zero-latency BlobStore with the
  // job's fault/trace hooks installed so "blobstore.shuffle.*" sites fire.
  std::unique_ptr<blobstore::BlobStore> owned_store;
  storage::StorageBackend* store = config.spill_store;
  if (store == nullptr) {
    owned_store = std::make_unique<blobstore::BlobStore>(std::make_shared<ppc::SystemClock>());
    if (config.faults != nullptr) owned_store->set_fault_hook(config.faults);
    if (config.tracer != nullptr) owned_store->set_tracer(config.tracer);
    store = owned_store.get();
  }
  const std::string& bucket = config.shuffle_bucket;
  if (!store->bucket_exists(bucket)) store->create_bucket(bucket);
  const std::string job_prefix = "shuffle/" + config.job_name;
  const Dollars store_cost0 = store->transfer_and_request_cost();

  const auto splits = FilePathInputFormat::splits(hdfs_, input_paths);
  std::vector<TaskInfo> map_tasks;
  map_tasks.reserve(splits.size());
  for (std::size_t i = 0; i < splits.size(); ++i) {
    TaskInfo t;
    t.task_id = static_cast<int>(i);
    t.path = splits[i].record.path;
    t.name = splits[i].record.name;
    t.size = splits[i].size;
    t.preferred = splits[i].locations;
    map_tasks.push_back(std::move(t));
  }
  const int num_maps = static_cast<int>(map_tasks.size());

  auto metrics = config.metrics ? config.metrics
                                : std::make_shared<runtime::MetricsRegistry>();
  const std::int64_t corrupt0 = metrics->counter_value("mapreduce.shuffle.corrupt_fetches");
  runtime::Tracer* tracer = config.tracer;
  ppc::SystemClock clock;

  PartitionMapRegistry registry;
  ShuffleJobResult result;
  std::mutex result_mu;

  // ---------------------------------------------------------------- map ---
  TaskScheduler map_scheduler(std::move(map_tasks), config.scheduler);

  auto run_map_attempt = [&](int task_id, int attempt_id, minihdfs::NodeId node,
                             const std::string& track, bool tracing) {
    const std::string& path = input_paths[static_cast<std::size_t>(task_id)];
    runtime::Span fetch_span =
        tracing ? tracer->span("fetch.input", "task", track) : runtime::Span{};
    const auto contents = hdfs_.read_from(path, node);
    fetch_span.close();
    PPC_CHECK(contents.has_value(), "input vanished from HDFS: " + path);
    FileRecord rec;
    rec.name = FilePathInputFormat::base_name(path);
    rec.path = path;
    ShuffleHooks hooks;
    hooks.faults = config.faults;
    hooks.metrics = metrics.get();
    hooks.tracer = tracer;
    hooks.track = track;
    const std::string attempt_prefix =
        job_prefix + "/m" + std::to_string(task_id) + ".a" + std::to_string(attempt_id);
    MapOutputWriter writer(*store, bucket, attempt_prefix, task_id, attempt_id,
                           config.num_reducers, config.map_spill_budget, hooks);
    runtime::Span compute_span =
        tracing ? tracer->span("compute", "task", track) : runtime::Span{};
    map_fn(rec, *contents, [&writer](const std::string& key, std::string value) {
      writer.emit(key, std::move(value));
    });
    compute_span.close();
    MapOutput out = writer.finish();
    const int spills = writer.spills();
    return std::make_tuple(std::move(out), attempt_prefix, spills,
                           static_cast<Bytes>(writer.spilled_bytes()));
  };

  auto map_slot_loop = [&](minihdfs::NodeId node, int slot) {
    const std::string track = "mr.n" + std::to_string(node) + ".s" + std::to_string(slot);
    if (tracer != nullptr) runtime::Tracer::bind_thread(track);
    Seconds idle_since = -1.0;
    while (!map_scheduler.job_done()) {
      const bool tracing = tracer != nullptr && tracer->enabled();
      if (tracing && idle_since < 0.0) idle_since = tracer->now();
      const auto assignment = map_scheduler.next_task(node, clock.now());
      if (!assignment) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        continue;
      }
      AttemptRecord record;
      record.assignment = *assignment;
      record.start = clock.now();
      const std::string task_name = FilePathInputFormat::base_name(
          input_paths[static_cast<std::size_t>(assignment->task_id)]);
      runtime::Span task_span;
      if (tracing) {
        if (idle_since >= 0.0) {
          tracer->span_from(idle_since, "queue.wait", "mapreduce", track).close();
          idle_since = -1.0;
        }
        runtime::Tracer::bind_thread_task(task_name);
        task_span = tracer->span("task", "mapreduce", track, task_name);
        task_span.arg("attempt", std::to_string(assignment->attempt_id));
        task_span.arg("node", std::to_string(node));
        task_span.arg("phase", "map");
      }
      try {
        if (config.faults != nullptr &&
            config.faults->fire(sites::kMapAttempt,
                                std::to_string(assignment->task_id) + ":" +
                                    std::to_string(assignment->attempt_id))) {
          throw runtime::InjectedFault("injected crash at " + sites::kMapAttempt);
        }
        auto [out, attempt_prefix, spills, spill_bytes] = run_map_attempt(
            assignment->task_id, assignment->attempt_id, node, track, tracing);
        // The commit window: spills are durable, the registration is not.
        // A crash here is the map-output-loss shape satellite 4 covers.
        if (config.faults != nullptr &&
            config.faults->fire(sites::kMapRegister,
                                std::to_string(assignment->task_id) + ":" +
                                    std::to_string(assignment->attempt_id))) {
          throw runtime::InjectedFault("injected crash at " + sites::kMapRegister);
        }
        record.end = clock.now();
        record.succeeded = true;
        const bool first = map_scheduler.report_completed(*assignment, record.end);
        metrics->histogram("mapreduce.attempt_seconds").record(record.end - record.start);
        if (first) {
          record.output_committed = true;
          registry.register_output(assignment->task_id, std::move(out));
          metrics->counter("mapreduce.tasks_completed").inc();
          task_span.arg("outcome", "completed");
          std::lock_guard lock(result_mu);
          result.shuffle.map_spills += spills;
          result.shuffle.map_spill_bytes += spill_bytes;
          result.shuffle.map_output_bytes += spill_bytes;
        } else {
          // A twin already committed: this attempt's spills are orphans.
          MapOutputWriter::discard(*store, bucket, attempt_prefix);
          metrics->counter("mapreduce.wasted_attempts").inc();
          task_span.arg("outcome", "superseded");
        }
      } catch (const std::exception& e) {
        record.end = clock.now();
        record.error = e.what();
        map_scheduler.report_failed(*assignment, record.end);
        metrics->counter("mapreduce.failed_attempts").inc();
        task_span.arg("outcome", "failed");
        PPC_DEBUG << "map attempt failed on node " << node << ": " << e.what();
      }
      task_span.close();
      if (tracing) runtime::Tracer::bind_thread_task({});
      metrics->counter("mapreduce.attempts").inc();
      {
        std::lock_guard lock(result_mu);
        result.map_attempts.push_back(record);
      }
    }
    if (tracer != nullptr) runtime::Tracer::clear_thread();
  };

  const Seconds t0 = clock.now();
  {
    ppc::ThreadPool pool(static_cast<std::size_t>(config.num_nodes * config.slots_per_node));
    std::vector<std::future<void>> slots;
    slots.reserve(pool.size());
    for (int node = 0; node < config.num_nodes; ++node) {
      for (int s = 0; s < config.slots_per_node; ++s) {
        if (auto slot = pool.try_submit([&map_slot_loop, node, s] { map_slot_loop(node, s); })) {
          slots.push_back(std::move(*slot));
        }
      }
    }
    for (auto& slot : slots) slot.get();
  }
  result.map_stats = map_scheduler.stats();
  if (!map_scheduler.job_succeeded()) {
    result.succeeded = false;
    result.elapsed = clock.now() - t0;
    metrics->emit({"mapreduce.job_finished", {{"succeeded", "false"}, {"phase", "map"}}});
    return result;
  }

  if (config.between_phases) {
    ShuffleJobControl control(registry, *store, bucket, job_prefix);
    config.between_phases(control);
  }

  // ------------------------------------------------------------- reduce ---
  // Redrive bookkeeping: per-map generation counters let concurrent
  // reducers that both lost m's output agree on who re-executes it.
  std::mutex redrive_mu;
  std::vector<int> redrive_gen(static_cast<std::size_t>(num_maps), 0);
  std::vector<int> redrives_used(static_cast<std::size_t>(num_maps), 0);

  auto read_gen = [&](int m) {
    std::lock_guard lock(redrive_mu);
    return redrive_gen[static_cast<std::size_t>(m)];
  };

  // Synchronously re-executes map task m on the calling (reducer) thread.
  // Returns true when m's output is registered again (by us or a racing
  // redrive), false when the redrive budget is exhausted.
  auto redrive_map = [&](int m, int gen_seen, minihdfs::NodeId node, const std::string& track,
                         bool tracing) {
    std::lock_guard lock(redrive_mu);
    auto& gen = redrive_gen[static_cast<std::size_t>(m)];
    if (gen != gen_seen) return true;  // a racing reducer already redrove m
    auto& used = redrives_used[static_cast<std::size_t>(m)];
    if (used >= config.max_map_redrives) return false;
    ++used;
    ++gen;
    // Stale spills (e.g. corrupt-beyond-retries) are garbage once the
    // redrive commits; collect them so the meter doesn't drift.
    if (const auto old = registry.lookup(m)) {
      registry.drop(m);
      for (const auto& partition : old->partitions) {
        for (const auto& spill : partition) store->remove(bucket, spill.store_key);
      }
    }
    runtime::Span span;
    if (tracing) {
      span = tracer->span("map.redrive", "shuffle", track);
      span.arg("map", std::to_string(m));
    }
    // Redrive attempt ids live far above the scheduler's so spill prefixes
    // never collide with scheduled attempts.
    auto [out, prefix, spills, spill_bytes] =
        run_map_attempt(m, 10000 + gen, node, track, tracing);
    (void)prefix;
    registry.register_output(m, std::move(out));
    span.close();
    metrics->counter("mapreduce.map_redrives").inc();
    {
      std::lock_guard rlock(result_mu);
      result.shuffle.map_redrives += 1;
      result.shuffle.map_spills += spills;
      result.shuffle.map_spill_bytes += spill_bytes;
    }
    return true;
  };

  std::vector<TaskInfo> reduce_tasks;
  reduce_tasks.reserve(static_cast<std::size_t>(config.num_reducers));
  for (int r = 0; r < config.num_reducers; ++r) {
    TaskInfo t;
    t.task_id = r;
    t.name = part_name(r);
    t.path = config.output_dir + "/" + t.name;
    t.size = 0.0;
    reduce_tasks.push_back(std::move(t));
  }
  TaskScheduler reduce_scheduler(std::move(reduce_tasks), config.reduce_scheduler);

  auto reduce_slot_loop = [&](minihdfs::NodeId node, int slot) {
    const std::string track = "mr.n" + std::to_string(node) + ".s" + std::to_string(slot);
    if (tracer != nullptr) runtime::Tracer::bind_thread(track);
    Seconds idle_since = -1.0;
    while (!reduce_scheduler.job_done()) {
      const bool tracing = tracer != nullptr && tracer->enabled();
      if (tracing && idle_since < 0.0) idle_since = tracer->now();
      const auto assignment = reduce_scheduler.next_task(node, clock.now());
      if (!assignment) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        continue;
      }
      AttemptRecord record;
      record.assignment = *assignment;
      record.start = clock.now();
      const int r = assignment->task_id;
      const std::string task_name = part_name(r);
      runtime::Span task_span;
      if (tracing) {
        if (idle_since >= 0.0) {
          tracer->span_from(idle_since, "queue.wait", "mapreduce", track).close();
          idle_since = -1.0;
        }
        runtime::Tracer::bind_thread_task(task_name);
        task_span = tracer->span("task", "mapreduce", track, task_name);
        task_span.arg("attempt", std::to_string(assignment->attempt_id));
        task_span.arg("node", std::to_string(node));
        task_span.arg("phase", "reduce");
      }
      ShuffleHooks hooks;
      hooks.faults = config.faults;
      hooks.metrics = metrics.get();
      hooks.tracer = tracer;
      hooks.track = track;
      ExternalSorter sorter(*store, bucket,
                            job_prefix + "/r" + std::to_string(r) + ".a" +
                                std::to_string(assignment->attempt_id),
                            config.sort_memory_budget, hooks);
      try {
        if (config.faults != nullptr &&
            config.faults->fire(sites::kReduceAttempt,
                                std::to_string(r) + ":" +
                                    std::to_string(assignment->attempt_id))) {
          throw runtime::InjectedFault("injected crash at " + sites::kReduceAttempt);
        }
        FetchOptions fopts;
        fopts.max_attempts = config.max_fetch_attempts;
        Bytes fetched = 0.0;
        std::int64_t fetch_count = 0;
        for (int m = 0; m < num_maps; ++m) {
          const int gen_seen = read_gen(m);
          try {
            const auto out = registry.lookup(m);
            if (!out) throw MapOutputLost(m, "partition map not registered");
            auto records = fetch_partition(*store, bucket, *out, m, r, hooks, fopts);
            for (const auto& spill : out->partitions[static_cast<std::size_t>(r)]) {
              fetched += spill.bytes;
              ++fetch_count;
            }
            for (auto& rec : records) sorter.add(std::move(rec));
          } catch (const MapOutputLost& lost) {
            // The contract satellite 4 pins: redrive the map task, then
            // fail (and re-queue) this reduce attempt — never hang, never
            // drop the group.
            const bool recovered = redrive_map(lost.map_id(), gen_seen, node, track, tracing);
            if (tracing) {
              tracer->instant("shuffle.map_output_lost", "shuffle", track);
            }
            if (!recovered) {
              PPC_WARN << "map output m" << lost.map_id()
                       << " unrecoverable (redrive budget exhausted)";
            }
            throw;
          }
        }
        std::vector<std::pair<std::string, std::string>> reduced;
        {
          runtime::Span reduce_span =
              tracing ? tracer->span("shuffle.reduce", "shuffle", track, task_name)
                      : runtime::Span{};
          sorter.for_each_group([&](const std::string& key, const std::vector<std::string>& values) {
            reduced.emplace_back(key, reduce_fn(key, values));
          });
          reduce_span.close();
        }
        sorter.cleanup();
        record.end = clock.now();
        record.succeeded = true;
        const bool first = reduce_scheduler.report_completed(*assignment, record.end);
        metrics->histogram("mapreduce.reduce_attempt_seconds")
            .record(record.end - record.start);
        if (first) {
          runtime::Span upload_span =
              tracing ? tracer->span("upload.output", "task", track, task_name)
                      : runtime::Span{};
          const std::string out_path = config.output_dir + "/" + task_name;
          hdfs_.write(out_path, encode_pairs(reduced), node);
          upload_span.close();
          record.output_committed = true;
          metrics->counter("mapreduce.reduces_completed").inc();
          task_span.arg("outcome", "completed");
          std::lock_guard lock(result_mu);
          result.outputs[task_name] = out_path;
          result.shuffle.fetches += fetch_count;
          result.shuffle.fetched_bytes += fetched;
        } else {
          metrics->counter("mapreduce.wasted_attempts").inc();
          task_span.arg("outcome", "superseded");
        }
        {
          std::lock_guard lock(result_mu);
          result.shuffle.sort_runs_spilled += sorter.runs_spilled();
          result.shuffle.sort_run_bytes += sorter.spilled_bytes();
        }
      } catch (const std::exception& e) {
        sorter.cleanup();
        record.end = clock.now();
        record.error = e.what();
        reduce_scheduler.report_failed(*assignment, record.end);
        metrics->counter("mapreduce.failed_attempts").inc();
        task_span.arg("outcome", "failed");
        PPC_DEBUG << "reduce attempt failed on node " << node << ": " << e.what();
      }
      task_span.close();
      if (tracing) runtime::Tracer::bind_thread_task({});
      metrics->counter("mapreduce.reduce_attempts").inc();
      {
        std::lock_guard lock(result_mu);
        result.reduce_attempts.push_back(record);
      }
    }
    if (tracer != nullptr) runtime::Tracer::clear_thread();
  };

  {
    ppc::ThreadPool pool(static_cast<std::size_t>(config.num_nodes * config.slots_per_node));
    std::vector<std::future<void>> slots;
    slots.reserve(pool.size());
    for (int node = 0; node < config.num_nodes; ++node) {
      for (int s = 0; s < config.slots_per_node; ++s) {
        if (auto slot =
                pool.try_submit([&reduce_slot_loop, node, s] { reduce_slot_loop(node, s); })) {
          slots.push_back(std::move(*slot));
        }
      }
    }
    for (auto& slot : slots) slot.get();
  }

  result.elapsed = clock.now() - t0;
  result.succeeded = reduce_scheduler.job_succeeded();
  result.reduce_stats = reduce_scheduler.stats();
  result.shuffle.corrupt_fetches =
      metrics->counter_value("mapreduce.shuffle.corrupt_fetches") - corrupt0;
  result.shuffle.shuffle_storage_cost = store->transfer_and_request_cost() - store_cost0;
  metrics->set_gauge("mapreduce.elapsed_seconds", result.elapsed);
  metrics->set_gauge("mapreduce.shuffle.bytes",
                     static_cast<double>(result.shuffle.fetched_bytes));
  metrics->emit({"mapreduce.job_finished",
                 {{"succeeded", result.succeeded ? "true" : "false"},
                  {"maps", std::to_string(num_maps)},
                  {"reduces", std::to_string(config.num_reducers)}}});
  return result;
}

std::map<std::string, std::string> canonical_reduced_output(const ShuffleJobResult& result,
                                                            minihdfs::MiniHdfs& hdfs) {
  std::map<std::string, std::string> canonical;
  for (const auto& [name, path] : result.outputs) {
    const auto data = hdfs.read(path);
    PPC_CHECK(data.has_value(), "committed reduce output missing from HDFS: " + path);
    for (auto& [key, value] : decode_pairs(*data)) {
      canonical[key] = std::move(value);
    }
  }
  return canonical;
}

std::string encode_canonical(const std::map<std::string, std::string>& canonical) {
  std::vector<std::pair<std::string, std::string>> pairs(canonical.begin(), canonical.end());
  return encode_pairs(pairs);
}

}  // namespace ppc::mapreduce
