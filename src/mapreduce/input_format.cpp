#include "mapreduce/input_format.h"

#include "common/error.h"

namespace ppc::mapreduce {

std::vector<FileSplit> FilePathInputFormat::splits(const minihdfs::MiniHdfs& hdfs,
                                                   const std::vector<std::string>& paths) {
  std::vector<FileSplit> out;
  out.reserve(paths.size());
  for (const std::string& path : paths) {
    const auto size = hdfs.file_size(path);
    PPC_REQUIRE(size.has_value(), "input file not found in HDFS: " + path);
    FileSplit split;
    split.record.name = base_name(path);
    split.record.path = path;
    split.size = *size;
    split.locations = hdfs.data_local_nodes(path);
    out.push_back(std::move(split));
  }
  return out;
}

std::string FilePathInputFormat::base_name(const std::string& path) {
  const auto pos = path.find_last_of('/');
  return pos == std::string::npos ? path : path.substr(pos + 1);
}

}  // namespace ppc::mapreduce
