// The paper's custom Hadoop input plumbing (§2.2):
//
//   "Most of the legacy data processing applications expect a file path as
//    the input instead of the contents of the file ... We implemented a
//    custom InputFormat and a RecordReader for Hadoop to provide the file
//    name and the HDFS path of the data split respectively as the key and
//    the value for the map function, while preserving the Hadoop data
//    locality based scheduling."
//
// FilePathInputFormat therefore produces one split per file, whose record is
// (key = file name, value = HDFS path), and carries the block locations so
// the scheduler can place the map task data-locally.
#pragma once

#include <string>
#include <vector>

#include "minihdfs/mini_hdfs.h"

namespace ppc::mapreduce {

/// The (key, value) record handed to a map function: the paper's convention.
struct FileRecord {
  std::string name;  // key: bare file name
  std::string path;  // value: full HDFS path
};

/// One input split: a whole file plus its locality hints.
struct FileSplit {
  FileRecord record;
  Bytes size = 0.0;
  std::vector<minihdfs::NodeId> locations;  // nodes holding all blocks
};

class FilePathInputFormat {
 public:
  /// Builds one split per input path. Throws when a path does not exist.
  static std::vector<FileSplit> splits(const minihdfs::MiniHdfs& hdfs,
                                       const std::vector<std::string>& paths);

  /// Extracts the bare file name from an HDFS path (text after last '/').
  static std::string base_name(const std::string& path);
};

}  // namespace ppc::mapreduce
