// Real-thread execution engine for map-only jobs — the analog of running the
// paper's pleasingly-parallel framework on a live Hadoop cluster.
//
// The paper's map function "copies the input file from HDFS to the working
// directory, executes the external program as a process and finally uploads
// the result file to the HDFS" (§2.4). Here the "external program" is a C++
// callable (the Cap3/BLAST/GTM kernels in src/apps), the copy is a
// MiniHdfs::read_from (so locality is accounted), and the upload is a write
// of "output_dir/<name>" pinned to the executing node.
//
// Each simulated cluster node contributes `slots_per_node` executor threads
// that pull from the shared TaskScheduler — dynamic global-queue scheduling,
// exactly the property §4.2 credits for Hadoop's natural load balancing.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mapreduce/input_format.h"
#include "mapreduce/scheduler.h"
#include "minihdfs/mini_hdfs.h"
#include "runtime/fault_injector.h"
#include "runtime/metrics.h"
#include "runtime/tracer.h"

namespace ppc::mapreduce {

/// The user map function: consumes (name, path) + the file bytes, returns
/// the output file bytes. Throwing fails the attempt (it will be retried).
using MapFn =
    std::function<std::string(const FileRecord& record, const std::string& contents)>;

/// Fault-injection site fired on the executor thread right before each map
/// attempt, keyed "<task_id>:<attempt>". Arm error_times() to fail attempts
/// (they are retried per the scheduler config) or a crash to kill the slot's
/// current attempt.
namespace sites {
inline const std::string kMapAttempt = "mapreduce.map_attempt";
}  // namespace sites

struct JobConfig {
  int num_nodes = 4;
  int slots_per_node = 2;
  std::string output_dir = "/out";
  SchedulerConfig scheduler;
  /// Fault injection (borrowed, not owned). Null = never.
  runtime::FaultInjector* faults = nullptr;
  /// Engine counters/histograms land here ("mapreduce.*"); null = private.
  std::shared_ptr<runtime::MetricsRegistry> metrics;
  /// Tracer (borrowed, not owned). Null = no tracing. Each executor slot
  /// becomes a track "mr.n<node>.s<slot>"; every attempt gets a task
  /// envelope span (trace id = input file name) with fetch.input / compute /
  /// upload.output children plus queue.wait idle spans.
  runtime::Tracer* tracer = nullptr;
};

struct AttemptRecord {
  Assignment assignment;
  Seconds start = 0.0;
  Seconds end = 0.0;
  bool succeeded = false;
  bool output_committed = false;  // false for late speculative twins
  std::string error;
};

struct JobResult {
  bool succeeded = false;
  /// input file name -> HDFS path of the committed output.
  std::map<std::string, std::string> outputs;
  std::vector<AttemptRecord> attempts;
  TaskScheduler::Stats scheduler_stats;
  Seconds elapsed = 0.0;
};

class LocalJobRunner {
 public:
  explicit LocalJobRunner(minihdfs::MiniHdfs& hdfs);

  /// Runs the map-only job to completion. The number of executor threads is
  /// num_nodes * slots_per_node. Throws on configuration errors; task-level
  /// failures are retried per the scheduler config and reported in the
  /// result instead.
  JobResult run(const std::vector<std::string>& input_paths, const MapFn& map_fn,
                const JobConfig& config);

 private:
  minihdfs::MiniHdfs& hdfs_;
};

}  // namespace ppc::mapreduce
