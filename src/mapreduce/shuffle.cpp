#include "mapreduce/shuffle.h"

#include <algorithm>
#include <queue>
#include <sstream>

#include "common/string_util.h"

namespace ppc::mapreduce {

int partition_of(const std::string& key, int num_partitions) {
  PPC_REQUIRE(num_partitions >= 1, "num_partitions must be >= 1");
  return static_cast<int>(fnv1a64(key) % static_cast<std::uint64_t>(num_partitions));
}

std::string encode_records(const std::vector<ShuffleRecord>& records) {
  std::string out;
  std::size_t total = 0;
  for (const auto& r : records) total += r.key.size() + r.value.size() + 32;
  out.reserve(total);
  for (const auto& r : records) {
    out += std::to_string(r.key.size());
    out += ' ';
    out += std::to_string(r.value.size());
    out += ' ';
    out += std::to_string(r.map_id);
    out += ' ';
    out += std::to_string(r.seq);
    out += '\n';
    out += r.key;
    out += r.value;
  }
  return out;
}

namespace {

// Parses an unsigned decimal at `pos`, advancing it past the digits.
// Throws ppc::Error on anything that is not a digit run.
std::uint64_t parse_u64(const std::string& data, std::size_t& pos, const char* what) {
  const std::size_t start = pos;
  std::uint64_t v = 0;
  while (pos < data.size() && data[pos] >= '0' && data[pos] <= '9') {
    v = v * 10 + static_cast<std::uint64_t>(data[pos] - '0');
    ++pos;
  }
  if (pos == start) throw Error(std::string("malformed shuffle frame: bad ") + what);
  return v;
}

void expect_char(const std::string& data, std::size_t& pos, char c) {
  if (pos >= data.size() || data[pos] != c) {
    throw Error("malformed shuffle frame: missing separator");
  }
  ++pos;
}

}  // namespace

std::vector<ShuffleRecord> decode_records(const std::string& data) {
  std::vector<ShuffleRecord> records;
  std::size_t pos = 0;
  while (pos < data.size()) {
    ShuffleRecord r;
    const std::uint64_t klen = parse_u64(data, pos, "key length");
    expect_char(data, pos, ' ');
    const std::uint64_t vlen = parse_u64(data, pos, "value length");
    expect_char(data, pos, ' ');
    r.map_id = static_cast<std::uint32_t>(parse_u64(data, pos, "map id"));
    expect_char(data, pos, ' ');
    r.seq = static_cast<std::uint32_t>(parse_u64(data, pos, "seq"));
    expect_char(data, pos, '\n');
    if (pos + klen + vlen > data.size()) {
      throw Error("malformed shuffle frame: truncated payload");
    }
    r.key = data.substr(pos, klen);
    pos += klen;
    r.value = data.substr(pos, vlen);
    pos += vlen;
    records.push_back(std::move(r));
  }
  return records;
}

std::string encode_pairs(const std::vector<std::pair<std::string, std::string>>& pairs) {
  std::string out;
  for (const auto& [k, v] : pairs) {
    out += std::to_string(k.size());
    out += ' ';
    out += std::to_string(v.size());
    out += '\n';
    out += k;
    out += v;
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> decode_pairs(const std::string& data) {
  std::vector<std::pair<std::string, std::string>> pairs;
  std::size_t pos = 0;
  while (pos < data.size()) {
    const std::uint64_t klen = parse_u64(data, pos, "key length");
    expect_char(data, pos, ' ');
    const std::uint64_t vlen = parse_u64(data, pos, "value length");
    expect_char(data, pos, '\n');
    if (pos + klen + vlen > data.size()) {
      throw Error("malformed pair frame: truncated payload");
    }
    std::string k = data.substr(pos, klen);
    pos += klen;
    std::string v = data.substr(pos, vlen);
    pos += vlen;
    pairs.emplace_back(std::move(k), std::move(v));
  }
  return pairs;
}

// ---------------------------------------------------------------------------
// PartitionMapRegistry

void PartitionMapRegistry::register_output(int map_id, MapOutput output) {
  std::lock_guard lock(mu_);
  outputs_[map_id] = std::move(output);
}

void PartitionMapRegistry::drop(int map_id) {
  std::lock_guard lock(mu_);
  outputs_.erase(map_id);
}

std::optional<MapOutput> PartitionMapRegistry::lookup(int map_id) const {
  std::lock_guard lock(mu_);
  const auto it = outputs_.find(map_id);
  if (it == outputs_.end()) return std::nullopt;
  return it->second;
}

std::size_t PartitionMapRegistry::size() const {
  std::lock_guard lock(mu_);
  return outputs_.size();
}

// ---------------------------------------------------------------------------
// MapOutputWriter

MapOutputWriter::MapOutputWriter(storage::StorageBackend& store, std::string bucket,
                                 std::string key_prefix, int map_id, int attempt_id,
                                 int num_partitions, Bytes spill_budget,
                                 const ShuffleHooks& hooks)
    : store_(store),
      bucket_(std::move(bucket)),
      key_prefix_(std::move(key_prefix)),
      map_id_(map_id),
      attempt_id_(attempt_id),
      spill_budget_(spill_budget),
      hooks_(hooks),
      buffers_(static_cast<std::size_t>(num_partitions)),
      spill_lists_(static_cast<std::size_t>(num_partitions)),
      partition_spills_(static_cast<std::size_t>(num_partitions), 0) {
  PPC_REQUIRE(num_partitions >= 1, "shuffle needs at least one partition");
  if (!store_.bucket_exists(bucket_)) store_.create_bucket(bucket_);
}

void MapOutputWriter::emit(const std::string& key, std::string value) {
  ShuffleRecord r;
  r.key = key;
  r.value = std::move(value);
  r.map_id = static_cast<std::uint32_t>(map_id_);
  r.seq = seq_++;
  buffered_bytes_ += record_footprint(r);
  const int p = partition_of(key, static_cast<int>(buffers_.size()));
  buffers_[static_cast<std::size_t>(p)].push_back(std::move(r));
  if (spill_budget_ > 0.0 && buffered_bytes_ >= spill_budget_) spill_buffers();
}

void MapOutputWriter::spill_buffers() {
  for (std::size_t p = 0; p < buffers_.size(); ++p) {
    auto& buf = buffers_[p];
    if (buf.empty()) continue;
    std::sort(buf.begin(), buf.end());
    std::string payload = encode_records(buf);
    SpillInfo info;
    info.store_key = key_prefix_ + "/p" + std::to_string(p) + "/s" +
                     std::to_string(partition_spills_[p]++);
    info.bytes = static_cast<Bytes>(payload.size());
    info.checksum = fnv1a64(payload);
    info.records = static_cast<std::uint32_t>(buf.size());
    if (hooks_.faults != nullptr &&
        hooks_.faults->fire(sites::kSpill,
                            "m" + std::to_string(map_id_) + ":s" + std::to_string(spill_count_))) {
      throw runtime::InjectedFault("injected crash at " + sites::kSpill);
    }
    runtime::Span span;
    if (hooks_.tracer != nullptr && hooks_.tracer->enabled()) {
      span = hooks_.tracer->span("shuffle.spill", "shuffle", hooks_.track);
      span.arg("partition", std::to_string(p));
      span.arg("bytes", std::to_string(static_cast<long long>(info.bytes)));
    }
    store_.put(bucket_, info.store_key, std::move(payload));
    span.close();
    spilled_bytes_ += info.bytes;
    if (hooks_.metrics != nullptr) {
      hooks_.metrics->counter("mapreduce.shuffle.spills").inc();
      hooks_.metrics->counter("mapreduce.shuffle.spill_bytes")
          .inc(static_cast<std::int64_t>(info.bytes));
    }
    spill_lists_[p].push_back(std::move(info));
    buf.clear();
  }
  ++spill_count_;
  buffered_bytes_ = 0.0;
}

MapOutput MapOutputWriter::finish() {
  bool any = false;
  for (const auto& buf : buffers_) any = any || !buf.empty();
  if (any || spill_count_ == 0) spill_buffers();
  MapOutput out;
  out.attempt_id = attempt_id_;
  out.partitions = std::move(spill_lists_);
  spill_lists_.assign(out.partitions.size(), {});
  return out;
}

void MapOutputWriter::discard(storage::StorageBackend& store, const std::string& bucket,
                              const std::string& key_prefix) {
  if (!store.bucket_exists(bucket)) return;
  for (const auto& key : store.list(bucket, key_prefix + "/")) store.remove(bucket, key);
}

// ---------------------------------------------------------------------------
// fetch_partition

std::vector<ShuffleRecord> fetch_partition(storage::StorageBackend& store,
                                           const std::string& bucket, const MapOutput& output,
                                           int map_id, int partition, const ShuffleHooks& hooks,
                                           const FetchOptions& opts) {
  PPC_REQUIRE(partition >= 0 &&
                  partition < static_cast<int>(output.partitions.size()),
              "partition out of range for this map output");
  std::vector<ShuffleRecord> records;
  const auto& spills = output.partitions[static_cast<std::size_t>(partition)];
  for (const auto& spill : spills) {
    if (hooks.faults != nullptr &&
        hooks.faults->fire(sites::kFetch,
                           "m" + std::to_string(map_id) + ":r" + std::to_string(partition))) {
      throw runtime::InjectedFault("injected crash at " + sites::kFetch);
    }
    runtime::Span span;
    if (hooks.tracer != nullptr && hooks.tracer->enabled()) {
      span = hooks.tracer->span("shuffle.fetch", "shuffle", hooks.track);
      span.arg("map", std::to_string(map_id));
      span.arg("partition", std::to_string(partition));
      span.arg("bytes", std::to_string(static_cast<long long>(spill.bytes)));
    }
    std::shared_ptr<const std::string> data;
    bool ok = false;
    for (int attempt = 0; attempt < opts.max_attempts; ++attempt) {
      data = store.get(bucket, spill.store_key);
      if (data != nullptr && fnv1a64(*data) == spill.checksum) {
        ok = true;
        break;
      }
      if (data != nullptr && hooks.metrics != nullptr) {
        // Checksum mismatch: the store delivered bytes, but not the bytes
        // the mapper wrote (injected corruption / torn read).
        hooks.metrics->counter("mapreduce.shuffle.corrupt_fetches").inc();
      }
    }
    if (!ok) {
      span.arg("outcome", "lost");
      span.close();
      throw MapOutputLost(map_id, "spill " + spill.store_key + " unreadable after " +
                                      std::to_string(opts.max_attempts) + " attempts");
    }
    span.close();
    if (hooks.metrics != nullptr) {
      hooks.metrics->counter("mapreduce.shuffle.fetches").inc();
      hooks.metrics->counter("mapreduce.shuffle.fetched_bytes")
          .inc(static_cast<std::int64_t>(spill.bytes));
    }
    auto decoded = decode_records(*data);
    records.insert(records.end(), std::make_move_iterator(decoded.begin()),
                   std::make_move_iterator(decoded.end()));
  }
  return records;
}

// ---------------------------------------------------------------------------
// ExternalSorter

ExternalSorter::ExternalSorter(storage::StorageBackend& store, std::string bucket,
                               std::string key_prefix, Bytes memory_budget,
                               const ShuffleHooks& hooks)
    : store_(store),
      bucket_(std::move(bucket)),
      key_prefix_(std::move(key_prefix)),
      memory_budget_(memory_budget),
      hooks_(hooks) {
  if (!store_.bucket_exists(bucket_)) store_.create_bucket(bucket_);
}

void ExternalSorter::add(ShuffleRecord record) {
  PPC_CHECK(!finished_, "ExternalSorter::add after for_each_group");
  buffered_bytes_ += record_footprint(record);
  buffer_.push_back(std::move(record));
  ++records_;
  if (memory_budget_ > 0.0 && buffered_bytes_ >= memory_budget_) spill_run();
}

void ExternalSorter::spill_run() {
  if (buffer_.empty()) return;
  std::sort(buffer_.begin(), buffer_.end());
  std::string payload = encode_records(buffer_);
  const std::string key = key_prefix_ + "/run" + std::to_string(runs_spilled_);
  runtime::Span span;
  if (hooks_.tracer != nullptr && hooks_.tracer->enabled()) {
    span = hooks_.tracer->span("shuffle.spill", "shuffle", hooks_.track);
    span.arg("kind", "sort_run");
    span.arg("bytes", std::to_string(payload.size()));
  }
  spilled_bytes_ += static_cast<Bytes>(payload.size());
  store_.put(bucket_, key, std::move(payload));
  span.close();
  run_keys_.push_back(key);
  ++runs_spilled_;
  if (hooks_.metrics != nullptr) hooks_.metrics->counter("mapreduce.shuffle.sort_runs").inc();
  buffer_.clear();
  buffered_bytes_ = 0.0;
}

void ExternalSorter::for_each_group(const GroupFn& fn) {
  PPC_CHECK(!finished_, "ExternalSorter::for_each_group called twice");
  finished_ = true;
  runtime::Span merge_span;
  if (hooks_.tracer != nullptr && hooks_.tracer->enabled()) {
    merge_span = hooks_.tracer->span("shuffle.merge", "shuffle", hooks_.track);
    merge_span.arg("runs", std::to_string(runs_spilled_));
    merge_span.arg("records", std::to_string(records_));
  }

  // Merge sources: the in-memory buffer (sorted) plus every spilled run.
  // Runs are modest (they fit the memory budget each), so each is decoded
  // whole and merged with a k-way heap over (source, index) cursors.
  std::sort(buffer_.begin(), buffer_.end());
  std::vector<std::vector<ShuffleRecord>> sources;
  sources.reserve(run_keys_.size() + 1);
  for (const auto& key : run_keys_) {
    const auto data = store_.get(bucket_, key);
    PPC_CHECK(data != nullptr, "sort run vanished from the shuffle store: " + key);
    sources.push_back(decode_records(*data));
  }
  sources.push_back(std::move(buffer_));
  buffer_.clear();

  struct Cursor {
    std::size_t source = 0;
    std::size_t index = 0;
  };
  auto record_at = [&sources](const Cursor& c) -> const ShuffleRecord& {
    return sources[c.source][c.index];
  };
  auto cursor_gt = [&](const Cursor& a, const Cursor& b) { return record_at(b) < record_at(a); };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(cursor_gt)> heap(cursor_gt);
  for (std::size_t s = 0; s < sources.size(); ++s) {
    if (!sources[s].empty()) heap.push({s, 0});
  }

  std::string current_key;
  std::vector<std::string> current_values;
  bool have_group = false;
  while (!heap.empty()) {
    const Cursor c = heap.top();
    heap.pop();
    ShuffleRecord& rec = sources[c.source][c.index];
    if (!have_group || rec.key != current_key) {
      if (have_group) fn(current_key, current_values);
      current_key = rec.key;
      current_values.clear();
      have_group = true;
    }
    current_values.push_back(std::move(rec.value));
    if (c.index + 1 < sources[c.source].size()) heap.push({c.source, c.index + 1});
  }
  if (have_group) fn(current_key, current_values);
  merge_span.close();
}

void ExternalSorter::cleanup() {
  for (const auto& key : run_keys_) store_.remove(bucket_, key);
  run_keys_.clear();
}

}  // namespace ppc::mapreduce
