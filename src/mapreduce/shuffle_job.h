// Real-thread execution engine for full MapReduce jobs — map, shuffle, and
// reduce on live executor threads, the analog of running Hadoop (not just a
// map-only harness) over the paper's biomedical workloads.
//
// Pipeline (see shuffle.h for the primitives and DESIGN.md §15 for the
// architecture):
//   1. Map phase — the map-only slot loop from LocalJobRunner, except the
//      user function emits (key, value) pairs into a MapOutputWriter, which
//      hash-partitions and spills through a storage::StorageBackend. The
//      attempt commits by registering its partition map *after* a
//      kMapRegister fault site — crashing in that window leaves durable but
//      invisible spills, exactly the loss mode reducers must survive.
//   2. Reduce phase — each reduce task fetches its partition from every
//      registered map output, external-sorts under a memory budget, applies
//      the user Reducer per key group, and commits "part-NNNNN" to HDFS on
//      first completion (speculative twins discard).
//   3. Map-output loss — a reducer that cannot fetch m's output (missing
//      registration or unreadable spills past the retry budget) redrives
//      map task m synchronously (bounded, metered), then retries the
//      reduce attempt via the normal scheduler re-queue. Jobs never hang on
//      lost shuffle data.
//
// Output determinism: reduce input groups arrive in (key, map_id, seq)
// order, so each part file's bytes depend only on (job inputs, map fn,
// reduce fn, partition count) — not on worker count, spill schedule,
// speculative execution, or injected faults. The chaos campaign and the
// 1000-seed property suite assert exactly this.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mapreduce/job.h"
#include "mapreduce/shuffle.h"

namespace ppc::mapreduce {

/// The user map function for shuffle jobs: consumes one input file, emits
/// keyed pairs via `emit`. Must be deterministic (emission order included) —
/// the shuffle's byte-identity contract depends on it.
using EmitFn = std::function<void(const std::string& key, std::string value)>;
using MapKvFn = std::function<void(const FileRecord& record, const std::string& contents,
                                   const EmitFn& emit)>;

/// The user reduce function: one call per distinct key, values in
/// (map_id, seq) order; returns the reduced value for the key.
using ReduceFn =
    std::function<std::string(const std::string& key, const std::vector<std::string>& values)>;

/// Test/chaos seam handed to ShuffleJobConfig::between_phases — runs after
/// the map barrier, before any reduce attempt starts.
class ShuffleJobControl {
 public:
  ShuffleJobControl(PartitionMapRegistry& registry, storage::StorageBackend& store,
                    std::string bucket, std::string job_prefix)
      : registry_(registry), store_(store), bucket_(std::move(bucket)),
        job_prefix_(std::move(job_prefix)) {}

  /// Simulates a mapper node dying after commit: drops m's registration AND
  /// deletes its spill objects. Reducers must redrive m, not hang.
  void lose_map_output(int map_id);

  /// Drops only the registration, leaving spills durable — the
  /// crashed-before-register shape from the reducer's point of view.
  void unregister_map_output(int map_id) { registry_.drop(map_id); }

  PartitionMapRegistry& registry() { return registry_; }

 private:
  PartitionMapRegistry& registry_;
  storage::StorageBackend& store_;
  std::string bucket_;
  std::string job_prefix_;
};

struct ShuffleJobConfig {
  int num_nodes = 4;
  int slots_per_node = 2;
  int num_reducers = 2;
  std::string output_dir = "/out";
  /// Job name — namespaces this job's objects in the shuffle bucket.
  std::string job_name = "job";
  /// Map-side buffer budget before a spill flushes every partition
  /// (0 = single spill at finish). Small budgets force multi-spill outputs.
  Bytes map_spill_budget = 4.0 * 1024 * 1024;
  /// Reduce-side external-sort budget (0 = pure in-memory sort).
  Bytes sort_memory_budget = 16.0 * 1024 * 1024;
  /// get() retries per spill before the fetch declares map output lost.
  int max_fetch_attempts = 5;
  /// Synchronous map redrives allowed per map task during the reduce phase.
  int max_map_redrives = 2;
  SchedulerConfig scheduler;         // map phase
  SchedulerConfig reduce_scheduler;  // reduce phase
  /// Spill/fetch go through this backend when set (borrowed); when null the
  /// runner owns a private zero-latency BlobStore bucket and installs
  /// `faults`/`tracer` on it (so blobstore.shuffle.* sites are armable).
  storage::StorageBackend* spill_store = nullptr;
  std::string shuffle_bucket = "shuffle";
  runtime::FaultInjector* faults = nullptr;
  std::shared_ptr<runtime::MetricsRegistry> metrics;
  runtime::Tracer* tracer = nullptr;
  /// Test seam: runs between the map barrier and the reduce phase.
  std::function<void(ShuffleJobControl&)> between_phases;
};

struct ShuffleStats {
  int map_spills = 0;
  Bytes map_spill_bytes = 0.0;
  std::int64_t fetches = 0;
  Bytes fetched_bytes = 0.0;
  std::int64_t corrupt_fetches = 0;
  int sort_runs_spilled = 0;
  /// Bytes written as reduce-side sorted runs (the external sort's share of
  /// spill amplification).
  Bytes sort_run_bytes = 0.0;
  int map_redrives = 0;
  /// Bytes of map output produced (pre-spill, encoded size) — the
  /// denominator of spill amplification.
  Bytes map_output_bytes = 0.0;
  /// Storage-layer cost of moving shuffle bytes (transfer + requests),
  /// from the spill store's meter when the runner owns it.
  Dollars shuffle_storage_cost = 0.0;
};

struct ShuffleJobResult {
  bool succeeded = false;
  /// part name ("part-00000") -> HDFS path of the committed reduce output.
  std::map<std::string, std::string> outputs;
  std::vector<AttemptRecord> map_attempts;
  std::vector<AttemptRecord> reduce_attempts;
  TaskScheduler::Stats map_stats;
  TaskScheduler::Stats reduce_stats;
  ShuffleStats shuffle;
  Seconds elapsed = 0.0;
};

class ShuffleJobRunner {
 public:
  explicit ShuffleJobRunner(minihdfs::MiniHdfs& hdfs);

  /// Runs map + shuffle + reduce to completion. Throws on configuration
  /// errors; attempt-level failures retry per the scheduler configs.
  ShuffleJobResult run(const std::vector<std::string>& input_paths, const MapKvFn& map_fn,
                       const ReduceFn& reduce_fn, const ShuffleJobConfig& config);

 private:
  minihdfs::MiniHdfs& hdfs_;
};

/// Decodes every committed part file of `result` from HDFS and merges the
/// (key → reduced value) frames into one map — the job's canonical output,
/// identical across any partition/worker/spill configuration. Keys are
/// unique across partitions by construction.
std::map<std::string, std::string> canonical_reduced_output(const ShuffleJobResult& result,
                                                            minihdfs::MiniHdfs& hdfs);

/// Canonical output rendered as deterministic bytes (sorted key order) —
/// the byte string the determinism and chaos suites compare.
std::string encode_canonical(const std::map<std::string, std::string>& canonical);

}  // namespace ppc::mapreduce
