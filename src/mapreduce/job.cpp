#include "mapreduce/job.h"

#include <chrono>
#include <mutex>
#include <thread>

#include "common/clock.h"
#include "common/error.h"
#include "common/log.h"
#include "common/thread_pool.h"

namespace ppc::mapreduce {

LocalJobRunner::LocalJobRunner(minihdfs::MiniHdfs& hdfs) : hdfs_(hdfs) {}

JobResult LocalJobRunner::run(const std::vector<std::string>& input_paths, const MapFn& map_fn,
                              const JobConfig& config) {
  PPC_REQUIRE(!input_paths.empty(), "job has no input files");
  PPC_REQUIRE(map_fn != nullptr, "job has no map function");
  PPC_REQUIRE(config.num_nodes >= 1 && config.num_nodes <= hdfs_.num_nodes(),
              "num_nodes must be within the HDFS cluster size");
  PPC_REQUIRE(config.slots_per_node >= 1, "slots_per_node must be >= 1");

  const auto splits = FilePathInputFormat::splits(hdfs_, input_paths);
  std::vector<TaskInfo> tasks;
  tasks.reserve(splits.size());
  for (std::size_t i = 0; i < splits.size(); ++i) {
    TaskInfo t;
    t.task_id = static_cast<int>(i);
    t.path = splits[i].record.path;
    t.name = splits[i].record.name;
    t.size = splits[i].size;
    t.preferred = splits[i].locations;
    tasks.push_back(std::move(t));
  }

  TaskScheduler scheduler(std::move(tasks), config.scheduler);
  ppc::SystemClock clock;

  auto metrics = config.metrics ? config.metrics
                                : std::make_shared<runtime::MetricsRegistry>();

  JobResult result;
  std::mutex result_mu;

  runtime::Tracer* tracer = config.tracer;
  auto slot_loop = [&](minihdfs::NodeId node, int slot) {
    const std::string track = "mr.n" + std::to_string(node) + ".s" + std::to_string(slot);
    if (tracer != nullptr) runtime::Tracer::bind_thread(track);
    Seconds idle_since = -1.0;  // tracer-clock time this slot went idle
    while (!scheduler.job_done()) {
      const bool tracing = tracer != nullptr && tracer->enabled();
      if (tracing && idle_since < 0.0) idle_since = tracer->now();
      const auto assignment = scheduler.next_task(node, clock.now());
      if (!assignment) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        continue;
      }
      AttemptRecord record;
      record.assignment = *assignment;
      record.start = clock.now();
      const std::string& path = input_paths[static_cast<std::size_t>(assignment->task_id)];
      const std::string task_name = FilePathInputFormat::base_name(path);
      runtime::Span task_span;
      if (tracing) {
        if (idle_since >= 0.0) {
          tracer->span_from(idle_since, "queue.wait", "mapreduce", track).close();
          idle_since = -1.0;
        }
        runtime::Tracer::bind_thread_task(task_name);
        task_span = tracer->span("task", "mapreduce", track, task_name);
        task_span.arg("attempt", std::to_string(assignment->attempt_id));
        task_span.arg("node", std::to_string(node));
      }
      try {
        if (config.faults != nullptr &&
            config.faults->fire(sites::kMapAttempt, std::to_string(assignment->task_id) + ":" +
                                                        std::to_string(assignment->attempt_id))) {
          throw runtime::InjectedFault("injected crash at " + sites::kMapAttempt);
        }
        runtime::Span fetch_span =
            tracing ? tracer->span("fetch.input", "task", track, task_name) : runtime::Span{};
        const auto contents = hdfs_.read_from(path, node);
        fetch_span.close();
        PPC_CHECK(contents.has_value(), "input vanished from HDFS: " + path);
        FileRecord rec;
        rec.name = task_name;
        rec.path = path;
        runtime::Span compute_span =
            tracing ? tracer->span("compute", "task", track, task_name) : runtime::Span{};
        std::string output = map_fn(rec, *contents);
        compute_span.close();
        record.end = clock.now();
        record.succeeded = true;
        const bool first = scheduler.report_completed(*assignment, record.end);
        metrics->histogram("mapreduce.attempt_seconds").record(record.end - record.start);
        if (first) {
          // Commit: write the output to HDFS pinned to this node (the map
          // task "uploads the result file to the HDFS").
          runtime::Span upload_span =
              tracing ? tracer->span("upload.output", "task", track, task_name)
                      : runtime::Span{};
          const std::string out_path = config.output_dir + "/" + rec.name;
          hdfs_.write(out_path, std::move(output), node);
          upload_span.close();
          record.output_committed = true;
          metrics->counter("mapreduce.tasks_completed").inc();
          task_span.arg("outcome", "completed");
          std::lock_guard lock(result_mu);
          result.outputs[rec.name] = out_path;
        } else {
          metrics->counter("mapreduce.wasted_attempts").inc();
          task_span.arg("outcome", "superseded");
        }
      } catch (const std::exception& e) {
        record.end = clock.now();
        record.error = e.what();
        scheduler.report_failed(*assignment, record.end);
        metrics->counter("mapreduce.failed_attempts").inc();
        task_span.arg("outcome", "failed");
        PPC_DEBUG << "attempt failed on node " << node << ": " << e.what();
      }
      task_span.close();
      if (tracing) runtime::Tracer::bind_thread_task({});
      metrics->counter("mapreduce.attempts").inc();
      {
        std::lock_guard lock(result_mu);
        result.attempts.push_back(record);
      }
    }
    if (tracer != nullptr) runtime::Tracer::clear_thread();
  };

  const Seconds t0 = clock.now();
  {
    // Executor slots run on the shared pool; try_submit degrades gracefully
    // if a slot races pool shutdown (it simply contributes no slot).
    ppc::ThreadPool pool(static_cast<std::size_t>(config.num_nodes * config.slots_per_node));
    std::vector<std::future<void>> slots;
    slots.reserve(pool.size());
    for (int node = 0; node < config.num_nodes; ++node) {
      for (int s = 0; s < config.slots_per_node; ++s) {
        if (auto slot = pool.try_submit([&slot_loop, node, s] { slot_loop(node, s); })) {
          slots.push_back(std::move(*slot));
        }
      }
    }
    for (auto& slot : slots) slot.get();
  }
  result.elapsed = clock.now() - t0;
  result.succeeded = scheduler.job_succeeded();
  result.scheduler_stats = scheduler.stats();
  metrics->set_gauge("mapreduce.elapsed_seconds", result.elapsed);
  metrics->emit({"mapreduce.job_finished",
                 {{"succeeded", result.succeeded ? "true" : "false"},
                  {"tasks", std::to_string(result.outputs.size())}}});
  return result;
}

}  // namespace ppc::mapreduce
