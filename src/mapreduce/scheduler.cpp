#include "mapreduce/scheduler.h"

#include <algorithm>

#include "common/error.h"

namespace ppc::mapreduce {

TaskScheduler::TaskScheduler(std::vector<TaskInfo> tasks, SchedulerConfig config)
    : tasks_(std::move(tasks)), config_(config), runtime_(tasks_.size()) {
  PPC_REQUIRE(!tasks_.empty(), "scheduler needs at least one task");
  PPC_REQUIRE(config_.max_attempts >= 1, "max_attempts must be >= 1");
  PPC_REQUIRE(config_.speculative_slowdown > 1.0, "speculative_slowdown must exceed 1");
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    PPC_REQUIRE(tasks_[i].task_id == static_cast<int>(i),
                "task ids must be dense and in order");
  }
}

std::optional<std::size_t> TaskScheduler::pick_pending_locked(minihdfs::NodeId node,
                                                              bool* local) const {
  // Pass 1: a pending task that is data-local to `node`.
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (runtime_[i].state != TaskState::kPending) continue;
    const auto& pref = tasks_[i].preferred;
    if (std::find(pref.begin(), pref.end(), node) != pref.end()) {
      *local = true;
      return i;
    }
  }
  // Pass 2: any pending task (rack/off-switch in real Hadoop).
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (runtime_[i].state == TaskState::kPending) {
      *local = false;
      return i;
    }
  }
  return std::nullopt;
}

std::optional<std::size_t> TaskScheduler::pick_straggler_locked(minihdfs::NodeId node,
                                                                Seconds now) const {
  if (!config_.speculative_execution) return std::nullopt;
  if (completed_durations_.size() < config_.min_completions_for_speculation) return std::nullopt;

  std::vector<Seconds> durations = completed_durations_;
  std::nth_element(durations.begin(), durations.begin() + durations.size() / 2, durations.end());
  const Seconds median = durations[durations.size() / 2];
  const Seconds threshold = config_.speculative_slowdown * median;

  std::optional<std::size_t> best;
  Seconds best_elapsed = threshold;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    const TaskRuntime& rt = runtime_[i];
    // Only tasks with exactly one live attempt get a speculative twin, and
    // never on the node already running it (that node is the suspect).
    if (rt.state != TaskState::kRunning || rt.live.size() != 1) continue;
    if (rt.live.front().node == node) continue;
    const Seconds elapsed = now - rt.live.front().start;
    if (elapsed > best_elapsed) {
      best_elapsed = elapsed;
      best = i;
    }
  }
  return best;
}

std::optional<Assignment> TaskScheduler::next_task(minihdfs::NodeId node, Seconds now) {
  std::lock_guard lock(mu_);
  bool local = false;
  bool speculative = false;
  std::optional<std::size_t> picked = pick_pending_locked(node, &local);
  if (!picked) {
    picked = pick_straggler_locked(node, now);
    if (!picked) return std::nullopt;
    speculative = true;
    local = std::find(tasks_[*picked].preferred.begin(), tasks_[*picked].preferred.end(), node) !=
            tasks_[*picked].preferred.end();
  }

  TaskRuntime& rt = runtime_[*picked];
  Assignment a;
  a.task_id = static_cast<int>(*picked);
  a.attempt_id = rt.attempts_started++;
  a.node = node;
  a.data_local = local;
  a.speculative = speculative;

  rt.state = TaskState::kRunning;
  rt.live.push_back({a.attempt_id, node, now, speculative});

  if (speculative) {
    ++stats_.speculative_assignments;
  } else if (local) {
    ++stats_.local_assignments;
  } else {
    ++stats_.remote_assignments;
  }
  return a;
}

bool TaskScheduler::report_completed(const Assignment& a, Seconds now) {
  std::lock_guard lock(mu_);
  PPC_REQUIRE(a.task_id >= 0 && a.task_id < static_cast<int>(tasks_.size()),
              "unknown task id");
  TaskRuntime& rt = runtime_[static_cast<std::size_t>(a.task_id)];
  const auto it = std::find_if(rt.live.begin(), rt.live.end(), [&a](const RunningAttempt& r) {
    return r.attempt_id == a.attempt_id;
  });
  PPC_REQUIRE(it != rt.live.end(), "completion for an attempt that is not live");
  const Seconds duration = now - it->start;
  rt.live.erase(it);

  if (rt.state == TaskState::kCompleted) {
    // A speculative twin finished after the winner — its work is wasted.
    ++stats_.wasted_attempts;
    return false;
  }
  rt.state = TaskState::kCompleted;
  ++stats_.completed_tasks;
  completed_durations_.push_back(duration);
  return true;
}

void TaskScheduler::report_failed(const Assignment& a, Seconds /*now*/) {
  std::lock_guard lock(mu_);
  PPC_REQUIRE(a.task_id >= 0 && a.task_id < static_cast<int>(tasks_.size()),
              "unknown task id");
  TaskRuntime& rt = runtime_[static_cast<std::size_t>(a.task_id)];
  const auto it = std::find_if(rt.live.begin(), rt.live.end(), [&a](const RunningAttempt& r) {
    return r.attempt_id == a.attempt_id;
  });
  PPC_REQUIRE(it != rt.live.end(), "failure for an attempt that is not live");
  rt.live.erase(it);
  ++stats_.failed_attempts;

  if (rt.state == TaskState::kCompleted) return;  // twin already won; nothing to redo
  if (!rt.live.empty()) return;                   // the other attempt is still running

  if (rt.attempts_started >= config_.max_attempts) {
    rt.state = TaskState::kFailed;
  } else {
    rt.state = TaskState::kPending;  // re-queue: "rerunning of the failed tasks"
  }
}

bool TaskScheduler::job_done() const {
  std::lock_guard lock(mu_);
  return std::all_of(runtime_.begin(), runtime_.end(), [](const TaskRuntime& rt) {
    return rt.state == TaskState::kCompleted || rt.state == TaskState::kFailed;
  });
}

bool TaskScheduler::job_succeeded() const {
  std::lock_guard lock(mu_);
  return std::all_of(runtime_.begin(), runtime_.end(), [](const TaskRuntime& rt) {
    return rt.state == TaskState::kCompleted;
  });
}

bool TaskScheduler::task_completed(int task_id) const {
  std::lock_guard lock(mu_);
  PPC_REQUIRE(task_id >= 0 && task_id < static_cast<int>(tasks_.size()), "unknown task id");
  return runtime_[static_cast<std::size_t>(task_id)].state == TaskState::kCompleted;
}

bool TaskScheduler::attempt_useful(const Assignment& a) const {
  std::lock_guard lock(mu_);
  PPC_REQUIRE(a.task_id >= 0 && a.task_id < static_cast<int>(tasks_.size()), "unknown task id");
  return runtime_[static_cast<std::size_t>(a.task_id)].state != TaskState::kCompleted;
}

TaskScheduler::Stats TaskScheduler::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

}  // namespace ppc::mapreduce
