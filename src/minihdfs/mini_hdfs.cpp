#include "minihdfs/mini_hdfs.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/string_util.h"

namespace ppc::minihdfs {

MiniHdfs::MiniHdfs(int num_nodes, HdfsConfig config, ppc::Rng rng)
    : num_nodes_(num_nodes), config_(config), rng_(rng) {
  PPC_REQUIRE(num_nodes >= 1, "MiniHdfs needs at least one datanode");
  PPC_REQUIRE(config_.block_size > 0.0, "block size must be positive");
  PPC_REQUIRE(config_.replication >= 1, "replication must be >= 1");
  config_.replication = std::min(config_.replication, num_nodes);
}

std::vector<NodeId> MiniHdfs::place_replicas_locked(NodeId preferred) {
  std::vector<NodeId> alive;
  for (NodeId n = 0; n < num_nodes_; ++n) {
    if (!dead_.contains(n)) alive.push_back(n);
  }
  PPC_CHECK(!alive.empty(), "no alive datanodes");
  std::vector<NodeId> replicas;
  const int want = std::min<int>(config_.replication, static_cast<int>(alive.size()));

  NodeId primary;
  if (preferred >= 0 && !dead_.contains(preferred)) {
    primary = preferred;
  } else {
    do {
      primary = next_primary_++ % num_nodes_;
    } while (dead_.contains(primary));
  }
  replicas.push_back(primary);

  // Remaining replicas: random distinct alive nodes (rack-awareness is out
  // of scope — the paper's clusters are single-rack for our purposes).
  std::vector<NodeId> others;
  for (NodeId n : alive) {
    if (n != primary) others.push_back(n);
  }
  const auto perm = rng_.permutation(others.size());
  for (std::size_t i = 0; replicas.size() < static_cast<std::size_t>(want) && i < perm.size(); ++i) {
    replicas.push_back(others[perm[i]]);
  }
  return replicas;
}

void MiniHdfs::write(const std::string& path, std::string data, NodeId preferred_node) {
  const auto size = static_cast<Bytes>(data.size());
  write_impl(path, std::move(data), size, preferred_node);
}

void MiniHdfs::write_logical(const std::string& path, Bytes size, NodeId preferred_node) {
  PPC_REQUIRE(size >= 0.0, "logical size must be >= 0");
  write_impl(path, std::string(), size, preferred_node);
}

void MiniHdfs::write_impl(const std::string& path, std::string data, Bytes logical_size,
                          NodeId preferred_node) {
  PPC_REQUIRE(!path.empty(), "path must be non-empty");
  PPC_REQUIRE(preferred_node < num_nodes_, "preferred node out of range");
  std::lock_guard lock(mu_);
  ++stats_.writes;
  FileEntry entry;
  const Bytes total = logical_size;
  const int num_blocks = std::max(1, static_cast<int>(std::ceil(total / config_.block_size)));
  for (int b = 0; b < num_blocks; ++b) {
    BlockInfo block;
    block.path = path;
    block.index = b;
    block.size = std::min(config_.block_size, total - static_cast<Bytes>(b) * config_.block_size);
    if (block.size < 0.0) block.size = 0.0;  // empty file: one zero-size block
    block.replicas = place_replicas_locked(preferred_node);
    entry.blocks.push_back(std::move(block));
  }
  entry.data = std::move(data);
  entry.logical_size = logical_size;
  files_[path] = std::move(entry);
}

std::optional<std::string> MiniHdfs::read(const std::string& path) {
  std::lock_guard lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return std::nullopt;
  return it->second.data;
}

std::optional<std::string> MiniHdfs::read_from(const std::string& path, NodeId reader) {
  PPC_REQUIRE(reader >= 0 && reader < num_nodes_, "reader node out of range");
  std::lock_guard lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return std::nullopt;
  bool local = true;
  for (const BlockInfo& b : it->second.blocks) {
    if (std::find(b.replicas.begin(), b.replicas.end(), reader) == b.replicas.end()) {
      local = false;
      break;
    }
  }
  if (local) {
    ++stats_.local_reads;
  } else {
    ++stats_.remote_reads;
  }
  return it->second.data;
}

bool MiniHdfs::exists(const std::string& path) const {
  std::lock_guard lock(mu_);
  return files_.contains(path);
}

bool MiniHdfs::remove(const std::string& path) {
  std::lock_guard lock(mu_);
  return files_.erase(path) > 0;
}

std::vector<std::string> MiniHdfs::list(const std::string& prefix) const {
  std::lock_guard lock(mu_);
  std::vector<std::string> out;
  for (const auto& [path, _] : files_) {
    if (prefix.empty() || ppc::starts_with(path, prefix)) out.push_back(path);
  }
  return out;
}

std::optional<Bytes> MiniHdfs::file_size(const std::string& path) const {
  std::lock_guard lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return std::nullopt;
  return it->second.logical_size;
}

std::vector<BlockInfo> MiniHdfs::blocks(const std::string& path) const {
  std::lock_guard lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return {};
  return it->second.blocks;
}

std::vector<NodeId> MiniHdfs::data_local_nodes(const std::string& path) const {
  std::lock_guard lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return {};
  // Intersection of replica sets across blocks; single-block files (the
  // paper's case) simply return the replica set.
  std::vector<NodeId> result = it->second.blocks.front().replicas;
  for (std::size_t b = 1; b < it->second.blocks.size(); ++b) {
    const auto& reps = it->second.blocks[b].replicas;
    std::erase_if(result, [&reps](NodeId n) {
      return std::find(reps.begin(), reps.end(), n) == reps.end();
    });
  }
  std::sort(result.begin(), result.end());
  return result;
}

bool MiniHdfs::is_local(const std::string& path, NodeId node) const {
  const auto nodes = data_local_nodes(path);
  return std::find(nodes.begin(), nodes.end(), node) != nodes.end();
}

void MiniHdfs::fail_node(NodeId node) {
  PPC_REQUIRE(node >= 0 && node < num_nodes_, "node out of range");
  std::lock_guard lock(mu_);
  PPC_REQUIRE(!dead_.contains(node), "node already failed");
  dead_.insert(node);
  PPC_CHECK(dead_.size() < static_cast<std::size_t>(num_nodes_), "all datanodes failed");
  for (auto& [path, entry] : files_) {
    for (BlockInfo& block : entry.blocks) {
      const auto before = block.replicas.size();
      std::erase(block.replicas, node);
      PPC_CHECK(!block.replicas.empty(), "block lost all replicas: " + path);
      if (block.replicas.size() < before) re_replicate_locked(path, block);
    }
  }
}

void MiniHdfs::re_replicate_locked(const std::string& /*path*/, BlockInfo& block) {
  // Restore the replication factor from surviving copies, if spare alive
  // nodes exist.
  std::vector<NodeId> candidates;
  for (NodeId n = 0; n < num_nodes_; ++n) {
    if (dead_.contains(n)) continue;
    if (std::find(block.replicas.begin(), block.replicas.end(), n) == block.replicas.end()) {
      candidates.push_back(n);
    }
  }
  while (block.replicas.size() < static_cast<std::size_t>(config_.replication) &&
         !candidates.empty()) {
    const std::size_t pick = rng_.index(candidates.size());
    block.replicas.push_back(candidates[pick]);
    candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(pick));
    ++stats_.re_replications;
  }
}

bool MiniHdfs::node_alive(NodeId node) const {
  std::lock_guard lock(mu_);
  return node >= 0 && node < num_nodes_ && !dead_.contains(node);
}

std::size_t MiniHdfs::alive_nodes() const {
  std::lock_guard lock(mu_);
  return static_cast<std::size_t>(num_nodes_) - dead_.size();
}

HdfsStats MiniHdfs::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

Seconds MiniHdfs::sample_read_time(Bytes size, bool local, ppc::Rng& rng) const {
  PPC_REQUIRE(size >= 0.0, "size must be >= 0");
  if (local) {
    return rng.jittered(config_.local_read_latency, 0.2) + size / config_.local_read_bandwidth_per_s;
  }
  return rng.jittered(config_.remote_read_latency, 0.2) + size / config_.remote_read_bandwidth_per_s;
}

}  // namespace ppc::minihdfs
