// Miniature HDFS: the storage substrate of the Hadoop-analog engine.
//
// Reproduces the properties §2.2 of the paper relies on:
//  * files are split into blocks replicated across datanodes ("achieves
//    reliability through replication of data across nodes");
//  * the namenode exposes block locations, which the MapReduce scheduler
//    uses for data-locality-aware task placement ("scheduling computations
//    near the data using the data locality information provided by HDFS");
//  * local reads stream from the node's own disk, remote reads cross the
//    cluster network — the timing model quantifies that difference and the
//    engine's local/remote read counters make locality observable in tests;
//  * datanode failure drops its replicas and triggers re-replication.
//
// Data is stored for real (one copy; replica sets are metadata), so the
// real-thread MapReduce engine computes on actual bytes.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace ppc::minihdfs {

using NodeId = int;

struct HdfsConfig {
  Bytes block_size = 64.0 * 1024 * 1024;
  int replication = 3;
  /// Timing model: local disk vs cluster network (Gigabit-era figures).
  Seconds local_read_latency = 0.002;
  Bytes local_read_bandwidth_per_s = 80.0 * 1024 * 1024;
  Seconds remote_read_latency = 0.010;
  Bytes remote_read_bandwidth_per_s = 30.0 * 1024 * 1024;
};

struct BlockInfo {
  std::string path;
  int index = 0;
  Bytes size = 0.0;
  std::vector<NodeId> replicas;  // alive holders, primary first
};

struct HdfsStats {
  std::uint64_t local_reads = 0;
  std::uint64_t remote_reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t re_replications = 0;
};

class MiniHdfs {
 public:
  /// A cluster of `num_nodes` datanodes (>= 1). Replication is clamped to
  /// the node count.
  MiniHdfs(int num_nodes, HdfsConfig config = {}, ppc::Rng rng = ppc::Rng(0x4DF5DEAD));

  int num_nodes() const { return num_nodes_; }
  const HdfsConfig& config() const { return config_; }

  /// Writes a file. `preferred_node` pins the primary replica (the classic
  /// HDFS "writer's node first" policy); -1 places round-robin.
  void write(const std::string& path, std::string data, NodeId preferred_node = -1);

  /// Writes a *logical* file: block placement, locality and sizes behave as
  /// for a real file of `size` bytes but no bytes are materialized. Used by
  /// the discrete-event drivers to model large inputs; read()/read_from()
  /// return an empty payload for such files.
  void write_logical(const std::string& path, Bytes size, NodeId preferred_node = -1);

  /// Whole-file read *content* (no locality accounting — use read_from).
  std::optional<std::string> read(const std::string& path);

  /// Read as performed by a task running on `reader`; bumps the local or
  /// remote counter depending on whether `reader` holds a replica of every
  /// block it streams.
  std::optional<std::string> read_from(const std::string& path, NodeId reader);

  bool exists(const std::string& path) const;
  bool remove(const std::string& path);
  std::vector<std::string> list(const std::string& prefix = "") const;
  std::optional<Bytes> file_size(const std::string& path) const;

  /// Block metadata for a file (empty when absent).
  std::vector<BlockInfo> blocks(const std::string& path) const;

  /// Nodes holding a replica of *every* block of the file — the candidate
  /// data-local executors. For the paper's workload (one small file per map
  /// task, file < block size) this is simply the file's replica set.
  std::vector<NodeId> data_local_nodes(const std::string& path) const;

  bool is_local(const std::string& path, NodeId node) const;

  /// Marks a datanode dead: its replicas vanish and under-replicated blocks
  /// are re-replicated onto surviving nodes (throws if data would be lost
  /// and no replica survives anywhere).
  void fail_node(NodeId node);

  bool node_alive(NodeId node) const;
  std::size_t alive_nodes() const;

  HdfsStats stats() const;

  // -- timing model for the simulation drivers --
  Seconds sample_read_time(Bytes size, bool local, ppc::Rng& rng) const;

 private:
  struct FileEntry {
    std::string data;
    Bytes logical_size = 0.0;  // == data.size() for real files
    std::vector<BlockInfo> blocks;
  };

  void write_impl(const std::string& path, std::string data, Bytes logical_size,
                  NodeId preferred_node);

  std::vector<NodeId> place_replicas_locked(NodeId preferred);
  void re_replicate_locked(const std::string& path, BlockInfo& block);

  int num_nodes_;
  HdfsConfig config_;
  mutable std::mutex mu_;
  ppc::Rng rng_;
  std::map<std::string, FileEntry> files_;
  std::set<NodeId> dead_;
  NodeId next_primary_ = 0;
  HdfsStats stats_;
};

}  // namespace ppc::minihdfs
