#include "billing/cost_model.h"

#include "common/error.h"
#include "common/string_util.h"

namespace ppc::billing {

CostReport::CostReport(std::string title) : title_(std::move(title)) {}

void CostReport::add(std::string label, Dollars amount) {
  PPC_REQUIRE(amount >= 0.0, "negative cost line item");
  items_.push_back({std::move(label), amount});
}

Dollars CostReport::total() const {
  Dollars t = 0.0;
  for (const auto& item : items_) t += item.amount;
  return t;
}

ppc::Table CostReport::to_table() const {
  ppc::Table table(title_);
  table.set_header({"Line item", "Cost ($)"});
  for (const auto& item : items_) {
    table.add_row({item.label, ppc::format_fixed(item.amount, 2)});
  }
  table.add_row({"Total", ppc::format_fixed(total(), 2)});
  return table;
}

Dollars OwnedClusterModel::yearly_cost() const {
  PPC_REQUIRE(depreciation_years > 0.0, "depreciation period must be positive");
  return purchase_cost / depreciation_years + yearly_maintenance;
}

Dollars OwnedClusterModel::cost_per_core_hour(double utilization) const {
  PPC_REQUIRE(utilization > 0.0 && utilization <= 1.0, "utilization must be in (0, 1]");
  const double core_hours_per_year = static_cast<double>(total_cores()) * 8760.0 * utilization;
  return yearly_cost() / core_hours_per_year;
}

Dollars OwnedClusterModel::job_cost(double core_hours, double utilization) const {
  PPC_REQUIRE(core_hours >= 0.0, "core_hours must be >= 0");
  return core_hours * cost_per_core_hour(utilization);
}

Dollars queue_request_cost(std::uint64_t requests, Dollars per_10k_requests) {
  PPC_REQUIRE(per_10k_requests >= 0.0, "per-request rate must be >= 0");
  return static_cast<double>(requests) / 10000.0 * per_10k_requests;
}

QueueBatchingSavings queue_batching_savings(std::uint64_t requests,
                                            std::uint64_t unbatched_requests,
                                            Dollars per_10k_requests) {
  QueueBatchingSavings s;
  s.requests = requests;
  s.unbatched_requests = unbatched_requests;
  s.cost = queue_request_cost(requests, per_10k_requests);
  s.unbatched_cost = queue_request_cost(unbatched_requests, per_10k_requests);
  return s;
}

Dollars storage_cost(Bytes stored, double months, Dollars per_gb_month) {
  PPC_REQUIRE(months >= 0.0, "months must be >= 0");
  return to_gigabytes(stored) * months * per_gb_month;
}

Dollars transfer_cost(double gb_in, double gb_out, Dollars in_per_gb, Dollars out_per_gb) {
  PPC_REQUIRE(gb_in >= 0.0 && gb_out >= 0.0, "transfer volumes must be >= 0");
  return gb_in * in_per_gb + gb_out * out_per_gb;
}

}  // namespace ppc::billing
