// Cost accounting for the paper's economic analysis.
//
// Covers the three cost views the evaluation uses:
//  * per-run cloud cost reports with the line items of Table 4
//    (compute / queue messages / storage / data transfer);
//  * "hour units" vs amortized compute cost (§3) — see cloud::Fleet;
//  * the owned-cluster comparison of §4.3: purchase cost depreciated over
//    3 years plus yearly maintenance, divided by utilized core-hours.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/table.h"
#include "common/units.h"

namespace ppc::billing {

struct CostLineItem {
  std::string label;
  Dollars amount = 0.0;
};

/// An itemized bill; renders in the shape of the paper's Table 4 column.
class CostReport {
 public:
  explicit CostReport(std::string title = "Cost");

  void add(std::string label, Dollars amount);
  Dollars total() const;
  const std::vector<CostLineItem>& items() const { return items_; }

  ppc::Table to_table() const;

 private:
  std::string title_;
  std::vector<CostLineItem> items_;
};

/// §4.3's internal-cluster cost model: "32 node 24 core, 48 GB memory per
/// node with Infiniband interconnects, purchase cost ~500,000$ depreciated
/// over 3 years plus yearly maintenance ~150,000$".
struct OwnedClusterModel {
  Dollars purchase_cost = 500000.0;
  double depreciation_years = 3.0;
  Dollars yearly_maintenance = 150000.0;
  int nodes = 32;
  int cores_per_node = 24;

  int total_cores() const { return nodes * cores_per_node; }

  /// Total yearly cost of ownership.
  Dollars yearly_cost() const;

  /// Cost per *utilized* core-hour at the given utilization in (0, 1].
  Dollars cost_per_core_hour(double utilization) const;

  /// Cost attributed to a job consuming `core_hours` at `utilization`.
  Dollars job_cost(double core_hours, double utilization) const;
};

/// SQS-style per-request queue pricing (2010: $0.01 per 10,000 API
/// requests). Takes a request count, not a message count — batch APIs move
/// up to 10 messages per request, which is exactly the win this prices.
Dollars queue_request_cost(std::uint64_t requests, Dollars per_10k_requests = 0.01);

/// The batching win in dollars: what the run's queue traffic cost as issued
/// versus what the same message volume would have cost one request per
/// message (RequestMeter::total() vs RequestMeter::unbatched_total()).
/// `saved()` can go slightly negative on an idle-heavy run: empty receives
/// bill as requests but move no messages, so they count in the billed total
/// only.
struct QueueBatchingSavings {
  std::uint64_t requests = 0;            // API requests actually billed
  std::uint64_t unbatched_requests = 0;  // one-message-per-request equivalent
  Dollars cost = 0.0;
  Dollars unbatched_cost = 0.0;

  Dollars saved() const { return unbatched_cost - cost; }
  /// Request-count reduction factor (1.0 = no batching benefit).
  double request_reduction() const {
    return requests > 0 ? static_cast<double>(unbatched_requests) /
                              static_cast<double>(requests)
                        : 1.0;
  }
};

QueueBatchingSavings queue_batching_savings(std::uint64_t requests,
                                            std::uint64_t unbatched_requests,
                                            Dollars per_10k_requests = 0.01);

/// Cloud storage cost for retaining `stored` bytes for `months`.
Dollars storage_cost(Bytes stored, double months, Dollars per_gb_month);

/// Data transfer cost: `gb_in`/`gb_out` at the provider's rates.
Dollars transfer_cost(double gb_in, double gb_out, Dollars in_per_gb, Dollars out_per_gb);

}  // namespace ppc::billing
