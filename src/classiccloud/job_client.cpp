#include "classiccloud/job_client.h"

#include <chrono>
#include <thread>

#include "common/clock.h"
#include "common/error.h"

namespace ppc::classiccloud {

JobClient::JobClient(storage::StorageBackend& store, cloudq::QueueService& queues,
                     std::string job_id, std::string bucket)
    : store_(store), job_id_(std::move(job_id)), bucket_(std::move(bucket)) {
  PPC_REQUIRE(!job_id_.empty(), "job id must be non-empty");
  store_.create_bucket(bucket_);
  task_queue_ = queues.create_queue(job_id_ + "-tasks");
  monitor_queue_ = queues.create_queue(job_id_ + "-monitor");
}

std::vector<TaskSpec> JobClient::submit(
    const std::vector<std::pair<std::string, std::string>>& files,
    const std::vector<std::pair<std::string, std::string>>& shared_files) {
  PPC_REQUIRE(!files.empty(), "submit needs at least one file");
  if (first_submit_time_ < 0.0) first_submit_time_ = clock_.now();
  // Job-wide reference data goes up once; every task message points at it.
  std::vector<std::string> shared_keys;
  shared_keys.reserve(shared_files.size());
  for (const auto& [name, data] : shared_files) {
    const std::string key = "shared/" + name;
    store_.put(bucket_, key, data);
    shared_keys.push_back(key);
  }
  std::vector<TaskSpec> submitted;
  std::vector<std::string> messages;
  submitted.reserve(files.size());
  messages.reserve(files.size());
  for (const auto& [name, data] : files) {
    TaskSpec task;
    task.task_id = job_id_ + "/" + name;
    task.input_key = "input/" + name;
    task.output_key = "output/" + name;
    task.shared_keys = shared_keys;
    store_.put(bucket_, task.input_key, data);
    messages.push_back(encode_task(task));
    tasks_.push_back(task);
    submitted.push_back(task);
  }
  // Batched send: one API request per 10 tasks (SQS SendMessageBatch).
  task_queue_->send_batch(messages);
  return submitted;
}

void JobClient::drain_monitor_queue() {
  // Batched drain: 10 records per receive request and 10 acks per delete
  // request, so tracking an N-task job costs ~N/5 monitor-queue requests
  // instead of 2N.
  std::vector<cloudq::Message> records;
  std::vector<std::string> receipts;
  while (true) {
    records.clear();
    receipts.clear();
    if (monitor_queue_->receive_batch(cloudq::MessageQueue::kBatchLimit, 5.0, records) == 0) {
      return;
    }
    for (const cloudq::Message& message : records) {
      const MonitorRecord record = decode_monitor(message.body());
      completions_.emplace(record.task_id, record);  // first completion wins
      receipts.push_back(message.receipt_handle);
    }
    monitor_queue_->delete_batch(receipts);
  }
}

bool JobClient::wait_for_completion(Seconds timeout, Seconds poll_interval) {
  PPC_REQUIRE(timeout > 0.0, "timeout must be positive");
  ppc::SystemClock clock;
  while (clock.now() < timeout) {
    drain_monitor_queue();
    bool all_done = true;
    for (const TaskSpec& task : tasks_) {
      if (!completions_.contains(task.task_id) || !store_.exists(bucket_, task.output_key)) {
        all_done = false;
        break;
      }
    }
    if (all_done) return true;
    std::this_thread::sleep_for(std::chrono::duration<double>(poll_interval));
  }
  return false;
}

std::shared_ptr<const std::string> JobClient::fetch_output(const TaskSpec& task) {
  return store_.get(bucket_, task.output_key);
}

JobClient::Progress JobClient::progress() {
  drain_monitor_queue();
  Progress p;
  p.total = tasks_.size();
  p.completed = completions_.size();
  if (first_submit_time_ >= 0.0) p.elapsed = clock_.now() - first_submit_time_;
  if (p.completed > 0 && p.elapsed > 0.0) {
    p.tasks_per_second = static_cast<double>(p.completed) / p.elapsed;
    const std::size_t remaining = p.total - std::min(p.total, p.completed);
    p.eta = remaining == 0 ? 0.0 : static_cast<double>(remaining) / p.tasks_per_second;
  }
  return p;
}

WorkerPool::WorkerPool(storage::StorageBackend& store,
                       std::shared_ptr<cloudq::MessageQueue> task_queue,
                       std::shared_ptr<cloudq::MessageQueue> monitor_queue, TaskExecutor executor,
                       WorkerConfig config, int num_workers, std::string id_prefix) {
  PPC_REQUIRE(num_workers >= 1, "need at least one worker");
  if (!config.metrics) config.metrics = std::make_shared<runtime::MetricsRegistry>();
  metrics_ = config.metrics;
  workers_.reserve(static_cast<std::size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.push_back(std::make_unique<Worker>(id_prefix + "-" + std::to_string(i), store,
                                                task_queue, monitor_queue, executor, config));
  }
}

void WorkerPool::start_all() {
  for (auto& w : workers_) w->start();
}

void WorkerPool::stop_all() {
  for (auto& w : workers_) w->request_stop();
}

void WorkerPool::join_all() {
  for (auto& w : workers_) w->join();
}

WorkerStats WorkerPool::aggregate_stats() const {
  WorkerStats total;
  for (const auto& w : workers_) {
    const WorkerStats s = w->stats();
    total.messages_received += s.messages_received;
    total.tasks_completed += s.tasks_completed;
    total.deletes_failed += s.deletes_failed;
    total.downloads_missed += s.downloads_missed;
    total.executions_failed += s.executions_failed;
    total.crashed = total.crashed || s.crashed;
  }
  return total;
}

}  // namespace ppc::classiccloud
