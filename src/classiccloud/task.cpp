#include "classiccloud/task.h"

#include "common/error.h"
#include "common/string_util.h"

namespace ppc::classiccloud {

std::string encode_task(const TaskSpec& task) {
  PPC_REQUIRE(!task.task_id.empty(), "task_id must be non-empty");
  PPC_REQUIRE(!task.input_key.empty() && !task.output_key.empty(),
              "task must name input and output blobs");
  return ppc::encode_kv({{"task", task.task_id}, {"in", task.input_key}, {"out", task.output_key}});
}

TaskSpec decode_task(const std::string& body) {
  const auto kv = ppc::decode_kv(body);
  PPC_REQUIRE(kv.contains("task") && kv.contains("in") && kv.contains("out"),
              "malformed task message: " + body);
  return TaskSpec{kv.at("task"), kv.at("in"), kv.at("out")};
}

std::string encode_monitor(const MonitorRecord& record) {
  return ppc::encode_kv({{"task", record.task_id},
                         {"worker", record.worker_id},
                         {"status", record.status},
                         {"secs", ppc::format_fixed(record.duration, 6)}});
}

MonitorRecord decode_monitor(const std::string& body) {
  const auto kv = ppc::decode_kv(body);
  PPC_REQUIRE(kv.contains("task") && kv.contains("worker") && kv.contains("status"),
              "malformed monitor message: " + body);
  MonitorRecord r;
  r.task_id = kv.at("task");
  r.worker_id = kv.at("worker");
  r.status = kv.at("status");
  if (kv.contains("secs")) r.duration = std::stod(kv.at("secs"));
  return r;
}

}  // namespace ppc::classiccloud
