#include "classiccloud/task.h"

#include "common/error.h"
#include "common/string_util.h"

namespace ppc::classiccloud {

std::string encode_task(const TaskSpec& task) {
  PPC_REQUIRE(!task.task_id.empty(), "task_id must be non-empty");
  PPC_REQUIRE(!task.input_key.empty() && !task.output_key.empty(),
              "task must name input and output blobs");
  std::map<std::string, std::string> kv = {
      {"task", task.task_id}, {"in", task.input_key}, {"out", task.output_key}};
  if (!task.shared_keys.empty()) {
    std::string joined;
    for (const std::string& key : task.shared_keys) {
      PPC_REQUIRE(!key.empty() && key.find(',') == std::string::npos,
                  "shared key must be non-empty and comma-free: " + key);
      if (!joined.empty()) joined += ',';
      joined += key;
    }
    kv.emplace("shared", joined);
  }
  return ppc::encode_kv(kv);
}

TaskSpec decode_task(const std::string& body) {
  const auto kv = ppc::decode_kv(body);
  PPC_REQUIRE(kv.contains("task") && kv.contains("in") && kv.contains("out"),
              "malformed task message: " + body);
  TaskSpec task{kv.at("task"), kv.at("in"), kv.at("out"), {}};
  if (kv.contains("shared")) task.shared_keys = ppc::split(kv.at("shared"), ',');
  return task;
}

std::string encode_monitor(const MonitorRecord& record) {
  return ppc::encode_kv({{"task", record.task_id},
                         {"worker", record.worker_id},
                         {"status", record.status},
                         {"secs", ppc::format_fixed(record.duration, 6)}});
}

MonitorRecord decode_monitor(const std::string& body) {
  const auto kv = ppc::decode_kv(body);
  PPC_REQUIRE(kv.contains("task") && kv.contains("worker") && kv.contains("status"),
              "malformed monitor message: " + body);
  MonitorRecord r;
  r.task_id = kv.at("task");
  r.worker_id = kv.at("worker");
  r.status = kv.at("status");
  if (kv.contains("secs")) r.duration = std::stod(kv.at("secs"));
  return r;
}

}  // namespace ppc::classiccloud
