// Client side of the Classic Cloud framework (§2.1.3, Figure 1):
// "The client populates the scheduling queue with tasks, while the
// worker-processes running in cloud instances pick tasks from the
// scheduling queue."
//
// JobClient uploads the input files to cloud storage, enqueues one task
// message per file, and tracks completion by draining the monitoring queue.
// WorkerPool manages a set of Worker threads — one per (instance x worker
// slot) in a real deployment; the paper's "interesting feature" of mixing
// cloud and local workers falls out for free, since any pool sharing the
// same queues joins the same computation.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "classiccloud/task.h"
#include "classiccloud/worker.h"
#include "cloudq/queue_service.h"
#include "common/clock.h"
#include "storage/storage_backend.h"

namespace ppc::classiccloud {

class JobClient {
 public:
  /// Creates/attaches the job's bucket and its two queues
  /// ("<job_id>-tasks", "<job_id>-monitor").
  JobClient(storage::StorageBackend& store, cloudq::QueueService& queues, std::string job_id,
            std::string bucket = "job");

  const std::string& job_id() const { return job_id_; }
  const std::string& bucket() const { return bucket_; }
  std::shared_ptr<cloudq::MessageQueue> task_queue() const { return task_queue_; }
  std::shared_ptr<cloudq::MessageQueue> monitor_queue() const { return monitor_queue_; }

  /// Uploads each (name, data) input file as "input/<name>" and enqueues a
  /// task message per file. `shared_files` (e.g. the BLAST NR database) are
  /// uploaded once as "shared/<name>" and referenced from every task
  /// message, so workers fetch them through their block cache. Returns the
  /// task specs in submission order.
  std::vector<TaskSpec> submit(
      const std::vector<std::pair<std::string, std::string>>& files,
      const std::vector<std::pair<std::string, std::string>>& shared_files = {});

  /// Blocks until every submitted task has a "done" monitor record and a
  /// visible output blob, or until `timeout` real seconds pass. Duplicate
  /// completions (at-least-once) collapse by task id.
  bool wait_for_completion(Seconds timeout, Seconds poll_interval = 0.005);

  /// Monitor records seen so far, by task id (first completion wins).
  const std::map<std::string, MonitorRecord>& completions() const { return completions_; }

  /// Live progress estimate from the monitoring queue — what the paper's
  /// monitoring queue exists for (§2.1.3). Drains pending monitor messages
  /// first; the ETA extrapolates the observed completion rate.
  struct Progress {
    std::size_t completed = 0;
    std::size_t total = 0;
    Seconds elapsed = 0.0;        // since the first submit
    double tasks_per_second = 0.0;
    Seconds eta = 0.0;            // 0 when done or not yet estimable
    double fraction() const {
      return total == 0 ? 0.0 : static_cast<double>(completed) / static_cast<double>(total);
    }
  };
  Progress progress();

  /// Fetches the output blob of a task, if visible. The payload aliases the
  /// stored blob (zero-copy); null when not yet visible.
  std::shared_ptr<const std::string> fetch_output(const TaskSpec& task);

  const std::vector<TaskSpec>& tasks() const { return tasks_; }

 private:
  void drain_monitor_queue();

  storage::StorageBackend& store_;
  std::string job_id_;
  std::string bucket_;
  std::shared_ptr<cloudq::MessageQueue> task_queue_;
  std::shared_ptr<cloudq::MessageQueue> monitor_queue_;
  std::vector<TaskSpec> tasks_;
  std::map<std::string, MonitorRecord> completions_;
  ppc::SystemClock clock_;
  Seconds first_submit_time_ = -1.0;
};

/// A fleet of workers sharing one scheduling queue — the paper's pool of
/// "worker processes" across instances. Also usable as the *local* half of
/// a hybrid cloud+local deployment (just build two pools on the same
/// queues).
class WorkerPool {
 public:
  /// All workers in the pool publish into one runtime::MetricsRegistry
  /// (config.metrics when supplied, a fresh shared one otherwise), scoped
  /// by worker id.
  WorkerPool(storage::StorageBackend& store, std::shared_ptr<cloudq::MessageQueue> task_queue,
             std::shared_ptr<cloudq::MessageQueue> monitor_queue, TaskExecutor executor,
             WorkerConfig config, int num_workers, std::string id_prefix = "worker");

  void start_all();
  void stop_all();
  void join_all();

  std::size_t size() const { return workers_.size(); }
  Worker& worker(std::size_t i) { return *workers_.at(i); }

  /// Sum of the per-worker stats.
  WorkerStats aggregate_stats() const;

  /// The registry every worker in the pool publishes to.
  runtime::MetricsRegistry& metrics() const { return *metrics_; }

 private:
  std::shared_ptr<runtime::MetricsRegistry> metrics_;
  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace ppc::classiccloud
