// Task descriptors and the message codec of the Classic Cloud framework.
//
// §2.1.3: "every message in the queue describes a single task"; "a single
// task comprises of a single input file and a single output file". The task
// message therefore carries the blob keys of its input and output plus a
// task id; the monitoring queue carries small status records. Both are
// serialized with the flat key=value codec (SQS/Azure Queue messages are
// short strings).
#pragma once

#include <string>
#include <vector>

#include "common/units.h"

namespace ppc::classiccloud {

struct TaskSpec {
  std::string task_id;
  std::string input_key;   // blob key holding the input file
  std::string output_key;  // blob key the worker must write
  /// Job-wide reference blobs every task needs besides its own input (the
  /// BLAST NR database, the GTM training matrix). Workers fetch these
  /// through their BlockCache, so N tasks on one worker pay one download.
  /// Optional: absent from the wire format when empty, so task messages of
  /// jobs without shared data are unchanged.
  std::vector<std::string> shared_keys;
};

std::string encode_task(const TaskSpec& task);
TaskSpec decode_task(const std::string& body);

/// Status record published to the monitoring queue when a worker finishes a
/// task ("Our implementation uses a monitoring message queue to monitor the
/// progress of the computation").
struct MonitorRecord {
  std::string task_id;
  std::string worker_id;
  std::string status;      // "done" | "failed"
  Seconds duration = 0.0;  // execution time on the worker
};

std::string encode_monitor(const MonitorRecord& record);
MonitorRecord decode_monitor(const std::string& body);

}  // namespace ppc::classiccloud
