// The Classic Cloud worker — the process that runs inside each EC2/Azure
// instance (§2.1.3, Figure 1).
//
// Poll loop, exactly as the paper describes:
//  1. receive a task message from the scheduling queue (visibility timeout
//     hides it from other workers);
//  2. "retrieve the input files from the cloud storage through the web
//     service interface" (with retries — the store is eventually
//     consistent);
//  3. process them with the configured executable (here: a C++ callable);
//  4. upload the result to cloud storage;
//  5. publish a status record to the monitoring queue;
//  6. "delete the task (message) in the queue only after the completion of
//     the task" — so a worker crash before this point makes the task
//     reappear for someone else, and a stale delete after a redelivery
//     simply fails (idempotent tasks make either outcome correct).
//
// Fault injection hooks let the tests crash a worker at any of these points
// and assert the at-least-once / no-lost-task properties end to end.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "blobstore/blob_store.h"
#include "classiccloud/task.h"
#include "cloudq/message_queue.h"

namespace ppc::classiccloud {

/// The "executable program": input file bytes in, output file bytes out.
/// Must be idempotent and side-effect free — the framework's fault
/// tolerance depends on it (§2.1.3). Throwing fails the attempt; the task
/// message stays in the queue and reappears after its visibility timeout.
using TaskExecutor =
    std::function<std::string(const TaskSpec& task, const std::string& input)>;

/// Where a fault-injection crash can be triggered.
enum class CrashPoint {
  kAfterReceive,   // got the message, did nothing yet
  kAfterExecute,   // computed the output, nothing uploaded
  kAfterUpload,    // output uploaded, message not deleted
};

struct WorkerConfig {
  std::string bucket = "job";
  /// Sleep between empty polls (real seconds — keep small in tests).
  Seconds poll_interval = 0.005;
  /// Visibility timeout requested on receive. Must exceed the worst-case
  /// task duration or tasks will be double-processed (the paper tunes this
  /// per application).
  Seconds visibility_timeout = 30.0;
  /// Stop after this many consecutive empty polls; <0 means run until
  /// request_stop().
  int max_idle_polls = -1;
  /// Download retries for eventually-consistent blob reads.
  int download_retries = 50;
  Seconds download_retry_interval = 0.002;
  /// Fault injection: return true to crash the worker at this point for
  /// this task. Null = never.
  std::function<bool(CrashPoint, const TaskSpec&)> crash_at;
};

struct WorkerStats {
  int messages_received = 0;
  int tasks_completed = 0;   // executed + uploaded + monitor sent
  int deletes_failed = 0;    // stale receipt: someone else re-ran the task
  int downloads_missed = 0;  // eventual-consistency retries
  int executions_failed = 0;
  bool crashed = false;
};

class Worker {
 public:
  Worker(std::string id, blobstore::BlobStore& store,
         std::shared_ptr<cloudq::MessageQueue> task_queue,
         std::shared_ptr<cloudq::MessageQueue> monitor_queue, TaskExecutor executor,
         WorkerConfig config);

  ~Worker();

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  /// Starts the poll loop on its own thread.
  void start();

  /// Asks the loop to exit after the current task.
  void request_stop();

  /// Blocks until the loop has exited.
  void join();

  bool running() const { return running_.load(); }
  const std::string& id() const { return id_; }
  WorkerStats stats() const;

 private:
  void poll_loop();
  /// Processes one received message; returns false when the worker crashed.
  bool process(const cloudq::Message& message);

  const std::string id_;
  blobstore::BlobStore& store_;
  std::shared_ptr<cloudq::MessageQueue> task_queue_;
  std::shared_ptr<cloudq::MessageQueue> monitor_queue_;
  TaskExecutor executor_;
  WorkerConfig config_;

  std::thread thread_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> running_{false};
  mutable std::mutex stats_mu_;
  WorkerStats stats_;
};

}  // namespace ppc::classiccloud
