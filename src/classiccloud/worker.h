// The Classic Cloud worker — the process that runs inside each EC2/Azure
// instance (§2.1.3, Figure 1).
//
// The poll loop itself (receive → handle → delete-after-completion, idle
// backoff, crash accounting) lives in runtime::TaskLifecycle; this adapter
// supplies the Classic Cloud task handler, exactly as the paper describes:
//
//  1. "retrieve the input files from the cloud storage through the web
//     service interface" (with the lifecycle's retry policy — the store is
//     eventually consistent);
//  2. process them with the configured executable (here: a C++ callable);
//  3. upload the result to cloud storage;
//  4. publish a status record to the monitoring queue.
//
// Fault injection goes through runtime::FaultInjector at the named sites
// below, so tests crash a worker at any step and assert the at-least-once /
// no-lost-task properties end to end. Stats are views over the lifecycle's
// MetricsRegistry — shared across a pool, scoped by worker id.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "classiccloud/task.h"
#include "cloudq/message_queue.h"
#include "runtime/task_lifecycle.h"
#include "storage/block_cache.h"
#include "storage/storage_backend.h"

namespace ppc::classiccloud {

/// The "executable program": input file bytes in, output file bytes out.
/// Must be idempotent and side-effect free — the framework's fault
/// tolerance depends on it (§2.1.3). Throwing fails the attempt; the task
/// message stays in the queue and reappears after its visibility timeout.
using TaskExecutor =
    std::function<std::string(const TaskSpec& task, const std::string& input)>;

/// Fault-injection sites fired by the worker, keyed by task id. Arm them on
/// a runtime::FaultInjector to crash a worker at the matching step.
namespace sites {
/// Got the message, did nothing yet.
inline const std::string kAfterReceive = "classiccloud.after_receive";
/// Computed the output, nothing uploaded.
inline const std::string kAfterExecute = "classiccloud.after_execute";
/// Output uploaded, message not deleted.
inline const std::string kAfterUpload = "classiccloud.after_upload";
}  // namespace sites

struct WorkerConfig {
  std::string bucket = "job";
  /// Tight polling interval and floor of the adaptive idle backoff (real
  /// seconds — keep small in tests).
  Seconds poll_interval = 0.005;
  /// Idle backoff cap; < 0 derives 8x poll_interval. See LifecycleConfig.
  Seconds poll_interval_max = -1.0;
  /// Messages fetched per receive request (1..10, SQS ReceiveMessage
  /// MaxNumberOfMessages); the batch is worked through sequentially, so
  /// visibility_timeout must cover the whole batch.
  int receive_batch = 1;
  /// Completed-task acks buffered into one DeleteMessageBatch request; 1
  /// acks each task immediately. See LifecycleConfig::delete_batch.
  int delete_batch = 1;
  /// Visibility timeout requested on receive. Must exceed the worst-case
  /// task duration or tasks will be double-processed (the paper tunes this
  /// per application).
  Seconds visibility_timeout = 30.0;
  /// Stop after this many consecutive empty polls; <0 means run until
  /// request_stop().
  int max_idle_polls = -1;
  /// Backoff schedule for eventually-consistent blob reads.
  runtime::RetryPolicy download_retry = runtime::RetryPolicy::eventual_consistency();
  /// Visibility applied to deliveries this worker failed (prompt retry);
  /// < 0 leaves the original visibility window. See LifecycleConfig.
  Seconds abandon_visibility = -1.0;
  /// Fault injection (borrowed, not owned). Null = never.
  runtime::FaultInjector* faults = nullptr;
  /// Metrics registry shared across the pool; null = private registry.
  std::shared_ptr<runtime::MetricsRegistry> metrics;
  /// Tracer (borrowed, not owned). Null = no tracing. Adds fetch.input /
  /// compute / upload.output / monitor.report child spans to the lifecycle's
  /// task envelope, keyed by the task message id.
  runtime::Tracer* tracer = nullptr;
  /// When true each worker owns a storage::BlockCache and routes its
  /// shared-input fetches (TaskSpec::shared_keys) through it, so the BLAST
  /// NR database / GTM training matrix is downloaded once per worker
  /// instead of once per task. Counters land in the pool registry under
  /// "<worker-id>.blockcache.*".
  bool enable_cache = false;
  storage::BlockCacheConfig cache;
};

/// Snapshot view over the worker's counters in the MetricsRegistry.
struct WorkerStats {
  int messages_received = 0;
  int tasks_completed = 0;   // executed + uploaded + monitor sent
  int deletes_failed = 0;    // stale receipt: someone else re-ran the task
  int downloads_missed = 0;  // eventual-consistency retries
  int executions_failed = 0;
  bool crashed = false;
};

class Worker {
 public:
  Worker(std::string id, storage::StorageBackend& store,
         std::shared_ptr<cloudq::MessageQueue> task_queue,
         std::shared_ptr<cloudq::MessageQueue> monitor_queue, TaskExecutor executor,
         WorkerConfig config);

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  /// Starts the poll loop on its own thread.
  void start();

  /// Asks the loop to exit after the current task.
  void request_stop();

  /// Blocks until the loop has exited.
  void join();

  bool running() const { return lifecycle_->running(); }
  const std::string& id() const { return lifecycle_->id(); }
  bool crashed() const { return lifecycle_->crashed(); }
  WorkerStats stats() const;
  runtime::MetricsRegistry& metrics() const { return lifecycle_->metrics(); }

  /// The underlying poll loop — what a runtime::WorkerSupervisor watches.
  runtime::TaskLifecycle& lifecycle() { return *lifecycle_; }

  /// This worker's block cache; null when WorkerConfig::enable_cache is off.
  storage::BlockCache* cache() { return cache_.get(); }

 private:
  runtime::TaskOutcome process(runtime::TaskContext& ctx);
  std::shared_ptr<const std::string> fetch_shared(runtime::TaskContext& ctx,
                                                  const std::string& key);

  storage::StorageBackend& store_;
  std::shared_ptr<cloudq::MessageQueue> monitor_queue_;
  TaskExecutor executor_;
  WorkerConfig config_;
  std::unique_ptr<runtime::TaskLifecycle> lifecycle_;
  std::unique_ptr<storage::BlockCache> cache_;
};

}  // namespace ppc::classiccloud
