#include "classiccloud/worker.h"

#include <chrono>

#include "common/clock.h"
#include "common/error.h"
#include "common/log.h"

namespace ppc::classiccloud {

namespace {
void sleep_seconds(Seconds s) {
  if (s > 0.0) std::this_thread::sleep_for(std::chrono::duration<double>(s));
}
}  // namespace

Worker::Worker(std::string id, blobstore::BlobStore& store,
               std::shared_ptr<cloudq::MessageQueue> task_queue,
               std::shared_ptr<cloudq::MessageQueue> monitor_queue, TaskExecutor executor,
               WorkerConfig config)
    : id_(std::move(id)),
      store_(store),
      task_queue_(std::move(task_queue)),
      monitor_queue_(std::move(monitor_queue)),
      executor_(std::move(executor)),
      config_(std::move(config)) {
  PPC_REQUIRE(task_queue_ != nullptr, "worker needs a task queue");
  PPC_REQUIRE(monitor_queue_ != nullptr, "worker needs a monitor queue");
  PPC_REQUIRE(executor_ != nullptr, "worker needs an executor");
  PPC_REQUIRE(config_.visibility_timeout > 0.0, "visibility timeout must be positive");
}

Worker::~Worker() {
  request_stop();
  if (thread_.joinable()) thread_.join();
}

void Worker::start() {
  PPC_REQUIRE(!thread_.joinable(), "worker already started");
  running_.store(true);
  thread_ = std::thread([this] { poll_loop(); });
}

void Worker::request_stop() { stop_requested_.store(true); }

void Worker::join() {
  if (thread_.joinable()) thread_.join();
}

WorkerStats Worker::stats() const {
  std::lock_guard lock(stats_mu_);
  return stats_;
}

void Worker::poll_loop() {
  int idle_polls = 0;
  while (!stop_requested_.load()) {
    auto message = task_queue_->receive(config_.visibility_timeout);
    if (!message) {
      ++idle_polls;
      if (config_.max_idle_polls >= 0 && idle_polls >= config_.max_idle_polls) break;
      sleep_seconds(config_.poll_interval);
      continue;
    }
    idle_polls = 0;
    {
      std::lock_guard lock(stats_mu_);
      ++stats_.messages_received;
    }
    if (!process(*message)) {
      // Crash injected: the worker dies mid-task. The message it held stays
      // invisible until its timeout lapses, then another worker picks it up.
      std::lock_guard lock(stats_mu_);
      stats_.crashed = true;
      break;
    }
  }
  running_.store(false);
}

bool Worker::process(const cloudq::Message& message) {
  const TaskSpec task = decode_task(message.body);
  auto crash = [this, &task](CrashPoint p) {
    return config_.crash_at && config_.crash_at(p, task);
  };
  if (crash(CrashPoint::kAfterReceive)) return false;

  // Download the input, riding out read-after-write visibility lag.
  std::optional<std::string> input;
  for (int attempt = 0; attempt <= config_.download_retries; ++attempt) {
    input = store_.get(config_.bucket, task.input_key);
    if (input) break;
    {
      std::lock_guard lock(stats_mu_);
      ++stats_.downloads_missed;
    }
    sleep_seconds(config_.download_retry_interval);
  }
  if (!input) {
    // Give up on this delivery; the message reappears after its timeout and
    // by then the blob will be visible (eventual availability).
    PPC_WARN << "worker " << id_ << ": input blob not yet visible: " << task.input_key;
    return true;
  }

  ppc::SystemClock timer;
  std::string output;
  try {
    output = executor_(task, *input);
  } catch (const std::exception& e) {
    std::lock_guard lock(stats_mu_);
    ++stats_.executions_failed;
    PPC_WARN << "worker " << id_ << ": execution failed for " << task.task_id << ": " << e.what();
    return true;  // leave the message to time out and be retried
  }
  const Seconds duration = timer.now();
  if (crash(CrashPoint::kAfterExecute)) return false;

  store_.put(config_.bucket, task.output_key, std::move(output));
  if (crash(CrashPoint::kAfterUpload)) return false;

  MonitorRecord record;
  record.task_id = task.task_id;
  record.worker_id = id_;
  record.status = "done";
  record.duration = duration;
  monitor_queue_->send(encode_monitor(record));

  // Delete only after completion — the heart of the fault-tolerance story.
  const bool deleted = task_queue_->delete_message(message.receipt_handle);
  std::lock_guard lock(stats_mu_);
  ++stats_.tasks_completed;
  if (!deleted) ++stats_.deletes_failed;  // a twin re-ran it; idempotency saves us
  return true;
}

}  // namespace ppc::classiccloud
