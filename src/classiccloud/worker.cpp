#include "classiccloud/worker.h"

#include <utility>

#include "common/clock.h"
#include "common/error.h"
#include "common/log.h"

namespace ppc::classiccloud {

namespace {
runtime::LifecycleConfig lifecycle_config(const WorkerConfig& config) {
  runtime::LifecycleConfig lc;
  lc.poll_interval = config.poll_interval;
  lc.poll_interval_max = config.poll_interval_max;
  lc.receive_batch = config.receive_batch;
  lc.delete_batch = config.delete_batch;
  lc.visibility_timeout = config.visibility_timeout;
  lc.max_idle_polls = config.max_idle_polls;
  lc.fetch_retry = config.download_retry;
  lc.abandon_visibility = config.abandon_visibility;
  lc.tracer = config.tracer;
  return lc;
}
}  // namespace

Worker::Worker(std::string id, storage::StorageBackend& store,
               std::shared_ptr<cloudq::MessageQueue> task_queue,
               std::shared_ptr<cloudq::MessageQueue> monitor_queue, TaskExecutor executor,
               WorkerConfig config)
    : store_(store),
      monitor_queue_(std::move(monitor_queue)),
      executor_(std::move(executor)),
      config_(std::move(config)) {
  PPC_REQUIRE(monitor_queue_ != nullptr, "worker needs a monitor queue");
  PPC_REQUIRE(executor_ != nullptr, "worker needs an executor");
  lifecycle_ = std::make_unique<runtime::TaskLifecycle>(
      std::move(id), std::move(task_queue),
      [this](runtime::TaskContext& ctx) { return process(ctx); }, lifecycle_config(config_),
      config_.metrics, config_.faults);
  if (config_.enable_cache) {
    storage::BlockCacheConfig cc = config_.cache;
    cc.name = lifecycle_->id() + ".blockcache";
    cache_ = std::make_unique<storage::BlockCache>(cc, &lifecycle_->metrics());
    cache_->set_tracer(config_.tracer);
  }
}

void Worker::start() { lifecycle_->start(); }

void Worker::request_stop() { lifecycle_->request_stop(); }

void Worker::join() { lifecycle_->join(); }

WorkerStats Worker::stats() const {
  namespace c = runtime::counters;
  WorkerStats s;
  s.messages_received = static_cast<int>(lifecycle_->counter(c::kMessagesReceived));
  s.tasks_completed = static_cast<int>(lifecycle_->counter(c::kTasksCompleted));
  s.deletes_failed = static_cast<int>(lifecycle_->counter(c::kDeletesFailed));
  s.downloads_missed = static_cast<int>(lifecycle_->counter(c::kDownloadsMissed));
  s.executions_failed = static_cast<int>(lifecycle_->counter(c::kExecutionsFailed));
  s.crashed = lifecycle_->crashed();
  return s;
}

std::shared_ptr<const std::string> Worker::fetch_shared(runtime::TaskContext& ctx,
                                                        const std::string& key) {
  if (cache_ == nullptr) return ctx.fetch(store_, config_.bucket, key);
  // Fetch-through the block cache with the lifecycle's retry policy: a
  // cache hit never touches the store; a miss downloads, validates against
  // the etag and caches. `found == false` (not visible yet / corrupted in
  // flight) counts as a miss and is retried like any other fetch.
  return ctx.retry([&]() -> std::shared_ptr<const std::string> {
    const storage::BlockCache::FetchResult r = cache_->fetch(store_, config_.bucket, key);
    if (!r.found) return nullptr;
    return r.data != nullptr ? r.data : std::make_shared<const std::string>();
  });
}

runtime::TaskOutcome Worker::process(runtime::TaskContext& ctx) {
  using runtime::TaskOutcome;
  const TaskSpec task = decode_task(ctx.message().body());
  if (ctx.crash_site(sites::kAfterReceive, task.task_id)) return TaskOutcome::kCrashed;

  // Job-wide reference data first (NR database, training matrix): served
  // from this worker's block cache after the first task touches it.
  for (const std::string& shared_key : task.shared_keys) {
    runtime::Span shared_span = ctx.span("fetch.shared");
    shared_span.arg("key", shared_key);
    auto shared = fetch_shared(ctx, shared_key);
    shared_span.close();
    if (!shared) {
      PPC_WARN << "worker " << id() << ": shared blob not yet visible: " << shared_key;
      return TaskOutcome::kAbandoned;
    }
  }

  // Download the input, riding out read-after-write visibility lag.
  runtime::Span fetch_span = ctx.span("fetch.input");
  auto input = ctx.fetch(store_, config_.bucket, task.input_key);
  fetch_span.close();
  if (!input) {
    // Give up on this delivery; the message reappears after its timeout and
    // by then the blob will be visible (eventual availability).
    PPC_WARN << "worker " << id() << ": input blob not yet visible: " << task.input_key;
    return TaskOutcome::kAbandoned;
  }

  ppc::SystemClock timer;
  runtime::Span compute_span = ctx.span("compute");
  compute_span.arg("task_id", task.task_id);
  std::string output;
  try {
    output = executor_(task, *input);
  } catch (const std::exception& e) {
    ctx.count(runtime::counters::kExecutionsFailed);
    PPC_WARN << "worker " << id() << ": execution failed for " << task.task_id << ": "
             << e.what();
    return TaskOutcome::kAbandoned;  // leave the message to time out and be retried
  }
  compute_span.close();
  const Seconds duration = timer.now();
  if (ctx.crash_site(sites::kAfterExecute, task.task_id)) return TaskOutcome::kCrashed;

  runtime::Span upload_span = ctx.span("upload.output");
  store_.put(config_.bucket, task.output_key, std::move(output));
  upload_span.close();
  if (ctx.crash_site(sites::kAfterUpload, task.task_id)) return TaskOutcome::kCrashed;

  MonitorRecord record;
  record.task_id = task.task_id;
  record.worker_id = id();
  record.status = "done";
  record.duration = duration;
  runtime::Span report_span = ctx.span("monitor.report");
  monitor_queue_->send(encode_monitor(record));
  report_span.close();
  ctx.observe("task_seconds", duration);
  return TaskOutcome::kCompleted;
}

}  // namespace ppc::classiccloud
