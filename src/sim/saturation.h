// Saturation harness — the million-task control-plane claim, executable.
//
// Two instruments:
//
//  * run_saturation_sweep — real threads hammer one cloudq::MessageQueue
//    through the batch APIs (receive_batch / delete_batch) across a
//    (workers x shards) grid and report sustained tasks/s plus API-request
//    accounting. This is the curve that shows the sharded MPMC layout
//    scaling where a single lock convoys, and the batch APIs dividing the
//    request bill by ~10.
//
//  * run_million_task_campaign — an end-to-end Cap3 job of configurable
//    size (default one million tasks) through the Classic Cloud DES driver
//    with batched receives/acks and a runtime::Monitor ticking on the
//    simulation clock. The campaign passes when every task completes, the
//    task queue drains to zero undeleted messages, no alarm fires, the run
//    fits the wall-clock budget, and (when verify_determinism is set) a
//    second run produces a byte-identical monitor time-series.
//
// Both are deterministic in sim/RNG terms; only the wall-clock seconds vary
// with the host.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"

namespace ppc::sim {

struct SaturationConfig {
  /// Messages drained per grid cell. Large enough that per-cell thread
  /// start-up is noise against the drain.
  int tasks = 20000;
  std::vector<int> workers = {1, 2, 4, 8};
  std::vector<int> shards = {1, 4, 8};
  /// Messages per receive/delete request (1..10). The sweep also emits one
  /// unbatched (batch=1) reference row per shard count at the widest worker
  /// count, so the batching win is visible in the same artifact.
  int batch = 10;
  unsigned seed = 42;
};

struct SaturationCell {
  int workers = 0;
  int shards = 0;
  int batch = 0;
  int tasks = 0;
  double seconds = 0.0;
  double tasks_per_second = 0.0;
  std::uint64_t api_requests = 0;       // RequestMeter::total()
  std::uint64_t unbatched_requests = 0; // one-message-per-request equivalent
  double batch_occupancy = 0.0;         // messages moved per request

  /// "w8_s4_b10" — the row key the --check gate and CSVs use.
  std::string name() const;
};

struct SaturationReport {
  std::vector<SaturationCell> cells;
  double peak_tasks_per_second = 0.0;

  std::string to_text() const;
  /// {"meta": {...}, "cells": [...]} — BENCH_saturation.json. `git_sha` is
  /// stamped into meta ("unknown" outside a checkout).
  std::string to_json(const std::string& git_sha, const SaturationConfig& config) const;
};

SaturationReport run_saturation_sweep(const SaturationConfig& config);

struct CampaignConfig {
  /// Cap3 files; one task each. The headline run is 1,000,000.
  int tasks = 1000000;
  int instances = 32;
  int workers_per_instance = 8;
  /// SimRunParams::receive_batch — 10 keeps the queue bill at ~3 requests
  /// per 10 tasks instead of 3 per task.
  int receive_batch = 10;
  /// Queue lock stripes (QueueConfig::shards).
  int queue_shards = 8;
  unsigned seed = 42;
  /// Monitor sample period in sim-seconds.
  Seconds monitor_period = 600.0;
  std::size_t monitor_capacity = 8192;
  /// Real-seconds budget for the DES run itself (per run, excluding the
  /// determinism re-run). Exceeding it fails the campaign.
  Seconds wall_budget = 300.0;
  /// Run twice and require byte-identical Monitor::to_json() output.
  bool verify_determinism = true;
};

struct CampaignReport {
  bool passed = false;
  std::vector<std::string> failures;  // reasons when !passed

  int tasks = 0;
  int completed = 0;
  Seconds makespan = 0.0;        // sim-seconds
  double wall_seconds = 0.0;     // first run, real time
  double sim_tasks_per_second = 0.0;
  std::uint64_t queue_undeleted_end = 0;  // 0 = task queue fully drained

  std::uint64_t api_requests = 0;
  std::uint64_t unbatched_requests = 0;
  double batch_occupancy = 0.0;
  Dollars queue_cost = 0.0;
  Dollars queue_cost_unbatched = 0.0;

  std::uint64_t monitor_samples = 0;
  bool alarm_fired = false;
  bool deterministic = true;  // monitor series byte-identical across reruns
  /// Monitor::to_json() of the first run — the deterministic artifact CI
  /// archives and byte-diffs.
  std::string monitor_json;

  std::string to_text() const;
};

CampaignReport run_million_task_campaign(const CampaignConfig& config);

}  // namespace ppc::sim
