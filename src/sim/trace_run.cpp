#include "sim/trace_run.h"

#include <memory>
#include <utility>

#include "azuremr/runtime.h"
#include "classiccloud/job_client.h"
#include "cloudq/queue_service.h"
#include "common/clock.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "dryad/file_share.h"
#include "dryad/partitioned_table.h"
#include "dryad/runtime.h"
#include "mapreduce/job.h"
#include "minihdfs/mini_hdfs.h"
#include "runtime/monitor.h"
#include "sim/app_job.h"
#include "storage/fs_backends.h"

namespace ppc::sim {

namespace {

void run_classiccloud(const TraceRunConfig& cfg, const AppJob& app, runtime::Tracer& tracer,
         const std::shared_ptr<runtime::MetricsRegistry>& metrics,
                      TraceRunReport& report) {
  auto clock = std::make_shared<ppc::SystemClock>();
  const auto store =
      storage::make_backend(storage::parse_storage_kind(cfg.storage), clock, ppc::Rng(0x77ACE));
  cloudq::QueueService queues(clock);
  store->set_tracer(&tracer);
  queues.set_tracer(&tracer);

  classiccloud::JobClient client(*store, queues, "trace-cc");
  client.submit(app.files, app.shared_files);

  classiccloud::TaskExecutor executor = [&app](const classiccloud::TaskSpec& task,
                                               const std::string& input) {
    return app.fn(task.task_id, input);
  };
  classiccloud::WorkerConfig wc;
  wc.poll_interval = 0.001;
  wc.tracer = &tracer;
  wc.metrics = metrics;
  wc.enable_cache = cfg.enable_cache;
  classiccloud::WorkerPool pool(*store, client.task_queue(), client.monitor_queue(), executor,
                                wc, cfg.num_workers, "trace-cc-w");
  pool.start_all();
  const bool done = client.wait_for_completion(cfg.run_timeout);
  pool.stop_all();
  pool.join_all();
  if (!done) {
    report.failures.push_back("classiccloud job did not complete within " +
                              ppc::format_fixed(cfg.run_timeout, 0) + "s");
    return;
  }
  for (const auto& task : client.tasks()) {
    if (client.fetch_output(task) != nullptr) ++report.files_processed;
  }
  report.succeeded = report.files_processed == app.files.size();
  if (!report.succeeded) report.failures.push_back("classiccloud outputs missing");
}

void run_azuremr(const TraceRunConfig& cfg, const AppJob& app, runtime::Tracer& tracer,
         const std::shared_ptr<runtime::MetricsRegistry>& metrics,
                 TraceRunReport& report) {
  auto clock = std::make_shared<ppc::SystemClock>();
  const auto store =
      storage::make_backend(storage::parse_storage_kind(cfg.storage), clock, ppc::Rng(0xA27ACE));
  cloudq::QueueService queues(clock);
  store->set_tracer(&tracer);
  queues.set_tracer(&tracer);

  azuremr::MrWorkerConfig wc;
  wc.poll_interval = 0.001;
  wc.tracer = &tracer;
  wc.metrics = metrics;
  azuremr::AzureMapReduce mr(*store, queues, cfg.num_workers, wc);
  mr.supervisor_config.tracer = &tracer;

  azuremr::JobSpec spec;
  spec.job_id = "trace-az";
  spec.inputs = app.files;
  spec.num_reduce_tasks = 2;
  spec.stage_timeout = cfg.run_timeout;
  const auto fn = app.fn;
  spec.map = [fn](const std::string& name, const std::string& data, const std::string&) {
    return std::vector<azuremr::KeyValue>{{name, fn(name, data)}};
  };
  spec.reduce = [](const std::string&, const std::vector<std::string>& values) {
    return values.front();
  };
  const auto result = mr.run(spec);
  report.files_processed = result.outputs.size();
  report.succeeded = result.succeeded && report.files_processed == app.files.size();
  if (!report.succeeded) report.failures.push_back("azuremr job failed");
}

void run_mapreduce(const TraceRunConfig& cfg, const AppJob& app, runtime::Tracer& tracer,
         const std::shared_ptr<runtime::MetricsRegistry>& metrics,
                   TraceRunReport& report) {
  minihdfs::MiniHdfs hdfs(cfg.num_workers);
  std::vector<std::string> paths;
  for (const auto& [name, data] : app.files) {
    const std::string path = "/in/" + name;
    hdfs.write(path, data);
    paths.push_back(path);
  }
  const auto fn = app.fn;
  mapreduce::JobConfig jc;
  jc.num_nodes = cfg.num_workers;
  // One slot per node so each trace track is a node — comparable 1:1 with
  // the dryad run of the same job.
  jc.slots_per_node = 1;
  jc.tracer = &tracer;
  jc.metrics = metrics;
  mapreduce::LocalJobRunner runner(hdfs);
  const auto result = runner.run(
      paths,
      [fn](const mapreduce::FileRecord& record, const std::string& contents) {
        return fn(record.name, contents);
      },
      jc);
  report.files_processed = result.outputs.size();
  report.succeeded = result.succeeded && report.files_processed == app.files.size();
  if (!report.succeeded) report.failures.push_back("mapreduce job failed");
}

void run_dryad(const TraceRunConfig& cfg, const AppJob& app, runtime::Tracer& tracer,
         const std::shared_ptr<runtime::MetricsRegistry>& metrics,
               TraceRunReport& report) {
  dryad::FileShare share(cfg.num_workers);
  std::vector<std::string> names;
  names.reserve(app.files.size());
  for (const auto& [name, _] : app.files) names.push_back(name);
  // Round-robin static partitioning — the layout the paper's partition tool
  // produces without size information, and the one §4.2 blames for the
  // imbalance on inhomogeneous data.
  const auto table = dryad::PartitionedTable::round_robin(names, cfg.num_workers);
  table.distribute(share, [&](const std::string& name) -> std::string {
    for (const auto& [n, data] : app.files) {
      if (n == name) return data;
    }
    throw ppc::InternalError("partition references unknown file: " + name);
  });

  dryad::RuntimeConfig rc;
  rc.num_nodes = cfg.num_workers;
  rc.slots_per_node = 1;
  rc.tracer = &tracer;
  rc.metrics = metrics;
  dryad::DryadRuntime rt(rc);
  const auto fn = app.fn;
  const auto result = dryad_select(rt, share, table,
                                   [fn](const std::string& name, const std::string& contents) {
                                     return fn(name, contents);
                                   });
  report.files_processed = result.outputs.size();
  report.succeeded = result.report.succeeded && report.files_processed == app.files.size();
  if (!report.succeeded) report.failures.push_back("dryad job failed");
}

}  // namespace

TraceRunReport run_traced_job(const TraceRunConfig& config) {
  TraceRunReport report;
  report.substrate = config.substrate;
  report.app = config.app;

  const AppJob app = make_app_job(config.app, config.num_files, config.skew);
  runtime::Tracer tracer;
  tracer.enable();
  auto metrics = std::make_shared<runtime::MetricsRegistry>();
  std::unique_ptr<runtime::Monitor> monitor;
  if (config.monitor_period > 0.0) {
    runtime::MonitorConfig mc;
    mc.period = config.monitor_period;
    monitor = std::make_unique<runtime::Monitor>(*metrics, mc);
    monitor->start();
  }

  if (config.substrate == "classiccloud") {
    run_classiccloud(config, app, tracer, metrics, report);
  } else if (config.substrate == "azuremr") {
    run_azuremr(config, app, tracer, metrics, report);
  } else if (config.substrate == "mapreduce") {
    run_mapreduce(config, app, tracer, metrics, report);
  } else if (config.substrate == "dryad") {
    run_dryad(config, app, tracer, metrics, report);
  } else {
    throw ppc::InvalidArgument("unknown trace substrate: " + config.substrate);
  }

  if (monitor != nullptr) {
    monitor->stop();
    report.monitor_json = monitor->to_json();
  }
  tracer.disable();
  report.spans = tracer.completed_spans();
  report.chrome_json = tracer.to_chrome_json();
  report.summary_table = tracer.summary_table();
  report.load = tracer.load_report();
  return report;
}

std::string TraceRunReport::to_text() const {
  std::string out = "trace run: substrate=" + substrate + " app=" + app + " -> " +
                    (succeeded ? "OK" : "FAIL") + " (" + std::to_string(files_processed) +
                    " files, " + std::to_string(spans) + " spans)\n";
  for (const auto& failure : failures) out += "  FAIL: " + failure + "\n";
  out += load.to_text();
  out += summary_table;
  return out;
}

std::string imbalance_comparison(const std::vector<TraceRunReport>& reports) {
  std::string out =
      "scheduling comparison (same job per substrate; imbalance = max/mean worker busy)\n";
  out += "  substrate     makespan(s)  imbalance  worst-idle-tail\n";
  for (const TraceRunReport& r : reports) {
    double worst_tail = 0.0;
    for (const runtime::WorkerLoad& w : r.load.workers) {
      if (w.idle_tail_fraction > worst_tail) worst_tail = w.idle_tail_fraction;
    }
    std::string name = r.substrate;
    name.resize(12, ' ');
    out += "  " + name + "  " + ppc::format_fixed(r.load.makespan, 3) + "        " +
           ppc::format_fixed(r.load.imbalance, 2) + "       " +
           ppc::format_fixed(worst_tail, 2) + "\n";
  }
  return out;
}

}  // namespace ppc::sim
