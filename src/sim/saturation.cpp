#include "sim/saturation.h"

#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>
#include <vector>

#include "cloud/instance_types.h"
#include "cloudq/message_queue.h"
#include "common/clock.h"
#include "common/error.h"
#include "core/drivers.h"
#include "core/exec_model.h"
#include "core/workload.h"
#include "billing/cost_model.h"
#include "runtime/monitor.h"
#include "sim/monitor_run.h"

namespace ppc::sim {

namespace {

double wall_seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// One sweep cell: pre-fill the queue, then `workers` threads drain it
/// through the batch APIs as fast as they can.
SaturationCell run_cell(int workers, int shards, int batch, int tasks, unsigned seed) {
  PPC_REQUIRE(workers >= 1 && tasks >= 1, "cell needs workers and tasks");
  PPC_REQUIRE(batch >= 1 && batch <= static_cast<int>(cloudq::MessageQueue::kBatchLimit),
              "batch must be in [1, kBatchLimit]");
  auto clock = std::make_shared<SystemClock>();
  cloudq::QueueConfig qc;
  qc.shards = shards;
  cloudq::MessageQueue queue("sat", clock, qc, ppc::Rng(seed));

  {
    std::vector<std::string> bodies;
    bodies.reserve(cloudq::MessageQueue::kBatchLimit);
    for (int i = 0; i < tasks;) {
      bodies.clear();
      for (std::size_t j = 0; j < cloudq::MessageQueue::kBatchLimit && i < tasks; ++j, ++i) {
        bodies.push_back("t" + std::to_string(i));
      }
      queue.send_batch(bodies);
    }
  }

  std::atomic<std::int64_t> deleted{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      std::vector<cloudq::Message> buf;
      std::vector<std::string> receipts;
      buf.reserve(static_cast<std::size_t>(batch));
      receipts.reserve(static_cast<std::size_t>(batch));
      while (deleted.load(std::memory_order_relaxed) < tasks) {
        buf.clear();
        if (queue.receive_batch(static_cast<std::size_t>(batch), 60.0, buf) == 0) {
          // Empty receive: either drained, or every message is in flight on
          // another thread that is about to delete it.
          std::this_thread::yield();
          continue;
        }
        receipts.clear();
        for (cloudq::Message& m : buf) receipts.push_back(std::move(m.receipt_handle));
        deleted.fetch_add(static_cast<std::int64_t>(queue.delete_batch(receipts)),
                          std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : pool) t.join();
  const double secs = wall_seconds_since(t0);

  SaturationCell cell;
  cell.workers = workers;
  cell.shards = shards;
  cell.batch = batch;
  cell.tasks = tasks;
  cell.seconds = secs;
  cell.tasks_per_second = secs > 0.0 ? tasks / secs : 0.0;
  const auto meter = queue.meter();
  cell.api_requests = meter.total();
  cell.unbatched_requests = meter.unbatched_total();
  cell.batch_occupancy = meter.batch_occupancy();
  return cell;
}

}  // namespace

std::string SaturationCell::name() const {
  return "w" + std::to_string(workers) + "_s" + std::to_string(shards) + "_b" +
         std::to_string(batch);
}

SaturationReport run_saturation_sweep(const SaturationConfig& config) {
  PPC_REQUIRE(!config.workers.empty() && !config.shards.empty(), "empty sweep grid");
  SaturationReport report;
  for (const int shards : config.shards) {
    for (const int workers : config.workers) {
      report.cells.push_back(
          run_cell(workers, shards, config.batch, config.tasks, config.seed));
    }
    if (config.batch > 1) {
      // Unbatched reference at the widest worker count: same traffic, one
      // message per request — the row the batching win is measured against.
      report.cells.push_back(
          run_cell(config.workers.back(), shards, 1, config.tasks, config.seed));
    }
  }
  for (const auto& cell : report.cells) {
    report.peak_tasks_per_second = std::max(report.peak_tasks_per_second, cell.tasks_per_second);
  }
  return report;
}

std::string SaturationReport::to_text() const {
  std::ostringstream os;
  os << "== queue saturation sweep (tasks/s vs workers vs shards) ==\n";
  char line[192];
  std::snprintf(line, sizeof(line), "%-12s %8s %7s %6s %12s %13s %11s %10s\n", "cell", "workers",
                "shards", "batch", "tasks/s", "api-requests", "unbatched", "occupancy");
  os << line;
  for (const auto& c : cells) {
    std::snprintf(line, sizeof(line), "%-12s %8d %7d %6d %12.0f %13llu %11llu %10.2f\n",
                  c.name().c_str(), c.workers, c.shards, c.batch, c.tasks_per_second,
                  static_cast<unsigned long long>(c.api_requests),
                  static_cast<unsigned long long>(c.unbatched_requests), c.batch_occupancy);
    os << line;
  }
  std::snprintf(line, sizeof(line), "peak: %.0f tasks/s\n", peak_tasks_per_second);
  os << line;
  return os.str();
}

std::string SaturationReport::to_json(const std::string& git_sha,
                                      const SaturationConfig& config) const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os << "{\n  \"meta\": {\"git_sha\": \"" << git_sha
     << "\", \"tasks_per_cell\": " << config.tasks << ", \"batch\": " << config.batch
     << ", \"seed\": " << config.seed << "},\n  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& c = cells[i];
    os.precision(6);
    os << "    {\"name\": \"" << c.name() << "\", \"workers\": " << c.workers
       << ", \"shards\": " << c.shards << ", \"batch\": " << c.batch
       << ", \"tasks\": " << c.tasks << ", \"seconds\": " << c.seconds;
    os.precision(1);
    os << ", \"tasks_per_second\": " << c.tasks_per_second
       << ", \"api_requests\": " << c.api_requests
       << ", \"unbatched_requests\": " << c.unbatched_requests;
    os.precision(2);
    os << ", \"batch_occupancy\": " << c.batch_occupancy << "}"
       << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  os.precision(1);
  os << "  ],\n  \"peak_tasks_per_second\": " << peak_tasks_per_second << "\n}\n";
  return os.str();
}

CampaignReport run_million_task_campaign(const CampaignConfig& config) {
  PPC_REQUIRE(config.tasks >= 1, "campaign needs tasks");
  PPC_REQUIRE(config.instances >= 1 && config.workers_per_instance >= 1,
              "campaign needs a deployment");

  const core::Workload workload = core::make_cap3_workload(config.tasks, 458);
  const core::Deployment deployment =
      core::make_deployment(cloud::ec2_hcxl(), config.instances, config.workers_per_instance);
  const core::ExecutionModel model(core::AppKind::kCap3);

  CampaignReport report;
  report.tasks = config.tasks;

  // One run = driver + fresh Monitor; returns (result, monitor json, alarm).
  auto run_once = [&](std::string& monitor_json, std::uint64_t& samples, bool& alarm) {
    runtime::MetricsRegistry registry;
    runtime::MonitorConfig mc;
    mc.period = config.monitor_period;
    mc.capacity = config.monitor_capacity;
    mc.scrape_registry = false;
    runtime::Monitor monitor(registry, mc);
    for (const std::string& rule : default_alarm_rules()) {
      monitor.add_alarm(runtime::parse_alarm(rule));
    }

    core::SimRunParams params;
    params.seed = config.seed;
    params.receive_batch = config.receive_batch;
    params.queue.shards = config.queue_shards;
    params.monitor = &monitor;

    const core::RunResult result =
        core::run_classic_cloud_sim(workload, deployment, model, params);
    monitor_json = monitor.to_json();
    samples = monitor.samples();
    alarm = monitor.degraded() || !monitor.firings().empty();
    return result;
  };

  const auto t0 = std::chrono::steady_clock::now();
  std::string monitor_json;
  const core::RunResult result =
      run_once(monitor_json, report.monitor_samples, report.alarm_fired);
  report.wall_seconds = wall_seconds_since(t0);

  report.completed = result.completed;
  report.makespan = result.makespan;
  report.sim_tasks_per_second =
      result.makespan > 0.0 ? result.completed / result.makespan : 0.0;
  report.queue_undeleted_end = result.queue_undeleted_end;
  report.api_requests = result.queue_api_requests;
  report.unbatched_requests = result.queue_unbatched_requests;
  report.batch_occupancy = result.queue_batch_occupancy;
  const auto savings =
      billing::queue_batching_savings(result.queue_api_requests, result.queue_unbatched_requests);
  report.queue_cost = savings.cost;
  report.queue_cost_unbatched = savings.unbatched_cost;
  report.monitor_json = monitor_json;

  if (config.verify_determinism) {
    std::string rerun_json;
    std::uint64_t rerun_samples = 0;
    bool rerun_alarm = false;
    (void)run_once(rerun_json, rerun_samples, rerun_alarm);
    report.deterministic = rerun_json == monitor_json;
  }

  if (report.completed != report.tasks) {
    report.failures.push_back("completed " + std::to_string(report.completed) + " of " +
                              std::to_string(report.tasks) + " tasks");
  }
  if (report.queue_undeleted_end != 0) {
    report.failures.push_back("task queue did not drain: " +
                              std::to_string(report.queue_undeleted_end) +
                              " undeleted messages");
  }
  if (report.alarm_fired) report.failures.push_back("monitor alarm fired on a fault-free run");
  if (!report.deterministic) {
    report.failures.push_back("monitor time-series differed across reruns");
  }
  if (report.wall_seconds > config.wall_budget) {
    report.failures.push_back("wall budget exceeded: " + std::to_string(report.wall_seconds) +
                              "s > " + std::to_string(config.wall_budget) + "s");
  }
  report.passed = report.failures.empty();
  return report;
}

std::string CampaignReport::to_text() const {
  std::ostringstream os;
  char line[256];
  std::snprintf(line, sizeof(line),
                "=== campaign: %d Cap3 tasks — %d completed, makespan %.0f sim-s "
                "(%.1f tasks/sim-s), wall %.1fs ===\n",
                tasks, completed, makespan, sim_tasks_per_second, wall_seconds);
  os << line;
  std::snprintf(line, sizeof(line),
                "queue: %llu API requests (%llu unbatched equivalent, occupancy %.2f), "
                "$%.2f vs $%.2f unbatched, %llu undeleted at end\n",
                static_cast<unsigned long long>(api_requests),
                static_cast<unsigned long long>(unbatched_requests), batch_occupancy, queue_cost,
                queue_cost_unbatched, static_cast<unsigned long long>(queue_undeleted_end));
  os << line;
  std::snprintf(line, sizeof(line), "monitor: %llu samples, alarms %s, rerun %s\n",
                static_cast<unsigned long long>(monitor_samples),
                alarm_fired ? "FIRED" : "quiet",
                deterministic ? "byte-identical" : "DIVERGED");
  os << line;
  os << (passed ? "verdict: PASS\n" : "verdict: FAIL\n");
  for (const auto& f : failures) os << "  - " << f << "\n";
  return os.str();
}

}  // namespace ppc::sim
