// Chaos campaign harness — the repo's executable fault-tolerance argument.
//
// The paper's frameworks claim to survive the cloud's failure modes with
// nothing but visibility timeouts, delete-after-completion, and idempotent
// re-execution (§2.1.3). A chaos campaign makes that claim falsifiable: it
// runs the same small Cap3 / BLAST / GTM job twice on one substrate — once
// fault-free (the baseline), once under a seeded runtime::FaultPlan that
// scripts crashes, delays, errors, and payload corruption against the
// substrate's queues, blobs, and lifecycle sites — and asserts the outputs
// are byte-identical. Alongside the correctness verdict it reports what the
// run actually absorbed: retries, failed/stale deletes, checksum-detected
// corruptions, dead-lettered poison tasks, and supervisor restarts with
// time-to-recovery percentiles.
//
// Campaigns are reproducible: every fault decision derives from
// ChaosConfig::seed, so a failing run reported by CI replays exactly with
// `ppcloud chaos --seed N --substrate X`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"

namespace ppc::sim {

struct ChaosConfig {
  /// Drives the sampled FaultPlan (and nothing else — the job corpus is
  /// fixed so every seed chases the same baseline).
  std::uint64_t seed = 42;
  /// "classiccloud", "azuremr", or "mapreduce".
  std::string substrate = "classiccloud";
  /// "cap3", "blast", or "gtm" — or a full-pipeline shuffle workload
  /// ("histogram", "dedup"), which runs on the mapreduce substrate only and
  /// chases faults through partition → spill → fetch → external sort →
  /// reduce (outputs compared as the canonical key → reduced-value map, so
  /// a lost group fails the campaign).
  std::string app = "cap3";
  /// Storage backend behind the blob-backed substrates ("object",
  /// "sharedfs", "parallelfs"). FaultHook sites are shared across backends,
  /// so one plan chases the same faults whichever data plane is selected.
  std::string storage = "object";
  /// classiccloud: per-worker content-addressed block cache for the job's
  /// shared files. A corrupted shared download must never be cached — the
  /// cache's etag validation is itself under test here.
  bool enable_cache = false;
  int num_files = 4;
  int num_workers = 3;
  /// Deliveries before a failing task is dead-lettered (queue substrates).
  /// High enough that a real task hit by several independent faults (a
  /// corrupt delivery + a crash + a failed delete) still completes; only
  /// the always-failing poison sentinel exhausts it.
  int max_receive_count = 5;
  /// Queue visibility timeout for the runs — small, so crash redeliveries
  /// resolve quickly.
  Seconds visibility_timeout = 1.5;
  /// Wall-clock budget per run; the campaign fails rather than hangs.
  Seconds run_timeout = 60.0;
  /// Arm a correlated spot-revocation storm on top of the sampled plan:
  /// revoke_spot rules (budget 2, p=0.9) at the substrate's worker lifecycle
  /// site. The real-thread substrates have no drain protocol, so storm
  /// revocations land as hard kills — the campaign asserts the existing
  /// crash machinery (redelivery, idempotent re-execution, DLQ) absorbs
  /// them byte-identically; the notice-respecting drain path is the DES
  /// elastic driver's and the WorkerSupervisor tests' business. Storm runs
  /// get extra redelivery headroom (max_receive_count / map attempts).
  bool revocation_storm = false;
  /// > 0: attach a runtime::Monitor (own sampler thread, wall clock) to the
  /// chaos run's registry at this period. Every worker-scoped counter
  /// becomes a rate series and every gauge (per-worker busy, DLQ depth) a
  /// level series; the dump lands in ChaosReport::monitor_json — the
  /// artifact `ppcloud chaos --monitor-dir` writes.
  Seconds monitor_period = 0.0;
};

struct ChaosReport {
  bool passed = false;
  std::uint64_t seed = 0;
  std::string substrate;
  std::string app;
  /// One line per armed rule (FaultPlan::summary()).
  std::string plan_summary;
  /// Human-readable reasons when !passed; empty otherwise.
  std::vector<std::string> failures;

  // What the plan injected (FaultInjector totals).
  std::int64_t crashes = 0;
  std::int64_t delays = 0;
  std::int64_t errors = 0;
  std::int64_t corruptions = 0;
  /// Spot revocations fired by the storm rules (also counted in `crashes`:
  /// a no-notice revocation IS a crash as far as the worker is concerned).
  std::int64_t spot_revocations = 0;

  // What the substrate absorbed.
  std::int64_t redeliveries = 0;        // at-least-once retries observed
  std::int64_t deletes_failed = 0;      // failed / injected delete attempts
  std::int64_t stale_deletes = 0;       // lapsed-receipt deletes suppressed
  std::int64_t corrupt_deliveries = 0;  // checksum-detected bad deliveries
  std::int64_t dlq_entries = 0;         // tasks dead-lettered
  std::int64_t poison_tasks = 0;        // lifecycle-routed poison tasks
  std::int64_t supervisor_restarts = 0;
  double recovery_p50 = 0.0;  // supervisor time-to-recovery (seconds)
  double recovery_max = 0.0;

  /// Full MetricsRegistry::to_json() snapshot of the chaos run — the
  /// artifact CI archives.
  std::string metrics_json;

  /// Monitor::to_json() time-series dump of the chaos run; empty unless
  /// ChaosConfig::monitor_period > 0.
  std::string monitor_json;

  /// Chrome trace_event JSON of the chaos run (Tracer::to_chrome_json()):
  /// the per-task causal chain under fault injection. On a failing seed,
  /// `ppcloud chaos` writes this next to the reproducing-seed message so the
  /// timeline that led to the failure ships with the bug report.
  std::string trace_json;
  std::size_t trace_spans = 0;

  /// Multi-line campaign summary for terminals/logs.
  std::string to_text() const;
};

/// Runs one campaign: fault-free baseline, then the seeded chaos run, then
/// the byte-identical comparison plus the injected-fault coverage checks.
/// Campaign failures land in the report (`passed` / `failures`); only
/// configuration errors (unknown substrate/app) throw.
ChaosReport run_chaos_campaign(const ChaosConfig& config);

}  // namespace ppc::sim
