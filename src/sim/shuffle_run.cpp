#include "sim/shuffle_run.h"

#include <memory>
#include <sstream>

#include "apps/blast/aligner.h"
#include "apps/cap3/fasta.h"
#include "common/error.h"
#include "common/rng.h"

namespace ppc::sim {

ShuffleAppJob make_shuffle_app(const std::string& app, int num_files, std::uint64_t seed) {
  PPC_REQUIRE(num_files >= 1, "shuffle app needs at least one input file");
  ShuffleAppJob job;
  ppc::Rng rng(seed);
  if (app == "histogram") {
    apps::blast::DbGenConfig db_config;
    db_config.num_sequences = 24;
    const auto db = apps::blast::SequenceDb::generate(db_config, rng);
    auto index = std::make_shared<apps::blast::BlastIndex>(db);
    for (int i = 0; i < num_files; ++i) {
      job.files.emplace_back("queries-" + std::to_string(i) + ".fa",
                             apps::blast::make_query_file(db, 6, 0.7, rng));
    }
    job.map = [index](const mapreduce::FileRecord&, const std::string& contents,
                      const mapreduce::EmitFn& emit) {
      for (const auto& query : apps::parse_fasta(contents)) {
        const auto hits = index->search(query);
        // Group queries by their best database hit; unmatched queries all
        // land in one "no-hit" bucket so nothing silently drops.
        emit(hits.empty() ? "no-hit" : hits.front().subject_id, query.id);
      }
    };
    job.reduce = [](const std::string&, const std::vector<std::string>& values) {
      return "count=" + std::to_string(values.size()) + " first=" + values.front();
    };
  } else if (app == "dedup") {
    // A pool of distinct reads sampled with repetition across files — the
    // duplicates the job exists to find.
    std::vector<std::string> pool;
    for (int i = 0; i < 10; ++i) pool.push_back(apps::blast::random_protein(40, rng));
    for (int i = 0; i < num_files; ++i) {
      std::vector<apps::FastaRecord> reads;
      for (int r = 0; r < 8; ++r) {
        apps::FastaRecord rec;
        rec.id = "f" + std::to_string(i) + "r" + std::to_string(r);
        rec.seq = pool[rng.index(pool.size())];
        reads.push_back(std::move(rec));
      }
      job.files.emplace_back("reads-" + std::to_string(i) + ".fa",
                             apps::write_fasta(reads));
    }
    job.map = [](const mapreduce::FileRecord&, const std::string& contents,
                 const mapreduce::EmitFn& emit) {
      for (const auto& read : apps::parse_fasta(contents)) {
        emit(read.seq, read.id);
      }
    };
    job.reduce = [](const std::string&, const std::vector<std::string>& values) {
      // First occurrence (in deterministic (map_id, seq) order) is the
      // canonical representative; the rest are the duplicates.
      return "rep=" + values.front() + " copies=" + std::to_string(values.size());
    };
  } else {
    throw ppc::InvalidArgument("unknown shuffle app: " + app +
                               " (expected histogram or dedup)");
  }
  return job;
}

namespace {

struct OneRun {
  mapreduce::ShuffleJobResult result;
  std::string canonical;
  std::size_t groups = 0;
};

OneRun run_once(const ShuffleAppJob& app_job, const ShuffleRunConfig& config, int num_nodes,
                int slots_per_node, int num_reducers, Bytes sort_budget,
                runtime::Tracer* tracer) {
  minihdfs::MiniHdfs hdfs(num_nodes);
  std::vector<std::string> paths;
  for (const auto& [name, data] : app_job.files) {
    const std::string path = "/in/" + name;
    hdfs.write(path, data);
    paths.push_back(path);
  }
  mapreduce::ShuffleJobConfig jc;
  jc.num_nodes = num_nodes;
  jc.slots_per_node = slots_per_node;
  jc.num_reducers = num_reducers;
  jc.job_name = config.app + "-" + std::to_string(config.seed);
  jc.map_spill_budget = config.map_spill_budget;
  jc.sort_memory_budget = sort_budget;
  jc.faults = config.faults;
  jc.metrics = config.metrics;
  jc.tracer = tracer;
  mapreduce::ShuffleJobRunner runner(hdfs);
  OneRun run;
  run.result = runner.run(paths, app_job.map, app_job.reduce, jc);
  if (run.result.succeeded) {
    const auto canonical = mapreduce::canonical_reduced_output(run.result, hdfs);
    run.groups = canonical.size();
    run.canonical = mapreduce::encode_canonical(canonical);
  }
  return run;
}

}  // namespace

ShuffleRunReport run_shuffle_job(const ShuffleRunConfig& config) {
  const ShuffleAppJob app_job = make_shuffle_app(config.app, config.num_files, config.seed);

  std::unique_ptr<runtime::Tracer> tracer;
  if (config.trace) {
    tracer = std::make_unique<runtime::Tracer>();
    tracer->enable();
  }

  ShuffleRunReport report;
  report.app = config.app;
  report.seed = config.seed;
  report.maps = config.num_files;
  report.reducers = config.num_reducers;

  OneRun run = run_once(app_job, config, config.num_nodes, config.slots_per_node,
                        config.num_reducers, config.sort_memory_budget, tracer.get());
  report.succeeded = run.result.succeeded;
  report.groups = run.groups;
  report.canonical = std::move(run.canonical);
  report.shuffle = run.result.shuffle;
  report.map_stats = run.result.map_stats;
  report.reduce_stats = run.result.reduce_stats;
  report.elapsed = run.result.elapsed;
  if (tracer != nullptr) {
    report.trace_json = tracer->to_chrome_json();
    report.trace_spans = tracer->completed_spans();
  }

  if (config.verify_determinism && report.succeeded) {
    // Different cluster shape, different reducer sort budget (forcing a
    // different spill schedule) — the canonical bytes must not move.
    const int alt_nodes = config.num_nodes == 1 ? 2 : 1;
    const Bytes alt_budget = config.sort_memory_budget > 0.0 ? 0.0 : 1024.0;
    OneRun alt = run_once(app_job, config, alt_nodes, config.slots_per_node + 1,
                          config.num_reducers, alt_budget, nullptr);
    report.determinism_verified = true;
    report.determinism_ok = alt.result.succeeded && alt.canonical == report.canonical;
  }
  return report;
}

std::string ShuffleRunReport::to_text() const {
  std::ostringstream os;
  os << "shuffle app=" << app << " seed=" << seed << " maps=" << maps
     << " reducers=" << reducers << (succeeded ? " OK" : " FAILED") << "\n";
  os << "  groups=" << groups << " canonical_bytes=" << canonical.size() << "\n";
  os << "  map: spills=" << shuffle.map_spills << " spill_bytes="
     << static_cast<long long>(shuffle.map_spill_bytes)
     << " redrives=" << shuffle.map_redrives << "\n";
  os << "  shuffle: fetches=" << shuffle.fetches << " bytes="
     << static_cast<long long>(shuffle.fetched_bytes)
     << " corrupt_fetches=" << shuffle.corrupt_fetches
     << " sort_runs=" << shuffle.sort_runs_spilled << "\n";
  os << "  cost: shuffle_storage=$" << shuffle.shuffle_storage_cost << "\n";
  os << "  sched: map(local=" << map_stats.local_assignments
     << " remote=" << map_stats.remote_assignments
     << " spec=" << map_stats.speculative_assignments << ") reduce(spec="
     << reduce_stats.speculative_assignments << ")\n";
  if (determinism_verified) {
    os << "  determinism: " << (determinism_ok ? "byte-identical across cluster shapes" : "MISMATCH")
       << "\n";
  }
  os << "  elapsed=" << elapsed << "s";
  if (!trace_json.empty()) os << " trace_spans=" << trace_spans;
  os << "\n";
  return os.str();
}

}  // namespace ppc::sim
