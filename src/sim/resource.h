// Counted resource with FIFO waiters, in simulated time.
//
// Models contended capacity inside the simulation — e.g. the per-node map
// slots of the MapReduce engine or a shared download link. A requester asks
// for one unit; when capacity is available its continuation runs immediately
// (same sim time), otherwise it queues.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>

#include "sim/simulator.h"

namespace ppc::sim {

class Resource {
 public:
  /// `capacity` concurrent holders (must be >= 1).
  Resource(Simulator& sim, std::size_t capacity);

  /// Requests one unit. `on_granted` runs (via the simulator, at the current
  /// or later sim time) once a unit is available. FIFO among waiters.
  void acquire(EventFn on_granted);

  /// Returns one unit; wakes the longest-waiting requester, if any.
  void release();

  std::size_t capacity() const { return capacity_; }
  std::size_t in_use() const { return in_use_; }
  std::size_t queued() const { return waiters_.size(); }

 private:
  Simulator& sim_;
  std::size_t capacity_;
  std::size_t in_use_ = 0;
  std::deque<EventFn> waiters_;
};

}  // namespace ppc::sim
