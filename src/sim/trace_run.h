// Traced end-to-end runs — the timeline evidence behind the paper's figures.
//
// run_traced_job() executes one small Cap3 / BLAST / GTM job on any of the
// four substrates with an enabled runtime::Tracer attached to every layer
// (queues, blob store, lifecycle, supervisor, engine slots), then returns the
// three exports: Chrome trace_event JSON (load it in ui.perfetto.dev), the
// per-task summary table, and the per-worker LoadReport.
//
// The default workload is deliberately inhomogeneous (see AppJob `skew`):
// later files cost more, which is exactly the regime where §4.2 shows
// DryadLINQ's static node-level partitioning stranding nodes in the tail
// while Hadoop / Classic Cloud's dynamic global queues stay balanced
// (Figs 12-15). imbalance_comparison() renders that gap — per-substrate
// makespan, busy-time imbalance, and worst idle-tail fraction — from real
// span data of four runs of the same job.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/units.h"
#include "runtime/tracer.h"

namespace ppc::sim {

struct TraceRunConfig {
  /// "classiccloud", "azuremr", "mapreduce", or "dryad".
  std::string substrate = "classiccloud";
  /// "cap3", "blast", or "gtm".
  std::string app = "cap3";
  int num_files = 12;
  /// Worker threads (queue substrates) / cluster nodes at one slot each
  /// (mapreduce, dryad — one slot so a track maps 1:1 to a node).
  int num_workers = 4;
  /// Per-file work inhomogeneity (AppJob skew): the last file costs
  /// (1 + skew)x the first. 0 = homogeneous.
  double skew = 3.0;
  /// Storage backend behind the blob-backed substrates (classiccloud,
  /// azuremr): "object", "sharedfs", or "parallelfs". The hook sites are
  /// identical across backends, so the timeline taxonomy is unchanged.
  /// MapReduce/Dryad substrates keep their local data planes.
  std::string storage = "object";
  /// classiccloud: give each worker a content-addressed block cache, so the
  /// job's shared files (BLAST database, GTM training matrix) are fetched
  /// once per worker. Cache hits/misses appear as "cache.*" spans.
  bool enable_cache = false;
  /// Wall-clock budget; the run fails rather than hangs.
  Seconds run_timeout = 60.0;
  /// > 0: attach a runtime::Monitor (own sampler thread, wall clock) to a
  /// registry shared by the run's engine — per-worker busy gauges and
  /// engine counters become time series, dumped into
  /// TraceRunReport::monitor_json (`ppcloud trace --monitor-dir`).
  Seconds monitor_period = 0.0;
};

struct TraceRunReport {
  std::string substrate;
  std::string app;
  bool succeeded = false;
  /// Input files whose outputs were produced and verified present.
  std::size_t files_processed = 0;
  std::size_t spans = 0;

  /// Tracer::to_chrome_json() — Perfetto-loadable timeline.
  std::string chrome_json;
  /// Tracer::summary_table() — fixed-width per-task rollup.
  std::string summary_table;
  /// Tracer::load_report() — per-worker busy / idle-tail + compute
  /// distribution.
  runtime::LoadReport load;

  /// Monitor::to_json(); empty unless TraceRunConfig::monitor_period > 0.
  std::string monitor_json;

  std::vector<std::string> failures;

  /// Load report + summary table, headed by the run's identity.
  std::string to_text() const;
};

/// Runs one traced job. Configuration errors (unknown substrate/app) throw;
/// job-level failures land in the report.
TraceRunReport run_traced_job(const TraceRunConfig& config);

/// Renders the static-vs-dynamic scheduling comparison across reports of the
/// same job on different substrates: one row per substrate with makespan,
/// busy-imbalance (max/mean worker busy) and the worst per-worker idle-tail
/// fraction.
std::string imbalance_comparison(const std::vector<TraceRunReport>& reports);

}  // namespace ppc::sim
