// Canned per-file workloads over the three paper applications (Cap3, BLAST,
// GTM), shared by the chaos campaign and the trace runner. Input generation
// is seeded with a fixed constant so a job is identical across the runs that
// compare against each other (fault-free baseline vs chaos run; the four
// substrates of a trace sweep).
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace ppc::sim {

/// A campaign's workload: (name, bytes) input files plus the per-file
/// "executable".
struct AppJob {
  std::vector<std::pair<std::string, std::string>> files;
  /// Job-wide reference data every task reads besides its own input — the
  /// BLAST sequence database, the GTM training matrix (Cap3 has none).
  /// Substrates with a worker block cache upload these once and fetch them
  /// content-addressed, once per worker instead of once per task.
  std::vector<std::pair<std::string, std::string>> shared_files;
  std::function<std::string(const std::string& name, const std::string& data)> fn;
};

/// Builds `num_files` inputs for `app` ("cap3", "blast", "gtm").
///
/// `skew` controls inhomogeneity: 0.0 (default) gives every file the same
/// nominal work; skew s scales file i's work by 1 + s * i / (n - 1), i.e. the
/// last file costs (1 + s)x the first. This reproduces the paper's
/// inhomogeneous-data experiments (§4.2, Figs 12-15), where static
/// partitioning loses to dynamic scheduling precisely because per-file cost
/// varies. Throws InvalidArgument on an unknown app.
AppJob make_app_job(const std::string& app, int num_files, double skew = 0.0);

}  // namespace ppc::sim
