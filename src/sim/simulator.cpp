#include "sim/simulator.h"

#include "common/error.h"

namespace ppc::sim {

Simulator::Simulator() : clock_(std::make_shared<ppc::ManualClock>(0.0)) {}

EventId Simulator::at(Seconds t, EventFn fn) {
  PPC_REQUIRE(t >= now(), "cannot schedule an event in the past");
  PPC_REQUIRE(fn != nullptr, "null event function");
  const std::uint64_t id = next_id_++;
  heap_.push(Scheduled{t, next_seq_++, id});
  handlers_.emplace(id, std::move(fn));
  return EventId{id};
}

EventId Simulator::after(Seconds delay, EventFn fn) {
  PPC_REQUIRE(delay >= 0.0, "negative delay");
  return at(now() + delay, std::move(fn));
}

void Simulator::cancel(EventId id) {
  if (id.valid()) handlers_.erase(id.value);
}

bool Simulator::step() {
  while (!heap_.empty()) {
    const Scheduled next = heap_.top();
    heap_.pop();
    auto it = handlers_.find(next.id);
    if (it == handlers_.end()) continue;  // cancelled
    EventFn fn = std::move(it->second);
    handlers_.erase(it);
    clock_->set(next.time);
    ++executed_;
    fn();
    return true;
  }
  return false;
}

void Simulator::run(std::uint64_t max_events) {
  for (std::uint64_t i = 0; i < max_events; ++i) {
    if (!step()) return;
  }
}

void Simulator::run_until(Seconds t_end) {
  while (!heap_.empty()) {
    // Skip cancelled heads so we do not advance time for them.
    if (handlers_.find(heap_.top().id) == handlers_.end()) {
      heap_.pop();
      continue;
    }
    if (heap_.top().time > t_end) return;
    step();
  }
}

std::uint64_t Simulator::events_pending() const { return handlers_.size(); }

}  // namespace ppc::sim
