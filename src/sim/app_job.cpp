#include "sim/app_job.h"

#include <cmath>
#include <memory>

#include "apps/blast/aligner.h"
#include "apps/cap3/assembler.h"
#include "apps/cap3/read_simulator.h"
#include "apps/gtm/data_gen.h"
#include "apps/gtm/gtm.h"
#include "common/error.h"
#include "common/rng.h"

namespace ppc::sim {

namespace {

/// Work multiplier for file i of n under the requested skew.
int scaled(int base, int i, int n, double skew) {
  const double f = n <= 1 ? 0.0 : static_cast<double>(i) / static_cast<double>(n - 1);
  const int value = static_cast<int>(std::lround(base * (1.0 + skew * f)));
  return value < 1 ? 1 : value;
}

}  // namespace

AppJob make_app_job(const std::string& app, int num_files, double skew) {
  PPC_REQUIRE(num_files >= 1, "app job needs at least one input file");
  PPC_REQUIRE(skew >= 0.0, "skew must be >= 0");
  AppJob job;
  ppc::Rng rng(0xC0FFEE);
  if (app == "cap3") {
    for (int i = 0; i < num_files; ++i) {
      job.files.emplace_back(
          "cap3-" + std::to_string(i) + ".fa",
          apps::cap3::make_cap3_input(scaled(24, i, num_files, skew), rng));
    }
    job.fn = [](const std::string&, const std::string& input) {
      apps::cap3::AssemblerConfig config;
      config.min_overlap = 30;
      return apps::cap3::assemble_fasta_file(input, config);
    };
  } else if (app == "blast") {
    apps::blast::DbGenConfig db_config;
    db_config.num_sequences = 24;
    const auto db = apps::blast::SequenceDb::generate(db_config, rng);
    auto index = std::make_shared<apps::blast::BlastIndex>(db);
    // The database rides the data plane as shared reference data (the NR
    // database of §5.1); the executor keeps its prebuilt index so outputs
    // stay byte-identical whether or not a cache serves the download.
    job.shared_files.emplace_back("blast-db.fa", db.to_fasta());
    for (int i = 0; i < num_files; ++i) {
      job.files.emplace_back(
          "blast-" + std::to_string(i) + ".fa",
          apps::blast::make_query_file(db, scaled(4, i, num_files, skew), 0.7, rng));
    }
    job.fn = [index](const std::string&, const std::string& input) {
      return index->search_file(input);
    };
  } else if (app == "gtm") {
    apps::gtm::ClusterDataConfig data_config;
    data_config.num_points = 60;
    data_config.dims = 6;
    const auto samples = apps::gtm::generate_clustered(data_config, rng);
    apps::gtm::GtmConfig gtm_config;
    gtm_config.latent_grid = 4;
    gtm_config.rbf_grid = 3;
    gtm_config.em_iterations = 4;
    auto model = std::make_shared<apps::gtm::GtmModel>(
        apps::gtm::GtmModel::train(samples, gtm_config, rng));
    // The training matrix is the GTM job's shared reference data (§6.2).
    job.shared_files.emplace_back("gtm-train.csv", apps::gtm::matrix_to_csv(samples));
    for (int i = 0; i < num_files; ++i) {
      data_config.num_points = scaled(12, i, num_files, skew);
      job.files.emplace_back(
          "gtm-" + std::to_string(i) + ".csv",
          apps::gtm::matrix_to_csv(apps::gtm::generate_clustered(data_config, rng)));
    }
    job.fn = [model](const std::string&, const std::string& input) {
      return apps::gtm::interpolate_csv_file(*model, input);
    };
  } else {
    throw ppc::InvalidArgument("unknown app: " + app);
  }
  return job;
}

}  // namespace ppc::sim
