// Deterministic monitored DES runs behind `ppcloud monitor`.
//
// Drives one skew-scaled job through a discrete-event substrate driver with
// a runtime::Monitor attached on the *simulation* clock: queue depth,
// in-flight count, worker utilization, idle-with-backlog, storage bytes/s
// and cost-rate are sampled every `period` sim-seconds, and the configured
// alarms are evaluated at each tick. Because the whole run — workload, event
// order, sample times — derives from the seed, the same config produces
// byte-identical monitor JSON on every invocation; CI diffs two runs to
// assert exactly that.
//
// The optional stall injection (Classic Cloud family) parks one worker for
// a window mid-run; the backlog it fails to drain keeps
// workers.idle_with_backlog positive for the window, which is what the
// default stall alarm watches. A fault-free run must fire no alarms.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/units.h"
#include "runtime/monitor.h"

namespace ppc::sim {

struct MonitorRunConfig {
  /// "classiccloud", "azuremr", "mapreduce", or "dryad" ("all" is expanded
  /// by the CLI, one report per substrate).
  std::string substrate = "classiccloud";
  /// "cap3", "blast", or "gtm".
  std::string app = "cap3";
  int num_files = 32;
  int instances = 2;
  int workers_per_instance = 4;
  /// Per-file work skew, matching make_app_job: file i costs
  /// (1 + skew * i / (n-1))x the first. Skew makes the drain tail visible
  /// in the utilization series, the paper's inhomogeneity story.
  double skew = 2.0;
  unsigned seed = 42;

  /// Monitor sample period in sim-seconds.
  Seconds period = 5.0;
  std::size_t capacity = 4096;
  /// Alarm rules in parse_alarm grammar; empty = default_alarm_rules().
  std::vector<std::string> alarms;

  /// Stall injection (classiccloud/azuremr only; see SimRunParams).
  int stall_worker = -1;
  Seconds stall_at = -1.0;
  Seconds stall_duration = 0.0;
};

struct MonitorRunReport {
  std::string substrate;
  std::string framework;  // driver-reported name, e.g. "ClassicCloud-EC2"
  Seconds makespan = 0.0;
  int tasks = 0;
  int completed = 0;
  std::uint64_t samples = 0;
  bool degraded = false;
  std::vector<runtime::AlarmFiring> firings;

  /// Monitor::to_json() — deterministic; CI's byte-diff artifact.
  std::string monitor_json;
  /// Monitor::dashboard() — the sparkline table `ppcloud monitor` prints.
  std::string dashboard;
  /// Monitor::to_prometheus() — latest-sample text exposition.
  std::string prometheus;

  /// Multi-line terminal summary (header + dashboard + alarm verdict).
  std::string to_text() const;
};

/// The out-of-the-box alarm set: the worker-stall rule
/// "stall: workers.idle_with_backlog > 0.5 for 45s" and the autoscaler
/// oscillation rule "fleet.thrash: fleet.scale_events.rate > 0.05 for 60s"
/// (inert unless an elastic driver registers the fleet probes). Exposed so
/// docs and tests quote the real thing.
std::vector<std::string> default_alarm_rules();

/// Runs one monitored job. Throws InvalidArgument on unknown
/// substrate/app/alarm grammar; run-level problems (incomplete job, fired
/// alarms) land in the report.
MonitorRunReport run_monitored_job(const MonitorRunConfig& config);

}  // namespace ppc::sim
