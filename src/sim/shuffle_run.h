// Shuffle workloads and the `ppcloud shuffle` run harness.
//
// Two biomedical workloads exercise the full MapReduce pipeline — the first
// group-by shapes this repo can express (the map-only substrates of the
// paper cannot):
//  * "histogram" — BLAST hit histogram: map searches each query against the
//    shared database and emits (best-hit subject, query id); reduce counts
//    the queries landing on each database sequence. The per-subject hit
//    histogram is §5's result table, computed as a real group-by instead of
//    a post-processing script.
//  * "dedup" — sequence dedup: reads are keyed by their exact sequence;
//    reduce keeps the first occurrence as the canonical representative and
//    counts the copies — a shuffle join of every input file against itself.
//
// Input generation is seeded, so one seed defines one job corpus; the
// harness runs the job on the real-thread engine and (optionally) verifies
// the determinism contract by re-running with a different cluster shape and
// comparing canonical output bytes.
#pragma once

#include <memory>
#include <string>

#include "mapreduce/shuffle_job.h"

namespace ppc::sim {

/// A shuffle campaign's workload: seeded input files plus the user map and
/// reduce functions.
struct ShuffleAppJob {
  std::vector<std::pair<std::string, std::string>> files;
  mapreduce::MapKvFn map;
  mapreduce::ReduceFn reduce;
};

/// Builds the "histogram" or "dedup" workload over `num_files` input files.
/// One (app, num_files, seed) triple is one job corpus — byte-identical
/// across every run that compares against another. Throws InvalidArgument
/// on an unknown app.
ShuffleAppJob make_shuffle_app(const std::string& app, int num_files,
                               std::uint64_t seed = 0xC0FFEE);

inline bool is_shuffle_app(const std::string& app) {
  return app == "histogram" || app == "dedup";
}

struct ShuffleRunConfig {
  std::string app = "histogram";
  std::uint64_t seed = 1;  // input-corpus seed
  int num_files = 6;
  int num_nodes = 3;
  int slots_per_node = 2;
  int num_reducers = 3;
  Bytes map_spill_budget = 8.0 * 1024;   // small: real jobs here are small
  Bytes sort_memory_budget = 32.0 * 1024;
  /// Re-run the job with a different cluster shape (nodes/slots/reducer
  /// budget) and assert canonical output bytes are identical.
  bool verify_determinism = false;
  /// > 0: attach a tracer and keep the Chrome JSON in the report.
  bool trace = false;
  runtime::FaultInjector* faults = nullptr;
  std::shared_ptr<runtime::MetricsRegistry> metrics;
};

struct ShuffleRunReport {
  bool succeeded = false;
  std::string app;
  std::uint64_t seed = 0;
  int maps = 0;
  int reducers = 0;
  std::size_t groups = 0;           // distinct keys in the canonical output
  std::string canonical;            // encode_canonical() bytes
  bool determinism_verified = false;
  bool determinism_ok = false;
  mapreduce::ShuffleStats shuffle;
  mapreduce::TaskScheduler::Stats map_stats;
  mapreduce::TaskScheduler::Stats reduce_stats;
  Seconds elapsed = 0.0;
  std::string trace_json;           // empty unless config.trace
  std::size_t trace_spans = 0;

  std::string to_text() const;
};

/// Runs one shuffle job on the real-thread engine (fresh MiniHdfs staged
/// with the seeded corpus). Throws on configuration errors.
ShuffleRunReport run_shuffle_job(const ShuffleRunConfig& config);

}  // namespace ppc::sim
