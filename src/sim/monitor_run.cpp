#include "sim/monitor_run.h"

#include <sstream>

#include "cloud/instance_types.h"
#include "common/error.h"
#include "core/drivers.h"
#include "core/exec_model.h"
#include "core/workload.h"

namespace ppc::sim {

namespace {

core::Workload build_workload(const MonitorRunConfig& config) {
  core::Workload w;
  if (config.app == "cap3") {
    w = core::make_cap3_workload(config.num_files, 458);
  } else if (config.app == "blast") {
    w = core::make_blast_workload(config.num_files, 100, config.seed);
  } else if (config.app == "gtm") {
    w = core::make_gtm_workload(config.num_files);
  } else {
    throw ppc::InvalidArgument("unknown app: " + config.app);
  }
  // Same skew law as make_app_job: file i costs (1 + skew * i/(n-1))x the
  // first, so the drain tail the dashboard shows matches the traced runs.
  const std::size_t n = w.tasks.size();
  if (config.skew > 0.0 && n > 1) {
    for (std::size_t i = 0; i < n; ++i) {
      w.tasks[i].work_factor *=
          1.0 + config.skew * static_cast<double>(i) / static_cast<double>(n - 1);
    }
  }
  return w;
}

core::Deployment build_deployment(const MonitorRunConfig& config) {
  const cloud::InstanceType& type =
      config.substrate == "classiccloud" ? cloud::ec2_hcxl()
      : config.substrate == "azuremr"    ? cloud::azure_large()
      : config.substrate == "mapreduce"  ? cloud::bare_metal_idataplex_node()
                                         : cloud::bare_metal_hpcs_node();
  return core::make_deployment(type, config.instances, config.workers_per_instance);
}

}  // namespace

std::vector<std::string> default_alarm_rules() {
  // Sustain (45s) is many sample periods and far beyond any fault-free idle
  // sliver (poll latency, start-up stagger), but well inside a real stall
  // window — flapping just under it never fires.
  //
  // The thrash rule watches the elastic drivers' fleet.scale_events.rate
  // probe: a well-hysteresed autoscaler (cooldown 120s) tops out around one
  // scale event per minute (~0.017/s) even during ramp-up or a post-storm
  // refill, so a sustained 0.05/s means the scale-out/scale-in thresholds
  // overlap and the fleet is oscillating. Alarms on absent series never
  // fire, so the rule is inert for static-fleet runs.
  return {"stall: workers.idle_with_backlog > 0.5 for 45s",
          "fleet.thrash: fleet.scale_events.rate > 0.05 for 60s"};
}

MonitorRunReport run_monitored_job(const MonitorRunConfig& config) {
  PPC_REQUIRE(config.substrate == "classiccloud" || config.substrate == "azuremr" ||
                  config.substrate == "mapreduce" || config.substrate == "dryad",
              "unknown substrate: " + config.substrate);
  const core::Workload workload = build_workload(config);
  const core::Deployment deployment = build_deployment(config);
  const core::ExecutionModel model(workload.app);

  runtime::MetricsRegistry registry;
  runtime::MonitorConfig mc;
  mc.period = config.period;
  mc.capacity = config.capacity;
  // The registry only fills when the driver publishes its end-of-run
  // totals, after the last tick — scraping it would add all-zero series.
  // The probes the driver registers carry every live signal.
  mc.scrape_registry = false;
  runtime::Monitor monitor(registry, mc);
  const std::vector<std::string> rules =
      config.alarms.empty() ? default_alarm_rules() : config.alarms;
  for (const std::string& rule : rules) monitor.add_alarm(runtime::parse_alarm(rule));

  core::SimRunParams params;
  params.seed = config.seed;
  params.monitor = &monitor;
  params.metrics = &registry;
  params.stall_worker = config.stall_worker;
  params.stall_at = config.stall_at;
  params.stall_duration = config.stall_duration;

  core::RunResult result;
  if (config.substrate == "mapreduce") {
    result = core::run_mapreduce_sim(workload, deployment, model, params);
  } else if (config.substrate == "dryad") {
    result = core::run_dryad_sim(workload, deployment, model, params);
  } else {
    result = core::run_classic_cloud_sim(workload, deployment, model, params);
  }

  MonitorRunReport report;
  report.substrate = config.substrate;
  report.framework = result.framework;
  report.makespan = result.makespan;
  report.tasks = result.tasks;
  report.completed = result.completed;
  report.samples = monitor.samples();
  report.degraded = monitor.degraded();
  report.firings = monitor.firings();
  report.monitor_json = monitor.to_json();
  report.dashboard = monitor.dashboard();
  report.prometheus = monitor.to_prometheus();
  return report;
}

std::string MonitorRunReport::to_text() const {
  std::ostringstream os;
  char line[256];
  std::snprintf(line, sizeof(line),
                "=== monitor: %s (%s) — %d/%d tasks, makespan %.1fs, %llu samples ===\n",
                substrate.c_str(), framework.c_str(), completed, tasks, makespan,
                static_cast<unsigned long long>(samples));
  os << line << dashboard;
  os << (degraded ? "verdict: DEGRADED\n" : "verdict: healthy\n");
  return os.str();
}

}  // namespace ppc::sim
