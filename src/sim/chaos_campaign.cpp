#include "sim/chaos_campaign.h"

#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <thread>
#include <utility>

#include "azuremr/runtime.h"
#include "classiccloud/job_client.h"
#include "cloudq/queue_service.h"
#include "common/clock.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "mapreduce/job.h"
#include "minihdfs/mini_hdfs.h"
#include "runtime/fault_injector.h"
#include "runtime/metrics.h"
#include "runtime/monitor.h"
#include "runtime/tracer.h"
#include "mapreduce/shuffle_job.h"
#include "runtime/worker_supervisor.h"
#include "sim/app_job.h"
#include "sim/shuffle_run.h"
#include "storage/fs_backends.h"

namespace ppc::sim {

namespace {

using Outputs = std::map<std::string, std::string>;

/// The guaranteed floor (one rule per fault action the substrate can
/// absorb) plus seed-sampled extras. Sites that would break the *client*
/// rather than a worker — send/put errors, corruption that could land on
/// the driver's own final reads — are deliberately not armed.
runtime::FaultPlan make_plan(const ChaosConfig& cfg) {
  using runtime::FaultAction;
  runtime::FaultPlan plan;
  plan.seed = cfg.seed;
  struct MenuItem {
    std::string site;
    FaultAction action;
  };
  std::vector<MenuItem> menu;
  if (cfg.substrate == "classiccloud") {
    const std::string qrecv = "cloudq.chaos-cc-tasks.receive";
    const std::string qdel = "cloudq.chaos-cc-tasks.delete";
    const std::string bget = "blobstore.job.get";
    plan.crash(classiccloud::sites::kAfterExecute);
    plan.delay(qrecv, 0.005, 3);
    plan.error(qdel, "injected delete failure", 1);
    plan.error(bget, "injected get failure", 2);
    plan.corrupt(qrecv, 1);
    plan.corrupt(bget, 1);
    menu = {{qrecv, FaultAction::kDelay},
            {qrecv, FaultAction::kError},
            {qrecv, FaultAction::kCorrupt},
            {qdel, FaultAction::kError},
            {bget, FaultAction::kDelay},
            {bget, FaultAction::kError},
            {classiccloud::sites::kAfterReceive, FaultAction::kCrash},
            {classiccloud::sites::kAfterUpload, FaultAction::kCrash}};
  } else if (cfg.substrate == "azuremr") {
    const std::string qrecv = "cloudq.chaos-az-mr-tasks.receive";
    const std::string qdel = "cloudq.chaos-az-mr-tasks.delete";
    const std::string bget = "blobstore.chaos-az.get";
    const std::string blist = "blobstore.chaos-az.list";
    plan.crash(azuremr::sites::kAfterMap);
    plan.delay(qrecv, 0.005, 3);
    plan.error(qdel, "injected delete failure", 1);
    plan.error(bget, "injected get failure", 2);
    plan.error(blist, "injected list failure", 1);
    plan.corrupt(qrecv, 1);
    plan.corrupt(bget, 1);
    menu = {{qrecv, FaultAction::kDelay},
            {qrecv, FaultAction::kError},
            {qrecv, FaultAction::kCorrupt},
            {qdel, FaultAction::kError},
            {bget, FaultAction::kDelay},
            {bget, FaultAction::kError},
            {blist, FaultAction::kError},
            {azuremr::sites::kAfterReduce, FaultAction::kCrash}};
  } else if (cfg.substrate == "mapreduce" && is_shuffle_app(cfg.app)) {
    // Full-pipeline chaos: faults land on every shuffle stage. The crash in
    // the kMapRegister window leaves durable-but-unregistered spills (the
    // map-output-loss shape), the fetch/spill errors burn attempts on both
    // sides, and the corrupt rule on the shuffle bucket's gets exercises
    // checksum detection + redrive.
    const std::string mapsite = mapreduce::sites::kMapAttempt;
    const std::string spill = mapreduce::sites::kSpill;
    const std::string fetch = mapreduce::sites::kFetch;
    const std::string reg = mapreduce::sites::kMapRegister;
    const std::string red = mapreduce::sites::kReduceAttempt;
    const std::string bget = "blobstore.shuffle.get";
    plan.crash(mapsite);
    plan.crash(reg);
    plan.crash(red);
    plan.delay(fetch, 0.005, 3);
    plan.error(spill, "injected spill failure", 1);
    plan.error(fetch, "injected fetch failure", 1);
    plan.corrupt(bget, 2);
    menu = {{fetch, FaultAction::kDelay},  {fetch, FaultAction::kError},
            {spill, FaultAction::kError},  {mapsite, FaultAction::kCrash},
            {red, FaultAction::kCrash},    {bget, FaultAction::kCorrupt}};
  } else if (cfg.substrate == "mapreduce") {
    const std::string site = mapreduce::sites::kMapAttempt;
    plan.crash(site);
    plan.delay(site, 0.005, 3);
    plan.error(site, "injected attempt failure", 2);
    menu = {{site, FaultAction::kDelay},
            {site, FaultAction::kError},
            {site, FaultAction::kCrash}};
  } else {
    throw ppc::InvalidArgument("unknown chaos substrate: " + cfg.substrate);
  }

  ppc::Rng rng(cfg.seed ^ ppc::fnv1a64(cfg.substrate));
  const int extras = static_cast<int>(rng.uniform_int(2, 4));
  for (int i = 0; i < extras; ++i) {
    const MenuItem& item = menu[rng.index(menu.size())];
    const double p = rng.uniform(0.05, 0.35);
    const int budget = static_cast<int>(rng.uniform_int(1, 3));
    switch (item.action) {
      case FaultAction::kDelay:
        plan.delay(item.site, rng.uniform(0.001, 0.008), budget, p);
        break;
      case FaultAction::kError:
        plan.error(item.site, "sampled chaos error", budget, p);
        break;
      case FaultAction::kCorrupt:
        plan.corrupt(item.site, budget, p);
        break;
      case FaultAction::kCrash:
        plan.crash(item.site, 1, p);
        break;
    }
  }

  // Storm rules go AFTER the sampled extras so arming a storm never shifts
  // the extras' RNG stream — a seed's base plan is the same with the storm
  // on or off.
  if (cfg.revocation_storm) {
    const std::string storm_site =
        cfg.substrate == "classiccloud" ? classiccloud::sites::kAfterReceive
        : cfg.substrate == "azuremr"    ? azuremr::sites::kAfterMap
                                        : mapreduce::sites::kMapAttempt;
    // The budget (2 kills) bounds the storm; the per-firing probability only
    // spreads the kills across workers. On a 4-task job a 0.5 coin can miss
    // every firing and void the coverage check, so storms fire near-surely.
    plan.revoke_spot(storm_site, /*budget=*/2, /*probability=*/0.9);
  }
  return plan;
}

/// Shared state of one run. `faults == nullptr` marks the baseline run.
struct RunContext {
  runtime::FaultInjector* faults = nullptr;
  const runtime::FaultPlan* plan = nullptr;
  std::shared_ptr<runtime::MetricsRegistry> metrics;
  /// Enabled tracer for the chaos run (null on the baseline): the resulting
  /// Chrome JSON is the campaign's failure artifact — every injected fault,
  /// redelivery, DLQ parking, and supervisor reap shows up as span data.
  runtime::Tracer* tracer = nullptr;
  ChaosReport* report = nullptr;
  std::vector<std::string>* failures = nullptr;
  const char* label = "baseline";
};

void fail(RunContext& ctx, const std::string& what) {
  ctx.failures->push_back(std::string(ctx.label) + ": " + what);
}

bool wait_until(const std::function<bool()>& pred, Seconds timeout) {
  ppc::SystemClock clock;
  while (clock.now() < timeout) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

/// Snapshots the injector's totals into the report, then disarms it so the
/// driver's own post-run reads (output collection) run fault-free.
void harvest_faults(RunContext& ctx) {
  if (ctx.faults == nullptr) return;
  ctx.report->crashes = ctx.faults->total_crashes();
  ctx.report->delays = ctx.faults->total_delays();
  ctx.report->errors = ctx.faults->total_errors();
  ctx.report->corruptions = ctx.faults->total_corruptions();
  ctx.report->spot_revocations = ctx.faults->total_revocations();
  ctx.faults->reset();
}

/// Folds the chaos run's worker-scoped lifecycle counters and the
/// supervisor's recovery metrics into the report (queue substrates).
void harvest_registry(RunContext& ctx) {
  const runtime::MetricsRegistry& m = *ctx.metrics;
  ctx.report->redeliveries = m.sum_counters(".redeliveries");
  ctx.report->deletes_failed = m.sum_counters(".deletes_failed");
  ctx.report->corrupt_deliveries = m.sum_counters(".corrupt_deliveries");
  ctx.report->poison_tasks = m.sum_counters(".poison_tasks");
  ctx.report->supervisor_restarts = m.counter_value("supervisor.restarts");
  const auto recovery = ctx.metrics->histogram("supervisor.recovery_seconds").snapshot();
  if (recovery.count() > 0) {
    ctx.report->recovery_p50 = recovery.percentile(50.0);
    ctx.report->recovery_max = recovery.max();
  }
}

Outputs run_classiccloud(const ChaosConfig& cfg, const AppJob& app, RunContext& ctx) {
  const bool chaos = ctx.faults != nullptr;
  auto clock = std::make_shared<ppc::SystemClock>();
  const auto store_ptr = storage::make_backend(storage::parse_storage_kind(cfg.storage), clock,
                                               ppc::Rng(cfg.seed ^ 0xCAFE));
  storage::StorageBackend& store = *store_ptr;
  cloudq::QueueService queues(clock);
  const std::string job = "chaos-cc";
  std::shared_ptr<cloudq::MessageQueue> task_queue;
  if (chaos) {
    store.set_fault_hook(ctx.faults);
    queues.set_fault_hook(ctx.faults);
    store.set_tracer(ctx.tracer);
    queues.set_tracer(ctx.tracer);
    task_queue = queues.create_queue_with_dlq(job + "-tasks", cfg.max_receive_count);
  }
  classiccloud::JobClient client(store, queues, job);
  if (!chaos) task_queue = client.task_queue();
  client.submit(app.files, app.shared_files);
  if (chaos) {
    // Poison sentinel: an undecodable task body. Every delivery fails, so
    // the lifecycle must dead-letter it after max_receive_count deliveries.
    task_queue->send("poison-task: not a decodable task spec");
    ctx.faults->arm_plan(*ctx.plan);
  }

  classiccloud::TaskExecutor executor = [&app](const classiccloud::TaskSpec& task,
                                               const std::string& input) {
    return app.fn(task.task_id, input);
  };
  classiccloud::WorkerConfig wc;
  wc.poll_interval = 0.001;
  wc.visibility_timeout = cfg.visibility_timeout;
  wc.abandon_visibility = 0.02;
  wc.faults = ctx.faults;
  wc.metrics = ctx.metrics;
  wc.tracer = ctx.tracer;
  wc.enable_cache = cfg.enable_cache;
  runtime::SupervisorConfig sc;
  sc.num_workers = cfg.num_workers;
  sc.id_prefix = job + "-w";
  sc.metrics = ctx.metrics;
  sc.tracer = ctx.tracer;
  sc.max_restarts_per_slot = 8;
  sc.initial_backoff = 0.01;
  sc.watch_interval = 0.002;
  runtime::WorkerSupervisor supervisor(
      [&](const std::string& worker_id, int /*incarnation*/) {
        auto worker = std::make_shared<classiccloud::Worker>(
            worker_id, store, client.task_queue(), client.monitor_queue(), executor, wc);
        worker->start();
        return runtime::SupervisedWorker{worker, &worker->lifecycle()};
      },
      sc);
  supervisor.start();

  if (!client.wait_for_completion(cfg.run_timeout)) {
    fail(ctx, "classiccloud job did not complete within " +
                  ppc::format_fixed(cfg.run_timeout, 0) + "s");
  }
  if (chaos &&
      !wait_until([&] { return task_queue->dlq_depth() >= 1; }, 20.0)) {
    fail(ctx, "poison task never reached the dead-letter queue");
  }
  supervisor.stop();
  harvest_faults(ctx);

  Outputs outputs;
  for (const auto& task : client.tasks()) {
    std::shared_ptr<const std::string> out;
    for (int attempt = 0; attempt < 2000 && !out; ++attempt) {
      out = client.fetch_output(task);
      if (!out) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (!out) {
      fail(ctx, "output never became visible: " + task.task_id);
      continue;
    }
    outputs[task.input_key.substr(std::string("input/").size())] = *out;
  }
  if (chaos) {
    harvest_registry(ctx);
    const auto meter = task_queue->meter();
    ctx.report->stale_deletes = static_cast<std::int64_t>(meter.stale_deletes);
    ctx.report->dlq_entries = static_cast<std::int64_t>(meter.dlq_moves);
  }
  return outputs;
}

Outputs run_azuremr(const ChaosConfig& cfg, const AppJob& app, RunContext& ctx) {
  const bool chaos = ctx.faults != nullptr;
  auto clock = std::make_shared<ppc::SystemClock>();
  const auto store_ptr = storage::make_backend(storage::parse_storage_kind(cfg.storage), clock,
                                               ppc::Rng(cfg.seed ^ 0xAC));
  storage::StorageBackend& store = *store_ptr;
  cloudq::QueueService queues(clock);
  const std::string job = "chaos-az";
  std::shared_ptr<cloudq::MessageQueue> task_queue;
  if (chaos) {
    store.set_fault_hook(ctx.faults);
    queues.set_fault_hook(ctx.faults);
    store.set_tracer(ctx.tracer);
    queues.set_tracer(ctx.tracer);
    task_queue = queues.create_queue_with_dlq(job + "-mr-tasks", cfg.max_receive_count);
    // Poison sentinel: a task with an op no worker implements.
    task_queue->send(
        ppc::encode_kv({{"op", "poison"}, {"iter", "0"}, {"input", "none"}}));
    ctx.faults->arm_plan(*ctx.plan);
  }

  azuremr::MrWorkerConfig wc;
  wc.poll_interval = 0.001;
  wc.visibility_timeout = cfg.visibility_timeout;
  wc.abandon_visibility = 0.02;
  wc.task_max_receive_count = chaos ? cfg.max_receive_count : 0;
  wc.faults = ctx.faults;
  wc.metrics = ctx.metrics;
  wc.tracer = ctx.tracer;
  azuremr::AzureMapReduce mr(store, queues, cfg.num_workers, wc);
  mr.supervisor_config.tracer = ctx.tracer;
  mr.supervisor_config.max_restarts_per_slot = 8;
  mr.supervisor_config.initial_backoff = 0.01;
  mr.supervisor_config.watch_interval = 0.002;

  azuremr::JobSpec spec;
  spec.job_id = job;
  spec.inputs = app.files;
  spec.num_reduce_tasks = 2;
  spec.stage_timeout = cfg.run_timeout;
  const auto fn = app.fn;
  spec.map = [fn](const std::string& name, const std::string& data, const std::string&) {
    return std::vector<azuremr::KeyValue>{{name, fn(name, data)}};
  };
  spec.reduce = [](const std::string&, const std::vector<std::string>& values) {
    return values.front();
  };

  const auto result = mr.run(spec);
  if (!result.succeeded) fail(ctx, "azuremr job failed");
  if (chaos && task_queue->dlq_depth() < 1) {
    // Small jobs can finish before the poison burns through its redrive
    // budget, and run() stops the pool on completion. Keep one drain worker
    // polling — it abandons everything it sees, so leftover messages (the
    // poison, plus any completed-but-undeleted stragglers) hit their
    // receive limit and land in the DLQ.
    runtime::LifecycleConfig lc;
    lc.poll_interval = 0.001;
    lc.visibility_timeout = cfg.visibility_timeout;
    lc.abandon_visibility = 0.0;
    runtime::TaskLifecycle drain(
        job + "-drain", task_queue,
        [](runtime::TaskContext&) { return runtime::TaskOutcome::kAbandoned; }, lc,
        ctx.metrics, nullptr);
    drain.start();
    const bool drained = wait_until([&] { return task_queue->dlq_depth() >= 1; }, 20.0);
    drain.request_stop();
    drain.join();
    if (!drained) fail(ctx, "poison task never reached the dead-letter queue");
  }
  harvest_faults(ctx);
  if (chaos) {
    harvest_registry(ctx);
    const auto meter = task_queue->meter();
    ctx.report->stale_deletes = static_cast<std::int64_t>(meter.stale_deletes);
    ctx.report->dlq_entries = static_cast<std::int64_t>(meter.dlq_moves);
  }
  return Outputs(result.outputs.begin(), result.outputs.end());
}

Outputs run_mapreduce(const ChaosConfig& cfg, const AppJob& app, RunContext& ctx) {
  const bool chaos = ctx.faults != nullptr;
  minihdfs::MiniHdfs hdfs(3);
  std::vector<std::string> paths;
  for (const auto& [name, data] : app.files) {
    const std::string path = "/in/" + name;
    hdfs.write(path, data);
    paths.push_back(path);
  }
  if (chaos) ctx.faults->arm_plan(*ctx.plan);

  const auto fn = app.fn;
  mapreduce::JobConfig jc;
  jc.num_nodes = cfg.num_workers;
  jc.slots_per_node = 2;
  // Room for every guaranteed attempt-level fault to land on one unlucky
  // task without failing the job (plus the storm's two revocations, which
  // burn attempts at the same site).
  jc.scheduler.max_attempts = cfg.revocation_storm ? 8 : 6;
  jc.faults = ctx.faults;
  jc.metrics = ctx.metrics;
  jc.tracer = ctx.tracer;
  mapreduce::LocalJobRunner runner(hdfs);
  const auto result = runner.run(
      paths,
      [fn](const mapreduce::FileRecord& record, const std::string& contents) {
        return fn(record.name, contents);
      },
      jc);
  if (!result.succeeded) fail(ctx, "mapreduce job failed");
  harvest_faults(ctx);
  if (chaos) {
    // No queue here: "retries" are the scheduler's failed attempts.
    std::int64_t failed_attempts = 0;
    for (const auto& attempt : result.attempts) {
      if (!attempt.succeeded) ++failed_attempts;
    }
    ctx.report->redeliveries = failed_attempts;
  }
  Outputs outputs;
  for (const auto& [name, out_path] : result.outputs) {
    outputs[name] = hdfs.read(out_path).value_or("");
  }
  return outputs;
}

/// Full-pipeline chaos run: ShuffleJobRunner over a shuffle workload
/// (histogram / dedup). Outputs are the job's canonical key → reduced-value
/// map, so compare_outputs asserts byte-identical groups AND zero lost
/// groups in one pass. Tight spill/sort budgets force multi-spill map
/// outputs and external-sort runs, so the spill/fetch fault sites actually
/// sit on the hot path.
Outputs run_mapreduce_shuffle(const ChaosConfig& cfg, const ShuffleAppJob& app,
                              RunContext& ctx) {
  const bool chaos = ctx.faults != nullptr;
  minihdfs::MiniHdfs hdfs(cfg.num_workers);
  std::vector<std::string> paths;
  for (const auto& [name, data] : app.files) {
    const std::string path = "/in/" + name;
    hdfs.write(path, data);
    paths.push_back(path);
  }
  if (chaos) ctx.faults->arm_plan(*ctx.plan);

  mapreduce::ShuffleJobConfig jc;
  jc.num_nodes = cfg.num_workers;
  jc.slots_per_node = 2;
  jc.num_reducers = 3;
  jc.job_name = "chaos-" + cfg.app;
  jc.map_spill_budget = 2.0 * 1024;
  jc.sort_memory_budget = 4.0 * 1024;
  // Attempt headroom mirrors run_mapreduce: every guaranteed fault can land
  // on one unlucky task (map or reduce) without failing the job.
  jc.scheduler.max_attempts = cfg.revocation_storm ? 8 : 6;
  jc.reduce_scheduler.max_attempts = cfg.revocation_storm ? 8 : 6;
  jc.faults = ctx.faults;
  jc.metrics = ctx.metrics;
  jc.tracer = ctx.tracer;
  mapreduce::ShuffleJobRunner runner(hdfs);
  const auto result = runner.run(paths, app.map, app.reduce, jc);
  if (!result.succeeded) fail(ctx, "mapreduce shuffle job failed");
  harvest_faults(ctx);
  if (chaos) {
    std::int64_t failed_attempts = 0;
    for (const auto& attempt : result.map_attempts) {
      if (!attempt.succeeded) ++failed_attempts;
    }
    for (const auto& attempt : result.reduce_attempts) {
      if (!attempt.succeeded) ++failed_attempts;
    }
    ctx.report->redeliveries = failed_attempts;
    ctx.report->corrupt_deliveries = result.shuffle.corrupt_fetches;
  }
  return mapreduce::canonical_reduced_output(result, hdfs);
}

using RunnerFn = Outputs (*)(const ChaosConfig&, const AppJob&, RunContext&);

RunnerFn pick_runner(const std::string& substrate) {
  if (substrate == "classiccloud") return run_classiccloud;
  if (substrate == "azuremr") return run_azuremr;
  if (substrate == "mapreduce") return run_mapreduce;
  throw ppc::InvalidArgument("unknown chaos substrate: " + substrate);
}

void compare_outputs(const Outputs& baseline, const Outputs& chaos,
                     std::vector<std::string>& failures) {
  for (const auto& [name, expected] : baseline) {
    const auto it = chaos.find(name);
    if (it == chaos.end()) {
      failures.push_back("chaos run lost output: " + name);
    } else if (it->second != expected) {
      failures.push_back("chaos output differs from fault-free run: " + name);
    }
  }
  for (const auto& [name, _] : chaos) {
    if (!baseline.contains(name)) failures.push_back("chaos run invented output: " + name);
  }
}

}  // namespace

ChaosReport run_chaos_campaign(const ChaosConfig& config_in) {
  ChaosConfig config = config_in;
  if (config.revocation_storm) {
    // Two storm revocations can land on the same unlucky task on top of the
    // plan's guaranteed crash; give the redrive budget room so only the
    // poison sentinel dead-letters.
    config.max_receive_count = std::max(config.max_receive_count, 7);
  }
  ChaosReport report;
  report.seed = config.seed;
  report.substrate = config.substrate;
  report.app = config.app;

  std::function<Outputs(RunContext&)> run_fn;
  if (is_shuffle_app(config.app)) {
    if (config.substrate != "mapreduce") {
      throw ppc::InvalidArgument("shuffle app '" + config.app +
                                 "' runs on the mapreduce substrate only");
    }
    auto app = std::make_shared<ShuffleAppJob>(make_shuffle_app(config.app, config.num_files));
    run_fn = [&config, app](RunContext& ctx) { return run_mapreduce_shuffle(config, *app, ctx); };
  } else {
    const RunnerFn runner = pick_runner(config.substrate);
    auto app = std::make_shared<AppJob>(make_app_job(config.app, config.num_files));
    run_fn = [&config, app, runner](RunContext& ctx) { return runner(config, *app, ctx); };
  }
  const runtime::FaultPlan plan = make_plan(config);
  report.plan_summary = plan.summary();

  std::vector<std::string> failures;

  RunContext baseline_ctx;
  baseline_ctx.metrics = std::make_shared<runtime::MetricsRegistry>();
  baseline_ctx.report = &report;
  baseline_ctx.failures = &failures;
  baseline_ctx.label = "baseline";
  const Outputs baseline = run_fn(baseline_ctx);
  if (!failures.empty()) {
    // A broken baseline means the campaign cannot judge anything.
    report.failures = std::move(failures);
    return report;
  }

  runtime::FaultInjector faults;
  runtime::Tracer tracer;
  tracer.enable();
  RunContext chaos_ctx;
  chaos_ctx.faults = &faults;
  chaos_ctx.plan = &plan;
  chaos_ctx.metrics = std::make_shared<runtime::MetricsRegistry>();
  chaos_ctx.tracer = &tracer;
  chaos_ctx.report = &report;
  chaos_ctx.failures = &failures;
  chaos_ctx.label = "chaos";
  std::unique_ptr<runtime::Monitor> monitor;
  if (config.monitor_period > 0.0) {
    runtime::MonitorConfig mc;
    mc.period = config.monitor_period;
    monitor = std::make_unique<runtime::Monitor>(*chaos_ctx.metrics, mc);
    monitor->start();
  }
  const Outputs chaos = run_fn(chaos_ctx);
  if (monitor != nullptr) {
    monitor->stop();
    report.monitor_json = monitor->to_json();
  }
  report.metrics_json = chaos_ctx.metrics->to_json();
  report.trace_json = tracer.to_chrome_json();
  report.trace_spans = tracer.completed_spans();

  compare_outputs(baseline, chaos, failures);

  // Coverage: the plan must actually have exercised every fault action the
  // substrate can absorb, or the campaign proves nothing.
  if (report.crashes < 1) failures.push_back("plan injected no crash");
  if (report.delays < 1) failures.push_back("plan injected no delay");
  if (report.errors < 1) failures.push_back("plan injected no error");
  if (config.revocation_storm && report.spot_revocations < 1) {
    failures.push_back("revocation storm revoked nothing");
  }
  const bool queue_substrate = config.substrate != "mapreduce";
  // Shuffle runs arm corruption on the shuffle bucket's gets (checksum
  // detection is under test); queue substrates arm it on deliveries/blobs.
  if ((queue_substrate || is_shuffle_app(config.app)) && report.corruptions < 1) {
    failures.push_back("plan injected no corruption");
  }
  if (queue_substrate) {
    // The sentinel must end up dead-lettered. Normally the worker that burns
    // its last permitted delivery parks it (poison_tasks); under a
    // revocation storm a kill can steal that final delivery, in which case
    // the queue's redrive sweep dead-letters it instead — either route
    // satisfies "poison never redelivers forever", so storm runs accept a
    // bare DLQ entry.
    if (report.poison_tasks < 1 &&
        !(config.revocation_storm && report.dlq_entries >= 1)) {
      failures.push_back("no poison task was dead-lettered");
    }
    if (report.dlq_entries < 1) failures.push_back("dead-letter queue stayed empty");
  }

  report.failures = std::move(failures);
  report.passed = report.failures.empty();
  return report;
}

std::string ChaosReport::to_text() const {
  std::string out = "chaos campaign: substrate=" + substrate + " app=" + app +
                    " seed=" + std::to_string(seed) + " -> " + (passed ? "PASS" : "FAIL") +
                    "\n";
  out += "  plan:\n";
  std::size_t pos = 0;
  while (pos < plan_summary.size()) {
    std::size_t nl = plan_summary.find('\n', pos);
    if (nl == std::string::npos) nl = plan_summary.size();
    out += "    " + plan_summary.substr(pos, nl - pos) + "\n";
    pos = nl + 1;
  }
  out += "  injected: crashes=" + std::to_string(crashes) +
         " delays=" + std::to_string(delays) + " errors=" + std::to_string(errors) +
         " corruptions=" + std::to_string(corruptions) +
         " spot_revocations=" + std::to_string(spot_revocations) + "\n";
  out += "  absorbed: redeliveries=" + std::to_string(redeliveries) +
         " deletes_failed=" + std::to_string(deletes_failed) +
         " stale_deletes=" + std::to_string(stale_deletes) +
         " corrupt_deliveries=" + std::to_string(corrupt_deliveries) + "\n";
  out += "  recovered: dlq_entries=" + std::to_string(dlq_entries) +
         " poison_tasks=" + std::to_string(poison_tasks) +
         " restarts=" + std::to_string(supervisor_restarts) +
         " recovery_p50=" + ppc::format_fixed(recovery_p50, 3) +
         "s recovery_max=" + ppc::format_fixed(recovery_max, 3) + "s\n";
  for (const auto& failure : failures) {
    out += "  FAIL: " + failure + "\n";
  }
  return out;
}

}  // namespace ppc::sim
