#include "sim/autoscale_run.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "cloud/instance_types.h"
#include "cloud/scheduler_policy.h"
#include "common/error.h"
#include "core/exec_model.h"
#include "core/workload.h"
#include "runtime/monitor.h"
#include "sim/monitor_run.h"

namespace ppc::sim {

namespace {

double wall_seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

AutoscaleReport run_autoscale_campaign(const AutoscaleCampaignConfig& config) {
  PPC_REQUIRE(config.tasks >= 1, "campaign needs tasks");
  PPC_REQUIRE(config.instances >= 2 && config.workers_per_instance >= 1,
              "campaign needs a reference fleet of at least 2 instances");
  PPC_REQUIRE(config.storms >= 0, "storms must be >= 0");

  const core::Workload workload = core::make_cap3_workload(config.tasks, 458);
  const core::ExecutionModel model(core::AppKind::kCap3);
  const cloud::InstanceType& type = cloud::ec2_hcxl();

  AutoscaleReport report;
  report.tasks = config.tasks;

  // The job's total sequential work, the SchedulerPolicy's T1 input.
  Seconds t1 = 0.0;
  for (const core::SimTask& task : workload.tasks) {
    t1 += model.expected_sequential(task, type);
  }

  // Deadline: configured, or 1.25x the reference fleet's estimate — slack
  // that covers elastic ramp-up, revocation storms, and redelivery tails.
  const double efficiency = 0.85;
  const Seconds reference_makespan =
      t1 / (config.instances * type.cpu_cores * efficiency);
  report.deadline =
      config.deadline > 0.0 ? config.deadline : 1.25 * reference_makespan;

  // The comparator: the cheapest static on-demand fleet meeting the deadline.
  cloud::PolicyRequest request;
  request.t1_seconds = t1;
  request.deadline = report.deadline;
  request.efficiency = efficiency;
  request.max_instances = config.instances;
  const cloud::SchedulerPolicy policy(request);
  const cloud::FleetPlan plan = policy.plan(type);
  if (!plan.feasible) {
    report.failures.push_back("no feasible static plan: " + plan.note);
    return report;
  }
  report.static_instances = plan.instances;

  core::SimRunParams static_params;
  static_params.seed = config.seed;
  static_params.receive_batch = config.receive_batch;
  static_params.queue.shards = config.queue_shards;
  const core::Deployment static_deployment =
      core::make_deployment(type, plan.instances, config.workers_per_instance);
  const core::RunResult static_result = core::run_classic_cloud_sim(
      workload, static_deployment, model, static_params);
  report.makespan_static = static_result.makespan;
  report.cost_static = static_result.compute_cost_hour_units;

  // The elastic fleet gets the full reference budget of instances: headroom
  // over the static comparator is what absorbs storm losses, and half-spot
  // pricing is what makes the bigger fleet the cheaper one.
  core::ElasticSimParams elastic;
  elastic.autoscaler.max_instances = config.instances;
  elastic.autoscaler.min_instances = std::max(1, config.instances / 4);
  elastic.autoscaler.step_out = std::max(1, config.instances / 4);
  elastic.autoscaler.budget = config.budget;
  elastic.spot_fraction = config.spot_fraction;
  elastic.revocation_rate = config.revocation_rate;
  elastic.revocation_notice = config.revocation_notice;
  for (int i = 1; i <= config.storms; ++i) {
    elastic.storm_times.push_back(plan.est_makespan * i / (config.storms + 1));
  }
  const core::Deployment elastic_deployment =
      core::make_deployment(type, config.instances, config.workers_per_instance);

  auto run_once = [&](core::ElasticRunStats& stats, std::string& monitor_json,
                      std::uint64_t& samples, bool& alarm) {
    runtime::MetricsRegistry registry;
    runtime::MonitorConfig mc;
    mc.period = config.monitor_period;
    mc.capacity = config.monitor_capacity;
    mc.scrape_registry = false;
    runtime::Monitor monitor(registry, mc);
    for (const std::string& rule : default_alarm_rules()) {
      monitor.add_alarm(runtime::parse_alarm(rule));
    }

    core::SimRunParams params;
    params.seed = config.seed;
    params.receive_batch = config.receive_batch;
    params.queue.shards = config.queue_shards;
    // Redelivery tail of a hard kill: long enough to cover a prefetched
    // batch, short enough that resurfaced tasks still meet the deadline.
    params.visibility_timeout = 1800.0;
    params.monitor = &monitor;

    const core::RunResult result = core::run_elastic_classic_sim(
        workload, elastic_deployment, model, params, elastic, &stats);
    monitor_json = monitor.to_json();
    samples = monitor.samples();
    alarm = monitor.degraded() || !monitor.firings().empty();
    return result;
  };

  const auto t0 = std::chrono::steady_clock::now();
  std::string monitor_json;
  const core::RunResult result =
      run_once(report.elastic, monitor_json, report.monitor_samples, report.alarm_fired);
  report.wall_seconds = wall_seconds_since(t0);

  report.completed = result.completed;
  report.makespan_elastic = result.makespan;
  report.cost_elastic = result.compute_cost_hour_units;
  report.queue_undeleted_end = result.queue_undeleted_end;
  report.monitor_json = monitor_json;

  if (config.verify_determinism) {
    core::ElasticRunStats rerun_stats;
    std::string rerun_json;
    std::uint64_t rerun_samples = 0;
    bool rerun_alarm = false;
    (void)run_once(rerun_stats, rerun_json, rerun_samples, rerun_alarm);
    report.deterministic = rerun_json == monitor_json;
  }

  if (report.completed != report.tasks) {
    report.failures.push_back("completed " + std::to_string(report.completed) + " of " +
                              std::to_string(report.tasks) + " tasks");
  }
  if (report.queue_undeleted_end != 0) {
    report.failures.push_back("task queue did not drain: " +
                              std::to_string(report.queue_undeleted_end) +
                              " undeleted messages");
  }
  if (report.makespan_elastic > report.deadline) {
    report.failures.push_back("deadline missed: " + std::to_string(report.makespan_elastic) +
                              " sim-s > " + std::to_string(report.deadline) + " sim-s");
  }
  if (report.cost_elastic >= report.cost_static) {
    report.failures.push_back("elastic fleet not cheaper: $" +
                              std::to_string(report.cost_elastic) + " vs static $" +
                              std::to_string(report.cost_static));
  }
  if (config.spot_fraction > 0.0 && report.elastic.spot_savings() <= 0.0) {
    report.failures.push_back("no spot savings recorded");
  }
  if (config.storms > 0 && config.revocation_rate > 0.0 && config.spot_fraction > 0.0 &&
      report.elastic.revocations == 0) {
    report.failures.push_back("revocation storms injected no revocations");
  }
  if (config.budget >= 0.0 && report.cost_elastic > config.budget) {
    report.failures.push_back("budget exceeded: $" + std::to_string(report.cost_elastic) +
                              " > $" + std::to_string(config.budget));
  }
  if (report.alarm_fired) {
    report.failures.push_back("monitor alarm fired (thrash or stall)");
  }
  if (!report.deterministic) {
    report.failures.push_back("monitor time-series differed across reruns");
  }
  if (report.wall_seconds > config.wall_budget) {
    report.failures.push_back("wall budget exceeded: " + std::to_string(report.wall_seconds) +
                              "s > " + std::to_string(config.wall_budget) + "s");
  }
  report.passed = report.failures.empty();
  return report;
}

std::string AutoscaleReport::to_text() const {
  std::ostringstream os;
  char line[256];
  std::snprintf(line, sizeof(line),
                "=== autoscale: %d Cap3 tasks — %d completed, deadline %.0f sim-s ===\n",
                tasks, completed, deadline);
  os << line;
  std::snprintf(line, sizeof(line),
                "static : %d x on-demand, makespan %.0f sim-s, $%.2f (hour units)\n",
                static_instances, makespan_static, cost_static);
  os << line;
  std::snprintf(line, sizeof(line),
                "elastic: peak %d, makespan %.0f sim-s, $%.2f = $%.2f on-demand + $%.2f "
                "spot (saves $%.2f vs all-on-demand)\n",
                elastic.peak_instances, makespan_elastic, cost_elastic,
                elastic.cost_on_demand, elastic.cost_spot, elastic.spot_savings());
  os << line;
  std::snprintf(line, sizeof(line),
                "fleet  : %lld scale-outs, %lld scale-ins, %lld revocations "
                "(%lld hard kills), %lld drains (mean %.0fs), %llu stale terminates\n",
                static_cast<long long>(elastic.scale_out_events),
                static_cast<long long>(elastic.scale_in_events),
                static_cast<long long>(elastic.revocations),
                static_cast<long long>(elastic.hard_kills),
                static_cast<long long>(elastic.drains_completed),
                elastic.drains_completed > 0
                    ? elastic.total_drain_seconds / elastic.drains_completed
                    : 0.0,
                static_cast<unsigned long long>(elastic.stale_terminates));
  os << line;
  std::snprintf(line, sizeof(line),
                "monitor: %llu samples, alarms %s, rerun %s, wall %.1fs\n",
                static_cast<unsigned long long>(monitor_samples),
                alarm_fired ? "FIRED" : "quiet",
                deterministic ? "byte-identical" : "DIVERGED", wall_seconds);
  os << line;
  os << (passed ? "verdict: PASS\n" : "verdict: FAIL\n");
  for (const auto& f : failures) os << "  - " << f << "\n";
  return os.str();
}

std::string AutoscaleReport::fleet_series_csv() const {
  std::ostringstream os;
  os << "t,active,spot\n";
  os.setf(std::ios::fixed);
  os.precision(0);
  for (const core::FleetSizePoint& p : elastic.fleet_size_series) {
    os << p.t << "," << p.active << "," << p.spot << "\n";
  }
  return os.str();
}

}  // namespace ppc::sim
