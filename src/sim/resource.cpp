#include "sim/resource.h"

#include "common/error.h"

namespace ppc::sim {

Resource::Resource(Simulator& sim, std::size_t capacity) : sim_(sim), capacity_(capacity) {
  PPC_REQUIRE(capacity >= 1, "Resource capacity must be >= 1");
}

void Resource::acquire(EventFn on_granted) {
  PPC_REQUIRE(on_granted != nullptr, "null continuation");
  if (in_use_ < capacity_) {
    ++in_use_;
    // Run through the simulator so grant ordering is deterministic and the
    // caller's stack unwinds first.
    sim_.after(0.0, std::move(on_granted));
  } else {
    waiters_.push_back(std::move(on_granted));
  }
}

void Resource::release() {
  PPC_CHECK(in_use_ > 0, "release without matching acquire");
  if (!waiters_.empty()) {
    EventFn next = std::move(waiters_.front());
    waiters_.pop_front();
    sim_.after(0.0, std::move(next));
  } else {
    --in_use_;
  }
}

}  // namespace ppc::sim
