// The elastic-fleet acceptance campaign behind `ppcloud autoscale`.
//
// One scenario, two runs: a deadline-and-budget SchedulerPolicy sizes the
// cheapest static on-demand fleet meeting the deadline, the Classic Cloud
// DES driver prices that static run, and then the *elastic* driver runs the
// same workload on an autoscaled, half-spot fleet under seeded revocation
// storms — with a Monitor ticking and the default alarms armed. The campaign
// passes when the elastic run:
//
//   * completes every task with the queue drained to zero undeleted
//     messages (no task lost to a revocation storm);
//   * meets the deadline;
//   * bills less than the static on-demand fleet (the spot discount and the
//     billing-boundary scale-in are worth real dollars);
//   * actually suffered revocations (the storm coverage check);
//   * fires no alarms (hysteresis keeps fleet.thrash quiet, supervision
//     keeps the stall rule quiet);
//   * reproduces a byte-identical Monitor time-series on a rerun; and
//   * fits the wall-clock budget.
//
// The per-tick fleet-size series is exported as CSV — the fleet-size-vs-time
// artifact the elasticity-smoke CI job uploads.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "core/drivers.h"

namespace ppc::sim {

struct AutoscaleCampaignConfig {
  /// Cap3 files; one task each. The headline run is 1,000,000.
  int tasks = 100000;
  /// Reference static fleet (EC2 HCXL instances) the deadline defaults are
  /// derived from; the SchedulerPolicy may size the actual comparator
  /// smaller.
  int instances = 32;
  int workers_per_instance = 8;
  int receive_batch = 10;
  int queue_shards = 8;
  unsigned seed = 42;

  /// Wall deadline in sim-seconds; < 0 derives 1.25x the reference static
  /// fleet's estimated makespan (slack for ramp-up and storm recovery).
  Seconds deadline = -1.0;
  /// Spend cap handed to the Autoscaler; < 0 = uncapped.
  Dollars budget = -1.0;
  double spot_fraction = 0.5;
  /// Seeded revocation storms: `storms` of them, evenly spread over the
  /// static makespan estimate, each revoking every running spot instance
  /// with probability `revocation_rate` on `revocation_notice` seconds of
  /// notice.
  int storms = 2;
  double revocation_rate = 0.2;
  Seconds revocation_notice = 90.0;

  Seconds monitor_period = 600.0;
  std::size_t monitor_capacity = 8192;
  /// Real-seconds budget for the elastic run (excluding the rerun).
  Seconds wall_budget = 300.0;
  bool verify_determinism = true;
};

struct AutoscaleReport {
  bool passed = false;
  std::vector<std::string> failures;

  int tasks = 0;
  int completed = 0;
  Seconds deadline = 0.0;
  int static_instances = 0;  // the SchedulerPolicy's comparator fleet
  Seconds makespan_static = 0.0;
  Seconds makespan_elastic = 0.0;
  Dollars cost_static = 0.0;   // hour units, all on-demand
  Dollars cost_elastic = 0.0;  // hour units, blended
  core::ElasticRunStats elastic;
  std::uint64_t queue_undeleted_end = 0;
  double wall_seconds = 0.0;

  std::uint64_t monitor_samples = 0;
  bool alarm_fired = false;
  bool deterministic = true;
  /// Monitor::to_json() of the elastic run — the byte-diff artifact.
  std::string monitor_json;

  std::string to_text() const;
  /// "t,active,spot\n..." — the fleet-size-vs-time CI artifact.
  std::string fleet_series_csv() const;
};

AutoscaleReport run_autoscale_campaign(const AutoscaleCampaignConfig& config);

}  // namespace ppc::sim
