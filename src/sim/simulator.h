// Discrete-event simulation kernel.
//
// The figure-reproduction benches model hundreds of cloud instances (the
// paper runs up to 128 Azure Small instances and 256-core bare-metal
// clusters) that this repository cannot provision. Each simulated worker is
// an event-driven state machine; the Simulator executes events in
// (time, insertion-order) order and exposes its clock through the same
// ppc::Clock interface the real-time services consume, so the *same*
// message-queue / blob-store / billing code runs under simulation.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/units.h"

namespace ppc::sim {

using EventFn = std::function<void()>;

/// Handle for cancelling a scheduled event.
struct EventId {
  std::uint64_t value = 0;
  bool valid() const { return value != 0; }
};

class Simulator {
 public:
  Simulator();

  /// Current simulation time in seconds.
  Seconds now() const { return clock_->now(); }

  /// Clock view suitable for handing to cloud services. Lives as long as the
  /// returned shared_ptr; safe to outlive the Simulator (time just freezes).
  std::shared_ptr<ppc::Clock> clock() const { return clock_; }

  /// Schedules `fn` at absolute sim time `t` (>= now()).
  EventId at(Seconds t, EventFn fn);

  /// Schedules `fn` after `delay` seconds (>= 0).
  EventId after(Seconds delay, EventFn fn);

  /// Cancels a pending event; no-op if already executed or cancelled.
  void cancel(EventId id);

  /// Executes the next pending event. Returns false when none remain.
  bool step();

  /// Runs until the event queue drains or `max_events` have executed.
  void run(std::uint64_t max_events = UINT64_MAX);

  /// Runs until the queue drains or sim time would exceed `t_end`. Events at
  /// exactly t_end still execute.
  void run_until(Seconds t_end);

  std::uint64_t events_executed() const { return executed_; }
  std::uint64_t events_pending() const;

 private:
  struct Scheduled {
    Seconds time;
    std::uint64_t seq;  // tie-break: FIFO among same-time events
    std::uint64_t id;
    // Ordering for min-heap via std::greater.
    bool operator>(const Scheduled& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  std::shared_ptr<ppc::ManualClock> clock_;
  std::priority_queue<Scheduled, std::vector<Scheduled>, std::greater<>> heap_;
  std::unordered_map<std::uint64_t, EventFn> handlers_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_id_ = 1;
  std::uint64_t executed_ = 0;
};

}  // namespace ppc::sim
