// Fixed-size thread pool used by the real-execution modes of the MapReduce
// and Dryad engines (task-tracker slots / vertex execution slots).
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace ppc {

class ThreadPool {
 public:
  /// Starts `threads` workers immediately (must be >= 1).
  explicit ThreadPool(std::size_t threads);

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn`; the future carries its return value or exception.
  /// Throws std::runtime_error when the pool is shutting down — prefer
  /// try_submit() where a drain-time race is possible.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    auto fut = try_submit(std::forward<F>(fn));
    if (!fut) throw std::runtime_error("ThreadPool is shutting down");
    return std::move(*fut);
  }

  /// Like submit(), but returns nullopt instead of throwing when the pool
  /// is already shutting down, so callers racing a drain degrade gracefully.
  template <typename F>
  auto try_submit(F&& fn) -> std::optional<std::future<std::invoke_result_t<F>>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mu_);
      if (stopping_) return std::nullopt;
      work_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> work_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ppc
