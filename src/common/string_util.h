// Small string helpers: splitting, trimming, numeric formatting, and the
// key=value record codec used for Classic Cloud task messages (the paper's
// SQS messages are short self-describing task records, §2.1.3).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace ppc {

/// FNV-1a 64-bit content hash. Stands in for the MD5 checksums the real
/// services attach to payloads (SQS's MD5OfBody, S3's ETag): queues and the
/// blob store stamp stored bodies with it, and consumers verify deliveries
/// against the stamp to detect corrupted-in-flight copies.
std::uint64_t fnv1a64(std::string_view s);

/// Splits `s` on `sep`; keeps empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);

/// Formats with fixed decimals, e.g. format_fixed(3.14159, 2) == "3.14".
std::string format_fixed(double v, int decimals);

/// Human-friendly byte count: "1.5 MB", "8.7 GB".
std::string format_bytes(double bytes);

/// "1h 02m 03s" style duration rendering for reports.
std::string format_duration(double seconds);

/// Serializes a flat string map as "k1=v1;k2=v2". Keys/values must not
/// contain '=' or ';' (checked). Deterministic (keys sorted by std::map).
std::string encode_kv(const std::map<std::string, std::string>& kv);

/// Inverse of encode_kv. Throws ppc::InvalidArgument on malformed input.
std::map<std::string, std::string> decode_kv(std::string_view s);

}  // namespace ppc
