// Error handling primitives shared by every ppcloud module.
//
// The library throws `ppc::Error` (a std::runtime_error) for programmer
// errors and unrecoverable conditions; recoverable conditions (e.g. "queue
// empty", "blob not found") are expressed through std::optional returns so
// callers handle them in-band.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace ppc {

/// Base exception type for all ppcloud failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an argument violates a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when an internal invariant is violated (a bug in ppcloud itself).
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(std::string_view kind, std::string_view expr,
                                      std::string_view file, int line,
                                      std::string_view msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  if (kind == "PPC_REQUIRE") throw InvalidArgument(os.str());
  throw InternalError(os.str());
}
}  // namespace detail

}  // namespace ppc

/// Precondition check: throws ppc::InvalidArgument when `cond` is false.
#define PPC_REQUIRE(cond, msg)                                                  \
  do {                                                                          \
    if (!(cond))                                                                \
      ::ppc::detail::check_failed("PPC_REQUIRE", #cond, __FILE__, __LINE__, msg); \
  } while (false)

/// Invariant check: throws ppc::InternalError when `cond` is false.
#define PPC_CHECK(cond, msg)                                                  \
  do {                                                                        \
    if (!(cond))                                                              \
      ::ppc::detail::check_failed("PPC_CHECK", #cond, __FILE__, __LINE__, msg); \
  } while (false)
