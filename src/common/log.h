// Minimal thread-safe leveled logger. Off by default above WARN so tests and
// benches stay quiet; examples turn INFO on to narrate what the frameworks do.
#pragma once

#include <sstream>
#include <string>

namespace ppc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line "[level] message" to stderr under a global lock.
void log_line(LogLevel level, const std::string& msg);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace ppc

#define PPC_LOG(level)                                  \
  if (static_cast<int>(level) < static_cast<int>(::ppc::log_level())) \
    ;                                                   \
  else                                                  \
    ::ppc::detail::LogStream(level)

#define PPC_DEBUG PPC_LOG(::ppc::LogLevel::kDebug)
#define PPC_INFO PPC_LOG(::ppc::LogLevel::kInfo)
#define PPC_WARN PPC_LOG(::ppc::LogLevel::kWarn)
#define PPC_ERROR PPC_LOG(::ppc::LogLevel::kError)
