// Clock abstraction that lets the cloud-service implementations (message
// queue, blob store, billing meters) run unchanged under either real wall
// time (tests, examples) or simulated time (the figure-reproduction benches).
#pragma once

#include <mutex>

#include "common/units.h"

namespace ppc {

/// Monotonic time source. Implementations must be thread-safe.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Seconds elapsed since this clock's epoch. Monotone non-decreasing.
  virtual Seconds now() const = 0;
};

/// Process-wide monotonic seconds (std::chrono::steady_clock; epoch = first
/// call). Use when two components must compare timestamps — per-instance
/// SystemClock epochs differ, so a worker heartbeat stamped with one clock
/// cannot be aged against a supervisor's clock. This shared timebase can.
Seconds monotonic_now();

/// Real wall-clock backed by std::chrono::steady_clock; epoch = construction.
class SystemClock final : public Clock {
 public:
  SystemClock();
  Seconds now() const override;

 private:
  Seconds epoch_;
};

/// Manually advanced clock for unit tests (and the base of sim::SimClock).
/// advance()/set() are thread-safe.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(Seconds start = 0.0) : now_(start) {}

  Seconds now() const override;

  /// Moves time forward by `dt` seconds (dt must be >= 0).
  void advance(Seconds dt);

  /// Jumps to absolute time `t` (must not move backwards).
  void set(Seconds t);

 private:
  mutable std::mutex mu_;
  Seconds now_;
};

}  // namespace ppc
