#include "common/string_util.h"

#include <cctype>
#include <cstdio>
#include <sstream>

#include "common/error.h"

namespace ppc {

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string format_fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string format_bytes(double bytes) {
  static constexpr const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  return format_fixed(bytes, bytes < 10 ? 2 : 1) + " " + kUnits[u];
}

std::string format_duration(double seconds) {
  const bool neg = seconds < 0;
  if (neg) seconds = -seconds;
  const auto total = static_cast<long long>(seconds);
  const long long h = total / 3600, m = (total % 3600) / 60;
  const double s = seconds - static_cast<double>(h * 3600 + m * 60);
  std::ostringstream os;
  if (neg) os << '-';
  if (h > 0) os << h << "h ";
  if (h > 0 || m > 0) os << m << "m ";
  os << format_fixed(s, 1) << "s";
  return os.str();
}

std::string encode_kv(const std::map<std::string, std::string>& kv) {
  std::ostringstream os;
  bool first = true;
  for (const auto& [k, v] : kv) {
    PPC_REQUIRE(k.find('=') == std::string::npos && k.find(';') == std::string::npos,
                "kv key contains reserved character");
    PPC_REQUIRE(v.find('=') == std::string::npos && v.find(';') == std::string::npos,
                "kv value contains reserved character");
    if (!first) os << ';';
    first = false;
    os << k << '=' << v;
  }
  return os.str();
}

std::map<std::string, std::string> decode_kv(std::string_view s) {
  std::map<std::string, std::string> out;
  if (s.empty()) return out;
  for (const auto& field : split(s, ';')) {
    const std::size_t eq = field.find('=');
    PPC_REQUIRE(eq != std::string::npos, "malformed kv field: " + field);
    out.emplace(field.substr(0, eq), field.substr(eq + 1));
  }
  return out;
}

}  // namespace ppc
