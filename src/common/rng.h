// Deterministic random number generation.
//
// Every stochastic component in ppcloud (queue visibility sampling, latency
// models, workload generators, the discrete-event simulator) draws from an
// explicitly seeded Rng so that experiment runs are exactly reproducible.
// The generator is xoshiro256** seeded via SplitMix64; `split()` derives
// statistically independent child streams, which lets a parent experiment
// hand each worker / app / service its own stream without coordination.
#pragma once

#include <cstdint>
#include <vector>

namespace ppc {

class Rng {
 public:
  /// Seeds the generator; identical seeds produce identical streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Normally distributed value (Box-Muller).
  double normal(double mean, double stddev);

  /// Log-normal: exp(normal(mu, sigma)). Used for heavy-ish task-time tails.
  double lognormal(double mu, double sigma);

  /// Value drawn from normal(mean, cv*mean) truncated below at lo_frac*mean.
  /// Handy for "roughly t, with coefficient of variation cv" task times.
  double jittered(double mean, double cv, double lo_frac = 0.05);

  /// Derives an independent child stream. Deterministic given parent state.
  Rng split();

  /// Fisher-Yates shuffle of indices [0, n); returned vector is a permutation.
  std::vector<std::size_t> permutation(std::size_t n);

  /// Picks an index in [0, n) uniformly. Requires n > 0.
  std::size_t index(std::size_t n);

 private:
  std::uint64_t s_[4];
};

}  // namespace ppc
