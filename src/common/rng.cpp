#include "common/rng.h"

#include <cmath>
#include <numbers>

#include "common/error.h"

namespace ppc {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  PPC_REQUIRE(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  PPC_REQUIRE(lo <= hi, "uniform_int(lo, hi) requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) {
  PPC_REQUIRE(mean > 0.0, "exponential mean must be positive");
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double Rng::jittered(double mean, double cv, double lo_frac) {
  PPC_REQUIRE(mean >= 0.0, "jittered mean must be non-negative");
  if (mean == 0.0 || cv <= 0.0) return mean;
  const double v = normal(mean, cv * mean);
  const double lo = lo_frac * mean;
  return v < lo ? lo : v;
}

Rng Rng::split() { return Rng(next_u64()); }

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = index(i);
    std::swap(p[i - 1], p[j]);
  }
  return p;
}

std::size_t Rng::index(std::size_t n) {
  PPC_REQUIRE(n > 0, "index(n) requires n > 0");
  return static_cast<std::size_t>(next_u64() % n);
}

}  // namespace ppc
