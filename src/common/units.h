// Unit helpers used throughout ppcloud.
//
// Canonical units: time in double seconds, data in double bytes, clock rate
// in GHz, money in US dollars. Using doubles keeps the real-clock and
// simulated-clock code paths identical.
#pragma once

#include <cstdint>

namespace ppc {

/// Canonical time value: seconds since an epoch defined by the active Clock.
using Seconds = double;

/// Canonical money value: US dollars.
using Dollars = double;

/// Canonical data size: bytes (double so that rate math stays in one type).
using Bytes = double;

inline constexpr Bytes operator""_KB(unsigned long long v) { return static_cast<Bytes>(v) * 1024.0; }
inline constexpr Bytes operator""_MB(unsigned long long v) { return static_cast<Bytes>(v) * 1024.0 * 1024.0; }
inline constexpr Bytes operator""_GB(unsigned long long v) { return static_cast<Bytes>(v) * 1024.0 * 1024.0 * 1024.0; }
inline constexpr Bytes operator""_KB(long double v) { return static_cast<Bytes>(v) * 1024.0; }
inline constexpr Bytes operator""_MB(long double v) { return static_cast<Bytes>(v) * 1024.0 * 1024.0; }
inline constexpr Bytes operator""_GB(long double v) { return static_cast<Bytes>(v) * 1024.0 * 1024.0 * 1024.0; }

inline constexpr Bytes kilobytes(double v) { return v * 1024.0; }
inline constexpr Bytes megabytes(double v) { return v * 1024.0 * 1024.0; }
inline constexpr Bytes gigabytes(double v) { return v * 1024.0 * 1024.0 * 1024.0; }

inline constexpr double to_gigabytes(Bytes b) { return b / (1024.0 * 1024.0 * 1024.0); }
inline constexpr double to_megabytes(Bytes b) { return b / (1024.0 * 1024.0); }

inline constexpr Seconds minutes(double v) { return v * 60.0; }
inline constexpr Seconds hours(double v) { return v * 3600.0; }

}  // namespace ppc
