#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.h"

namespace ppc {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::coefficient_of_variation() const {
  return mean_ == 0.0 ? 0.0 : stddev() / mean_;
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_), nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  mean_ += delta * nb / n;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

void SampleSet::add_all(const std::vector<double>& xs) {
  xs_.insert(xs_.end(), xs.begin(), xs.end());
  sorted_ = false;
}

double SampleSet::mean() const {
  PPC_REQUIRE(!xs_.empty(), "mean of empty SampleSet");
  return sum() / static_cast<double>(xs_.size());
}

double SampleSet::sum() const {
  double s = 0.0;
  for (double x : xs_) s += x;
  return s;
}

double SampleSet::stddev() const {
  if (xs_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double x : xs_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs_.size() - 1));
}

double SampleSet::min() const {
  PPC_REQUIRE(!xs_.empty(), "min of empty SampleSet");
  return *std::min_element(xs_.begin(), xs_.end());
}

double SampleSet::max() const {
  PPC_REQUIRE(!xs_.empty(), "max of empty SampleSet");
  return *std::max_element(xs_.begin(), xs_.end());
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
}

double SampleSet::percentile(double p) const {
  PPC_REQUIRE(!xs_.empty(), "percentile of empty SampleSet");
  PPC_REQUIRE(p >= 0.0 && p <= 100.0, "percentile p must be in [0, 100]");
  ensure_sorted();
  if (xs_.size() == 1) return xs_[0];
  const double rank = p / 100.0 * static_cast<double>(xs_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs_[lo] * (1.0 - frac) + xs_[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)), counts_(buckets, 0) {
  PPC_REQUIRE(hi > lo, "Histogram range must be non-empty");
  PPC_REQUIRE(buckets > 0, "Histogram needs at least one bucket");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    const auto b = static_cast<std::size_t>((x - lo_) / width_);
    ++counts_[std::min(b, counts_.size() - 1)];
  }
}

double Histogram::bucket_lo(std::size_t bucket) const {
  PPC_REQUIRE(bucket < counts_.size(), "bucket out of range");
  return lo_ + width_ * static_cast<double>(bucket);
}

double Histogram::bucket_hi(std::size_t bucket) const { return bucket_lo(bucket) + width_; }

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar = counts_[b] * width / peak;
    os << "[" << bucket_lo(b) << ", " << bucket_hi(b) << ") ";
    for (std::size_t i = 0; i < bar; ++i) os << '#';
    os << ' ' << counts_[b] << '\n';
  }
  return os.str();
}

}  // namespace ppc
