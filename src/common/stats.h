// Streaming statistics and simple percentile support.
//
// Used by the experiment harness to summarize per-task times (Figures 6, 11,
// 15) and by the sustained-performance-variability bench (§3 of the paper,
// std-dev 1.56% AWS / 2.25% Azure).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ppc {

/// Welford streaming mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 when fewer than 2 samples.
  double variance() const;
  double stddev() const;
  /// stddev / mean; 0 when mean == 0.
  double coefficient_of_variation() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Retains samples; supports exact percentiles. Fine for <= millions of items.
class SampleSet {
 public:
  void add(double x) { xs_.push_back(x); }
  void add_all(const std::vector<double>& xs);

  std::size_t count() const { return xs_.size(); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const;
  /// p in [0, 100]; linear interpolation between closest ranks.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  const std::vector<double>& samples() const { return xs_; }

 private:
  mutable std::vector<double> xs_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Fixed-width histogram over [lo, hi) with overflow/underflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  std::size_t count(std::size_t bucket) const { return counts_.at(bucket); }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t total() const { return total_; }
  double bucket_lo(std::size_t bucket) const;
  double bucket_hi(std::size_t bucket) const;

  /// Ascii rendering, one line per bucket — handy in example programs.
  std::string render(std::size_t width = 40) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

}  // namespace ppc
