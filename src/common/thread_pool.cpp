#include "common/thread_pool.h"

#include "common/error.h"

namespace ppc {

ThreadPool::ThreadPool(std::size_t threads) {
  PPC_REQUIRE(threads >= 1, "ThreadPool needs at least one thread");
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> job;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !work_.empty(); });
      if (work_.empty()) return;  // stopping_ and drained
      job = std::move(work_.front());
      work_.pop_front();
    }
    job();
  }
}

}  // namespace ppc
