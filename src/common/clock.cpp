#include "common/clock.h"

#include <chrono>

#include "common/error.h"

namespace ppc {

namespace {
Seconds steady_seconds() {
  using namespace std::chrono;
  return duration<double>(steady_clock::now().time_since_epoch()).count();
}
}  // namespace

Seconds monotonic_now() {
  static const Seconds epoch = steady_seconds();
  return steady_seconds() - epoch;
}

SystemClock::SystemClock() : epoch_(steady_seconds()) {}

Seconds SystemClock::now() const { return steady_seconds() - epoch_; }

Seconds ManualClock::now() const {
  std::lock_guard lock(mu_);
  return now_;
}

void ManualClock::advance(Seconds dt) {
  PPC_REQUIRE(dt >= 0.0, "ManualClock cannot move backwards");
  std::lock_guard lock(mu_);
  now_ += dt;
}

void ManualClock::set(Seconds t) {
  std::lock_guard lock(mu_);
  PPC_REQUIRE(t >= now_, "ManualClock cannot move backwards");
  now_ = t;
}

}  // namespace ppc
