// Service-layer fault injection seam.
//
// The cloud-service reproductions (blobstore::BlobStore, cloudq::MessageQueue)
// sit *below* the runtime layer, so they cannot depend on
// runtime::FaultInjector directly. This header defines the narrow interface
// they fire instead: each instrumented operation (put/get/list,
// send/receive/delete) calls `on_operation(site, key, payload)` and the
// installed hook decides whether the operation is delayed (the hook sleeps),
// fails (returns fail=true), or delivers corrupted bytes (the hook mutates a
// lazily materialized copy of the payload). runtime::FaultInjector implements
// this interface, which is how a chaos FaultPlan scripts storage and queue
// misbehaviour without the service layer knowing anything about plans.
//
// The payload is handed over as a PayloadRef so the zero-copy delivery path
// is untouched unless a corruption actually happens: mutate() copies the
// stored bytes on first call, and only then does the service swap the
// delivered pointer for the corrupted copy.
#pragma once

#include <optional>
#include <string>
#include <utility>

namespace ppc {

/// Verdict of one hooked operation. Delays happen inside the hook itself
/// (it sleeps before returning), so they need no field here.
struct FaultDecision {
  /// The operation should report failure: a get returns not-found, a list
  /// returns an empty (lost) response, a send/put throws, a delete is
  /// dropped. The stored state is untouched — failures are response-level.
  bool fail = false;
  /// The payload copy was mutated; the caller must deliver the copy instead
  /// of the shared original.
  bool corrupted = false;
};

/// Lazy copy-on-write view of an operation's payload. Hooks that corrupt
/// call mutate(); everything else leaves the original untouched.
class PayloadRef {
 public:
  explicit PayloadRef(const std::string* original) : original_(original) {}

  /// Materializes a private copy of the payload on first call and returns a
  /// mutable pointer to it. Returns nullptr when the operation has no
  /// payload (e.g. a delete).
  std::string* mutate() {
    if (original_ == nullptr) return nullptr;
    if (!copy_) copy_ = *original_;
    return &*copy_;
  }

  bool mutated() const { return copy_.has_value(); }

  /// Moves the corrupted copy out (call only when mutated()).
  std::string take() { return std::move(*copy_); }

 private:
  const std::string* original_;
  std::optional<std::string> copy_;
};

/// Implemented by runtime::FaultInjector; installed on services with their
/// set_fault_hook(). Implementations must be thread-safe — services fire
/// from every worker thread, outside their own locks.
class FaultHook {
 public:
  virtual ~FaultHook() = default;

  /// Called once per instrumented operation. `site` names the operation
  /// ("cloudq.<queue>.receive", "blobstore.<bucket>.get", ...), `key`
  /// identifies the object (message id, blob key). `payload` may be null
  /// for payload-less operations. May sleep (delay faults) but must not
  /// throw — failures are reported through the decision.
  virtual FaultDecision on_operation(const std::string& site, const std::string& key,
                                     PayloadRef* payload) = 0;
};

}  // namespace ppc
