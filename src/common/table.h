// Ascii table rendering for benches and examples: the figure-reproduction
// harness prints each paper table/figure as a fixed-width table so runs can
// be diffed and pasted into EXPERIMENTS.md.
#pragma once

#include <string>
#include <vector>

namespace ppc {

class Table {
 public:
  explicit Table(std::string title = "");

  /// Sets column headers; must be called before any add_row.
  void set_header(std::vector<std::string> header);

  /// Appends a row; must match header arity when a header was set.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given decimals.
  static std::string num(double v, int decimals = 2);

  std::string render() const;

  /// Renders and writes to stdout.
  void print() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ppc
