#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/error.h"
#include "common/string_util.h"

namespace ppc {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::set_header(std::vector<std::string> header) {
  PPC_REQUIRE(rows_.empty(), "set_header must precede add_row");
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  PPC_REQUIRE(header_.empty() || row.size() == header_.size(),
              "row arity does not match header");
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int decimals) { return format_fixed(v, decimals); }

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto account = [&widths](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) widths[i] = std::max(widths[i], row[i].size());
  };
  if (!header_.empty()) account(header_);
  for (const auto& r : rows_) account(r);

  std::ostringstream os;
  auto rule = [&] {
    os << '+';
    for (auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << ' ' << cell << std::string(widths[i] - cell.size() + 1, ' ') << '|';
    }
    os << '\n';
  };
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  rule();
  if (!header_.empty()) {
    line(header_);
    rule();
  }
  for (const auto& r : rows_) line(r);
  rule();
  return os.str();
}

void Table::print() const {
  const std::string s = render();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

}  // namespace ppc
