// Service-layer tracing seam.
//
// Like common/fault_hook.h, this exists because the cloud-service
// reproductions (blobstore::BlobStore, cloudq::MessageQueue) sit *below* the
// runtime layer and cannot depend on runtime::Tracer directly. Each
// instrumented operation brackets itself with op_begin()/op_end(); the
// installed hook (runtime::Tracer) turns the bracket into a span stamped
// with the hook's own clock, so real-thread and simulated-time runs trace
// through the same seam.
//
// Overhead discipline: a service with no hook installed pays one relaxed
// atomic load per operation; a hook that is installed but disabled returns
// false from tracing(), so callers skip the site-name construction too.
#pragma once

#include <cstdint>
#include <string_view>

namespace ppc {

/// Implemented by runtime::Tracer; installed on services with their
/// set_tracer(). Implementations must be thread-safe — services fire from
/// every worker thread, outside their own locks.
class TraceHook {
 public:
  virtual ~TraceHook() = default;

  /// Cheap gate: when false the hook is a no-op and callers should skip all
  /// instrumentation work (building site strings, timing).
  virtual bool tracing() const = 0;

  /// Opens a span for one service operation. `site` names the operation
  /// ("cloudq.<queue>.receive", "blobstore.<bucket>.get", ...), `key`
  /// identifies the object (message id, blob key). Returns an opaque token
  /// to pass to op_end, or 0 when tracing is off (op_end ignores 0).
  virtual std::uint64_t op_begin(std::string_view site, std::string_view key) = 0;

  /// Closes the span opened by op_begin. `failed` marks operations that
  /// reported failure (not-found, stale receipt, injected fault).
  virtual void op_end(std::uint64_t token, bool failed) = 0;

  /// Discards the span opened by op_begin without recording it — for
  /// operations that turn out to be uninteresting (an empty receive poll).
  virtual void op_cancel(std::uint64_t token) = 0;
};

}  // namespace ppc
