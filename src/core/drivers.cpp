#include "core/drivers.h"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "classiccloud/task.h"
#include "classiccloud/worker.h"
#include "cloud/autoscaler.h"
#include "cloud/elastic_fleet.h"
#include "cloud/fleet.h"
#include "common/error.h"
#include "dryad/partitioned_table.h"
#include "sim/simulator.h"
#include "storage/block_cache.h"
#include "storage/fs_backends.h"

namespace ppc::core {

namespace {

std::string input_key(const SimTask& t) { return "input/t" + std::to_string(t.id); }
std::string output_key(const SimTask& t) { return "output/t" + std::to_string(t.id); }

/// Applies straggler injection to a sampled execution time.
Seconds with_straggler(Seconds ex, const SimRunParams& params, ppc::Rng& rng) {
  if (params.straggler_prob > 0.0 && rng.bernoulli(params.straggler_prob)) {
    return ex * params.straggler_factor;
  }
  return ex;
}

storage::BackendTuning backend_tuning(const SimRunParams& params) {
  return {params.blob, params.sharedfs, params.parallelfs};
}

/// Recurring Monitor tick on the simulation clock. Parasitic: it reschedules
/// only while the sim holds other pending events (events_pending() excludes
/// the tick currently executing), so the chain ends on its own when the run
/// drains — including stranded runs that never set a done flag. The final
/// tick therefore samples the drained end state (queue depth 0).
void monitor_tick(sim::Simulator& sim, runtime::Monitor& monitor) {
  monitor.sample_at(sim.now());
  if (sim.events_pending() == 0) return;
  sim.after(monitor.config().period,
            [&sim, &monitor] { monitor_tick(sim, monitor); });
}

}  // namespace

void finalize_metrics(RunResult& result, const Workload& workload, const Deployment& deployment,
                      const ExecutionModel& model) {
  Seconds t1 = 0.0;
  for (const SimTask& task : workload.tasks) {
    t1 += model.expected_sequential(task, deployment.type);
  }
  result.t1_seconds = t1;
  const double p = deployment.total_cores_used();
  if (result.makespan > 0.0 && p > 0.0) {
    result.parallel_efficiency = t1 / (p * result.makespan);  // Equation 1
    result.per_core_task_seconds =
        result.makespan * p / static_cast<double>(workload.size());  // Equation 2
  }
}

void publish_run_metrics(const RunResult& result, runtime::MetricsRegistry& metrics) {
  const std::string prefix = result.framework + ".";
  metrics.counter(prefix + "tasks").inc(result.tasks);
  metrics.counter(prefix + "completed").inc(result.completed);
  metrics.counter(prefix + "duplicate_executions").inc(result.duplicate_executions);
  metrics.set_gauge(prefix + "parallel_efficiency", result.parallel_efficiency);
  metrics.set_gauge(prefix + "per_core_task_seconds", result.per_core_task_seconds);
  metrics.set_gauge(prefix + "makespan_seconds", result.makespan);
  metrics.set_gauge(prefix + "t1_seconds", result.t1_seconds);
  if (result.cache_hits + result.cache_misses > 0) {
    metrics.counter(prefix + "cache_hits").inc(static_cast<std::int64_t>(result.cache_hits));
    metrics.counter(prefix + "cache_misses").inc(static_cast<std::int64_t>(result.cache_misses));
    metrics.set_gauge(prefix + "cache_bytes_saved", result.cache_bytes_saved);
  }
  if (result.reduce_tasks > 0) {
    metrics.counter(prefix + "reduce_tasks").inc(result.reduce_tasks);
    metrics.counter(prefix + "reduce_completed").inc(result.reduce_completed);
    metrics.counter(prefix + "shuffle_fetches")
        .inc(static_cast<std::int64_t>(result.shuffle_fetches));
    metrics.counter(prefix + "shuffle_merge_spills").inc(result.shuffle_merge_spills);
    metrics.set_gauge(prefix + "shuffle_bytes", result.shuffle_bytes);
  }
  auto& histogram = metrics.histogram(prefix + "task_exec_seconds");
  for (double x : result.exec_times.samples()) histogram.record(x);
  metrics.emit({"run.finished",
                {{"framework", result.framework},
                 {"deployment", result.deployment_label},
                 {"completed", std::to_string(result.completed)}}});
}

// ---------------------------------------------------------------------------
// Classic Cloud
// ---------------------------------------------------------------------------

namespace {

/// All state of one Classic Cloud simulation run. Lives on the stack of
/// run_classic_cloud_sim; the simulator drains before it goes away.
struct ClassicSim {
  sim::Simulator sim;
  const Workload& workload;
  const Deployment& d;
  const ExecutionModel& model;
  const SimRunParams& params;

  std::unique_ptr<storage::StorageBackend> store;
  cloudq::MessageQueue queue;
  cloudq::MessageQueue monitor;
  cloud::Fleet fleet;
  std::vector<ppc::Rng> worker_rng;
  double run_factor = 1.0;
  /// Per-worker shared-dataset caches; empty when the cache is disabled.
  std::vector<std::unique_ptr<storage::BlockCache>> caches;

  /// Completion flags indexed by task id, plus the count — O(1) per
  /// completion where a std::set of task-id strings cost a tree insert per
  /// task (the difference between minutes and seconds at the million-task
  /// campaign scale).
  std::vector<std::uint8_t> completed;
  std::size_t completed_count = 0;
  int duplicate_executions = 0;
  int busy = 0;  // workers currently in handle() (download..upload)
  bool done = false;
  Seconds makespan = 0.0;
  ppc::SampleSet exec_times;
  std::vector<TaskTraceEntry> trace;
  static constexpr const char* kBucket = "job";
  static constexpr const char* kSharedKey = "shared/dataset";

  ClassicSim(const Workload& w, const Deployment& dep, const ExecutionModel& m,
             const SimRunParams& p, ppc::Rng& rng)
      : workload(w),
        d(dep),
        model(m),
        params(p),
        // Same rng.split() position the by-value BlobStore held, so the
        // object-store runs replay the checked-in baselines exactly.
        store(storage::make_backend(p.storage, sim.clock(), rng.split(), backend_tuning(p))),
        queue("tasks", sim.clock(), p.queue, rng.split()),
        monitor("monitor", sim.clock(), p.queue, rng.split()),
        fleet(sim.clock()) {
    PPC_REQUIRE(p.receive_batch >= 1 &&
                    p.receive_batch <= static_cast<int>(cloudq::MessageQueue::kBatchLimit),
                "receive_batch must be in [1, kBatchLimit]");
    completed.assign(w.tasks.size(), 0);
    const int workers = d.total_workers();
    worker_rng.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i) worker_rng.push_back(rng.split());
    prefetch.resize(static_cast<std::size_t>(workers));
    acks.resize(static_cast<std::size_t>(workers));
    run_factor = params.provider_variability
                     ? m.sample_run_factor(d.type.provider, rng)
                     : 1.0;
    if (params.enable_block_cache) {
      storage::BlockCacheConfig base = params.block_cache;
      // Model a worker local disk at least big enough for the shared
      // dataset — a cache that cannot hold it would pass everything through.
      base.capacity = std::max(base.capacity, workload.shared_input_size);
      caches.reserve(static_cast<std::size_t>(workers));
      for (int i = 0; i < workers; ++i) {
        storage::BlockCacheConfig cc = base;
        cc.name = "w" + std::to_string(i) + ".blockcache";
        caches.push_back(std::make_unique<storage::BlockCache>(cc, params.metrics));
      }
    }
  }

  void populate() {
    store->create_bucket(kBucket);
    fleet.launch(d.type, d.instances);
    if (workload.shared_input_size > 0.0) {
      // The job-wide reference dataset (BLAST NR database, GTM training
      // matrix) goes up once; every task message points at it.
      store->put_logical(kBucket, kSharedKey, workload.shared_input_size);
    }
    std::vector<std::string> messages;
    messages.reserve(workload.tasks.size());
    for (const SimTask& t : workload.tasks) {
      store->put_logical(kBucket, input_key(t), t.input_size);
      classiccloud::TaskSpec spec;
      spec.task_id = "t" + std::to_string(t.id);
      spec.input_key = input_key(t);
      spec.output_key = output_key(t);
      if (workload.shared_input_size > 0.0) spec.shared_keys = {kSharedKey};
      messages.push_back(classiccloud::encode_task(spec));
    }
    queue.send_batch(messages);
  }

  const SimTask& task_of(const classiccloud::TaskSpec& spec) const {
    const int id = std::stoi(spec.task_id.substr(1));
    return workload.tasks.at(static_cast<std::size_t>(id));
  }

  void register_probes() {
    runtime::Monitor& mon = *params.monitor;
    using runtime::ProbeKind;
    mon.add_probe("queue.tasks.depth", ProbeKind::kLevel,
                  [this] { return static_cast<double>(queue.approximate_visible()); });
    mon.add_probe("queue.tasks.inflight", ProbeKind::kLevel,
                  [this] { return static_cast<double>(queue.in_flight()); });
    mon.add_probe("workers.busy", ProbeKind::kLevel,
                  [this] { return static_cast<double>(busy); });
    mon.add_probe("worker.utilization", ProbeKind::kLevel, [this] {
      const int total = d.total_workers();
      return total > 0 ? static_cast<double>(busy) / total : 0.0;
    });
    // Crashed/stalled workers count as idle — a dead worker failing to
    // drain a visible backlog IS the degraded condition this watches.
    mon.add_probe("workers.idle_with_backlog", ProbeKind::kLevel, [this] {
      return queue.approximate_visible() > 0
                 ? static_cast<double>(d.total_workers() - busy)
                 : 0.0;
    });
    // Queue API request rate (both queues; SQS bills per request) and how
    // many messages each send/receive/delete request moved — a direct read
    // on how well the batch APIs are being used (1.0 = unbatched chatter).
    mon.add_probe("queue.api_calls", ProbeKind::kCumulative, [this] {
      return static_cast<double>(queue.meter().total() + monitor.meter().total());
    });
    mon.add_probe("queue.batch_occupancy", ProbeKind::kLevel,
                  [this] { return queue.meter().batch_occupancy(); });
    mon.add_probe("storage.bytes_per_sec", ProbeKind::kCumulative, [this] {
      const auto m = store->meter();
      return m.bytes_in + m.bytes_out;
    });
    mon.add_probe(
        "cost.dollars_per_hour", ProbeKind::kCumulative,
        [this] {
          return fleet.amortized_cost(sim.now()) + queue.request_cost() +
                 monitor.request_cost() + store->service_cost(sim.now());
        },
        3600.0);
    if (!caches.empty()) {
      mon.add_probe("cache.hit_rate", ProbeKind::kLevel, [this] {
        std::uint64_t hits = 0, misses = 0;
        for (const auto& cache : caches) {
          hits += cache->hits();
          misses += cache->misses();
        }
        const std::uint64_t lookups = hits + misses;
        return lookups > 0 ? static_cast<double>(hits) / lookups : 0.0;
      });
    }
  }

  void start() {
    populate();
    idle_interval.assign(static_cast<std::size_t>(d.total_workers()), params.poll_interval);
    for (int w = 0; w < d.total_workers(); ++w) {
      // Stagger worker start-up slightly, as real instances boot unevenly.
      sim.after(worker_rng[static_cast<std::size_t>(w)].uniform(0.0, 1.0),
                [this, w] { poll(w); });
    }
    if (params.monitor != nullptr) {
      register_probes();
      // Scheduled after the worker start events so the first tick sees a
      // non-empty event queue and the chain takes hold.
      sim.at(0.0, [this] { monitor_tick(sim, *params.monitor); });
    }
    sim.run();
    if (!done) makespan = sim.now();  // crashed workers may strand the job
  }

  std::vector<Seconds> idle_interval;  // per-worker empty-poll backoff
  /// Per-worker batched deliveries awaiting processing (receive_batch > 1).
  std::vector<std::deque<cloudq::Message>> prefetch;
  /// Per-worker buffered completion receipts, flushed in DeleteMessageBatch
  /// requests of up to kBatchLimit.
  std::vector<std::vector<std::string>> acks;
  std::vector<cloudq::Message> recv_buf;  // reused receive_batch scratch

  void poll(int w) {
    if (done) return;
    if (w == params.stall_worker && params.stall_at >= 0.0 &&
        sim.now() >= params.stall_at &&
        sim.now() < params.stall_at + params.stall_duration) {
      // Stalled (chaos injection): the worker sleeps through the window and
      // resumes polling when it ends. Any backlog it would have drained
      // stays visible meanwhile.
      sim.at(params.stall_at + params.stall_duration, [this, w] { poll(w); });
      return;
    }
    sim.after(params.queue_op_latency, [this, w] {
      auto& backoff = idle_interval[static_cast<std::size_t>(w)];
      if (params.receive_batch <= 1) {
        auto msg = queue.receive(params.visibility_timeout);
        if (!msg) {
          if (done || queue.undeleted() == 0) return;
          sim.after(backoff, [this, w] { poll(w); });
          backoff = std::min(params.poll_interval_max, backoff * 2.0);
          return;
        }
        backoff = params.poll_interval;  // reset on success
        handle(w, *msg);
        return;
      }
      recv_buf.clear();
      if (queue.receive_batch(static_cast<std::size_t>(params.receive_batch),
                              params.visibility_timeout, recv_buf) == 0) {
        if (done || queue.undeleted() == 0) return;
        sim.after(backoff, [this, w] { poll(w); });
        backoff = std::min(params.poll_interval_max, backoff * 2.0);
        return;
      }
      backoff = params.poll_interval;
      auto& mine = prefetch[static_cast<std::size_t>(w)];
      for (cloudq::Message& m : recv_buf) mine.push_back(std::move(m));
      next_delivery(w);
    });
  }

  /// Works through the worker's prefetched batch; when it drains, flushes
  /// the buffered acks and polls again. With receive_batch == 1 both buffers
  /// are always empty and this is exactly the legacy poll-again step.
  void next_delivery(int w) {
    auto& mine = prefetch[static_cast<std::size_t>(w)];
    if (done || mine.empty()) {
      // Flush even when the job just finished: the final ack batch is what
      // drains the queue to zero undeleted messages.
      flush_acks(w);
      if (!done) poll(w);
      return;
    }
    const cloudq::Message msg = std::move(mine.front());
    mine.pop_front();
    handle(w, msg);
  }

  void flush_acks(int w) {
    auto& pending = acks[static_cast<std::size_t>(w)];
    if (pending.empty()) return;
    queue.delete_batch(pending);
    pending.clear();
  }

  /// Acks a completed task: immediately (legacy) or buffered into a batch.
  /// A worker that crashes with buffered acks never flushes them — those
  /// messages resurface and idempotent re-execution absorbs the duplicates,
  /// the same story as a crash between upload and delete.
  void ack(int w, const cloudq::Message& msg) {
    if (params.receive_batch <= 1) {
      queue.delete_message(msg.receipt_handle);
      return;
    }
    auto& pending = acks[static_cast<std::size_t>(w)];
    pending.push_back(msg.receipt_handle);
    if (pending.size() >= cloudq::MessageQueue::kBatchLimit) flush_acks(w);
  }

  void handle(int w, const cloudq::Message& msg) {
    auto& rng = worker_rng[static_cast<std::size_t>(w)];
    const classiccloud::TaskSpec spec = classiccloud::decode_task(msg.body());
    const SimTask& task = task_of(spec);
    ++busy;

    // Shared dataset first: a block-cache hit is served from the worker's
    // disk and never touches the backend; a miss (or no cache) downloads it
    // alongside the task's own input.
    Bytes download = task.input_size;
    for (const std::string& key : spec.shared_keys) {
      if (!caches.empty()) {
        const auto r = caches[static_cast<std::size_t>(w)]->fetch(*store, kBucket, key);
        if (!r.hit) download += workload.shared_input_size;
      } else {
        (void)store->get(kBucket, key);  // meters the repeated download
        download += workload.shared_input_size;
      }
    }

    store->begin_transfer();  // shared/parallel FS contention; object: no-op
    const Seconds dl = store->sample_get_time(download, rng);
    sim.after(dl, [this, w, msg, spec, &task] {
      auto& wrng = worker_rng[static_cast<std::size_t>(w)];
      store->end_transfer();
      (void)store->get(kBucket, spec.input_key);  // meters the download
      Seconds ex = model.sample(task, d, wrng) * run_factor;
      ex = with_straggler(ex, params, wrng);
      sim.after(ex, [this, w, msg, spec, &task, ex] {
        auto& wrng2 = worker_rng[static_cast<std::size_t>(w)];
        if (params.worker_crash_prob > 0.0 && wrng2.bernoulli(params.worker_crash_prob)) {
          --busy;  // dead, not busy — shows up as idle-with-backlog
          return;  // worker dies: no upload, no delete — message resurfaces
        }
        // Same named site the real-thread worker fires — one FaultInjector
        // arming drives both execution modes.
        if (params.faults != nullptr &&
            params.faults->fire(classiccloud::sites::kAfterExecute, spec.task_id)) {
          --busy;
          return;
        }
        store->begin_transfer();
        const Seconds ul = store->sample_put_time(task.output_size, wrng2);
        sim.after(ul, [this, w, msg, spec, &task, ex, ul] {
          store->end_transfer();
          store->put_logical(kBucket, spec.output_key, task.output_size);
          classiccloud::MonitorRecord record;
          record.task_id = spec.task_id;
          record.worker_id = "w" + std::to_string(w);
          record.status = "done";
          record.duration = ex;
          monitor.send(classiccloud::encode_monitor(record));
          ack(w, msg);

          auto& flag = completed[static_cast<std::size_t>(task.id)];
          const bool first = flag == 0;
          if (first) {
            flag = 1;
            ++completed_count;
          }
          if (params.record_trace) {
            // sim.now() is post-upload; the execution ended `ul` ago.
            const Seconds end = sim.now() - ul;
            trace.push_back({task.id, w, end - ex, end, first});
          }
          if (first) {
            exec_times.add(ex);
            if (completed_count == workload.size()) {
              done = true;
              makespan = sim.now();
              fleet.terminate_all();
            }
          } else {
            ++duplicate_executions;
          }
          --busy;
          next_delivery(w);
        });
      });
    });
  }
};

}  // namespace

RunResult run_classic_cloud_sim(const Workload& workload, const Deployment& deployment,
                                const ExecutionModel& model, const SimRunParams& params) {
  PPC_REQUIRE(!workload.tasks.empty(), "empty workload");
  ppc::Rng rng(params.seed);
  ClassicSim cs(workload, deployment, model, params, rng);
  cs.start();

  RunResult r;
  r.framework = deployment.type.provider == cloud::Provider::kWindowsAzure
                    ? "ClassicCloud-Azure"
                    : "ClassicCloud-EC2";
  r.deployment_label = deployment.label;
  r.makespan = cs.makespan;
  r.tasks = static_cast<int>(workload.size());
  r.completed = static_cast<int>(cs.completed_count);
  r.duplicate_executions = cs.duplicate_executions;
  r.exec_times = cs.exec_times;
  r.trace = std::move(cs.trace);
  r.compute_cost_hour_units = cs.fleet.hourly_billed_cost(cs.makespan);
  r.compute_cost_amortized = cs.fleet.amortized_cost(cs.makespan);
  r.queue_request_cost = cs.queue.request_cost() + cs.monitor.request_cost();
  const auto qm = cs.queue.meter();
  const auto mm = cs.monitor.meter();
  r.queue_api_requests = qm.total() + mm.total();
  r.queue_unbatched_requests = qm.unbatched_total() + mm.unbatched_total();
  r.queue_batch_occupancy = qm.batch_occupancy();
  r.queue_undeleted_end = cs.queue.undeleted();
  const auto meter = cs.store->meter();
  r.bytes_in = meter.bytes_in;
  r.bytes_out = meter.bytes_out;
  r.storage_backend = storage::to_string(cs.store->kind());
  r.storage_service_cost = cs.store->service_cost(cs.makespan);
  r.storage_heads = meter.heads;
  for (const auto& cache : cs.caches) {
    r.cache_hits += cache->hits();
    r.cache_misses += cache->misses();
    r.cache_bytes_saved += cache->bytes_saved();
  }
  finalize_metrics(r, workload, deployment, model);
  if (params.metrics != nullptr) publish_run_metrics(r, *params.metrics);
  return r;
}

// ---------------------------------------------------------------------------
// Elastic Classic Cloud
// ---------------------------------------------------------------------------

namespace {

/// All state of one elastic Classic Cloud run. A separate struct from
/// ClassicSim on purpose: the static driver's RNG split order is frozen by
/// checked-in baselines, and the elastic control plane (boot events, dynamic
/// worker spawning, revocation draws) needs streams of its own.
struct ElasticSim {
  sim::Simulator sim;
  const Workload& workload;
  const Deployment& d;
  const ExecutionModel& model;
  const SimRunParams& params;
  const ElasticSimParams& ep;

  std::unique_ptr<storage::StorageBackend> store;
  cloudq::MessageQueue queue;
  cloudq::MessageQueue monitorq;
  cloud::ElasticFleet efleet;
  cloud::Autoscaler scaler;
  /// Control-plane stream: splits one child per spawned worker, in event
  /// order — deterministic because the DES executes events deterministically.
  ppc::Rng ctrl_rng;
  /// Storm kill decisions, isolated so adding a storm does not perturb the
  /// worker streams.
  ppc::Rng storm_rng;
  double run_factor = 1.0;

  struct WorkerRec {
    ppc::Rng rng;
    Seconds backoff = 1.0;
    std::deque<cloudq::Message> prefetch;
    std::vector<std::string> acks;
    std::string inst;  // hosting instance id
    bool retired = false;
  };
  struct InstRec {
    int live_workers = 0;
    /// Terminated without notice; its workers' prefetched deliveries and
    /// buffered acks died with it.
    bool hard_dead = false;
  };
  std::vector<WorkerRec> workers;
  std::unordered_map<std::string, InstRec> insts;  // never iterated
  int total_launched = 0;
  int spot_launched = 0;

  std::vector<std::uint8_t> completed;
  std::size_t completed_count = 0;
  int duplicate_executions = 0;
  int busy = 0;
  int alive = 0;  // spawned and not retired
  /// Every task has completed once. Not yet `done`: a hard-killed worker may
  /// have taken buffered acks down with it, leaving completed-but-undeleted
  /// messages invisible until the visibility timeout. The run stays up (and
  /// the fleet keeps polling) until redelivery drains the queue to zero, so
  /// no message is ever silently lost — it only becomes `done` then.
  bool all_completed = false;
  bool done = false;
  Seconds makespan = 0.0;   // last first-completion (the deadline metric)
  Seconds end_time = 0.0;   // queue drained, fleet terminated (billing)
  ppc::SampleSet exec_times;
  ElasticRunStats stats;
  std::vector<cloudq::Message> recv_buf;
  static constexpr const char* kBucket = "job";
  static constexpr const char* kSharedKey = "shared/dataset";

  ElasticSim(const Workload& w, const Deployment& dep, const ExecutionModel& m,
             const SimRunParams& p, const ElasticSimParams& e, ppc::Rng& rng)
      : workload(w),
        d(dep),
        model(m),
        params(p),
        ep(e),
        store(storage::make_backend(p.storage, sim.clock(), rng.split(), backend_tuning(p))),
        queue("tasks", sim.clock(), p.queue, rng.split()),
        monitorq("monitor", sim.clock(), p.queue, rng.split()),
        efleet(sim.clock()),
        scaler(e.autoscaler),
        ctrl_rng(rng.split()),
        storm_rng(rng.split()) {
    PPC_REQUIRE(p.receive_batch >= 1 &&
                    p.receive_batch <= static_cast<int>(cloudq::MessageQueue::kBatchLimit),
                "receive_batch must be in [1, kBatchLimit]");
    PPC_REQUIRE(!p.enable_block_cache, "block cache not modelled for elastic fleets");
    PPC_REQUIRE(ep.spot_fraction >= 0.0 && ep.spot_fraction <= 1.0,
                "spot_fraction must be in [0, 1]");
    PPC_REQUIRE(ep.revocation_rate >= 0.0 && ep.revocation_rate <= 1.0,
                "revocation_rate must be in [0, 1]");
    PPC_REQUIRE(ep.boot_time >= 0.0 && ep.revocation_notice >= 0.0,
                "boot_time and revocation_notice must be non-negative");
    PPC_REQUIRE(ep.autoscale_interval > 0.0, "autoscale_interval must be positive");
    completed.assign(w.tasks.size(), 0);
    run_factor = params.provider_variability
                     ? m.sample_run_factor(d.type.provider, rng)
                     : 1.0;
  }

  void populate() {
    store->create_bucket(kBucket);
    if (workload.shared_input_size > 0.0) {
      store->put_logical(kBucket, kSharedKey, workload.shared_input_size);
    }
    std::vector<std::string> messages;
    messages.reserve(workload.tasks.size());
    for (const SimTask& t : workload.tasks) {
      store->put_logical(kBucket, input_key(t), t.input_size);
      classiccloud::TaskSpec spec;
      spec.task_id = "t" + std::to_string(t.id);
      spec.input_key = input_key(t);
      spec.output_key = output_key(t);
      if (workload.shared_input_size > 0.0) spec.shared_keys = {kSharedKey};
      messages.push_back(classiccloud::encode_task(spec));
    }
    queue.send_batch(messages);
  }

  const SimTask& task_of(const classiccloud::TaskSpec& spec) const {
    const int id = std::stoi(spec.task_id.substr(1));
    return workload.tasks.at(static_cast<std::size_t>(id));
  }

  bool hard_dead(int w) const { return insts.at(workers[static_cast<std::size_t>(w)].inst).hard_dead; }
  bool draining(int w) const {
    return efleet.state(workers[static_cast<std::size_t>(w)].inst) ==
           cloud::InstanceState::kDraining;
  }

  // -- fleet control ----------------------------------------------------

  void launch_instances(int count, bool allow_spot) {
    // Keep the launched mix at ep.spot_fraction; deterministic, no RNG.
    int n_spot = 0;
    if (allow_spot) {
      for (int i = 0; i < count; ++i) {
        if (spot_launched + n_spot + 1 <=
            ep.spot_fraction * (total_launched + i + 1)) {
          ++n_spot;
        }
      }
    }
    std::vector<std::string> ids;
    if (count - n_spot > 0) {
      auto v = efleet.scale_out(d.type, count - n_spot, /*spot_market=*/false);
      ids.insert(ids.end(), v.begin(), v.end());
    }
    if (n_spot > 0) {
      auto v = efleet.scale_out(d.type, n_spot, /*spot_market=*/true, ep.spot_discount);
      ids.insert(ids.end(), v.begin(), v.end());
    }
    total_launched += count;
    spot_launched += n_spot;
    for (const std::string& id : ids) {
      insts.emplace(id, InstRec{});
      sim.after(ep.boot_time, [this, id] { on_boot(id); });
    }
    stats.peak_instances = std::max(stats.peak_instances, efleet.active_count());
  }

  void on_boot(const std::string& id) {
    if (efleet.state(id) != cloud::InstanceState::kBooting) return;
    efleet.mark_running(id);
    InstRec& ir = insts.at(id);
    for (int k = 0; k < d.workers_per_instance; ++k) {
      const int w = static_cast<int>(workers.size());
      WorkerRec rec;
      rec.rng = ctrl_rng.split();
      rec.backoff = params.poll_interval;
      rec.inst = id;
      workers.push_back(std::move(rec));
      ++ir.live_workers;
      ++alive;
      // Stagger like real instances booting unevenly.
      sim.after(workers[static_cast<std::size_t>(w)].rng.uniform(0.0, 1.0),
                [this, w] { poll(w); });
    }
  }

  void do_revoke(const std::string& id, Seconds notice) {
    const Seconds deadline = efleet.revoke(id, notice);
    if (efleet.state(id) == cloud::InstanceState::kTerminated) {
      insts.at(id).hard_dead = true;  // no-notice kill
      return;
    }
    if (insts.at(id).live_workers == 0) {
      // Nothing to drain (workers already crashed away): gone immediately.
      efleet.finish_drain(id);
      return;
    }
    sim.at(deadline, [this, id] {
      if (efleet.state(id) == cloud::InstanceState::kTerminated) return;  // drained in time
      efleet.hard_kill(id);
      insts.at(id).hard_dead = true;
    });
  }

  void storm() {
    if (done) return;
    // Correlated revocation: the provider reclaims a slice of the spot pool
    // in one sweep. Victims are chosen before any state flips so the draw
    // sequence only depends on the fleet at storm time.
    std::vector<std::string> victims;
    for (const auto& ei : efleet.elastic_instances()) {
      if (!ei.spot || ei.state != cloud::InstanceState::kRunning) continue;
      if (storm_rng.bernoulli(ep.revocation_rate)) victims.push_back(ei.id);
    }
    for (const std::string& id : victims) do_revoke(id, ep.revocation_notice);
  }

  void fire_revocations() {
    if (params.faults == nullptr) return;
    for (const auto& ei : efleet.elastic_instances()) {
      if (!ei.spot || ei.state != cloud::InstanceState::kRunning) continue;
      const Seconds notice =
          params.faults->fire_revocation(cloud::sites::kSpotRevoke, ei.id);
      if (notice >= 0.0) do_revoke(ei.id, notice);
    }
  }

  void drain_one() {
    // Scale-in only at a billing-hour boundary: among running instances
    // within hour_slack of their next boundary, drain the closest. Nobody
    // eligible = hold (the decision was made; the drain waits for a cheaper
    // moment).
    const Seconds now = sim.now();
    std::string victim;
    Seconds best = scaler.config().hour_slack;
    for (const auto& ei : efleet.elastic_instances()) {
      if (ei.state != cloud::InstanceState::kRunning) continue;
      const Seconds to_boundary = efleet.seconds_to_hour_boundary(ei.id, now);
      if (to_boundary <= scaler.config().hour_slack &&
          (victim.empty() || to_boundary < best)) {
        victim = ei.id;
        best = to_boundary;
      }
    }
    if (victim.empty()) return;
    efleet.begin_drain(victim);
    if (insts.at(victim).live_workers == 0) efleet.finish_drain(victim);
  }

  void decide() {
    cloud::AutoscaleSignals s;
    s.now = sim.now();
    s.queue_depth = static_cast<double>(queue.approximate_visible());
    s.inflight = static_cast<double>(queue.in_flight());
    s.running_instances = efleet.running_count();
    s.pending_instances = efleet.booting_count();
    s.workers_per_instance = d.workers_per_instance;
    // Ungated by backlog: near the end of the queue (and through the
    // post-completion drain tail, where leftovers are invisible) idle
    // workers are what lets the scale-in path hand instances back before
    // they bill another hour.
    s.idle_workers = std::max(0, alive - busy);
    s.spent = efleet.fleet().hourly_billed_cost(s.now);
    s.cost_per_instance_hour = d.type.cost_per_hour;
    const cloud::AutoscaleDecision dec = scaler.decide(s);
    if (dec.delta > 0) {
      // Min-floor refills replace revoked capacity with on-demand: refilling
      // a storm's losses from the same spot pool invites the next storm.
      const bool refill = std::string_view(dec.reason) == "below-min";
      launch_instances(dec.delta, /*allow_spot=*/!refill);
    } else if (dec.delta < 0) {
      drain_one();
    }
  }

  void autoscale_tick() {
    if (!done) {
      fire_revocations();
      decide();
    }
    stats.fleet_size_series.push_back(
        {sim.now(), efleet.active_count(), efleet.spot_running()});
    stats.peak_instances = std::max(stats.peak_instances, efleet.active_count());
    if (done) return;
    // Parasitic like the monitor tick, with one extension: while undeleted
    // work remains AND the fleet still exists, the tick keeps itself alive so
    // a below-min refill can rebuild a storm-gutted fleet. A run with no
    // fleet left and no events is stranded and must end.
    if (sim.events_pending() > 0 ||
        (queue.undeleted() > 0 && efleet.active_count() > 0)) {
      sim.after(ep.autoscale_interval, [this] { autoscale_tick(); });
    }
  }

  // -- worker lifecycle -------------------------------------------------

  /// Ends the run once the last task is done AND the queue is fully
  /// drained; called wherever a delete could have removed the last message.
  void maybe_finish() {
    if (done || !all_completed) return;
    if (queue.undeleted() != 0) return;
    done = true;
    efleet.terminate_all();
  }

  void flush_acks(int w) {
    auto& pending = workers[static_cast<std::size_t>(w)].acks;
    if (pending.empty()) return;
    queue.delete_batch(pending);
    pending.clear();
    maybe_finish();
  }

  void ack(int w, const cloudq::Message& msg) {
    if (params.receive_batch <= 1) {
      queue.delete_message(msg.receipt_handle);
      maybe_finish();
      return;
    }
    auto& pending = workers[static_cast<std::size_t>(w)].acks;
    pending.push_back(msg.receipt_handle);
    if (pending.size() >= cloudq::MessageQueue::kBatchLimit) flush_acks(w);
  }

  /// Retires one worker. A clean retirement (graceful drain, natural
  /// end-of-queue exit) releases unstarted prefetched deliveries back to the
  /// queue for immediate redelivery and flushes buffered acks; a hard one
  /// (instance reclaimed, worker crash) loses both — redelivery plus
  /// idempotent re-execution absorb the damage. The last worker off a
  /// draining healthy instance completes the drain.
  void drop_worker(int w, bool clean) {
    WorkerRec& rec = workers[static_cast<std::size_t>(w)];
    if (rec.retired) return;
    if (clean) {
      for (const cloudq::Message& m : rec.prefetch) {
        queue.change_visibility(m.receipt_handle, 0.0);
      }
      rec.prefetch.clear();
      flush_acks(w);
    } else {
      rec.prefetch.clear();
      rec.acks.clear();
    }
    rec.retired = true;
    --alive;
    InstRec& ir = insts.at(rec.inst);
    --ir.live_workers;
    if (ir.live_workers == 0 && !ir.hard_dead &&
        efleet.state(rec.inst) == cloud::InstanceState::kDraining) {
      efleet.finish_drain(rec.inst);
    }
  }

  void poll(int w) {
    if (done) return;
    if (workers[static_cast<std::size_t>(w)].retired) return;
    if (hard_dead(w)) {
      drop_worker(w, /*clean=*/false);
      return;
    }
    if (draining(w)) {
      drop_worker(w, /*clean=*/true);
      return;
    }
    sim.after(params.queue_op_latency, [this, w] {
      WorkerRec& rec = workers[static_cast<std::size_t>(w)];
      if (rec.retired) return;
      if (hard_dead(w)) {
        drop_worker(w, /*clean=*/false);
        return;
      }
      if (draining(w)) {  // drain began during the round trip
        drop_worker(w, /*clean=*/true);
        return;
      }
      recv_buf.clear();
      if (queue.receive_batch(static_cast<std::size_t>(params.receive_batch),
                              params.visibility_timeout, recv_buf) == 0) {
        if (done || queue.undeleted() == 0) {
          drop_worker(w, /*clean=*/true);
          return;
        }
        sim.after(rec.backoff, [this, w] { poll(w); });
        rec.backoff = std::min(params.poll_interval_max, rec.backoff * 2.0);
        return;
      }
      rec.backoff = params.poll_interval;
      for (cloudq::Message& m : recv_buf) rec.prefetch.push_back(std::move(m));
      next_delivery(w);
    });
  }

  void next_delivery(int w) {
    WorkerRec& rec = workers[static_cast<std::size_t>(w)];
    if (rec.retired) return;
    if (hard_dead(w)) {
      drop_worker(w, /*clean=*/false);
      return;
    }
    if (!done && draining(w)) {
      drop_worker(w, /*clean=*/true);
      return;
    }
    if (done || rec.prefetch.empty()) {
      flush_acks(w);
      if (!done) poll(w);
      return;
    }
    const cloudq::Message msg = std::move(rec.prefetch.front());
    rec.prefetch.pop_front();
    handle(w, msg);
  }

  void handle(int w, const cloudq::Message& msg) {
    auto& rng = workers[static_cast<std::size_t>(w)].rng;
    const classiccloud::TaskSpec spec = classiccloud::decode_task(msg.body());
    const SimTask& task = task_of(spec);
    ++busy;

    Bytes download = task.input_size;
    for (const std::string& key : spec.shared_keys) {
      (void)store->get(kBucket, key);  // meters the repeated download
      download += workload.shared_input_size;
    }

    store->begin_transfer();
    const Seconds dl = store->sample_get_time(download, rng);
    sim.after(dl, [this, w, msg, spec, &task] {
      store->end_transfer();  // pair before any abandonment check
      if (hard_dead(w)) {
        --busy;  // reclaimed mid-download; message resurfaces on timeout
        drop_worker(w, /*clean=*/false);
        return;
      }
      auto& wrng = workers[static_cast<std::size_t>(w)].rng;
      (void)store->get(kBucket, spec.input_key);
      Seconds ex = model.sample(task, d, wrng) * run_factor;
      ex = with_straggler(ex, params, wrng);
      sim.after(ex, [this, w, msg, spec, &task, ex] {
        if (hard_dead(w)) {
          --busy;  // reclaimed mid-execute
          drop_worker(w, /*clean=*/false);
          return;
        }
        auto& wrng2 = workers[static_cast<std::size_t>(w)].rng;
        if (params.worker_crash_prob > 0.0 &&
            wrng2.bernoulli(params.worker_crash_prob)) {
          --busy;
          drop_worker(w, /*clean=*/false);  // worker dies; instance survives
          return;
        }
        if (params.faults != nullptr &&
            params.faults->fire(classiccloud::sites::kAfterExecute, spec.task_id)) {
          --busy;
          drop_worker(w, /*clean=*/false);
          return;
        }
        store->begin_transfer();
        const Seconds ul = store->sample_put_time(task.output_size, wrng2);
        sim.after(ul, [this, w, msg, spec, &task, ex] {
          store->end_transfer();
          if (hard_dead(w)) {
            --busy;  // reclaimed before the upload landed
            drop_worker(w, /*clean=*/false);
            return;
          }
          store->put_logical(kBucket, spec.output_key, task.output_size);
          classiccloud::MonitorRecord record;
          record.task_id = spec.task_id;
          record.worker_id = "w" + std::to_string(w);
          record.status = "done";
          record.duration = ex;
          monitorq.send(classiccloud::encode_monitor(record));
          ack(w, msg);

          auto& flag = completed[static_cast<std::size_t>(task.id)];
          const bool first = flag == 0;
          if (first) {
            flag = 1;
            ++completed_count;
            exec_times.add(ex);
            if (completed_count == workload.size()) {
              all_completed = true;
              makespan = sim.now();
              maybe_finish();  // no-op if buffered acks are still pending
            }
          } else {
            ++duplicate_executions;
          }
          --busy;
          next_delivery(w);
        });
      });
    });
  }

  // -- probes -----------------------------------------------------------

  void register_probes() {
    runtime::Monitor& mon = *params.monitor;
    using runtime::ProbeKind;
    mon.add_probe("queue.tasks.depth", ProbeKind::kLevel,
                  [this] { return static_cast<double>(queue.approximate_visible()); });
    mon.add_probe("queue.tasks.inflight", ProbeKind::kLevel,
                  [this] { return static_cast<double>(queue.in_flight()); });
    mon.add_probe("workers.busy", ProbeKind::kLevel,
                  [this] { return static_cast<double>(busy); });
    mon.add_probe("worker.utilization", ProbeKind::kLevel, [this] {
      return alive > 0 ? static_cast<double>(busy) / alive : 0.0;
    });
    mon.add_probe("workers.idle_with_backlog", ProbeKind::kLevel, [this] {
      return queue.approximate_visible() > 0
                 ? static_cast<double>(std::max(0, alive - busy))
                 : 0.0;
    });
    mon.add_probe("queue.api_calls", ProbeKind::kCumulative, [this] {
      return static_cast<double>(queue.meter().total() + monitorq.meter().total());
    });
    mon.add_probe("queue.batch_occupancy", ProbeKind::kLevel,
                  [this] { return queue.meter().batch_occupancy(); });
    mon.add_probe("storage.bytes_per_sec", ProbeKind::kCumulative, [this] {
      const auto m = store->meter();
      return m.bytes_in + m.bytes_out;
    });
    mon.add_probe(
        "cost.dollars_per_hour", ProbeKind::kCumulative,
        [this] {
          return efleet.fleet().amortized_cost(sim.now()) + queue.request_cost() +
                 monitorq.request_cost() + store->service_cost(sim.now());
        },
        3600.0);
    // Elasticity signals (the §14 design doc's probe set).
    mon.add_probe("fleet.size", ProbeKind::kLevel,
                  [this] { return static_cast<double>(efleet.active_count()); });
    mon.add_probe("fleet.spot_running", ProbeKind::kLevel,
                  [this] { return static_cast<double>(efleet.spot_running()); });
    mon.add_probe("spot.revocations", ProbeKind::kCumulative,
                  [this] { return static_cast<double>(efleet.revocations()); });
    mon.add_probe("fleet.drain_seconds", ProbeKind::kLevel,
                  [this] { return efleet.total_drain_seconds(); });
    // Scale-event rate, watched by the default fleet.thrash alarm. The
    // hysteresis band plus cooldown keep the steady-state rate an order of
    // magnitude under the alarm threshold.
    mon.add_probe("fleet.scale_events.rate", ProbeKind::kCumulative,
                  [this] { return static_cast<double>(efleet.scale_events()); });
  }

  void start() {
    populate();
    launch_instances(scaler.config().min_instances, /*allow_spot=*/true);
    for (const Seconds t : ep.storm_times) {
      sim.at(t, [this] { storm(); });
    }
    sim.at(0.0, [this] { autoscale_tick(); });
    if (params.monitor != nullptr) {
      register_probes();
      sim.at(0.0, [this] { monitor_tick(sim, *params.monitor); });
    }
    sim.run();
    if (!done) makespan = sim.now();  // stranded (fleet gone, work left)
    end_time = sim.now();
  }
};

}  // namespace

RunResult run_elastic_classic_sim(const Workload& workload, const Deployment& deployment,
                                  const ExecutionModel& model, const SimRunParams& params,
                                  const ElasticSimParams& elastic, ElasticRunStats* stats) {
  PPC_REQUIRE(!workload.tasks.empty(), "empty workload");
  ppc::Rng rng(params.seed);
  ElasticSim es(workload, deployment, model, params, elastic, rng);
  es.start();

  RunResult r;
  r.framework = deployment.type.provider == cloud::Provider::kWindowsAzure
                    ? "ElasticCloud-Azure"
                    : "ElasticCloud-EC2";
  r.deployment_label = deployment.label;
  r.makespan = es.makespan;
  r.tasks = static_cast<int>(workload.size());
  r.completed = static_cast<int>(es.completed_count);
  r.duplicate_executions = es.duplicate_executions;
  r.exec_times = es.exec_times;
  const cloud::Fleet& fleet = es.efleet.fleet();
  // Billed at end_time, not makespan: the post-completion drain tail (the
  // fleet redelivering acks a hard kill destroyed) is real rented time.
  r.compute_cost_hour_units = fleet.hourly_billed_cost(es.end_time);
  r.compute_cost_amortized = fleet.amortized_cost(es.end_time);
  r.queue_request_cost = es.queue.request_cost() + es.monitorq.request_cost();
  const auto qm = es.queue.meter();
  const auto mm = es.monitorq.meter();
  r.queue_api_requests = qm.total() + mm.total();
  r.queue_unbatched_requests = qm.unbatched_total() + mm.unbatched_total();
  r.queue_batch_occupancy = qm.batch_occupancy();
  r.queue_undeleted_end = es.queue.undeleted();
  const auto meter = es.store->meter();
  r.bytes_in = meter.bytes_in;
  r.bytes_out = meter.bytes_out;
  r.storage_backend = storage::to_string(es.store->kind());
  r.storage_service_cost = es.store->service_cost(es.end_time);
  r.storage_heads = meter.heads;
  finalize_metrics(r, workload, deployment, model);
  if (params.metrics != nullptr) publish_run_metrics(r, *params.metrics);

  if (stats != nullptr) {
    *stats = std::move(es.stats);
    stats->scale_out_events = es.efleet.scale_out_events();
    stats->scale_in_events = es.efleet.scale_in_events();
    stats->revocations = es.efleet.revocations();
    stats->hard_kills = es.efleet.hard_kills();
    stats->drains_completed = es.efleet.drains_completed();
    stats->total_drain_seconds = es.efleet.total_drain_seconds();
    stats->stale_terminates = fleet.stale_terminates();
    const cloud::Fleet::CostBreakdown b = fleet.hourly_billed_breakdown(es.end_time);
    stats->cost_on_demand = b.on_demand;
    stats->cost_spot = b.spot;
    stats->cost_on_demand_equivalent = b.on_demand_equivalent;
  }
  return r;
}

// ---------------------------------------------------------------------------
// MapReduce (Hadoop analog)
// ---------------------------------------------------------------------------

namespace {

struct MapReduceSim {
  sim::Simulator sim;
  const Workload& workload;
  const Deployment& d;
  const ExecutionModel& model;
  const SimRunParams& params;

  minihdfs::MiniHdfs hdfs;
  std::unique_ptr<mapreduce::TaskScheduler> scheduler;
  std::vector<ppc::Rng> slot_rng;
  double run_factor = 1.0;
  /// Input-staging data plane; null unless SimRunParams::stage_inputs.
  std::unique_ptr<storage::StorageBackend> stage_store;
  ppc::Rng stage_rng;

  int completed = 0;
  int duplicate_executions = 0;
  int busy_slots = 0;  // slots with an attempt in flight
  bool finished = false;
  Seconds makespan = 0.0;
  ppc::SampleSet exec_times;
  std::vector<TaskTraceEntry> trace;
  std::vector<bool> node_dead;

  // Shuffle state (params.num_reducers > 0). Reducers pull their partition
  // from the node that ran each map task, so the map phase records the
  // committing node per task.
  std::unique_ptr<mapreduce::TaskScheduler> reduce_scheduler;
  std::vector<int> map_node;
  Bytes shuffle_bytes_moved = 0.0;
  std::uint64_t shuffle_fetches = 0;
  std::uint64_t shuffle_local_fetches = 0;
  int inflight_fetches = 0;
  int shuffle_merge_spills = 0;
  int reduce_completed = 0;

  void register_probes() {
    runtime::Monitor& mon = *params.monitor;
    using runtime::ProbeKind;
    // The scheduler has no pending-count accessor; the backlog is derived
    // driver-side. Speculative twin attempts make busy_slots overshoot the
    // distinct-task in-flight count, hence the clamp.
    mon.add_probe("queue.tasks.depth", ProbeKind::kLevel, [this] {
      const int depth = static_cast<int>(workload.size()) - completed - busy_slots;
      return static_cast<double>(std::max(0, depth));
    });
    mon.add_probe("queue.tasks.inflight", ProbeKind::kLevel,
                  [this] { return static_cast<double>(busy_slots); });
    mon.add_probe("workers.busy", ProbeKind::kLevel,
                  [this] { return static_cast<double>(busy_slots); });
    mon.add_probe("worker.utilization", ProbeKind::kLevel, [this] {
      const int total = d.total_workers();
      return total > 0 ? static_cast<double>(busy_slots) / total : 0.0;
    });
    // Slots on dead nodes count as idle: lost capacity against a visible
    // backlog is exactly what the stall/degradation alarms watch.
    mon.add_probe("workers.idle_with_backlog", ProbeKind::kLevel, [this] {
      const int depth = static_cast<int>(workload.size()) - completed - busy_slots;
      return depth > 0 ? static_cast<double>(d.total_workers() - busy_slots) : 0.0;
    });
    mon.add_probe("cost.dollars_per_hour", ProbeKind::kLevel, [this] {
      return static_cast<double>(d.instances) * d.type.cost_per_hour;
    });
    if (stage_store != nullptr) {
      mon.add_probe("storage.bytes_per_sec", ProbeKind::kCumulative, [this] {
        const auto m = stage_store->meter();
        return m.bytes_in + m.bytes_out;
      });
    }
    if (params.num_reducers > 0) {
      // The shuffle is the run's dominant network phase: a cumulative probe
      // turns bytes-moved into the bytes/s rate series, and the in-flight
      // fetch level shows reducer fan-in saturating the fabric.
      mon.add_probe("shuffle.bytes", ProbeKind::kCumulative,
                    [this] { return static_cast<double>(shuffle_bytes_moved); });
      mon.add_probe("shuffle.inflight_fetches", ProbeKind::kLevel,
                    [this] { return static_cast<double>(inflight_fetches); });
    }
  }

  MapReduceSim(const Workload& w, const Deployment& dep, const ExecutionModel& m,
               const SimRunParams& p, ppc::Rng& rng)
      : workload(w), d(dep), model(m), params(p), hdfs(dep.instances, p.hdfs, rng.split()) {
    const int slots = d.total_workers();
    slot_rng.reserve(static_cast<std::size_t>(slots));
    for (int i = 0; i < slots; ++i) slot_rng.push_back(rng.split());
    run_factor = params.provider_variability
                     ? m.sample_run_factor(d.type.provider, rng)
                     : 1.0;

    std::vector<mapreduce::TaskInfo> tasks;
    tasks.reserve(w.tasks.size());
    for (const SimTask& t : w.tasks) {
      const std::string path = "/in/t" + std::to_string(t.id);
      hdfs.write_logical(path, t.input_size);
      mapreduce::TaskInfo info;
      info.task_id = t.id;
      info.path = path;
      info.name = "t" + std::to_string(t.id);
      info.size = t.input_size;
      info.preferred = hdfs.data_local_nodes(path);
      tasks.push_back(std::move(info));
    }
    scheduler = std::make_unique<mapreduce::TaskScheduler>(std::move(tasks), p.scheduler);
    if (p.num_reducers > 0) {
      map_node.assign(w.tasks.size(), 0);
      std::vector<mapreduce::TaskInfo> reduce_tasks;
      reduce_tasks.reserve(static_cast<std::size_t>(p.num_reducers));
      for (int r = 0; r < p.num_reducers; ++r) {
        mapreduce::TaskInfo info;
        info.task_id = r;
        info.name = "part-" + std::to_string(r);
        // Reduce input: one R-th of every map task's shuffled output.
        Bytes partition = 0.0;
        for (const SimTask& t : w.tasks) {
          partition += t.input_size * p.shuffle_output_ratio / p.num_reducers;
        }
        info.size = partition;
        reduce_tasks.push_back(std::move(info));
      }
      reduce_scheduler =
          std::make_unique<mapreduce::TaskScheduler>(std::move(reduce_tasks), p.scheduler);
    }
    if (params.stage_inputs) {
      // Extra splits sit after every baseline draw, so runs without staging
      // consume the identical random stream as before.
      stage_store =
          storage::make_backend(p.storage, sim.clock(), rng.split(), backend_tuning(p));
      stage_rng = rng.split();
    }
  }

  void launch_node(int node) {
    for (int s = 0; s < d.workers_per_instance; ++s) {
      const int slot = node * d.workers_per_instance + s;
      sim.after(slot_rng[static_cast<std::size_t>(slot)].uniform(0.0, 0.5),
                [this, node, slot] { request(node, slot); });
    }
  }

  void start() {
    node_dead.assign(static_cast<std::size_t>(d.instances), false);
    if (params.failed_node >= 0 && params.node_failure_time >= 0.0) {
      PPC_REQUIRE(params.failed_node < d.instances, "failed_node out of range");
      sim.after(params.node_failure_time, [this] {
        node_dead[static_cast<std::size_t>(params.failed_node)] = true;
        hdfs.fail_node(params.failed_node);  // replicas re-replicate
      });
    }
    if (stage_store != nullptr) {
      // The paper's data distribution step: every node pulls its share of
      // the input (plus the shared dataset, if any) from the selected
      // backend before its slots take work. All nodes pull concurrently, so
      // the backend's contention model shapes the staging phase.
      stage_store->create_bucket("stage");
      Bytes total = 0.0;
      for (const SimTask& t : workload.tasks) total += t.input_size;
      const Bytes per_node = total / std::max(1, d.instances) + workload.shared_input_size;
      for (int node = 0; node < d.instances; ++node) {
        stage_store->put_logical("stage", "in/n" + std::to_string(node), per_node);
      }
      for (int node = 0; node < d.instances; ++node) stage_store->begin_transfer();
      for (int node = 0; node < d.instances; ++node) {
        const Seconds t = stage_store->sample_get_time(per_node, stage_rng);
        sim.after(t, [this, node] {
          stage_store->end_transfer();
          (void)stage_store->get("stage", "in/n" + std::to_string(node));  // meters
          launch_node(node);
        });
      }
    } else {
      for (int node = 0; node < d.instances; ++node) launch_node(node);
    }
    if (params.monitor != nullptr) {
      register_probes();
      sim.at(0.0, [this] { monitor_tick(sim, *params.monitor); });
    }
    sim.run();
    if (!finished) makespan = sim.now();
  }

  /// The run is over when the map phase is done and — when a reduce phase
  /// exists and the maps all succeeded — the reduce phase is done too.
  void maybe_finish() {
    if (finished || !scheduler->job_done()) return;
    if (reduce_scheduler != nullptr && scheduler->job_succeeded() &&
        !reduce_scheduler->job_done()) {
      return;
    }
    finished = true;
    makespan = sim.now();
  }

  void request(int node, int slot) {
    if (node_dead[static_cast<std::size_t>(node)]) return;  // instance is gone
    if (scheduler->job_done()) {
      // Map phase over: slots roll into the reduce phase (if any).
      if (reduce_scheduler != nullptr && scheduler->job_succeeded()) {
        reduce_request(node, slot);
      }
      return;
    }
    const auto assignment = scheduler->next_task(node, sim.now());
    if (!assignment) {
      sim.after(params.heartbeat_interval, [this, node, slot] { request(node, slot); });
      return;
    }
    ++busy_slots;
    auto& rng = slot_rng[static_cast<std::size_t>(slot)];
    const SimTask& task = workload.tasks.at(static_cast<std::size_t>(assignment->task_id));
    const Seconds read = hdfs.sample_read_time(task.input_size, assignment->data_local, rng);
    Seconds ex = model.sample(task, d, rng) * run_factor;
    ex = with_straggler(ex, params, rng);
    // HDFS write of the (small) result, local to the node.
    const Seconds write = hdfs.sample_read_time(task.output_size, /*local=*/true, rng);
    const Seconds total = params.task_startup_overhead + read + ex + write;

    sim.after(total, [this, node, slot, a = *assignment, ex, write] {
      auto& rng2 = slot_rng[static_cast<std::size_t>(slot)];
      --busy_slots;
      if (node_dead[static_cast<std::size_t>(node)]) {
        // The node died while this attempt ran: the JobTracker times it out
        // and re-queues the task; this slot never asks for work again.
        scheduler->report_failed(a, sim.now());
        maybe_finish();
        return;
      }
      if (params.task_failure_prob > 0.0 && rng2.bernoulli(params.task_failure_prob)) {
        scheduler->report_failed(a, sim.now());
      } else {
        const bool first = scheduler->report_completed(a, sim.now());
        if (params.record_trace) {
          const Seconds end = sim.now() - write;
          trace.push_back({a.task_id, slot, end - ex, end, first});
        }
        if (first) {
          exec_times.add(ex);
          ++completed;
          // Shuffle locality: the committing attempt's node serves this map
          // task's spills to every reducer.
          if (reduce_scheduler != nullptr) {
            map_node[static_cast<std::size_t>(a.task_id)] = node;
          }
        } else {
          ++duplicate_executions;
        }
      }
      maybe_finish();
      request(node, slot);
    });
  }

  // ------------------------------------------------------------ shuffle ---
  // One reduce attempt: serial fetch chain over every map output (the
  // single-threaded copier), then merge/sort (plus a disk round trip when
  // the partition overflows the sort budget), then the part-file write.

  struct ReduceAttempt {
    mapreduce::Assignment a;
    std::size_t next_map = 0;
    Bytes partition_bytes = 0.0;
  };

  void reduce_request(int node, int slot) {
    if (node_dead[static_cast<std::size_t>(node)]) return;
    if (reduce_scheduler->job_done()) return;
    const auto assignment = reduce_scheduler->next_task(node, sim.now());
    if (!assignment) {
      sim.after(params.heartbeat_interval, [this, node, slot] { reduce_request(node, slot); });
      return;
    }
    ++busy_slots;
    auto state = std::make_shared<ReduceAttempt>();
    state->a = *assignment;
    sim.after(params.task_startup_overhead,
              [this, node, slot, state] { fetch_next(node, slot, state); });
  }

  void fetch_next(int node, int slot, const std::shared_ptr<ReduceAttempt>& state) {
    if (node_dead[static_cast<std::size_t>(node)]) {
      --busy_slots;
      reduce_scheduler->report_failed(state->a, sim.now());
      maybe_finish();
      return;
    }
    if (state->next_map == workload.tasks.size()) {
      merge_and_reduce(node, slot, state);
      return;
    }
    auto& rng = slot_rng[static_cast<std::size_t>(slot)];
    const SimTask& mt = workload.tasks[state->next_map];
    const Bytes bytes =
        mt.input_size * params.shuffle_output_ratio / static_cast<double>(params.num_reducers);
    const bool local = map_node[state->next_map] == node;
    const Seconds t = hdfs.sample_read_time(bytes, local, rng);
    ++inflight_fetches;
    sim.after(t, [this, node, slot, state, bytes, local] {
      --inflight_fetches;
      shuffle_bytes_moved += bytes;
      ++shuffle_fetches;
      if (local) ++shuffle_local_fetches;
      state->partition_bytes += bytes;
      ++state->next_map;
      fetch_next(node, slot, state);
    });
  }

  void merge_and_reduce(int node, int slot, const std::shared_ptr<ReduceAttempt>& state) {
    auto& rng = slot_rng[static_cast<std::size_t>(slot)];
    const Bytes pb = state->partition_bytes;
    Seconds merge =
        params.shuffle_sort_bandwidth > 0.0 ? pb / params.shuffle_sort_bandwidth : 0.0;
    if (params.reduce_sort_budget > 0.0 && pb > params.reduce_sort_budget) {
      // Overflow: sorted runs round-trip local disk (written once, read
      // back by the k-way merge).
      merge += 2.0 * hdfs.sample_read_time(pb, /*local=*/true, rng);
      ++shuffle_merge_spills;
    }
    // The reduced part file is a digest of the partition, HDFS-local.
    const Seconds write = hdfs.sample_read_time(pb * 0.1, /*local=*/true, rng);
    sim.after(merge + write, [this, node, slot, state] {
      --busy_slots;
      if (node_dead[static_cast<std::size_t>(node)]) {
        reduce_scheduler->report_failed(state->a, sim.now());
        maybe_finish();
        return;
      }
      const bool first = reduce_scheduler->report_completed(state->a, sim.now());
      if (first) {
        ++reduce_completed;
      } else {
        ++duplicate_executions;
      }
      maybe_finish();
      reduce_request(node, slot);
    });
  }
};

}  // namespace

RunResult run_mapreduce_sim(const Workload& workload, const Deployment& deployment,
                            const ExecutionModel& model, const SimRunParams& params) {
  PPC_REQUIRE(!workload.tasks.empty(), "empty workload");
  ppc::Rng rng(params.seed);
  MapReduceSim ms(workload, deployment, model, params, rng);
  ms.start();

  RunResult r;
  r.framework = "Hadoop";
  r.deployment_label = deployment.label;
  r.makespan = ms.makespan;
  r.tasks = static_cast<int>(workload.size());
  r.completed = ms.completed;
  r.duplicate_executions = ms.duplicate_executions;
  r.exec_times = ms.exec_times;
  r.trace = std::move(ms.trace);
  r.scheduler_stats = ms.scheduler->stats();
  r.local_reads = static_cast<std::uint64_t>(r.scheduler_stats.local_assignments);
  r.remote_reads = static_cast<std::uint64_t>(r.scheduler_stats.remote_assignments);
  if (ms.reduce_scheduler != nullptr) {
    r.reduce_tasks = params.num_reducers;
    r.reduce_completed = ms.reduce_completed;
    r.reduce_scheduler_stats = ms.reduce_scheduler->stats();
    r.shuffle_bytes = ms.shuffle_bytes_moved;
    r.shuffle_fetches = ms.shuffle_fetches;
    r.shuffle_local_fetches = ms.shuffle_local_fetches;
    r.shuffle_merge_spills = ms.shuffle_merge_spills;
  }
  if (ms.stage_store != nullptr) {
    const auto meter = ms.stage_store->meter();
    r.bytes_in = meter.bytes_in;
    r.bytes_out = meter.bytes_out;
    r.storage_backend = storage::to_string(ms.stage_store->kind());
    r.storage_service_cost = ms.stage_store->service_cost(ms.makespan);
    r.storage_heads = meter.heads;
  }
  finalize_metrics(r, workload, deployment, model);
  if (params.metrics != nullptr) publish_run_metrics(r, *params.metrics);
  return r;
}

// ---------------------------------------------------------------------------
// Dryad (DryadLINQ analog)
// ---------------------------------------------------------------------------

namespace {

struct DryadSim {
  sim::Simulator sim;
  const Workload& workload;
  const Deployment& d;
  const ExecutionModel& model;
  const SimRunParams& params;

  dryad::FileShare share;
  std::vector<std::deque<int>> node_queue;  // task ids per node (static!)
  std::vector<Bytes> node_bytes;            // partition bytes per node
  std::vector<ppc::Rng> slot_rng;
  double run_factor = 1.0;
  /// Partition-distribution data plane; null unless stage_inputs.
  std::unique_ptr<storage::StorageBackend> stage_store;
  ppc::Rng stage_rng;

  int completed = 0;
  int busy_slots = 0;
  std::vector<int> node_busy;  // running vertices per node
  Seconds makespan = 0.0;
  ppc::SampleSet exec_times;
  std::vector<TaskTraceEntry> trace;

  DryadSim(const Workload& w, const Deployment& dep, const ExecutionModel& m,
           const SimRunParams& p, ppc::Rng& rng)
      : workload(w),
        d(dep),
        model(m),
        params(p),
        share(dep.instances, p.share),
        node_queue(static_cast<std::size_t>(dep.instances)) {
    const int slots = d.total_workers();
    slot_rng.reserve(static_cast<std::size_t>(slots));
    for (int i = 0; i < slots; ++i) slot_rng.push_back(rng.split());
    run_factor = params.provider_variability
                     ? m.sample_run_factor(d.type.provider, rng)
                     : 1.0;

    // Static partitioning — the "data partition and distribution programs"
    // of §2.3, executed before the job starts.
    std::vector<std::string> names;
    std::vector<Bytes> sizes;
    names.reserve(w.tasks.size());
    for (const SimTask& t : w.tasks) {
      names.push_back(std::to_string(t.id));
      sizes.push_back(t.input_size);
    }
    const auto table =
        params.dryad_partition_by_size
            ? dryad::PartitionedTable::by_size(names, sizes, dep.instances)
            : dryad::PartitionedTable::round_robin(names, dep.instances);
    node_bytes.assign(static_cast<std::size_t>(dep.instances), 0.0);
    for (const auto& part : table.partitions()) {
      for (const auto& name : part.files) {
        const int task_id = std::stoi(name);
        node_queue[static_cast<std::size_t>(part.node)].push_back(task_id);
        node_bytes[static_cast<std::size_t>(part.node)] +=
            w.tasks.at(static_cast<std::size_t>(task_id)).input_size;
        // Placeholder content: the distribution step puts every partition
        // file on its node's share so processing reads are local.
        share.write(part.node, name, std::string());
      }
    }
    if (params.stage_inputs) {
      // Extra splits sit after every baseline draw (see MapReduceSim).
      stage_store =
          storage::make_backend(p.storage, sim.clock(), rng.split(), backend_tuning(p));
      stage_rng = rng.split();
    }
  }

  void launch_node(int node) {
    for (int s = 0; s < d.workers_per_instance; ++s) {
      const int slot = node * d.workers_per_instance + s;
      sim.after(slot_rng[static_cast<std::size_t>(slot)].uniform(0.0, 0.2),
                [this, node, slot] { next(node, slot); });
    }
  }

  void register_probes() {
    runtime::Monitor& mon = *params.monitor;
    using runtime::ProbeKind;
    mon.add_probe("queue.tasks.depth", ProbeKind::kLevel, [this] {
      std::size_t depth = 0;
      for (const auto& q : node_queue) depth += q.size();
      return static_cast<double>(depth);
    });
    mon.add_probe("queue.tasks.inflight", ProbeKind::kLevel,
                  [this] { return static_cast<double>(busy_slots); });
    mon.add_probe("workers.busy", ProbeKind::kLevel,
                  [this] { return static_cast<double>(busy_slots); });
    mon.add_probe("worker.utilization", ProbeKind::kLevel, [this] {
      const int total = d.total_workers();
      return total > 0 ? static_cast<double>(busy_slots) / total : 0.0;
    });
    // Static partitioning means a node that drained its own partition idles
    // while *other* nodes still hold work — that is the paper's imbalance
    // story, not a stall. A slot only counts here while its OWN node still
    // has queued vertices it is failing to run.
    mon.add_probe("workers.idle_with_backlog", ProbeKind::kLevel, [this] {
      int idle = 0;
      for (int node = 0; node < d.instances; ++node) {
        if (!node_queue[static_cast<std::size_t>(node)].empty()) {
          idle += d.workers_per_instance - node_busy[static_cast<std::size_t>(node)];
        }
      }
      return static_cast<double>(idle);
    });
    mon.add_probe("cost.dollars_per_hour", ProbeKind::kLevel, [this] {
      return static_cast<double>(d.instances) * d.type.cost_per_hour;
    });
    if (stage_store != nullptr) {
      mon.add_probe("storage.bytes_per_sec", ProbeKind::kCumulative, [this] {
        const auto m = stage_store->meter();
        return m.bytes_in + m.bytes_out;
      });
    }
  }

  void start() {
    node_busy.assign(static_cast<std::size_t>(d.instances), 0);
    if (stage_store != nullptr) {
      // §2.3's "data partition and distribution programs", modelled against
      // the selected backend: each node pulls exactly its partitions' bytes
      // (plus the shared dataset) before its vertices run.
      stage_store->create_bucket("stage");
      for (int node = 0; node < d.instances; ++node) {
        stage_store->put_logical(
            "stage", "part/n" + std::to_string(node),
            node_bytes[static_cast<std::size_t>(node)] + workload.shared_input_size);
      }
      for (int node = 0; node < d.instances; ++node) stage_store->begin_transfer();
      for (int node = 0; node < d.instances; ++node) {
        const Bytes bytes =
            node_bytes[static_cast<std::size_t>(node)] + workload.shared_input_size;
        const Seconds t = stage_store->sample_get_time(bytes, stage_rng);
        sim.after(t, [this, node] {
          stage_store->end_transfer();
          (void)stage_store->get("stage", "part/n" + std::to_string(node));  // meters
          launch_node(node);
        });
      }
    } else {
      for (int node = 0; node < d.instances; ++node) launch_node(node);
    }
    if (params.monitor != nullptr) {
      register_probes();
      sim.at(0.0, [this] { monitor_tick(sim, *params.monitor); });
    }
    sim.run();
  }

  void next(int node, int slot) {
    auto& queue = node_queue[static_cast<std::size_t>(node)];
    if (queue.empty()) return;  // this node is done; no stealing (static)
    const int task_id = queue.front();
    queue.pop_front();
    ++busy_slots;
    ++node_busy[static_cast<std::size_t>(node)];
    auto& rng = slot_rng[static_cast<std::size_t>(slot)];
    const SimTask& task = workload.tasks.at(static_cast<std::size_t>(task_id));
    (void)share.read(node, std::to_string(task_id), node);  // locality accounting
    const Seconds read = share.sample_read_time(task.input_size, /*local=*/true, rng);
    Seconds ex = model.sample(task, d, rng) * run_factor;
    ex = with_straggler(ex, params, rng);
    const Seconds write = share.sample_read_time(task.output_size, /*local=*/true, rng);
    const Seconds total = params.vertex_startup_overhead + read + ex + write;
    sim.after(total, [this, node, slot, task_id, ex, write] {
      if (params.record_trace) {
        const Seconds end = sim.now() - write;
        trace.push_back({task_id, slot, end - ex, end, true});
      }
      exec_times.add(ex);
      ++completed;
      --busy_slots;
      --node_busy[static_cast<std::size_t>(node)];
      if (completed == static_cast<int>(workload.size())) makespan = sim.now();
      next(node, slot);
    });
  }
};

}  // namespace

RunResult run_dryad_sim(const Workload& workload, const Deployment& deployment,
                        const ExecutionModel& model, const SimRunParams& params) {
  PPC_REQUIRE(!workload.tasks.empty(), "empty workload");
  ppc::Rng rng(params.seed);
  DryadSim ds(workload, deployment, model, params, rng);
  ds.start();

  RunResult r;
  r.framework = "DryadLINQ";
  r.deployment_label = deployment.label;
  r.makespan = ds.makespan;
  r.tasks = static_cast<int>(workload.size());
  r.completed = ds.completed;
  r.exec_times = ds.exec_times;
  r.trace = std::move(ds.trace);
  r.local_reads = ds.share.stats().local_reads;
  if (ds.stage_store != nullptr) {
    const auto meter = ds.stage_store->meter();
    r.bytes_in = meter.bytes_in;
    r.bytes_out = meter.bytes_out;
    r.storage_backend = storage::to_string(ds.stage_store->kind());
    r.storage_service_cost = ds.stage_store->service_cost(ds.makespan);
    r.storage_heads = meter.heads;
  }
  finalize_metrics(r, workload, deployment, model);
  if (params.metrics != nullptr) publish_run_metrics(r, *params.metrics);
  return r;
}

}  // namespace ppc::core
