// Deployment descriptions and the execution model that turns (task,
// deployment) pairs into sampled runtimes via the per-app cost models.
#pragma once

#include "apps/blast/cost_model.h"
#include "apps/cap3/cost_model.h"
#include "apps/gtm/cost_model.h"
#include "cloud/instance_types.h"
#include "common/rng.h"
#include "core/workload.h"

namespace ppc::core {

/// One experiment's compute layout, in the paper's labeling convention:
/// "'Instance Type' - 'Number of Instances' X 'Number of Workers per
/// Instance'", e.g. HCXL - 2 X 8 (§3). Fig 9 adds threads per worker.
struct Deployment {
  std::string label;
  cloud::InstanceType type;
  int instances = 1;
  int workers_per_instance = 1;
  int threads_per_worker = 1;

  int total_workers() const { return instances * workers_per_instance; }
  int busy_cores_per_instance() const { return workers_per_instance * threads_per_worker; }
  /// P of Equation 1: the CPU cores the deployment occupies.
  int total_cores_used() const { return instances * busy_cores_per_instance(); }
};

/// Builds a deployment with the paper's "Type - N x W" label.
Deployment make_deployment(const cloud::InstanceType& type, int instances,
                           int workers_per_instance, int threads_per_worker = 1);

class ExecutionModel {
 public:
  explicit ExecutionModel(AppKind app) : app_(app) {}

  AppKind app() const { return app_; }

  /// Sampled execution seconds of `task` on one worker of `d`, assuming the
  /// steady state of a pleasingly-parallel run: every worker slot of the
  /// instance is busy (that is what contends for memory bandwidth).
  Seconds sample(const SimTask& task, const Deployment& d, ppc::Rng& rng) const;

  /// Expected sequential seconds of `task` on a single otherwise-idle core
  /// of `type` with the input on local disk — the T1 ingredient of
  /// Equation 1, measured "in each of the different environments" (§3).
  Seconds expected_sequential(const SimTask& task, const cloud::InstanceType& type) const;

  /// §3 sustained-performance variability: a run-level multiplier with the
  /// reported std-dev (1.56% AWS, 2.25% Azure, ~1% bare metal).
  double sample_run_factor(cloud::Provider provider, ppc::Rng& rng) const;

  // Cost models are public so experiments/ablations can recalibrate them.
  apps::cap3::Cap3CostModel cap3;
  apps::blast::BlastCostModel blast;
  apps::gtm::GtmCostModel gtm;

 private:
  AppKind app_;
};

}  // namespace ppc::core
