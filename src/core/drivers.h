// Discrete-event drivers: run a Workload on a Deployment under one of the
// paper's four framework families, in simulated time, and report the
// metrics of §3 (Equations 1 and 2) plus costs.
//
// The drivers reuse the *real* service implementations wherever time-based
// behaviour matters: the Classic Cloud driver drives the actual
// cloudq::MessageQueue (visibility timeouts, redelivery, request metering)
// and blobstore::BlobStore (metering, timing model) under the simulation
// clock; the MapReduce driver drives the actual mapreduce::TaskScheduler
// and minihdfs placement; the Dryad driver uses the actual
// dryad::PartitionedTable policies. Only the passage of time is simulated.
#pragma once

#include <cstdint>
#include <string>

#include "blobstore/blob_store.h"
#include "cloud/autoscaler.h"
#include "cloudq/message_queue.h"
#include "common/stats.h"
#include "core/exec_model.h"
#include "core/workload.h"
#include "dryad/file_share.h"
#include "mapreduce/scheduler.h"
#include "minihdfs/mini_hdfs.h"
#include "runtime/fault_injector.h"
#include "runtime/metrics.h"
#include "runtime/monitor.h"
#include "storage/block_cache.h"
#include "storage/fs_backends.h"

namespace ppc::core {

struct SimRunParams {
  unsigned seed = 42;

  // -- storage data plane --
  /// Backend serving the Classic Cloud data plane (and MapReduce/Dryad
  /// input staging when `stage_inputs` is set): the 2010 object store, an
  /// NFS-like shared FS, or a Lustre-like parallel FS. The matching config
  /// below (`blob`, `sharedfs`, `parallelfs`) tunes whichever is selected.
  storage::StorageKind storage = storage::StorageKind::kObject;
  storage::SharedFsConfig sharedfs;
  storage::ParallelFsConfig parallelfs;
  /// Per-worker content-addressed block cache for the workload's shared
  /// dataset (Workload::shared_input_size — the BLAST NR database, the GTM
  /// training matrix). Off: every task re-downloads the shared data.
  bool enable_block_cache = false;
  storage::BlockCacheConfig block_cache;
  /// MapReduce/Dryad: model staging the inputs from the selected storage
  /// backend into HDFS / node shares before the job starts (per-backend
  /// scaling rows). Off = inputs pre-placed, as the checked-in baselines
  /// assume.
  bool stage_inputs = false;

  // -- Classic Cloud --
  cloudq::QueueConfig queue;
  blobstore::BlobStoreConfig blob;
  /// Sim seconds a queue API round trip takes.
  Seconds queue_op_latency = 0.03;
  /// Idle worker re-poll interval (initial).
  Seconds poll_interval = 1.0;
  /// Empty polls back off exponentially up to this cap (and reset on a
  /// successful receive) — standard practice to keep SQS request charges
  /// down while tasks are in flight elsewhere.
  Seconds poll_interval_max = 16.0;
  /// Visibility timeout requested by workers. Must exceed the task length
  /// or duplicate executions appear (the ablation bench sweeps this).
  Seconds visibility_timeout = 7200.0;
  /// Messages fetched per queue receive request (1..10, the SQS batch
  /// limit). 1 keeps the legacy one-receive-per-poll loop (and its exact
  /// random stream); > 1 prefetches a batch per poll, works through it, and
  /// acks completions in DeleteMessageBatch requests — cutting API requests
  /// (and request charges) by ~batch x at saturation. The visibility
  /// timeout must cover the whole prefetched batch.
  int receive_batch = 1;

  // -- MapReduce --
  minihdfs::HdfsConfig hdfs;
  mapreduce::SchedulerConfig scheduler;
  /// Idle slot re-poll (TaskTracker heartbeat).
  Seconds heartbeat_interval = 3.0;
  /// Per-attempt launch overhead (task JVM start in Hadoop 0.20).
  Seconds task_startup_overhead = 1.0;
  /// Reduce tasks appended after the map phase (0 = map-only — the paper's
  /// pleasingly-parallel jobs and every checked-in baseline). With reducers,
  /// each map task's output is hash-partitioned R ways; every reducer pulls
  /// its partition from every mapper over the HDFS network model (local
  /// when the reducer lands on the node that ran the map), external-sorts
  /// it, and commits one part file — shuffle as the dominant network load.
  int num_reducers = 0;
  /// Map output bytes as a fraction of map input bytes (shuffle volume).
  double shuffle_output_ratio = 1.0;
  /// Reduce-side in-memory sort budget; a partition larger than this pays
  /// an extra spill-and-merge pass over local disk (0 = always fits).
  Bytes reduce_sort_budget = 64.0 * 1024 * 1024;
  /// Merge + reduce throughput of one reduce slot (bytes/s of sorted
  /// partition processed).
  double shuffle_sort_bandwidth = 200.0 * 1024 * 1024;

  // -- Dryad --
  dryad::FileShareConfig share;
  Seconds vertex_startup_overhead = 0.3;
  /// false = round-robin static partitions (the paper's layout);
  /// true = size-balanced LPT (ablation).
  bool dryad_partition_by_size = false;

  // -- cross-cutting injection knobs (ablations / property tests) --
  /// Probability a task execution becomes a straggler (x straggler_factor).
  double straggler_prob = 0.0;
  double straggler_factor = 5.0;
  /// Probability a MapReduce attempt fails and must be re-run.
  double task_failure_prob = 0.0;
  /// MapReduce node-failure injection: at `node_failure_time` (>= 0) node
  /// `failed_node` dies — its running attempts are lost (re-queued by the
  /// scheduler), its HDFS replicas re-replicate, and it takes no more work.
  int failed_node = -1;
  Seconds node_failure_time = -1.0;
  /// Probability a Classic Cloud worker crashes mid-task (after execute,
  /// before delete) — the task message must resurface and be re-done.
  double worker_crash_prob = 0.0;
  /// Apply the §3 provider variability factor to execution times.
  bool provider_variability = true;
  /// Record per-task execution intervals into RunResult::trace.
  bool record_trace = false;

  // -- unified runtime hooks (borrowed, not owned; null = disabled) --
  /// Fault injection at the same named sites the real-thread workers fire
  /// (e.g. classiccloud::sites::kAfterExecute), so one arming drives both
  /// execution modes.
  runtime::FaultInjector* faults = nullptr;
  /// When set, each driver publishes its run metrics here (counters,
  /// "<framework>.parallel_efficiency" gauges, exec-time histogram) via
  /// publish_run_metrics().
  runtime::MetricsRegistry* metrics = nullptr;
  /// When set, the driver registers its continuous signals as probes —
  /// queue.tasks.depth / queue.tasks.inflight, workers.busy,
  /// worker.utilization, workers.idle_with_backlog, storage.bytes_per_sec,
  /// cost.dollars_per_hour (and cache.hit_rate when the block cache is on) —
  /// and ticks Monitor::sample_at on the *simulation* clock every
  /// monitor->config().period sim-seconds. The tick chain is parasitic: it
  /// reschedules only while other events are pending, so it never keeps a
  /// finished (or stranded) run alive. Fully deterministic: the same seed
  /// yields byte-identical Monitor::to_json() output.
  runtime::Monitor* monitor = nullptr;

  /// Classic Cloud stall injection (chaos scenarios): worker `stall_worker`
  /// stops polling at sim time `stall_at` for `stall_duration` seconds
  /// (disabled while stall_worker < 0 or stall_at < 0). The backlog it
  /// should have drained stays visible in the queue, so the
  /// workers.idle_with_backlog signal goes positive for the whole window —
  /// which is what the stall alarm watches.
  int stall_worker = -1;
  Seconds stall_at = -1.0;
  Seconds stall_duration = 0.0;
};

/// One task execution interval, for Gantt-style inspection and the DES
/// validity tests (a worker must never run two tasks concurrently).
struct TaskTraceEntry {
  int task_id = 0;
  int worker = 0;  // global worker/slot index
  Seconds exec_start = 0.0;
  Seconds exec_end = 0.0;
  bool counted = true;  // false for duplicate/wasted executions
};

struct RunResult {
  std::string framework;
  std::string deployment_label;
  Seconds makespan = 0.0;
  int tasks = 0;
  int completed = 0;
  /// Executions whose result was redundant (speculative twins, visibility-
  /// timeout re-deliveries).
  int duplicate_executions = 0;
  ppc::SampleSet exec_times;  // first-completion execution times

  // Cost (zero for bare metal).
  Dollars compute_cost_hour_units = 0.0;
  Dollars compute_cost_amortized = 0.0;
  Dollars queue_request_cost = 0.0;
  /// Queue API requests billed (task + monitor queues; Classic Cloud only)
  /// and the one-message-per-request equivalent — the denominator of the
  /// batching savings billing reports.
  std::uint64_t queue_api_requests = 0;
  std::uint64_t queue_unbatched_requests = 0;
  /// Messages moved per send/receive/delete request (task queue).
  double queue_batch_occupancy = 0.0;
  /// Task-queue messages never deleted when the run ended (0 = drained; a
  /// worker that crashed holding deliveries or buffered acks leaves some).
  std::uint64_t queue_undeleted_end = 0;
  Bytes bytes_in = 0.0;   // into cloud storage
  Bytes bytes_out = 0.0;  // out of cloud storage

  // Storage data plane. `storage_backend` is "local" when the run never
  // touched a backend (MapReduce/Dryad without input staging).
  std::string storage_backend = "local";
  /// FS server-hours billed over the makespan (object store: 0 — it bills
  /// per GB/request instead, under bytes_in/out + transfer fees).
  Dollars storage_service_cost = 0.0;
  std::uint64_t storage_heads = 0;  // HEAD/exists revalidation requests
  std::uint64_t cache_hits = 0;     // summed over per-worker block caches
  std::uint64_t cache_misses = 0;
  Bytes cache_bytes_saved = 0.0;  // shared-dataset bytes served locally

  // Scheduling visibility.
  mapreduce::TaskScheduler::Stats scheduler_stats;  // MapReduce only
  std::uint64_t local_reads = 0;
  std::uint64_t remote_reads = 0;

  // Shuffle (MapReduce with SimRunParams::num_reducers > 0; zero otherwise).
  Bytes shuffle_bytes = 0.0;           // bytes moved mapper → reducer
  std::uint64_t shuffle_fetches = 0;   // one per (map, reduce) pair served
  std::uint64_t shuffle_local_fetches = 0;  // served from the mapper's node
  int shuffle_merge_spills = 0;        // partitions that overflowed the sort budget
  int reduce_tasks = 0;
  int reduce_completed = 0;
  mapreduce::TaskScheduler::Stats reduce_scheduler_stats;

  // Metrics of §3, filled by finalize_metrics().
  Seconds t1_seconds = 0.0;           // best sequential time (Equation 1's T1)
  double parallel_efficiency = 0.0;   // Equation 1
  Seconds per_core_task_seconds = 0;  // Equation 2

  /// Execution intervals; populated when SimRunParams::record_trace is set.
  std::vector<TaskTraceEntry> trace;
};

/// Classic Cloud (EC2/Azure flavor decided by the deployment's instance
/// provider): queue-scheduled independent workers over blob storage.
RunResult run_classic_cloud_sim(const Workload& workload, const Deployment& deployment,
                                const ExecutionModel& model, const SimRunParams& params);

/// Elastic-fleet knobs for run_elastic_classic_sim. The deployment's
/// `instances` field is reinterpreted as the Equation-1 core budget (set it
/// to autoscaler.max_instances); the actual fleet size is the Autoscaler's
/// business, starting from min_instances.
struct ElasticSimParams {
  cloud::AutoscalerConfig autoscaler;
  /// Target fraction of launched instances placed on the spot market.
  /// Min-floor refills after revocations always launch on-demand.
  double spot_fraction = 0.5;
  double spot_discount = cloud::kDefaultSpotDiscount;
  /// Sim seconds from scale-out to the instance's workers polling.
  Seconds boot_time = 60.0;
  /// Autoscaler decision (and revocation-site firing) period.
  Seconds autoscale_interval = 30.0;
  /// Notice window of storm revocations (0 = hard kills, no notice).
  Seconds revocation_notice = 90.0;
  /// Sim times of correlated revocation storms: at each, every running spot
  /// instance is revoked with probability `revocation_rate`.
  std::vector<Seconds> storm_times;
  double revocation_rate = 0.2;
};

/// One autoscale-tick observation of the fleet, for the size-vs-time
/// artifact the elasticity-smoke CI job uploads.
struct FleetSizePoint {
  Seconds t = 0.0;
  int active = 0;  // booting + running + draining
  int spot = 0;    // spot instances up (running or draining)
};

/// Elasticity telemetry of one run, alongside the shared RunResult.
struct ElasticRunStats {
  int peak_instances = 0;
  std::int64_t scale_out_events = 0;
  std::int64_t scale_in_events = 0;
  std::int64_t revocations = 0;
  std::int64_t hard_kills = 0;
  std::int64_t drains_completed = 0;
  Seconds total_drain_seconds = 0.0;
  std::uint64_t stale_terminates = 0;
  /// Hour-unit bill split by market (Fleet::CostBreakdown views).
  Dollars cost_on_demand = 0.0;
  Dollars cost_spot = 0.0;
  Dollars cost_on_demand_equivalent = 0.0;
  std::vector<FleetSizePoint> fleet_size_series;

  Dollars spot_savings() const {
    return cost_on_demand_equivalent - (cost_on_demand + cost_spot);
  }
};

/// Classic Cloud data plane (queue + blob storage) driven by an autoscaled
/// ElasticFleet: scale-out on backlog, billing-boundary scale-in after a
/// graceful drain, spot instances revocable via FaultPlan::revoke_spot rules
/// at cloud::sites::kSpotRevoke and via seeded storms. Registers the classic
/// probes plus fleet.size / fleet.spot_running / spot.revocations /
/// fleet.drain_seconds / fleet.scale_events.rate when params.monitor is set.
/// The worker block cache is not modelled for elastic fleets
/// (params.enable_block_cache must be off).
RunResult run_elastic_classic_sim(const Workload& workload, const Deployment& deployment,
                                  const ExecutionModel& model, const SimRunParams& params,
                                  const ElasticSimParams& elastic,
                                  ElasticRunStats* stats = nullptr);

/// Hadoop-analog: HDFS-resident inputs, locality-aware dynamic global-queue
/// scheduling, speculative execution.
RunResult run_mapreduce_sim(const Workload& workload, const Deployment& deployment,
                            const ExecutionModel& model, const SimRunParams& params);

/// DryadLINQ-analog: static node-level partitions over node-local shares.
RunResult run_dryad_sim(const Workload& workload, const Deployment& deployment,
                        const ExecutionModel& model, const SimRunParams& params);

/// Fills t1_seconds, parallel_efficiency (Eq 1) and per_core_task_seconds
/// (Eq 2). Called by the drivers; exposed for tests.
void finalize_metrics(RunResult& result, const Workload& workload, const Deployment& deployment,
                      const ExecutionModel& model);

/// Publishes a finished run into `metrics` under the "<framework>." prefix:
/// counters (tasks, completed, duplicate_executions), gauges
/// (parallel_efficiency = Eq 1, per_core_task_seconds = Eq 2, makespan,
/// t1_seconds) and the "task_exec_seconds" histogram. The drivers call this
/// when SimRunParams::metrics is set; CLI and benches read Eq 1/Eq 2 from
/// the registry instead of the per-substrate result struct.
void publish_run_metrics(const RunResult& result, runtime::MetricsRegistry& metrics);

}  // namespace ppc::core
