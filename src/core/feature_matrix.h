// Table 3 of the paper ("Summary of cloud technology features") as
// structured data: the qualitative comparison of the three framework
// families. Kept in code so the bench that prints it and the tests that
// check it against the *implemented* behaviour (e.g. which engines
// re-execute slow tasks) cannot drift from the documentation.
#pragma once

#include <string>
#include <vector>

#include "common/table.h"

namespace ppc::core {

struct FrameworkFeatures {
  std::string framework;            // column header of Table 3
  std::string programming_patterns;
  std::string fault_tolerance;
  std::string data_storage;
  std::string environments;
  std::string scheduling;
  /// Machine-checkable bits the engines must agree with:
  bool dynamic_global_queue = false;
  bool data_locality_aware = false;
  bool speculative_execution = false;
  bool static_partitioning = false;
  bool visibility_timeout_fault_tolerance = false;
};

/// The three rows of Table 3: AWS/Azure Classic Cloud, Hadoop, DryadLINQ.
std::vector<FrameworkFeatures> framework_feature_matrix();

/// Renders the matrix in the paper's row/column orientation.
ppc::Table feature_matrix_table();

}  // namespace ppc::core
