// Per-figure experiment functions: each regenerates one table/figure of the
// paper's evaluation and returns the rows/series the figure plots. The
// bench binaries print these; EXPERIMENTS.md records paper-vs-measured.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "billing/cost_model.h"
#include "cloud/scheduler_policy.h"
#include "core/drivers.h"

namespace ppc::core {

// --- Instance-type studies (Figures 3/4, 7/8, 12/13): 16 cores, EC2 ---
//
// Every study accepts a trailing storage backend selector. The default
// (object store) reproduces the checked-in baselines byte-for-byte; the
// shared/parallel-FS variants re-run the same figure with the data plane
// swapped, producing the per-backend rows the storage benches print.

struct InstanceTypeRow {
  std::string label;        // "EC2-HCXL - 2x8"
  std::string storage;      // backend the data plane ran on
  Seconds compute_time = 0.0;
  Dollars cost_hour_units = 0.0;
  Dollars cost_amortized = 0.0;
  Dollars storage_service_cost = 0.0;  // FS server-hours (object: 0)
};

/// Figures 3 & 4: Cap3, 200 files x 200 reads on 16 cores.
std::vector<InstanceTypeRow> run_cap3_ec2_instance_study(
    unsigned seed = 42, storage::StorageKind backend = storage::StorageKind::kObject);

/// Figures 7 & 8: BLAST, 64 query files x 100 queries on 16 cores.
std::vector<InstanceTypeRow> run_blast_ec2_instance_study(
    unsigned seed = 42, storage::StorageKind backend = storage::StorageKind::kObject);

/// Figures 12 & 13: GTM Interpolation, 264 files x 100k points on 16 cores.
std::vector<InstanceTypeRow> run_gtm_ec2_instance_study(
    unsigned seed = 42, storage::StorageKind backend = storage::StorageKind::kObject);

// --- Figure 9: BLAST on Azure, workers x threads grid, 8 cores total ---

struct AzureBlastRow {
  std::string label;  // "Azure-Large x2: 2x2" (instances: workers x threads)
  Seconds compute_time = 0.0;
  Dollars cost_amortized = 0.0;
};

std::vector<AzureBlastRow> run_blast_azure_instance_study(
    unsigned seed = 42, storage::StorageKind backend = storage::StorageKind::kObject);

// --- Scalability studies (Figures 5/6, 10/11, 14/15) ---

struct ScalingPoint {
  std::string framework;
  std::string deployment;
  std::string storage;  // "local" for unstaged MapReduce/Dryad rows
  int files = 0;
  double efficiency = 0.0;            // Figure 5/10/14
  Seconds per_core_task_seconds = 0;  // Figure 6/11/15
  Seconds makespan = 0.0;
};

/// Figures 5 & 6: Cap3, replicated 458-read files across four frameworks
/// (EC2 16xHCXL, Azure 128xSmall, Hadoop & DryadLINQ on the 32x8-core
/// bare-metal cluster). Non-object backends also stage MapReduce/Dryad
/// inputs through the selected backend.
std::vector<ScalingPoint> run_cap3_scaling_study(
    unsigned seed = 42, const std::vector<int>& file_counts = {512, 1024, 2048, 3072, 4096},
    storage::StorageKind backend = storage::StorageKind::kObject);

/// Figures 10 & 11: BLAST, the inhomogeneous 128-file set replicated 1-6x
/// (EC2 16xHCXL, Azure 16xLarge, Hadoop on iDataplex, Dryad on HPCS).
std::vector<ScalingPoint> run_blast_scaling_study(
    unsigned seed = 42, const std::vector<int>& replications = {1, 2, 3, 4, 5, 6},
    storage::StorageKind backend = storage::StorageKind::kObject);

/// Figures 14 & 15: GTM Interpolation on ~64 cores per framework, sweeping
/// the PubChem subset size (files of 100k points).
std::vector<ScalingPoint> run_gtm_scaling_study(
    unsigned seed = 42, const std::vector<int>& file_counts = {88, 176, 264},
    storage::StorageKind backend = storage::StorageKind::kObject);

// --- Table 4: cost to assemble 4096 Cap3 files ---

struct Table4Report {
  billing::CostReport ec2{"EC2 (16 x HCXL)"};
  billing::CostReport azure{"Azure (128 x Small)"};
  /// The queue-batching win: the "Queue messages" line as billed (batch
  /// APIs) vs what the same traffic costs one request per message.
  billing::QueueBatchingSavings ec2_queue_batching;
  billing::QueueBatchingSavings azure_queue_batching;
  /// (utilization, job cost) for the owned cluster at 80/70/60%.
  std::vector<std::pair<double, Dollars>> cluster_costs;
  std::string storage_backend = "object";
  Seconds ec2_makespan = 0.0;
  Seconds azure_makespan = 0.0;
  double cluster_core_hours = 0.0;
};

/// With a shared/parallel-FS backend the per-GB storage/transfer line items
/// are replaced by the FS line items: flat per-GB-month storage plus the
/// metered server-hours for the job.
Table4Report run_table4_cost_comparison(
    unsigned seed = 42, storage::StorageKind backend = storage::StorageKind::kObject);

// --- Table 4 extension: the cheapest config meeting deadline D ---

/// One deadline's winners from the SchedulerPolicy catalog sweep: the
/// all-on-demand plan next to the half-spot plan (kDefaultSpotDiscount),
/// so the table shows what the spot market is worth at each deadline.
struct DeadlineSweepRow {
  Seconds deadline = 0.0;
  cloud::FleetPlan on_demand;
  cloud::FleetPlan half_spot;
};

/// Sweeps "cheapest config meeting deadline D" for the Table 4 job (4096
/// Cap3 files) over the paper's rentable catalog (EC2 Large/HCXL/HM4XL,
/// Azure Small/Large). T1 is the job's modelled sequential work on one
/// EC2-HCXL core. Tight deadlines can be infeasible for every type; such
/// rows carry infeasible plans with the blocking constraint in `note`.
std::vector<DeadlineSweepRow> run_table4_deadline_sweep(
    const std::vector<Seconds>& deadlines = {3600.0, 7200.0, 14400.0, 28800.0,
                                             57600.0});

// --- §3: sustained performance variability ---

struct VariabilityReport {
  double ec2_cv = 0.0;    // coefficient of variation of repeated runs
  double azure_cv = 0.0;  // paper: 1.56% and 2.25%
  int samples_per_provider = 0;
};

VariabilityReport run_sustained_variability_study(unsigned seed = 42, int samples = 28);

}  // namespace ppc::core
