#include "core/workload.h"

#include "common/error.h"

namespace ppc::core {

std::string to_string(AppKind app) {
  switch (app) {
    case AppKind::kCap3: return "Cap3";
    case AppKind::kBlast: return "BLAST";
    case AppKind::kGtm: return "GTM";
  }
  return "?";
}

Workload make_cap3_workload(int files, int reads_per_file) {
  PPC_REQUIRE(files >= 1 && reads_per_file >= 1, "invalid Cap3 workload shape");
  Workload w;
  w.app = AppKind::kCap3;
  w.name = "cap3-" + std::to_string(files) + "x" + std::to_string(reads_per_file);
  w.tasks.reserve(static_cast<std::size_t>(files));
  // A Sanger read in FASTA is ~560 bytes (550 bases + header); the result
  // file is of the same order (§4: "hundreds of kilobytes to few MB").
  const Bytes per_read = 560.0;
  for (int i = 0; i < files; ++i) {
    SimTask t;
    t.id = i;
    t.work = static_cast<double>(reads_per_file);
    t.input_size = per_read * reads_per_file;
    t.output_size = 0.6 * t.input_size;
    w.tasks.push_back(t);
  }
  return w;
}

Workload make_blast_workload(int files, int queries_per_file, unsigned seed, int base_set,
                             double inhomogeneity_cv, Bytes nr_db_size) {
  PPC_REQUIRE(files >= 1 && queries_per_file >= 1, "invalid BLAST workload shape");
  PPC_REQUIRE(base_set >= 1, "base set must be >= 1");
  PPC_REQUIRE(nr_db_size >= 0.0, "NR database size must be >= 0");
  Workload w;
  w.app = AppKind::kBlast;
  w.name = "blast-" + std::to_string(files) + "x" + std::to_string(queries_per_file);
  w.shared_input_size = nr_db_size;
  w.tasks.reserve(static_cast<std::size_t>(files));

  // Per-file work factors for the inhomogeneous base set; replication
  // repeats the same factors (§5.2: larger sets replicate the base set, so
  // per-file character is preserved).
  ppc::Rng rng(seed);
  std::vector<double> base_factor(static_cast<std::size_t>(base_set));
  for (double& f : base_factor) f = rng.jittered(1.0, inhomogeneity_cv, 0.3);

  // §5: "files with sizes in the range of 7-8 KB", outputs "few bytes to a
  // few Megabytes".
  for (int i = 0; i < files; ++i) {
    SimTask t;
    t.id = i;
    t.work = static_cast<double>(queries_per_file);
    t.work_factor = base_factor[static_cast<std::size_t>(i % base_set)];
    t.input_size = 7.5 * 1024.0;
    t.output_size = 512.0 * 1024.0 * t.work_factor;
    w.tasks.push_back(t);
  }
  return w;
}

Workload make_gtm_workload(int files, double points_per_file, Bytes training_matrix_size) {
  PPC_REQUIRE(files >= 1 && points_per_file >= 1.0, "invalid GTM workload shape");
  PPC_REQUIRE(training_matrix_size >= 0.0, "training matrix size must be >= 0");
  Workload w;
  w.app = AppKind::kGtm;
  w.name = "gtm-" + std::to_string(files) + "files";
  w.shared_input_size = training_matrix_size;
  w.tasks.reserve(static_cast<std::size_t>(files));
  // 100k points x 166 dims x 8 bytes ≈ 127 MB raw; compressed splits are
  // ~4x smaller (§6.2 ships compressed splits and unzips before executing).
  const Bytes compressed = points_per_file * 166.0 * 8.0 / 4.0;
  for (int i = 0; i < files; ++i) {
    SimTask t;
    t.id = i;
    t.work = points_per_file;
    t.input_size = compressed;
    // Output is 2 coordinates per point — "orders of magnitude smaller".
    t.output_size = points_per_file * 2.0 * 8.0;
    w.tasks.push_back(t);
  }
  return w;
}

}  // namespace ppc::core
