// Workload descriptions for the paper's three applications, in the form the
// discrete-event drivers consume: per-task input/output sizes and abstract
// "work" amounts that the app cost models translate into seconds.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace ppc::core {

enum class AppKind { kCap3, kBlast, kGtm };

std::string to_string(AppKind app);

struct SimTask {
  int id = 0;
  Bytes input_size = 0.0;
  Bytes output_size = 0.0;
  /// App-specific work amount: reads (Cap3), queries (BLAST), points (GTM).
  double work = 0.0;
  /// Content-dependent runtime multiplier; != 1 for inhomogeneous sets.
  double work_factor = 1.0;
};

struct Workload {
  AppKind app = AppKind::kCap3;
  std::string name;
  std::vector<SimTask> tasks;
  /// Job-wide reference dataset every task reads in addition to its own
  /// input (the BLAST NR database, the GTM training matrix). 0 = none.
  /// With a worker block cache enabled this is downloaded once per worker;
  /// without one, once per task.
  Bytes shared_input_size = 0.0;

  std::size_t size() const { return tasks.size(); }
};

/// Cap3: `files` FASTA files of `reads_per_file` reads each. The paper's
/// sets are replicated (homogeneous): "we used a replicated set of input
/// data files making each sub task identical" (§4.2). File size follows the
/// §4 description (hundreds of KB for 458 Sanger reads).
Workload make_cap3_workload(int files, int reads_per_file);

/// BLAST: `files` query files of `queries_per_file` queries (7-8 KB files,
/// §5). The base set of `base_set` files is inhomogeneous (per-file work
/// factors drawn once), and larger sets replicate it: "the base 128-file
/// data set is inhomogeneous" (§5.2). `nr_db_size` > 0 marks the NR
/// database as a job-wide shared input every task must read (§5.1 stages it
/// to each node); 0 keeps the database out of the modelled data plane, as
/// the checked-in baselines assume pre-staged local copies.
Workload make_blast_workload(int files, int queries_per_file, unsigned seed,
                             int base_set = 128, double inhomogeneity_cv = 0.30,
                             Bytes nr_db_size = 0.0);

/// GTM: `files` compressed splits of `points_per_file` 166-dim points
/// (§6.2: 264 files x 100k points; "Compressed data splits ... were used
/// due to the large size of the input data"). `training_matrix_size` > 0
/// marks the interpolation training matrix as a job-wide shared input;
/// 0 = pre-staged (baseline behaviour).
Workload make_gtm_workload(int files, double points_per_file = 100000.0,
                           Bytes training_matrix_size = 0.0);

}  // namespace ppc::core
