#include "core/exec_model.h"

#include "common/error.h"

namespace ppc::core {

Deployment make_deployment(const cloud::InstanceType& type, int instances,
                           int workers_per_instance, int threads_per_worker) {
  PPC_REQUIRE(instances >= 1, "instances must be >= 1");
  PPC_REQUIRE(workers_per_instance >= 1, "workers per instance must be >= 1");
  PPC_REQUIRE(threads_per_worker >= 1, "threads per worker must be >= 1");
  PPC_REQUIRE(workers_per_instance * threads_per_worker <= type.cpu_cores,
              "deployment oversubscribes the instance's cores");
  Deployment d;
  d.type = type;
  d.instances = instances;
  d.workers_per_instance = workers_per_instance;
  d.threads_per_worker = threads_per_worker;
  d.label = type.name + " - " + std::to_string(instances) + "x" +
            std::to_string(workers_per_instance);
  if (threads_per_worker > 1) d.label += "x" + std::to_string(threads_per_worker) + "t";
  return d;
}

Seconds ExecutionModel::sample(const SimTask& task, const Deployment& d, ppc::Rng& rng) const {
  switch (app_) {
    case AppKind::kCap3:
      return cap3.sample_seconds(static_cast<std::size_t>(task.work), d.type, rng) *
             task.work_factor;
    case AppKind::kBlast:
      return blast.sample_seconds(static_cast<std::size_t>(task.work), task.work_factor, d.type,
                                  d.threads_per_worker, d.busy_cores_per_instance(), rng);
    case AppKind::kGtm:
      return gtm.sample_seconds(task.work, d.type, d.busy_cores_per_instance(), rng) *
             task.work_factor;
  }
  throw ppc::InternalError("unknown app kind");
}

Seconds ExecutionModel::expected_sequential(const SimTask& task,
                                            const cloud::InstanceType& type) const {
  switch (app_) {
    case AppKind::kCap3:
      return cap3.expected_seconds(static_cast<std::size_t>(task.work), type) * task.work_factor;
    case AppKind::kBlast:
      return blast.expected_seconds(static_cast<std::size_t>(task.work), task.work_factor, type,
                                    /*threads=*/1);
    case AppKind::kGtm:
      return gtm.expected_seconds(task.work, type, /*busy_cores=*/1) * task.work_factor;
  }
  throw ppc::InternalError("unknown app kind");
}

double ExecutionModel::sample_run_factor(cloud::Provider provider, ppc::Rng& rng) const {
  // §3 / Gunarathne et al [12]: std-dev 1.56% (AWS), 2.25% (Azure); owned
  // hardware is steadier still.
  double cv = 0.01;
  if (provider == cloud::Provider::kAmazonEC2) cv = 0.0156;
  if (provider == cloud::Provider::kWindowsAzure) cv = 0.0225;
  return rng.jittered(1.0, cv, 0.9);
}

}  // namespace ppc::core
