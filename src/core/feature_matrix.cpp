#include "core/feature_matrix.h"

namespace ppc::core {

std::vector<FrameworkFeatures> framework_feature_matrix() {
  std::vector<FrameworkFeatures> rows(3);

  FrameworkFeatures& classic = rows[0];
  classic.framework = "AWS / Azure (Classic Cloud)";
  classic.programming_patterns =
      "Independent job execution; more structure possible via a client-side driver";
  classic.fault_tolerance = "Task re-execution based on a configurable visibility timeout";
  classic.data_storage = "S3 / Azure Storage; data retrieved through HTTP";
  classic.environments = "EC2 / Azure virtual instances; local compute resources";
  classic.scheduling =
      "Dynamic scheduling through a global queue; natural load balancing";
  classic.dynamic_global_queue = true;
  classic.visibility_timeout_fault_tolerance = true;

  FrameworkFeatures& hadoop = rows[1];
  hadoop.framework = "Hadoop";
  hadoop.programming_patterns = "MapReduce";
  hadoop.fault_tolerance = "Re-execution of failed and slow tasks";
  hadoop.data_storage = "HDFS parallel file system; TCP-based communication";
  hadoop.environments = "Linux cluster; Amazon Elastic MapReduce";
  hadoop.scheduling =
      "Data locality, rack-aware dynamic task scheduling through a global queue; "
      "natural load balancing";
  hadoop.dynamic_global_queue = true;
  hadoop.data_locality_aware = true;
  hadoop.speculative_execution = true;

  FrameworkFeatures& dryad = rows[2];
  dryad.framework = "DryadLINQ";
  dryad.programming_patterns = "DAG execution; extensible to MapReduce and other patterns";
  dryad.fault_tolerance = "Re-execution of failed and slow tasks";
  dryad.data_storage = "Local files";
  dryad.environments = "Windows HPCS cluster";
  dryad.scheduling =
      "Data locality, network-topology-aware scheduling; static task partitions at the "
      "node level, suboptimal load balancing";
  dryad.data_locality_aware = true;
  dryad.static_partitioning = true;

  return rows;
}

ppc::Table feature_matrix_table() {
  const auto rows = framework_feature_matrix();
  ppc::Table table("Table 3: Summary of cloud technology features");
  table.set_header({"Feature", rows[0].framework, rows[1].framework, rows[2].framework});
  table.add_row({"Programming patterns", rows[0].programming_patterns,
                 rows[1].programming_patterns, rows[2].programming_patterns});
  table.add_row({"Fault tolerance", rows[0].fault_tolerance, rows[1].fault_tolerance,
                 rows[2].fault_tolerance});
  table.add_row({"Data storage", rows[0].data_storage, rows[1].data_storage,
                 rows[2].data_storage});
  table.add_row({"Environments", rows[0].environments, rows[1].environments,
                 rows[2].environments});
  table.add_row({"Scheduling & load balancing", rows[0].scheduling, rows[1].scheduling,
                 rows[2].scheduling});
  return table;
}

}  // namespace ppc::core
