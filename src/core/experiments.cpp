#include "core/experiments.h"

#include "common/error.h"
#include "common/units.h"

namespace ppc::core {

namespace {

/// The four 16-core EC2 layouts of §3: "HCXL - 2 X 8 means two
/// High-CPU-Extra-Large instances were used with 8 workers per instance."
std::vector<Deployment> ec2_16core_deployments() {
  return {
      make_deployment(cloud::ec2_large(), 8, 2),
      make_deployment(cloud::ec2_xlarge(), 4, 4),
      make_deployment(cloud::ec2_hcxl(), 2, 8),
      make_deployment(cloud::ec2_hm4xl(), 2, 8),
  };
}

InstanceTypeRow run_one_instance_row(const Workload& workload, const Deployment& d,
                                     const ExecutionModel& model, unsigned seed,
                                     storage::StorageKind backend) {
  SimRunParams params;
  params.seed = seed;
  params.storage = backend;
  const RunResult r = run_classic_cloud_sim(workload, d, model, params);
  InstanceTypeRow row;
  row.label = d.label;
  row.storage = r.storage_backend;
  row.compute_time = r.makespan;
  row.cost_hour_units = r.compute_cost_hour_units;
  row.cost_amortized = r.compute_cost_amortized;
  row.storage_service_cost = r.storage_service_cost;
  return row;
}

/// Windows flavor of the Cap3 bare-metal node (the same 32x8 cluster runs
/// DryadLINQ under Windows HPCS, §4.2).
cloud::InstanceType windows_variant(const cloud::InstanceType& type) {
  cloud::InstanceType t = type;
  t.platform = cloud::Platform::kWindows;
  t.name = type.name + "-Win";
  return t;
}

}  // namespace

std::vector<InstanceTypeRow> run_cap3_ec2_instance_study(unsigned seed,
                                                         storage::StorageKind backend) {
  const Workload workload = make_cap3_workload(/*files=*/200, /*reads_per_file=*/200);
  const ExecutionModel model(AppKind::kCap3);
  std::vector<InstanceTypeRow> rows;
  for (const Deployment& d : ec2_16core_deployments()) {
    rows.push_back(run_one_instance_row(workload, d, model, seed, backend));
  }
  return rows;
}

std::vector<InstanceTypeRow> run_blast_ec2_instance_study(unsigned seed,
                                                          storage::StorageKind backend) {
  const Workload workload =
      make_blast_workload(/*files=*/64, /*queries_per_file=*/100, /*seed=*/seed);
  const ExecutionModel model(AppKind::kBlast);
  std::vector<InstanceTypeRow> rows;
  for (const Deployment& d : ec2_16core_deployments()) {
    rows.push_back(run_one_instance_row(workload, d, model, seed, backend));
  }
  return rows;
}

std::vector<InstanceTypeRow> run_gtm_ec2_instance_study(unsigned seed,
                                                        storage::StorageKind backend) {
  const Workload workload = make_gtm_workload(/*files=*/264);
  const ExecutionModel model(AppKind::kGtm);
  std::vector<InstanceTypeRow> rows;
  for (const Deployment& d : ec2_16core_deployments()) {
    rows.push_back(run_one_instance_row(workload, d, model, seed, backend));
  }
  return rows;
}

std::vector<AzureBlastRow> run_blast_azure_instance_study(unsigned seed,
                                                          storage::StorageKind backend) {
  // §5.1 / Figure 9: 8 query files, 8 cores total, every (workers x threads)
  // factorization of each instance type's core count.
  struct Config {
    const cloud::InstanceType& type;
    int instances;
    int workers;
    int threads;
  };
  const std::vector<Config> configs = {
      {cloud::azure_small(), 8, 1, 1},
      {cloud::azure_medium(), 4, 2, 1},
      {cloud::azure_medium(), 4, 1, 2},
      {cloud::azure_large(), 2, 4, 1},
      {cloud::azure_large(), 2, 2, 2},
      {cloud::azure_large(), 2, 1, 4},
      {cloud::azure_xlarge(), 1, 8, 1},
      {cloud::azure_xlarge(), 1, 4, 2},
      {cloud::azure_xlarge(), 1, 2, 4},
      {cloud::azure_xlarge(), 1, 1, 8},
  };
  // A controlled homogeneous 8-file set: the figure compares platforms, so
  // content inhomogeneity would only blur the memory/threading effects.
  const Workload workload = make_blast_workload(/*files=*/8, /*queries_per_file=*/100, seed,
                                                /*base_set=*/128, /*inhomogeneity_cv=*/0.0);
  const ExecutionModel model(AppKind::kBlast);
  std::vector<AzureBlastRow> rows;
  for (const Config& c : configs) {
    const Deployment d = make_deployment(c.type, c.instances, c.workers, c.threads);
    SimRunParams params;
    params.seed = seed;
    params.storage = backend;
    const RunResult r = run_classic_cloud_sim(workload, d, model, params);
    AzureBlastRow row;
    row.label = d.label;
    row.compute_time = r.makespan;
    row.cost_amortized = r.compute_cost_amortized;
    rows.push_back(row);
  }
  return rows;
}

namespace {

struct FrameworkSetup {
  enum class Kind { kClassicCloud, kMapReduce, kDryad } kind;
  Deployment deployment;
};

std::vector<ScalingPoint> run_scaling(const std::vector<FrameworkSetup>& setups,
                                      AppKind app,
                                      const std::vector<Workload>& workloads, unsigned seed,
                                      storage::StorageKind backend) {
  const ExecutionModel model(app);
  std::vector<ScalingPoint> points;
  for (const FrameworkSetup& setup : setups) {
    for (const Workload& w : workloads) {
      SimRunParams params;
      params.seed = seed;
      params.storage = backend;
      // FS rows also model the MapReduce/Dryad input distribution through
      // the backend; the object default keeps the baseline (pre-placed).
      params.stage_inputs = backend != storage::StorageKind::kObject;
      RunResult r;
      switch (setup.kind) {
        case FrameworkSetup::Kind::kClassicCloud:
          r = run_classic_cloud_sim(w, setup.deployment, model, params);
          break;
        case FrameworkSetup::Kind::kMapReduce:
          r = run_mapreduce_sim(w, setup.deployment, model, params);
          break;
        case FrameworkSetup::Kind::kDryad:
          r = run_dryad_sim(w, setup.deployment, model, params);
          break;
      }
      ScalingPoint p;
      p.framework = r.framework;
      p.deployment = setup.deployment.label;
      p.storage = r.storage_backend;
      p.files = static_cast<int>(w.size());
      p.efficiency = r.parallel_efficiency;
      p.per_core_task_seconds = r.per_core_task_seconds;
      p.makespan = r.makespan;
      points.push_back(p);
    }
  }
  return points;
}

}  // namespace

std::vector<ScalingPoint> run_cap3_scaling_study(unsigned seed,
                                                 const std::vector<int>& file_counts,
                                                 storage::StorageKind backend) {
  // §4.2: EC2 16 HCXL, Azure 128 Small, Hadoop/Dryad on 32 x 8-core nodes.
  const std::vector<FrameworkSetup> setups = {
      {FrameworkSetup::Kind::kClassicCloud, make_deployment(cloud::ec2_hcxl(), 16, 8)},
      {FrameworkSetup::Kind::kClassicCloud, make_deployment(cloud::azure_small(), 128, 1)},
      {FrameworkSetup::Kind::kMapReduce, make_deployment(cloud::bare_metal_cap3_node(), 32, 8)},
      {FrameworkSetup::Kind::kDryad,
       make_deployment(windows_variant(cloud::bare_metal_cap3_node()), 32, 8)},
  };
  std::vector<Workload> workloads;
  for (int files : file_counts) workloads.push_back(make_cap3_workload(files, 458));
  return run_scaling(setups, AppKind::kCap3, workloads, seed, backend);
}

std::vector<ScalingPoint> run_blast_scaling_study(unsigned seed,
                                                  const std::vector<int>& replications,
                                                  storage::StorageKind backend) {
  // §5.2: EC2 16 HCXL, Azure 16 Large, Hadoop on iDataplex 8-core nodes,
  // Dryad on 16-core HPCS nodes.
  const std::vector<FrameworkSetup> setups = {
      {FrameworkSetup::Kind::kClassicCloud, make_deployment(cloud::ec2_hcxl(), 16, 8)},
      {FrameworkSetup::Kind::kClassicCloud, make_deployment(cloud::azure_large(), 16, 4)},
      {FrameworkSetup::Kind::kMapReduce,
       make_deployment(cloud::bare_metal_idataplex_node(), 16, 8)},
      {FrameworkSetup::Kind::kDryad, make_deployment(cloud::bare_metal_hpcs_node(), 8, 16)},
  };
  std::vector<Workload> workloads;
  for (int k : replications) {
    workloads.push_back(make_blast_workload(128 * k, 100, seed, /*base_set=*/128));
  }
  return run_scaling(setups, AppKind::kBlast, workloads, seed, backend);
}

std::vector<ScalingPoint> run_gtm_scaling_study(unsigned seed,
                                                const std::vector<int>& file_counts,
                                                storage::StorageKind backend) {
  // §6.2: EC2 Large / HCXL / HM4XL tested separately, Azure Small, Hadoop
  // on the 48 GB nodes (8 cores used), Dryad on 16-core nodes. ~64 cores
  // per framework.
  const std::vector<FrameworkSetup> setups = {
      {FrameworkSetup::Kind::kClassicCloud, make_deployment(cloud::ec2_large(), 32, 2)},
      {FrameworkSetup::Kind::kClassicCloud, make_deployment(cloud::ec2_hcxl(), 8, 8)},
      {FrameworkSetup::Kind::kClassicCloud, make_deployment(cloud::ec2_hm4xl(), 8, 8)},
      {FrameworkSetup::Kind::kClassicCloud, make_deployment(cloud::azure_small(), 64, 1)},
      {FrameworkSetup::Kind::kMapReduce,
       make_deployment(cloud::bare_metal_gtm_hadoop_node(), 8, 8)},
      {FrameworkSetup::Kind::kDryad, make_deployment(cloud::bare_metal_hpcs_node(), 4, 16)},
  };
  std::vector<Workload> workloads;
  for (int files : file_counts) workloads.push_back(make_gtm_workload(files));
  return run_scaling(setups, AppKind::kGtm, workloads, seed, backend);
}

Table4Report run_table4_cost_comparison(unsigned seed, storage::StorageKind backend) {
  Table4Report report;
  report.storage_backend = storage::to_string(backend);
  const Workload workload = make_cap3_workload(/*files=*/4096, /*reads_per_file=*/458);
  const ExecutionModel model(AppKind::kCap3);

  Bytes total_in = 0.0, total_out = 0.0;
  for (const SimTask& t : workload.tasks) {
    total_in += t.input_size;
    total_out += t.output_size;
  }
  const double gb_in = to_gigabytes(total_in);
  const double gb_out = to_gigabytes(total_out);

  const bool fs_backend = backend != storage::StorageKind::kObject;

  // EC2: 16 HCXL instances, 128 workers.
  {
    SimRunParams params;
    params.seed = seed;
    params.storage = backend;
    const Deployment d = make_deployment(cloud::ec2_hcxl(), 16, 8);
    const RunResult r = run_classic_cloud_sim(workload, d, model, params);
    report.ec2_makespan = r.makespan;
    report.ec2.add("Compute Cost (hour units)", r.compute_cost_hour_units);
    report.ec2.add("Queue messages", r.queue_request_cost);
    report.ec2_queue_batching =
        billing::queue_batching_savings(r.queue_api_requests, r.queue_unbatched_requests);
    if (fs_backend) {
      // An FS data plane bills flat capacity plus server-hours instead of
      // per-GB transfer and per-request fees.
      report.ec2.add("FS storage (1 month)", billing::storage_cost(total_in, 1.0, 0.10));
      report.ec2.add("FS servers", r.storage_service_cost);
    } else {
      report.ec2.add("Storage (1 month)", billing::storage_cost(total_in, 1.0, 0.14));
      // The paper charges EC2 only for transfer in (results stay in-region).
      report.ec2.add("Data transfer in", billing::transfer_cost(gb_in, 0.0, 0.10, 0.0));
    }
  }

  // Azure: 128 Small instances.
  {
    SimRunParams params;
    params.seed = seed + 1;
    params.storage = backend;
    const Deployment d = make_deployment(cloud::azure_small(), 128, 1);
    const RunResult r = run_classic_cloud_sim(workload, d, model, params);
    report.azure_makespan = r.makespan;
    report.azure.add("Compute Cost (hour units)", r.compute_cost_hour_units);
    report.azure.add("Queue messages", r.queue_request_cost);
    report.azure_queue_batching =
        billing::queue_batching_savings(r.queue_api_requests, r.queue_unbatched_requests);
    if (fs_backend) {
      report.azure.add("FS storage (1 month)", billing::storage_cost(total_in, 1.0, 0.10));
      report.azure.add("FS servers", r.storage_service_cost);
    } else {
      report.azure.add("Storage (1 month)", billing::storage_cost(total_in, 1.0, 0.15));
      report.azure.add("Data transfer in/out",
                       billing::transfer_cost(gb_in, gb_out, 0.10, 0.15));
    }
  }

  // Owned cluster (§4.3): run the Hadoop analog on the 32-node 24-core
  // cluster and amortize purchase + maintenance over utilized core-hours.
  {
    SimRunParams params;
    params.seed = seed + 2;
    const Deployment d = make_deployment(cloud::bare_metal_cost_cluster_node(), 32, 24);
    const RunResult r = run_mapreduce_sim(workload, d, model, params);
    report.cluster_core_hours = r.makespan * d.total_cores_used() / 3600.0;
    const billing::OwnedClusterModel cluster;
    for (double util : {0.8, 0.7, 0.6}) {
      report.cluster_costs.emplace_back(util,
                                        cluster.job_cost(report.cluster_core_hours, util));
    }
  }
  return report;
}

std::vector<DeadlineSweepRow> run_table4_deadline_sweep(
    const std::vector<Seconds>& deadlines) {
  const Workload workload = make_cap3_workload(/*files=*/4096, /*reads_per_file=*/458);
  const ExecutionModel model(AppKind::kCap3);
  Seconds t1 = 0.0;
  for (const SimTask& t : workload.tasks) {
    t1 += model.expected_sequential(t, cloud::ec2_hcxl());
  }
  const std::vector<cloud::InstanceType> catalog = {
      cloud::ec2_large(), cloud::ec2_hcxl(), cloud::ec2_hm4xl(),
      cloud::azure_small(), cloud::azure_large()};

  std::vector<DeadlineSweepRow> rows;
  for (Seconds deadline : deadlines) {
    DeadlineSweepRow row;
    row.deadline = deadline;
    cloud::PolicyRequest request;
    request.t1_seconds = t1;
    request.deadline = deadline;
    row.on_demand = cloud::SchedulerPolicy(request).cheapest(catalog);
    request.spot_fraction = 0.5;
    row.half_spot = cloud::SchedulerPolicy(request).cheapest(catalog);
    rows.push_back(row);
  }
  return rows;
}

VariabilityReport run_sustained_variability_study(unsigned seed, int samples) {
  PPC_REQUIRE(samples >= 2, "need at least two samples");
  // Repeat a fixed Cap3 computation at "different times of day" (different
  // seeds -> different provider-condition draws) and report the CV of the
  // measured compute times, as Gunarathne et al [12] / §3 did over a week.
  const Workload workload = make_cap3_workload(64, 200);
  const ExecutionModel model(AppKind::kCap3);
  VariabilityReport report;
  report.samples_per_provider = samples;

  auto cv_for = [&](const Deployment& d, unsigned base_seed) {
    ppc::RunningStats stats;
    for (int i = 0; i < samples; ++i) {
      SimRunParams params;
      params.seed = base_seed + static_cast<unsigned>(i);
      const RunResult r = run_classic_cloud_sim(workload, d, model, params);
      stats.add(r.makespan);
    }
    return stats.coefficient_of_variation();
  };
  report.ec2_cv = cv_for(make_deployment(cloud::ec2_hcxl(), 2, 8), seed);
  report.azure_cv = cv_for(make_deployment(cloud::azure_small(), 16, 1), seed + 1000);
  return report;
}

}  // namespace ppc::core
