#include "apps/cap3/fasta.h"

#include <sstream>

#include "common/error.h"
#include "common/string_util.h"

namespace ppc::apps {

std::string write_fasta(const std::vector<FastaRecord>& records, std::size_t line_width) {
  PPC_REQUIRE(line_width >= 1, "line width must be >= 1");
  std::ostringstream os;
  for (const FastaRecord& r : records) {
    os << '>' << r.id << '\n';
    for (std::size_t i = 0; i < r.seq.size(); i += line_width) {
      os << r.seq.substr(i, line_width) << '\n';
    }
    if (r.seq.empty()) os << '\n';
  }
  return os.str();
}

std::vector<FastaRecord> parse_fasta(const std::string& text) {
  std::vector<FastaRecord> records;
  for (const auto& raw_line : ppc::split(text, '\n')) {
    const std::string_view line = ppc::trim(raw_line);
    if (line.empty()) continue;
    if (line.front() == '>') {
      FastaRecord r;
      const std::string_view header = line.substr(1);
      const std::size_t space = header.find_first_of(" \t");
      r.id = std::string(space == std::string_view::npos ? header : header.substr(0, space));
      records.push_back(std::move(r));
    } else {
      PPC_REQUIRE(!records.empty(), "FASTA sequence data before any header");
      records.back().seq.append(line);
    }
  }
  return records;
}

std::string reverse_complement(const std::string& seq) {
  auto complement = [](char c) -> char {
    switch (c) {
      case 'A': return 'T';
      case 'T': return 'A';
      case 'C': return 'G';
      case 'G': return 'C';
      case 'a': return 't';
      case 't': return 'a';
      case 'c': return 'g';
      case 'g': return 'c';
      default: return 'N';
    }
  };
  std::string rc(seq.size(), 'N');
  for (std::size_t i = 0; i < seq.size(); ++i) {
    rc[seq.size() - 1 - i] = complement(seq[i]);
  }
  return rc;
}

std::size_t count_fasta_records(const std::string& text) {
  std::size_t n = 0;
  bool at_line_start = true;
  for (char c : text) {
    if (at_line_start && c == '>') ++n;
    at_line_start = (c == '\n');
  }
  return n;
}

}  // namespace ppc::apps
