// Runtime cost model of the Cap3 executable — feeds the discrete-event
// simulation that regenerates Figures 3-6 and Table 4.
//
// §4 establishes that Cap3 is CPU-bound: "memory is not a bottleneck for
// the Cap3 program and ... performance depends primarily on computational
// power". The model is therefore clock-rate scaling with a small run-to-run
// jitter ("The run time of the Cap3 application depends on the contents of
// the input file") and the §4.2 Windows toolchain factor ("the Cap3 program
// performs ~12.5% faster on Windows environment than on the Linux
// environment").
//
// Calibration: Table 4 charges 16 HCXL instances one hour ($10.88) to
// assemble 4096 files of 458 reads on 128 cores, i.e. <= 112.5 s per file
// on a 2.5 GHz Linux core; we use 105 s, which leaves headroom for queue
// polling, data transfer and content jitter inside the billing hour.
// Everything else follows from the paper's clock-rate annotations.
#pragma once

#include "cloud/instance_types.h"
#include "common/rng.h"
#include "common/units.h"

namespace ppc::apps::cap3 {

struct Cap3CostModel {
  /// Seconds to assemble one 458-read file on one 2.5 GHz Linux core.
  double base_seconds_458_reads = 105.0;
  /// Reference read count of the calibration point.
  double reference_reads = 458.0;
  /// Work grows linearly with reads (overlap candidates are bounded by
  /// coverage, so near-linear is right for fixed-coverage inputs).
  double reads_exponent = 1.0;
  double reference_clock_ghz = 2.5;
  /// §4.2: Windows binaries run ~12.5% faster.
  double windows_factor = 0.875;
  /// Input-content variability of the runtime.
  double jitter_cv = 0.06;

  /// Expected (jitter-free) sequential seconds for one input file.
  Seconds expected_seconds(std::size_t num_reads, const cloud::InstanceType& type) const;

  /// Sampled task duration (expected value with content jitter applied).
  Seconds sample_seconds(std::size_t num_reads, const cloud::InstanceType& type,
                         ppc::Rng& rng) const;
};

}  // namespace ppc::apps::cap3
