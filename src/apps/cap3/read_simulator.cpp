#include "apps/cap3/read_simulator.h"

#include <algorithm>
#include <cctype>

#include "common/error.h"

namespace ppc::apps::cap3 {

namespace {
constexpr char kBases[] = {'A', 'C', 'G', 'T'};

char random_base(ppc::Rng& rng) { return kBases[rng.index(4)]; }

char mutate(char base, ppc::Rng& rng) {
  char other;
  do {
    other = random_base(rng);
  } while (other == base);
  return other;
}
}  // namespace

std::string random_genome(std::size_t length, ppc::Rng& rng) {
  PPC_REQUIRE(length >= 1, "genome length must be >= 1");
  std::string g(length, 'A');
  for (char& c : g) c = random_base(rng);
  return g;
}

SimulatedDataset simulate_shotgun(const ReadSimConfig& config, ppc::Rng& rng) {
  PPC_REQUIRE(config.genome_length >= config.read_length_mean,
              "genome must be at least one read long");
  PPC_REQUIRE(config.num_reads >= 1, "need at least one read");
  PPC_REQUIRE(config.read_length_min >= 1, "read length min must be >= 1");

  SimulatedDataset ds;
  ds.genome = random_genome(config.genome_length, rng);
  ds.reads.reserve(config.num_reads);

  for (std::size_t i = 0; i < config.num_reads; ++i) {
    const auto len_draw = rng.normal(static_cast<double>(config.read_length_mean),
                                     static_cast<double>(config.read_length_stddev));
    const std::size_t len = std::clamp<std::size_t>(
        static_cast<std::size_t>(std::max(1.0, len_draw)), config.read_length_min,
        config.genome_length);
    const std::size_t pos = rng.index(config.genome_length - len + 1);

    std::string seq = ds.genome.substr(pos, len);
    if (config.error_rate > 0.0) {
      for (char& c : seq) {
        if (rng.bernoulli(config.error_rate)) c = mutate(c, rng);
      }
    }
    const bool reversed =
        config.reverse_strand_prob > 0.0 && rng.bernoulli(config.reverse_strand_prob);
    if (reversed) seq = reverse_complement(seq);
    // Poor-quality tail: lowercase bases at one end (randomized garbage, as
    // real chromatogram tails are), removed by the assembler's trimming.
    if (config.poor_tail_max > 0 && rng.bernoulli(config.poor_tail_prob)) {
      const std::size_t tail = 1 + rng.index(config.poor_tail_max);
      std::string junk(tail, 'a');
      for (char& c : junk) c = static_cast<char>(std::tolower(random_base(rng)));
      if (rng.bernoulli(0.5)) {
        seq = junk + seq;
      } else {
        seq += junk;
      }
    }

    FastaRecord r;
    r.id = "read-" + std::to_string(i) + "-pos" + std::to_string(pos) + (reversed ? "-rc" : "");
    r.seq = std::move(seq);
    ds.reads.push_back(std::move(r));
  }
  return ds;
}

std::string make_cap3_input(std::size_t num_reads, ppc::Rng& rng) {
  ReadSimConfig config;
  config.num_reads = num_reads;
  // Scale the genome so coverage stays around 12x regardless of read count
  // — enough overlap for assembly, like the paper's real gene fragments.
  const double target_coverage = 12.0;
  config.genome_length = std::max<std::size_t>(
      2 * config.read_length_mean,
      static_cast<std::size_t>(static_cast<double>(num_reads * config.read_length_mean) /
                               target_coverage));
  config.error_rate = 0.004;
  config.reverse_strand_prob = 0.5;  // real shotgun data covers both strands
  const SimulatedDataset ds = simulate_shotgun(config, rng);
  return write_fasta(ds.reads);
}

}  // namespace ppc::apps::cap3
