// Miniature CAP3-style sequence assembler.
//
// Follows the stages §4 lists for CAP3 (Huang & Madan):
//  1. "removes the poor regions of the DNA fragments"      -> quality trim
//  2. "calculates the overlaps between the fragments"      -> k-mer seeded
//     overlap detection with banded mismatch counting
//  3. "identifies and removes the false overlaps"          -> mismatch-rate
//     filter on the full overlap region
//  4. "joins the fragments to form contigs"                -> greedy
//     best-overlap chaining (union-find prevents cycles)
//  5. "through multiple sequence alignment generates
//     consensus sequences"                                 -> per-column
//     majority vote over the layout
//
// It is a real assembler: given simulated shotgun reads at reasonable
// coverage it reconstructs the source genome (tests assert this). It is the
// "sequential executable" every framework in this repository executes, one
// input FASTA file -> one output report file.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "apps/cap3/fasta.h"

namespace ppc::apps::cap3 {

struct AssemblerConfig {
  std::size_t kmer = 16;
  std::size_t min_overlap = 40;
  /// Maximum mismatch fraction tolerated inside an accepted overlap.
  double max_mismatch_frac = 0.04;
  /// K-mer buckets larger than this are skipped as repeats.
  std::size_t max_kmer_bucket = 32;
  /// Reads shorter than this after trimming become singletons untouched.
  std::size_t min_read_length = 40;
  /// Resolve read orientations before overlap detection (shotgun reads come
  /// from both strands; CAP3 complements reads as needed). Disable only for
  /// known single-strand inputs.
  bool handle_reverse_complements = true;
};

struct Contig {
  std::string consensus;
  std::vector<std::string> read_ids;  // reads laid out in this contig
};

struct AssemblyStats {
  std::size_t input_reads = 0;
  std::size_t trimmed_bases = 0;
  std::size_t overlaps_considered = 0;
  std::size_t overlaps_accepted = 0;
  std::size_t contained_reads = 0;
  /// Reads complemented during orientation resolution.
  std::size_t complemented_reads = 0;
};

struct AssemblyResult {
  std::vector<Contig> contigs;     // multi-read contigs, longest first
  std::vector<FastaRecord> singletons;
  AssemblyStats stats;
};

/// Runs the full pipeline on a read set.
AssemblyResult assemble(const std::vector<FastaRecord>& reads,
                        const AssemblerConfig& config = {});

/// Convenience for the frameworks: FASTA text in, report text out — the
/// file-in/file-out contract of the paper's task ("a single task comprises
/// of a single input file and a single output file").
std::string assemble_fasta_file(const std::string& fasta_text,
                                const AssemblerConfig& config = {});

/// N50 of the contig length distribution (0 when no contigs).
std::size_t n50(const std::vector<Contig>& contigs);

/// Human-readable report: summary line, contig table, consensus FASTA.
std::string assembly_report(const AssemblyResult& result);

/// Removes lowercase (poor-quality) prefix/suffix from a sequence; returns
/// the trimmed sequence (uppercased interior preserved as-is).
std::string trim_poor_regions(const std::string& seq, std::size_t* trimmed_bases = nullptr);

/// Assigns a consistent strand to every read by propagating orientation
/// votes (shared canonical k-mers) through the overlap graph. Returns one
/// flag per read: true = the read must be complemented. Reads in different
/// connected components are oriented independently.
std::vector<bool> resolve_orientations(const std::vector<std::string>& seqs,
                                       const AssemblerConfig& config = {});

}  // namespace ppc::apps::cap3
