#include "apps/cap3/assembler.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdint>
#include <map>
#include <numeric>
#include <sstream>
#include <tuple>
#include <unordered_map>

#include "common/error.h"
#include "common/string_util.h"

namespace ppc::apps::cap3 {

std::vector<bool> resolve_orientations(const std::vector<std::string>& seqs,
                                       const AssemblerConfig& config) {
  const std::size_t k = config.kmer;
  const std::size_t n = seqs.size();

  // Canonical k-mer index: each (read, position) votes with a strand flag —
  // false when the forward k-mer is the canonical form, true when its
  // reverse complement is.
  struct Occurrence {
    std::uint32_t read;
    bool flipped;
  };
  std::unordered_map<std::string, std::vector<Occurrence>> index;
  for (std::size_t r = 0; r < n; ++r) {
    if (seqs[r].size() < k) continue;
    for (std::size_t p = 0; p + k <= seqs[r].size(); ++p) {
      std::string fwd = seqs[r].substr(p, k);
      std::string rc = reverse_complement(fwd);
      const bool flipped = rc < fwd;
      index[flipped ? std::move(rc) : std::move(fwd)].push_back(
          {static_cast<std::uint32_t>(r), flipped});
    }
  }

  // Pairwise votes: same-strand vs opposite-strand shared k-mers.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::pair<int, int>> votes;
  for (const auto& [_, bucket] : index) {
    if (bucket.size() < 2 || bucket.size() > config.max_kmer_bucket) continue;
    for (std::size_t x = 0; x < bucket.size(); ++x) {
      for (std::size_t y = x + 1; y < bucket.size(); ++y) {
        auto a = bucket[x], b = bucket[y];
        if (a.read == b.read) continue;
        if (a.read > b.read) std::swap(a, b);
        auto& [same, opposite] = votes[{a.read, b.read}];
        (a.flipped == b.flipped ? same : opposite) += 1;
      }
    }
  }

  // Strong edges only (a couple of chance k-mer hits must not flip a read),
  // then BFS-propagate orientations per connected component.
  struct Edge {
    std::uint32_t to;
    bool opposite;
  };
  std::vector<std::vector<Edge>> adj(n);
  for (const auto& [pair, counts] : votes) {
    const auto [same, opposite] = counts;
    if (same + opposite < 3 || same == opposite) continue;
    const bool is_opposite = opposite > same;
    adj[pair.first].push_back({pair.second, is_opposite});
    adj[pair.second].push_back({pair.first, is_opposite});
  }

  std::vector<bool> flip(n, false);
  std::vector<bool> visited(n, false);
  std::vector<std::uint32_t> queue;
  for (std::size_t start = 0; start < n; ++start) {
    if (visited[start]) continue;
    visited[start] = true;
    queue.assign(1, static_cast<std::uint32_t>(start));
    while (!queue.empty()) {
      const std::uint32_t cur = queue.back();
      queue.pop_back();
      for (const Edge& e : adj[cur]) {
        if (visited[e.to]) continue;  // first assignment wins; conflicts ignored
        visited[e.to] = true;
        flip[e.to] = flip[cur] ^ e.opposite;
        queue.push_back(e.to);
      }
    }
  }
  return flip;
}

std::string trim_poor_regions(const std::string& seq, std::size_t* trimmed_bases) {
  std::size_t b = 0, e = seq.size();
  while (b < e && std::islower(static_cast<unsigned char>(seq[b]))) ++b;
  while (e > b && std::islower(static_cast<unsigned char>(seq[e - 1]))) --e;
  if (trimmed_bases != nullptr) *trimmed_bases += seq.size() - (e - b);
  return seq.substr(b, e - b);
}

namespace {

struct Overlap {
  std::size_t a = 0;       // earlier read (b begins inside a)
  std::size_t b = 0;
  std::size_t offset = 0;  // b's start position in a's coordinates
  std::size_t length = 0;  // overlapping bases
  bool containment = false;  // b lies entirely within a
};

/// Counts mismatches of b against a at the given offset over the overlap
/// region; returns false early once the budget is exceeded.
bool overlap_matches(const std::string& a, const std::string& b, std::size_t offset,
                     std::size_t overlap_len, double max_mismatch_frac) {
  const auto budget = static_cast<std::size_t>(max_mismatch_frac * static_cast<double>(overlap_len));
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < overlap_len; ++i) {
    if (a[offset + i] != b[i]) {
      if (++mismatches > budget) return false;
    }
  }
  return true;
}

struct UnionFind {
  std::vector<std::size_t> parent;
  explicit UnionFind(std::size_t n) : parent(n) { std::iota(parent.begin(), parent.end(), 0); }
  std::size_t find(std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent[b] = a;
    return true;
  }
};

}  // namespace

AssemblyResult assemble(const std::vector<FastaRecord>& reads, const AssemblerConfig& config) {
  PPC_REQUIRE(config.kmer >= 8, "kmer must be >= 8");
  PPC_REQUIRE(config.min_overlap >= config.kmer, "min_overlap must be >= kmer");

  AssemblyResult result;
  result.stats.input_reads = reads.size();
  if (reads.empty()) return result;

  // Stage 1: quality trimming.
  std::vector<std::string> seq(reads.size());
  std::vector<bool> usable(reads.size(), true);
  for (std::size_t i = 0; i < reads.size(); ++i) {
    seq[i] = trim_poor_regions(reads[i].seq, &result.stats.trimmed_bases);
    if (seq[i].size() < config.min_read_length) usable[i] = false;
  }

  // Stage 1b: orientation resolution — complement reads sequenced from the
  // opposite strand so every overlap below is forward-vs-forward.
  if (config.handle_reverse_complements) {
    const std::vector<bool> flip = resolve_orientations(seq, config);
    for (std::size_t i = 0; i < seq.size(); ++i) {
      if (flip[i]) {
        seq[i] = reverse_complement(seq[i]);
        ++result.stats.complemented_reads;
      }
    }
  }

  // Stage 2: k-mer index over usable reads.
  std::unordered_map<std::string, std::vector<std::pair<std::size_t, std::size_t>>> index;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    if (!usable[i] || seq[i].size() < config.kmer) continue;
    for (std::size_t p = 0; p + config.kmer <= seq[i].size(); ++p) {
      index[seq[i].substr(p, config.kmer)].emplace_back(i, p);
    }
  }

  // Candidate (a, b, offset) triples voted by shared k-mers. Keyed on the
  // ordered pair with the signed offset of b relative to a.
  std::map<std::tuple<std::size_t, std::size_t, long>, std::size_t> votes;
  for (const auto& [_, bucket] : index) {
    if (bucket.size() < 2 || bucket.size() > config.max_kmer_bucket) continue;
    for (std::size_t x = 0; x < bucket.size(); ++x) {
      for (std::size_t y = x + 1; y < bucket.size(); ++y) {
        auto [ra, pa] = bucket[x];
        auto [rb, pb] = bucket[y];
        if (ra == rb) continue;
        if (ra > rb) {
          std::swap(ra, rb);
          std::swap(pa, pb);
        }
        const long offset = static_cast<long>(pa) - static_cast<long>(pb);
        ++votes[{ra, rb, offset}];
      }
    }
  }

  // Stages 2-3: verify candidates over the full overlap region.
  std::vector<Overlap> overlaps;
  for (const auto& [key, _] : votes) {
    auto [ra, rb, signed_offset] = key;
    ++result.stats.overlaps_considered;
    // Normalize so `b` starts inside `a` at a non-negative offset.
    std::size_t a = ra, b = rb, offset = 0;
    if (signed_offset >= 0) {
      offset = static_cast<std::size_t>(signed_offset);
    } else {
      a = rb;
      b = ra;
      offset = static_cast<std::size_t>(-signed_offset);
    }
    if (offset >= seq[a].size()) continue;
    const std::size_t overlap_len = std::min(seq[a].size() - offset, seq[b].size());
    if (overlap_len < config.min_overlap) continue;
    if (!overlap_matches(seq[a], seq[b], offset, overlap_len, config.max_mismatch_frac)) continue;
    ++result.stats.overlaps_accepted;
    Overlap ov;
    ov.a = a;
    ov.b = b;
    ov.offset = offset;
    ov.length = overlap_len;
    ov.containment = offset + seq[b].size() <= seq[a].size();
    overlaps.push_back(ov);
  }

  // Containments: attach the contained read to its container; it does not
  // participate in chaining.
  std::vector<long> contained_in(seq.size(), -1);   // container read index
  std::vector<std::size_t> contained_at(seq.size(), 0);  // offset within container
  for (const Overlap& ov : overlaps) {
    if (!ov.containment) continue;
    if (contained_in[ov.b] == -1 && contained_in[ov.a] == -1 && ov.a != ov.b) {
      contained_in[ov.b] = static_cast<long>(ov.a);
      contained_at[ov.b] = ov.offset;
      ++result.stats.contained_reads;
    }
  }

  // Stage 4: greedy best-overlap chaining of non-contained reads.
  std::sort(overlaps.begin(), overlaps.end(),
            [](const Overlap& x, const Overlap& y) { return x.length > y.length; });
  std::vector<long> next(seq.size(), -1);
  std::vector<std::size_t> next_offset(seq.size(), 0);
  std::vector<bool> has_prev(seq.size(), false);
  UnionFind uf(seq.size());
  for (const Overlap& ov : overlaps) {
    if (ov.containment) continue;
    if (contained_in[ov.a] != -1 || contained_in[ov.b] != -1) continue;
    if (next[ov.a] != -1 || has_prev[ov.b]) continue;
    if (!uf.unite(ov.a, ov.b)) continue;  // would close a cycle
    next[ov.a] = static_cast<long>(ov.b);
    next_offset[ov.a] = ov.offset;
    has_prev[ov.b] = true;
  }

  // Walk chains; compute absolute layouts.
  std::vector<bool> placed(seq.size(), false);
  struct Layout {
    std::vector<std::pair<std::size_t, std::size_t>> reads;  // (read, abs offset)
    std::size_t length = 0;
  };
  std::vector<Layout> layouts;
  for (std::size_t start = 0; start < seq.size(); ++start) {
    if (!usable[start] || has_prev[start] || contained_in[start] != -1 || placed[start]) continue;
    Layout layout;
    std::size_t offset = 0;
    long cur = static_cast<long>(start);
    while (cur != -1) {
      const auto c = static_cast<std::size_t>(cur);
      layout.reads.emplace_back(c, offset);
      layout.length = std::max(layout.length, offset + seq[c].size());
      placed[c] = true;
      if (next[c] == -1) break;
      offset += next_offset[c];
      cur = next[c];
    }
    layouts.push_back(std::move(layout));
  }

  // Attach contained reads to wherever their container landed.
  for (Layout& layout : layouts) {
    const std::size_t chain_size = layout.reads.size();
    for (std::size_t k = 0; k < chain_size; ++k) {
      const auto [container, container_offset] = layout.reads[k];
      for (std::size_t r = 0; r < seq.size(); ++r) {
        if (contained_in[r] == static_cast<long>(container)) {
          layout.reads.emplace_back(r, container_offset + contained_at[r]);
          placed[r] = true;
        }
      }
    }
  }

  // Stage 5: per-column majority consensus.
  std::vector<bool> in_contig(seq.size(), false);
  auto base_index = [](char c) -> int {
    switch (c) {
      case 'A': return 0;
      case 'C': return 1;
      case 'G': return 2;
      case 'T': return 3;
      default: return -1;
    }
  };
  static constexpr char kBases[] = {'A', 'C', 'G', 'T'};
  for (const Layout& layout : layouts) {
    if (layout.reads.size() < 2) continue;  // single-read chains are singletons
    std::vector<std::array<std::uint32_t, 4>> counts(layout.length, {0, 0, 0, 0});
    for (const auto& [r, off] : layout.reads) {
      for (std::size_t i = 0; i < seq[r].size(); ++i) {
        const int bi = base_index(seq[r][i]);
        if (bi >= 0) ++counts[off + i][static_cast<std::size_t>(bi)];
      }
    }
    Contig contig;
    contig.consensus.reserve(layout.length);
    for (const auto& col : counts) {
      const auto best = static_cast<std::size_t>(
          std::max_element(col.begin(), col.end()) - col.begin());
      if (col[best] == 0) continue;  // gap column (should not happen in chains)
      contig.consensus.push_back(kBases[best]);
    }
    for (const auto& [r, _] : layout.reads) {
      contig.read_ids.push_back(reads[r].id);
      in_contig[r] = true;
    }
    result.contigs.push_back(std::move(contig));
  }
  std::sort(result.contigs.begin(), result.contigs.end(), [](const Contig& x, const Contig& y) {
    return x.consensus.size() > y.consensus.size();
  });

  // Everything not placed into a multi-read contig is a singleton.
  for (std::size_t r = 0; r < seq.size(); ++r) {
    if (!in_contig[r]) result.singletons.push_back(reads[r]);
  }
  return result;
}

std::string assemble_fasta_file(const std::string& fasta_text, const AssemblerConfig& config) {
  const auto reads = parse_fasta(fasta_text);
  return assembly_report(assemble(reads, config));
}

std::size_t n50(const std::vector<Contig>& contigs) {
  if (contigs.empty()) return 0;
  std::vector<std::size_t> lengths;
  lengths.reserve(contigs.size());
  std::size_t total = 0;
  for (const Contig& c : contigs) {
    lengths.push_back(c.consensus.size());
    total += c.consensus.size();
  }
  std::sort(lengths.rbegin(), lengths.rend());
  std::size_t acc = 0;
  for (std::size_t len : lengths) {
    acc += len;
    if (acc * 2 >= total) return len;
  }
  return lengths.back();
}

std::string assembly_report(const AssemblyResult& result) {
  std::ostringstream os;
  os << "CAP3-mini assembly report\n";
  os << "reads=" << result.stats.input_reads << " contigs=" << result.contigs.size()
     << " singletons=" << result.singletons.size() << " n50=" << n50(result.contigs)
     << " trimmed_bases=" << result.stats.trimmed_bases
     << " complemented=" << result.stats.complemented_reads
     << " overlaps=" << result.stats.overlaps_accepted << "/"
     << result.stats.overlaps_considered << "\n";
  for (std::size_t i = 0; i < result.contigs.size(); ++i) {
    const Contig& c = result.contigs[i];
    os << "Contig" << i + 1 << " length=" << c.consensus.size() << " reads=" << c.read_ids.size()
       << "\n";
  }
  std::vector<FastaRecord> consensus;
  consensus.reserve(result.contigs.size());
  for (std::size_t i = 0; i < result.contigs.size(); ++i) {
    consensus.push_back({"Contig" + std::to_string(i + 1), result.contigs[i].consensus});
  }
  os << write_fasta(consensus);
  return os.str();
}

}  // namespace ppc::apps::cap3
