// Synthetic shotgun sequencing — the workload generator for the Cap3
// experiments.
//
// The paper assembles FASTA files of gene fragments ("each file containing
// 458 reads" for the scalability study, "200 reads" for the instance-type
// study). We cannot redistribute their data, so we *simulate* shotgun
// sequencing of a random genome: reads are substrings at random positions
// with Sanger-era lengths, optional substitution errors, and optional
// poor-quality tails (lowercase) for the trimming stage to remove. High
// coverage guarantees overlaps exist, so the mini assembler genuinely
// reconstructs the genome — the examples and tests verify that.
#pragma once

#include <string>
#include <vector>

#include "apps/cap3/fasta.h"
#include "common/rng.h"

namespace ppc::apps::cap3 {

struct ReadSimConfig {
  std::size_t genome_length = 20000;
  std::size_t num_reads = 458;  // the paper's per-file read count (§4.2)
  std::size_t read_length_mean = 550;
  std::size_t read_length_stddev = 40;
  std::size_t read_length_min = 80;
  /// Per-base substitution error probability.
  double error_rate = 0.0;
  /// Probability a read is sequenced from the reverse strand (stored as the
  /// reverse complement); the assembler's orientation resolution flips it
  /// back.
  double reverse_strand_prob = 0.0;
  /// Probability a read carries a poor-quality (lowercase) tail.
  double poor_tail_prob = 0.3;
  std::size_t poor_tail_max = 25;
};

struct SimulatedDataset {
  std::string genome;
  std::vector<FastaRecord> reads;
};

/// Simulates a genome and a shotgun read set over it.
SimulatedDataset simulate_shotgun(const ReadSimConfig& config, ppc::Rng& rng);

/// Convenience: a ready-to-assemble FASTA input file with `num_reads` reads
/// — the unit of work of every Cap3 experiment in the paper.
std::string make_cap3_input(std::size_t num_reads, ppc::Rng& rng);

/// Random uppercase genome of the requested length.
std::string random_genome(std::size_t length, ppc::Rng& rng);

}  // namespace ppc::apps::cap3
