// FASTA parsing and serialization — the interchange format of both the Cap3
// and BLAST pipelines ("The Cap3 algorithm operates on a collection of gene
// sequence fragments presented as FASTA formatted files", §4).
//
// Convention used by the Cap3 kernel: lowercase bases mark poor-quality
// regions (stand-ins for low phred scores); the assembler's trimming stage
// removes them, as CAP3's quality trimming would.
#pragma once

#include <string>
#include <vector>

namespace ppc::apps {

struct FastaRecord {
  std::string id;   // text after '>' up to first whitespace
  std::string seq;  // concatenated sequence lines
};

/// Serializes records as FASTA with the given line width.
std::string write_fasta(const std::vector<FastaRecord>& records, std::size_t line_width = 70);

/// Parses FASTA text. Throws ppc::InvalidArgument on malformed input
/// (sequence data before the first header). Blank lines are ignored.
std::vector<FastaRecord> parse_fasta(const std::string& text);

/// Number of records in FASTA text without materializing them.
std::size_t count_fasta_records(const std::string& text);

/// Watson-Crick reverse complement (A<->T, C<->G; case preserved; other
/// characters map to 'N').
std::string reverse_complement(const std::string& seq);

}  // namespace ppc::apps
