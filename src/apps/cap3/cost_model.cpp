#include "apps/cap3/cost_model.h"

#include <cmath>

#include "common/error.h"

namespace ppc::apps::cap3 {

Seconds Cap3CostModel::expected_seconds(std::size_t num_reads,
                                        const cloud::InstanceType& type) const {
  PPC_REQUIRE(num_reads >= 1, "file must contain at least one read");
  PPC_REQUIRE(type.clock_ghz > 0.0, "clock rate must be positive");
  const double size_factor =
      std::pow(static_cast<double>(num_reads) / reference_reads, reads_exponent);
  const double clock_factor = reference_clock_ghz / type.clock_ghz;
  const double platform_factor =
      type.platform == cloud::Platform::kWindows ? windows_factor : 1.0;
  return base_seconds_458_reads * size_factor * clock_factor * platform_factor;
}

Seconds Cap3CostModel::sample_seconds(std::size_t num_reads, const cloud::InstanceType& type,
                                      ppc::Rng& rng) const {
  return rng.jittered(expected_seconds(num_reads, type), jitter_cv);
}

}  // namespace ppc::apps::cap3
