// Runtime cost model of the BLAST executable — feeds the simulation behind
// Figures 7-11.
//
// §5.1 establishes the shape this model must reproduce:
//  * BLAST streams a large database (8.7 GB NR); when the instance's memory
//    can "load and reuse the whole BLAST database" performance improves —
//    so the penalty is driven by how much of the database fits in the
//    instance's page cache (shared by all workers on that instance);
//  * the lower-clocked XL (~2.0 GHz, 15 GB) performs similarly to the
//    HCXL (~2.5 GHz, 7 GB): more cache compensates for less clock — the
//    miss penalty below is calibrated to make exactly that trade hold;
//  * HM4XL (3.25 GHz, 68 GB) is fastest: best clock *and* full residency;
//  * "Using pure BLAST threads to parallelize inside the instances
//    delivered slightly lesser performance than using multiple workers
//    (processes)" — sub-linear thread speedup.
#pragma once

#include "cloud/instance_types.h"
#include "common/rng.h"
#include "common/units.h"

namespace ppc::apps::blast {

struct BlastCostModel {
  /// Seconds per query on a 2.5 GHz core with the database fully resident.
  double base_seconds_per_query = 4.5;
  /// Uncompressed NR database size (§5).
  double db_size_gb = 8.7;
  /// Runtime multiplier slope for the non-resident database fraction.
  /// 1.6 makes XL (2.0 GHz, full residency) ≈ HCXL (2.5 GHz, 80%), the
  /// §5.1 observation.
  double miss_penalty = 1.6;
  /// Per-doubling efficiency of intra-worker threads (< 1: threads lose to
  /// processes).
  double thread_doubling_efficiency = 0.93;
  double reference_clock_ghz = 2.5;
  /// Multi-worker cache interference: when many concurrent workers leave
  /// less than `contention_floor_gb` of instance memory per busy core, they
  /// evict each other's database pages. This term hits *parallel* runs but
  /// not the single-worker T1 baseline, which is §5.2's explanation for the
  /// EC2 HCXL implementation's "relatively low efficiency" ("the limited
  /// memory of the HCXL instances shared across 8 workers").
  double contention_floor_gb = 1.0;
  double contention_coeff = 0.6;
  /// Input-content variability: the base 128-file set is inhomogeneous
  /// (§5.2), so per-file work varies.
  double jitter_cv = 0.0;  // jitter applied by the workload, not the model

  /// Fraction of the database resident in the instance's memory.
  double residency(const cloud::InstanceType& type) const;

  /// Speedup of `threads` BLAST threads inside one worker.
  double thread_speedup(int threads) const;

  /// Cache-interference multiplier when `busy_cores` of the instance's
  /// cores run BLAST concurrently (1.0 for a single worker).
  double contention_factor(const cloud::InstanceType& type, int busy_cores) const;

  /// Expected seconds to process a query file of `num_queries` queries with
  /// `work_factor` content scaling (1.0 = average file) using `threads`
  /// threads on one worker of the given instance, while `busy_cores` of the
  /// instance's cores are concurrently active.
  Seconds expected_seconds(std::size_t num_queries, double work_factor,
                           const cloud::InstanceType& type, int threads = 1,
                           int busy_cores = 1) const;

  Seconds sample_seconds(std::size_t num_queries, double work_factor,
                         const cloud::InstanceType& type, int threads, int busy_cores,
                         ppc::Rng& rng) const;
};

}  // namespace ppc::apps::blast
