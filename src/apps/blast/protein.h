// Protein alphabet and BLOSUM62 substitution scoring — the scoring core of
// the BLAST kernel (NCBI BLAST+ defaults to BLOSUM62 for blastp).
#pragma once

#include <string>

namespace ppc::apps::blast {

/// The 20 standard amino acids in BLOSUM row order.
inline constexpr char kAminoAcids[] = "ARNDCQEGHILKMFPSTWYV";
inline constexpr int kAlphabetSize = 20;

/// Index of an amino acid in kAminoAcids, or -1 for anything else
/// (ambiguity codes score as mismatches).
int amino_index(char aa);

/// BLOSUM62 substitution score for a pair of residues; unknown residues
/// score -4 (the BLAST treatment of X against anything).
int blosum62(char a, char b);

/// True when every character of `seq` is a standard amino acid.
bool is_valid_protein(const std::string& seq);

}  // namespace ppc::apps::blast
