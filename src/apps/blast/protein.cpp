#include "apps/blast/protein.h"

#include <array>

namespace ppc::apps::blast {

namespace {
// Standard BLOSUM62, row order A R N D C Q E G H I L K M F P S T W Y V.
constexpr int kBlosum62[20][20] = {
    // A   R   N   D   C   Q   E   G   H   I   L   K   M   F   P   S   T   W   Y   V
    {4, -1, -2, -2, 0, -1, -1, 0, -2, -1, -1, -1, -1, -2, -1, 1, 0, -3, -2, 0},     // A
    {-1, 5, 0, -2, -3, 1, 0, -2, 0, -3, -2, 2, -1, -3, -2, -1, -1, -3, -2, -3},     // R
    {-2, 0, 6, 1, -3, 0, 0, 0, 1, -3, -3, 0, -2, -3, -2, 1, 0, -4, -2, -3},         // N
    {-2, -2, 1, 6, -3, 0, 2, -1, -1, -3, -4, -1, -3, -3, -1, 0, -1, -4, -3, -3},    // D
    {0, -3, -3, -3, 9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1}, // C
    {-1, 1, 0, 0, -3, 5, 2, -2, 0, -3, -2, 1, 0, -3, -1, 0, -1, -2, -1, -2},        // Q
    {-1, 0, 0, 2, -4, 2, 5, -2, 0, -3, -3, 1, -2, -3, -1, 0, -1, -3, -2, -2},       // E
    {0, -2, 0, -1, -3, -2, -2, 6, -2, -4, -4, -2, -3, -3, -2, 0, -2, -2, -3, -3},   // G
    {-2, 0, 1, -1, -3, 0, 0, -2, 8, -3, -3, -1, -2, -1, -2, -1, -2, -2, 2, -3},     // H
    {-1, -3, -3, -3, -1, -3, -3, -4, -3, 4, 2, -3, 1, 0, -3, -2, -1, -3, -1, 3},    // I
    {-1, -2, -3, -4, -1, -2, -3, -4, -3, 2, 4, -2, 2, 0, -3, -2, -1, -2, -1, 1},    // L
    {-1, 2, 0, -1, -3, 1, 1, -2, -1, -3, -2, 5, -1, -3, -1, 0, -1, -3, -2, -2},     // K
    {-1, -1, -2, -3, -1, 0, -2, -3, -2, 1, 2, -1, 5, 0, -2, -1, -1, -1, -1, 1},     // M
    {-2, -3, -3, -3, -2, -3, -3, -3, -1, 0, 0, -3, 0, 6, -4, -2, -2, 1, 3, -1},     // F
    {-1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4, 7, -1, -1, -4, -3, -2},// P
    {1, -1, 1, 0, -1, 0, 0, 0, -1, -2, -2, 0, -1, -2, -1, 4, 1, -3, -2, -2},        // S
    {0, -1, 0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1, 1, 5, -2, -2, 0},    // T
    {-3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1, 1, -4, -3, -2, 11, 2, -3}, // W
    {-2, -2, -2, -3, -2, -1, -2, -3, 2, -1, -1, -2, -1, 3, -3, -2, -2, 2, 7, -1},   // Y
    {0, -3, -3, -3, -1, -2, -2, -3, -3, 3, 1, -2, 1, -1, -2, -2, 0, -3, -1, 4},     // V
};

constexpr std::array<int, 128> make_index_table() {
  std::array<int, 128> table{};
  for (auto& v : table) v = -1;
  for (int i = 0; i < kAlphabetSize; ++i) {
    table[static_cast<std::size_t>(kAminoAcids[i])] = i;
  }
  return table;
}

constexpr auto kIndexTable = make_index_table();
}  // namespace

int amino_index(char aa) {
  const auto u = static_cast<unsigned char>(aa);
  return u < 128 ? kIndexTable[u] : -1;
}

int blosum62(char a, char b) {
  const int ia = amino_index(a), ib = amino_index(b);
  if (ia < 0 || ib < 0) return -4;
  return kBlosum62[ia][ib];
}

bool is_valid_protein(const std::string& seq) {
  for (char c : seq) {
    if (amino_index(c) < 0) return false;
  }
  return !seq.empty();
}

}  // namespace ppc::apps::blast
