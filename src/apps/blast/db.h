// Protein sequence database — the stand-in for NCBI's non-redundant (NR)
// database (§5: 8.7 GB uncompressed, 2.9 GB compressed, distributed to
// every worker before processing starts).
//
// The synthetic generator produces random protein sequences with NR-like
// length statistics; "planted" queries copied (with optional mutations)
// from database entries give the aligner something it must find, which the
// tests assert. Serialization reuses FASTA so the database travels through
// the same blob-store / HDFS / file-share plumbing as every other file.
#pragma once

#include <string>
#include <vector>

#include "apps/cap3/fasta.h"
#include "common/rng.h"

namespace ppc::apps::blast {

using apps::FastaRecord;

struct DbGenConfig {
  std::size_t num_sequences = 500;
  std::size_t length_mean = 350;  // NR's mean protein length is ~350 aa
  std::size_t length_stddev = 120;
  std::size_t length_min = 50;
};

class SequenceDb {
 public:
  SequenceDb() = default;
  explicit SequenceDb(std::vector<FastaRecord> records);

  static SequenceDb generate(const DbGenConfig& config, ppc::Rng& rng);
  static SequenceDb from_fasta(const std::string& text);

  std::string to_fasta() const;

  const std::vector<FastaRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  const FastaRecord& record(std::size_t i) const { return records_.at(i); }

  /// Total residues — proportional to the database's memory footprint.
  std::size_t total_residues() const;

 private:
  std::vector<FastaRecord> records_;
};

/// A random protein sequence of the given length.
std::string random_protein(std::size_t length, ppc::Rng& rng);

/// Copies a database region into a query, applying `mutation_rate`
/// substitutions — a planted homolog the aligner must recover.
std::string plant_query(const SequenceDb& db, std::size_t db_index, std::size_t length,
                        double mutation_rate, ppc::Rng& rng);

/// Builds one query *file* of `num_queries` FASTA queries, a fraction of
/// them planted from `db` (the rest random) — the paper's unit of work
/// ("we bundled 100 queries in to each data input file").
std::string make_query_file(const SequenceDb& db, std::size_t num_queries, double planted_frac,
                            ppc::Rng& rng);

}  // namespace ppc::apps::blast
