#include "apps/blast/db.h"

#include <algorithm>

#include "apps/blast/protein.h"
#include "common/error.h"

namespace ppc::apps::blast {

SequenceDb::SequenceDb(std::vector<FastaRecord> records) : records_(std::move(records)) {}

SequenceDb SequenceDb::generate(const DbGenConfig& config, ppc::Rng& rng) {
  PPC_REQUIRE(config.num_sequences >= 1, "database needs at least one sequence");
  std::vector<FastaRecord> records;
  records.reserve(config.num_sequences);
  for (std::size_t i = 0; i < config.num_sequences; ++i) {
    const double draw = rng.normal(static_cast<double>(config.length_mean),
                                   static_cast<double>(config.length_stddev));
    const auto length =
        std::max(config.length_min, static_cast<std::size_t>(std::max(1.0, draw)));
    records.push_back({"nr|" + std::to_string(i), random_protein(length, rng)});
  }
  return SequenceDb(std::move(records));
}

SequenceDb SequenceDb::from_fasta(const std::string& text) {
  return SequenceDb(apps::parse_fasta(text));
}

std::string SequenceDb::to_fasta() const { return apps::write_fasta(records_); }

std::size_t SequenceDb::total_residues() const {
  std::size_t n = 0;
  for (const auto& r : records_) n += r.seq.size();
  return n;
}

std::string random_protein(std::size_t length, ppc::Rng& rng) {
  PPC_REQUIRE(length >= 1, "protein length must be >= 1");
  std::string s(length, 'A');
  for (char& c : s) c = kAminoAcids[rng.index(kAlphabetSize)];
  return s;
}

std::string plant_query(const SequenceDb& db, std::size_t db_index, std::size_t length,
                        double mutation_rate, ppc::Rng& rng) {
  PPC_REQUIRE(db_index < db.size(), "db index out of range");
  const std::string& src = db.record(db_index).seq;
  const std::size_t len = std::min(length, src.size());
  const std::size_t start = src.size() == len ? 0 : rng.index(src.size() - len + 1);
  std::string q = src.substr(start, len);
  for (char& c : q) {
    if (rng.bernoulli(mutation_rate)) c = kAminoAcids[rng.index(kAlphabetSize)];
  }
  return q;
}

std::string make_query_file(const SequenceDb& db, std::size_t num_queries, double planted_frac,
                            ppc::Rng& rng) {
  PPC_REQUIRE(num_queries >= 1, "need at least one query");
  PPC_REQUIRE(planted_frac >= 0.0 && planted_frac <= 1.0, "planted_frac must be in [0,1]");
  std::vector<FastaRecord> queries;
  queries.reserve(num_queries);
  for (std::size_t i = 0; i < num_queries; ++i) {
    FastaRecord r;
    if (rng.bernoulli(planted_frac)) {
      const std::size_t target = rng.index(db.size());
      r.id = "query-" + std::to_string(i) + "-planted-" + std::to_string(target);
      r.seq = plant_query(db, target, 60 + rng.index(120), 0.05, rng);
    } else {
      r.id = "query-" + std::to_string(i) + "-random";
      r.seq = random_protein(60 + rng.index(120), rng);
    }
    queries.push_back(std::move(r));
  }
  return apps::write_fasta(queries);
}

}  // namespace ppc::apps::blast
