#include "apps/blast/aligner.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "apps/blast/protein.h"
#include "common/error.h"
#include "common/string_util.h"

namespace ppc::apps::blast {

namespace {
int kmer_self_score(const std::string& kmer) {
  int s = 0;
  for (char c : kmer) s += blosum62(c, c);
  return s;
}
}  // namespace

BlastIndex::BlastIndex(const SequenceDb& db, AlignerConfig config)
    : db_(db), config_(config) {
  PPC_REQUIRE(config_.k >= 2 && config_.k <= 6, "k must be in [2, 6]");
  PPC_REQUIRE(db_.size() >= 1, "database is empty");
  for (std::size_t s = 0; s < db_.size(); ++s) {
    const std::string& seq = db_.record(s).seq;
    if (seq.size() < config_.k) continue;
    for (std::size_t p = 0; p + config_.k <= seq.size(); ++p) {
      index_[seq.substr(p, config_.k)].push_back(
          {static_cast<std::uint32_t>(s), static_cast<std::uint32_t>(p)});
    }
  }
}

std::vector<Hit> BlastIndex::search(const FastaRecord& query) const {
  struct Best {
    int score = 0;
    std::size_t len = 0;
    std::size_t identical = 0;
    std::size_t qstart = 0;
    std::size_t sstart = 0;
  };
  std::map<std::uint32_t, Best> best_per_subject;

  const std::string& q = query.seq;
  if (q.size() < config_.k) return {};

  for (std::size_t qp = 0; qp + config_.k <= q.size(); ++qp) {
    const std::string kmer = q.substr(qp, config_.k);
    if (kmer_self_score(kmer) < config_.seed_threshold) continue;
    const auto it = index_.find(kmer);
    if (it == index_.end()) continue;

    for (const Posting& posting : it->second) {
      const std::string& s = db_.record(posting.seq).seq;
      const std::size_t sp = posting.pos;

      // Seed score.
      int score = 0;
      for (std::size_t i = 0; i < config_.k; ++i) {
        score += blosum62(q[qp + i], s[sp + i]);
      }

      // Extend right with X-drop.
      int best_score = score;
      std::size_t best_right = config_.k;  // residues covered from seed start
      {
        int run = score;
        std::size_t i = config_.k;
        while (qp + i < q.size() && sp + i < s.size()) {
          run += blosum62(q[qp + i], s[sp + i]);
          ++i;
          if (run > best_score) {
            best_score = run;
            best_right = i;
          } else if (run < best_score - config_.x_drop) {
            break;
          }
        }
      }

      // Extend left with X-drop.
      std::size_t best_left = 0;
      {
        int run = best_score;
        int local_best = best_score;
        std::size_t i = 0;
        while (qp > i && sp > i) {
          ++i;
          run += blosum62(q[qp - i], s[sp - i]);
          if (run > local_best) {
            local_best = run;
            best_left = i;
          } else if (run < local_best - config_.x_drop) {
            break;
          }
        }
        best_score = local_best;
      }

      if (best_score < config_.score_cutoff) continue;
      const std::size_t align_len = best_left + best_right;
      const std::size_t qstart = qp - best_left;
      const std::size_t sstart = sp - best_left;

      Best& cur = best_per_subject[posting.seq];
      if (best_score > cur.score) {
        std::size_t identical = 0;
        for (std::size_t i = 0; i < align_len; ++i) {
          if (q[qstart + i] == s[sstart + i]) ++identical;
        }
        cur = {best_score, align_len, identical, qstart, sstart};
      }
    }
  }

  std::vector<Hit> hits;
  hits.reserve(best_per_subject.size());
  for (const auto& [subject, b] : best_per_subject) {
    Hit h;
    h.query_id = query.id;
    h.subject_id = db_.record(subject).id;
    h.score = b.score;
    h.align_length = b.len;
    h.identity = b.len == 0 ? 0.0 : static_cast<double>(b.identical) / static_cast<double>(b.len);
    h.query_start = b.qstart;
    h.subject_start = b.sstart;
    hits.push_back(std::move(h));
  }
  std::sort(hits.begin(), hits.end(), [](const Hit& a, const Hit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.subject_id < b.subject_id;
  });
  if (hits.size() > config_.max_hits) hits.resize(config_.max_hits);
  return hits;
}

std::string BlastIndex::search_file(const std::string& query_fasta) const {
  const auto queries = apps::parse_fasta(query_fasta);
  std::ostringstream os;
  for (const auto& query : queries) {
    os << render_hits(search(query));
  }
  return os.str();
}

std::string render_hits(const std::vector<Hit>& hits) {
  std::ostringstream os;
  for (const Hit& h : hits) {
    os << h.query_id << '\t' << h.subject_id << '\t' << ppc::format_fixed(h.identity * 100.0, 1)
       << '\t' << h.align_length << '\t' << h.score << '\t' << h.query_start << '\t'
       << h.subject_start << '\n';
  }
  return os.str();
}

}  // namespace ppc::apps::blast
