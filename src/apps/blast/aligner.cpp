#include "apps/blast/aligner.h"

#include <algorithm>
#include <sstream>

#include "apps/blast/protein.h"
#include "common/error.h"
#include "common/string_util.h"

namespace ppc::apps::blast {

namespace {

constexpr unsigned kBitsPerResidue = 5;

/// Walks `seq` emitting the packed code of every k-mer whose residues are
/// all standard, as fn(position, code). Rolling: one table lookup, one
/// shift-or and one mask per position instead of a substring + hash.
template <typename Fn>
void for_each_kmer(const std::string& seq, std::size_t k, Fn&& fn) {
  if (seq.size() < k) return;
  const std::uint32_t mask = (std::uint32_t{1} << (kBitsPerResidue * k)) - 1;
  std::uint32_t code = 0;
  std::size_t run = 0;  // consecutive standard residues ending here
  for (std::size_t p = 0; p < seq.size(); ++p) {
    const int idx = amino_index(seq[p]);
    if (idx < 0) {
      run = 0;
      code = 0;
      continue;
    }
    code = ((code << kBitsPerResidue) | static_cast<std::uint32_t>(idx)) & mask;
    if (++run >= k) fn(p + 1 - k, code);
  }
}

/// BLOSUM62 self-scores of every query position (b(c,c); -4 for ambiguity
/// codes), prefix-summed so a k-mer's self-score is one subtraction —
/// computed once per query instead of once per position per posting walk.
std::vector<int> self_score_prefix(const std::string& seq) {
  std::vector<int> prefix(seq.size() + 1, 0);
  for (std::size_t i = 0; i < seq.size(); ++i) {
    prefix[i + 1] = prefix[i] + blosum62(seq[i], seq[i]);
  }
  return prefix;
}

}  // namespace

BlastIndex::BlastIndex(const SequenceDb& db, AlignerConfig config)
    : db_(db), config_(config) {
  PPC_REQUIRE(config_.k >= 2 && config_.k <= 6, "k must be in [2, 6]");
  PPC_REQUIRE(db_.size() >= 1, "database is empty");
  index_.reserve(db_.total_residues());
  for (std::size_t s = 0; s < db_.size(); ++s) {
    const std::string& seq = db_.record(s).seq;
    for_each_kmer(seq, config_.k, [&](std::size_t p, KmerCode code) {
      index_[code].push_back({static_cast<std::uint32_t>(s), static_cast<std::uint32_t>(p)});
    });
  }
}

std::vector<Hit> BlastIndex::search(const FastaRecord& query) const {
  struct Best {
    int score = 0;
    std::size_t len = 0;
    std::size_t identical = 0;
    std::size_t qstart = 0;
    std::size_t sstart = 0;
  };
  std::unordered_map<std::uint32_t, Best> best_per_subject;
  best_per_subject.reserve(64);

  const std::string& q = query.seq;
  if (q.size() < config_.k) return {};

  const std::vector<int> self_prefix = self_score_prefix(q);

  for_each_kmer(q, config_.k, [&](std::size_t qp, KmerCode code) {
    if (self_prefix[qp + config_.k] - self_prefix[qp] < config_.seed_threshold) return;
    const auto it = index_.find(code);
    if (it == index_.end()) return;

    for (const Posting& posting : it->second) {
      const std::string& s = db_.record(posting.seq).seq;
      const std::size_t sp = posting.pos;

      // Seed score: the k-mer matches exactly, so it is the self-score.
      int score = self_prefix[qp + config_.k] - self_prefix[qp];

      // Extend right with X-drop.
      int best_score = score;
      std::size_t best_right = config_.k;  // residues covered from seed start
      {
        int run = score;
        std::size_t i = config_.k;
        while (qp + i < q.size() && sp + i < s.size()) {
          run += blosum62(q[qp + i], s[sp + i]);
          ++i;
          if (run > best_score) {
            best_score = run;
            best_right = i;
          } else if (run < best_score - config_.x_drop) {
            break;
          }
        }
      }

      // Extend left with X-drop.
      std::size_t best_left = 0;
      {
        int run = best_score;
        int local_best = best_score;
        std::size_t i = 0;
        while (qp > i && sp > i) {
          ++i;
          run += blosum62(q[qp - i], s[sp - i]);
          if (run > local_best) {
            local_best = run;
            best_left = i;
          } else if (run < local_best - config_.x_drop) {
            break;
          }
        }
        best_score = local_best;
      }

      if (best_score < config_.score_cutoff) continue;
      const std::size_t align_len = best_left + best_right;
      const std::size_t qstart = qp - best_left;
      const std::size_t sstart = sp - best_left;

      Best& cur = best_per_subject[posting.seq];
      if (best_score > cur.score) {
        std::size_t identical = 0;
        for (std::size_t i = 0; i < align_len; ++i) {
          if (q[qstart + i] == s[sstart + i]) ++identical;
        }
        cur = {best_score, align_len, identical, qstart, sstart};
      }
    }
  });

  std::vector<Hit> hits;
  hits.reserve(best_per_subject.size());
  for (const auto& [subject, b] : best_per_subject) {
    Hit h;
    h.query_id = query.id;
    h.subject_id = db_.record(subject).id;
    h.score = b.score;
    h.align_length = b.len;
    h.identity = b.len == 0 ? 0.0 : static_cast<double>(b.identical) / static_cast<double>(b.len);
    h.query_start = b.qstart;
    h.subject_start = b.sstart;
    hits.push_back(std::move(h));
  }
  std::sort(hits.begin(), hits.end(), [](const Hit& a, const Hit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.subject_id < b.subject_id;
  });
  if (hits.size() > config_.max_hits) hits.resize(config_.max_hits);
  return hits;
}

std::string BlastIndex::search_file(const std::string& query_fasta) const {
  const auto queries = apps::parse_fasta(query_fasta);
  std::ostringstream os;
  for (const auto& query : queries) {
    os << render_hits(search(query));
  }
  return os.str();
}

std::string render_hits(const std::vector<Hit>& hits) {
  std::ostringstream os;
  for (const Hit& h : hits) {
    os << h.query_id << '\t' << h.subject_id << '\t' << ppc::format_fixed(h.identity * 100.0, 1)
       << '\t' << h.align_length << '\t' << h.score << '\t' << h.query_start << '\t'
       << h.subject_start << '\n';
  }
  return os.str();
}

}  // namespace ppc::apps::blast
