// Miniature BLAST: k-mer seeded, X-drop extended, BLOSUM62-scored ungapped
// protein search — the "sequential executable" of the paper's BLAST
// experiments, with the same file contract (a FASTA query file in, a
// tabular hit report out).
//
// Algorithm (the classic BLAST outline):
//  * index every k-mer (k = 3) of the database;
//  * for each query k-mer whose self-score passes the seed threshold, look
//    up database positions sharing it;
//  * extend each seed left and right without gaps, abandoning a direction
//    once the running score falls `x_drop` below the best (X-drop);
//  * keep the best alignment per database sequence; report hits whose score
//    meets the cutoff, ranked by score.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "apps/blast/db.h"

namespace ppc::apps::blast {

struct AlignerConfig {
  std::size_t k = 3;
  /// Minimum BLOSUM62 self-score of a k-mer to act as a seed (T parameter).
  int seed_threshold = 11;
  /// Extension abandons a direction when score drops this far below best.
  int x_drop = 12;
  /// Hits below this alignment score are not reported (S parameter).
  int score_cutoff = 35;
  /// At most this many hits reported per query.
  std::size_t max_hits = 10;
};

struct Hit {
  std::string query_id;
  std::string subject_id;
  int score = 0;
  std::size_t align_length = 0;
  double identity = 0.0;       // fraction of identical residues
  std::size_t query_start = 0;
  std::size_t subject_start = 0;
};

class BlastIndex {
 public:
  /// Builds the k-mer index over the database (the expensive, shared step —
  /// the analog of formatdb/makeblastdb). K-mers are packed into integer
  /// codes (5 bits per residue), so the index hashes machine words instead
  /// of allocating a substring per database position. K-mers containing a
  /// non-standard residue are unindexable and skipped — seeding requires
  /// exact residues; extension still scores ambiguity codes as mismatches.
  BlastIndex(const SequenceDb& db, AlignerConfig config = {});

  const SequenceDb& db() const { return db_; }
  const AlignerConfig& config() const { return config_; }

  /// Searches one query; hits sorted by descending score.
  std::vector<Hit> search(const FastaRecord& query) const;

  /// Searches every query in a FASTA file and renders the tabular report —
  /// the worker-facing entry point (file in, file out).
  std::string search_file(const std::string& query_fasta) const;

  std::size_t indexed_kmers() const { return index_.size(); }

 private:
  struct Posting {
    std::uint32_t seq = 0;
    std::uint32_t pos = 0;
  };

  /// Packed k-mer: 5 bits per residue, most recent residue in the low bits
  /// (k <= 6 fits in 30 bits).
  using KmerCode = std::uint32_t;

  SequenceDb db_;
  AlignerConfig config_;
  std::unordered_map<KmerCode, std::vector<Posting>> index_;
};

/// Renders hits in BLAST -outfmt 6 style (tab separated).
std::string render_hits(const std::vector<Hit>& hits);

}  // namespace ppc::apps::blast
