#include "apps/blast/cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace ppc::apps::blast {

double BlastCostModel::residency(const cloud::InstanceType& type) const {
  return std::min(1.0, type.memory_gb / db_size_gb);
}

double BlastCostModel::thread_speedup(int threads) const {
  PPC_REQUIRE(threads >= 1, "threads must be >= 1");
  if (threads == 1) return 1.0;
  const double doublings = std::log2(static_cast<double>(threads));
  return static_cast<double>(threads) * std::pow(thread_doubling_efficiency, doublings);
}

double BlastCostModel::contention_factor(const cloud::InstanceType& type, int busy_cores) const {
  PPC_REQUIRE(busy_cores >= 1, "busy_cores must be >= 1");
  if (busy_cores == 1) return 1.0;
  const double mem_per_busy = type.memory_gb / static_cast<double>(busy_cores);
  if (mem_per_busy >= contention_floor_gb) return 1.0;
  return 1.0 + contention_coeff * (contention_floor_gb - mem_per_busy) / contention_floor_gb;
}

Seconds BlastCostModel::expected_seconds(std::size_t num_queries, double work_factor,
                                         const cloud::InstanceType& type, int threads,
                                         int busy_cores) const {
  PPC_REQUIRE(num_queries >= 1, "file must contain at least one query");
  PPC_REQUIRE(work_factor > 0.0, "work factor must be positive");
  const double clock_factor = reference_clock_ghz / type.clock_ghz;
  const double penalty = 1.0 + miss_penalty * (1.0 - residency(type));
  return base_seconds_per_query * static_cast<double>(num_queries) * work_factor * clock_factor *
         penalty * contention_factor(type, busy_cores) / thread_speedup(threads);
}

Seconds BlastCostModel::sample_seconds(std::size_t num_queries, double work_factor,
                                       const cloud::InstanceType& type, int threads,
                                       int busy_cores, ppc::Rng& rng) const {
  const Seconds expected = expected_seconds(num_queries, work_factor, type, threads, busy_cores);
  return jitter_cv > 0.0 ? rng.jittered(expected, jitter_cv) : expected;
}

}  // namespace ppc::apps::blast
