#include "apps/gtm/gtm.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.h"
#include "common/string_util.h"

namespace ppc::apps::gtm {

namespace {

/// Regular grid x grid layout over [-1, 1]^2, row-major.
Matrix make_grid(std::size_t grid) {
  PPC_REQUIRE(grid >= 2, "grid must be >= 2");
  Matrix m(grid * grid, 2);
  for (std::size_t i = 0; i < grid; ++i) {
    for (std::size_t j = 0; j < grid; ++j) {
      const std::size_t r = i * grid + j;
      m(r, 0) = -1.0 + 2.0 * static_cast<double>(j) / static_cast<double>(grid - 1);
      m(r, 1) = -1.0 + 2.0 * static_cast<double>(i) / static_cast<double>(grid - 1);
    }
  }
  return m;
}

/// RBF design matrix Phi (K x M+1): Gaussian bumps over the latent grid
/// plus a bias column.
Matrix make_phi(const Matrix& latent, const Matrix& rbf_centers, double width) {
  const std::size_t k = latent.rows(), m = rbf_centers.rows();
  Matrix phi(k, m + 1);
  const double denom = 2.0 * width * width;
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      const double dx = latent(i, 0) - rbf_centers(j, 0);
      const double dy = latent(i, 1) - rbf_centers(j, 1);
      phi(i, j) = std::exp(-(dx * dx + dy * dy) / denom);
    }
    phi(i, m) = 1.0;  // bias
  }
  return phi;
}

/// Squared distances between every center row (K x D) and point row (N x D):
/// result is K x N.
Matrix pairwise_sqdist(const Matrix& centers, const Matrix& points) {
  PPC_REQUIRE(centers.cols() == points.cols(), "dimension mismatch");
  const std::size_t k = centers.rows(), n = points.rows(), d = centers.cols();
  Matrix dist(k, n, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t c = 0; c < d; ++c) {
        const double diff = centers(i, c) - points(j, c);
        s += diff * diff;
      }
      dist(i, j) = s;
    }
  }
  return dist;
}

/// Top-2 principal directions and standard deviations of `samples`, via
/// power iteration with deflation on the D x D covariance.
struct Pca2 {
  std::vector<double> v1, v2;  // unit eigenvectors
  double sd1 = 0.0, sd2 = 0.0;
};

Pca2 top2_principal_components(const Matrix& samples, const std::vector<double>& mean,
                               ppc::Rng& rng) {
  const std::size_t n = samples.rows(), d = samples.cols();
  Matrix cov(d, d, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t a = 0; a < d; ++a) {
      const double xa = samples(i, a) - mean[a];
      for (std::size_t b = a; b < d; ++b) {
        cov(a, b) += xa * (samples(i, b) - mean[b]);
      }
    }
  }
  for (std::size_t a = 0; a < d; ++a) {
    for (std::size_t b = 0; b < a; ++b) cov(a, b) = cov(b, a);
  }
  const double denom = static_cast<double>(n > 1 ? n - 1 : 1);
  for (auto& v : cov.data()) v /= denom;

  auto power_iterate = [&](const Matrix& m) {
    std::vector<double> v(d);
    for (auto& x : v) x = rng.normal(0.0, 1.0);
    double eigenvalue = 0.0;
    for (int iter = 0; iter < 60; ++iter) {
      std::vector<double> next(d, 0.0);
      for (std::size_t a = 0; a < d; ++a) {
        for (std::size_t b = 0; b < d; ++b) next[a] += m(a, b) * v[b];
      }
      double norm = 0.0;
      for (double x : next) norm += x * x;
      norm = std::sqrt(norm);
      if (norm < 1e-12) break;  // degenerate data
      for (std::size_t a = 0; a < d; ++a) v[a] = next[a] / norm;
      eigenvalue = norm;
    }
    return std::make_pair(v, eigenvalue);
  };

  Pca2 out;
  auto [v1, l1] = power_iterate(cov);
  out.v1 = v1;
  out.sd1 = std::sqrt(std::max(0.0, l1));
  // Deflate and repeat for the second component.
  Matrix deflated = cov;
  for (std::size_t a = 0; a < d; ++a) {
    for (std::size_t b = 0; b < d; ++b) deflated(a, b) -= l1 * v1[a] * v1[b];
  }
  auto [v2, l2] = power_iterate(deflated);
  out.v2 = v2;
  out.sd2 = std::sqrt(std::max(0.0, l2));
  return out;
}

struct EStep {
  Matrix responsibilities;  // K x N, columns sum to 1
  double log_likelihood = 0.0;
};

EStep e_step(const Matrix& centers, const Matrix& points, double beta) {
  const std::size_t k = centers.rows(), n = points.rows(), d = centers.cols();
  const Matrix dist = pairwise_sqdist(centers, points);
  EStep out{Matrix(k, n), 0.0};
  const double log_norm = 0.5 * static_cast<double>(d) *
                              std::log(beta / (2.0 * std::acos(-1.0))) -
                          std::log(static_cast<double>(k));
  for (std::size_t j = 0; j < n; ++j) {
    // log-sum-exp over the K mixture components for numerical stability.
    double max_log = -1e300;
    for (std::size_t i = 0; i < k; ++i) {
      max_log = std::max(max_log, -0.5 * beta * dist(i, j));
    }
    double sum = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      const double w = std::exp(-0.5 * beta * dist(i, j) - max_log);
      out.responsibilities(i, j) = w;
      sum += w;
    }
    for (std::size_t i = 0; i < k; ++i) out.responsibilities(i, j) /= sum;
    out.log_likelihood += max_log + std::log(sum) + log_norm;
  }
  return out;
}

}  // namespace

GtmModel GtmModel::train(const Matrix& samples, const GtmConfig& config, ppc::Rng& rng) {
  PPC_REQUIRE(samples.rows() >= 2, "need at least two training samples");
  const std::size_t n = samples.rows(), d = samples.cols();

  GtmModel model;
  model.latent_ = make_grid(config.latent_grid);
  const Matrix rbf_centers = make_grid(config.rbf_grid);
  const double spacing = 2.0 / static_cast<double>(config.rbf_grid - 1);
  const Matrix phi = make_phi(model.latent_, rbf_centers, config.rbf_width_factor * spacing);
  const std::size_t k = model.latent_.rows();
  const std::size_t m1 = phi.cols();

  std::vector<double> mean(d, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < d; ++c) mean[c] += samples(i, c) / static_cast<double>(n);
  }

  Matrix w(m1, d);
  if (config.pca_initialization) {
    // Standard GTM init: lay the latent grid onto the data's top-2
    // principal plane, then solve Phi W = Y_target for W in least squares.
    const Pca2 pca = top2_principal_components(samples, mean, rng);
    Matrix y_target(k, d);
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t c = 0; c < d; ++c) {
        y_target(i, c) = mean[c] + model.latent_(i, 0) * pca.sd1 * pca.v1[c] +
                         model.latent_(i, 1) * pca.sd2 * pca.v2[c];
      }
    }
    const Matrix phi_t0 = phi.transpose();
    Matrix lhs = phi_t0.multiply(phi);
    lhs.add_diagonal(config.regularization);
    w = cholesky_solve_matrix(lhs, phi_t0.multiply(y_target));
  } else {
    // Small random weights plus the data mean in the bias row, so initial
    // centers sit inside the data cloud.
    for (std::size_t r = 0; r < m1; ++r) {
      for (std::size_t c = 0; c < d; ++c) w(r, c) = rng.normal(0.0, 0.05);
    }
    for (std::size_t c = 0; c < d; ++c) w(m1 - 1, c) += mean[c];
  }

  model.centers_ = phi.multiply(w);

  // Initialize beta from the average data variance.
  double var = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < d; ++c) {
      const double diff = samples(i, c) - mean[c];
      var += diff * diff;
    }
  }
  var /= static_cast<double>(n * d);
  model.beta_ = var > 0.0 ? 1.0 / var : 1.0;

  const Matrix phi_t = phi.transpose();
  for (std::size_t iter = 0; iter < config.em_iterations; ++iter) {
    const EStep e = e_step(model.centers_, samples, model.beta_);
    model.loglik_history_.push_back(e.log_likelihood);

    // M-step: (Phi^T G Phi + lambda I) W = Phi^T R X.
    std::vector<double> g(k, 0.0);
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = 0; j < n; ++j) g[i] += e.responsibilities(i, j);
    }
    Matrix gphi = phi;  // G Phi (scale each row of Phi by g)
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t c = 0; c < m1; ++c) gphi(i, c) *= g[i];
    }
    Matrix lhs = phi_t.multiply(gphi);
    lhs.add_diagonal(config.regularization);
    const Matrix rhs = phi_t.multiply(e.responsibilities.multiply(samples));
    w = cholesky_solve_matrix(lhs, rhs);
    model.centers_ = phi.multiply(w);

    // Update beta: inverse of the responsibility-weighted mean squared
    // reconstruction error.
    const Matrix dist = pairwise_sqdist(model.centers_, samples);
    double err = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = 0; j < n; ++j) err += e.responsibilities(i, j) * dist(i, j);
    }
    err /= static_cast<double>(n * d);
    if (err > 1e-12) model.beta_ = 1.0 / err;
  }
  return model;
}

Matrix GtmModel::interpolate(const Matrix& points) const {
  PPC_REQUIRE(points.cols() == centers_.cols(),
              "point dimensionality does not match the trained model");
  const EStep e = e_step(centers_, points, beta_);
  const std::size_t n = points.rows(), k = centers_.rows();
  Matrix out(n, 2, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < k; ++i) {
      out(j, 0) += e.responsibilities(i, j) * latent_(i, 0);
      out(j, 1) += e.responsibilities(i, j) * latent_(i, 1);
    }
  }
  return out;
}

GtmModel GtmModel::from_parts(Matrix latent, Matrix centers, double beta) {
  PPC_REQUIRE(latent.rows() == centers.rows(), "latent/centers row mismatch");
  PPC_REQUIRE(latent.cols() == 2, "latent space must be 2-D");
  PPC_REQUIRE(beta > 0.0, "beta must be positive");
  GtmModel model;
  model.latent_ = std::move(latent);
  model.centers_ = std::move(centers);
  model.beta_ = beta;
  return model;
}

Matrix gtm_latent_grid(std::size_t grid) { return make_grid(grid); }

Matrix gtm_rbf_design(const Matrix& latent, std::size_t rbf_grid, double rbf_width_factor) {
  const Matrix rbf_centers = make_grid(rbf_grid);
  const double spacing = 2.0 / static_cast<double>(rbf_grid - 1);
  return make_phi(latent, rbf_centers, rbf_width_factor * spacing);
}

void GtmSufficientStats::accumulate(const GtmSufficientStats& other) {
  if (n == 0) {
    *this = other;
    return;
  }
  PPC_REQUIRE(g.size() == other.g.size() && bx.rows() == other.bx.rows() &&
                  bx.cols() == other.bx.cols(),
              "sufficient-stat shapes differ");
  for (std::size_t i = 0; i < g.size(); ++i) g[i] += other.g[i];
  for (std::size_t i = 0; i < bx.data().size(); ++i) bx.data()[i] += other.bx.data()[i];
  err += other.err;
  sum_sq += other.sum_sq;
  log_likelihood += other.log_likelihood;
  n += other.n;
}

std::string GtmSufficientStats::serialize() const {
  std::ostringstream os;
  os.precision(17);
  os << "stats " << g.size() << ' ' << bx.cols() << ' ' << n << ' ' << err << ' ' << sum_sq
     << ' ' << log_likelihood << '\n';
  for (double v : g) os << v << ' ';
  os << '\n';
  for (double v : bx.data()) os << v << ' ';
  os << '\n';
  return os.str();
}

GtmSufficientStats GtmSufficientStats::deserialize(const std::string& text) {
  std::istringstream is(text);
  std::string magic;
  std::size_t k = 0, d = 0;
  GtmSufficientStats stats;
  is >> magic >> k >> d >> stats.n >> stats.err >> stats.sum_sq >> stats.log_likelihood;
  PPC_REQUIRE(magic == "stats" && k >= 1 && d >= 1, "malformed sufficient-stat text");
  stats.g.resize(k);
  for (double& v : stats.g) is >> v;
  stats.bx = Matrix(k, d);
  for (double& v : stats.bx.data()) is >> v;
  PPC_REQUIRE(static_cast<bool>(is), "truncated sufficient-stat text");
  return stats;
}

GtmSufficientStats gtm_estep_stats(const Matrix& centers, double beta, const Matrix& chunk) {
  const std::size_t k = centers.rows(), d = centers.cols(), n = chunk.rows();
  PPC_REQUIRE(chunk.cols() == d, "chunk dimensionality mismatch");
  const EStep e = e_step(centers, chunk, beta);
  GtmSufficientStats stats;
  stats.g.assign(k, 0.0);
  stats.bx = Matrix(k, d, 0.0);
  stats.n = n;
  stats.log_likelihood = e.log_likelihood;
  const Matrix dist = pairwise_sqdist(centers, chunk);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double r = e.responsibilities(i, j);
      stats.g[i] += r;
      stats.err += r * dist(i, j);
      for (std::size_t c = 0; c < d; ++c) stats.bx(i, c) += r * chunk(j, c);
    }
  }
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t c = 0; c < d; ++c) stats.sum_sq += chunk(j, c) * chunk(j, c);
  }
  return stats;
}

std::string GtmModel::serialize() const {
  std::ostringstream os;
  os.precision(17);
  os << "gtm " << latent_.rows() << ' ' << centers_.cols() << ' ' << beta_ << '\n';
  for (std::size_t i = 0; i < latent_.rows(); ++i) {
    os << latent_(i, 0) << ' ' << latent_(i, 1);
    for (std::size_t c = 0; c < centers_.cols(); ++c) os << ' ' << centers_(i, c);
    os << '\n';
  }
  return os.str();
}

GtmModel GtmModel::deserialize(const std::string& text) {
  std::istringstream is(text);
  std::string magic;
  std::size_t k = 0, d = 0;
  double beta = 0.0;
  is >> magic >> k >> d >> beta;
  PPC_REQUIRE(magic == "gtm" && k >= 1 && d >= 1 && beta > 0.0, "malformed GTM model text");
  GtmModel model;
  model.latent_ = Matrix(k, 2);
  model.centers_ = Matrix(k, d);
  model.beta_ = beta;
  for (std::size_t i = 0; i < k; ++i) {
    is >> model.latent_(i, 0) >> model.latent_(i, 1);
    for (std::size_t c = 0; c < d; ++c) is >> model.centers_(i, c);
  }
  PPC_REQUIRE(static_cast<bool>(is), "truncated GTM model text");
  return model;
}

std::string interpolate_csv_file(const GtmModel& model, const std::string& csv_points) {
  // Parse CSV rows of D doubles.
  std::vector<std::vector<double>> rows;
  for (const auto& line : ppc::split(csv_points, '\n')) {
    if (ppc::trim(line).empty()) continue;
    std::vector<double> row;
    for (const auto& cell : ppc::split(line, ',')) row.push_back(std::stod(cell));
    rows.push_back(std::move(row));
  }
  PPC_REQUIRE(!rows.empty(), "empty points file");
  Matrix points(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    PPC_REQUIRE(rows[r].size() == points.cols(), "ragged CSV row");
    for (std::size_t c = 0; c < points.cols(); ++c) points(r, c) = rows[r][c];
  }
  const Matrix mapped = model.interpolate(points);
  std::ostringstream os;
  os.precision(10);
  for (std::size_t r = 0; r < mapped.rows(); ++r) {
    os << mapped(r, 0) << ',' << mapped(r, 1) << '\n';
  }
  return os.str();
}

}  // namespace ppc::apps::gtm
