#include "apps/gtm/data_gen.h"

#include <sstream>

#include "common/error.h"
#include "common/string_util.h"

namespace ppc::apps::gtm {

Matrix generate_clustered(const ClusterDataConfig& config, ppc::Rng& rng,
                          std::vector<int>* labels) {
  PPC_REQUIRE(config.num_points >= 1, "need at least one point");
  PPC_REQUIRE(config.clusters >= 1, "need at least one cluster");
  PPC_REQUIRE(config.dims >= 1, "need at least one dimension");

  std::vector<std::vector<double>> centers(config.clusters, std::vector<double>(config.dims));
  for (auto& c : centers) {
    for (double& v : c) v = rng.uniform(-config.center_range, config.center_range);
  }

  Matrix points(config.num_points, config.dims);
  if (labels != nullptr) labels->resize(config.num_points);
  for (std::size_t i = 0; i < config.num_points; ++i) {
    const std::size_t cluster = rng.index(config.clusters);
    if (labels != nullptr) (*labels)[i] = static_cast<int>(cluster);
    for (std::size_t c = 0; c < config.dims; ++c) {
      points(i, c) = centers[cluster][c] + rng.normal(0.0, config.cluster_stddev);
    }
  }
  return points;
}

std::string matrix_to_csv(const Matrix& m) {
  std::ostringstream os;
  os.precision(10);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      if (c > 0) os << ',';
      os << m(r, c);
    }
    os << '\n';
  }
  return os.str();
}

Matrix matrix_from_csv(const std::string& csv) {
  std::vector<std::vector<double>> rows;
  for (const auto& line : ppc::split(csv, '\n')) {
    if (ppc::trim(line).empty()) continue;
    std::vector<double> row;
    for (const auto& cell : ppc::split(line, ',')) row.push_back(std::stod(cell));
    rows.push_back(std::move(row));
  }
  PPC_REQUIRE(!rows.empty(), "empty CSV");
  Matrix m(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    PPC_REQUIRE(rows[r].size() == m.cols(), "ragged CSV row");
    for (std::size_t c = 0; c < m.cols(); ++c) m(r, c) = rows[r][c];
  }
  return m;
}

}  // namespace ppc::apps::gtm
