#include "apps/gtm/matrix.h"

#include <cmath>
#include <sstream>

#include "common/error.h"
#include "common/string_util.h"

namespace ppc::apps::gtm {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  PPC_REQUIRE(rows >= 1 && cols >= 1, "matrix dimensions must be >= 1");
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::multiply(const Matrix& other) const {
  PPC_REQUIRE(cols_ == other.rows_, "matrix dimension mismatch in multiply");
  Matrix out(rows_, other.cols_, 0.0);
  // i-k-j loop order: streams `other` row-wise, cache-friendly for row-major.
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      const double* other_row = &other.data_[k * other.cols_];
      double* out_row = &out.data_[i * other.cols_];
      for (std::size_t j = 0; j < other.cols_; ++j) out_row[j] += aik * other_row[j];
    }
  }
  return out;
}

Matrix Matrix::add(const Matrix& other) const {
  PPC_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_, "matrix dimension mismatch in add");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += other.data_[i];
  return out;
}

Matrix Matrix::scale(double s) const {
  Matrix out = *this;
  for (double& v : out.data_) v *= s;
  return out;
}

void Matrix::add_diagonal(double lambda) {
  PPC_REQUIRE(rows_ == cols_, "add_diagonal requires a square matrix");
  for (std::size_t i = 0; i < rows_; ++i) (*this)(i, i) += lambda;
}

double Matrix::norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

std::vector<double> Matrix::row(std::size_t r) const {
  PPC_REQUIRE(r < rows_, "row out of range");
  return {data_.begin() + static_cast<std::ptrdiff_t>(r * cols_),
          data_.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols_)};
}

std::string Matrix::to_string(int decimals) const {
  std::ostringstream os;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      if (c > 0) os << ' ';
      os << ppc::format_fixed((*this)(r, c), decimals);
    }
    os << '\n';
  }
  return os.str();
}

namespace {
/// Lower-triangular Cholesky factor of SPD matrix a.
Matrix cholesky_factor(const Matrix& a) {
  PPC_REQUIRE(a.rows() == a.cols(), "Cholesky requires a square matrix");
  const std::size_t n = a.rows();
  Matrix l(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        PPC_REQUIRE(sum > 1e-12, "matrix is not positive definite");
        l(i, i) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }
  return l;
}
}  // namespace

std::vector<double> cholesky_solve(const Matrix& a, const std::vector<double>& b) {
  PPC_REQUIRE(b.size() == a.rows(), "rhs size mismatch");
  const Matrix l = cholesky_factor(a);
  const std::size_t n = a.rows();
  // Forward: L y = b
  std::vector<double> y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l(i, k) * y[k];
    y[i] = sum / l(i, i);
  }
  // Backward: L^T x = y
  std::vector<double> x(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) sum -= l(k, ii) * x[k];
    x[ii] = sum / l(ii, ii);
  }
  return x;
}

Matrix cholesky_solve_matrix(const Matrix& a, const Matrix& b) {
  PPC_REQUIRE(b.rows() == a.rows(), "rhs rows mismatch");
  Matrix x(b.rows(), b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    std::vector<double> col(b.rows());
    for (std::size_t r = 0; r < b.rows(); ++r) col[r] = b(r, c);
    const auto sol = cholesky_solve(a, col);
    for (std::size_t r = 0; r < b.rows(); ++r) x(r, c) = sol[r];
  }
  return x;
}

double squared_distance(const std::vector<double>& x, const std::vector<double>& y) {
  PPC_REQUIRE(x.size() == y.size(), "vector length mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - y[i];
    s += d * d;
  }
  return s;
}

}  // namespace ppc::apps::gtm
