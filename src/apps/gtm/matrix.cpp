#include "apps/gtm/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <future>
#include <sstream>
#include <thread>

#include "common/error.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace ppc::apps::gtm {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  PPC_REQUIRE(rows >= 1 && cols >= 1, "matrix dimensions must be >= 1");
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

namespace {

// The multiply kernel: B is packed into NR-column panels so the innermost
// loop reads contiguous memory, and each MR x NR output tile accumulates in
// registers (one store per output element instead of one per k step).
// Accumulation stays in increasing-k order per element, so results match a
// textbook i-k-j triple loop to the last ulp of summation-order freedom.
constexpr std::size_t kMr = 4;   // A rows per micro-kernel call
constexpr std::size_t kNr = 12;  // packed-panel width (B columns)

// SIMD via function multi-versioning: the project is built for baseline
// x86-64, but the micro-kernel is cloned for AVX2/FMA and AVX-512 and
// dispatched at load time on ELF/GCC-compatible toolchains.
#if defined(__GNUC__) && defined(__ELF__) && defined(__x86_64__)
#define PPC_MM_CLONES __attribute__((target_clones("avx512f", "avx2,fma", "default")))
#else
#define PPC_MM_CLONES
#endif

/// acc[kMr][kNr] += rows a0..a3 of A times the packed panel `pb` (kk steps).
PPC_MM_CLONES
void micro_kernel(const double* a0, const double* a1, const double* a2, const double* a3,
                  const double* pb, double* acc, std::size_t kk) {
  double local[kMr][kNr] = {};
  for (std::size_t k = 0; k < kk; ++k) {
    const double* b = &pb[k * kNr];
    const double av0 = a0[k], av1 = a1[k], av2 = a2[k], av3 = a3[k];
    for (std::size_t jj = 0; jj < kNr; ++jj) {
      const double bv = b[jj];
      local[0][jj] += av0 * bv;
      local[1][jj] += av1 * bv;
      local[2][jj] += av2 * bv;
      local[3][jj] += av3 * bv;
    }
  }
  std::memcpy(acc, local, sizeof(local));
}

/// Packs B (kk x m, row-major, leading dimension m) into kNr-wide panels:
/// panel p holds columns [p*kNr, p*kNr + kNr), k-major, zero-padded.
std::vector<double> pack_panels(const double* b, std::size_t kk, std::size_t m) {
  const std::size_t npan = (m + kNr - 1) / kNr;
  std::vector<double> pack(npan * kk * kNr, 0.0);
  for (std::size_t p = 0; p < npan; ++p) {
    const std::size_t j0 = p * kNr;
    const std::size_t jw = std::min(kNr, m - j0);
    double* dst = &pack[p * kk * kNr];
    for (std::size_t k = 0; k < kk; ++k) {
      const double* src = &b[k * m + j0];
      for (std::size_t jj = 0; jj < jw; ++jj) dst[k * kNr + jj] = src[jj];
    }
  }
  return pack;
}

/// Computes rows [r0, r1) of C = A * B from the packed panels of B.
void multiply_band(const double* a, const std::vector<double>& pack, double* c, std::size_t kk,
                   std::size_t m, std::size_t r0, std::size_t r1) {
  const std::size_t npan = (m + kNr - 1) / kNr;
  double acc[kMr][kNr];
  std::size_t i = r0;
  for (; i + kMr <= r1; i += kMr) {
    for (std::size_t p = 0; p < npan; ++p) {
      const std::size_t j0 = p * kNr;
      const std::size_t jw = std::min(kNr, m - j0);
      micro_kernel(&a[(i + 0) * kk], &a[(i + 1) * kk], &a[(i + 2) * kk], &a[(i + 3) * kk],
                   &pack[p * kk * kNr], &acc[0][0], kk);
      for (std::size_t ii = 0; ii < kMr; ++ii) {
        for (std::size_t jj = 0; jj < jw; ++jj) c[(i + ii) * m + j0 + jj] = acc[ii][jj];
      }
    }
  }
  // Remainder rows: run the micro-kernel with the last row duplicated and
  // write back only the real ones (keeps one code path hot).
  if (i < r1) {
    const double* rows[kMr];
    const std::size_t iw = r1 - i;
    for (std::size_t ii = 0; ii < kMr; ++ii) rows[ii] = &a[(i + std::min(ii, iw - 1)) * kk];
    for (std::size_t p = 0; p < npan; ++p) {
      const std::size_t j0 = p * kNr;
      const std::size_t jw = std::min(kNr, m - j0);
      micro_kernel(rows[0], rows[1], rows[2], rows[3], &pack[p * kk * kNr], &acc[0][0], kk);
      for (std::size_t ii = 0; ii < iw; ++ii) {
        for (std::size_t jj = 0; jj < jw; ++jj) c[(i + ii) * m + j0 + jj] = acc[ii][jj];
      }
    }
  }
}

/// Shared pool for banded products. Sized so the bench's "≥4 threads"
/// configuration holds even on small hosts; bands are chunky enough that
/// oversubscription on fewer cores costs nothing measurable.
ThreadPool& multiply_pool() {
  static ThreadPool pool(std::max(4u, std::thread::hardware_concurrency()));
  return pool;
}

/// Below this many multiply-adds the submit/join overhead outweighs the
/// parallelism (a 128^3 product is ~2M).
constexpr std::size_t kParallelFlopThreshold = std::size_t{1} << 23;

}  // namespace

Matrix Matrix::multiply(const Matrix& other) const {
  PPC_REQUIRE(cols_ == other.rows_, "matrix dimension mismatch in multiply");
  Matrix out(rows_, other.cols_, 0.0);
  const std::size_t m = other.cols_;
  const std::size_t kk = cols_;
  const std::vector<double> pack = pack_panels(other.data_.data(), kk, m);

  ThreadPool& pool = multiply_pool();
  const std::size_t flops = rows_ * m * kk;
  std::size_t bands = 1;
  if (flops >= kParallelFlopThreshold && pool.size() > 1) {
    bands = std::min<std::size_t>(pool.size(), rows_ / kMr);
    bands = std::max<std::size_t>(bands, 1);
  }
  if (bands <= 1) {
    multiply_band(data_.data(), pack, out.data_.data(), kk, m, 0, rows_);
    return out;
  }

  // Row bands: each band owns a disjoint slice of the output, aligned to the
  // micro-kernel height so every band runs the hot path.
  const std::size_t chunk = ((rows_ + bands - 1) / bands + kMr - 1) / kMr * kMr;
  std::vector<std::future<void>> futures;
  futures.reserve(bands);
  std::size_t r0 = chunk;  // band 0 runs on the calling thread
  for (std::size_t b = 1; b < bands && r0 < rows_; ++b, r0 += chunk) {
    const std::size_t lo = r0, hi = std::min(rows_, r0 + chunk);
    auto fut = pool.try_submit([this, &pack, &out, kk, m, lo, hi] {
      multiply_band(data_.data(), pack, out.data_.data(), kk, m, lo, hi);
    });
    if (fut) {
      futures.push_back(std::move(*fut));
    } else {
      // Pool is draining (process exit): fall back inline.
      multiply_band(data_.data(), pack, out.data_.data(), kk, m, lo, hi);
    }
  }
  multiply_band(data_.data(), pack, out.data_.data(), kk, m, 0, std::min(rows_, chunk));
  for (auto& f : futures) f.get();
  return out;
}

Matrix Matrix::add(const Matrix& other) const {
  PPC_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_, "matrix dimension mismatch in add");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += other.data_[i];
  return out;
}

Matrix Matrix::scale(double s) const {
  Matrix out = *this;
  for (double& v : out.data_) v *= s;
  return out;
}

void Matrix::add_diagonal(double lambda) {
  PPC_REQUIRE(rows_ == cols_, "add_diagonal requires a square matrix");
  for (std::size_t i = 0; i < rows_; ++i) (*this)(i, i) += lambda;
}

double Matrix::norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

std::vector<double> Matrix::row(std::size_t r) const {
  PPC_REQUIRE(r < rows_, "row out of range");
  return {data_.begin() + static_cast<std::ptrdiff_t>(r * cols_),
          data_.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols_)};
}

std::string Matrix::to_string(int decimals) const {
  std::ostringstream os;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      if (c > 0) os << ' ';
      os << ppc::format_fixed((*this)(r, c), decimals);
    }
    os << '\n';
  }
  return os.str();
}

CholeskyFactorization::CholeskyFactorization(const Matrix& a) {
  PPC_REQUIRE(a.rows() == a.cols(), "Cholesky requires a square matrix");
  const std::size_t n = a.rows();
  Matrix l(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        PPC_REQUIRE(sum > 1e-12, "matrix is not positive definite");
        l(i, i) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }
  l_ = std::move(l);
}

std::vector<double> CholeskyFactorization::solve(const std::vector<double>& b) const {
  const std::size_t n = dim();
  PPC_REQUIRE(b.size() == n, "rhs size mismatch");
  const Matrix& l = l_;
  // Forward: L y = b
  std::vector<double> y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l(i, k) * y[k];
    y[i] = sum / l(i, i);
  }
  // Backward: L^T x = y
  std::vector<double> x(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) sum -= l(k, ii) * x[k];
    x[ii] = sum / l(ii, ii);
  }
  return x;
}

Matrix CholeskyFactorization::solve(const Matrix& b) const {
  PPC_REQUIRE(b.rows() == dim(), "rhs rows mismatch");
  Matrix x(b.rows(), b.cols());
  std::vector<double> col(b.rows());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    for (std::size_t r = 0; r < b.rows(); ++r) col[r] = b(r, c);
    const auto sol = solve(col);
    for (std::size_t r = 0; r < b.rows(); ++r) x(r, c) = sol[r];
  }
  return x;
}

std::vector<double> cholesky_solve(const Matrix& a, const std::vector<double>& b) {
  PPC_REQUIRE(b.size() == a.rows(), "rhs size mismatch");
  return CholeskyFactorization(a).solve(b);
}

Matrix cholesky_solve_matrix(const Matrix& a, const Matrix& b) {
  PPC_REQUIRE(b.rows() == a.rows(), "rhs rows mismatch");
  return CholeskyFactorization(a).solve(b);
}

double squared_distance(const std::vector<double>& x, const std::vector<double>& y) {
  PPC_REQUIRE(x.size() == y.size(), "vector length mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - y[i];
    s += d * d;
  }
  return s;
}

}  // namespace ppc::apps::gtm
