// Synthetic high-dimensional chemistry-like data — the PubChem stand-in.
//
// §6.2 uses "the PubChem data set of 26 million data points with 166
// dimensions" (166-bit MACCS-key-derived descriptors). We generate clustered
// Gaussian data: compounds form structural families, which is what makes
// GTM maps of PubChem informative; the tests assert that interpolation
// keeps families together in latent space.
#pragma once

#include <string>
#include <vector>

#include "apps/gtm/matrix.h"
#include "common/rng.h"

namespace ppc::apps::gtm {

struct ClusterDataConfig {
  std::size_t num_points = 1000;
  std::size_t dims = 166;  // PubChem descriptor dimensionality
  std::size_t clusters = 5;
  double center_range = 1.0;    // cluster centers uniform in [-range, range]^D
  double cluster_stddev = 0.08; // within-cluster spread
};

/// Generates clustered points; when `labels` is non-null it receives the
/// cluster id of each row.
Matrix generate_clustered(const ClusterDataConfig& config, ppc::Rng& rng,
                          std::vector<int>* labels = nullptr);

/// CSV round-trip for the frameworks' file contract.
std::string matrix_to_csv(const Matrix& m);
Matrix matrix_from_csv(const std::string& csv);

}  // namespace ppc::apps::gtm
