// Runtime cost model of GTM Interpolation — feeds the simulation behind
// Figures 12-15.
//
// §6 establishes the shape: "GTM is more memory-intensive and the memory
// bandwidth becomes the bottleneck"; "platforms with less memory contention
// (fewer CPU cores sharing a single memory) performed better"; HM4XL gives
// the best performance, EC2 Large the best EC2 efficiency, Azure Small the
// best overall efficiency, and 16-core Dryad nodes the worst.
//
// Model: per-file time = cpu_term / clock + mem_term / (bandwidth per busy
// core). The second term grows when more cores of an instance compete for
// its memory bus — precisely the contention story of §6.2.
#pragma once

#include "cloud/instance_types.h"
#include "common/rng.h"
#include "common/units.h"

namespace ppc::apps::gtm {

struct GtmCostModel {
  /// CPU-bound seconds x GHz per 100k-point file.
  double cpu_seconds_ghz = 20.0;
  /// Memory-traffic seconds x (GB/s) per 100k-point file.
  double mem_seconds_gbps = 40.0;
  /// Points per reference file (the paper partitions 26.4M points into 264
  /// files of 100k points).
  double reference_points = 100000.0;
  double jitter_cv = 0.03;

  /// Expected sequential seconds for one file of `points` points on an
  /// instance of `type` with `busy_cores` of its cores concurrently active.
  Seconds expected_seconds(double points, const cloud::InstanceType& type, int busy_cores) const;

  Seconds sample_seconds(double points, const cloud::InstanceType& type, int busy_cores,
                         ppc::Rng& rng) const;
};

}  // namespace ppc::apps::gtm
