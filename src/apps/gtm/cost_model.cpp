#include "apps/gtm/cost_model.h"

#include "common/error.h"

namespace ppc::apps::gtm {

Seconds GtmCostModel::expected_seconds(double points, const cloud::InstanceType& type,
                                       int busy_cores) const {
  PPC_REQUIRE(points > 0.0, "points must be positive");
  const double scale = points / reference_points;
  const double cpu_term = cpu_seconds_ghz / type.clock_ghz;
  const double mem_term = mem_seconds_gbps / type.bandwidth_per_busy_core(busy_cores);
  return scale * (cpu_term + mem_term);
}

Seconds GtmCostModel::sample_seconds(double points, const cloud::InstanceType& type,
                                     int busy_cores, ppc::Rng& rng) const {
  return rng.jittered(expected_seconds(points, type, busy_cores), jitter_cv);
}

}  // namespace ppc::apps::gtm
