// Generative Topographic Mapping: training (EM) and the out-of-sample
// interpolation the paper parallelizes.
//
// §6: "GTM Interpolation takes only a part of the full dataset, known as
// samples, for a compute-intensive training process and applies the trained
// result to the rest of the dataset, known as out-of-samples." The trained
// model here is the classic GTM of Bishop/Svensén/Williams: a regular grid
// of K latent points in 2D, an RBF basis mapping latent space to data
// space, a weight matrix W fitted by EM, and a noise precision beta.
// Interpolation computes each out-of-sample point's responsibilities over
// the latent grid and projects it to the posterior-mean latent position —
// the dimension-reduction output the paper visualizes for 26M PubChem
// compounds.
//
// The model serializes to text so the frameworks can distribute it to
// workers exactly as they distribute the BLAST database.
#pragma once

#include <string>
#include <vector>

#include "apps/gtm/matrix.h"
#include "common/rng.h"

namespace ppc::apps::gtm {

struct GtmConfig {
  /// Latent points form a latent_grid x latent_grid 2D grid (K = grid^2).
  std::size_t latent_grid = 8;
  /// RBF centers form an rbf_grid x rbf_grid grid (M = grid^2 + bias).
  std::size_t rbf_grid = 4;
  /// RBF width = factor x spacing of the RBF center grid.
  double rbf_width_factor = 2.0;
  std::size_t em_iterations = 20;
  /// Ridge regularization on the weight solve.
  double regularization = 1e-3;
  /// Initialize the mapping on the data's top-2 principal-component plane
  /// (the standard GTM initialization); false falls back to a small random
  /// W around the data mean.
  bool pca_initialization = true;
};

class GtmModel {
 public:
  /// Trains on `samples` (N x D). This is the "compute-intensive training
  /// process" run once on the sample subset.
  static GtmModel train(const Matrix& samples, const GtmConfig& config, ppc::Rng& rng);

  /// Projects points (N x D) into latent 2D space (N x 2) — the pleasingly
  /// parallel per-file computation of §6.
  Matrix interpolate(const Matrix& points) const;

  std::size_t latent_points() const { return latent_.rows(); }
  std::size_t data_dims() const { return centers_.cols(); }
  double beta() const { return beta_; }
  const Matrix& latent_grid() const { return latent_; }
  /// Projected mixture centers Y = Phi W (K x D).
  const Matrix& projected_centers() const { return centers_; }
  const std::vector<double>& log_likelihood_history() const { return loglik_history_; }

  /// Text round-trip, for distributing the trained model to workers.
  std::string serialize() const;
  static GtmModel deserialize(const std::string& text);

  /// Assembles a model from its parts — used by the distributed trainer,
  /// whose M-step runs outside this class.
  static GtmModel from_parts(Matrix latent, Matrix centers, double beta);

 private:
  GtmModel() = default;

  Matrix latent_;   // K x 2
  Matrix centers_;  // K x D (Phi W, cached)
  double beta_ = 1.0;
  std::vector<double> loglik_history_;
};

/// File contract for the frameworks: CSV of out-of-sample points in, CSV of
/// 2D coordinates out.
std::string interpolate_csv_file(const GtmModel& model, const std::string& csv_points);

// --- Building blocks exposed for the distributed trainer (gtm/distributed) ---

/// Regular grid x grid layout over [-1, 1]^2, row-major (K = grid^2 rows).
Matrix gtm_latent_grid(std::size_t grid);

/// RBF design matrix Phi (K x M+1): Gaussian bumps over `latent` centered
/// on an rbf_grid x rbf_grid grid, plus a bias column.
Matrix gtm_rbf_design(const Matrix& latent, std::size_t rbf_grid, double rbf_width_factor);

/// Per-chunk sufficient statistics of one EM E-step: everything the M-step
/// needs, additive across chunks — which is exactly what makes GTM training
/// a MapReduce computation.
struct GtmSufficientStats {
  std::vector<double> g;   // K: responsibility sums
  Matrix bx;               // K x D: responsibility-weighted data sums (R X)
  double err = 0.0;        // weighted squared error against the E-step's centers
  double sum_sq = 0.0;     // sum of |x|^2 — lets the M-step re-evaluate the
                           // error against the *updated* centers:
                           // err(Y') = sum_k (g_k |y'_k|^2 - 2 y'_k . bx_k) + sum_sq
  double log_likelihood = 0.0;
  std::size_t n = 0;       // points in the chunk

  /// Element-wise accumulation (chunks combine associatively).
  void accumulate(const GtmSufficientStats& other);

  std::string serialize() const;
  static GtmSufficientStats deserialize(const std::string& text);
};

/// Runs the E-step of `centers`/`beta` against `chunk` and returns the
/// chunk's sufficient statistics.
GtmSufficientStats gtm_estep_stats(const Matrix& centers, double beta, const Matrix& chunk);

}  // namespace ppc::apps::gtm
