// Small dense row-major matrix kernel used by the GTM implementation.
//
// Deliberately self-contained (no BLAS dependency): the GTM Interpolation
// application the paper runs is a dense linear-algebra code, and its
// memory-bandwidth-bound character (§6) comes from exactly these streaming
// matrix products. multiply() runs a packed, register-tiled micro-kernel
// (SIMD via function multi-versioning where the toolchain supports it) and
// fans large products out over row bands on a shared ThreadPool; see
// DESIGN.md "Kernel performance".
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ppc::apps::gtm {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  Matrix transpose() const;

  /// this * other; dimensions must agree.
  Matrix multiply(const Matrix& other) const;

  /// this + other (element-wise).
  Matrix add(const Matrix& other) const;

  /// this * scalar.
  Matrix scale(double s) const;

  /// Adds lambda to the diagonal in place (ridge regularization).
  void add_diagonal(double lambda);

  /// Frobenius norm.
  double norm() const;

  /// Row `r` as a vector copy.
  std::vector<double> row(std::size_t r) const;

  std::string to_string(int decimals = 3) const;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

/// Cholesky factorization of a symmetric positive-definite matrix, computed
/// once (O(n^3)) and reusable for any number of right-hand sides (O(n^2)
/// each). Throws ppc::InvalidArgument when A is not SPD (within tolerance).
class CholeskyFactorization {
 public:
  explicit CholeskyFactorization(const Matrix& a);

  std::size_t dim() const { return l_.rows(); }

  /// The lower-triangular factor L (A = L L^T).
  const Matrix& factor() const { return l_; }

  /// Solves A x = b via forward/backward substitution on the cached factor.
  std::vector<double> solve(const std::vector<double>& b) const;

  /// Solves A X = B for every column of B, reusing the factor.
  Matrix solve(const Matrix& b) const;

 private:
  Matrix l_;
};

/// Solves A x = b for symmetric positive-definite A via Cholesky; returns x.
/// Throws ppc::InvalidArgument when A is not SPD (within tolerance).
/// One-shot convenience over CholeskyFactorization.
std::vector<double> cholesky_solve(const Matrix& a, const std::vector<double>& b);

/// Solves A X = B column-wise for SPD A (B given as a Matrix). Factors A
/// once and back-substitutes every column of B against the cached factor.
Matrix cholesky_solve_matrix(const Matrix& a, const Matrix& b);

/// Squared Euclidean distance between two equal-length vectors.
double squared_distance(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace ppc::apps::gtm
