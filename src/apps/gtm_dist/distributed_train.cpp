#include "apps/gtm_dist/distributed_train.h"

#include <cmath>

#include "apps/gtm/data_gen.h"
#include "common/error.h"
#include "common/rng.h"

namespace ppc::apps::gtm {

DistributedTrainResult distributed_gtm_train(azuremr::AzureMapReduce& runtime,
                                             const std::vector<Matrix>& chunks,
                                             const DistributedTrainOptions& options) {
  PPC_REQUIRE(!chunks.empty(), "need at least one sample chunk");
  const std::size_t d = chunks.front().cols();
  std::size_t total_points = 0;
  for (const Matrix& c : chunks) {
    PPC_REQUIRE(c.cols() == d, "all chunks must share dimensionality");
    total_points += c.rows();
  }
  PPC_REQUIRE(total_points >= 2, "need at least two training samples");

  // Initialization must see the whole sample set (PCA init), exactly like
  // the local trainer — concatenate once, client-side.
  Matrix all(total_points, d);
  std::size_t row = 0;
  for (const Matrix& c : chunks) {
    for (std::size_t i = 0; i < c.rows(); ++i, ++row) {
      for (std::size_t j = 0; j < d; ++j) all(row, j) = c(i, j);
    }
  }
  ppc::Rng rng(options.seed);
  GtmConfig init_config = options.gtm;
  init_config.em_iterations = 0;  // init only; EM happens distributed below
  const GtmModel initial = GtmModel::train(all, init_config, rng);

  const Matrix latent = gtm_latent_grid(options.gtm.latent_grid);
  const Matrix phi =
      gtm_rbf_design(latent, options.gtm.rbf_grid, options.gtm.rbf_width_factor);
  const Matrix phi_t = phi.transpose();
  const double reg = options.gtm.regularization;

  auto history = std::make_shared<std::vector<double>>();

  azuremr::JobSpec spec;
  spec.job_id = options.job_id;
  spec.num_reduce_tasks = 1;
  spec.max_iterations = options.max_iterations;
  spec.initial_broadcast = initial.serialize();
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    spec.inputs.emplace_back("chunk" + std::to_string(c), matrix_to_csv(chunks[c]));
  }

  // Map: E-step sufficient statistics of this chunk under the broadcast
  // model (the chunk CSV is parsed per call; a production worker would
  // cache the parsed matrix alongside the cached bytes).
  spec.map = [](const std::string&, const std::string& chunk_csv,
                const std::string& broadcast) {
    const GtmModel model = GtmModel::deserialize(broadcast);
    const Matrix chunk = matrix_from_csv(chunk_csv);
    const GtmSufficientStats stats =
        gtm_estep_stats(model.projected_centers(), model.beta(), chunk);
    return std::vector<azuremr::KeyValue>{{"stats", stats.serialize()}};
  };

  // Reduce: statistics are additive.
  spec.reduce = [](const std::string&, const std::vector<std::string>& values) {
    GtmSufficientStats total;
    for (const std::string& v : values) {
      total.accumulate(GtmSufficientStats::deserialize(v));
    }
    return total.serialize();
  };

  // Merge: the M-step. Solve (Phi^T G Phi + reg I) W = Phi^T (R X), update
  // beta from the weighted reconstruction error, re-broadcast the model.
  spec.merge = [latent, phi, phi_t, reg, d, history](
                   const std::map<std::string, std::string>& reduced, const std::string&) {
    const GtmSufficientStats stats = GtmSufficientStats::deserialize(reduced.at("stats"));
    history->push_back(stats.log_likelihood);

    Matrix gphi = phi;
    for (std::size_t i = 0; i < phi.rows(); ++i) {
      for (std::size_t c = 0; c < phi.cols(); ++c) gphi(i, c) *= stats.g[i];
    }
    Matrix lhs = phi_t.multiply(gphi);
    lhs.add_diagonal(reg);
    const Matrix w = cholesky_solve_matrix(lhs, phi_t.multiply(stats.bx));
    const Matrix centers = phi.multiply(w);

    // Beta uses the reconstruction error of the *updated* centers under the
    // E-step's responsibilities (the exact EM M-step), recovered from the
    // additive statistics: err = sum_k (g_k |y_k|^2 - 2 y_k . bx_k) + sum|x|^2.
    double err = stats.sum_sq;
    for (std::size_t i = 0; i < centers.rows(); ++i) {
      double y_sq = 0.0, y_dot_bx = 0.0;
      for (std::size_t c = 0; c < centers.cols(); ++c) {
        y_sq += centers(i, c) * centers(i, c);
        y_dot_bx += centers(i, c) * stats.bx(i, c);
      }
      err += stats.g[i] * y_sq - 2.0 * y_dot_bx;
    }
    double beta = 1.0;
    const double mean_err = err / static_cast<double>(stats.n * d);
    if (mean_err > 1e-12) beta = 1.0 / mean_err;
    return GtmModel::from_parts(latent, centers, beta).serialize();
  };

  spec.converged = [history, tol = options.tolerance](const std::string&, const std::string&,
                                                      int) {
    const auto& h = *history;
    if (h.size() < 2) return false;
    return std::abs(h.back() - h[h.size() - 2]) < tol * std::abs(h.back());
  };

  const azuremr::JobResult job = runtime.run(spec);
  PPC_CHECK(job.succeeded, "distributed GTM training job failed");

  return DistributedTrainResult{GtmModel::deserialize(job.final_broadcast), job.iterations_run,
                                job.converged, *history};
}

}  // namespace ppc::apps::gtm
