// Distributed GTM *training* on the azuremr iterative-MapReduce framework —
// the natural next step after the paper: §6 parallelizes only the
// interpolation ("GTM Interpolation takes only a part of the full dataset
// ... for a compute-intensive training process"), and §8 promises the
// iterative MapReduce framework that could distribute the training itself.
// This module composes the two.
//
// Per EM iteration:
//   broadcast — the current model (latent grid + mixture centers + beta);
//   map       — each cached sample chunk computes its E-step sufficient
//               statistics (responsibility sums g, weighted data sums R·X,
//               reconstruction error, log-likelihood);
//   reduce    — statistics are summed (they are additive across chunks);
//   merge     — the client solves the M-step (ridge-regularized weighted
//               least squares), updates beta, and re-broadcasts; the loop
//               stops when the log-likelihood gain falls below `tolerance`.
//
// The result is numerically the same EM as GtmModel::train (the E-step
// factorizes over points), so the tests compare the two directly.
#pragma once

#include "apps/gtm/gtm.h"
#include "azuremr/runtime.h"

namespace ppc::apps::gtm {

struct DistributedTrainOptions {
  GtmConfig gtm;
  int max_iterations = 30;
  /// Stop when the per-iteration log-likelihood gain drops below this.
  double tolerance = 1e-4;
  unsigned seed = 42;
  std::string job_id = "gtm-train";
};

struct DistributedTrainResult {
  GtmModel model;
  int iterations = 0;
  bool converged = false;
  std::vector<double> log_likelihood_history;
};

/// Trains a GTM on `chunks` (each N_i x D, equal D) with the map/reduce
/// work executed by `runtime`'s worker pool.
DistributedTrainResult distributed_gtm_train(azuremr::AzureMapReduce& runtime,
                                             const std::vector<Matrix>& chunks,
                                             const DistributedTrainOptions& options = {});

}  // namespace ppc::apps::gtm
