// Block decomposition of the pairwise distance matrix — the SW-G MapReduce
// pattern: the N x N symmetric matrix is tiled into B x B blocks; each map
// task computes one upper-triangle block (the lower triangle is its mirror)
// and the results merge into the full matrix. Each block is an independent
// task, so the computation is pleasingly parallel at block granularity.
#pragma once

#include <string>
#include <vector>

#include "apps/cap3/fasta.h"
#include "apps/swg/alignment.h"

namespace ppc::apps::swg {

struct BlockSpec {
  std::size_t row_begin = 0, row_end = 0;  // [begin, end)
  std::size_t col_begin = 0, col_end = 0;
  bool diagonal() const { return row_begin == col_begin; }
};

/// Upper-triangle (including diagonal) block covering of an n x n matrix.
std::vector<BlockSpec> partition_blocks(std::size_t n, std::size_t block_size);

/// Computes one block of pairwise distances for `seqs`. Diagonal blocks
/// only compute their own upper triangle (j > i); mirrored entries are
/// filled by merge_block. Returned row-major, (row_end-row_begin) x
/// (col_end-col_begin).
std::vector<double> compute_block(const std::vector<apps::FastaRecord>& seqs,
                                  const BlockSpec& block, const SwParams& params = {});

/// A full n x n distance matrix assembled block by block.
class DistanceMatrix {
 public:
  explicit DistanceMatrix(std::size_t n);

  std::size_t size() const { return n_; }
  double at(std::size_t i, std::size_t j) const;

  /// Installs a computed block and its transpose mirror.
  void merge_block(const BlockSpec& block, const std::vector<double>& values);

  /// True when every cell has been filled (diagonal is implicitly 0).
  bool complete() const;

  /// CSV rendering (one row per line).
  std::string to_csv() const;

 private:
  std::size_t n_;
  std::vector<double> values_;
  std::vector<bool> filled_;
};

/// Serialization of block results for shipping through blob storage:
/// "row_begin row_end col_begin col_end\nv v v ...".
std::string encode_block_result(const BlockSpec& block, const std::vector<double>& values);
std::pair<BlockSpec, std::vector<double>> decode_block_result(const std::string& text);

/// Convenience: the whole matrix computed serially (reference for tests).
DistanceMatrix pairwise_distances(const std::vector<apps::FastaRecord>& seqs,
                                  std::size_t block_size = 16, const SwParams& params = {});

}  // namespace ppc::apps::swg
