#include "apps/swg/blocks.h"

#include <sstream>

#include "common/error.h"
#include "common/string_util.h"

namespace ppc::apps::swg {

std::vector<BlockSpec> partition_blocks(std::size_t n, std::size_t block_size) {
  PPC_REQUIRE(n >= 1, "matrix must be non-empty");
  PPC_REQUIRE(block_size >= 1, "block size must be >= 1");
  std::vector<BlockSpec> blocks;
  for (std::size_t r = 0; r < n; r += block_size) {
    for (std::size_t c = r; c < n; c += block_size) {  // upper triangle only
      BlockSpec b;
      b.row_begin = r;
      b.row_end = std::min(n, r + block_size);
      b.col_begin = c;
      b.col_end = std::min(n, c + block_size);
      blocks.push_back(b);
    }
  }
  return blocks;
}

std::vector<double> compute_block(const std::vector<apps::FastaRecord>& seqs,
                                  const BlockSpec& block, const SwParams& params) {
  PPC_REQUIRE(block.row_end <= seqs.size() && block.col_end <= seqs.size(),
              "block out of range");
  PPC_REQUIRE(block.row_begin < block.row_end && block.col_begin < block.col_end,
              "empty block");
  const std::size_t rows = block.row_end - block.row_begin;
  const std::size_t cols = block.col_end - block.col_begin;
  std::vector<double> values(rows * cols, 0.0);
  for (std::size_t i = 0; i < rows; ++i) {
    const std::size_t gi = block.row_begin + i;
    for (std::size_t j = 0; j < cols; ++j) {
      const std::size_t gj = block.col_begin + j;
      if (block.diagonal() && gj <= gi) continue;  // mirror fills the rest
      values[i * cols + j] = sw_distance(seqs[gi].seq, seqs[gj].seq, params);
    }
  }
  return values;
}

DistanceMatrix::DistanceMatrix(std::size_t n)
    : n_(n), values_(n * n, 0.0), filled_(n * n, false) {
  PPC_REQUIRE(n >= 1, "matrix must be non-empty");
  for (std::size_t i = 0; i < n; ++i) filled_[i * n + i] = true;  // d(i,i) = 0
}

double DistanceMatrix::at(std::size_t i, std::size_t j) const {
  PPC_REQUIRE(i < n_ && j < n_, "index out of range");
  return values_[i * n_ + j];
}

void DistanceMatrix::merge_block(const BlockSpec& block, const std::vector<double>& values) {
  const std::size_t rows = block.row_end - block.row_begin;
  const std::size_t cols = block.col_end - block.col_begin;
  PPC_REQUIRE(values.size() == rows * cols, "block payload size mismatch");
  PPC_REQUIRE(block.row_end <= n_ && block.col_end <= n_, "block out of range");
  for (std::size_t i = 0; i < rows; ++i) {
    const std::size_t gi = block.row_begin + i;
    for (std::size_t j = 0; j < cols; ++j) {
      const std::size_t gj = block.col_begin + j;
      if (block.diagonal() && gj <= gi) continue;
      values_[gi * n_ + gj] = values[i * cols + j];
      values_[gj * n_ + gi] = values[i * cols + j];  // symmetric mirror
      filled_[gi * n_ + gj] = true;
      filled_[gj * n_ + gi] = true;
    }
  }
}

bool DistanceMatrix::complete() const {
  for (bool f : filled_) {
    if (!f) return false;
  }
  return true;
}

std::string DistanceMatrix::to_csv() const {
  std::ostringstream os;
  os.precision(8);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) {
      if (j > 0) os << ',';
      os << values_[i * n_ + j];
    }
    os << '\n';
  }
  return os.str();
}

std::string encode_block_result(const BlockSpec& block, const std::vector<double>& values) {
  std::ostringstream os;
  os.precision(17);
  os << block.row_begin << ' ' << block.row_end << ' ' << block.col_begin << ' '
     << block.col_end << '\n';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) os << ' ';
    os << values[i];
  }
  os << '\n';
  return os.str();
}

std::pair<BlockSpec, std::vector<double>> decode_block_result(const std::string& text) {
  std::istringstream is(text);
  BlockSpec block;
  is >> block.row_begin >> block.row_end >> block.col_begin >> block.col_end;
  PPC_REQUIRE(static_cast<bool>(is), "malformed block header");
  PPC_REQUIRE(block.row_begin < block.row_end && block.col_begin < block.col_end,
              "malformed block extent");
  const std::size_t count =
      (block.row_end - block.row_begin) * (block.col_end - block.col_begin);
  std::vector<double> values(count, 0.0);
  for (double& v : values) {
    is >> v;
    PPC_REQUIRE(static_cast<bool>(is), "truncated block payload");
  }
  return {block, std::move(values)};
}

DistanceMatrix pairwise_distances(const std::vector<apps::FastaRecord>& seqs,
                                  std::size_t block_size, const SwParams& params) {
  DistanceMatrix matrix(seqs.size());
  for (const BlockSpec& block : partition_blocks(seqs.size(), block_size)) {
    matrix.merge_block(block, compute_block(seqs, block, params));
  }
  return matrix;
}

}  // namespace ppc::apps::swg
