// Smith-Waterman-Gotoh local alignment — the kernel of the pairwise
// sequence alignment application the authors reference in §7 ("we have also
// developed distributed pairwise sequence alignment applications using
// MapReduce programming models [13]"). Included as an extension: a fourth
// pleasingly parallel biomedical workload whose decomposition (blocks of a
// symmetric distance matrix) differs from the file-per-task pattern of
// Cap3/BLAST/GTM.
//
// Full affine-gap dynamic programming (Gotoh), linear space for the score.
#pragma once

#include <cstddef>
#include <string>

namespace ppc::apps::swg {

struct SwParams {
  int match = 5;
  int mismatch = -3;
  int gap_open = -8;    // cost of the first gap position
  int gap_extend = -2;  // cost of each further gap position

  bool valid() const { return match > 0 && mismatch < 0 && gap_open < 0 && gap_extend < 0; }
};

/// Best local alignment score of a vs b (>= 0; 0 when nothing aligns).
int smith_waterman_score(const std::string& a, const std::string& b,
                         const SwParams& params = {});

/// Distance in [0, 1]: 1 - score / (match * min(|a|, |b|)). Identical
/// sequences score the maximum, giving distance 0; unrelated sequences
/// approach 1. This is the SW-G dissimilarity used for clustering/MDS.
double sw_distance(const std::string& a, const std::string& b, const SwParams& params = {});

}  // namespace ppc::apps::swg
