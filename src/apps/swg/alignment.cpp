#include "apps/swg/alignment.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/error.h"

namespace ppc::apps::swg {

int smith_waterman_score(const std::string& a, const std::string& b, const SwParams& params) {
  PPC_REQUIRE(params.valid(), "invalid Smith-Waterman parameters");
  if (a.empty() || b.empty()) return 0;

  // Gotoh recurrences, two rows of three matrices:
  //   H = best score ending at (i, j) with a match/mismatch,
  //   E = best ending with a gap in `a` (horizontal), F = gap in `b`.
  const std::size_t m = b.size();
  constexpr int kNegInf = std::numeric_limits<int>::min() / 4;
  std::vector<int> h_prev(m + 1, 0), h_cur(m + 1, 0);
  std::vector<int> f_prev(m + 1, kNegInf), f_cur(m + 1, kNegInf);

  int best = 0;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    h_cur[0] = 0;
    f_cur[0] = kNegInf;
    int e = kNegInf;  // E for the current row, carried left to right
    for (std::size_t j = 1; j <= m; ++j) {
      e = std::max(h_cur[j - 1] + params.gap_open, e + params.gap_extend);
      f_cur[j] = std::max(h_prev[j] + params.gap_open, f_prev[j] + params.gap_extend);
      const int diag =
          h_prev[j - 1] + (a[i - 1] == b[j - 1] ? params.match : params.mismatch);
      h_cur[j] = std::max({0, diag, e, f_cur[j]});
      best = std::max(best, h_cur[j]);
    }
    std::swap(h_prev, h_cur);
    std::swap(f_prev, f_cur);
  }
  return best;
}

double sw_distance(const std::string& a, const std::string& b, const SwParams& params) {
  if (a.empty() || b.empty()) return 1.0;
  const double max_score =
      static_cast<double>(params.match) * static_cast<double>(std::min(a.size(), b.size()));
  const double score = smith_waterman_score(a, b, params);
  return std::clamp(1.0 - score / max_score, 0.0, 1.0);
}

}  // namespace ppc::apps::swg
