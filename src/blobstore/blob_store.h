// In-process reproduction of the web-scale object store the paper's Classic
// Cloud framework keeps its data in (Amazon S3 / Azure Blob storage, §2.1.1).
//
// Semantics reproduced:
//  * bucket/key organization with put/get/list/delete over "HTTP";
//  * optional eventual consistency on read-after-write for *new* objects
//    (2010-era S3 US-Standard): a get issued too soon after the put may
//    return not-found, so workers must retry;
//  * transfer and request metering — S3 bills by stored bytes, transferred
//    bytes and request count; these feed Table 4's storage and data-transfer
//    line items;
//  * a latency/bandwidth *timing model* the discrete-event workers sample
//    when deciding how long a download/upload takes. In real-thread mode
//    operations complete immediately (the data is in memory) and the model
//    is ignored.
//
// Thread-safe; time comes from an injected ppc::Clock. Payloads are held as
// shared immutable strings, so get() hands back an aliasing pointer instead
// of copying the object, and the lock is sharded per bucket so concurrent
// workers hitting different buckets never serialize on one global mutex.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/fault_hook.h"
#include "common/rng.h"
#include "common/trace_hook.h"
#include "common/units.h"
#include "storage/storage_backend.h"

namespace ppc::blobstore {

/// Transfer accounting lives in the backend-agnostic storage layer now;
/// re-exported here for the many call sites written against
/// blobstore::TransferMeter.
using storage::TransferMeter;

struct BlobStoreConfig {
  /// Mean per-request latency (HTTP round trip to the storage service).
  Seconds request_latency_mean = 0.08;
  /// Coefficient of variation applied to the request latency.
  double latency_cv = 0.25;
  /// Per-connection sustained throughput.
  Bytes download_bandwidth_per_s = 20.0 * 1024 * 1024;
  Bytes upload_bandwidth_per_s = 10.0 * 1024 * 1024;
  /// Mean delay before a newly put object is readable (0 = strong).
  Seconds read_after_write_lag_mean = 0.0;
  /// 2010-era pricing (S3: ~$0.14-0.15/GB-month, $0.10/GB in, $0.15/GB out,
  /// ~$0.01 per 10k GETs).
  Dollars storage_cost_per_gb_month = 0.14;
  Dollars transfer_in_cost_per_gb = 0.10;
  Dollars transfer_out_cost_per_gb = 0.15;
  Dollars cost_per_10k_requests = 0.01;
};

class BlobStore : public storage::StorageBackend {
 public:
  BlobStore(std::shared_ptr<const ppc::Clock> clock, BlobStoreConfig config = {},
            ppc::Rng rng = ppc::Rng(0xB10B));

  const BlobStoreConfig& config() const { return config_; }

  /// The object-store data plane (§2.1.1's S3 / Azure Blob).
  storage::StorageKind kind() const override { return storage::StorageKind::kObject; }

  /// Installs a fault hook fired on every put/get/list (sites
  /// "blobstore.<bucket>.put" / ".get" / ".list"). A failing get reports
  /// not-found, a failing list reports an empty (lost) response, a failing
  /// or corrupted put is rejected like an S3 Content-MD5 mismatch, and a
  /// corrupted get delivers flipped bytes — detectable against etag().
  /// Non-owning; pass nullptr to clear. The hook must outlive its use.
  void set_fault_hook(ppc::FaultHook* hook) override { hook_.store(hook); }

  /// Installs a trace hook (runtime::Tracer) that gets a span per
  /// put/get/list (sites "blobstore.<bucket>.put" / ".get" / ".list").
  /// Non-owning; nullptr clears. One relaxed atomic load per call when unset.
  void set_tracer(ppc::TraceHook* tracer) override { tracer_.store(tracer); }

  /// Creates a bucket; idempotent.
  void create_bucket(const std::string& bucket) override;

  bool bucket_exists(const std::string& bucket) const override;

  /// Stores an object (creates the bucket implicitly, as our framework's
  /// deployment step would have done). Overwrites are immediately visible;
  /// only brand-new keys suffer the read-after-write lag.
  void put(const std::string& bucket, const std::string& key, std::string data) override;

  /// Stores a *logical* object: no bytes are materialized, only a declared
  /// size. Used by the discrete-event drivers to model multi-GB datasets
  /// (e.g. Table 4's 4096 Cap3 files) without holding them in memory.
  /// Metering, visibility and head/list/remove behave exactly as for real
  /// objects; get() on a logical object returns an empty payload. The etag
  /// is derived from (bucket, key, size) — stable across processes — so
  /// content-addressed caching works for logical datasets too.
  void put_logical(const std::string& bucket, const std::string& key, Bytes size) override;

  /// Fetches the object, or null when absent / not yet visible. The result
  /// aliases the stored payload (zero-copy); it stays valid after overwrite
  /// or removal of the key (immutable snapshot semantics).
  std::shared_ptr<const std::string> get(const std::string& bucket,
                                         const std::string& key) override;

  /// Size of the object in bytes, or nullopt. Metered as a HEAD.
  std::optional<Bytes> head(const std::string& bucket, const std::string& key) override;

  /// True when the object exists and is visible. Metered as a HEAD.
  bool exists(const std::string& bucket, const std::string& key) override;

  /// Content hash (fnv1a64 — our stand-in for the S3 ETag) of the stored
  /// object, or nullopt when absent / not yet visible. Unmetered and immune
  /// to injected faults: it models the checksum the service returned with
  /// the original upload, which readers keep to validate downloads.
  std::optional<std::uint64_t> etag(const std::string& bucket,
                                    const std::string& key) const override;

  /// Removes the object; returns false when absent.
  bool remove(const std::string& bucket, const std::string& key) override;

  /// Keys in the bucket starting with `prefix`, sorted. Lists see all
  /// committed objects (visibility lag applies to reads only).
  std::vector<std::string> list(const std::string& bucket,
                                const std::string& prefix = "") override;

  /// Total bytes currently stored (across buckets).
  Bytes stored_bytes() const override;

  TransferMeter meter() const override;

  /// Request + transfer cost so far; storage cost is charged by the billing
  /// module per month of retention (see billing::CostModel).
  Dollars transfer_and_request_cost() const override;

  storage::StoragePricing pricing() const override {
    storage::StoragePricing p;
    p.storage_cost_per_gb_month = config_.storage_cost_per_gb_month;
    p.transfer_in_cost_per_gb = config_.transfer_in_cost_per_gb;
    p.transfer_out_cost_per_gb = config_.transfer_out_cost_per_gb;
    p.cost_per_10k_requests = config_.cost_per_10k_requests;
    return p;  // no dedicated servers: S3 cost is entirely usage-based
  }

  // -- timing model (used by the simulation drivers) --

  /// Samples the wall time of a GET of `size` bytes.
  Seconds sample_get_time(Bytes size, ppc::Rng& rng) const override;

  /// Samples the wall time of a PUT of `size` bytes.
  Seconds sample_put_time(Bytes size, ppc::Rng& rng) const override;

 private:
  struct Object {
    std::shared_ptr<const std::string> data;  // immutable payload, shared with readers
    Bytes logical_size = 0.0;                 // == data->size() for real objects
    std::uint64_t etag = 0;                   // fnv1a64 of data at put time
    Seconds visible_at = 0.0;
    bool is_new = true;  // false once overwritten (overwrite => visible)
  };

  /// One lock per bucket: workers on different buckets (jobs) proceed in
  /// parallel. Buckets are never destroyed, so a looked-up shared_ptr stays
  /// valid after the registry lock is released.
  struct Bucket {
    mutable std::mutex mu;
    std::map<std::string, Object> objects;
  };

  void put_impl(const std::string& bucket, const std::string& key, std::string data,
                Bytes logical_size, bool is_logical);
  /// get() minus the tracing bracket.
  std::shared_ptr<const std::string> get_impl(const std::string& bucket, const std::string& key);
  std::shared_ptr<Bucket> find_bucket(const std::string& bucket) const;
  std::shared_ptr<Bucket> get_or_create_bucket(const std::string& bucket);

  std::shared_ptr<const ppc::Clock> clock_;
  BlobStoreConfig config_;
  std::atomic<ppc::FaultHook*> hook_{nullptr};
  std::atomic<ppc::TraceHook*> tracer_{nullptr};

  /// Guards the bucket registry only (shared for lookups, exclusive for
  /// bucket creation); per-object state is under each Bucket's mutex.
  mutable std::shared_mutex registry_mu_;
  std::map<std::string, std::shared_ptr<Bucket>> buckets_;

  /// Guards the meter and the visibility-lag RNG (leaf lock).
  mutable std::mutex meter_mu_;
  ppc::Rng rng_;
  TransferMeter meter_;
};

}  // namespace ppc::blobstore
