#include "blobstore/blob_store.h"

#include "common/error.h"
#include "common/string_util.h"

namespace ppc::blobstore {

BlobStore::BlobStore(std::shared_ptr<const ppc::Clock> clock, BlobStoreConfig config, ppc::Rng rng)
    : clock_(std::move(clock)), config_(config), rng_(rng) {
  PPC_REQUIRE(clock_ != nullptr, "BlobStore requires a clock");
  PPC_REQUIRE(config_.request_latency_mean >= 0.0, "latency must be >= 0");
  PPC_REQUIRE(config_.download_bandwidth_per_s > 0.0, "download bandwidth must be positive");
  PPC_REQUIRE(config_.upload_bandwidth_per_s > 0.0, "upload bandwidth must be positive");
}

std::shared_ptr<BlobStore::Bucket> BlobStore::find_bucket(const std::string& bucket) const {
  std::shared_lock lock(registry_mu_);
  auto it = buckets_.find(bucket);
  return it == buckets_.end() ? nullptr : it->second;
}

std::shared_ptr<BlobStore::Bucket> BlobStore::get_or_create_bucket(const std::string& bucket) {
  if (auto existing = find_bucket(bucket)) return existing;
  std::unique_lock lock(registry_mu_);
  auto [it, _] = buckets_.try_emplace(bucket, std::make_shared<Bucket>());
  return it->second;
}

void BlobStore::create_bucket(const std::string& bucket) {
  PPC_REQUIRE(!bucket.empty(), "bucket name must be non-empty");
  get_or_create_bucket(bucket);
}

bool BlobStore::bucket_exists(const std::string& bucket) const {
  return find_bucket(bucket) != nullptr;
}

void BlobStore::put(const std::string& bucket, const std::string& key, std::string data) {
  const auto size = static_cast<Bytes>(data.size());
  put_impl(bucket, key, std::move(data), size, /*is_logical=*/false);
}

void BlobStore::put_logical(const std::string& bucket, const std::string& key, Bytes size) {
  PPC_REQUIRE(size >= 0.0, "logical size must be >= 0");
  put_impl(bucket, key, std::string(), size, /*is_logical=*/true);
}

void BlobStore::put_impl(const std::string& bucket, const std::string& key, std::string data,
                         Bytes logical_size, bool is_logical) {
  PPC_REQUIRE(!bucket.empty() && !key.empty(), "bucket and key must be non-empty");
  ppc::TraceHook* tracer = tracer_.load(std::memory_order_relaxed);
  std::uint64_t span = 0;
  if (tracer != nullptr && tracer->tracing()) {
    span = tracer->op_begin("blobstore." + bucket + ".put", key);
  }
  if (ppc::FaultHook* hook = hook_.load()) {
    ppc::PayloadRef in_flight(&data);
    const ppc::FaultDecision d =
        hook->on_operation("blobstore." + bucket + ".put", key, &in_flight);
    // A corrupted upload is caught by the service's content checksum
    // (Content-MD5) and rejected just like a plain failed request; either
    // way nothing is stored and the caller must retry.
    if (d.fail || d.corrupted) {
      if (span != 0) tracer->op_end(span, /*failed=*/true);
      if (d.fail) throw ppc::Error("injected blobstore put failure: " + bucket + "/" + key);
      throw ppc::Error("blobstore put checksum mismatch (corrupted in flight): " + bucket +
                       "/" + key);
    }
  }
  // Logical objects have no bytes to hash, so their etag is derived from the
  // stable identity (bucket, key, declared size). That keeps the tag
  // deterministic across runs and processes, which content-addressed caching
  // depends on; real payloads keep the content hash.
  std::uint64_t etag = 0;
  if (is_logical) {
    std::string identity = "logical:";
    identity += bucket;
    identity += '\0';
    identity += key;
    identity += '\0';
    identity += std::to_string(static_cast<std::uint64_t>(logical_size));
    etag = ppc::fnv1a64(identity);
  } else {
    etag = ppc::fnv1a64(data);
  }
  auto payload = std::make_shared<const std::string>(std::move(data));
  auto b = get_or_create_bucket(bucket);
  Seconds lag = 0.0;
  {
    std::lock_guard lock(meter_mu_);
    ++meter_.puts;
    meter_.bytes_in += logical_size;
    if (config_.read_after_write_lag_mean > 0.0) {
      lag = rng_.exponential(config_.read_after_write_lag_mean);
    }
  }
  std::lock_guard lock(b->mu);
  auto it = b->objects.find(key);
  if (it == b->objects.end()) {
    Object obj;
    obj.data = std::move(payload);
    obj.logical_size = logical_size;
    obj.etag = etag;
    obj.visible_at = clock_->now() + lag;
    obj.is_new = true;
    b->objects.emplace(key, std::move(obj));
  } else {
    // Overwrite of an existing key: immediately visible (S3 gave
    // read-after-write anomalies on new objects; overwrites were
    // eventually consistent too, but our framework never overwrites, so we
    // keep this simple and visible).
    it->second.data = std::move(payload);
    it->second.logical_size = logical_size;
    it->second.etag = etag;
    it->second.is_new = false;
    it->second.visible_at = clock_->now();
  }
  if (span != 0) tracer->op_end(span, /*failed=*/false);
}

std::shared_ptr<const std::string> BlobStore::get(const std::string& bucket,
                                                  const std::string& key) {
  ppc::TraceHook* tracer = tracer_.load(std::memory_order_relaxed);
  std::uint64_t span = 0;
  if (tracer != nullptr && tracer->tracing()) {
    span = tracer->op_begin("blobstore." + bucket + ".get", key);
  }
  auto result = get_impl(bucket, key);
  if (span != 0) tracer->op_end(span, /*failed=*/result == nullptr);
  return result;
}

std::shared_ptr<const std::string> BlobStore::get_impl(const std::string& bucket,
                                                       const std::string& key) {
  {
    std::lock_guard lock(meter_mu_);
    ++meter_.gets;
  }
  auto b = find_bucket(bucket);
  if (b == nullptr) return nullptr;
  std::shared_ptr<const std::string> data;
  Bytes size = 0.0;
  {
    std::lock_guard lock(b->mu);
    auto it = b->objects.find(key);
    if (it == b->objects.end()) return nullptr;
    if (it->second.visible_at > clock_->now()) return nullptr;  // not yet visible
    data = it->second.data;
    size = it->second.logical_size;
  }
  {
    std::lock_guard lock(meter_mu_);
    meter_.bytes_out += size;
  }
  if (ppc::FaultHook* hook = hook_.load()) {
    ppc::PayloadRef delivered(data.get());
    const ppc::FaultDecision d =
        hook->on_operation("blobstore." + bucket + ".get", key, &delivered);
    if (d.fail) return nullptr;  // response lost in flight
    if (d.corrupted) {
      // The stored object is intact; only this delivery carries flipped
      // bytes. Readers detect it by checking against etag().
      return std::make_shared<const std::string>(delivered.take());
    }
  }
  return data;
}

std::optional<std::uint64_t> BlobStore::etag(const std::string& bucket,
                                             const std::string& key) const {
  auto b = find_bucket(bucket);
  if (b == nullptr) return std::nullopt;
  std::lock_guard lock(b->mu);
  auto it = b->objects.find(key);
  if (it == b->objects.end() || it->second.visible_at > clock_->now()) return std::nullopt;
  return it->second.etag;
}

std::optional<Bytes> BlobStore::head(const std::string& bucket, const std::string& key) {
  {
    std::lock_guard lock(meter_mu_);
    // Metadata probe, not a download: billed as a request but kept distinct
    // from gets so cache-validation traffic is visible in the meter.
    ++meter_.heads;
  }
  auto b = find_bucket(bucket);
  if (b == nullptr) return std::nullopt;
  std::lock_guard lock(b->mu);
  auto it = b->objects.find(key);
  if (it == b->objects.end() || it->second.visible_at > clock_->now()) return std::nullopt;
  return it->second.logical_size;
}

bool BlobStore::exists(const std::string& bucket, const std::string& key) {
  return head(bucket, key).has_value();
}

bool BlobStore::remove(const std::string& bucket, const std::string& key) {
  {
    std::lock_guard lock(meter_mu_);
    ++meter_.deletes;
  }
  auto b = find_bucket(bucket);
  if (b == nullptr) return false;
  std::lock_guard lock(b->mu);
  return b->objects.erase(key) > 0;
}

std::vector<std::string> BlobStore::list(const std::string& bucket, const std::string& prefix) {
  ppc::TraceHook* tracer = tracer_.load(std::memory_order_relaxed);
  std::uint64_t span = 0;
  if (tracer != nullptr && tracer->tracing()) {
    span = tracer->op_begin("blobstore." + bucket + ".list", prefix);
  }
  {
    std::lock_guard lock(meter_mu_);
    ++meter_.lists;
  }
  if (ppc::FaultHook* hook = hook_.load()) {
    const ppc::FaultDecision d =
        hook->on_operation("blobstore." + bucket + ".list", prefix, nullptr);
    if (d.fail) {
      if (span != 0) tracer->op_end(span, /*failed=*/true);
      return {};  // lost response: an empty page, caller re-lists
    }
  }
  std::vector<std::string> keys;
  auto b = find_bucket(bucket);
  if (b == nullptr) {
    if (span != 0) tracer->op_end(span, /*failed=*/false);
    return keys;
  }
  std::lock_guard lock(b->mu);
  for (const auto& [key, _] : b->objects) {
    if (prefix.empty() || ppc::starts_with(key, prefix)) keys.push_back(key);
  }
  if (span != 0) tracer->op_end(span, /*failed=*/false);
  return keys;  // std::map iteration => already sorted
}

Bytes BlobStore::stored_bytes() const {
  std::vector<std::shared_ptr<Bucket>> all;
  {
    std::shared_lock lock(registry_mu_);
    all.reserve(buckets_.size());
    for (const auto& [_, b] : buckets_) all.push_back(b);
  }
  Bytes total = 0.0;
  for (const auto& b : all) {
    std::lock_guard lock(b->mu);
    for (const auto& [_, obj] : b->objects) total += obj.logical_size;
  }
  return total;
}

TransferMeter BlobStore::meter() const {
  std::lock_guard lock(meter_mu_);
  return meter_;
}

Dollars BlobStore::transfer_and_request_cost() const {
  std::lock_guard lock(meter_mu_);
  const double gb_in = to_gigabytes(meter_.bytes_in);
  const double gb_out = to_gigabytes(meter_.bytes_out);
  return gb_in * config_.transfer_in_cost_per_gb + gb_out * config_.transfer_out_cost_per_gb +
         static_cast<double>(meter_.requests()) / 10000.0 * config_.cost_per_10k_requests;
}

Seconds BlobStore::sample_get_time(Bytes size, ppc::Rng& rng) const {
  PPC_REQUIRE(size >= 0.0, "size must be >= 0");
  const Seconds latency = rng.jittered(config_.request_latency_mean, config_.latency_cv);
  return latency + size / config_.download_bandwidth_per_s;
}

Seconds BlobStore::sample_put_time(Bytes size, ppc::Rng& rng) const {
  PPC_REQUIRE(size >= 0.0, "size must be >= 0");
  const Seconds latency = rng.jittered(config_.request_latency_mean, config_.latency_cv);
  return latency + size / config_.upload_bandwidth_per_s;
}

}  // namespace ppc::blobstore
