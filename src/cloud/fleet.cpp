#include "cloud/fleet.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace ppc::cloud {

Seconds Instance::uptime(Seconds now) const {
  const Seconds end = running() ? now : terminate_time;
  return std::max(0.0, end - launch_time);
}

int Instance::billed_hours(Seconds now) const {
  const Seconds up = uptime(now);
  return std::max(1, static_cast<int>(std::ceil(up / 3600.0)));
}

Fleet::Fleet(std::shared_ptr<const ppc::Clock> clock) : clock_(std::move(clock)) {
  PPC_REQUIRE(clock_ != nullptr, "Fleet requires a clock");
}

std::vector<std::string> Fleet::launch(const InstanceType& type, int count) {
  PPC_REQUIRE(count >= 1, "launch count must be >= 1");
  std::vector<std::string> ids;
  ids.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    Instance inst;
    inst.id = type.name + "#" + std::to_string(next_id_++);
    inst.type = type;
    inst.launch_time = clock_->now();
    index_.emplace(inst.id, instances_.size());
    instances_.push_back(inst);
    ids.push_back(instances_.back().id);
  }
  return ids;
}

void Fleet::terminate(const std::string& id) {
  Instance& inst = find(id);
  if (!inst.running()) {
    // A revocation racing a scale-in decision lands here; detect, meter,
    // keep going — the first termination's billing stands.
    ++stale_terminates_;
    return;
  }
  inst.terminate_time = clock_->now();
}

void Fleet::terminate_all() {
  const Seconds now = clock_->now();
  for (Instance& inst : instances_) {
    if (inst.running()) inst.terminate_time = now;
  }
}

std::size_t Fleet::running_count() const {
  return static_cast<std::size_t>(
      std::count_if(instances_.begin(), instances_.end(),
                    [](const Instance& i) { return i.running(); }));
}

std::size_t Fleet::running_spot_count() const {
  return static_cast<std::size_t>(
      std::count_if(instances_.begin(), instances_.end(),
                    [](const Instance& i) { return i.running() && i.type.spot; }));
}

const Instance& Fleet::info(const std::string& id) const {
  const auto it = index_.find(id);
  PPC_REQUIRE(it != index_.end(), "unknown instance: " + id);
  return instances_[it->second];
}

int Fleet::total_cores() const {
  int cores = 0;
  for (const Instance& inst : instances_) {
    if (inst.running()) cores += inst.type.cpu_cores;
  }
  return cores;
}

Dollars Fleet::hourly_billed_cost(Seconds now) const {
  Dollars total = 0.0;
  for (const Instance& inst : instances_) {
    total += inst.billed_hours(now) * inst.type.cost_per_hour;
  }
  return total;
}

Dollars Fleet::amortized_cost(Seconds now) const {
  Dollars total = 0.0;
  for (const Instance& inst : instances_) {
    total += inst.uptime(now) / 3600.0 * inst.type.cost_per_hour;
  }
  return total;
}

Fleet::CostBreakdown Fleet::hourly_billed_breakdown(Seconds now) const {
  CostBreakdown b;
  for (const Instance& inst : instances_) {
    const Dollars billed = inst.billed_hours(now) * inst.type.cost_per_hour;
    (inst.type.spot ? b.spot : b.on_demand) += billed;
    b.on_demand_equivalent += inst.billed_hours(now) * inst.type.undiscounted_rate();
  }
  return b;
}

Instance& Fleet::find(const std::string& id) {
  const auto it = index_.find(id);
  PPC_REQUIRE(it != index_.end(), "unknown instance: " + id);
  return instances_[it->second];
}

}  // namespace ppc::cloud
