#include "cloud/elastic_fleet.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace ppc::cloud {

const char* to_string(InstanceState s) {
  switch (s) {
    case InstanceState::kBooting:
      return "booting";
    case InstanceState::kRunning:
      return "running";
    case InstanceState::kDraining:
      return "draining";
    case InstanceState::kTerminated:
      return "terminated";
  }
  return "?";
}

ElasticFleet::ElasticFleet(std::shared_ptr<const ppc::Clock> clock)
    : clock_(clock), fleet_(std::move(clock)) {}

std::vector<std::string> ElasticFleet::scale_out(const InstanceType& type, int count,
                                                 bool spot_market, double spot_discount) {
  const InstanceType& launched =
      spot_market ? spot_variant(type, spot_discount) : type;
  const std::vector<std::string> ids = fleet_.launch(launched, count);
  for (const std::string& id : ids) {
    ElasticInstance inst;
    inst.id = id;
    inst.spot = spot_market;
    index_.emplace(id, instances_.size());
    instances_.push_back(std::move(inst));
  }
  ++scale_out_events_;
  return ids;
}

void ElasticFleet::mark_running(const std::string& id) {
  ElasticInstance& inst = find(id);
  PPC_REQUIRE(inst.state == InstanceState::kBooting,
              "mark_running on a non-booting instance: " + id);
  inst.state = InstanceState::kRunning;
}

void ElasticFleet::begin_drain(const std::string& id) {
  ElasticInstance& inst = find(id);
  PPC_REQUIRE(inst.state == InstanceState::kRunning,
              "begin_drain on a non-running instance: " + id);
  inst.state = InstanceState::kDraining;
  inst.drain_started = clock_->now();
  ++scale_in_events_;
}

void ElasticFleet::finish_drain(const std::string& id) {
  ElasticInstance& inst = find(id);
  PPC_REQUIRE(inst.state == InstanceState::kDraining,
              "finish_drain on a non-draining instance: " + id);
  fleet_.terminate(id);
  inst.state = InstanceState::kTerminated;
  inst.revoke_deadline = -1.0;
  total_drain_seconds_ += clock_->now() - inst.drain_started;
  ++drains_completed_;
}

Seconds ElasticFleet::revoke(const std::string& id, Seconds notice) {
  ElasticInstance& inst = find(id);
  PPC_REQUIRE(inst.spot, "revoke on a non-spot instance: " + id);
  const Seconds now = clock_->now();
  if (inst.state == InstanceState::kTerminated) return now;
  ++revocations_;
  inst.revoked = true;
  if (notice <= 0.0) {
    hard_kill(id);
    return now;
  }
  if (inst.state != InstanceState::kDraining) {
    // A revocation landing on an instance already draining for scale-in
    // just adds the deadline; it is not a second scale-in event.
    inst.state = InstanceState::kDraining;
    inst.drain_started = now;
  }
  inst.revoke_deadline = now + notice;
  return inst.revoke_deadline;
}

void ElasticFleet::hard_kill(const std::string& id) {
  ElasticInstance& inst = find(id);
  if (inst.state == InstanceState::kTerminated) return;
  fleet_.terminate(id);
  inst.state = InstanceState::kTerminated;
  inst.revoke_deadline = -1.0;
  ++hard_kills_;
}

void ElasticFleet::terminate_all() {
  for (ElasticInstance& inst : instances_) {
    if (inst.state == InstanceState::kTerminated) continue;
    fleet_.terminate(inst.id);
    inst.state = InstanceState::kTerminated;
    inst.revoke_deadline = -1.0;
  }
}

const ElasticInstance& ElasticFleet::info(const std::string& id) const {
  const auto it = index_.find(id);
  PPC_REQUIRE(it != index_.end(), "unknown elastic instance: " + id);
  return instances_[it->second];
}

Seconds ElasticFleet::seconds_to_hour_boundary(const std::string& id, Seconds now) const {
  const Seconds up = fleet_.info(id).uptime(now);
  const Seconds into_hour = std::fmod(up, 3600.0);
  return into_hour == 0.0 ? 0.0 : 3600.0 - into_hour;
}

int ElasticFleet::count_state(InstanceState s) const {
  return static_cast<int>(std::count_if(
      instances_.begin(), instances_.end(),
      [s](const ElasticInstance& i) { return i.state == s; }));
}

int ElasticFleet::active_count() const {
  return static_cast<int>(instances_.size()) - count_state(InstanceState::kTerminated);
}

int ElasticFleet::running_count() const { return count_state(InstanceState::kRunning); }
int ElasticFleet::booting_count() const { return count_state(InstanceState::kBooting); }
int ElasticFleet::draining_count() const { return count_state(InstanceState::kDraining); }

int ElasticFleet::spot_running() const {
  return static_cast<int>(std::count_if(
      instances_.begin(), instances_.end(), [](const ElasticInstance& i) {
        return i.spot && (i.state == InstanceState::kRunning ||
                          i.state == InstanceState::kDraining);
      }));
}

ElasticInstance& ElasticFleet::find(const std::string& id) {
  const auto it = index_.find(id);
  PPC_REQUIRE(it != index_.end(), "unknown elastic instance: " + id);
  return instances_[it->second];
}

}  // namespace ppc::cloud
