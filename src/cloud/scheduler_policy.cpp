#include "cloud/scheduler_policy.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace ppc::cloud {

SchedulerPolicy::SchedulerPolicy(PolicyRequest request) : request_(request) {
  PPC_REQUIRE(request_.t1_seconds > 0.0, "policy needs the job's T1");
  PPC_REQUIRE(request_.efficiency > 0.0 && request_.efficiency <= 1.0,
              "efficiency must be in (0, 1]");
  PPC_REQUIRE(request_.spot_fraction >= 0.0 && request_.spot_fraction <= 1.0,
              "spot_fraction must be in [0, 1]");
  PPC_REQUIRE(request_.max_instances >= 1, "max_instances must be >= 1");
}

FleetPlan SchedulerPolicy::plan(const InstanceType& type) const {
  FleetPlan p;
  p.type = type;
  if (type.memory_per_core_gb() < request_.min_memory_per_core_gb) {
    p.note = "memory";
    return p;
  }

  auto makespan_of = [&](int n) {
    return request_.t1_seconds / (n * type.cpu_cores * request_.efficiency);
  };
  int n = 1;
  if (request_.deadline > 0.0) {
    n = static_cast<int>(std::ceil(
        request_.t1_seconds / (request_.deadline * type.cpu_cores * request_.efficiency)));
    n = std::max(1, n);
    if (n > request_.max_instances) {
      p.note = "deadline";
      p.instances = request_.max_instances;
      p.est_makespan = makespan_of(request_.max_instances);
      return p;
    }
  }
  p.instances = n;
  p.spot_instances = static_cast<int>(std::floor(n * request_.spot_fraction));
  p.est_makespan = makespan_of(n);

  const double hours = std::max(1.0, std::ceil(p.est_makespan / 3600.0));
  const Dollars spot_rate = type.cost_per_hour * (1.0 - request_.spot_discount);
  p.est_cost = hours * (p.on_demand_instances() * type.cost_per_hour +
                        p.spot_instances * spot_rate);
  if (request_.budget >= 0.0 && p.est_cost > request_.budget) {
    p.note = "budget";
    return p;
  }
  p.feasible = true;
  return p;
}

FleetPlan SchedulerPolicy::cheapest(const std::vector<InstanceType>& catalog) const {
  PPC_REQUIRE(!catalog.empty(), "cheapest() needs a catalog");
  FleetPlan best;
  best.note = "no feasible type";
  for (const InstanceType& type : catalog) {
    // Spot capacity comes from the plan's mix, so the catalog holds
    // on-demand types only.
    FleetPlan p = plan(type);
    if (!p.feasible) continue;
    const bool better =
        !best.feasible || p.est_cost < best.est_cost ||
        (p.est_cost == best.est_cost &&
         (p.instances < best.instances ||
          (p.instances == best.instances && p.type.name < best.type.name)));
    if (better) best = p;
  }
  return best;
}

}  // namespace ppc::cloud
