// Deadline-constrained, budget-capped, resource-aware fleet planning.
//
// The Hadoop-scheduling survey's policy families, applied to the paper's
// fleets: given the workload's total sequential work T1 (Equation 1's
// numerator), pick the fleet size and spot-vs-on-demand mix that meets a
// deadline, stays under a budget, and respects per-core memory needs
// (§5.1's "the Azure Small fit BLAST's database; Large did not" concern).
//
// Estimates use the paper's own model: makespan(n) ~ T1 / (n * cores *
// efficiency), cost(n) = ceil(makespan / 1h) whole-hour units at the
// blended on-demand/spot rate — the same hour-unit billing the Fleet
// meters, so plans line up with what a run actually bills. The
// cheapest() sweep over a catalog is the Table 4 extension: "the cheapest
// config meeting deadline D".
#pragma once

#include <string>
#include <vector>

#include "cloud/instance_types.h"
#include "common/units.h"

namespace ppc::cloud {

struct PolicyRequest {
  /// Total sequential work of the job on one core (sum of expected task
  /// times); the planner divides by each candidate type's core count.
  Seconds t1_seconds = 0.0;
  /// Wall deadline; < 0 = none (the minimum fleet wins).
  Seconds deadline = -1.0;
  /// Spend cap in dollars; < 0 = uncapped.
  Dollars budget = -1.0;
  /// Assumed parallel efficiency (Equation 1) of the candidate fleet.
  double efficiency = 0.85;
  /// Resource-aware filter: types with less memory per core are infeasible.
  double min_memory_per_core_gb = 0.0;
  /// Fraction of the fleet to place on the spot market.
  double spot_fraction = 0.0;
  double spot_discount = kDefaultSpotDiscount;
  int max_instances = 256;
};

struct FleetPlan {
  InstanceType type;
  int instances = 0;
  int spot_instances = 0;  // of `instances`
  Seconds est_makespan = 0.0;
  Dollars est_cost = 0.0;  // hour units, spot hours discounted
  bool feasible = false;
  /// Why the plan is infeasible ("deadline", "budget", "memory"); empty
  /// when feasible.
  std::string note;

  int on_demand_instances() const { return instances - spot_instances; }
};

class SchedulerPolicy {
 public:
  explicit SchedulerPolicy(PolicyRequest request);

  const PolicyRequest& request() const { return request_; }

  /// The smallest fleet of `type` meeting the deadline, clamped by the
  /// resource filter and the budget; infeasible plans carry the blocking
  /// constraint in `note`.
  FleetPlan plan(const InstanceType& type) const;

  /// The cheapest feasible plan across `catalog` (ties: fewer instances,
  /// then name). Infeasible when no type qualifies.
  FleetPlan cheapest(const std::vector<InstanceType>& catalog) const;

 private:
  PolicyRequest request_;
};

}  // namespace ppc::cloud
