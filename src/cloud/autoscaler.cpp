#include "cloud/autoscaler.h"

#include <algorithm>

#include "common/error.h"

namespace ppc::cloud {

Autoscaler::Autoscaler(AutoscalerConfig config) : config_(config) {
  PPC_REQUIRE(config_.min_instances >= 1, "min_instances must be >= 1");
  PPC_REQUIRE(config_.max_instances >= config_.min_instances,
              "max_instances must be >= min_instances");
  PPC_REQUIRE(config_.backlog_low >= 0.0 && config_.backlog_high > config_.backlog_low,
              "hysteresis band needs backlog_high > backlog_low >= 0");
  PPC_REQUIRE(config_.step_out >= 1, "step_out must be >= 1");
  PPC_REQUIRE(config_.cooldown >= 0.0 && config_.hour_slack >= 0.0,
              "cooldown and hour_slack must be non-negative");
}

int Autoscaler::budget_clamp(int want, const AutoscaleSignals& s) const {
  if (config_.budget < 0.0 || s.cost_per_instance_hour <= 0.0) return want;
  const Dollars headroom = config_.budget - s.spent;
  if (headroom <= 0.0) return 0;
  const int affordable = static_cast<int>(headroom / s.cost_per_instance_hour);
  return std::min(want, affordable);
}

AutoscaleDecision Autoscaler::decide(const AutoscaleSignals& s) {
  AutoscaleDecision d;
  const int provisioned = s.running_instances + s.pending_instances;

  // Refill below the floor first — lost capacity (a revocation storm) is
  // replaced without waiting out the cooldown; a fleet under min_instances
  // cannot drain its queue. The budget cap still applies.
  if (provisioned < config_.min_instances) {
    const int want = budget_clamp(config_.min_instances - provisioned, s);
    if (want <= 0) {
      d.reason = "budget-capped";
      return d;
    }
    d.delta = want;
    d.reason = "below-min";
    ++scale_out_events_;
    last_event_ = s.now;
    return d;
  }

  if (last_event_ >= 0.0 && s.now - last_event_ < config_.cooldown) {
    d.reason = "cooldown";
    return d;
  }

  const int capacity = provisioned * std::max(1, s.workers_per_instance);
  const double per_worker =
      capacity > 0 ? s.queue_depth / capacity : s.queue_depth;

  if (per_worker > config_.backlog_high && provisioned < config_.max_instances) {
    const int want =
        budget_clamp(std::min(config_.step_out, config_.max_instances - provisioned), s);
    if (want <= 0) {
      d.reason = "budget-capped";
      return d;
    }
    d.delta = want;
    d.reason = "scale-out";
    ++scale_out_events_;
    last_event_ = s.now;
    return d;
  }

  if (per_worker < config_.backlog_low && provisioned > config_.min_instances &&
      s.idle_workers > 0.0) {
    d.delta = -1;
    d.reason = "scale-in";
    ++scale_in_events_;
    last_event_ = s.now;
    return d;
  }

  return d;
}

}  // namespace ppc::cloud
