// Instance-type catalogs reproducing Table 1 (Amazon EC2) and Table 2
// (Windows Azure) of the paper, plus the bare-metal clusters named in the
// scalability sections (§4.2, §5.2, §6.2).
//
// Clock rates follow the paper's text: EC2 compute unit ≈ 1.0-1.2 GHz; the
// paper's stated actual clocks are ~2.0 GHz (L, XL), ~2.5 GHz (HCXL),
// ~3.25 GHz (HM4XL); Azure cores are "speculated ... approximately 1.5 GHz
// to 1.7 GHz" but §2.1.2 observes 8 Azure Small ≈ 1 HCXL (20 compute units),
// so we give Azure an *effective* per-core clock of 2.5 GHz for work-rate
// purposes, matching that observation.
//
// Memory bandwidth is not in the paper; we assign 2010-plausible per-socket
// figures chosen so that bandwidth *per busy core* reproduces the GTM
// ordering of §6.2 (Azure Small best, EC2 Large > HCXL ≈ XL, 16-core Dryad
// nodes worst).
#pragma once

#include <string>
#include <vector>

#include "common/units.h"

namespace ppc::cloud {

enum class Provider { kAmazonEC2, kWindowsAzure, kBareMetal };
enum class Platform { kLinux, kWindows };

std::string to_string(Provider p);
std::string to_string(Platform p);

struct InstanceType {
  std::string name;  // catalog key, e.g. "EC2-HCXL"
  Provider provider = Provider::kAmazonEC2;
  Platform platform = Platform::kLinux;
  int cpu_cores = 1;          // "actual CPU cores" column of Table 1
  double clock_ghz = 2.0;     // effective per-core clock for work-rate math
  double memory_gb = 1.0;
  Dollars cost_per_hour = 0.0;
  int ec2_compute_units = 0;  // Table 1 column; 0 for Azure / bare metal
  bool is_64bit = true;
  double memory_bandwidth_gbps = 6.4;  // per instance, shared by its cores
  /// Spot/preemptible market instance: same hardware at a discounted
  /// `cost_per_hour`, revocable by the provider at any time (the elastic
  /// fleet delivers revocations with a short notice window).
  bool spot = false;
  /// The on-demand rate the spot price was discounted from; 0 unless `spot`.
  Dollars on_demand_cost_per_hour = 0.0;

  /// Memory per core in GB — the quantity §5.1/§6 reason about.
  double memory_per_core_gb() const { return memory_gb / cpu_cores; }

  /// Memory bandwidth available per busy core when `busy` cores are active.
  double bandwidth_per_busy_core(int busy) const;

  /// The rate an on-demand instance of this hardware bills at — the
  /// counterfactual side of the spot-savings line item.
  Dollars undiscounted_rate() const {
    return spot ? on_demand_cost_per_hour : cost_per_hour;
  }
};

// --- Table 1: selected EC2 instance types ---
const InstanceType& ec2_small();   // 32-bit only; excluded from the studies
const InstanceType& ec2_large();   // L : 7.5 GB, 4 ECU, 2 x ~2 GHz, $0.34/h
const InstanceType& ec2_xlarge();  // XL: 15 GB, 8 ECU, 4 x ~2 GHz, $0.68/h
const InstanceType& ec2_hcxl();    // HCXL: 7 GB, 20 ECU, 8 x ~2.5 GHz, $0.68/h
const InstanceType& ec2_hm4xl();   // HM4XL: 68.4 GB, 26 ECU, 8 x ~3.25 GHz, $2.00/h

// --- Table 2: Azure instance types ---
const InstanceType& azure_small();   // 1 core, 1.7 GB, $0.12/h
const InstanceType& azure_medium();  // 2 cores, 3.5 GB, $0.24/h
const InstanceType& azure_large();   // 4 cores, 7 GB, $0.48/h
const InstanceType& azure_xlarge();  // 8 cores, 15 GB, $0.96/h

// --- Bare-metal clusters used for the Hadoop / DryadLINQ baselines ---
/// §4.2: 32 node x 8 core (2.5 GHz), 16 GB/node (Cap3 Hadoop + Dryad).
const InstanceType& bare_metal_cap3_node();
/// §5.2: iDataplex, 2 x 4-core Xeon E5410 2.33 GHz, 16 GB (Hadoop BLAST).
const InstanceType& bare_metal_idataplex_node();
/// §5.2: Windows HPC, 16 core AMD Opteron 2.3 GHz, 16 GB (Dryad BLAST/GTM).
const InstanceType& bare_metal_hpcs_node();
/// §6.2: 24 core Intel Xeon 2.4 GHz, 48 GB, configured to use 8 cores
/// (Hadoop GTM).
const InstanceType& bare_metal_gtm_hadoop_node();
/// §4.3: the owned cluster of the cost comparison — 32 node x 24 core,
/// 48 GB/node, Infiniband.
const InstanceType& bare_metal_cost_cluster_node();

/// All Table 1 rows (the four 64-bit study types).
std::vector<InstanceType> ec2_catalog();

/// All Table 2 rows.
std::vector<InstanceType> azure_catalog();

/// Looks up any catalog type by name; throws ppc::InvalidArgument if absent.
const InstanceType& find_type(const std::string& name);

/// Default spot discount: spot capacity clears at ~30% of the on-demand
/// rate (the historical EC2 spot-market average for steady bids).
inline constexpr double kDefaultSpotDiscount = 0.7;

/// The spot-market variant of `on_demand`: identical hardware, name suffixed
/// "-spot", `spot` set, billed at (1 - discount) x the on-demand rate.
/// Throws for bare-metal types (no spot market) or discounts outside [0, 1).
InstanceType spot_variant(const InstanceType& on_demand,
                          double discount = kDefaultSpotDiscount);

}  // namespace ppc::cloud
