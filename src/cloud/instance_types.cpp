#include "cloud/instance_types.h"

#include <algorithm>

#include "common/error.h"

namespace ppc::cloud {

std::string to_string(Provider p) {
  switch (p) {
    case Provider::kAmazonEC2: return "AmazonEC2";
    case Provider::kWindowsAzure: return "WindowsAzure";
    case Provider::kBareMetal: return "BareMetal";
  }
  return "?";
}

std::string to_string(Platform p) {
  return p == Platform::kLinux ? "Linux" : "Windows";
}

double InstanceType::bandwidth_per_busy_core(int busy) const {
  PPC_REQUIRE(busy >= 1 && busy <= cpu_cores, "busy core count out of range");
  return memory_bandwidth_gbps / static_cast<double>(busy);
}

namespace {
InstanceType make(std::string name, Provider provider, Platform platform, int cores,
                  double clock_ghz, double memory_gb, Dollars cost_per_hour, int ecu,
                  bool is_64bit, double bandwidth_gbps) {
  InstanceType t;
  t.name = std::move(name);
  t.provider = provider;
  t.platform = platform;
  t.cpu_cores = cores;
  t.clock_ghz = clock_ghz;
  t.memory_gb = memory_gb;
  t.cost_per_hour = cost_per_hour;
  t.ec2_compute_units = ecu;
  t.is_64bit = is_64bit;
  t.memory_bandwidth_gbps = bandwidth_gbps;
  return t;
}
}  // namespace

// Table 1 rows. Clock rates are the paper's "(~N Ghz)" annotations; memory
// bandwidth rises with the platform generation (HM4XL uses the newest
// Nehalem-class parts, hence the big jump).
const InstanceType& ec2_small() {
  static const InstanceType t = make("EC2-Small", Provider::kAmazonEC2, Platform::kLinux, 1, 1.1,
                                     1.7, 0.085, 1, /*is_64bit=*/false, 3.2);
  return t;
}

const InstanceType& ec2_large() {
  static const InstanceType t = make("EC2-L", Provider::kAmazonEC2, Platform::kLinux, 2, 2.0, 7.5,
                                     0.34, 4, true, 6.4);
  return t;
}

const InstanceType& ec2_xlarge() {
  static const InstanceType t = make("EC2-XL", Provider::kAmazonEC2, Platform::kLinux, 4, 2.0,
                                     15.0, 0.68, 8, true, 6.4);
  return t;
}

const InstanceType& ec2_hcxl() {
  static const InstanceType t = make("EC2-HCXL", Provider::kAmazonEC2, Platform::kLinux, 8, 2.5,
                                     7.0, 0.68, 20, true, 12.8);
  return t;
}

const InstanceType& ec2_hm4xl() {
  static const InstanceType t = make("EC2-HM4XL", Provider::kAmazonEC2, Platform::kLinux, 8, 3.25,
                                     68.4, 2.00, 26, true, 25.6);
  return t;
}

// Table 2 rows. Effective per-core clock 2.5 GHz per the §2.1.2 observation
// that 8 Azure Small ≈ 1 HCXL; a single core per memory bus gives Azure
// Small the best bandwidth-per-core, which §6.2 observes for GTM.
const InstanceType& azure_small() {
  static const InstanceType t = make("Azure-Small", Provider::kWindowsAzure, Platform::kWindows, 1,
                                     2.5, 1.7, 0.12, 0, true, 4.0);
  return t;
}

const InstanceType& azure_medium() {
  static const InstanceType t = make("Azure-Medium", Provider::kWindowsAzure, Platform::kWindows,
                                     2, 2.5, 3.5, 0.24, 0, true, 6.4);
  return t;
}

const InstanceType& azure_large() {
  static const InstanceType t = make("Azure-Large", Provider::kWindowsAzure, Platform::kWindows, 4,
                                     2.5, 7.0, 0.48, 0, true, 10.0);
  return t;
}

const InstanceType& azure_xlarge() {
  static const InstanceType t = make("Azure-XL", Provider::kWindowsAzure, Platform::kWindows, 8,
                                     2.5, 15.0, 0.96, 0, true, 12.8);
  return t;
}

// Bare-metal nodes of the Hadoop / DryadLINQ baselines.
const InstanceType& bare_metal_cap3_node() {
  static const InstanceType t = make("BM-Cap3-8core", Provider::kBareMetal, Platform::kLinux, 8,
                                     2.5, 16.0, 0.0, 0, true, 12.8);
  return t;
}

const InstanceType& bare_metal_idataplex_node() {
  static const InstanceType t = make("BM-iDataplex", Provider::kBareMetal, Platform::kLinux, 8,
                                     2.33, 16.0, 0.0, 0, true, 12.8);
  return t;
}

const InstanceType& bare_metal_hpcs_node() {
  static const InstanceType t = make("BM-HPCS-16core", Provider::kBareMetal, Platform::kWindows,
                                     16, 2.3, 16.0, 0.0, 0, true, 12.8);
  return t;
}

const InstanceType& bare_metal_gtm_hadoop_node() {
  // 24-core node "configured to use only 8 cores": we expose the 8 usable
  // cores but keep the full node's bandwidth, which is what actually happens
  // when 8 of 24 cores run — each busy core sees a generous share.
  static const InstanceType t = make("BM-GTM-Hadoop", Provider::kBareMetal, Platform::kLinux, 8,
                                     2.4, 48.0, 0.0, 0, true, 19.2);
  return t;
}

const InstanceType& bare_metal_cost_cluster_node() {
  static const InstanceType t = make("BM-CostCluster", Provider::kBareMetal, Platform::kLinux, 24,
                                     2.5, 48.0, 0.0, 0, true, 25.6);
  return t;
}

std::vector<InstanceType> ec2_catalog() {
  return {ec2_large(), ec2_xlarge(), ec2_hcxl(), ec2_hm4xl()};
}

std::vector<InstanceType> azure_catalog() {
  return {azure_small(), azure_medium(), azure_large(), azure_xlarge()};
}

InstanceType spot_variant(const InstanceType& on_demand, double discount) {
  PPC_REQUIRE(!on_demand.spot, "already a spot variant: " + on_demand.name);
  PPC_REQUIRE(on_demand.provider != Provider::kBareMetal,
              "no spot market for bare metal: " + on_demand.name);
  PPC_REQUIRE(discount >= 0.0 && discount < 1.0, "spot discount must be in [0, 1)");
  InstanceType t = on_demand;
  t.name += "-spot";
  t.spot = true;
  t.on_demand_cost_per_hour = on_demand.cost_per_hour;
  t.cost_per_hour = on_demand.cost_per_hour * (1.0 - discount);
  return t;
}

const InstanceType& find_type(const std::string& name) {
  static const std::vector<const InstanceType*> all = {
      &ec2_small(),
      &ec2_large(),
      &ec2_xlarge(),
      &ec2_hcxl(),
      &ec2_hm4xl(),
      &azure_small(),
      &azure_medium(),
      &azure_large(),
      &azure_xlarge(),
      &bare_metal_cap3_node(),
      &bare_metal_idataplex_node(),
      &bare_metal_hpcs_node(),
      &bare_metal_gtm_hadoop_node(),
      &bare_metal_cost_cluster_node(),
  };
  const auto it = std::find_if(all.begin(), all.end(),
                               [&name](const InstanceType* t) { return t->name == name; });
  PPC_REQUIRE(it != all.end(), "unknown instance type: " + name);
  return **it;
}

}  // namespace ppc::cloud
