// Hysteresis-and-cooldown autoscaling decisions for an elastic fleet.
//
// The Autoscaler is a pure decision object: the driver (DES or real-thread)
// feeds it the Monitor's continuous signals — visible queue depth, idle
// workers against that backlog, provisioned instance counts, spend so far —
// and it answers "launch N", "drain one", or "hold". It never touches the
// fleet itself, which keeps every decision unit-testable and the whole loop
// deterministic under the simulation clock.
//
// Stability comes from three guards:
//   * hysteresis — scale-out above `backlog_high` tasks per provisioned
//     worker, scale-in only below `backlog_low` (a band, not a line, so the
//     fleet cannot oscillate around a single threshold);
//   * cooldown — at most one scale event per `cooldown` seconds, so the
//     depth transient caused by the previous event settles before the next
//     reading is trusted;
//   * a budget cap — a scale-out is clamped so the committed spend (dollars
//     billed so far plus one instance-hour per new instance) never exceeds
//     `budget`.
// The one exception is the min-instances floor: a fleet knocked below
// `min_instances` (a revocation storm) is refilled immediately — cooldown
// does not apply to replacing lost capacity, only the budget cap does.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.h"

namespace ppc::cloud {

struct AutoscalerConfig {
  int min_instances = 1;
  int max_instances = 8;
  /// Scale out when visible backlog per provisioned worker exceeds this.
  double backlog_high = 8.0;
  /// Scale in only when it falls below this (hysteresis band with
  /// backlog_high) AND workers are idle.
  double backlog_low = 1.0;
  /// Instances added per scale-out decision.
  int step_out = 2;
  /// Minimum seconds between scale events (except min-floor refills).
  Seconds cooldown = 120.0;
  /// Scale-in eligibility window: an instance is drained only within this
  /// many seconds of its next billing-hour boundary (enforced by the
  /// driver, which knows each instance's launch time).
  Seconds hour_slack = 60.0;
  /// Hard spend cap in dollars; < 0 = uncapped. Scale-outs (including
  /// min-floor refills) are clamped so spend-so-far plus one instance-hour
  /// per new instance stays within it.
  Dollars budget = -1.0;
};

/// One reading of the signals decide() consumes. `pending_instances` are
/// launched-but-booting; draining instances count in neither.
struct AutoscaleSignals {
  Seconds now = 0.0;
  double queue_depth = 0.0;  // visible backlog (queue.tasks.depth)
  double inflight = 0.0;
  int running_instances = 0;
  int pending_instances = 0;
  int workers_per_instance = 1;
  /// Workers polling but idle while the backlog is visible — the Monitor's
  /// workers.idle_with_backlog signal.
  double idle_workers = 0.0;
  Dollars spent = 0.0;  // hour-unit bill so far
  Dollars cost_per_instance_hour = 0.0;  // rate of the next instance
};

struct AutoscaleDecision {
  /// > 0: launch this many; < 0: gracefully drain one; 0: hold.
  int delta = 0;
  /// "scale-out", "scale-in", "below-min", "hold", "cooldown",
  /// "budget-capped".
  const char* reason = "hold";
};

class Autoscaler {
 public:
  explicit Autoscaler(AutoscalerConfig config);

  const AutoscalerConfig& config() const { return config_; }

  /// The decision for one reading. Invariants (property-tested):
  ///   * never scales in while backlog per worker >= backlog_low;
  ///   * never scales the provisioned count outside [min, max];
  ///   * never commits spend past the budget cap;
  ///   * non-refill events are at least `cooldown` apart.
  AutoscaleDecision decide(const AutoscaleSignals& signals);

  std::int64_t scale_out_events() const { return scale_out_events_; }
  std::int64_t scale_in_events() const { return scale_in_events_; }
  std::int64_t scale_events() const { return scale_out_events_ + scale_in_events_; }

 private:
  int budget_clamp(int want, const AutoscaleSignals& s) const;

  AutoscalerConfig config_;
  Seconds last_event_ = -1.0;  // < 0 until the first event
  std::int64_t scale_out_events_ = 0;
  std::int64_t scale_in_events_ = 0;
};

}  // namespace ppc::cloud
