// An elastic fleet: instance lifecycle states, graceful drains, and spot
// revocations layered over the hourly-billed cloud::Fleet.
//
// The paper prices statically provisioned fleets (§3, Table 4); a
// production service scales mid-job and survives preemption. ElasticFleet
// tracks the per-instance state machine that makes that safe:
//
//            scale_out          mark_running
//   (none) ------------> kBooting ----------> kRunning
//                            |                    | begin_drain, or
//                  hard_kill |                    | revoke(notice)
//                            v                    v
//                      kTerminated <-------- kDraining
//                            ^  finish_drain     |
//                            +--------------------+
//                               hard_kill (revocation notice expired)
//
// A *graceful drain* (scale-in, or a notice-respecting spot revocation) is:
// stop polling -> flush buffered acks -> finish the in-flight task ->
// terminate; the driver calls finish_drain() once the instance's last
// worker has retired, so no task is silently lost. A *hard kill* (notice
// expired, or a no-notice revocation) terminates immediately: in-flight
// work, prefetched deliveries, and buffered acks die with the instance and
// queue redelivery + idempotent re-execution absorb the loss.
//
// Billing rides the underlying Fleet unchanged: spot instances carry their
// discounted rate in their InstanceType (see spot_variant), so
// hourly_billed_breakdown() yields the Table 4 spot line items directly.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cloud/fleet.h"
#include "cloud/instance_types.h"
#include "common/clock.h"

namespace ppc::cloud {

namespace sites {
/// FaultInjector site the elastic drivers fire once per running spot
/// instance per autoscale tick (key = instance id). Arm it with
/// FaultPlan::revoke_spot rules to script single kills or correlated
/// revocation storms.
inline constexpr const char* kSpotRevoke = "cloud.fleet.revoke_spot";
}  // namespace sites

enum class InstanceState { kBooting, kRunning, kDraining, kTerminated };

const char* to_string(InstanceState s);

struct ElasticInstance {
  std::string id;
  bool spot = false;
  InstanceState state = InstanceState::kBooting;
  Seconds drain_started = -1.0;  // >= 0 once draining
  /// Hard-kill time of a live revocation notice; < 0 otherwise.
  Seconds revoke_deadline = -1.0;
  bool revoked = false;
};

class ElasticFleet {
 public:
  explicit ElasticFleet(std::shared_ptr<const ppc::Clock> clock);

  /// Launches `count` instances of `type` (its spot variant when
  /// `spot_market`) in kBooting; one scale-out event. Returns the ids.
  std::vector<std::string> scale_out(const InstanceType& type, int count, bool spot_market,
                                     double spot_discount = kDefaultSpotDiscount);

  /// Boot finished; the instance's workers may start polling.
  void mark_running(const std::string& id);

  /// Starts a graceful scale-in drain; one scale-in event.
  void begin_drain(const std::string& id);

  /// The instance's last worker retired: terminate and meter the drain.
  void finish_drain(const std::string& id);

  /// Spot revocation with a notice window: the instance enters kDraining
  /// (revoked) and must be gone by the returned deadline — the caller
  /// hard-kills it then unless the drain finished first. notice <= 0 is an
  /// immediate hard kill. Spot instances only.
  Seconds revoke(const std::string& id, Seconds notice);

  /// Terminates immediately (notice expired / no notice): whatever the
  /// instance held is lost. No-op when already terminated.
  void hard_kill(const std::string& id);

  /// Terminates everything still up (end of run).
  void terminate_all();

  const ElasticInstance& info(const std::string& id) const;
  InstanceState state(const std::string& id) const { return info(id).state; }

  /// Seconds until the instance's next billing-hour boundary at `now` —
  /// the scale-in eligibility input (drain only within hour_slack of it).
  Seconds seconds_to_hour_boundary(const std::string& id, Seconds now) const;

  // Gauges for the Monitor probes.
  int active_count() const;  // booting + running + draining
  int running_count() const;
  int booting_count() const;
  int draining_count() const;
  /// Spot instances still up (running or draining) — fleet.spot_running.
  int spot_running() const;

  // Meters.
  std::int64_t scale_out_events() const { return scale_out_events_; }
  std::int64_t scale_in_events() const { return scale_in_events_; }
  std::int64_t scale_events() const { return scale_out_events_ + scale_in_events_; }
  std::int64_t revocations() const { return revocations_; }
  std::int64_t hard_kills() const { return hard_kills_; }
  std::int64_t drains_completed() const { return drains_completed_; }
  Seconds total_drain_seconds() const { return total_drain_seconds_; }

  Fleet& fleet() { return fleet_; }
  const Fleet& fleet() const { return fleet_; }
  const std::vector<ElasticInstance>& elastic_instances() const { return instances_; }

 private:
  ElasticInstance& find(const std::string& id);
  int count_state(InstanceState s) const;

  std::shared_ptr<const ppc::Clock> clock_;
  Fleet fleet_;
  std::vector<ElasticInstance> instances_;
  std::unordered_map<std::string, std::size_t> index_;

  std::int64_t scale_out_events_ = 0;
  std::int64_t scale_in_events_ = 0;
  std::int64_t revocations_ = 0;
  std::int64_t hard_kills_ = 0;
  std::int64_t drains_completed_ = 0;
  Seconds total_drain_seconds_ = 0.0;
};

}  // namespace ppc::cloud
