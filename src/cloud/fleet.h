// Instances and fleets with hourly billing.
//
// Cloud VMs are "billed hourly" (§3): a computation occupying an instance
// for any fraction of an hour is charged the full hour. The Fleet tracks
// launch/terminate times against the injected clock and produces both the
// paper's cost views:
//   * "Compute Cost (hour units)" — ceil(uptime) hours, the computation pays
//     for the whole final hour;
//   * "Amortized Cost" — exact fraction of uptime, assuming the remainder of
//     the hour does other useful work.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cloud/instance_types.h"
#include "common/clock.h"

namespace ppc::cloud {

struct Instance {
  std::string id;
  InstanceType type;
  Seconds launch_time = 0.0;
  Seconds terminate_time = -1.0;  // < 0 while running

  bool running() const { return terminate_time < 0.0; }

  /// Uptime as of `now` (or total uptime once terminated).
  Seconds uptime(Seconds now) const;

  /// Whole billing hours charged as of `now` (>= 1 once launched).
  int billed_hours(Seconds now) const;
};

class Fleet {
 public:
  explicit Fleet(std::shared_ptr<const ppc::Clock> clock);

  /// Launches `count` instances of `type`; returns their ids.
  std::vector<std::string> launch(const InstanceType& type, int count);

  /// Terminates one instance; throws when unknown or already terminated.
  void terminate(const std::string& id);

  /// Terminates every running instance.
  void terminate_all();

  const std::vector<Instance>& instances() const { return instances_; }
  std::size_t size() const { return instances_.size(); }
  std::size_t running_count() const;

  /// Total CPU cores across running instances.
  int total_cores() const;

  /// Hour-unit compute cost as of `now` (terminated instances use their
  /// final uptime). This is the paper's "Compute Cost (hour units)".
  Dollars hourly_billed_cost(Seconds now) const;

  /// Amortized compute cost: exact uptime fraction times hourly rate.
  Dollars amortized_cost(Seconds now) const;

 private:
  Instance& find(const std::string& id);

  std::shared_ptr<const ppc::Clock> clock_;
  std::vector<Instance> instances_;
  int next_id_ = 1;
};

}  // namespace ppc::cloud
