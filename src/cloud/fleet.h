// Instances and fleets with hourly billing.
//
// Cloud VMs are "billed hourly" (§3): a computation occupying an instance
// for any fraction of an hour is charged the full hour. The Fleet tracks
// launch/terminate times against the injected clock and produces both the
// paper's cost views:
//   * "Compute Cost (hour units)" — ceil(uptime) hours, the computation pays
//     for the whole final hour;
//   * "Amortized Cost" — exact fraction of uptime, assuming the remainder of
//     the hour does other useful work.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cloud/instance_types.h"
#include "common/clock.h"

namespace ppc::cloud {

struct Instance {
  std::string id;
  InstanceType type;
  Seconds launch_time = 0.0;
  Seconds terminate_time = -1.0;  // < 0 while running

  bool running() const { return terminate_time < 0.0; }

  /// Uptime as of `now` (or total uptime once terminated).
  Seconds uptime(Seconds now) const;

  /// Whole billing hours charged as of `now` (>= 1 once launched).
  int billed_hours(Seconds now) const;
};

class Fleet {
 public:
  explicit Fleet(std::shared_ptr<const ppc::Clock> clock);

  /// Launches `count` instances of `type`; returns their ids.
  std::vector<std::string> launch(const InstanceType& type, int count);

  /// Terminates one instance; throws when unknown. Terminating an already-
  /// terminated instance is a metered detected no-op (`stale_terminates`),
  /// mirroring the queue's stale deletes: a spot revocation racing a
  /// scale-in decision must not abort the run.
  void terminate(const std::string& id);

  /// Terminates every running instance.
  void terminate_all();

  const std::vector<Instance>& instances() const { return instances_; }
  std::size_t size() const { return instances_.size(); }
  std::size_t running_count() const;
  /// Running instances billing at a spot-market rate.
  std::size_t running_spot_count() const;

  /// Looks up one instance by id (O(1)); throws when unknown.
  const Instance& info(const std::string& id) const;

  /// Terminations suppressed because the instance was already terminated.
  std::uint64_t stale_terminates() const { return stale_terminates_; }

  /// Total CPU cores across running instances.
  int total_cores() const;

  /// Hour-unit compute cost as of `now` (terminated instances use their
  /// final uptime). This is the paper's "Compute Cost (hour units)".
  Dollars hourly_billed_cost(Seconds now) const;

  /// Amortized compute cost: exact uptime fraction times hourly rate.
  Dollars amortized_cost(Seconds now) const;

  /// The hour-unit bill split by market, plus the counterfactual all-on-
  /// demand figure the spot-savings line item is measured against.
  struct CostBreakdown {
    Dollars on_demand = 0.0;
    Dollars spot = 0.0;
    Dollars on_demand_equivalent = 0.0;  // every hour billed at on-demand rates

    Dollars total() const { return on_demand + spot; }
    Dollars spot_savings() const { return on_demand_equivalent - total(); }
  };
  CostBreakdown hourly_billed_breakdown(Seconds now) const;

 private:
  Instance& find(const std::string& id);

  std::shared_ptr<const ppc::Clock> clock_;
  std::vector<Instance> instances_;
  /// id -> index into instances_; keeps find() O(1) at elastic-fleet scale.
  std::unordered_map<std::string, std::size_t> index_;
  std::uint64_t stale_terminates_ = 0;
  int next_id_ = 1;
};

}  // namespace ppc::cloud
