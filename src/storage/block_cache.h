// Worker-side block cache with content-addressed dedup.
//
// N BLAST workers each running T tasks would pay N*T downloads of the same
// NR database under the naive data plane. This cache sits between a worker
// and its StorageBackend: objects are identified by their etag (content
// address), split into fixed-size blocks, and kept in one block-granular
// LRU. A fetch whose etag is fully resident is served locally (zero backend
// traffic, `bytes_saved` grows); anything else revalidates with a HEAD,
// downloads with a GET, and inserts the blocks — evicting least-recently
// used blocks of colder objects to stay under capacity.
//
// Content addressing means dedup is free: two keys with identical bytes
// (or one key fetched by many tasks) share a single cache entry, and an
// overwritten object is detected immediately because its etag changes.
// Logical objects participate too — their (bucket, key, size)-derived etag
// is stable, and the cache accounts their declared size with phantom
// blocks — which is how the DES drivers model per-worker caching of
// multi-GB datasets without materializing them.
//
// Counters (hits/misses/evictions/insertions/bytes_saved) are mirrored
// into an optional MetricsRegistry under "<name>." and every fetch emits a
// "cache.<bucket>.hit" / "cache.<bucket>.miss" trace span (the miss span
// brackets the backend download). Thread-safe.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/trace_hook.h"
#include "common/units.h"
#include "runtime/metrics.h"
#include "storage/storage_backend.h"

namespace ppc::storage {

struct BlockCacheConfig {
  /// Total payload bytes the cache may hold.
  Bytes capacity = 256.0 * 1024 * 1024;
  /// LRU granule. Objects occupy ceil(size / block_size) blocks; the last
  /// block is accounted at its partial size.
  Bytes block_size = 4.0 * 1024 * 1024;
  /// Metric scope: counters are registered as "<name>.hits" etc.
  std::string name = "blockcache";
};

class BlockCache {
 public:
  explicit BlockCache(BlockCacheConfig config = {},
                      runtime::MetricsRegistry* metrics = nullptr);

  const BlockCacheConfig& config() const { return config_; }

  /// Installs a trace hook emitting "cache.<bucket>.hit" / ".miss" spans.
  /// Non-owning; nullptr clears.
  void set_tracer(ppc::TraceHook* tracer) { tracer_.store(tracer); }

  struct FetchResult {
    /// The payload (aliases the stored object / cached snapshot); null when
    /// the object is absent or not yet visible.
    std::shared_ptr<const std::string> data;
    /// Logical size of the object (== data->size() for real payloads).
    Bytes size = 0.0;
    /// Served from cache without touching the backend's data path.
    bool hit = false;
    bool found = false;
  };

  /// Fetch-through: serves from cache when the object's etag is fully
  /// resident, otherwise revalidates (HEAD) + downloads (GET) through the
  /// backend and caches the blocks. Objects without a visible etag and
  /// objects larger than the capacity are passed through uncached.
  FetchResult fetch(StorageBackend& backend, const std::string& bucket, const std::string& key);

  /// Drops every cached block (counters are preserved).
  void clear();

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  std::uint64_t evictions() const { return evictions_.load(std::memory_order_relaxed); }
  std::uint64_t insertions() const { return insertions_.load(std::memory_order_relaxed); }
  /// Backend bytes avoided by cache hits.
  Bytes bytes_saved() const;
  /// Payload bytes currently resident.
  Bytes cached_bytes() const;
  std::size_t cached_blocks() const;

 private:
  struct Entry;
  struct BlockRef {
    Entry* entry;
    std::size_t index;
  };
  struct Entry {
    std::uint64_t etag = 0;
    std::shared_ptr<const std::string> data;
    Bytes size = 0.0;
    std::size_t total_blocks = 0;
    /// Iterators into lru_ for each still-resident block; end() when that
    /// block was evicted.
    std::vector<std::list<BlockRef>::iterator> block_pos;
    std::size_t present_blocks = 0;
  };

  Bytes block_bytes(const Entry& entry, std::size_t index) const;
  void touch_locked(Entry& entry);
  void erase_entry_locked(Entry& entry);
  void evict_one_locked();
  void insert_locked(std::uint64_t etag, std::shared_ptr<const std::string> data, Bytes size);

  BlockCacheConfig config_;
  std::atomic<ppc::TraceHook*> tracer_{nullptr};

  mutable std::mutex mu_;
  /// MRU at the back, LRU at the front.
  std::list<BlockRef> lru_;
  std::map<std::uint64_t, Entry> entries_;
  Bytes cached_bytes_ = 0.0;
  double bytes_saved_ = 0.0;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> insertions_{0};

  // Looked up once; nullptr when no registry was given.
  runtime::Counter* m_hits_ = nullptr;
  runtime::Counter* m_misses_ = nullptr;
  runtime::Counter* m_evictions_ = nullptr;
  runtime::Counter* m_insertions_ = nullptr;
  runtime::Counter* m_bytes_saved_ = nullptr;
};

}  // namespace ppc::storage
