#include "storage/block_cache.h"

#include <cmath>
#include <utility>

#include "common/error.h"
#include "common/string_util.h"

namespace ppc::storage {

BlockCache::BlockCache(BlockCacheConfig config, runtime::MetricsRegistry* metrics)
    : config_(std::move(config)) {
  PPC_REQUIRE(config_.capacity > 0.0, "cache capacity must be > 0");
  PPC_REQUIRE(config_.block_size > 0.0, "block size must be > 0");
  if (metrics != nullptr) {
    m_hits_ = &metrics->counter(config_.name + ".hits");
    m_misses_ = &metrics->counter(config_.name + ".misses");
    m_evictions_ = &metrics->counter(config_.name + ".evictions");
    m_insertions_ = &metrics->counter(config_.name + ".insertions");
    m_bytes_saved_ = &metrics->counter(config_.name + ".bytes_saved");
  }
}

Bytes BlockCache::block_bytes(const Entry& entry, std::size_t index) const {
  if (entry.total_blocks == 0) return 0.0;
  if (index + 1 < entry.total_blocks) return config_.block_size;
  return entry.size - config_.block_size * static_cast<double>(entry.total_blocks - 1);
}

void BlockCache::touch_locked(Entry& entry) {
  // Promote every resident block to MRU, in index order — the reference
  // model in the tests mirrors this exact discipline.
  for (std::size_t i = 0; i < entry.total_blocks; ++i) {
    if (entry.block_pos[i] != lru_.end()) {
      lru_.splice(lru_.end(), lru_, entry.block_pos[i]);
    }
  }
}

void BlockCache::erase_entry_locked(Entry& entry) {
  for (std::size_t i = 0; i < entry.total_blocks; ++i) {
    if (entry.block_pos[i] != lru_.end()) {
      cached_bytes_ -= block_bytes(entry, i);
      lru_.erase(entry.block_pos[i]);
      entry.block_pos[i] = lru_.end();
    }
  }
  entry.present_blocks = 0;
}

void BlockCache::evict_one_locked() {
  const BlockRef ref = lru_.front();
  lru_.pop_front();
  Entry& entry = *ref.entry;
  entry.block_pos[ref.index] = lru_.end();
  --entry.present_blocks;
  cached_bytes_ -= block_bytes(entry, ref.index);
  evictions_.fetch_add(1, std::memory_order_relaxed);
  if (m_evictions_ != nullptr) m_evictions_->inc();
  if (entry.present_blocks == 0) {
    const std::uint64_t dead = entry.etag;  // copy: the erase destroys `entry`
    entries_.erase(dead);
  }
}

void BlockCache::insert_locked(std::uint64_t etag, std::shared_ptr<const std::string> data,
                               Bytes size) {
  auto it = entries_.find(etag);
  if (it != entries_.end()) {
    // A partial (partly evicted) entry is replaced wholesale — per-block
    // refill is not a thing the backend's whole-object GET can express.
    erase_entry_locked(it->second);
    entries_.erase(it);
  }
  if (size > config_.capacity) return;  // oversize: pass through uncached

  while (!lru_.empty() && cached_bytes_ + size > config_.capacity) evict_one_locked();

  Entry& entry = entries_[etag];
  entry.etag = etag;
  entry.data = std::move(data);
  entry.size = size;
  entry.total_blocks =
      std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(size / config_.block_size)));
  entry.block_pos.assign(entry.total_blocks, lru_.end());
  for (std::size_t i = 0; i < entry.total_blocks; ++i) {
    lru_.push_back(BlockRef{&entry, i});
    entry.block_pos[i] = std::prev(lru_.end());
  }
  entry.present_blocks = entry.total_blocks;
  cached_bytes_ += size;
  insertions_.fetch_add(1, std::memory_order_relaxed);
  if (m_insertions_ != nullptr) m_insertions_->inc();
}

BlockCache::FetchResult BlockCache::fetch(StorageBackend& backend, const std::string& bucket,
                                          const std::string& key) {
  const auto tag = backend.etag(bucket, key);
  if (!tag.has_value()) {
    // No visible content address — absent, or still inside the visibility
    // lag. Pass through; a null get tells the caller to retry as usual.
    FetchResult result;
    result.data = backend.get(bucket, key);
    result.found = result.data != nullptr;
    result.size = result.found ? static_cast<Bytes>(result.data->size()) : 0.0;
    return result;
  }

  ppc::TraceHook* tracer = tracer_.load(std::memory_order_relaxed);

  {
    std::lock_guard lock(mu_);
    auto it = entries_.find(*tag);
    if (it != entries_.end() && it->second.present_blocks == it->second.total_blocks) {
      touch_locked(it->second);
      bytes_saved_ += it->second.size;
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (m_hits_ != nullptr) m_hits_->inc();
      if (m_bytes_saved_ != nullptr) m_bytes_saved_->inc(std::llround(it->second.size));
      FetchResult result;
      result.data = it->second.data;
      result.size = it->second.size;
      result.hit = true;
      result.found = true;
      if (tracer != nullptr && tracer->tracing()) {
        // Instant span: a hit never leaves the worker.
        tracer->op_end(tracer->op_begin("cache." + bucket + ".hit", key), /*failed=*/false);
      }
      return result;
    }
  }

  std::uint64_t span = 0;
  if (tracer != nullptr && tracer->tracing()) {
    span = tracer->op_begin("cache." + bucket + ".miss", key);
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (m_misses_ != nullptr) m_misses_->inc();

  // Revalidate size (HEAD — covers logical objects whose payload is empty),
  // then download. Both are real metered backend traffic.
  const auto head_size = backend.head(bucket, key);
  auto data = backend.get(bucket, key);
  if (data == nullptr) {
    if (span != 0) tracer->op_end(span, /*failed=*/true);
    return FetchResult{};  // vanished between etag and get
  }
  // Never cache a delivery that fails its content address: a download
  // corrupted in flight (fault hook) would otherwise be served as a "hit"
  // to every later task on this worker. Logical objects (empty payload,
  // identity-derived etag) have no bytes to check.
  if (!data->empty() && ppc::fnv1a64(*data) != *tag) {
    if (span != 0) tracer->op_end(span, /*failed=*/true);
    return FetchResult{};  // caller retries; the store copy is intact
  }
  const Bytes size = head_size.has_value() ? *head_size : static_cast<Bytes>(data->size());
  {
    std::lock_guard lock(mu_);
    insert_locked(*tag, data, size);
  }
  if (span != 0) tracer->op_end(span, /*failed=*/false);

  FetchResult result;
  result.data = std::move(data);
  result.size = size;
  result.found = true;
  return result;
}

void BlockCache::clear() {
  std::lock_guard lock(mu_);
  lru_.clear();
  entries_.clear();
  cached_bytes_ = 0.0;
}

Bytes BlockCache::bytes_saved() const {
  std::lock_guard lock(mu_);
  return bytes_saved_;
}

Bytes BlockCache::cached_bytes() const {
  std::lock_guard lock(mu_);
  return cached_bytes_;
}

std::size_t BlockCache::cached_blocks() const {
  std::lock_guard lock(mu_);
  return lru_.size();
}

}  // namespace ppc::storage
