// Shared-FS and parallel-FS data planes + the backend factory.
//
// Both filesystem backends derive from blobstore::BlobStore: they keep the
// exact object semantics (bucket/key, zero-copy snapshot gets, logical
// objects, etags, metering) and — critically — fire the identical
// FaultHook / TraceHook sites, so a chaos plan or a Perfetto timeline is
// backend-agnostic. What they replace is the *timing* model (an NFS-style
// contended server link / a Lustre-style striped array, both degraded by
// the number of concurrently bracketed transfers) and the *pricing* model
// (dedicated file-server instances instead of per-GB/per-request fees).
//
// Contention is tracked with an atomic in-flight counter the DES drivers
// bracket via begin_transfer()/end_transfer(). The object store ignores the
// bracket (S3 scales per connection); these two do not:
//
//  * SharedFsBackend — one server, effective per-reader bandwidth is
//    link_bandwidth / active transfers, capped by the client NIC. Lowest
//    latency and cheapest (a single server) but collapses at scale.
//  * ParallelFsBackend — K object servers, aggregate bandwidth
//    K * per-server, shared across active transfers and capped by the
//    client NIC. Sustains scale until the stripes saturate; costs K
//    servers.
#pragma once

#include <algorithm>
#include <atomic>
#include <memory>

#include "blobstore/blob_store.h"
#include "common/clock.h"
#include "common/rng.h"
#include "common/units.h"
#include "storage/storage_backend.h"

namespace ppc::storage {

struct SharedFsConfig {
  /// NFS RPC over the cluster LAN — ~40x lower than an S3 HTTP round trip.
  Seconds request_latency_mean = 0.002;
  double latency_cv = 0.3;
  /// The single server's link; every concurrent transfer shares it.
  Bytes server_read_bandwidth_per_s = 400.0 * 1024 * 1024;
  /// Sync-write penalty: NFS commits to disk before acking.
  Bytes server_write_bandwidth_per_s = 250.0 * 1024 * 1024;
  /// One client NIC — the per-reader cap even when the link is idle.
  Bytes client_bandwidth_per_s = 120.0 * 1024 * 1024;
  /// Close-to-open consistency: reads see committed writes immediately.
  Seconds read_after_write_lag_mean = 0.0;
  /// One m1.xlarge-class file server, billed like any other node.
  Dollars server_cost_per_hour = 0.68;
  /// Provisioned EBS-style volume behind the server.
  Dollars storage_cost_per_gb_month = 0.10;
};

struct ParallelFsConfig {
  /// Client -> metadata server -> object servers pipeline setup.
  Seconds request_latency_mean = 0.005;
  double latency_cv = 0.3;
  /// Object servers the data is striped across.
  int stripe_servers = 16;
  Bytes per_server_read_bandwidth_per_s = 250.0 * 1024 * 1024;
  Bytes per_server_write_bandwidth_per_s = 180.0 * 1024 * 1024;
  /// Striped clients drive more than one NIC-equivalent of bandwidth.
  Bytes client_bandwidth_per_s = 200.0 * 1024 * 1024;
  Seconds read_after_write_lag_mean = 0.0;
  Dollars server_cost_per_hour = 0.68;
  Dollars storage_cost_per_gb_month = 0.10;
};

/// NFS-style shared file system: one contended server link.
class SharedFsBackend : public blobstore::BlobStore {
 public:
  explicit SharedFsBackend(std::shared_ptr<const ppc::Clock> clock, SharedFsConfig config = {},
                           ppc::Rng rng = ppc::Rng(0x5Fa));

  StorageKind kind() const override { return StorageKind::kSharedFs; }
  const SharedFsConfig& fs_config() const { return fs_config_; }

  StoragePricing pricing() const override;

  Seconds sample_get_time(Bytes size, ppc::Rng& rng) const override;
  Seconds sample_put_time(Bytes size, ppc::Rng& rng) const override;

  void begin_transfer() override { active_.fetch_add(1, std::memory_order_relaxed); }
  void end_transfer() override { active_.fetch_sub(1, std::memory_order_relaxed); }
  int active_transfers() const override { return active_.load(std::memory_order_relaxed); }

 private:
  SharedFsConfig fs_config_;
  mutable std::atomic<int> active_{0};
};

/// Lustre-style parallel file system: K striped object servers.
class ParallelFsBackend : public blobstore::BlobStore {
 public:
  explicit ParallelFsBackend(std::shared_ptr<const ppc::Clock> clock,
                             ParallelFsConfig config = {}, ppc::Rng rng = ppc::Rng(0x1757));

  StorageKind kind() const override { return StorageKind::kParallelFs; }
  const ParallelFsConfig& fs_config() const { return fs_config_; }

  StoragePricing pricing() const override;

  Seconds sample_get_time(Bytes size, ppc::Rng& rng) const override;
  Seconds sample_put_time(Bytes size, ppc::Rng& rng) const override;

  void begin_transfer() override { active_.fetch_add(1, std::memory_order_relaxed); }
  void end_transfer() override { active_.fetch_sub(1, std::memory_order_relaxed); }
  int active_transfers() const override { return active_.load(std::memory_order_relaxed); }

 private:
  ParallelFsConfig fs_config_;
  mutable std::atomic<int> active_{0};
};

/// Per-backend configuration bundle a run carries; only the selected
/// backend's entry is used.
struct BackendTuning {
  blobstore::BlobStoreConfig object;
  SharedFsConfig sharedfs;
  ParallelFsConfig parallelfs;
};

/// Builds the selected backend. The rng seeds the backend's visibility-lag
/// stream (drivers pass rng.split() so the object-store path draws the
/// exact sequence it always has).
std::unique_ptr<StorageBackend> make_backend(StorageKind kind,
                                             std::shared_ptr<const ppc::Clock> clock,
                                             ppc::Rng rng, const BackendTuning& tuning = {});

}  // namespace ppc::storage
