// Pluggable storage data plane — the backend contract every store implements.
//
// The paper prices each workload against exactly one data plane per cloud
// (S3 for EC2, Azure Blob for Azure). Juve et al. ("Data Sharing Options for
// Scientific Workflows on Amazon EC2") showed the storage-backend choice
// dominates workflow cost and runtime, so ppcloud factors the data plane
// behind this interface and ships three models:
//
//  * ObjectStoreBackend (blobstore::BlobStore) — S3/Azure Blob: high
//    per-request latency, per-connection bandwidth that does not contend,
//    per-GB transfer fees and per-request fees;
//  * SharedFsBackend — an NFS-style shared file system: millisecond
//    latency, a single server link whose effective per-reader bandwidth
//    degrades as 1/N with concurrent transfers, priced as one server
//    instance;
//  * ParallelFsBackend — a Lustre-style parallel file system: data striped
//    across K object servers, aggregate bandwidth K * per-server until the
//    stripes saturate, priced as K server instances.
//
// All three share the *semantic* data plane (bucket/key objects, zero-copy
// snapshot gets, read-after-write visibility, etags, logical objects) and
// fire the identical FaultHook / TraceHook sites ("blobstore.<bucket>.put" /
// ".get" / ".list"), so chaos campaigns and Perfetto timelines work
// unchanged regardless of the selected backend. What varies is the *timing*
// model (sample_get_time / sample_put_time plus the begin_transfer /
// end_transfer contention bracket) and the *pricing* knobs.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/fault_hook.h"
#include "common/rng.h"
#include "common/trace_hook.h"
#include "common/units.h"

namespace ppc::storage {

/// Transfer/request accounting every backend keeps. S3 bills by stored
/// bytes, transferred bytes and request count; the shared/parallel FS
/// backends keep the same meter so Table 4 line items stay comparable.
/// HEAD-class requests (head / exists — cache validation traffic) are
/// counted separately from real downloads so request-cost breakdowns can
/// tell revalidation from data movement.
struct TransferMeter {
  Bytes bytes_in = 0.0;   // uploads into the store
  Bytes bytes_out = 0.0;  // downloads out of the store
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;  // including not-found
  std::uint64_t heads = 0;  // head()/exists() metadata probes
  std::uint64_t lists = 0;
  std::uint64_t deletes = 0;

  std::uint64_t requests() const { return puts + gets + heads + lists + deletes; }
};

/// Pricing knobs a backend exposes to billing::cost_model. The object store
/// charges per transferred GB and per request; the FS backends instead
/// charge for the server instances that host them (per hour, like any other
/// node in Table 4) and for provisioned storage.
struct StoragePricing {
  Dollars storage_cost_per_gb_month = 0.0;
  Dollars transfer_in_cost_per_gb = 0.0;
  Dollars transfer_out_cost_per_gb = 0.0;
  Dollars cost_per_10k_requests = 0.0;
  /// File-server instances backing the store (0 for the object store — its
  /// cost is entirely usage-based).
  int num_servers = 0;
  Dollars server_cost_per_hour = 0.0;
};

/// Which data-plane model a run uses; parsed from the CLI `--storage` flag.
enum class StorageKind { kObject, kSharedFs, kParallelFs };

inline const char* to_string(StorageKind kind) {
  switch (kind) {
    case StorageKind::kObject: return "object";
    case StorageKind::kSharedFs: return "sharedfs";
    case StorageKind::kParallelFs: return "parallelfs";
  }
  return "object";
}

inline StorageKind parse_storage_kind(const std::string& name) {
  if (name == "object") return StorageKind::kObject;
  if (name == "sharedfs") return StorageKind::kSharedFs;
  if (name == "parallelfs") return StorageKind::kParallelFs;
  throw ppc::InvalidArgument("unknown storage backend: " + name +
                             " (expected object|sharedfs|parallelfs)");
}

inline constexpr StorageKind kAllStorageKinds[] = {StorageKind::kObject, StorageKind::kSharedFs,
                                                   StorageKind::kParallelFs};

/// Abstract data plane. Implementations must be thread-safe; time comes
/// from an injected ppc::Clock. See blobstore::BlobStore for the reference
/// semantics each method must honor (the conformance suite in
/// tests/storage/ runs against every implementation).
class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  /// Stable identifier ("object", "sharedfs", "parallelfs") for reports.
  virtual StorageKind kind() const = 0;

  /// Installs a fault hook fired on every put/get/list (sites
  /// "blobstore.<bucket>.put" / ".get" / ".list" — identical across
  /// backends so chaos plans are backend-agnostic). Non-owning; nullptr
  /// clears.
  virtual void set_fault_hook(ppc::FaultHook* hook) = 0;

  /// Installs a trace hook with the same site taxonomy. Non-owning.
  virtual void set_tracer(ppc::TraceHook* tracer) = 0;

  virtual void create_bucket(const std::string& bucket) = 0;
  virtual bool bucket_exists(const std::string& bucket) const = 0;

  /// Stores an object (creates the bucket implicitly). Overwrites are
  /// immediately visible; only brand-new keys suffer read-after-write lag.
  virtual void put(const std::string& bucket, const std::string& key, std::string data) = 0;

  /// Stores a *logical* object: declared size, no materialized bytes. Its
  /// etag is derived from (bucket, key, size) so content-addressed caching
  /// works for multi-GB DES datasets too.
  virtual void put_logical(const std::string& bucket, const std::string& key, Bytes size) = 0;

  /// Fetches the object, or null when absent / not yet visible. The result
  /// aliases the stored payload (zero-copy snapshot semantics).
  virtual std::shared_ptr<const std::string> get(const std::string& bucket,
                                                 const std::string& key) = 0;

  /// Size of the object in bytes, or nullopt. Metered as a HEAD.
  virtual std::optional<Bytes> head(const std::string& bucket, const std::string& key) = 0;

  /// True when the object exists and is visible. Metered as a HEAD.
  virtual bool exists(const std::string& bucket, const std::string& key) = 0;

  /// Content hash (fnv1a64 ETag stand-in), or nullopt when absent / not yet
  /// visible. Unmetered and immune to injected faults: it models the
  /// checksum the service returned with the original upload.
  virtual std::optional<std::uint64_t> etag(const std::string& bucket,
                                            const std::string& key) const = 0;

  /// Removes the object; returns false when absent.
  virtual bool remove(const std::string& bucket, const std::string& key) = 0;

  /// Keys in the bucket starting with `prefix`, sorted.
  virtual std::vector<std::string> list(const std::string& bucket,
                                        const std::string& prefix = "") = 0;

  /// Total bytes currently stored (across buckets).
  virtual Bytes stored_bytes() const = 0;

  virtual TransferMeter meter() const = 0;

  /// Usage-based (transfer + request) cost so far; zero for the FS
  /// backends, whose cost is the servers themselves (see service_cost()).
  virtual Dollars transfer_and_request_cost() const = 0;

  virtual StoragePricing pricing() const = 0;

  /// Cost of running the backend's own servers for `duration` — the FS
  /// equivalent of an instance-hours line item. Zero for the object store.
  Dollars service_cost(Seconds duration) const {
    const StoragePricing p = pricing();
    return static_cast<double>(p.num_servers) * p.server_cost_per_hour * (duration / 3600.0);
  }

  // -- timing model (used by the simulation drivers) --

  /// Samples the wall time of a GET of `size` bytes under the backend's
  /// *current* contention (see begin_transfer()).
  virtual Seconds sample_get_time(Bytes size, ppc::Rng& rng) const = 0;

  /// Samples the wall time of a PUT of `size` bytes.
  virtual Seconds sample_put_time(Bytes size, ppc::Rng& rng) const = 0;

  // -- contention bracket --
  //
  // The DES drivers bracket every modeled transfer with begin/end so
  // contended backends can degrade sample_*_time with the number of
  // concurrent transfers. The object store ignores the bracket: S3-class
  // services scale per-connection and one worker's download does not slow
  // another's (§2.1.1).

  virtual void begin_transfer() {}
  virtual void end_transfer() {}

  /// Transfers currently inside a begin/end bracket (0 for backends that
  /// do not track contention).
  virtual int active_transfers() const { return 0; }
};

/// RAII bracket for one modeled transfer.
class TransferGuard {
 public:
  explicit TransferGuard(StorageBackend& backend) : backend_(&backend) {
    backend_->begin_transfer();
  }
  ~TransferGuard() {
    if (backend_ != nullptr) backend_->end_transfer();
  }
  TransferGuard(const TransferGuard&) = delete;
  TransferGuard& operator=(const TransferGuard&) = delete;

 private:
  StorageBackend* backend_;
};

}  // namespace ppc::storage
