#include "storage/fs_backends.h"

#include <utility>

#include "common/error.h"

namespace ppc::storage {

namespace {

/// Maps an FS config onto the BlobStore base: same latency knobs (so the
/// inherited semantics behave), zero per-GB/per-request fees (FS cost is
/// the servers, charged via pricing().num_servers), and the FS's own
/// provisioned-storage rate.
template <typename FsConfig>
blobstore::BlobStoreConfig base_config(const FsConfig& fs, Bytes read_bw, Bytes write_bw) {
  blobstore::BlobStoreConfig base;
  base.request_latency_mean = fs.request_latency_mean;
  base.latency_cv = fs.latency_cv;
  base.download_bandwidth_per_s = read_bw;
  base.upload_bandwidth_per_s = write_bw;
  base.read_after_write_lag_mean = fs.read_after_write_lag_mean;
  base.storage_cost_per_gb_month = fs.storage_cost_per_gb_month;
  base.transfer_in_cost_per_gb = 0.0;
  base.transfer_out_cost_per_gb = 0.0;
  base.cost_per_10k_requests = 0.0;
  return base;
}

}  // namespace

SharedFsBackend::SharedFsBackend(std::shared_ptr<const ppc::Clock> clock, SharedFsConfig config,
                                 ppc::Rng rng)
    : blobstore::BlobStore(std::move(clock),
                           base_config(config, config.server_read_bandwidth_per_s,
                                       config.server_write_bandwidth_per_s),
                           rng),
      fs_config_(config) {
  PPC_REQUIRE(fs_config_.server_read_bandwidth_per_s > 0.0, "server read bandwidth must be > 0");
  PPC_REQUIRE(fs_config_.server_write_bandwidth_per_s > 0.0,
              "server write bandwidth must be > 0");
  PPC_REQUIRE(fs_config_.client_bandwidth_per_s > 0.0, "client bandwidth must be > 0");
}

StoragePricing SharedFsBackend::pricing() const {
  StoragePricing p;
  p.storage_cost_per_gb_month = fs_config_.storage_cost_per_gb_month;
  p.num_servers = 1;
  p.server_cost_per_hour = fs_config_.server_cost_per_hour;
  return p;
}

Seconds SharedFsBackend::sample_get_time(Bytes size, ppc::Rng& rng) const {
  PPC_REQUIRE(size >= 0.0, "size must be >= 0");
  const Seconds latency = rng.jittered(fs_config_.request_latency_mean, fs_config_.latency_cv);
  const int readers = std::max(1, active_.load(std::memory_order_relaxed));
  const Bytes share = fs_config_.server_read_bandwidth_per_s / static_cast<double>(readers);
  const Bytes effective = std::min(fs_config_.client_bandwidth_per_s, share);
  return latency + size / effective;
}

Seconds SharedFsBackend::sample_put_time(Bytes size, ppc::Rng& rng) const {
  PPC_REQUIRE(size >= 0.0, "size must be >= 0");
  const Seconds latency = rng.jittered(fs_config_.request_latency_mean, fs_config_.latency_cv);
  const int writers = std::max(1, active_.load(std::memory_order_relaxed));
  const Bytes share = fs_config_.server_write_bandwidth_per_s / static_cast<double>(writers);
  const Bytes effective = std::min(fs_config_.client_bandwidth_per_s, share);
  return latency + size / effective;
}

ParallelFsBackend::ParallelFsBackend(std::shared_ptr<const ppc::Clock> clock,
                                     ParallelFsConfig config, ppc::Rng rng)
    : blobstore::BlobStore(
          std::move(clock),
          base_config(config,
                      static_cast<double>(config.stripe_servers) *
                          config.per_server_read_bandwidth_per_s,
                      static_cast<double>(config.stripe_servers) *
                          config.per_server_write_bandwidth_per_s),
          rng),
      fs_config_(config) {
  PPC_REQUIRE(fs_config_.stripe_servers > 0, "stripe_servers must be > 0");
  PPC_REQUIRE(fs_config_.per_server_read_bandwidth_per_s > 0.0,
              "per-server read bandwidth must be > 0");
  PPC_REQUIRE(fs_config_.per_server_write_bandwidth_per_s > 0.0,
              "per-server write bandwidth must be > 0");
  PPC_REQUIRE(fs_config_.client_bandwidth_per_s > 0.0, "client bandwidth must be > 0");
}

StoragePricing ParallelFsBackend::pricing() const {
  StoragePricing p;
  p.storage_cost_per_gb_month = fs_config_.storage_cost_per_gb_month;
  p.num_servers = fs_config_.stripe_servers;
  p.server_cost_per_hour = fs_config_.server_cost_per_hour;
  return p;
}

Seconds ParallelFsBackend::sample_get_time(Bytes size, ppc::Rng& rng) const {
  PPC_REQUIRE(size >= 0.0, "size must be >= 0");
  const Seconds latency = rng.jittered(fs_config_.request_latency_mean, fs_config_.latency_cv);
  const int readers = std::max(1, active_.load(std::memory_order_relaxed));
  const Bytes aggregate = static_cast<double>(fs_config_.stripe_servers) *
                          fs_config_.per_server_read_bandwidth_per_s;
  const Bytes effective =
      std::min(fs_config_.client_bandwidth_per_s, aggregate / static_cast<double>(readers));
  return latency + size / effective;
}

Seconds ParallelFsBackend::sample_put_time(Bytes size, ppc::Rng& rng) const {
  PPC_REQUIRE(size >= 0.0, "size must be >= 0");
  const Seconds latency = rng.jittered(fs_config_.request_latency_mean, fs_config_.latency_cv);
  const int writers = std::max(1, active_.load(std::memory_order_relaxed));
  const Bytes aggregate = static_cast<double>(fs_config_.stripe_servers) *
                          fs_config_.per_server_write_bandwidth_per_s;
  const Bytes effective =
      std::min(fs_config_.client_bandwidth_per_s, aggregate / static_cast<double>(writers));
  return latency + size / effective;
}

std::unique_ptr<StorageBackend> make_backend(StorageKind kind,
                                             std::shared_ptr<const ppc::Clock> clock,
                                             ppc::Rng rng, const BackendTuning& tuning) {
  switch (kind) {
    case StorageKind::kObject:
      return std::make_unique<blobstore::BlobStore>(std::move(clock), tuning.object, rng);
    case StorageKind::kSharedFs:
      return std::make_unique<SharedFsBackend>(std::move(clock), tuning.sharedfs, rng);
    case StorageKind::kParallelFs:
      return std::make_unique<ParallelFsBackend>(std::move(clock), tuning.parallelfs, rng);
  }
  throw ppc::InvalidArgument("unknown StorageKind");
}

}  // namespace ppc::storage
