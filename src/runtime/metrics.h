// One metrics API for all four substrates.
//
// The seed grew a stats struct per framework (`WorkerStats`,
// `MrWorkerStats`, scheduler stats, per-driver ad-hoc counters); this
// registry replaces the storage behind them with named counters, gauges and
// histograms plus a structured event sink. Workers scope their counters by
// id ("<worker>.tasks_completed"), so per-worker views and fleet-wide
// aggregates (`sum_counters(".tasks_completed")`) come from the same data,
// and the CLI / benches read parallel efficiency (Eq 1) from a gauge instead
// of reaching into per-substrate structs.
//
// Thread-safe. Counter/histogram references returned by the registry stay
// valid for the registry's lifetime, so hot paths can look up once and
// increment lock-free afterwards.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/stats.h"

namespace ppc::runtime {

class Counter {
 public:
  void inc(std::int64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Mutex-guarded sample accumulator with exact percentiles (SampleSet).
class HistogramMetric {
 public:
  void record(double x);
  /// Copy of the samples accumulated so far.
  ppc::SampleSet snapshot() const;
  std::size_t count() const;

 private:
  mutable std::mutex mu_;
  ppc::SampleSet samples_;
};

/// A structured event: a name plus free-form key/value fields. Routed to the
/// registry's sink (when set) — the monitoring-queue analog for in-process
/// observers (tests, tracing, progress UIs).
struct MetricEvent {
  std::string name;
  std::vector<std::pair<std::string, std::string>> fields;
};

using EventSink = std::function<void(const MetricEvent&)>;

class MetricsRegistry {
 public:
  /// Returns the named counter, creating it on first use.
  Counter& counter(const std::string& name);

  /// Returns the named histogram, creating it on first use.
  HistogramMetric& histogram(const std::string& name);

  void set_gauge(const std::string& name, double value);

  /// Current gauge value; 0.0 when never set.
  double gauge(const std::string& name) const;

  /// Current counter value; 0 when never touched.
  std::int64_t counter_value(const std::string& name) const;

  /// Sum over every counter whose name ends with `suffix` — aggregates
  /// worker-scoped counters ("w0.tasks_completed" + "w1.tasks_completed")
  /// in one call.
  std::int64_t sum_counters(std::string_view suffix) const;

  /// Forwards to the event sink, if one is installed; otherwise drops.
  void emit(MetricEvent event);

  void set_event_sink(EventSink sink);

  // -- snapshots for reporting ---------------------------------------
  std::vector<std::pair<std::string, std::int64_t>> counters() const;
  std::vector<std::pair<std::string, double>> gauges() const;
  std::vector<std::string> histogram_names() const;

  /// Reusable scrape buffer for the monitoring hot path: the name fields
  /// are string_views into the registry's own keys. Counters and histograms
  /// are never erased and gauge map nodes are stable, so the views stay
  /// valid for the registry's lifetime.
  struct ScrapeBuffer {
    std::vector<std::pair<std::string_view, std::int64_t>> counters;
    std::vector<std::pair<std::string_view, double>> gauges;
  };

  /// Snapshots every counter and gauge in ONE lock pass into `out`,
  /// clearing but not shrinking it — after the first call a steady-state
  /// scrape allocates nothing (names are views, vectors keep their
  /// capacity). This is what runtime::Monitor calls once per sample period;
  /// see src/runtime/README.md for the thread-safety contract.
  void scrape(ScrapeBuffer& out) const;

  /// Whole-registry snapshot as a JSON object — {"counters": {...},
  /// "gauges": {...}, "histograms": {name: {count, mean, max, p50, p95}}} —
  /// the artifact format the bench/CI jobs archive chaos and recovery
  /// metrics in.
  std::string to_json() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_;
  std::map<std::string, double> gauges_;
  EventSink sink_;
};

}  // namespace ppc::runtime
