// Scripted fault schedules for chaos campaigns.
//
// The original FaultInjector API is imperative — a test arms `crash_once` /
// `error_times` / `delay` against one site at a time. A chaos campaign wants
// the opposite: one declarative *plan*, sampled from a seed, that scripts
// every misbehaviour of a run up front. A FaultPlan is a list of FaultRules;
// each rule names a site, one of the four fault actions the paper's
// fault-tolerance story must survive —
//
//   crash        the worker dies at the site (lifecycle sites only);
//   delay        the operation stalls for a fixed duration (straggler model);
//   error        the operation reports failure (lost response, 5xx);
//   corrupt      the delivered payload is bit-flipped (detected via checksums);
//   revoke_spot  the provider reclaims the spot instance hosting the site,
//                with `delay` seconds of notice (0 = no notice, hard kill);
//
// — plus a probability, a firing budget, and an optional skip count. Arming
// a plan gives every site its own RNG stream derived deterministically from
// `seed ^ fnv1a64(site)`, so two runs of the same plan make identical
// per-site decisions regardless of which other sites exist or fire.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"

namespace ppc::runtime {

enum class FaultAction { kCrash, kDelay, kError, kCorrupt, kRevokeSpot };

const char* fault_action_name(FaultAction action);

struct FaultRule {
  std::string site;
  FaultAction action = FaultAction::kError;
  /// Chance the rule triggers on an eligible firing, decided by the site's
  /// plan RNG. 1.0 = every eligible firing.
  double probability = 1.0;
  /// Firings that may take the action before the rule disarms; < 0 = no cap.
  int budget = 1;
  /// Eligible firings to let pass untouched before the rule activates —
  /// "the third upload fails" is skip_first=2, budget=1.
  int skip_first = 0;
  /// Stall duration for kDelay.
  Seconds delay = 0.0;
  /// Failure message for kError.
  std::string what = "injected fault";
};

struct FaultPlan {
  /// Per-site RNG streams derive from this; same seed => same decisions.
  std::uint64_t seed = 0;
  std::vector<FaultRule> rules;

  // Fluent builders, so campaigns read as schedules:
  //   plan.crash(sites::kAfterExecute).delay(receive_site, 0.02, 3);
  FaultPlan& crash(const std::string& site, int budget = 1, double probability = 1.0,
                   int skip_first = 0);
  FaultPlan& delay(const std::string& site, Seconds duration, int budget = -1,
                   double probability = 1.0, int skip_first = 0);
  FaultPlan& error(const std::string& site, std::string what = "injected fault",
                   int budget = 1, double probability = 1.0, int skip_first = 0);
  FaultPlan& corrupt(const std::string& site, int budget = 1, double probability = 1.0,
                     int skip_first = 0);
  /// Spot revocation: at the revocation site the hosting instance gets
  /// `notice` seconds to drain before the hard kill (rides the `delay`
  /// field). budget > 1 with probability < 1 scripts a correlated storm.
  FaultPlan& revoke_spot(const std::string& site, int budget = 1, double probability = 1.0,
                         Seconds notice = 0.0, int skip_first = 0);

  /// One line per rule, for campaign logs ("crash x1 @ site (p=1.00)").
  std::string summary() const;
};

}  // namespace ppc::runtime
