// Adaptive idle-polling policy for queue-driven workers.
//
// A fixed poll interval forces a bad trade: tight polling burns receive
// requests (SQS bills every empty receive) while a long interval adds that
// much latency to every task start. The adaptive policy gets both ends:
// while deliveries flow the worker polls at `min_interval`; every
// consecutive empty poll multiplies the interval (up to `max_interval`),
// and the first delivery collapses it back to `min_interval`. Jitter
// decorrelates a fleet of workers so their empty polls don't arrive at the
// service in lockstep.
//
// The policy object is pure state-machine — no clock, no sleeping — so the
// lifecycle owns *when* to sleep and tests can drive it deterministically.
#pragma once

#include "common/rng.h"
#include "common/units.h"

namespace ppc::runtime {

struct PollPolicy {
  /// Interval while deliveries flow (and floor of the idle backoff).
  Seconds min_interval = 0.005;
  /// Idle backoff cap; <= min_interval degenerates to fixed polling.
  Seconds max_interval = 0.04;
  /// Idle growth factor per consecutive empty poll (>= 1).
  double multiplier = 2.0;
  /// Uniform jitter fraction: a computed interval i is drawn from
  /// [i*(1-jitter), i*(1+jitter)). 0 disables jitter.
  double jitter = 0.2;

  static PollPolicy fixed(Seconds interval) { return {interval, interval, 1.0, 0.0}; }
};

class AdaptivePoll {
 public:
  explicit AdaptivePoll(PollPolicy policy) : policy_(policy), current_(policy.min_interval) {
    if (policy_.max_interval < policy_.min_interval) policy_.max_interval = policy_.min_interval;
    if (policy_.multiplier < 1.0) policy_.multiplier = 1.0;
    if (policy_.jitter < 0.0) policy_.jitter = 0.0;
  }

  /// The sleep to take for this empty poll (jittered), then backs off the
  /// interval for the next one.
  Seconds next_idle_sleep(Rng& rng) {
    Seconds sleep = current_;
    if (policy_.jitter > 0.0) {
      sleep *= rng.uniform(1.0 - policy_.jitter, 1.0 + policy_.jitter);
    }
    current_ = current_ * policy_.multiplier;
    if (current_ > policy_.max_interval) current_ = policy_.max_interval;
    return sleep;
  }

  /// A delivery arrived: collapse back to tight polling.
  void on_delivery() { current_ = policy_.min_interval; }

  /// The un-jittered interval the next empty poll would sleep.
  Seconds current_interval() const { return current_; }

  const PollPolicy& policy() const { return policy_; }

 private:
  PollPolicy policy_;
  Seconds current_;
};

}  // namespace ppc::runtime
