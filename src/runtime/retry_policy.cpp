#include "runtime/retry_policy.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/error.h"

namespace ppc::runtime {

RetryPolicy RetryPolicy::fixed(int attempts, Seconds interval) {
  PPC_REQUIRE(attempts >= 1, "retry policy needs at least one attempt");
  RetryPolicy p;
  p.max_attempts = attempts;
  p.initial_backoff = interval;
  p.multiplier = 1.0;
  p.max_backoff = interval;
  p.jitter = 0.0;
  return p;
}

RetryPolicy RetryPolicy::exponential(int attempts, Seconds initial, double multiplier,
                                     Seconds cap, double jitter) {
  PPC_REQUIRE(attempts >= 1, "retry policy needs at least one attempt");
  PPC_REQUIRE(multiplier >= 1.0, "backoff multiplier must be >= 1");
  PPC_REQUIRE(jitter >= 0.0 && jitter < 1.0, "jitter must be in [0, 1)");
  RetryPolicy p;
  p.max_attempts = attempts;
  p.initial_backoff = initial;
  p.multiplier = multiplier;
  p.max_backoff = cap;
  p.jitter = jitter;
  return p;
}

RetryPolicy RetryPolicy::eventual_consistency() {
  return exponential(/*attempts=*/30, /*initial=*/0.0005, /*multiplier=*/2.0,
                     /*cap=*/0.05, /*jitter=*/0.2);
}

Seconds RetryPolicy::backoff(int attempt, Rng& rng) const {
  if (attempt < 0) attempt = 0;
  double sleep = initial_backoff * std::pow(multiplier, static_cast<double>(attempt));
  sleep = std::min(sleep, max_backoff);
  if (jitter > 0.0) sleep *= rng.uniform(1.0 - jitter, 1.0 + jitter);
  return std::max(sleep, 0.0);
}

Seconds RetryPolicy::total_backoff_budget() const {
  double total = 0.0;
  double sleep = initial_backoff;
  for (int i = 0; i + 1 < max_attempts; ++i) {
    total += std::min(sleep, max_backoff);
    sleep *= multiplier;
  }
  return total;
}

void sleep_for(Seconds s) {
  if (s > 0.0) std::this_thread::sleep_for(std::chrono::duration<double>(s));
}

}  // namespace ppc::runtime
