#include "runtime/task_lifecycle.h"

#include <functional>

#include "common/log.h"

namespace ppc::runtime {

const std::string& TaskContext::worker_id() const { return owner_.id(); }

bool TaskContext::crash_site(const std::string& site, const std::string& key) {
  FaultInjector* faults = owner_.faults();
  return faults != nullptr && faults->fire(site, key);
}

std::shared_ptr<const std::string> TaskContext::fetch(blobstore::BlobStore& store,
                                                      const std::string& bucket,
                                                      const std::string& key) {
  return retry([&] { return store.get(bucket, key); });
}

void TaskContext::count(std::string_view name, std::int64_t delta) {
  owner_.metrics().counter(owner_.scoped(name)).inc(delta);
}

void TaskContext::observe(std::string_view name, double value) {
  owner_.metrics().histogram(owner_.scoped(name)).record(value);
}

MetricsRegistry& TaskContext::metrics() { return owner_.metrics(); }

TaskLifecycle::TaskLifecycle(std::string id, std::shared_ptr<cloudq::MessageQueue> task_queue,
                             TaskHandler handler, LifecycleConfig config,
                             std::shared_ptr<MetricsRegistry> metrics, FaultInjector* faults)
    : id_(std::move(id)),
      task_queue_(std::move(task_queue)),
      handler_(std::move(handler)),
      config_(config),
      metrics_(metrics ? std::move(metrics) : std::make_shared<MetricsRegistry>()),
      faults_(faults),
      rng_(std::hash<std::string>{}(id_)) {
  PPC_REQUIRE(task_queue_ != nullptr, "task lifecycle needs a task queue");
  PPC_REQUIRE(handler_ != nullptr, "task lifecycle needs a handler");
  PPC_REQUIRE(config_.visibility_timeout > 0.0, "visibility timeout must be positive");
}

TaskLifecycle::~TaskLifecycle() {
  request_stop();
  if (thread_.joinable()) thread_.join();
}

void TaskLifecycle::start() {
  PPC_REQUIRE(!thread_.joinable(), "task lifecycle already started");
  running_.store(true);
  thread_ = std::thread([this] { poll_loop(); });
}

void TaskLifecycle::request_stop() { stop_requested_.store(true); }

void TaskLifecycle::join() {
  if (thread_.joinable()) thread_.join();
}

std::string TaskLifecycle::scoped(std::string_view name) const {
  std::string out;
  out.reserve(id_.size() + 1 + name.size());
  out += id_;
  out += '.';
  out += name;
  return out;
}

std::int64_t TaskLifecycle::counter(std::string_view name) const {
  return metrics_->counter_value(scoped(name));
}

void TaskLifecycle::die(const std::string& reason) {
  metrics_->counter(scoped(counters::kCrashed)).inc();
  metrics_->emit({"worker.crashed", {{"worker", id_}, {"reason", reason}}});
}

void TaskLifecycle::poll_loop() {
  int idle_polls = 0;
  while (!stop_requested_.load()) {
    auto message = task_queue_->receive(config_.visibility_timeout);
    if (!message) {
      ++idle_polls;
      if (config_.max_idle_polls >= 0 && idle_polls >= config_.max_idle_polls) break;
      sleep_for(config_.poll_interval);
      continue;
    }
    idle_polls = 0;
    metrics_->counter(scoped(counters::kMessagesReceived)).inc();

    TaskContext ctx(*this, *message);
    TaskOutcome outcome;
    try {
      outcome = handler_(ctx);
    } catch (const std::exception& e) {
      // Leave the message; it reappears after its visibility timeout.
      metrics_->counter(scoped(counters::kExecutionsFailed)).inc();
      PPC_WARN << "worker " << id_ << ": task failed: " << e.what();
      outcome = TaskOutcome::kAbandoned;
    }

    if (outcome == TaskOutcome::kCrashed) {
      // The worker dies mid-task. The message it held stays invisible until
      // its timeout lapses, then another worker picks it up.
      die("fault injection");
      break;
    }
    if (outcome == TaskOutcome::kCompleted) {
      // Delete only after completion — a stale receipt (someone else re-ran
      // the task after a visibility timeout) just fails, and idempotent
      // tasks make either outcome correct.
      const bool deleted = task_queue_->delete_message(message->receipt_handle);
      metrics_->counter(scoped(counters::kTasksCompleted)).inc();
      if (!deleted) metrics_->counter(scoped(counters::kDeletesFailed)).inc();
      metrics_->emit({"task.completed", {{"worker", id_}, {"message", message->id}}});
    }
  }
  running_.store(false);
}

}  // namespace ppc::runtime
