#include "runtime/task_lifecycle.h"

#include <functional>

#include "common/clock.h"
#include "common/log.h"
#include "common/string_util.h"

namespace ppc::runtime {

const std::string& TaskContext::worker_id() const { return owner_.id(); }

bool TaskContext::crash_site(const std::string& site, const std::string& key) {
  FaultInjector* faults = owner_.faults();
  return faults != nullptr && faults->fire(site, key);
}

std::shared_ptr<const std::string> TaskContext::fetch(storage::StorageBackend& store,
                                                      const std::string& bucket,
                                                      const std::string& key) {
  return retry([&]() -> std::shared_ptr<const std::string> {
    auto data = store.get(bucket, key);
    if (data == nullptr) return nullptr;
    // Validate the download against the upload-time checksum (ETag): a
    // delivery corrupted in flight counts as a miss and is re-fetched.
    // Logical objects (empty payload, identity-derived etag) have no bytes
    // to validate.
    const auto expected = store.etag(bucket, key);
    if (expected.has_value() && !data->empty() && ppc::fnv1a64(*data) != *expected) {
      return nullptr;
    }
    return data;
  });
}

void TaskContext::count(std::string_view name, std::int64_t delta) {
  owner_.metrics().counter(owner_.scoped(name)).inc(delta);
}

void TaskContext::observe(std::string_view name, double value) {
  owner_.metrics().histogram(owner_.scoped(name)).record(value);
}

Span TaskContext::span(std::string_view name) {
  Tracer* tr = owner_.tracer();
  if (tr == nullptr) return Span{};
  return tr->span(name, "task", owner_.id(), message_->id);
}

MetricsRegistry& TaskContext::metrics() { return owner_.metrics(); }

TaskLifecycle::TaskLifecycle(std::string id, std::shared_ptr<cloudq::MessageQueue> task_queue,
                             TaskHandler handler, LifecycleConfig config,
                             std::shared_ptr<MetricsRegistry> metrics, FaultInjector* faults)
    : id_(std::move(id)),
      task_queue_(std::move(task_queue)),
      handler_(std::move(handler)),
      config_(config),
      metrics_(metrics ? std::move(metrics) : std::make_shared<MetricsRegistry>()),
      faults_(faults),
      rng_(std::hash<std::string>{}(id_)) {
  PPC_REQUIRE(task_queue_ != nullptr, "task lifecycle needs a task queue");
  PPC_REQUIRE(handler_ != nullptr, "task lifecycle needs a handler");
  PPC_REQUIRE(config_.visibility_timeout > 0.0, "visibility timeout must be positive");
  PPC_REQUIRE(config_.receive_batch >= 1 &&
                  config_.receive_batch <= static_cast<int>(cloudq::MessageQueue::kBatchLimit),
              "receive_batch must be in [1, MessageQueue::kBatchLimit]");
  PPC_REQUIRE(config_.delete_batch >= 1, "delete_batch must be >= 1");
}

PollPolicy TaskLifecycle::poll_policy() const {
  PollPolicy p;
  p.min_interval = config_.poll_interval;
  p.max_interval = config_.poll_interval_max < 0.0 ? 8.0 * config_.poll_interval
                                                   : config_.poll_interval_max;
  p.multiplier = config_.poll_multiplier;
  p.jitter = config_.poll_jitter;
  return p;
}

TaskLifecycle::~TaskLifecycle() {
  request_stop();
  if (thread_.joinable()) thread_.join();
}

void TaskLifecycle::start() {
  PPC_REQUIRE(!thread_.joinable(), "task lifecycle already started");
  running_.store(true);
  thread_ = std::thread([this] { poll_loop(); });
}

void TaskLifecycle::request_stop() { stop_requested_.store(true); }

void TaskLifecycle::join() {
  if (thread_.joinable()) thread_.join();
}

std::string TaskLifecycle::scoped(std::string_view name) const {
  std::string out;
  out.reserve(id_.size() + 1 + name.size());
  out += id_;
  out += '.';
  out += name;
  return out;
}

std::int64_t TaskLifecycle::counter(std::string_view name) const {
  return metrics_->counter_value(scoped(name));
}

void TaskLifecycle::die(const std::string& reason) {
  metrics_->counter(scoped(counters::kCrashed)).inc();
  metrics_->emit({"worker.crashed", {{"worker", id_}, {"reason", reason}}});
}

void TaskLifecycle::after_failed_delivery(const cloudq::Message& message) {
  const int max_rc = task_queue_->max_receive_count();
  if (max_rc > 0 && message.receive_count >= max_rc) {
    // This delivery used up the message's last permitted receive: rather
    // than letting the redrive sweep find it later, park it in the DLQ now
    // so siblings never see it again (poison-message handling).
    if (task_queue_->move_to_dlq(message.receipt_handle)) {
      metrics_->counter(scoped(counters::kPoisonTasks)).inc();
      metrics_->set_gauge("cloudq." + task_queue_->name() + ".dlq_depth",
                          static_cast<double>(task_queue_->dlq_depth()));
      metrics_->emit({"task.poisoned", {{"worker", id_}, {"message", message.id}}});
      if (Tracer* tr = config_.tracer; tr != nullptr && tr->enabled()) {
        tr->instant("dlq.park", "lifecycle", id_, message.id,
                    {{"receive_count", std::to_string(message.receive_count)}});
      }
      return;
    }
  }
  if (config_.abandon_visibility >= 0.0) {
    // The attempt is over; no point making the retry wait out the rest of
    // the visibility window.
    task_queue_->change_visibility(message.receipt_handle, config_.abandon_visibility);
  }
}

void TaskLifecycle::poll_loop() {
  Tracer* tr = config_.tracer;
  if (tr != nullptr) Tracer::bind_thread(id_);
  int idle_polls = 0;
  Seconds idle_since = -1.0;  // tracer-clock time this worker went idle
  // Busy/idle level for the monitoring plane: "<id>.busy" is 1 while a
  // delivery is being handled, 0 otherwise. A Monitor scraping the registry
  // sums these into fleet utilization; only transitions write the gauge.
  bool busy_gauge = false;
  const std::string busy_name = scoped("busy");
  metrics_->set_gauge(busy_name, 0.0);
  AdaptivePoll poll(poll_policy());
  const std::size_t batch = static_cast<std::size_t>(config_.receive_batch);
  std::vector<cloudq::Message> deliveries;  // reused envelope buffer across polls
  deliveries.reserve(batch);
  bool died = false;
  while (!stop_requested_.load() && !died) {
    last_heartbeat_.store(ppc::monotonic_now());
    const bool tracing = tr != nullptr && tr->enabled();
    const Seconds poll_start = tracing ? tr->now() : 0.0;
    deliveries.clear();
    if (batch == 1) {
      if (auto message = task_queue_->receive(config_.visibility_timeout)) {
        deliveries.push_back(std::move(*message));
      }
    } else {
      task_queue_->receive_batch(batch, config_.visibility_timeout, deliveries);
    }
    if (deliveries.empty()) {
      ++idle_polls;
      // Idle is the natural flush point: no further completions are coming
      // to fill the ack buffer.
      flush_pending_deletes();
      if (tracing && idle_since < 0.0) idle_since = poll_start;
      if (busy_gauge) {
        metrics_->set_gauge(busy_name, 0.0);
        busy_gauge = false;
      }
      if (config_.max_idle_polls >= 0 && idle_polls >= config_.max_idle_polls) break;
      sleep_for(poll.next_idle_sleep(rng_));
      continue;
    }
    idle_polls = 0;
    poll.on_delivery();  // collapse the idle backoff to tight polling
    if (!busy_gauge) {
      metrics_->set_gauge(busy_name, 1.0);
      busy_gauge = true;
    }
    if (tracing && idle_since >= 0.0) {
      // One span covering the whole idle stretch, closed now that a
      // message is in hand.
      tr->span_from(idle_since, "queue.wait", "lifecycle", id_).close();
      idle_since = -1.0;
    }
    for (cloudq::Message& message : deliveries) {
      if (!handle_delivery(message, tr, tracing, poll_start)) {
        died = true;  // crashed workers drop the rest of the batch (it stays hidden)
        break;
      }
      if (stop_requested_.load()) break;  // unhandled messages resurface on timeout
    }
  }
  // A crashed worker cannot flush its buffered acks — those messages get
  // redelivered and idempotency absorbs them. A clean exit acks what it owes.
  if (!died) flush_pending_deletes();
  running_.store(false);
  metrics_->set_gauge(busy_name, 0.0);  // covers crash/stop exits mid-task
  if (tr != nullptr) Tracer::clear_thread();
}

bool TaskLifecycle::handle_delivery(cloudq::Message& message, Tracer* tr, bool tracing,
                                    Seconds poll_start) {
  if (tracing) {
    tr->span_from(poll_start, "dequeue", "lifecycle", id_, message.id).close();
    Tracer::bind_thread_task(message.id);
  }
  metrics_->counter(scoped(counters::kMessagesReceived)).inc();
  if (message.receive_count > 1) {
    metrics_->counter(scoped(counters::kRedeliveries)).inc();
    if (tracing) {
      tr->instant("redelivery", "lifecycle", id_, message.id,
                  {{"receive_count", std::to_string(message.receive_count)}});
    }
  }
  if (!message.intact()) {
    // The payload failed its body checksum: this delivery was corrupted in
    // flight. The stored message is fine — abandon and let a clean
    // redelivery carry the real bytes.
    metrics_->counter(scoped(counters::kCorruptDeliveries)).inc();
    if (tracing) tr->instant("corrupt_delivery", "lifecycle", id_, message.id);
    after_failed_delivery(message);
    if (tracing) Tracer::bind_thread_task({});
    return true;
  }

  // Envelope span for this delivery: everything the handler does (child
  // spans, service ops) nests inside it on this worker's track.
  Span task_span = tracing ? tr->span("task", "lifecycle", id_, message.id) : Span{};
  TaskContext ctx(*this, message);
  TaskOutcome outcome;
  try {
    outcome = handler_(ctx);
  } catch (const std::exception& e) {
    // Leave the message; it reappears after its visibility timeout.
    metrics_->counter(scoped(counters::kExecutionsFailed)).inc();
    PPC_WARN << "worker " << id_ << ": task failed: " << e.what();
    outcome = TaskOutcome::kAbandoned;
  }
  last_heartbeat_.store(ppc::monotonic_now());

  if (outcome == TaskOutcome::kCrashed) {
    // The worker dies mid-task. The message it held stays invisible until
    // its timeout lapses, then another worker picks it up. The envelope
    // span is detached, not closed: a dead process cannot close its spans,
    // so it stays open until the supervisor reaps it (abandoned=true).
    task_span.arg("outcome", "crashed");
    task_span.detach();
    die("fault injection");
    return false;
  }
  if (outcome == TaskOutcome::kCompleted) {
    // Delete only after completion — a stale receipt (someone else re-ran
    // the task after a visibility timeout) just fails, and idempotent
    // tasks make either outcome correct.
    if (config_.delete_batch <= 1) {
      Span ack = tracing ? tr->span("ack.delete", "lifecycle", id_, message.id) : Span{};
      const bool deleted = task_queue_->delete_message(message.receipt_handle);
      ack.close();
      if (!deleted) metrics_->counter(scoped(counters::kDeletesFailed)).inc();
    } else {
      pending_deletes_.push_back(message.receipt_handle);
      if (pending_deletes_.size() >= static_cast<std::size_t>(config_.delete_batch)) {
        flush_pending_deletes();
      }
    }
    metrics_->counter(scoped(counters::kTasksCompleted)).inc();
    metrics_->emit({"task.completed", {{"worker", id_}, {"message", message.id}}});
    task_span.arg("outcome", "completed");
  } else if (outcome == TaskOutcome::kAbandoned) {
    task_span.arg("outcome", "abandoned");
    after_failed_delivery(message);
  }
  task_span.close();
  if (tracing) Tracer::bind_thread_task({});
  return true;
}

void TaskLifecycle::flush_pending_deletes() {
  if (pending_deletes_.empty()) return;
  Tracer* tr = config_.tracer;
  const bool tracing = tr != nullptr && tr->enabled();
  Span ack = tracing ? tr->span("ack.delete", "lifecycle", id_) : Span{};
  const std::size_t deleted = task_queue_->delete_batch(pending_deletes_);
  ack.close();
  if (deleted < pending_deletes_.size()) {
    metrics_->counter(scoped(counters::kDeletesFailed))
        .inc(static_cast<std::int64_t>(pending_deletes_.size() - deleted));
  }
  pending_deletes_.clear();
}

}  // namespace ppc::runtime
