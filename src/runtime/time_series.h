// Bounded time-series storage for the monitoring plane.
//
// A TimeSeries is a fixed-capacity ring buffer of (timestamp, value)
// samples: appending is O(1), the newest `capacity` samples are retained,
// and older ones are evicted silently (total() keeps counting them). The
// Monitor stores one series per watched signal — counters become *rate*
// series (delta / sample period, tolerant of counter resets), gauges and
// probes become *level* series — and computes windowed aggregates
// (min/mean/max/p95 over the last N samples) on demand, which is what the
// alarm rules and the ASCII dashboard read.
//
// Not thread-safe by itself: the Monitor serializes access (its scrape runs
// either on the DES event loop or on its own sampler thread, never both).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/units.h"

namespace ppc::runtime {

/// Aggregates over a trailing window of samples. p95 is nearest-rank over
/// the window's values (exact, like common/stats.h SampleSet).
struct WindowStats {
  std::size_t count = 0;
  double min = 0.0;
  double mean = 0.0;
  double max = 0.0;
  double p95 = 0.0;
};

class TimeSeries {
 public:
  struct Sample {
    Seconds time = 0.0;
    double value = 0.0;
  };

  /// `capacity` is the number of retained samples (>= 1).
  explicit TimeSeries(std::size_t capacity = 512);

  /// Appends a sample. Timestamps must be non-decreasing (monitor scrapes
  /// are clock-ordered); violating that only degrades window semantics, it
  /// is not checked.
  void add(Seconds time, double value);

  std::size_t capacity() const { return capacity_; }

  /// Retained samples (<= capacity).
  std::size_t size() const { return size_; }

  /// Samples ever added, including evicted ones.
  std::uint64_t total() const { return total_; }

  bool empty() const { return size_ == 0; }

  /// i-th retained sample; 0 is the OLDEST retained, size()-1 the newest.
  Sample at(std::size_t i) const;

  /// Newest sample; must not be called on an empty series.
  Sample latest() const;

  /// Aggregates over the newest `last_n` retained samples (0 = all
  /// retained). An empty series yields a zero WindowStats with count 0.
  WindowStats window(std::size_t last_n = 0) const;

 private:
  std::size_t capacity_;
  std::vector<Sample> ring_;
  std::size_t head_ = 0;  // index of the oldest retained sample
  std::size_t size_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace ppc::runtime
