#include "runtime/worker_supervisor.h"

#include <algorithm>
#include <utility>

#include "common/clock.h"
#include "common/error.h"
#include "common/log.h"
#include "runtime/retry_policy.h"

namespace ppc::runtime {

WorkerSupervisor::WorkerSupervisor(WorkerFactory factory, SupervisorConfig config)
    : factory_(std::move(factory)),
      config_(std::move(config)),
      metrics_(config_.metrics ? config_.metrics : std::make_shared<MetricsRegistry>()) {
  PPC_REQUIRE(factory_ != nullptr, "supervisor needs a worker factory");
  PPC_REQUIRE(config_.num_workers >= 1, "supervisor needs at least one slot");
  PPC_REQUIRE(config_.max_restarts_per_slot >= 0, "max_restarts_per_slot must be >= 0");
  PPC_REQUIRE(config_.initial_backoff >= 0.0 && config_.max_backoff >= 0.0,
              "backoff must be non-negative");
  PPC_REQUIRE(config_.backoff_multiplier >= 1.0, "backoff multiplier must be >= 1");
  PPC_REQUIRE(config_.watch_interval > 0.0, "watch interval must be positive");
  PPC_REQUIRE(config_.stall_timeout >= 0.0, "stall timeout must be >= 0");
}

WorkerSupervisor::~WorkerSupervisor() { stop(); }

void WorkerSupervisor::start() {
  std::lock_guard lock(mu_);
  PPC_REQUIRE(!started_, "supervisor already started");
  started_ = true;
  slots_.reserve(static_cast<std::size_t>(config_.num_workers));
  for (int s = 0; s < config_.num_workers; ++s) {
    Slot slot;
    slot.base_id = config_.id_prefix + std::to_string(s);
    slot.worker = factory_(slot.base_id, 0);
    PPC_REQUIRE(slot.worker.lifecycle != nullptr, "factory must supply a lifecycle");
    slots_.push_back(std::move(slot));
  }
  watch_thread_ = std::thread([this] { watch_loop(); });
}

void WorkerSupervisor::stop() {
  {
    std::lock_guard lock(mu_);
    if (!started_ || stopped_) return;
    stopped_ = true;
  }
  stop_requested_.store(true);
  if (watch_thread_.joinable()) watch_thread_.join();
  // The watch loop is down; no new workers can appear, so the slot table is
  // stable without the lock (held briefly anyway for consistency).
  std::vector<TaskLifecycle*> to_stop;
  {
    std::lock_guard lock(mu_);
    for (Slot& slot : slots_) {
      if (slot.worker.lifecycle != nullptr) to_stop.push_back(slot.worker.lifecycle);
    }
    for (SupervisedWorker& w : retired_) {
      if (w.lifecycle != nullptr) to_stop.push_back(w.lifecycle);
    }
  }
  for (TaskLifecycle* lc : to_stop) lc->request_stop();
  for (TaskLifecycle* lc : to_stop) lc->join();
}

int WorkerSupervisor::alive_workers() const {
  std::lock_guard lock(mu_);
  int n = 0;
  for (const Slot& slot : slots_) {
    const TaskLifecycle* lc = slot.worker.lifecycle;
    if (lc != nullptr && lc->running() && !lc->crashed()) ++n;
  }
  return n;
}

void WorkerSupervisor::drain_slot(int slot_index) {
  std::lock_guard lock(mu_);
  PPC_REQUIRE(started_, "supervisor not started");
  PPC_REQUIRE(slot_index >= 0 && slot_index < static_cast<int>(slots_.size()),
              "drain_slot: no such slot: " + std::to_string(slot_index));
  Slot& slot = slots_[slot_index];
  if (slot.draining || slot.gave_up) return;
  TaskLifecycle* lc = slot.worker.lifecycle;
  if (lc == nullptr) return;  // mid-replacement; nothing to drain
  slot.draining = true;
  lc->request_stop();
  if (Tracer* tr = config_.tracer; tr != nullptr && tr->enabled()) {
    tr->instant("worker.draining", "supervisor", "supervisor", /*task=*/{},
                {{"worker", lc->id()}});
  }
}

Seconds WorkerSupervisor::backoff_for(int restart_number) const {
  Seconds b = config_.initial_backoff;
  for (int i = 1; i < restart_number; ++i) b *= config_.backoff_multiplier;
  return std::min(b, config_.max_backoff);
}

void WorkerSupervisor::check_slot_locked(Slot& slot, Seconds now) {
  if (slot.gave_up || slot.drained) return;
  TaskLifecycle* lc = slot.worker.lifecycle;

  if (slot.draining && lc != nullptr) {
    if (lc->running()) return;  // still finishing its in-flight task
    if (!lc->crashed()) {
      // The worker honoured the drain: clean exit, slot stays empty.
      slot.drained = true;
      metrics_->counter("supervisor.drains").inc();
      metrics_->emit({"supervisor.drained", {{"worker", lc->id()}}});
      if (Tracer* tr = config_.tracer; tr != nullptr && tr->enabled()) {
        tr->instant("worker.drained", "supervisor", "supervisor", /*task=*/{},
                    {{"worker", lc->id()}});
      }
      return;
    }
    // Hard-killed mid-drain (revocation notice expired): this is a crash
    // like any other — fall through to the detection/restart path.
    slot.draining = false;
  }

  if (slot.died_at < 0.0) {
    // Slot has a live worker (a retired-stall slot keeps died_at >= 0 and a
    // null lifecycle until its replacement is provisioned below).
    if (lc == nullptr) return;
    const bool crashed = !lc->running() && lc->crashed();
    const bool stalled = config_.stall_timeout > 0.0 && lc->running() &&
                         lc->last_heartbeat() > 0.0 &&
                         now - lc->last_heartbeat() > config_.stall_timeout;
    if (!crashed && !stalled) return;

    // Reap the dead worker's trace state first: any span it held open when
    // it died (the mid-task envelope, a fetch in flight) is closed here with
    // abandoned=true instead of leaking in the open-span table.
    if (Tracer* tr = config_.tracer; tr != nullptr && tr->enabled()) {
      const std::size_t reaped = tr->abandon_open_spans(lc->id());
      tr->instant(crashed ? "worker.crashed" : "worker.stalled", "supervisor", "supervisor",
                  /*task=*/{},
                  {{"worker", lc->id()}, {"abandoned_spans", std::to_string(reaped)}});
    }

    if (slot.restarts_done >= config_.max_restarts_per_slot) {
      slot.gave_up = true;
      metrics_->counter("supervisor.gave_up").inc();
      metrics_->emit({"supervisor.gave_up", {{"worker", lc->id()}}});
      PPC_WARN << "supervisor: slot " << slot.base_id << " exhausted its "
               << config_.max_restarts_per_slot << " restarts";
      return;
    }
    slot.died_at = now;
    slot.restart_at = now + backoff_for(slot.restarts_done + 1);
    if (stalled) {
      // Can't kill a thread: retire the stalled worker (ask it to stop, join
      // it at shutdown) and free the slot for a replacement — "assume the VM
      // is gone, provision another".
      lc->request_stop();
      retired_.push_back(std::move(slot.worker));
      slot.worker = SupervisedWorker{};
    }
    return;
  }

  if (now < slot.restart_at) return;  // still backing off

  ++slot.restarts_done;
  ++slot.incarnation;
  const std::string new_id = slot.base_id + "#" + std::to_string(slot.incarnation);
  // A crashed worker's lifecycle thread has exited; dropping the owner here
  // (overwritten below) joins it. Retired (stalled) workers were moved out
  // already.
  slot.worker = factory_(new_id, slot.incarnation);
  PPC_REQUIRE(slot.worker.lifecycle != nullptr, "factory must supply a lifecycle");
  metrics_->counter("supervisor.restarts").inc();
  metrics_->histogram("supervisor.recovery_seconds").record(now - slot.died_at);
  metrics_->emit({"supervisor.restarted", {{"worker", new_id}}});
  if (Tracer* tr = config_.tracer; tr != nullptr && tr->enabled()) {
    tr->instant("worker.restarted", "supervisor", "supervisor", /*task=*/{},
                {{"worker", new_id}});
  }
  slot.died_at = -1.0;
}

void WorkerSupervisor::watch_loop() {
  while (!stop_requested_.load()) {
    {
      std::lock_guard lock(mu_);
      const Seconds now = ppc::monotonic_now();
      for (Slot& slot : slots_) check_slot_locked(slot, now);
    }
    sleep_for(config_.watch_interval);
  }
}

}  // namespace ppc::runtime
