#include "runtime/monitor.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/clock.h"
#include "common/error.h"
#include "runtime/retry_policy.h"

namespace ppc::runtime {

namespace {

// Deterministic double formatting for exports: shortest round-trippable-ish
// form with a fixed precision, so two identical DES runs render identical
// bytes and small values don't explode into 17 digits of noise.
std::string fmt_value(double v) {
  if (std::isnan(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string fmt_time(Seconds t) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", t);
  return buf;
}

void append_json_string(std::ostringstream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

}  // namespace

std::string AlarmRule::to_text() const {
  std::ostringstream os;
  os << series << (op == Op::kGreater ? " > " : " < ") << fmt_value(threshold)
     << " for " << fmt_value(sustain) << "s";
  return os.str();
}

AlarmRule parse_alarm(const std::string& text) {
  AlarmRule rule;
  std::string body = text;
  // Optional "name:" prefix. A ':' can't appear in series names (they are
  // dotted metric names), so the first colon, if any, ends the name.
  if (auto colon = body.find(':'); colon != std::string::npos) {
    rule.name = trim(body.substr(0, colon));
    body = body.substr(colon + 1);
  }
  // "<series> <op> <threshold> for <duration>"
  std::size_t op_pos = body.find_first_of("<>");
  PPC_REQUIRE(op_pos != std::string::npos,
              "alarm rule needs '<' or '>': " + text);
  rule.series = trim(body.substr(0, op_pos));
  PPC_REQUIRE(!rule.series.empty(), "alarm rule has empty series: " + text);
  rule.op = body[op_pos] == '>' ? AlarmRule::Op::kGreater : AlarmRule::Op::kLess;

  std::string rest = body.substr(op_pos + 1);
  const std::size_t for_pos = rest.find(" for ");
  PPC_REQUIRE(for_pos != std::string::npos,
              "alarm rule needs 'for <duration>': " + text);
  const std::string threshold_str = trim(rest.substr(0, for_pos));
  std::string duration_str = trim(rest.substr(for_pos + 5));
  PPC_REQUIRE(!threshold_str.empty() && !duration_str.empty(),
              "alarm rule missing threshold or duration: " + text);

  std::size_t consumed = 0;
  try {
    rule.threshold = std::stod(threshold_str, &consumed);
  } catch (const std::exception&) {
    throw ppc::InvalidArgument("alarm rule has bad threshold: " + text);
  }
  PPC_REQUIRE(consumed == threshold_str.size(),
              "alarm rule has bad threshold: " + text);

  double unit = 1.0;
  const char suffix = duration_str.back();
  if (suffix == 's' || suffix == 'm' || suffix == 'h') {
    unit = suffix == 's' ? 1.0 : suffix == 'm' ? 60.0 : 3600.0;
    duration_str.pop_back();
  }
  try {
    rule.sustain = std::stod(duration_str, &consumed) * unit;
  } catch (const std::exception&) {
    throw ppc::InvalidArgument("alarm rule has bad duration: " + text);
  }
  PPC_REQUIRE(consumed == duration_str.size() && rule.sustain >= 0.0,
              "alarm rule has bad duration: " + text);

  if (rule.name.empty()) rule.name = rule.to_text();
  return rule;
}

Monitor::Monitor(MetricsRegistry& registry, MonitorConfig config)
    : registry_(registry), config_(config) {
  PPC_REQUIRE(config_.period > 0.0, "monitor period must be > 0");
  PPC_REQUIRE(config_.capacity >= 1, "monitor capacity must be >= 1");
}

Monitor::~Monitor() { stop(); }

void Monitor::add_probe(std::string series, ProbeKind kind,
                        std::function<double()> fn, double scale) {
  PPC_REQUIRE(fn != nullptr, "monitor probe needs a callback");
  std::lock_guard lock(mu_);
  probes_.push_back(Probe{std::move(series), kind, std::move(fn), scale});
}

void Monitor::add_alarm(AlarmRule rule) {
  PPC_REQUIRE(!rule.series.empty(), "alarm rule needs a series");
  if (rule.name.empty()) rule.name = rule.to_text();
  std::lock_guard lock(mu_);
  alarms_.push_back(AlarmState{std::move(rule)});
}

Monitor::SeriesEntry& Monitor::series_locked(std::string_view name,
                                             ProbeKind kind) {
  auto it = series_.find(std::string(name));
  if (it == series_.end()) {
    it = series_
             .try_emplace(std::string(name), config_.capacity, kind)
             .first;
  }
  return it->second;
}

double Monitor::rate_of(double prev, double cur, Seconds dt) {
  if (dt <= 0.0) return 0.0;
  // Counter-reset tolerance: monotone counters only ever grow, so a drop
  // means the source restarted — treat the current value as accumulation
  // since the reset rather than emitting a huge negative rate.
  const double delta = cur >= prev ? cur - prev : cur;
  return delta / dt;
}

void Monitor::sample_at(Seconds now) {
  std::lock_guard lock(mu_);
  const Seconds dt = last_sample_ < 0.0 ? 0.0 : now - last_sample_;

  for (Probe& probe : probes_) {
    const double raw = probe.fn();
    double value = 0.0;
    if (probe.kind == ProbeKind::kLevel) {
      value = raw * probe.scale;
    } else {
      // First sighting records rate 0 — there is no baseline to rate
      // against, and a spike of `total / epsilon` would poison the series.
      value = probe.has_prev ? rate_of(probe.prev, raw, dt) * probe.scale : 0.0;
      probe.has_prev = true;
      probe.prev = raw;
    }
    series_locked(probe.series, probe.kind).ts.add(now, value);
  }

  if (config_.scrape_registry) {
    registry_.scrape(scratch_);
    for (const auto& [name, raw] : scratch_.counters) {
      const double cur = static_cast<double>(raw);
      double rate = 0.0;
      if (auto it = counter_prev_.find(name); it != counter_prev_.end()) {
        rate = rate_of(it->second, cur, dt);
        it->second = cur;
      } else {
        counter_prev_.emplace(name, cur);
      }
      std::string series_name(name);
      series_name += ".rate";
      series_locked(series_name, ProbeKind::kCumulative).ts.add(now, rate);
    }
    for (const auto& [name, value] : scratch_.gauges) {
      series_locked(name, ProbeKind::kLevel).ts.add(now, value);
    }
  }

  evaluate_alarms_locked(now);
  last_sample_ = now;
  ++samples_;
}

void Monitor::evaluate_alarms_locked(Seconds now) {
  for (AlarmState& state : alarms_) {
    auto it = series_.find(state.rule.series);
    if (it == series_.end() || it->second.ts.empty()) continue;
    const double value = it->second.ts.latest().value;
    const bool cond = state.rule.op == AlarmRule::Op::kGreater
                          ? value > state.rule.threshold
                          : value < state.rule.threshold;
    if (!cond) {
      // Episode over: clear so a later breach can fire again.
      state.true_since = -1.0;
      state.fired = false;
      continue;
    }
    if (state.true_since < 0.0) state.true_since = now;
    const Seconds held = now - state.true_since;
    if (!state.fired && held >= state.rule.sustain) {
      state.fired = true;
      firings_.push_back(
          AlarmFiring{state.rule.name, state.rule.series, now, value, held});
      MetricEvent event;
      event.name = "alarm.fired";
      event.fields = {{"alarm", state.rule.name},
                      {"series", state.rule.series},
                      {"value", fmt_value(value)},
                      {"held_s", fmt_value(held)}};
      // emit() grabs the registry lock, not mu_ — no lock-order cycle, the
      // registry never calls back into the monitor.
      registry_.emit(std::move(event));
    }
  }
}

std::uint64_t Monitor::samples() const {
  std::lock_guard lock(mu_);
  return samples_;
}

void Monitor::start(std::shared_ptr<const ppc::Clock> clock) {
  PPC_REQUIRE(!thread_.joinable(), "monitor already started");
  if (!clock) clock = std::make_shared<SystemClock>();
  stop_requested_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this, clock = std::move(clock)] {
    // Sample immediately so short-lived runs still get at least one tick,
    // then on every period boundary until stop().
    while (!stop_requested_.load(std::memory_order_relaxed)) {
      sample_at(clock->now());
      sleep_for(config_.period);
    }
    sample_at(clock->now());  // final tick captures the drained end state
  });
}

void Monitor::stop() {
  if (!thread_.joinable()) return;
  stop_requested_.store(true, std::memory_order_relaxed);
  thread_.join();
}

std::vector<std::string> Monitor::series_names() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, _] : series_) out.push_back(name);
  return out;
}

const TimeSeries* Monitor::series(const std::string& name) const {
  std::lock_guard lock(mu_);
  auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second.ts;
}

bool Monitor::degraded() const {
  std::lock_guard lock(mu_);
  return !firings_.empty();
}

std::vector<AlarmFiring> Monitor::firings() const {
  std::lock_guard lock(mu_);
  return firings_;
}

std::string Monitor::to_json() const {
  std::lock_guard lock(mu_);
  std::ostringstream os;
  os << "{\n  \"period\": " << fmt_value(config_.period)
     << ",\n  \"samples\": " << samples_ << ",\n  \"series\": {";
  bool first = true;
  for (const auto& [name, entry] : series_) {
    os << (first ? "\n" : ",\n") << "    ";
    first = false;
    append_json_string(os, name);
    os << ": {\"kind\": \""
       << (entry.kind == ProbeKind::kCumulative ? "rate" : "level")
       << "\", \"points\": [";
    for (std::size_t i = 0; i < entry.ts.size(); ++i) {
      const TimeSeries::Sample s = entry.ts.at(i);
      os << (i == 0 ? "" : ", ") << '[' << fmt_time(s.time) << ", "
         << fmt_value(s.value) << ']';
    }
    const WindowStats w = entry.ts.window(config_.window);
    os << "], \"window\": {\"count\": " << w.count << ", \"min\": "
       << fmt_value(w.min) << ", \"mean\": " << fmt_value(w.mean)
       << ", \"max\": " << fmt_value(w.max) << ", \"p95\": " << fmt_value(w.p95)
       << "}}";
  }
  os << (first ? "},\n" : "\n  },\n");
  os << "  \"alarms\": [";
  for (std::size_t i = 0; i < firings_.size(); ++i) {
    const AlarmFiring& f = firings_[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"alarm\": ";
    append_json_string(os, f.alarm);
    os << ", \"series\": ";
    append_json_string(os, f.series);
    os << ", \"at\": " << fmt_time(f.at) << ", \"value\": " << fmt_value(f.value)
       << ", \"held\": " << fmt_value(f.held) << "}";
  }
  os << (firings_.empty() ? "],\n" : "\n  ],\n");
  os << "  \"degraded\": " << (firings_.empty() ? "false" : "true") << "\n}\n";
  return os.str();
}

std::string Monitor::to_prometheus() const {
  std::lock_guard lock(mu_);
  std::ostringstream os;
  for (const auto& [name, entry] : series_) {
    if (entry.ts.empty()) continue;
    std::string metric = "ppc_";
    for (const char c : name) {
      metric += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
    }
    const TimeSeries::Sample s = entry.ts.latest();
    os << "# TYPE " << metric << " gauge\n"
       << metric << ' ' << fmt_value(s.value) << ' '
       << static_cast<std::int64_t>(s.time * 1000.0) << '\n';
  }
  return os.str();
}

std::string Monitor::dashboard(std::size_t width) const {
  std::lock_guard lock(mu_);
  static const char* kBlocks[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  std::ostringstream os;
  std::size_t name_width = 8;
  for (const auto& [name, _] : series_) name_width = std::max(name_width, name.size());
  for (const auto& [name, entry] : series_) {
    if (entry.ts.empty()) continue;
    const WindowStats w = entry.ts.window(config_.window);
    // Downsample the retained window onto `width` columns; each column shows
    // the max of its bucket so short spikes stay visible.
    const std::size_t n = entry.ts.size();
    const std::size_t cols = std::min(width, n);
    std::string spark;
    for (std::size_t c = 0; c < cols; ++c) {
      const std::size_t lo = c * n / cols;
      const std::size_t hi = std::max(lo + 1, (c + 1) * n / cols);
      double bucket = entry.ts.at(lo).value;
      for (std::size_t i = lo + 1; i < hi; ++i) {
        bucket = std::max(bucket, entry.ts.at(i).value);
      }
      const double span = w.max - w.min;
      const double norm = span > 0.0 ? (bucket - w.min) / span : 0.0;
      const int level = std::min(7, static_cast<int>(norm * 8.0));
      spark += kBlocks[std::max(0, level)];
    }
    char line[160];
    std::snprintf(line, sizeof(line), "%-*s  last %10.3f  min %10.3f  mean %10.3f  max %10.3f  p95 %10.3f  ",
                  static_cast<int>(name_width), name.c_str(),
                  entry.ts.latest().value, w.min, w.mean, w.max, w.p95);
    os << line << spark << '\n';
  }
  if (!firings_.empty()) {
    os << "alarms:\n";
    for (const AlarmFiring& f : firings_) {
      char line[200];
      std::snprintf(line, sizeof(line), "  [%.3fs] %s (%s = %.3f, held %.1fs)\n",
                    f.at, f.alarm.c_str(), f.series.c_str(), f.value, f.held);
      os << line;
    }
  } else {
    os << "alarms: none\n";
  }
  return os.str();
}

}  // namespace ppc::runtime
