#include "runtime/time_series.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace ppc::runtime {

TimeSeries::TimeSeries(std::size_t capacity) : capacity_(capacity) {
  PPC_REQUIRE(capacity_ >= 1, "time series capacity must be >= 1");
  ring_.resize(capacity_);
}

void TimeSeries::add(Seconds time, double value) {
  const std::size_t slot = (head_ + size_) % capacity_;
  ring_[slot] = {time, value};
  if (size_ < capacity_) {
    ++size_;
  } else {
    head_ = (head_ + 1) % capacity_;  // overwrote the oldest sample
  }
  ++total_;
}

TimeSeries::Sample TimeSeries::at(std::size_t i) const {
  PPC_REQUIRE(i < size_, "time series index out of range");
  return ring_[(head_ + i) % capacity_];
}

TimeSeries::Sample TimeSeries::latest() const {
  PPC_REQUIRE(size_ > 0, "latest() on empty time series");
  return ring_[(head_ + size_ - 1) % capacity_];
}

WindowStats TimeSeries::window(std::size_t last_n) const {
  WindowStats stats;
  const std::size_t n = (last_n == 0 || last_n > size_) ? size_ : last_n;
  if (n == 0) return stats;
  std::vector<double> values;
  values.reserve(n);
  double sum = 0.0;
  for (std::size_t i = size_ - n; i < size_; ++i) {
    const double v = at(i).value;
    values.push_back(v);
    sum += v;
  }
  std::sort(values.begin(), values.end());
  stats.count = n;
  stats.min = values.front();
  stats.max = values.back();
  stats.mean = sum / static_cast<double>(n);
  // Nearest-rank p95: the value at ceil(0.95 * n) in 1-based rank order.
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(0.95 * static_cast<double>(n)));
  stats.p95 = values[std::min(n, std::max<std::size_t>(rank, 1)) - 1];
  return stats;
}

}  // namespace ppc::runtime
