// Time-series monitoring plane: periodic metric sampling, alarms, exports.
//
// MetricsRegistry holds *instantaneous* state — counters only ever grow,
// gauges only remember their latest value. The paper's sustained-performance
// study (Fig 16-style variability over time) and the ROADMAP's elastic-fleet
// item both need *signals over time*: queue depth while the job drains,
// worker utilization through the tail, cost accrual per hour. The Monitor is
// the CloudWatch/Azure-Monitor analog that produces them:
//
//  * it scrapes a MetricsRegistry on a fixed period — every counter becomes
//    a RATE series ("<name>.rate", delta per second, tolerant of counter
//    resets) and every gauge a LEVEL series — using the registry's
//    single-lock-pass scrape() so the hot path stays allocation-light;
//  * probes add signals the registry never sees: callbacks evaluated at
//    each tick (queue depth from MessageQueue::approximate_visible, busy
//    workers from the engine, accrued dollars from cloud::Fleet). A kLevel
//    probe records its value; a kCumulative probe records the rate of its
//    value (x scale — $/s x 3600 = $/hr);
//  * declarative Alarm rules ("queue.depth > 100 for 60s") are evaluated at
//    every tick with sustain-duration semantics: the condition must hold
//    over the full sustain window to fire — flapping just under the window
//    never fires. A firing emits a MetricEvent ("alarm.fired") and marks the
//    monitor degraded;
//  * exports: to_json() (deterministic, byte-stable for DES runs),
//    to_prometheus() (text exposition of the latest samples), and
//    dashboard() (ASCII sparkline table for terminals).
//
// Clock discipline: the Monitor itself is clock-free. sample_at(now) takes
// the timestamp from the caller, so a DES driver schedules ticks on the
// simulation clock (deterministic, byte-identical reruns) while real-thread
// runs call start(), which spawns a sampler thread stamping ticks from an
// injectable ppc::Clock (steady_clock by default).
//
// Thread-safety: sample_at(), the exports, and the accessors all serialize
// on one mutex. add_probe()/add_alarm() must happen before sampling starts.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "runtime/metrics.h"
#include "runtime/time_series.h"

namespace ppc::runtime {

/// How a probe's value is turned into a series sample.
enum class ProbeKind {
  kLevel,       // record value() as-is (a gauge: queue depth, busy workers)
  kCumulative,  // record the rate of value() (a meter: bytes moved, $ spent)
};

struct MonitorConfig {
  /// Sample period. sample_at() callers enforce it themselves (the DES
  /// drivers schedule ticks at this spacing); start() sleeps it between
  /// ticks.
  Seconds period = 1.0;
  /// Ring capacity per series (oldest samples evicted beyond this).
  std::size_t capacity = 4096;
  /// Trailing window (in samples) for window aggregates in exports and the
  /// dashboard; 0 = all retained samples.
  std::size_t window = 0;
  /// Scrape the registry's counters/gauges into series on every tick. Off,
  /// only probes feed the monitor (cheaper when per-worker counters are
  /// numerous and the probes already cover the signals of interest).
  bool scrape_registry = true;
};

/// Threshold + sustain alarm over one series: fires when `series op
/// threshold` has held for at least `sustain` seconds of consecutive
/// samples. See parse_alarm for the text grammar.
struct AlarmRule {
  enum class Op { kGreater, kLess };

  std::string name;    // display name; defaults to the rule text
  std::string series;  // series to watch (e.g. "queue.tasks.depth")
  Op op = Op::kGreater;
  double threshold = 0.0;
  Seconds sustain = 0.0;

  /// Canonical text form: "<series> > <threshold> for <sustain>s".
  std::string to_text() const;
};

/// Parses "[name :] <series> <op> <threshold> for <duration>[s|m|h]", e.g.
///   "queue.tasks.depth > 100 for 60s"
///   "stalled: workers.idle_with_backlog > 0.5 for 30s"
///   "worker.utilization < 0.5 for 2m"
/// Throws ppc::InvalidArgument on malformed rules.
AlarmRule parse_alarm(const std::string& text);

/// One alarm firing (an episode fires at most once until it clears).
struct AlarmFiring {
  std::string alarm;
  std::string series;
  Seconds at = 0.0;      // sample time of the firing tick
  double value = 0.0;    // series value at that tick
  Seconds held = 0.0;    // how long the condition had held
};

class Monitor {
 public:
  explicit Monitor(MetricsRegistry& registry, MonitorConfig config = {});
  ~Monitor();

  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  const MonitorConfig& config() const { return config_; }

  /// Registers a probe evaluated at every tick, feeding series `series`.
  /// kCumulative probes record rate x `scale` (e.g. dollars with scale 3600
  /// gives $/hr); kLevel probes record value x `scale`. Call before
  /// sampling starts.
  void add_probe(std::string series, ProbeKind kind, std::function<double()> fn,
                 double scale = 1.0);

  /// Registers an alarm rule. Call before sampling starts.
  void add_alarm(AlarmRule rule);

  /// Takes one sample stamped `now`: runs the probes, scrapes the registry,
  /// evaluates the alarms. `now` must be non-decreasing across calls.
  void sample_at(Seconds now);

  /// Ticks taken so far.
  std::uint64_t samples() const;

  /// Real-thread mode: spawns a sampler thread calling sample_at(
  /// clock->now()) every period. `clock` defaults to a private SystemClock.
  void start(std::shared_ptr<const ppc::Clock> clock = nullptr);

  /// Stops the sampler thread (idempotent; no-op without start()).
  void stop();

  // -- state --
  std::vector<std::string> series_names() const;
  /// Borrowed view of one series; nullptr when unknown. Stable for the
  /// monitor's lifetime, but mutated by concurrent sampling — real-thread
  /// callers should stop() first.
  const TimeSeries* series(const std::string& name) const;
  /// True once any alarm has fired.
  bool degraded() const;
  std::vector<AlarmFiring> firings() const;

  // -- exports --
  /// Deterministic JSON dump: {"period", "samples", "series": {name:
  /// {"kind", "points": [[t,v],...], "window": {...}}}, "alarms": [...],
  /// "degraded"}. Identical DES runs produce identical bytes.
  std::string to_json() const;
  /// Prometheus text exposition of each series' latest sample
  /// (`ppc_<sanitized_name> <value>` with gauge TYPE lines).
  std::string to_prometheus() const;
  /// ASCII dashboard: one sparkline row per series plus the alarm log.
  std::string dashboard(std::size_t width = 44) const;

 private:
  struct SeriesEntry {
    TimeSeries ts;
    ProbeKind kind = ProbeKind::kLevel;  // how samples were derived

    explicit SeriesEntry(std::size_t capacity, ProbeKind k)
        : ts(capacity), kind(k) {}
  };

  struct Probe {
    std::string series;
    ProbeKind kind;
    std::function<double()> fn;
    double scale = 1.0;
    bool has_prev = false;
    double prev = 0.0;
  };

  struct AlarmState {
    AlarmRule rule;
    Seconds true_since = -1.0;  // < 0: condition currently false
    bool fired = false;         // fired during the current episode
  };

  /// Returns the series, creating it on first use. Caller holds mu_.
  SeriesEntry& series_locked(std::string_view name, ProbeKind kind);
  /// Rate with counter-reset tolerance: a decrease counts as a restart
  /// from zero. Caller holds mu_.
  static double rate_of(double prev, double cur, Seconds dt);
  void evaluate_alarms_locked(Seconds now);

  MetricsRegistry& registry_;
  const MonitorConfig config_;

  mutable std::mutex mu_;
  std::map<std::string, SeriesEntry> series_;
  std::vector<Probe> probes_;
  std::vector<AlarmState> alarms_;
  std::vector<AlarmFiring> firings_;
  MetricsRegistry::ScrapeBuffer scratch_;
  /// Previous raw value per scraped counter (names are views into the
  /// registry's stable keys).
  std::map<std::string_view, double> counter_prev_;
  Seconds last_sample_ = -1.0;
  std::uint64_t samples_ = 0;

  std::thread thread_;
  std::atomic<bool> stop_requested_{false};
};

}  // namespace ppc::runtime
