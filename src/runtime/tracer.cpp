#include "runtime/tracer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>

namespace ppc::runtime {

namespace {

// Worker-thread identity for service-layer ops and span_here(). One tracer
// is live per run, and a worker thread serves exactly one run, so plain
// thread_locals (not per-tracer) are sufficient and keep the hot path cheap.
thread_local std::string t_track;    // NOLINT(runtime/string)
thread_local std::string t_task;     // NOLINT(runtime/string)

void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_micros(std::string& out, Seconds s) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", s * 1e6);
  out += buf;
}

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

// --- Span guard ---

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    close();
    tracer_ = other.tracer_;
    id_ = other.id_;
    other.tracer_ = nullptr;
  }
  return *this;
}

void Span::arg(std::string_view key, std::string_view value) {
  if (tracer_ != nullptr) tracer_->span_arg(id_, key, value);
}

void Span::close() {
  if (tracer_ != nullptr) {
    tracer_->close_span(id_, /*failed=*/false);
    tracer_ = nullptr;
  }
}

// --- Tracer ---

Tracer::Tracer(std::shared_ptr<const ppc::Clock> clock) : clock_(std::move(clock)) {}

Tracer::~Tracer() = default;

Seconds Tracer::now() const {
  return clock_ ? clock_->now() : ppc::monotonic_now();
}

void Tracer::bind_thread(std::string_view track) { t_track.assign(track); }
void Tracer::bind_thread_task(std::string_view task) { t_task.assign(task); }
void Tracer::clear_thread() {
  t_track.clear();
  t_task.clear();
}

std::uint64_t Tracer::open_span(std::string_view name, std::string_view category,
                                std::string_view track, std::string_view task) {
  return open_span_at(now(), name, category, track, task);
}

std::uint64_t Tracer::open_span_at(Seconds start, std::string_view name,
                                   std::string_view category, std::string_view track,
                                   std::string_view task) {
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  SpanRecord rec;
  rec.id = id;
  rec.name.assign(name);
  rec.category.assign(category);
  rec.track.assign(track);
  rec.task.assign(task);
  rec.start = start;
  Shard& sh = shard_for(id);
  std::lock_guard lock(sh.mu);
  sh.open.push_back(std::move(rec));
  return id;
}

void Tracer::close_span(std::uint64_t id, bool failed) {
  const Seconds t = now();
  Shard& sh = shard_for(id);
  std::lock_guard lock(sh.mu);
  auto it = std::find_if(sh.open.begin(), sh.open.end(),
                         [id](const SpanRecord& r) { return r.id == id; });
  if (it == sh.open.end()) return;  // already reaped by abandon_open_spans
  it->end = t;
  if (failed) it->args.emplace_back("failed", "true");
  sh.done.push_back(std::move(*it));
  sh.open.erase(it);
}

void Tracer::span_arg(std::uint64_t id, std::string_view key, std::string_view value) {
  Shard& sh = shard_for(id);
  std::lock_guard lock(sh.mu);
  auto it = std::find_if(sh.open.begin(), sh.open.end(),
                         [id](const SpanRecord& r) { return r.id == id; });
  if (it == sh.open.end()) return;
  it->args.emplace_back(std::string(key), std::string(value));
}

Span Tracer::span(std::string_view name, std::string_view category, std::string_view track,
                  std::string_view task) {
  if (!enabled()) return Span{};
  return Span{this, open_span(name, category, track, task)};
}

Span Tracer::span_from(Seconds start, std::string_view name, std::string_view category,
                       std::string_view track, std::string_view task) {
  if (!enabled()) return Span{};
  return Span{this, open_span_at(start, name, category, track, task)};
}

Span Tracer::span_here(std::string_view name, std::string_view category) {
  if (!enabled()) return Span{};
  return Span{this, open_span(name, category, t_track, t_task)};
}

void Tracer::instant(std::string_view name, std::string_view category, std::string_view track,
                     std::string_view task,
                     std::initializer_list<std::pair<std::string_view, std::string_view>> args) {
  if (!enabled()) return;
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  SpanRecord rec;
  rec.id = id;
  rec.name.assign(name);
  rec.category.assign(category);
  rec.track.assign(track);
  rec.task.assign(task);
  rec.start = rec.end = now();
  for (const auto& [k, v] : args) rec.args.emplace_back(std::string(k), std::string(v));
  Shard& sh = shard_for(id);
  std::lock_guard lock(sh.mu);
  sh.done.push_back(std::move(rec));
}

std::size_t Tracer::abandon_open_spans(std::string_view track) {
  const Seconds t = now();
  std::size_t reaped = 0;
  for (Shard& sh : shards_) {
    std::lock_guard lock(sh.mu);
    for (auto it = sh.open.begin(); it != sh.open.end();) {
      if (it->track == track) {
        it->end = t;
        it->abandoned = true;
        sh.done.push_back(std::move(*it));
        it = sh.open.erase(it);
        ++reaped;
      } else {
        ++it;
      }
    }
  }
  return reaped;
}

std::uint64_t Tracer::op_begin(std::string_view site, std::string_view key) {
  if (!enabled()) return 0;
  std::string_view category = "service";
  if (site.rfind("cloudq.", 0) == 0) category = "queue";
  else if (site.rfind("blobstore.", 0) == 0) category = "blob";
  else if (site.rfind("cache.", 0) == 0) category = "cache";
  const std::uint64_t id = open_span(site, category, t_track, t_task);
  if (!key.empty()) span_arg(id, "key", key);
  return id;
}

void Tracer::op_end(std::uint64_t token, bool failed) {
  if (token == 0) return;
  close_span(token, failed);
}

void Tracer::op_cancel(std::uint64_t token) {
  if (token == 0) return;
  Shard& sh = shard_for(token);
  std::lock_guard lock(sh.mu);
  auto it = std::find_if(sh.open.begin(), sh.open.end(),
                         [token](const SpanRecord& r) { return r.id == token; });
  if (it != sh.open.end()) sh.open.erase(it);
}

std::vector<SpanRecord> Tracer::snapshot() const {
  std::vector<SpanRecord> out;
  for (const Shard& sh : shards_) {
    std::lock_guard lock(sh.mu);
    out.insert(out.end(), sh.done.begin(), sh.done.end());
  }
  std::sort(out.begin(), out.end(), [](const SpanRecord& a, const SpanRecord& b) {
    if (a.start != b.start) return a.start < b.start;
    return a.id < b.id;
  });
  return out;
}

std::size_t Tracer::completed_spans() const {
  std::size_t n = 0;
  for (const Shard& sh : shards_) {
    std::lock_guard lock(sh.mu);
    n += sh.done.size();
  }
  return n;
}

std::size_t Tracer::open_spans() const {
  std::size_t n = 0;
  for (const Shard& sh : shards_) {
    std::lock_guard lock(sh.mu);
    n += sh.open.size();
  }
  return n;
}

void Tracer::reset() {
  for (Shard& sh : shards_) {
    std::lock_guard lock(sh.mu);
    sh.done.clear();
    sh.open.clear();
  }
}

std::string Tracer::to_chrome_json() const {
  const std::vector<SpanRecord> spans = snapshot();

  // Stable tid assignment: tracks sorted by name.
  std::map<std::string, int> tids;
  for (const SpanRecord& s : spans) tids.emplace(s.track, 0);
  int next_tid = 0;
  for (auto& [track, tid] : tids) tid = next_tid++;

  std::string out;
  out.reserve(spans.size() * 160 + 256);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (const auto& [track, tid] : tids) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(tid);
    out += ",\"args\":{\"name\":";
    append_json_string(out, track);
    out += "}}";
  }
  for (const SpanRecord& s : spans) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":";
    append_json_string(out, s.name);
    out += ",\"cat\":";
    append_json_string(out, s.category);
    const bool is_instant = s.end <= s.start;
    out += is_instant ? ",\"ph\":\"i\",\"s\":\"t\"" : ",\"ph\":\"X\"";
    out += ",\"ts\":";
    append_micros(out, s.start);
    if (!is_instant) {
      out += ",\"dur\":";
      append_micros(out, s.duration());
    }
    out += ",\"pid\":1,\"tid\":";
    out += std::to_string(tids.at(s.track));
    out += ",\"args\":{";
    bool first_arg = true;
    if (!s.task.empty()) {
      out += "\"task\":";
      append_json_string(out, s.task);
      first_arg = false;
    }
    if (s.abandoned) {
      if (!first_arg) out += ",";
      out += "\"abandoned\":\"true\"";
      first_arg = false;
    }
    for (const auto& [k, v] : s.args) {
      if (!first_arg) out += ",";
      first_arg = false;
      append_json_string(out, k);
      out += ":";
      append_json_string(out, v);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

std::vector<TaskSummary> Tracer::task_summaries() const {
  std::map<std::string, TaskSummary> by_task;
  for (const SpanRecord& s : snapshot()) {
    if (s.task.empty()) continue;
    TaskSummary& t = by_task[s.task];
    t.task = s.task;
    if (s.abandoned) t.abandoned = true;
    if (s.name == "task") {
      ++t.attempts;
      t.total += s.duration();
      t.worker = s.track;  // snapshot is start-ordered: last wins
      if (!s.abandoned) {
        for (const auto& [k, v] : s.args) {
          if (k == "outcome" && v == "completed") t.completed = true;
        }
      }
    } else if (s.name == "compute") {
      t.compute += s.duration();
    } else if (s.name == "fetch.input") {
      t.fetch += s.duration();
    } else if (s.name == "upload.output") {
      t.upload += s.duration();
    } else if (s.name == "retry") {
      ++t.retries;
    }
  }
  std::vector<TaskSummary> out;
  out.reserve(by_task.size());
  for (auto& [task, summary] : by_task) out.push_back(std::move(summary));
  return out;
}

std::string Tracer::summary_table() const {
  const std::vector<TaskSummary> rows = task_summaries();
  std::ostringstream os;
  char line[256];
  std::snprintf(line, sizeof(line), "%-28s %-14s %8s %8s %10s %10s %10s %10s %s\n", "task",
                "worker", "attempts", "retries", "fetch_s", "compute_s", "upload_s", "total_s",
                "state");
  os << line;
  for (const TaskSummary& r : rows) {
    std::snprintf(line, sizeof(line), "%-28s %-14s %8d %8d %10.4f %10.4f %10.4f %10.4f %s\n",
                  r.task.c_str(), r.worker.c_str(), r.attempts, r.retries, r.fetch, r.compute,
                  r.upload, r.total,
                  r.abandoned ? "abandoned" : (r.completed ? "completed" : "open"));
    os << line;
  }
  return os.str();
}

LoadReport Tracer::load_report() const {
  LoadReport report;
  std::map<std::string, WorkerLoad> by_track;
  Seconds first_start = -1.0;
  Seconds last_end = 0.0;
  for (const SpanRecord& s : snapshot()) {
    if (s.name != "task") continue;
    WorkerLoad& w = by_track[s.track];
    w.worker = s.track;
    ++w.tasks;
    w.busy += s.duration();
    w.last_end = std::max(w.last_end, s.end);
    if (first_start < 0.0 || s.start < first_start) first_start = s.start;
    last_end = std::max(last_end, s.end);
  }
  if (first_start < 0.0) return report;
  report.makespan = last_end - first_start;

  double busy_sum = 0.0;
  double busy_max = 0.0;
  for (auto& [track, w] : by_track) {
    if (report.makespan > 0.0) {
      w.idle_tail_fraction = std::clamp((last_end - w.last_end) / report.makespan, 0.0, 1.0);
    }
    busy_sum += w.busy;
    busy_max = std::max(busy_max, w.busy);
    report.workers.push_back(std::move(w));
  }
  if (!report.workers.empty() && busy_sum > 0.0) {
    report.imbalance = busy_max / (busy_sum / static_cast<double>(report.workers.size()));
  }

  std::vector<double> compute;
  for (const TaskSummary& t : task_summaries()) compute.push_back(t.compute);
  std::sort(compute.begin(), compute.end());
  if (!compute.empty()) {
    report.compute_min = compute.front();
    report.compute_max = compute.back();
    report.compute_median = percentile(compute, 0.5);
    report.compute_p95 = percentile(compute, 0.95);
  }
  return report;
}

std::string LoadReport::to_text() const {
  std::ostringstream os;
  char line[192];
  std::snprintf(line, sizeof(line), "makespan %.4fs  imbalance %.3f  compute min/median/p95/max %.4f/%.4f/%.4f/%.4f s\n",
                makespan, imbalance, compute_min, compute_median, compute_p95, compute_max);
  os << line;
  std::snprintf(line, sizeof(line), "%-16s %6s %10s %10s %10s\n", "worker", "tasks", "busy_s",
                "last_end_s", "idle_tail");
  os << line;
  for (const WorkerLoad& w : workers) {
    std::snprintf(line, sizeof(line), "%-16s %6d %10.4f %10.4f %9.1f%%\n", w.worker.c_str(),
                  w.tasks, w.busy, w.last_end, w.idle_tail_fraction * 100.0);
    os << line;
  }
  return os.str();
}

}  // namespace ppc::runtime
