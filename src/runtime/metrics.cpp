#include "runtime/metrics.h"

#include <sstream>

namespace ppc::runtime {

namespace {
void append_json_string(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}
}  // namespace

void HistogramMetric::record(double x) {
  std::lock_guard lock(mu_);
  samples_.add(x);
}

ppc::SampleSet HistogramMetric::snapshot() const {
  std::lock_guard lock(mu_);
  return samples_;
}

std::size_t HistogramMetric::count() const {
  std::lock_guard lock(mu_);
  return samples_.count();
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

HistogramMetric& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<HistogramMetric>();
  return *slot;
}

void MetricsRegistry::set_gauge(const std::string& name, double value) {
  std::lock_guard lock(mu_);
  gauges_[name] = value;
}

double MetricsRegistry::gauge(const std::string& name) const {
  std::lock_guard lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

std::int64_t MetricsRegistry::counter_value(const std::string& name) const {
  std::lock_guard lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

std::int64_t MetricsRegistry::sum_counters(std::string_view suffix) const {
  std::lock_guard lock(mu_);
  std::int64_t total = 0;
  for (const auto& [name, counter] : counters_) {
    if (name.size() >= suffix.size() &&
        std::string_view(name).substr(name.size() - suffix.size()) == suffix) {
      total += counter->value();
    }
  }
  return total;
}

void MetricsRegistry::emit(MetricEvent event) {
  EventSink sink;
  {
    std::lock_guard lock(mu_);
    sink = sink_;
  }
  if (sink) sink(event);
}

void MetricsRegistry::set_event_sink(EventSink sink) {
  std::lock_guard lock(mu_);
  sink_ = std::move(sink);
}

std::vector<std::pair<std::string, std::int64_t>> MetricsRegistry::counters() const {
  std::lock_guard lock(mu_);
  std::vector<std::pair<std::string, std::int64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) out.emplace_back(name, counter->value());
  return out;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::gauges() const {
  std::lock_guard lock(mu_);
  return {gauges_.begin(), gauges_.end()};
}

void MetricsRegistry::scrape(ScrapeBuffer& out) const {
  out.counters.clear();
  out.gauges.clear();
  std::lock_guard lock(mu_);
  out.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.counters.emplace_back(std::string_view(name), counter->value());
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, value] : gauges_) {
    out.gauges.emplace_back(std::string_view(name), value);
  }
}

std::vector<std::string> MetricsRegistry::histogram_names() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> out;
  out.reserve(histograms_.size());
  for (const auto& [name, _] : histograms_) out.push_back(name);
  return out;
}

std::string MetricsRegistry::to_json() const {
  std::vector<std::pair<std::string, std::int64_t>> counter_snap;
  std::vector<std::pair<std::string, double>> gauge_snap;
  std::vector<std::pair<std::string, ppc::SampleSet>> histogram_snap;
  {
    std::lock_guard lock(mu_);
    counter_snap.reserve(counters_.size());
    for (const auto& [name, c] : counters_) counter_snap.emplace_back(name, c->value());
    gauge_snap.assign(gauges_.begin(), gauges_.end());
    histogram_snap.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) histogram_snap.emplace_back(name, h->snapshot());
  }

  std::ostringstream os;
  os << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < counter_snap.size(); ++i) {
    os << (i == 0 ? "\n    " : ",\n    ");
    append_json_string(os, counter_snap[i].first);
    os << ": " << counter_snap[i].second;
  }
  os << (counter_snap.empty() ? "},\n" : "\n  },\n");
  os << "  \"gauges\": {";
  for (std::size_t i = 0; i < gauge_snap.size(); ++i) {
    os << (i == 0 ? "\n    " : ",\n    ");
    append_json_string(os, gauge_snap[i].first);
    os << ": " << gauge_snap[i].second;
  }
  os << (gauge_snap.empty() ? "},\n" : "\n  },\n");
  os << "  \"histograms\": {";
  for (std::size_t i = 0; i < histogram_snap.size(); ++i) {
    os << (i == 0 ? "\n    " : ",\n    ");
    append_json_string(os, histogram_snap[i].first);
    const ppc::SampleSet& s = histogram_snap[i].second;
    os << ": {\"count\": " << s.count();
    if (s.count() > 0) {
      os << ", \"mean\": " << s.mean() << ", \"max\": " << s.max()
         << ", \"p50\": " << s.percentile(50.0) << ", \"p95\": " << s.percentile(95.0);
    } else {
      // Zero-sample histograms keep the full key schema (as nulls) so JSON
      // consumers can address h.mean unconditionally instead of branching
      // on which keys a registry happened to emit.
      os << ", \"mean\": null, \"max\": null, \"p50\": null, \"p95\": null";
    }
    os << "}";
  }
  os << (histogram_snap.empty() ? "}\n" : "\n  }\n");
  os << "}\n";
  return os.str();
}

}  // namespace ppc::runtime
