#include "runtime/metrics.h"

namespace ppc::runtime {

void HistogramMetric::record(double x) {
  std::lock_guard lock(mu_);
  samples_.add(x);
}

ppc::SampleSet HistogramMetric::snapshot() const {
  std::lock_guard lock(mu_);
  return samples_;
}

std::size_t HistogramMetric::count() const {
  std::lock_guard lock(mu_);
  return samples_.count();
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

HistogramMetric& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<HistogramMetric>();
  return *slot;
}

void MetricsRegistry::set_gauge(const std::string& name, double value) {
  std::lock_guard lock(mu_);
  gauges_[name] = value;
}

double MetricsRegistry::gauge(const std::string& name) const {
  std::lock_guard lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

std::int64_t MetricsRegistry::counter_value(const std::string& name) const {
  std::lock_guard lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

std::int64_t MetricsRegistry::sum_counters(std::string_view suffix) const {
  std::lock_guard lock(mu_);
  std::int64_t total = 0;
  for (const auto& [name, counter] : counters_) {
    if (name.size() >= suffix.size() &&
        std::string_view(name).substr(name.size() - suffix.size()) == suffix) {
      total += counter->value();
    }
  }
  return total;
}

void MetricsRegistry::emit(MetricEvent event) {
  EventSink sink;
  {
    std::lock_guard lock(mu_);
    sink = sink_;
  }
  if (sink) sink(event);
}

void MetricsRegistry::set_event_sink(EventSink sink) {
  std::lock_guard lock(mu_);
  sink_ = std::move(sink);
}

std::vector<std::pair<std::string, std::int64_t>> MetricsRegistry::counters() const {
  std::lock_guard lock(mu_);
  std::vector<std::pair<std::string, std::int64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) out.emplace_back(name, counter->value());
  return out;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::gauges() const {
  std::lock_guard lock(mu_);
  return {gauges_.begin(), gauges_.end()};
}

std::vector<std::string> MetricsRegistry::histogram_names() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> out;
  out.reserve(histograms_.size());
  for (const auto& [name, _] : histograms_) out.push_back(name);
  return out;
}

}  // namespace ppc::runtime
