// Unified fault injection for every substrate and the simulator.
//
// The seed had two incompatible crash hooks — classiccloud's
// `crash_at(CrashPoint, TaskSpec)` and azuremr's `crash_at(op, task_key)` —
// plus per-engine `attempt_hook`s. This injector replaces all of them with
// *named sites*: instrumented code calls `fire("classiccloud.after_upload",
// task_id)` at the points where the paper's fault-tolerance story is
// exercised, and tests arm crashes, delays, or thrown errors against those
// site names. One arming API drives all four substrates, so the same
// "crash after execute, before delete" scenario can be expressed identically
// against the Classic Cloud worker, the azuremr worker role, the MapReduce
// engine, and the discrete-event drivers.
//
// Thread-safe: workers fire concurrently; tests arm before starting them
// (arming while firing is also safe, just racy by nature).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "common/error.h"
#include "common/units.h"

namespace ppc::runtime {

/// Thrown by FaultInjector::fire() for sites armed with error_times().
class InjectedFault : public ppc::Error {
 public:
  using Error::Error;
};

class FaultInjector {
 public:
  /// Decides per firing whether to crash; receives the site's key (task id,
  /// input name, ...). Runs under the injector lock — keep it cheap.
  using Predicate = std::function<bool(const std::string& key)>;

  // -- arming ---------------------------------------------------------

  /// Crash the caller the first time the site fires, then disarm.
  void crash_once(const std::string& site);

  /// Crash the first `times` firings of the site.
  void crash_times(const std::string& site, int times);

  /// Crash every firing of the site (e.g. "all workers die mid-task").
  void crash_always(const std::string& site);

  /// Crash when `pred(key)` returns true.
  void crash_when(const std::string& site, Predicate pred);

  /// Throw InjectedFault(what) from the first `times` firings.
  void error_times(const std::string& site, std::string what, int times);

  /// Sleep `duration` real seconds on each firing; `times` < 0 = every time.
  void delay(const std::string& site, Seconds duration, int times = -1);

  /// Disarms every site and zeroes all counters.
  void reset();

  // -- firing ---------------------------------------------------------

  /// Called by instrumented code at a named site. Applies any armed delay,
  /// throws InjectedFault when an error is armed, and returns true when the
  /// caller should crash (die without completing / deleting its message).
  /// Unarmed sites return false.
  bool fire(const std::string& site, const std::string& key = "");

  // -- observability --------------------------------------------------

  /// Times the site has fired (armed or not).
  std::int64_t hits(const std::string& site) const;

  /// Crashes this site has triggered.
  std::int64_t crashes(const std::string& site) const;

  /// Crashes across all sites.
  std::int64_t total_crashes() const;

 private:
  struct Site {
    int crash_budget = 0;
    bool crash_always = false;
    Predicate crash_pred;
    int error_budget = 0;
    std::string error_what;
    Seconds delay_duration = 0.0;
    int delay_budget = 0;  // < 0 = unlimited
    std::int64_t hits = 0;
    std::int64_t crashes = 0;
  };

  mutable std::mutex mu_;
  std::map<std::string, Site> sites_;
};

}  // namespace ppc::runtime
