// Unified fault injection for every substrate and the simulator.
//
// The seed had two incompatible crash hooks — classiccloud's
// `crash_at(CrashPoint, TaskSpec)` and azuremr's `crash_at(op, task_key)` —
// plus per-engine `attempt_hook`s. This injector replaces all of them with
// *named sites*: instrumented code calls `fire("classiccloud.after_upload",
// task_id)` at the points where the paper's fault-tolerance story is
// exercised, and tests arm crashes, delays, or thrown errors against those
// site names. One arming API drives all four substrates, so the same
// "crash after execute, before delete" scenario can be expressed identically
// against the Classic Cloud worker, the azuremr worker role, the MapReduce
// engine, and the discrete-event drivers.
//
// Two firing surfaces share the armed state:
//
//  * fire(site, key) — worker-side lifecycle sites. Applies delays, throws
//    InjectedFault for errors, returns true for crashes.
//  * on_operation(site, key, payload) — the ppc::FaultHook interface the
//    service layer (BlobStore, MessageQueue) fires on every put/get/list/
//    send/receive/delete. Applies delays, reports errors as fail=true, and
//    corrupts payload copies (bit flip at an RNG-chosen position). Crash
//    rules are ignored here: a storage service cannot kill its caller.
//
// Besides the imperative arming calls, `arm_plan(FaultPlan)` installs a
// declarative schedule with deterministic per-site RNG streams
// (seed ^ fnv1a64(site)) — the chaos-campaign surface.
//
// Thread-safe: workers fire concurrently; tests arm before starting them
// (arming while firing is also safe, just racy by nature).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "common/error.h"
#include "common/fault_hook.h"
#include "common/rng.h"
#include "common/units.h"
#include "runtime/fault_plan.h"

namespace ppc::runtime {

/// Thrown by FaultInjector::fire() for sites armed with error_times() or an
/// error-action plan rule.
class InjectedFault : public ppc::Error {
 public:
  using Error::Error;
};

class FaultInjector : public ppc::FaultHook {
 public:
  /// Decides per firing whether to crash; receives the site's key (task id,
  /// input name, ...). Runs under the injector lock — keep it cheap.
  using Predicate = std::function<bool(const std::string& key)>;

  // -- arming ---------------------------------------------------------

  /// Crash the caller the first time the site fires, then disarm.
  void crash_once(const std::string& site);

  /// Crash the first `times` firings of the site.
  void crash_times(const std::string& site, int times);

  /// Crash every firing of the site (e.g. "all workers die mid-task").
  void crash_always(const std::string& site);

  /// Crash when `pred(key)` returns true.
  void crash_when(const std::string& site, Predicate pred);

  /// Throw InjectedFault(what) from the first `times` firings.
  void error_times(const std::string& site, std::string what, int times);

  /// Sleep `duration` real seconds on each firing; `times` < 0 = every time.
  void delay(const std::string& site, Seconds duration, int times = -1);

  /// Installs every rule of a declarative plan. Each armed site gets its own
  /// deterministic RNG stream (plan.seed ^ fnv1a64(site)) for probability
  /// draws and corruption positions. May be called repeatedly; rules
  /// accumulate.
  void arm_plan(const FaultPlan& plan);

  /// Disarms every site and zeroes all counters.
  void reset();

  // -- firing ---------------------------------------------------------

  /// Called by instrumented code at a named site. Applies any armed delay,
  /// throws InjectedFault when an error is armed, and returns true when the
  /// caller should crash (die without completing / deleting its message).
  /// Unarmed sites return false.
  bool fire(const std::string& site, const std::string& key = "");

  /// ppc::FaultHook — fired by BlobStore / MessageQueue operations. Never
  /// throws; errors surface as FaultDecision::fail and corruptions mutate
  /// the payload copy. Crash rules do not apply to service operations.
  ppc::FaultDecision on_operation(const std::string& site, const std::string& key,
                                  ppc::PayloadRef* payload) override;

  /// Fires a spot-revocation site (key = instance id). Returns the notice
  /// window of the revoke_spot rule that fired (0 = hard kill, no notice),
  /// or a negative value when none did. Via fire(), a revoke_spot rule
  /// behaves as a crash — the firing worker dies — so chaos sites script
  /// revocation-shaped kills without an elastic driver.
  Seconds fire_revocation(const std::string& site, const std::string& key = "");

  // -- observability --------------------------------------------------

  /// Times the site has fired (armed or not).
  std::int64_t hits(const std::string& site) const;

  /// Crashes this site has triggered.
  std::int64_t crashes(const std::string& site) const;

  std::int64_t delays_injected(const std::string& site) const;
  std::int64_t errors_injected(const std::string& site) const;
  std::int64_t corruptions_injected(const std::string& site) const;

  /// Spot revocations this site has triggered. A revocation also counts as
  /// a crash when its notice is ignored — the kill is the crash.
  std::int64_t revocations(const std::string& site) const;

  /// Crashes across all sites.
  std::int64_t total_crashes() const;

  std::int64_t total_delays() const;
  std::int64_t total_errors() const;
  std::int64_t total_corruptions() const;
  std::int64_t total_revocations() const;

 private:
  struct ArmedRule {
    FaultRule rule;
    int remaining_skips = 0;
    int remaining_budget = 0;  // < 0 = unlimited
  };

  struct Site {
    int crash_budget = 0;
    bool crash_always = false;
    Predicate crash_pred;
    int error_budget = 0;
    std::string error_what;
    Seconds delay_duration = 0.0;
    int delay_budget = 0;  // < 0 = unlimited
    std::vector<ArmedRule> rules;
    ppc::Rng rng{0};  // reseeded by arm_plan
    std::int64_t hits = 0;
    std::int64_t crashes = 0;
    std::int64_t delays = 0;
    std::int64_t errors = 0;
    std::int64_t corruptions = 0;
    std::int64_t revocations = 0;
  };

  /// What one firing should do; computed under the lock, applied outside it.
  struct Outcome {
    Seconds sleep = 0.0;
    bool error = false;
    std::string error_what;
    bool crash = false;
    bool corrupt = false;
    std::uint64_t corrupt_salt = 0;  // picks the flipped bit
    bool revoke = false;
    Seconds revoke_notice = 0.0;
  };

  /// Evaluates legacy armings + plan rules for one firing. `service_op`
  /// selects the hook interpretation: corrupt rules apply, crash rules do
  /// not. Caller holds mu_.
  Outcome evaluate_locked(Site& site, const std::string& key, bool service_op);

  std::int64_t site_stat_locked(const std::string& site,
                                std::int64_t Site::*member) const;
  std::int64_t total_stat_locked(std::int64_t Site::*member) const;

  mutable std::mutex mu_;
  std::map<std::string, Site> sites_;
};

}  // namespace ppc::runtime
