// Shared retry/backoff schedule for riding out transient cloud failures —
// the "retries" every framework in the paper leans on: eventually-consistent
// blob reads (§2.1.1), queue redeliveries, and listing lag during the
// reduce-stage shuffle. The seed carried two independent fixed-interval
// implementations (classiccloud::Worker and azuremr::MrWorker); this policy
// replaces both with exponential backoff + jitter, so a blob that becomes
// visible quickly costs one or two polls and a slow one does not hammer the
// storage service at a fixed rate.
#pragma once

#include <utility>

#include "common/rng.h"
#include "common/units.h"

namespace ppc::runtime {

struct RetryPolicy {
  /// Total attempts, including the first (>= 1).
  int max_attempts = 30;
  /// Sleep after the first miss.
  Seconds initial_backoff = 0.0005;
  /// Growth factor per subsequent miss (>= 1).
  double multiplier = 2.0;
  /// Ceiling on a single sleep.
  Seconds max_backoff = 0.05;
  /// Uniform +/- fraction applied to each sleep (0 = deterministic).
  double jitter = 0.2;

  /// The seed's old behaviour: `attempts` tries at a constant interval.
  static RetryPolicy fixed(int attempts, Seconds interval);

  static RetryPolicy exponential(int attempts, Seconds initial, double multiplier,
                                 Seconds cap, double jitter = 0.2);

  /// Tuned for 2010-era S3/Azure read-after-write lag: sub-millisecond first
  /// retry, ~1 s total budget — fewer wasted polls than the seed's 50-200
  /// fixed-interval probes, with a larger worst-case budget.
  static RetryPolicy eventual_consistency();

  /// Sleep before attempt `attempt + 1` (0-based attempt that just missed).
  Seconds backoff(int attempt, Rng& rng) const;

  /// Sum of all sleeps, ignoring jitter — the worst-case wait budget.
  Seconds total_backoff_budget() const;
};

/// Real-thread sleep helper shared by the lifecycle and retry loops.
void sleep_for(Seconds s);

/// Retries `fn` (returning something truthy-testable, e.g. std::optional)
/// until it yields a value or the policy's attempt budget is spent.
/// `on_miss(attempt)` is invoked after each miss (for counters); the final
/// miss does not sleep. Returns fn()'s last (empty) result on exhaustion.
template <typename Fn, typename OnMiss>
auto with_retry(const RetryPolicy& policy, Rng& rng, Fn&& fn, OnMiss&& on_miss)
    -> decltype(fn()) {
  const int attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  for (int attempt = 0;; ++attempt) {
    auto result = fn();
    if (result) return result;
    on_miss(attempt);
    if (attempt + 1 >= attempts) return result;
    sleep_for(policy.backoff(attempt, rng));
  }
}

}  // namespace ppc::runtime
