// The shared worker poll loop of §2.1.3, extracted once for every
// queue-driven substrate:
//
//   1. receive a task message (visibility timeout hides it from twins);
//   2. hand it to the substrate's handler, which fetches inputs with the
//      retry policy, executes, uploads, and reports to its monitor queue;
//   3. delete the message only after completion — the heart of the paper's
//      fault-tolerance story: a crash before this point makes the task
//      reappear, and a stale delete after a redelivery simply fails.
//
// classiccloud::Worker and azuremr::MrWorker are thin adapters over this
// driver: they supply a TaskHandler and read their stats back out of the
// lifecycle's MetricsRegistry. Fault injection (crash/delay/error at named
// sites) and per-worker counters come for free.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <thread>

#include <vector>

#include "cloudq/message_queue.h"
#include "runtime/fault_injector.h"
#include "runtime/metrics.h"
#include "runtime/poll_policy.h"
#include "runtime/retry_policy.h"
#include "runtime/tracer.h"
#include "storage/storage_backend.h"

namespace ppc::runtime {

/// Canonical lifecycle counter names; each worker scopes them by its id
/// ("<id>.tasks_completed").
namespace counters {
inline constexpr std::string_view kMessagesReceived = "messages_received";
inline constexpr std::string_view kTasksCompleted = "tasks_completed";
inline constexpr std::string_view kDeletesFailed = "deletes_failed";
inline constexpr std::string_view kDownloadsMissed = "downloads_missed";
inline constexpr std::string_view kExecutionsFailed = "executions_failed";
inline constexpr std::string_view kCrashed = "crashed";
/// Deliveries of a message some worker had already received (receive_count
/// > 1): the at-least-once tax that idempotency absorbs.
inline constexpr std::string_view kRedeliveries = "redeliveries";
/// Permanently failing deliveries this worker routed to the dead-letter
/// queue instead of abandoning again.
inline constexpr std::string_view kPoisonTasks = "poison_tasks";
/// Deliveries rejected before execution because the payload failed its
/// body checksum (Message::intact() == false).
inline constexpr std::string_view kCorruptDeliveries = "corrupt_deliveries";
}  // namespace counters

struct LifecycleConfig {
  /// Tight polling interval: the sleep after an empty poll while deliveries
  /// are flowing, and the floor of the idle backoff (real seconds — keep
  /// small in tests).
  Seconds poll_interval = 0.005;
  /// Idle backoff cap: consecutive empty polls grow the sleep by
  /// poll_multiplier up to this; the next delivery collapses it back to
  /// poll_interval. < 0 (the default) derives 8x poll_interval; any value
  /// <= poll_interval pins the legacy fixed-interval polling.
  Seconds poll_interval_max = -1.0;
  /// Idle backoff growth factor per consecutive empty poll.
  double poll_multiplier = 2.0;
  /// Jitter fraction applied to every idle sleep (see PollPolicy::jitter),
  /// decorrelating a fleet's empty polls.
  double poll_jitter = 0.2;
  /// Messages fetched per receive request, 1..MessageQueue::kBatchLimit
  /// (SQS ReceiveMessage MaxNumberOfMessages). The batch is processed
  /// sequentially by this worker, so visibility_timeout must cover the
  /// whole batch, not one task.
  int receive_batch = 1;
  /// Completed-task acks buffered into one DeleteMessageBatch request.
  /// 1 (the default) acks immediately after each task — the strict
  /// delete-after-completion of §2.1.3. Larger values trade slightly later
  /// acks (buffered acks flush when the buffer fills, on an empty poll, and
  /// at loop exit — but are lost if the worker crashes, which redelivery +
  /// idempotency absorb) for a ~10x cut in delete requests.
  int delete_batch = 1;
  /// Visibility timeout requested on receive. Must exceed the worst-case
  /// task duration or tasks get double-processed.
  Seconds visibility_timeout = 30.0;
  /// Stop after this many consecutive empty polls; < 0 = run until
  /// request_stop().
  int max_idle_polls = -1;
  /// Backoff schedule for eventually-consistent blob fetches.
  RetryPolicy fetch_retry = RetryPolicy::eventual_consistency();
  /// Visibility applied to a delivery this worker failed (abandoned /
  /// corrupt): the worker knows the attempt is over, so shrinking the
  /// window makes the retry prompt instead of waiting out the full
  /// visibility_timeout. < 0 keeps the original window (legacy behavior,
  /// and what a worker that simply *dies* gets regardless).
  Seconds abandon_visibility = -1.0;
  /// Borrowed, not owned; null (the default) disables tracing. When set,
  /// the poll loop records queue-wait / dequeue / task / ack spans and
  /// redelivery / DLQ instants, all keyed by the message id as trace id.
  Tracer* tracer = nullptr;
};

/// Verdict of one handled delivery.
enum class TaskOutcome {
  /// Success: the lifecycle deletes the message (delete-after-completion).
  kCompleted,
  /// Transient failure: leave the message to time out and be redelivered.
  kAbandoned,
  /// Fault injection killed the worker mid-task; the loop exits without
  /// deleting, so the message resurfaces for another worker.
  kCrashed,
};

class TaskLifecycle;

/// Handed to the handler for one delivery: the message, plus lifecycle
/// services (retrying fetches, fault sites, scoped metrics).
class TaskContext {
 public:
  const cloudq::Message& message() const { return *message_; }
  const std::string& worker_id() const;

  /// Fires the named fault site; true = the worker should crash (the
  /// handler returns TaskOutcome::kCrashed).
  bool crash_site(const std::string& site, const std::string& key = "");

  /// Blob download (from any storage backend) that rides out
  /// read-after-write lag with the lifecycle's retry policy, counting
  /// `downloads_missed` per miss. The payload aliases the stored blob
  /// (zero-copy). Null when the retry budget is exhausted (abandon the
  /// delivery; the blob will be visible by the time the message reappears).
  std::shared_ptr<const std::string> fetch(storage::StorageBackend& store,
                                           const std::string& bucket, const std::string& key);

  /// Generic retry with the lifecycle's policy: `fn` returns an optional-
  /// like value; misses count as `downloads_missed`.
  template <typename Fn>
  auto retry(Fn&& fn) -> decltype(fn());

  /// Increments the worker-scoped counter "<id>.<name>".
  void count(std::string_view name, std::int64_t delta = 1);

  /// Records into the worker-scoped histogram "<id>.<name>".
  void observe(std::string_view name, double value);

  /// Opens a child span of this delivery ("fetch.input", "compute",
  /// "upload.output", ...) on the worker's track, keyed by the message id.
  /// Inactive no-op guard when tracing is off.
  Span span(std::string_view name);

  MetricsRegistry& metrics();

 private:
  friend class TaskLifecycle;
  TaskContext(TaskLifecycle& owner, const cloudq::Message& message)
      : owner_(owner), message_(&message) {}

  TaskLifecycle& owner_;
  const cloudq::Message* message_;
};

using TaskHandler = std::function<TaskOutcome(TaskContext&)>;

class TaskLifecycle {
 public:
  /// `metrics` may be shared across a pool (each lifecycle scopes its
  /// counters by id); null creates a private registry. `faults` is borrowed,
  /// not owned; null disables injection.
  TaskLifecycle(std::string id, std::shared_ptr<cloudq::MessageQueue> task_queue,
                TaskHandler handler, LifecycleConfig config = {},
                std::shared_ptr<MetricsRegistry> metrics = nullptr,
                FaultInjector* faults = nullptr);

  ~TaskLifecycle();

  TaskLifecycle(const TaskLifecycle&) = delete;
  TaskLifecycle& operator=(const TaskLifecycle&) = delete;

  /// Starts the poll loop on its own thread.
  void start();

  /// Asks the loop to exit after the current task.
  void request_stop();

  /// Blocks until the loop has exited.
  void join();

  bool running() const { return running_.load(); }
  const std::string& id() const { return id_; }
  const LifecycleConfig& config() const { return config_; }

  MetricsRegistry& metrics() const { return *metrics_; }
  std::shared_ptr<MetricsRegistry> metrics_ptr() const { return metrics_; }
  FaultInjector* faults() const { return faults_; }
  Tracer* tracer() const { return config_.tracer; }

  /// "<id>.<name>" — the scope used for this worker's metrics.
  std::string scoped(std::string_view name) const;

  /// Reads the worker-scoped counter "<id>.<name>".
  std::int64_t counter(std::string_view name) const;

  /// True once fault injection has killed this worker.
  bool crashed() const { return counter(counters::kCrashed) > 0; }

  /// monotonic_now() timestamp of this worker's last sign of life (loop
  /// iteration started / task finished). 0 until start(). A supervisor
  /// compares this against its own monotonic_now() to detect stalls.
  Seconds last_heartbeat() const { return last_heartbeat_.load(); }

  /// The lifecycle thread's RNG (jittered backoff). Only touch from the
  /// handler, which runs on that thread.
  Rng& rng() { return rng_; }

  /// The effective adaptive-poll policy this lifecycle runs (config knobs
  /// resolved: defaulted cap, clamped multiplier/jitter).
  PollPolicy poll_policy() const;

 private:
  void poll_loop();

  /// Runs one delivery through the handler and the ack path. Returns false
  /// when the worker died (fault-injected crash) and the loop must exit.
  bool handle_delivery(cloudq::Message& message, Tracer* tr, bool tracing, Seconds poll_start);

  /// Sends the buffered completed-task acks as one DeleteMessageBatch.
  void flush_pending_deletes();

  void die(const std::string& reason);

  /// Post-mortem of a delivery this worker gave up on: routes poison
  /// messages (receive_count at the queue's redrive threshold) to the DLQ
  /// immediately, otherwise shortens the leftover visibility window when
  /// abandon_visibility says so.
  void after_failed_delivery(const cloudq::Message& message);

  const std::string id_;
  std::shared_ptr<cloudq::MessageQueue> task_queue_;
  TaskHandler handler_;
  LifecycleConfig config_;
  std::shared_ptr<MetricsRegistry> metrics_;
  FaultInjector* faults_;
  Rng rng_;

  std::vector<std::string> pending_deletes_;  // buffered acks (loop thread only)

  std::thread thread_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> running_{false};
  std::atomic<double> last_heartbeat_{0.0};
};

template <typename Fn>
auto TaskContext::retry(Fn&& fn) -> decltype(fn()) {
  return with_retry(owner_.config().fetch_retry, owner_.rng(), std::forward<Fn>(fn),
                    [this](int attempt) {
                      count(counters::kDownloadsMissed);
                      if (Tracer* tr = owner_.tracer(); tr != nullptr && tr->enabled()) {
                        tr->instant("retry", "task", owner_.id(), message_->id,
                                    {{"attempt", std::to_string(attempt)}});
                      }
                    });
}

}  // namespace ppc::runtime
