#include "runtime/fault_injector.h"

#include <utility>

#include "runtime/retry_policy.h"

namespace ppc::runtime {

void FaultInjector::crash_once(const std::string& site) { crash_times(site, 1); }

void FaultInjector::crash_times(const std::string& site, int times) {
  PPC_REQUIRE(times >= 1, "crash_times needs a positive count");
  std::lock_guard lock(mu_);
  sites_[site].crash_budget += times;
}

void FaultInjector::crash_always(const std::string& site) {
  std::lock_guard lock(mu_);
  sites_[site].crash_always = true;
}

void FaultInjector::crash_when(const std::string& site, Predicate pred) {
  PPC_REQUIRE(pred != nullptr, "crash_when needs a predicate");
  std::lock_guard lock(mu_);
  sites_[site].crash_pred = std::move(pred);
}

void FaultInjector::error_times(const std::string& site, std::string what, int times) {
  PPC_REQUIRE(times >= 1, "error_times needs a positive count");
  std::lock_guard lock(mu_);
  Site& s = sites_[site];
  s.error_budget += times;
  s.error_what = std::move(what);
}

void FaultInjector::delay(const std::string& site, Seconds duration, int times) {
  PPC_REQUIRE(duration >= 0.0, "delay must be non-negative");
  std::lock_guard lock(mu_);
  Site& s = sites_[site];
  s.delay_duration = duration;
  s.delay_budget = times;
}

void FaultInjector::reset() {
  std::lock_guard lock(mu_);
  sites_.clear();
}

bool FaultInjector::fire(const std::string& site, const std::string& key) {
  Seconds sleep = 0.0;
  bool throw_error = false;
  std::string error_what;
  bool crash = false;
  {
    std::lock_guard lock(mu_);
    Site& s = sites_[site];
    ++s.hits;
    if (s.delay_budget != 0 && s.delay_duration > 0.0) {
      sleep = s.delay_duration;
      if (s.delay_budget > 0) --s.delay_budget;
    }
    if (s.error_budget > 0) {
      --s.error_budget;
      throw_error = true;
      error_what = s.error_what;
    } else if (s.crash_always) {
      crash = true;
    } else if (s.crash_budget > 0) {
      --s.crash_budget;
      crash = true;
    } else if (s.crash_pred && s.crash_pred(key)) {
      crash = true;
    }
    if (crash) ++s.crashes;
  }
  if (sleep > 0.0) sleep_for(sleep);
  if (throw_error) {
    throw InjectedFault("injected fault at " + site +
                        (key.empty() ? "" : " (" + key + ")") + ": " + error_what);
  }
  return crash;
}

std::int64_t FaultInjector::hits(const std::string& site) const {
  std::lock_guard lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

std::int64_t FaultInjector::crashes(const std::string& site) const {
  std::lock_guard lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.crashes;
}

std::int64_t FaultInjector::total_crashes() const {
  std::lock_guard lock(mu_);
  std::int64_t total = 0;
  for (const auto& [_, s] : sites_) total += s.crashes;
  return total;
}

}  // namespace ppc::runtime
