#include "runtime/fault_injector.h"

#include <utility>

#include "common/string_util.h"
#include "runtime/retry_policy.h"

namespace ppc::runtime {

void FaultInjector::crash_once(const std::string& site) { crash_times(site, 1); }

void FaultInjector::crash_times(const std::string& site, int times) {
  PPC_REQUIRE(times >= 1, "crash_times needs a positive count");
  std::lock_guard lock(mu_);
  sites_[site].crash_budget += times;
}

void FaultInjector::crash_always(const std::string& site) {
  std::lock_guard lock(mu_);
  sites_[site].crash_always = true;
}

void FaultInjector::crash_when(const std::string& site, Predicate pred) {
  PPC_REQUIRE(pred != nullptr, "crash_when needs a predicate");
  std::lock_guard lock(mu_);
  sites_[site].crash_pred = std::move(pred);
}

void FaultInjector::error_times(const std::string& site, std::string what, int times) {
  PPC_REQUIRE(times >= 1, "error_times needs a positive count");
  std::lock_guard lock(mu_);
  Site& s = sites_[site];
  s.error_budget += times;
  s.error_what = std::move(what);
}

void FaultInjector::delay(const std::string& site, Seconds duration, int times) {
  PPC_REQUIRE(duration >= 0.0, "delay must be non-negative");
  std::lock_guard lock(mu_);
  Site& s = sites_[site];
  s.delay_duration = duration;
  s.delay_budget = times;
}

void FaultInjector::arm_plan(const FaultPlan& plan) {
  std::lock_guard lock(mu_);
  for (const FaultRule& rule : plan.rules) {
    Site& s = sites_[rule.site];
    if (s.rules.empty()) s.rng = ppc::Rng(plan.seed ^ fnv1a64(rule.site));
    ArmedRule armed;
    armed.rule = rule;
    armed.remaining_skips = rule.skip_first;
    armed.remaining_budget = rule.budget;
    s.rules.push_back(std::move(armed));
  }
}

void FaultInjector::reset() {
  std::lock_guard lock(mu_);
  sites_.clear();
}

FaultInjector::Outcome FaultInjector::evaluate_locked(Site& s, const std::string& key,
                                                      bool service_op) {
  ++s.hits;
  Outcome out;

  // Legacy imperative armings first — they predate plans and tests rely on
  // their exact precedence (delay stacks with error/crash; error beats crash).
  if (s.delay_budget != 0 && s.delay_duration > 0.0) {
    out.sleep = s.delay_duration;
    if (s.delay_budget > 0) --s.delay_budget;
    ++s.delays;
  }
  if (s.error_budget > 0) {
    --s.error_budget;
    out.error = true;
    out.error_what = s.error_what;
    ++s.errors;
  } else if (!service_op) {
    if (s.crash_always) {
      out.crash = true;
    } else if (s.crash_budget > 0) {
      --s.crash_budget;
      out.crash = true;
    } else if (s.crash_pred && s.crash_pred(key)) {
      out.crash = true;
    }
  }

  // Plan rules. Each rule decides independently; within one firing, delay
  // stacks with at most one terminal action (error/crash/corrupt, first
  // armed rule wins) so a single firing stays interpretable.
  for (ArmedRule& ar : s.rules) {
    const FaultAction action = ar.rule.action;
    // Crash and revocation rules only make sense at lifecycle sites;
    // corrupt rules only at service operations that carry a payload.
    // Mismatched rules stay armed.
    if ((action == FaultAction::kCrash || action == FaultAction::kRevokeSpot) &&
        service_op) {
      continue;
    }
    if (action == FaultAction::kCorrupt && !service_op) continue;
    if (ar.remaining_budget == 0) continue;
    const bool terminal_taken = out.error || out.crash || out.corrupt;
    if (action != FaultAction::kDelay && terminal_taken) continue;
    if (ar.rule.probability < 1.0 && !s.rng.bernoulli(ar.rule.probability)) continue;
    if (ar.remaining_skips > 0) {
      --ar.remaining_skips;
      continue;
    }
    if (ar.remaining_budget > 0) --ar.remaining_budget;
    switch (action) {
      case FaultAction::kDelay:
        out.sleep += ar.rule.delay;
        ++s.delays;
        break;
      case FaultAction::kError:
        out.error = true;
        out.error_what = ar.rule.what;
        ++s.errors;
        break;
      case FaultAction::kCrash:
        out.crash = true;
        break;
      case FaultAction::kCorrupt:
        // Counted in on_operation(), and only when bytes actually flip —
        // a payload-less or empty operation yields no corruption.
        out.corrupt = true;
        out.corrupt_salt = s.rng.next_u64();
        break;
      case FaultAction::kRevokeSpot:
        // A revocation whose notice is not honoured is a crash; drivers that
        // drain within the notice window suppress the kill themselves.
        out.crash = true;
        out.revoke = true;
        out.revoke_notice = ar.rule.delay;
        ++s.revocations;
        break;
    }
  }
  if (out.crash) ++s.crashes;
  return out;
}

bool FaultInjector::fire(const std::string& site, const std::string& key) {
  Outcome out;
  {
    std::lock_guard lock(mu_);
    out = evaluate_locked(sites_[site], key, /*service_op=*/false);
  }
  if (out.sleep > 0.0) sleep_for(out.sleep);
  if (out.error) {
    throw InjectedFault("injected fault at " + site +
                        (key.empty() ? "" : " (" + key + ")") + ": " + out.error_what);
  }
  return out.crash;
}

Seconds FaultInjector::fire_revocation(const std::string& site, const std::string& key) {
  Outcome out;
  {
    std::lock_guard lock(mu_);
    out = evaluate_locked(sites_[site], key, /*service_op=*/false);
  }
  if (out.sleep > 0.0) sleep_for(out.sleep);
  return out.revoke ? out.revoke_notice : -1.0;
}

ppc::FaultDecision FaultInjector::on_operation(const std::string& site,
                                               const std::string& key,
                                               ppc::PayloadRef* payload) {
  Outcome out;
  {
    std::lock_guard lock(mu_);
    out = evaluate_locked(sites_[site], key, /*service_op=*/true);
  }
  if (out.sleep > 0.0) sleep_for(out.sleep);
  ppc::FaultDecision decision;
  decision.fail = out.error;
  if (out.corrupt && payload != nullptr) {
    if (std::string* bytes = payload->mutate(); bytes != nullptr && !bytes->empty()) {
      const std::size_t offset = out.corrupt_salt % bytes->size();
      const unsigned bit = static_cast<unsigned>((out.corrupt_salt >> 32) % 8);
      (*bytes)[offset] = static_cast<char>(
          static_cast<unsigned char>((*bytes)[offset]) ^ (1u << bit));
      decision.corrupted = true;
      std::lock_guard lock(mu_);
      ++sites_[site].corruptions;
    }
  }
  return decision;
}

std::int64_t FaultInjector::site_stat_locked(const std::string& site,
                                             std::int64_t Site::*member) const {
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.*member;
}

std::int64_t FaultInjector::total_stat_locked(std::int64_t Site::*member) const {
  std::int64_t total = 0;
  for (const auto& [_, s] : sites_) total += s.*member;
  return total;
}

std::int64_t FaultInjector::hits(const std::string& site) const {
  std::lock_guard lock(mu_);
  return site_stat_locked(site, &Site::hits);
}

std::int64_t FaultInjector::crashes(const std::string& site) const {
  std::lock_guard lock(mu_);
  return site_stat_locked(site, &Site::crashes);
}

std::int64_t FaultInjector::delays_injected(const std::string& site) const {
  std::lock_guard lock(mu_);
  return site_stat_locked(site, &Site::delays);
}

std::int64_t FaultInjector::errors_injected(const std::string& site) const {
  std::lock_guard lock(mu_);
  return site_stat_locked(site, &Site::errors);
}

std::int64_t FaultInjector::corruptions_injected(const std::string& site) const {
  std::lock_guard lock(mu_);
  return site_stat_locked(site, &Site::corruptions);
}

std::int64_t FaultInjector::revocations(const std::string& site) const {
  std::lock_guard lock(mu_);
  return site_stat_locked(site, &Site::revocations);
}

std::int64_t FaultInjector::total_crashes() const {
  std::lock_guard lock(mu_);
  return total_stat_locked(&Site::crashes);
}

std::int64_t FaultInjector::total_delays() const {
  std::lock_guard lock(mu_);
  return total_stat_locked(&Site::delays);
}

std::int64_t FaultInjector::total_errors() const {
  std::lock_guard lock(mu_);
  return total_stat_locked(&Site::errors);
}

std::int64_t FaultInjector::total_corruptions() const {
  std::lock_guard lock(mu_);
  return total_stat_locked(&Site::corruptions);
}

std::int64_t FaultInjector::total_revocations() const {
  std::lock_guard lock(mu_);
  return total_stat_locked(&Site::revocations);
}

}  // namespace ppc::runtime
