// Per-task distributed tracing for every substrate.
//
// The paper's evidence is per-task timing: per-file compute times (Figs 5-6),
// parallel-efficiency curves (10-11), and the load imbalance DryadLINQ's
// static node-level partitioning causes versus the dynamic global queues of
// Hadoop / Classic Cloud (14-15). MetricsRegistry only aggregates, so none of
// those distributions can be reconstructed from a run. The Tracer records the
// raw material: one Span per queue-wait / dequeue / fetch / compute / upload /
// ack, each stamped with a worker track and a task trace id, so a single
// task's causal chain — redeliveries, retries, DLQ parking, supervisor
// restarts — is reconstructable, and per-worker busy/idle timelines fall out.
//
// Exports:
//   to_chrome_json()   Chrome trace_event JSON (about://tracing, Perfetto)
//   task_summaries()   per-task rollup (attempts, fetch/compute/upload time)
//   load_report()      per-worker busy / idle-tail + compute percentiles —
//                      the static-vs-dynamic scheduling gap, from span data
//
// Overhead discipline: tracing is OFF by default. Every entry point loads one
// relaxed atomic and returns; bench_json asserts < 3% regression on the
// data-plane micro benches with a disabled tracer installed. When enabled,
// span storage is sharded KShards ways to keep worker threads off each
// other's locks.
//
// Crash semantics: a simulated crash (chaos `crash` action) makes the worker
// loop exit mid-task; the spans it had open are detach()ed — left in the
// open-span table, exactly like a real process death would leak them — and
// the WorkerSupervisor closes them with abandoned=true at reap time via
// abandon_open_spans(). Nothing is silently dropped.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/trace_hook.h"
#include "common/units.h"

namespace ppc::runtime {

/// One completed (or abandoned) span, as exported.
struct SpanRecord {
  std::uint64_t id = 0;
  std::string name;      // "compute", "queue.wait", "cloudq.tasks.receive", ...
  std::string category;  // "lifecycle", "task", "queue", "blob", "supervisor"
  std::string track;     // timeline lane: worker id / "<node>.s<slot>"
  std::string task;      // trace id (message / attempt / vertex); may be empty
  Seconds start = 0.0;
  Seconds end = 0.0;
  /// Closed by abandon_open_spans() (supervisor reap), not by its owner.
  bool abandoned = false;
  std::vector<std::pair<std::string, std::string>> args;

  Seconds duration() const { return end - start; }
};

/// Per-task rollup derived from span data (see Tracer::task_summaries).
struct TaskSummary {
  std::string task;
  std::string worker;  // track of the final "task" span
  int attempts = 0;    // "task" envelope spans seen (1 + redeliveries)
  int retries = 0;     // "retry" instants (fetch misses ridden out)
  Seconds fetch = 0.0;
  Seconds compute = 0.0;
  Seconds upload = 0.0;
  Seconds total = 0.0;  // summed "task" envelope time across attempts
  bool completed = false;
  bool abandoned = false;  // some attempt died with the worker
};

/// Per-worker busy/idle rollup (see Tracer::load_report).
struct WorkerLoad {
  std::string worker;
  int tasks = 0;            // "task" envelope spans on this track
  Seconds busy = 0.0;       // summed envelope time
  Seconds last_end = 0.0;   // when this worker finished its final task
  /// Fraction of the run's makespan this worker spent idle after its last
  /// task — the paper's Fig 14-15 signature: static partitioning strands
  /// whole nodes in the tail while dynamic queues keep everyone busy.
  double idle_tail_fraction = 0.0;
};

struct LoadReport {
  Seconds makespan = 0.0;  // first task start -> last task end
  std::vector<WorkerLoad> workers;
  // Distribution of per-task compute seconds (summed over attempts).
  double compute_min = 0.0;
  double compute_median = 0.0;
  double compute_p95 = 0.0;
  double compute_max = 0.0;
  /// max worker busy / mean worker busy; 1.0 = perfectly balanced.
  double imbalance = 1.0;

  /// Human-readable table (one row per worker + the compute distribution).
  std::string to_text() const;
};

class Tracer;

/// RAII span guard. Default-constructed (or from a disabled tracer) it is a
/// no-op. Destruction closes the span; detach() instead leaves it in the
/// tracer's open-span table, modelling a worker that died holding it.
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { close(); }

  /// True when this guard owns a live recording span.
  bool active() const { return tracer_ != nullptr; }

  /// Attaches a key/value to the span (shown in the Chrome trace "args").
  void arg(std::string_view key, std::string_view value);

  /// Closes the span now (idempotent).
  void close();

  /// Releases the guard WITHOUT closing the span: it stays open in the
  /// tracer until abandon_open_spans() reaps it. Call when a simulated
  /// crash unwinds the owning thread — a real dead process cannot close
  /// its spans either.
  void detach() { tracer_ = nullptr; }

 private:
  friend class Tracer;
  Span(Tracer* tracer, std::uint64_t id) : tracer_(tracer), id_(id) {}

  Tracer* tracer_ = nullptr;
  std::uint64_t id_ = 0;
};

class Tracer final : public ppc::TraceHook {
 public:
  /// Timestamps come from `clock` when given, else from the process-wide
  /// ppc::monotonic_now() timebase. Inject the sim clock so simulated-time
  /// runs trace in simulated seconds.
  explicit Tracer(std::shared_ptr<const ppc::Clock> clock = nullptr);
  ~Tracer() override;

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Tracing is off until enable(); every record call is then a single
  /// relaxed atomic load + return.
  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Current time on this tracer's clock.
  Seconds now() const;

  /// Opens a span. `track` is the timeline lane (worker id); `task` the
  /// trace id tying spans of one task together. Returns an inactive guard
  /// when disabled.
  Span span(std::string_view name, std::string_view category, std::string_view track,
            std::string_view task = {});

  /// Like span(), but with an explicit start time (on this tracer's clock):
  /// for intervals measured before deciding they are worth a span, e.g.
  /// queue-wait across many empty polls.
  Span span_from(Seconds start, std::string_view name, std::string_view category,
                 std::string_view track, std::string_view task = {});

  /// Like span(), but takes track/task from the calling thread's bound
  /// context (see bind_thread) — for call sites that don't carry them.
  Span span_here(std::string_view name, std::string_view category);

  /// Records a zero-duration event (redelivery, DLQ parking, restart...).
  void instant(std::string_view name, std::string_view category, std::string_view track,
               std::string_view task = {},
               std::initializer_list<std::pair<std::string_view, std::string_view>> args = {});

  /// Binds the calling thread to a worker track (and optionally a current
  /// task id) so service-layer TraceHook ops and span_here() attribute to
  /// the right lane. Lifecycles bind their poll-loop thread; engines bind
  /// each slot thread.
  static void bind_thread(std::string_view track);
  static void bind_thread_task(std::string_view task);
  static void clear_thread();

  /// Closes every still-open span on `track` with abandoned=true, stamped
  /// with this tracer's current time. Called by WorkerSupervisor when it
  /// reaps a crashed/stalled worker. Returns how many spans were reaped.
  std::size_t abandon_open_spans(std::string_view track);

  // --- ppc::TraceHook (service seam) ---
  bool tracing() const override { return enabled(); }
  std::uint64_t op_begin(std::string_view site, std::string_view key) override;
  void op_end(std::uint64_t token, bool failed) override;
  void op_cancel(std::uint64_t token) override;

  // --- introspection / export ---
  /// Completed spans, ordered by start time. Open spans are not included.
  std::vector<SpanRecord> snapshot() const;
  std::size_t completed_spans() const;
  /// Spans currently open (leaked ones show up here until abandoned).
  std::size_t open_spans() const;
  /// Drops all recorded and open spans (reuse one tracer across runs).
  void reset();

  /// Chrome trace_event JSON ({"traceEvents":[...]}): "X" complete events in
  /// microseconds, one tid per track with "thread_name" metadata. Loadable
  /// in about://tracing and ui.perfetto.dev.
  std::string to_chrome_json() const;

  /// Per-task rollups, ordered by task id.
  std::vector<TaskSummary> task_summaries() const;

  /// Compact fixed-width table of task_summaries() (the "per-task summary
  /// table" the bench figures consume).
  std::string summary_table() const;

  /// Per-worker busy/idle-tail + compute-time distribution.
  LoadReport load_report() const;

 private:
  friend class Span;
  static constexpr std::size_t kShards = 16;

  struct Shard {
    mutable std::mutex mu;
    std::vector<SpanRecord> done;
    /// Open spans, keyed by span id. Small: one task + a few child spans
    /// per live worker thread.
    std::vector<SpanRecord> open;
  };

  Shard& shard_for(std::uint64_t id) { return shards_[id % kShards]; }
  const Shard& shard_for(std::uint64_t id) const { return shards_[id % kShards]; }

  std::uint64_t open_span(std::string_view name, std::string_view category,
                          std::string_view track, std::string_view task);
  std::uint64_t open_span_at(Seconds start, std::string_view name, std::string_view category,
                             std::string_view track, std::string_view task);
  void close_span(std::uint64_t id, bool failed);
  void span_arg(std::uint64_t id, std::string_view key, std::string_view value);

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_id_{1};
  std::shared_ptr<const ppc::Clock> clock_;
  Shard shards_[kShards];
};

}  // namespace ppc::runtime
