#include "runtime/fault_plan.h"

#include <sstream>
#include <utility>

#include "common/error.h"
#include "common/string_util.h"

namespace ppc::runtime {

const char* fault_action_name(FaultAction action) {
  switch (action) {
    case FaultAction::kCrash:
      return "crash";
    case FaultAction::kDelay:
      return "delay";
    case FaultAction::kError:
      return "error";
    case FaultAction::kCorrupt:
      return "corrupt";
    case FaultAction::kRevokeSpot:
      return "revoke_spot";
  }
  return "?";
}

namespace {
FaultRule make_rule(std::string site, FaultAction action, double probability, int budget,
                    int skip_first) {
  PPC_REQUIRE(!site.empty(), "fault rule needs a site");
  PPC_REQUIRE(probability >= 0.0 && probability <= 1.0, "probability must be in [0,1]");
  PPC_REQUIRE(skip_first >= 0, "skip_first must be >= 0");
  FaultRule rule;
  rule.site = std::move(site);
  rule.action = action;
  rule.probability = probability;
  rule.budget = budget;
  rule.skip_first = skip_first;
  return rule;
}
}  // namespace

FaultPlan& FaultPlan::crash(const std::string& site, int budget, double probability,
                            int skip_first) {
  rules.push_back(make_rule(site, FaultAction::kCrash, probability, budget, skip_first));
  return *this;
}

FaultPlan& FaultPlan::delay(const std::string& site, Seconds duration, int budget,
                            double probability, int skip_first) {
  PPC_REQUIRE(duration >= 0.0, "delay must be non-negative");
  rules.push_back(make_rule(site, FaultAction::kDelay, probability, budget, skip_first));
  rules.back().delay = duration;
  return *this;
}

FaultPlan& FaultPlan::error(const std::string& site, std::string what, int budget,
                            double probability, int skip_first) {
  rules.push_back(make_rule(site, FaultAction::kError, probability, budget, skip_first));
  rules.back().what = std::move(what);
  return *this;
}

FaultPlan& FaultPlan::corrupt(const std::string& site, int budget, double probability,
                              int skip_first) {
  rules.push_back(make_rule(site, FaultAction::kCorrupt, probability, budget, skip_first));
  return *this;
}

FaultPlan& FaultPlan::revoke_spot(const std::string& site, int budget, double probability,
                                  Seconds notice, int skip_first) {
  PPC_REQUIRE(notice >= 0.0, "revocation notice must be non-negative");
  rules.push_back(
      make_rule(site, FaultAction::kRevokeSpot, probability, budget, skip_first));
  rules.back().delay = notice;
  return *this;
}

std::string FaultPlan::summary() const {
  std::ostringstream os;
  os << "fault plan seed=" << seed << " rules=" << rules.size() << "\n";
  for (const FaultRule& r : rules) {
    os << "  " << fault_action_name(r.action);
    if (r.budget < 0) {
      os << " x*";
    } else {
      os << " x" << r.budget;
    }
    os << " @ " << r.site << " (p=" << format_fixed(r.probability, 2);
    if (r.skip_first > 0) os << ", skip " << r.skip_first;
    if (r.action == FaultAction::kDelay) os << ", " << format_fixed(r.delay, 3) << "s";
    if (r.action == FaultAction::kRevokeSpot)
      os << ", notice " << format_fixed(r.delay, 0) << "s";
    os << ")\n";
  }
  return os.str();
}

}  // namespace ppc::runtime
