// Supervised worker pools: crash detection, bounded restarts, recovery
// metrics.
//
// The paper's frameworks lean on infrastructure supervision — Azure's fabric
// controller re-provisions a worker role that dies, EC2 instances behind the
// Classic Cloud script get relaunched — and correctness only needs the queue
// semantics (an unfinished task's message reappears). This class reproduces
// that supervision layer for any substrate built on TaskLifecycle: it owns a
// pool of N worker *slots*, watches each slot's lifecycle, and when a worker
// crashes (fault injection killed it) or stalls (heartbeat older than
// stall_timeout) it provisions a replacement after an exponential-backoff
// pause, up to max_restarts_per_slot times per slot. Replacement workers get
// ids "<base>#<incarnation>" so their metrics stay distinguishable while
// prefix/suffix aggregation still finds them.
//
// The supervisor does not know substrate worker types: a WorkerFactory
// closure builds-and-starts one worker and returns {owning handle, its
// TaskLifecycle*}. Stalled workers cannot be killed (threads are not
// processes); they are retired — asked to stop, replaced immediately, joined
// at shutdown — which models "assume the VM is gone, start another, let the
// old one be reclaimed".
//
// Observability (in the supervisor's MetricsRegistry):
//   supervisor.restarts          crashed/stalled workers replaced
//   supervisor.gave_up           slots abandoned after max restarts
//   supervisor.recovery_seconds  histogram: death detected -> replacement up
//   supervisor.drains            slots retired cleanly via drain_slot()
//
// Elastic scale-in drains through the same machinery: drain_slot() asks one
// worker to finish its in-flight task and exit. A worker that honours the
// request (exits without crashing) is metered as a drain and its slot stays
// empty; one hard-killed mid-drain (a spot revocation whose notice expired)
// is indistinguishable from any other crash and takes the restart path.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/units.h"
#include "runtime/metrics.h"
#include "runtime/task_lifecycle.h"
#include "runtime/tracer.h"

namespace ppc::runtime {

/// One provisioned worker: an opaque owning handle (the substrate's worker
/// object) plus the lifecycle the supervisor watches. The lifecycle must
/// stay valid while `owner` is held and must already be started.
struct SupervisedWorker {
  std::shared_ptr<void> owner;
  TaskLifecycle* lifecycle = nullptr;
};

/// Builds and starts one worker. `worker_id` is the id the worker must use
/// ("<base>" or "<base>#<incarnation>"); `incarnation` is 0 for the initial
/// worker of a slot, 1+ for replacements.
using WorkerFactory =
    std::function<SupervisedWorker(const std::string& worker_id, int incarnation)>;

struct SupervisorConfig {
  /// Slots in the pool; each gets one live worker at a time.
  int num_workers = 1;
  /// Slot s's initial worker is named "<id_prefix><s>".
  std::string id_prefix = "w";
  /// Replacements allowed per slot before the supervisor gives the slot up.
  int max_restarts_per_slot = 3;
  /// Backoff before restart r of a slot: initial * multiplier^(r-1), capped.
  Seconds initial_backoff = 0.02;
  double backoff_multiplier = 2.0;
  Seconds max_backoff = 0.5;
  /// Watch-loop poll period (real seconds).
  Seconds watch_interval = 0.005;
  /// A running worker whose heartbeat is older than this is declared stalled
  /// and replaced. 0 disables stall detection (crash detection only).
  Seconds stall_timeout = 0.0;
  /// Registry for supervisor metrics; null creates a private one.
  std::shared_ptr<MetricsRegistry> metrics;
  /// Borrowed tracer (null disables). When set, the supervisor records
  /// crash/stall/restart instants on the "supervisor" track AND reaps the
  /// dead worker's leaked spans: whatever it still had open is closed with
  /// abandoned=true at detection time (see Tracer::abandon_open_spans).
  Tracer* tracer = nullptr;
};

class WorkerSupervisor {
 public:
  WorkerSupervisor(WorkerFactory factory, SupervisorConfig config);
  ~WorkerSupervisor();

  WorkerSupervisor(const WorkerSupervisor&) = delete;
  WorkerSupervisor& operator=(const WorkerSupervisor&) = delete;

  /// Provisions the initial worker of every slot and starts the watch loop.
  void start();

  /// Stops watching, asks every worker (live and retired) to stop, and joins
  /// them all. Idempotent.
  void stop();

  /// Workers currently believed alive (running and not crashed).
  int alive_workers() const;

  /// Starts a graceful drain of slot `slot_index`: the worker is asked to
  /// stop (finish the in-flight task, flush, exit) and the slot is not
  /// refilled after a clean exit. No-op on a slot already draining or given
  /// up. A crash mid-drain re-enters the normal restart path.
  void drain_slot(int slot_index);

  std::int64_t restarts() const { return metrics_->counter_value("supervisor.restarts"); }
  std::int64_t gave_up() const { return metrics_->counter_value("supervisor.gave_up"); }
  std::int64_t drains() const { return metrics_->counter_value("supervisor.drains"); }

  MetricsRegistry& metrics() const { return *metrics_; }
  std::shared_ptr<MetricsRegistry> metrics_ptr() const { return metrics_; }

 private:
  struct Slot {
    SupervisedWorker worker;
    std::string base_id;
    int incarnation = 0;
    int restarts_done = 0;
    bool gave_up = false;
    /// drain_slot() asked this worker to finish up and exit.
    bool draining = false;
    /// The drain completed cleanly; the slot stays empty.
    bool drained = false;
    /// monotonic_now() when the current worker was found dead; < 0 = alive.
    Seconds died_at = -1.0;
    /// Earliest monotonic_now() at which the replacement may start.
    Seconds restart_at = 0.0;
  };

  void watch_loop();
  void check_slot_locked(Slot& slot, Seconds now);
  Seconds backoff_for(int restart_number) const;

  WorkerFactory factory_;
  SupervisorConfig config_;
  std::shared_ptr<MetricsRegistry> metrics_;

  mutable std::mutex mu_;
  std::vector<Slot> slots_;
  /// Stalled workers replaced mid-run; stopped and joined at shutdown.
  std::vector<SupervisedWorker> retired_;

  std::thread watch_thread_;
  std::atomic<bool> stop_requested_{false};
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace ppc::runtime
