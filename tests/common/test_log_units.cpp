#include <gtest/gtest.h>

#include "common/log.h"
#include "common/units.h"

namespace ppc {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelRoundTrips) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST(Log, MacrosCompileAndRespectThreshold) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  // Below threshold: the streamed expression must not even be evaluated.
  int evaluations = 0;
  auto count = [&evaluations] {
    ++evaluations;
    return "x";
  };
  PPC_DEBUG << count();
  PPC_INFO << count();
  PPC_WARN << count();
  PPC_ERROR << count();
  EXPECT_EQ(evaluations, 0);

  set_log_level(LogLevel::kWarn);
  PPC_DEBUG << count();
  PPC_WARN << count();  // evaluated (goes to stderr)
  EXPECT_EQ(evaluations, 1);
}

TEST(Units, ByteLiterals) {
  EXPECT_DOUBLE_EQ(1_KB, 1024.0);
  EXPECT_DOUBLE_EQ(2_MB, 2.0 * 1024 * 1024);
  EXPECT_DOUBLE_EQ(1_GB, 1024.0 * 1024 * 1024);
  EXPECT_DOUBLE_EQ(1.5_KB, 1536.0);
  EXPECT_DOUBLE_EQ(0.5_GB, 512.0 * 1024 * 1024);
}

TEST(Units, HelperFunctions) {
  EXPECT_DOUBLE_EQ(kilobytes(2), 2048.0);
  EXPECT_DOUBLE_EQ(gigabytes(1), 1_GB);
  EXPECT_DOUBLE_EQ(to_gigabytes(3_GB), 3.0);
  EXPECT_DOUBLE_EQ(to_megabytes(5_MB), 5.0);
  EXPECT_DOUBLE_EQ(minutes(2), 120.0);
  EXPECT_DOUBLE_EQ(hours(1.5), 5400.0);
}

}  // namespace
}  // namespace ppc
