#include "common/string_util.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace ppc {
namespace {

TEST(Split, BasicFields) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, KeepsEmptyFields) {
  const auto parts = split(",x,,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[3], "");
}

TEST(Split, NoSeparator) {
  const auto parts = split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(Trim, RemovesWhitespaceBothEnds) {
  EXPECT_EQ(trim("  x y \t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(StartsWith, Basics) {
  EXPECT_TRUE(starts_with("input/file", "input/"));
  EXPECT_FALSE(starts_with("in", "input/"));
  EXPECT_TRUE(starts_with("x", ""));
}

TEST(FormatFixed, Decimals) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
  EXPECT_EQ(format_fixed(-1.005, 1), "-1.0");
}

TEST(FormatBytes, Units) {
  EXPECT_EQ(format_bytes(512), "512.0 B");
  EXPECT_EQ(format_bytes(1536), "1.50 KB");
  EXPECT_EQ(format_bytes(8.7 * 1024 * 1024 * 1024), "8.70 GB");
}

TEST(FormatDuration, HoursMinutesSeconds) {
  EXPECT_EQ(format_duration(3.25), "3.2s");
  EXPECT_EQ(format_duration(65.0), "1m 5.0s");
  EXPECT_EQ(format_duration(3661.0), "1h 1m 1.0s");
}

TEST(KvCodec, RoundTrip) {
  const std::map<std::string, std::string> kv = {
      {"task", "t42"}, {"in", "input/f"}, {"out", "output/f"}};
  const auto decoded = decode_kv(encode_kv(kv));
  EXPECT_EQ(decoded, kv);
}

TEST(KvCodec, EmptyMap) {
  EXPECT_EQ(encode_kv({}), "");
  EXPECT_TRUE(decode_kv("").empty());
}

TEST(KvCodec, RejectsReservedCharacters) {
  EXPECT_THROW(encode_kv({{"a=b", "v"}}), InvalidArgument);
  EXPECT_THROW(encode_kv({{"k", "v;w"}}), InvalidArgument);
}

TEST(KvCodec, RejectsMalformedInput) {
  EXPECT_THROW(decode_kv("novalue"), InvalidArgument);
}

TEST(KvCodec, DeterministicKeyOrder) {
  EXPECT_EQ(encode_kv({{"b", "2"}, {"a", "1"}}), "a=1;b=2");
}

}  // namespace
}  // namespace ppc
