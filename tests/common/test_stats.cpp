#include "common/stats.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace ppc {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37 - 3.0;
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

TEST(RunningStats, CoefficientOfVariation) {
  RunningStats s;
  s.add(9.0);
  s.add(11.0);
  EXPECT_NEAR(s.coefficient_of_variation(), s.stddev() / 10.0, 1e-12);
}

TEST(SampleSet, MeanMinMax) {
  SampleSet s;
  s.add_all({3.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_EQ(s.count(), 3u);
}

TEST(SampleSet, PercentileInterpolates) {
  SampleSet s;
  s.add_all({10.0, 20.0, 30.0, 40.0});
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 40.0);
  EXPECT_DOUBLE_EQ(s.median(), 25.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 17.5);
}

TEST(SampleSet, PercentileAfterMoreAdds) {
  SampleSet s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  s.add(1.0);  // invalidates the sort; must re-sort internally
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
}

TEST(SampleSet, EmptyThrows) {
  SampleSet s;
  EXPECT_THROW(s.mean(), InvalidArgument);
  EXPECT_THROW(s.percentile(50), InvalidArgument);
}

TEST(Histogram, BucketsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);   // bucket 0
  h.add(1.9);   // bucket 0
  h.add(2.0);   // bucket 1
  h.add(9.99);  // bucket 4
  h.add(10.0);  // overflow
  h.add(-0.1);  // underflow
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(1), 4.0);
}

TEST(Histogram, RenderProducesOneLinePerBucket) {
  Histogram h(0.0, 4.0, 4);
  h.add(1.0);
  const std::string render = h.render(10);
  EXPECT_EQ(std::count(render.begin(), render.end(), '\n'), 4);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), InvalidArgument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), InvalidArgument);
}

}  // namespace
}  // namespace ppc
