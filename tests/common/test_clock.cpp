#include "common/clock.h"

#include <gtest/gtest.h>

#include <thread>

#include "common/error.h"

namespace ppc {
namespace {

TEST(SystemClock, StartsNearZero) {
  SystemClock clock;
  EXPECT_GE(clock.now(), 0.0);
  EXPECT_LT(clock.now(), 1.0);
}

TEST(SystemClock, IsMonotonic) {
  SystemClock clock;
  const Seconds a = clock.now();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const Seconds b = clock.now();
  EXPECT_GT(b, a);
}

TEST(ManualClock, StartsAtGivenTime) {
  ManualClock clock(5.0);
  EXPECT_DOUBLE_EQ(clock.now(), 5.0);
}

TEST(ManualClock, AdvanceMovesForward) {
  ManualClock clock;
  clock.advance(2.5);
  clock.advance(0.5);
  EXPECT_DOUBLE_EQ(clock.now(), 3.0);
}

TEST(ManualClock, AdvanceByZeroIsAllowed) {
  ManualClock clock(1.0);
  clock.advance(0.0);
  EXPECT_DOUBLE_EQ(clock.now(), 1.0);
}

TEST(ManualClock, RejectsNegativeAdvance) {
  ManualClock clock;
  EXPECT_THROW(clock.advance(-1.0), InvalidArgument);
}

TEST(ManualClock, SetJumpsToAbsoluteTime) {
  ManualClock clock;
  clock.set(10.0);
  EXPECT_DOUBLE_EQ(clock.now(), 10.0);
}

TEST(ManualClock, SetRejectsMovingBackwards) {
  ManualClock clock(10.0);
  EXPECT_THROW(clock.set(9.0), InvalidArgument);
}

TEST(ManualClock, UsableThroughClockInterface) {
  ManualClock manual(3.0);
  const Clock& clock = manual;
  EXPECT_DOUBLE_EQ(clock.now(), 3.0);
}

}  // namespace
}  // namespace ppc
