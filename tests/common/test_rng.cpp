#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.h"
#include "common/stats.h"

namespace ppc {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.uniform());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(17);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(1, 6));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), 1);
  EXPECT_EQ(*seen.rbegin(), 6);
}

TEST(Rng, UniformIntRejectsBadRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(5, 4), InvalidArgument);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(19);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(Rng, BernoulliFrequencyTracksP) {
  Rng rng(23);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(29);
  RunningStats stats;
  for (int i = 0; i < 30000; ++i) stats.add(rng.exponential(4.0));
  EXPECT_NEAR(stats.mean(), 4.0, 0.15);
  EXPECT_GT(stats.min(), 0.0);
}

TEST(Rng, ExponentialRejectsNonPositiveMean) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), InvalidArgument);
}

TEST(Rng, NormalMatchesMoments) {
  Rng rng(31);
  RunningStats stats;
  for (int i = 0; i < 30000; ++i) stats.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Rng, JitteredStaysAboveFloor) {
  Rng rng(37);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_GE(rng.jittered(100.0, 0.5, 0.1), 10.0);
  }
}

TEST(Rng, JitteredZeroCvIsExact) {
  Rng rng(41);
  EXPECT_DOUBLE_EQ(rng.jittered(42.0, 0.0), 42.0);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng parent1(99), parent2(99);
  Rng child1 = parent1.split();
  Rng child2 = parent2.split();
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(child1.next_u64(), child2.next_u64());
  }
  // Parent and child streams should not track each other.
  Rng parent(99);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(43);
  const auto p = rng.permutation(100);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, PermutationOfZeroAndOne) {
  Rng rng(47);
  EXPECT_TRUE(rng.permutation(0).empty());
  const auto one = rng.permutation(1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0u);
}

TEST(Rng, IndexWithinBounds) {
  Rng rng(53);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.index(7), 7u);
  }
  EXPECT_THROW(rng.index(0), InvalidArgument);
}

}  // namespace
}  // namespace ppc
