#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <numeric>
#include <thread>

#include "common/error.h"

namespace ppc {
namespace {

TEST(ThreadPool, RunsSubmittedWork) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, RunsManyTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(1);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      (void)pool.submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor must wait for all 50
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, TrySubmitAcceptsWorkWhileRunning) {
  ThreadPool pool(2);
  auto fut = pool.try_submit([] { return 7; });
  ASSERT_TRUE(fut.has_value());
  EXPECT_EQ(fut->get(), 7);
}

TEST(ThreadPool, TrySubmitRejectsWorkDuringShutdown) {
  // A worker task observes the pool's destruction from the inside: once the
  // destructor flips the pool into draining mode, try_submit must return
  // nullopt instead of throwing or enqueueing.
  std::atomic<bool> saw_rejection{false};
  std::promise<void> task_started;
  auto pool = std::make_unique<ThreadPool>(1);
  ThreadPool* raw = pool.get();
  (void)pool->try_submit([&] {
    task_started.set_value();
    for (int i = 0; i < 5000; ++i) {
      if (!raw->try_submit([] {}).has_value()) {
        saw_rejection = true;
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  task_started.get_future().wait();
  pool.reset();  // destructor flips stopping_, then drains and joins
  EXPECT_TRUE(saw_rejection.load());
}

TEST(ThreadPool, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool pool(0), InvalidArgument);
}

TEST(ThreadPool, SizeReportsThreadCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

}  // namespace
}  // namespace ppc
